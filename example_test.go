package uncertts_test

import (
	"fmt"

	"uncertts"
)

// The examples below are deterministic: they seed every random source, so
// godoc renders real outputs.

func ExampleEuclidean() {
	d, _ := uncertts.Euclidean([]float64{0, 0}, []float64{3, 4})
	fmt.Println(d)
	// Output: 5
}

func ExampleUMA() {
	values := []float64{1, 1, 100, 1, 1}
	sigmas := []float64{0.1, 0.1, 10, 0.1, 0.1} // the spike is known to be noisy
	filtered, _ := uncertts.UMA(values, sigmas, 1, uncertts.WeightModeNormalized)
	// (10*1 + 0.1*100 + 10*1) / 20.1: the spike barely counts.
	fmt.Printf("%.2f\n", filtered[2])
	// Output: 1.49
}

func ExampleNewDUST() {
	d := uncertts.NewDUST(uncertts.DUSTOptions{TailWeight: -1})
	errDist := uncertts.NormalDist(0, 0.5)
	// With equal normal errors, dust(x, y) = |x-y| / (2 sigma).
	v, _ := d.Value(0, 1, errDist, errDist)
	fmt.Printf("%.3f\n", v)
	// Output: 1.000
}

func ExampleMUNICHProbability() {
	// Two uncertain series with two observations per timestamp.
	x := uncertts.SampleSeries{Samples: [][]float64{{0, 1}, {0, 1}}, ID: 0}
	y := uncertts.SampleSeries{Samples: [][]float64{{0}, {0}}, ID: 1}
	// Materialisations of x: (0,0) (0,1) (1,0) (1,1); distances to y:
	// 0, 1, 1, sqrt(2). Within eps=1: three of four.
	p, _ := uncertts.MUNICHProbability(x, y, 1, uncertts.MUNICHOptions{})
	fmt.Println(p)
	// Output: 0.75
}

func ExampleNewWorkload() {
	ds, _ := uncertts.GenerateDataset("CBF", uncertts.DatasetOptions{
		MaxSeries: 20, Length: 64, Seed: 1,
	})
	pert, _ := uncertts.NewConstantPerturber(uncertts.Normal, 0.4, 64, 1)
	w, _ := uncertts.NewWorkload(ds, pert, uncertts.WorkloadConfig{K: 5})
	ms, _ := uncertts.Evaluate(w, uncertts.NewUEMAMatcher(2, 1), []int{0})
	fmt.Printf("queries evaluated: %d, ground truth size: %d\n",
		len(ms), len(w.Truth(0)))
	// Output: queries evaluated: 1, ground truth size: 5
}
