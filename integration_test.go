package uncertts

// Cross-module integration tests: the full pipeline — synthetic dataset,
// perturbation, workload construction, every matcher — exercised as a
// matrix over error families and uncertainty levels, plus end-to-end
// invariants that individual package tests cannot see.

import (
	"fmt"
	"testing"

	"uncertts/internal/core"
	"uncertts/internal/query"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// matrixWorkload builds one workload per (family, sigma) cell.
func matrixWorkload(t *testing.T, family uncertain.ErrorFamily, sigma float64) *core.Workload {
	t.Helper()
	ds, err := ucr.Generate("syntheticControl", ucr.Options{MaxSeries: 18, Length: 36, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	p, err := uncertain.NewConstantPerturber(family, sigma, 36, 101)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.NewWorkload(ds, p, core.WorkloadConfig{K: 4, SamplesPerTS: 4})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestAllMatchersAllFamilies runs every technique on every error family and
// checks basic sanity: no errors, F1 in range, and (at tiny sigma) strong
// agreement with the ground truth for the distance techniques.
func TestAllMatchersAllFamilies(t *testing.T) {
	matchers := func() map[string]core.Matcher {
		return map[string]core.Matcher{
			"euclidean":      core.NewEuclideanMatcher(),
			"dtw":            core.NewDTWMatcher(),
			"dust":           core.NewDUSTMatcher(),
			"dust-dtw":       core.NewDUSTDTWMatcher(),
			"dust-empirical": core.NewDUSTEmpiricalMatcher(),
			"uma":            core.NewUMAMatcher(2),
			"uema":           core.NewUEMAMatcher(2, 1),
			"ma":             core.NewMAMatcher(2),
			"ema":            core.NewEMAMatcher(2, 1),
			"proud":          core.NewPROUDMatcher(0.05),
			"munich":         core.NewMUNICHMatcher(0.5),
		}
	}
	for _, family := range uncertain.AllErrorFamilies() {
		for _, sigma := range []float64{0.2, 1.0} {
			w := matrixWorkload(t, family, sigma)
			for name, m := range matchers() {
				t.Run(fmt.Sprintf("%s/%s/sigma=%.1f", name, family, sigma), func(t *testing.T) {
					ms, err := core.Evaluate(w, m, []int{0, 1, 2})
					if err != nil {
						t.Fatal(err)
					}
					avg := query.AverageMetrics(ms)
					if avg.F1 < 0 || avg.F1 > 1 {
						t.Fatalf("F1 out of range: %v", avg.F1)
					}
				})
			}
		}
	}
}

// TestLowNoiseConvergence: as sigma approaches zero, the distance-based
// techniques converge to the exact ground truth.
func TestLowNoiseConvergence(t *testing.T) {
	w := matrixWorkload(t, uncertain.Normal, 1e-6)
	for _, m := range []core.Matcher{
		core.NewEuclideanMatcher(),
		core.NewUMAMatcher(0), // w=0: no smoothing to distort the exact data
	} {
		ms, err := core.Evaluate(w, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if f1 := query.AverageMetrics(ms).F1; f1 < 0.99 {
			t.Errorf("%s at sigma=1e-6: F1 = %v, want ~1", m.Name(), f1)
		}
	}
}

// TestDUSTRankingMatchesEuclideanForNormalErrors verifies the paper's
// Section 2.3 equivalence end to end: with constant normal errors DUST is a
// monotone transform of Euclidean, so the two techniques must produce
// identical candidate *rankings* on a real workload. The equivalence is
// exact only with the uniform-error tail workaround disabled: the tail
// mixture makes dust^2 deliberately non-quadratic in the gap, which can
// reorder sums across timestamps.
func TestDUSTRankingMatchesEuclideanForNormalErrors(t *testing.T) {
	w := matrixWorkload(t, uncertain.Normal, 0.5)
	eu := core.NewEuclideanMatcher()
	du := core.NewDUSTMatcher()
	du.Opts.TailWeight = -1 // pure normal phi: dust = gap / (2 sigma)
	if err := eu.Prepare(w); err != nil {
		t.Fatal(err)
	}
	if err := du.Prepare(w); err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 3; qi++ {
		euTop, err := query.TopK(w.Len(), qi, func(ci int) (float64, error) { return eu.Distance(qi, ci) }, 5)
		if err != nil {
			t.Fatal(err)
		}
		duTop, err := query.TopK(w.Len(), qi, func(ci int) (float64, error) { return du.Distance(qi, ci) }, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range euTop {
			if euTop[i].ID != duTop[i].ID {
				t.Fatalf("query %d: rank %d differs: euclidean %d vs dust %d",
					qi, i, euTop[i].ID, duTop[i].ID)
			}
		}
	}
}

// TestWorkloadSeedIsolation: the same dataset perturbed with different
// seeds must give different observations but identical ground truth (the
// truth lives in the exact space).
func TestWorkloadSeedIsolation(t *testing.T) {
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: 12, Length: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	build := func(seed int64) *core.Workload {
		p, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.5, 24, seed)
		if err != nil {
			t.Fatal(err)
		}
		w, err := core.NewWorkload(ds, p, core.WorkloadConfig{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := build(1), build(2)
	sameObs := true
	for i := range a.PDF {
		for j := range a.PDF[i].Observations {
			if a.PDF[i].Observations[j] != b.PDF[i].Observations[j] {
				sameObs = false
			}
		}
	}
	if sameObs {
		t.Error("different perturbation seeds gave identical observations")
	}
	for qi := 0; qi < a.Len(); qi++ {
		ta, tb := a.Truth(qi), b.Truth(qi)
		if len(ta) != len(tb) {
			t.Fatalf("query %d: truth sizes differ: %d vs %d", qi, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("query %d: ground truth depends on the perturbation seed", qi)
			}
		}
	}
}

// TestPublicVsInternalAgreement: the public facade and the internal
// packages must produce identical results for the same workload.
func TestPublicVsInternalAgreement(t *testing.T) {
	ds, err := GenerateDataset("Trace", DatasetOptions{MaxSeries: 12, Length: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pert, err := NewConstantPerturber(Normal, 0.5, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(ds, pert, WorkloadConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	viaPublic, err := Evaluate(w, NewUEMAMatcher(2, 1), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	viaInternal, err := core.Evaluate(w, core.NewUEMAMatcher(2, 1), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaPublic {
		if viaPublic[i] != viaInternal[i] {
			t.Fatal("public facade diverged from the internal implementation")
		}
	}
}
