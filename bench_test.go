package uncertts

// The benchmark harness regenerates every figure of the paper's evaluation
// (go test -bench=Fig -benchmem) and adds ablation benches for the design
// choices called out in DESIGN.md. Benchmarks run the experiment at small
// scale per iteration; the emitted tables are the deliverable of
// EXPERIMENTS.md (regenerated at medium/full scale via cmd/uncertbench).

import (
	"io"
	"testing"

	"uncertts/internal/core"
	"uncertts/internal/dust"
	"uncertts/internal/engine"
	"uncertts/internal/experiments"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/query"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
	"uncertts/internal/wavelet"
)

// benchExperiment runs a figure runner once per iteration at small scale.
// Figure benchmarks are heavy (BenchmarkFig4 alone takes several seconds
// per iteration), so -short skips them to keep quick CI loops fast.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	if testing.Short() {
		b.Skipf("figure benchmark %s skipped in -short mode", name)
	}
	runner, ok := experiments.Registry()[name]
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := experiments.Config{Scale: experiments.ScaleSmall, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- One benchmark per evaluation artefact (Section 4 and 5 figures) ----

func BenchmarkChiSquare(b *testing.B) { benchExperiment(b, "chisquare") }
func BenchmarkFig4(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)     { benchExperiment(b, "fig17") }

// ---- Micro-benchmarks of the technique primitives ----

func benchSeriesPair(length int) (uncertain.PDFSeries, uncertain.PDFSeries) {
	rng := stats.NewRand(7)
	errDist := stats.NewNormal(0, 0.5)
	mk := func(id int) uncertain.PDFSeries {
		obs := make([]float64, length)
		errs := make([]stats.Dist, length)
		for i := range obs {
			obs[i] = rng.NormFloat64()
			errs[i] = errDist
		}
		return uncertain.PDFSeries{Observations: obs, Errors: errs, ID: id}
	}
	return mk(0), mk(1)
}

func BenchmarkEuclideanDistance(b *testing.B) {
	q, c := benchSeriesPair(290)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Euclidean(q.Observations, c.Observations); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTWDistance(b *testing.B) {
	q, c := benchSeriesPair(290)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DTW(q.Observations, c.Observations); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDUSTDistanceTable(b *testing.B) {
	q, c := benchSeriesPair(290)
	d := dust.New(dust.Options{})
	if _, err := d.Distance(q, c); err != nil { // build tables outside timing
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Distance(q, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPROUDDistance(b *testing.B) {
	q, c := benchSeriesPair(290)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proud.Distance(q.Observations, c.Observations, 0.5, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMUNICHProbabilityExact(b *testing.B) {
	rng := stats.NewRand(3)
	mk := func(id int) uncertain.SampleSeries {
		samples := make([][]float64, 6)
		for i := range samples {
			row := make([]float64, 5)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			samples[i] = row
		}
		return uncertain.SampleSeries{Samples: samples, ID: id}
	}
	x, y := mk(0), mk(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := munich.Probability(x, y, 2, munich.Options{Estimator: munich.EstimatorExact}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUEMAFilter(b *testing.B) {
	q, _ := benchSeriesPair(290)
	sig := q.Sigmas()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UEMA(q.Observations, sig, 2, 1, WeightModeNormalized); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHaarTransform(b *testing.B) {
	xs := make([]float64, 512)
	rng := stats.NewRand(1)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.Transform(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches (design choices called out in DESIGN.md) ----

func ablationWorkload(b *testing.B) *core.Workload {
	b.Helper()
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: 20, Length: 64, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	pert, err := uncertain.NewMixedPerturber(uncertain.MixedSigmaSpec{
		Fraction: 0.2, SigmaHigh: 1.0, SigmaLow: 0.4,
		Families: []uncertain.ErrorFamily{uncertain.Normal},
	}, 64, 9)
	if err != nil {
		b.Fatal(err)
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 5})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func reportF1(b *testing.B, w *core.Workload, m core.Matcher, label string) {
	b.Helper()
	ms, err := core.Evaluate(w, m, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(query.AverageMetrics(ms).F1, label+"-F1")
}

// BenchmarkAblationUMAWeights compares the two readings of Eq. 17: strict
// (divide by 2w+1, per the paper's formula) versus normalized weights.
func BenchmarkAblationUMAWeights(b *testing.B) {
	w := ablationWorkload(b)
	for i := 0; i < b.N; i++ {
		norm := &core.FilteredMatcher{Kind: core.FilterUMA, W: 2, Mode: timeseries.WeightModeNormalized}
		strict := &core.FilteredMatcher{Kind: core.FilterUMA, W: 2, Mode: timeseries.WeightModeStrict}
		reportF1(b, w, norm, "normalized")
		reportF1(b, w, strict, "strict")
	}
}

// BenchmarkAblationUnweightedMA compares UMA/UEMA against their
// uncertainty-blind MA/EMA counterparts: how much of the win comes from the
// 1/sigma weights versus plain smoothing.
func BenchmarkAblationUnweightedMA(b *testing.B) {
	w := ablationWorkload(b)
	for i := 0; i < b.N; i++ {
		reportF1(b, w, core.NewMAMatcher(2), "MA")
		reportF1(b, w, core.NewUMAMatcher(2), "UMA")
		reportF1(b, w, core.NewEMAMatcher(2, 1), "EMA")
		reportF1(b, w, core.NewUEMAMatcher(2, 1), "UEMA")
	}
}

// BenchmarkAblationDUSTTable compares DUST with lookup tables against direct
// integration for every phi evaluation.
func BenchmarkAblationDUSTTable(b *testing.B) {
	q, c := benchSeriesPair(64)
	b.Run("table", func(b *testing.B) {
		d := dust.New(dust.Options{})
		if _, err := d.Distance(q, c); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Distance(q, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		d := dust.New(dust.Options{Exact: true})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Distance(q, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMunichEstimator compares the exact meet-in-the-middle
// count, the histogram convolution, and Monte Carlo sampling on the same
// probability query.
func BenchmarkAblationMunichEstimator(b *testing.B) {
	rng := stats.NewRand(4)
	mk := func(id int) uncertain.SampleSeries {
		samples := make([][]float64, 8)
		for i := range samples {
			row := make([]float64, 4)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			samples[i] = row
		}
		return uncertain.SampleSeries{Samples: samples, ID: id}
	}
	x, y := mk(0), mk(1)
	for _, est := range []struct {
		name string
		opts munich.Options
	}{
		{"exact", munich.Options{Estimator: munich.EstimatorExact}},
		{"convolution", munich.Options{Estimator: munich.EstimatorConvolution}},
		{"montecarlo", munich.Options{Estimator: munich.EstimatorMonteCarlo, MonteCarloSamples: 5000}},
	} {
		b.Run(est.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := munich.Probability(x, y, 3, est.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPROUDWavelet compares PROUD on raw observations against
// PROUD over a Haar synopsis (Section 4.3 footnote). The tau is calibrated
// once for the raw variant so both sides operate in their useful regime
// (PROUD's optimal tau is far below 0.5 — see DefaultTauGrid).
func BenchmarkAblationPROUDWavelet(b *testing.B) {
	w := ablationWorkload(b)
	tau, _, err := core.CalibrateTau(w, func(tau float64) core.Matcher {
		return core.NewPROUDMatcher(tau)
	}, []int{0, 1, 2}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := core.NewPROUDMatcher(tau)
		syn := &core.PROUDMatcher{Tau: tau, UseSynopsis: true, Coeffs: 16}
		reportF1(b, w, raw, "raw")
		reportF1(b, w, syn, "wavelet")
	}
}

// ---- Query engine benches: pruned top-k versus the naive full scan ----

// topkWorkload is shared across the engine benchmarks: a CBF workload big
// enough that pruning matters.
func topkWorkload(b *testing.B) *core.Workload {
	b.Helper()
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: 120, Length: 128, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.5, 128, 11)
	if err != nil {
		b.Fatal(err)
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 10})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// benchEngineTopK answers a top-10 batch over every series per iteration
// and reports the share of the scan that ran a full distance computation
// (full-dist/op: 1.0 means no pruning).
func benchEngineTopK(b *testing.B, opts engine.Options) {
	b.Helper()
	w := topkWorkload(b)
	e, err := engine.New(w, opts)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]int, w.Len())
	for i := range queries {
		queries[i] = i
	}
	if _, err := e.TopKBatch(queries, 10); err != nil { // warm caches/tables outside timing
		b.Fatal(err)
	}
	e.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.TopKBatch(queries, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := e.Stats()
	b.ReportMetric(float64(stats.Completed)/float64(stats.Candidates), "full-dist/op")
}

func BenchmarkTopKEuclideanNaive(b *testing.B) {
	benchEngineTopK(b, engine.Options{Measure: engine.MeasureEuclidean, NoPrune: true})
}

func BenchmarkTopKEuclideanPruned(b *testing.B) {
	benchEngineTopK(b, engine.Options{Measure: engine.MeasureEuclidean})
}

func BenchmarkTopKUEMANaive(b *testing.B) {
	benchEngineTopK(b, engine.Options{Measure: engine.MeasureUEMA, NoPrune: true})
}

func BenchmarkTopKUEMAPruned(b *testing.B) {
	benchEngineTopK(b, engine.Options{Measure: engine.MeasureUEMA})
}

func BenchmarkTopKDTWNaive(b *testing.B) {
	benchEngineTopK(b, engine.Options{Measure: engine.MeasureDTW, NoPrune: true})
}

func BenchmarkTopKDTWPruned(b *testing.B) {
	benchEngineTopK(b, engine.Options{Measure: engine.MeasureDTW})
}

func BenchmarkTopKDUSTNaive(b *testing.B) {
	benchEngineTopK(b, engine.Options{Measure: engine.MeasureDUST, NoPrune: true})
}

func BenchmarkTopKDUSTPruned(b *testing.B) {
	benchEngineTopK(b, engine.Options{Measure: engine.MeasureDUST})
}

// BenchmarkTopKSingleThread isolates the pruning win from parallelism:
// one worker, pruned versus naive, on the hottest measure.
func BenchmarkTopKSingleThread(b *testing.B) {
	b.Run("euclidean-naive", func(b *testing.B) {
		benchEngineTopK(b, engine.Options{Measure: engine.MeasureEuclidean, NoPrune: true, Workers: 1})
	})
	b.Run("euclidean-pruned", func(b *testing.B) {
		benchEngineTopK(b, engine.Options{Measure: engine.MeasureEuclidean, Workers: 1})
	})
	b.Run("dtw-naive", func(b *testing.B) {
		benchEngineTopK(b, engine.Options{Measure: engine.MeasureDTW, NoPrune: true, Workers: 1})
	})
	b.Run("dtw-pruned", func(b *testing.B) {
		benchEngineTopK(b, engine.Options{Measure: engine.MeasureDTW, Workers: 1})
	})
}

// ---- Probabilistic engine benches: ProbRange pruned versus naive ----

// probBenchWorkload carries the repeated-observation model so both
// probabilistic measures can run. MUNICH's refine step (histogram
// convolution) dominates, so the workload is kept moderate and the
// estimator resolution reduced — identically in both arms.
func probBenchWorkload(b *testing.B, series, length int) *core.Workload {
	b.Helper()
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: series, Length: length, Seed: 23})
	if err != nil {
		b.Fatal(err)
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.2, length, 23)
	if err != nil {
		b.Fatal(err)
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 5, SamplesPerTS: 3})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// benchProbRange answers the probabilistic range query for every series
// per iteration and reports the share of candidates that needed the full
// refine step (full-refine/op: 1.0 means no pruning).
func benchProbRange(b *testing.B, w *core.Workload, opts engine.Options, tau float64) {
	b.Helper()
	e, err := engine.New(w, opts)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]int, w.Len())
	for i := range queries {
		queries[i] = i
	}
	eps := w.EpsEucl(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ProbRangeBatch(queries, eps, tau); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := e.Stats()
	b.ReportMetric(float64(stats.Completed)/float64(stats.Candidates), "full-refine/op")
}

func BenchmarkProbRangePROUDNaive(b *testing.B) {
	w := probBenchWorkload(b, 120, 128)
	benchProbRange(b, w, engine.Options{Measure: engine.MeasurePROUD, NoPrune: true}, 0.05)
}

func BenchmarkProbRangePROUDPruned(b *testing.B) {
	w := probBenchWorkload(b, 120, 128)
	benchProbRange(b, w, engine.Options{Measure: engine.MeasurePROUD}, 0.05)
}

func BenchmarkProbRangeMUNICHNaive(b *testing.B) {
	w := probBenchWorkload(b, 30, 32)
	benchProbRange(b, w, engine.Options{Measure: engine.MeasureMUNICH, MUNICH: munich.Options{Bins: 512}, NoPrune: true}, 0.5)
}

func BenchmarkProbRangeMUNICHPruned(b *testing.B) {
	w := probBenchWorkload(b, 30, 32)
	benchProbRange(b, w, engine.Options{Measure: engine.MeasureMUNICH, MUNICH: munich.Options{Bins: 512}}, 0.5)
}

// BenchmarkProbTopK ranks every candidate by match probability through the
// shared-bound pruned path.
func BenchmarkProbTopK(b *testing.B) {
	b.Run("proud", func(b *testing.B) {
		w := probBenchWorkload(b, 120, 128)
		e, err := engine.New(w, engine.Options{Measure: engine.MeasurePROUD})
		if err != nil {
			b.Fatal(err)
		}
		queries := make([]int, w.Len())
		for i := range queries {
			queries[i] = i
		}
		eps := w.EpsEucl(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.ProbTopKBatch(queries, eps, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("munich", func(b *testing.B) {
		w := probBenchWorkload(b, 30, 32)
		e, err := engine.New(w, engine.Options{Measure: engine.MeasureMUNICH, MUNICH: munich.Options{Bins: 512}})
		if err != nil {
			b.Fatal(err)
		}
		queries := make([]int, w.Len())
		for i := range queries {
			queries[i] = i
		}
		eps := w.EpsEucl(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.ProbTopKBatch(queries, eps, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}
