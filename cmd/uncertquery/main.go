// Command uncertquery runs one uncertain similarity query end to end: load
// (or generate) a dataset, perturb it, pick a query series, and answer the
// similarity-matching task with the chosen technique, reporting the matches
// and their agreement with the clean-data ground truth.
//
// Usage:
//
//	uncertquery -dataset CBF -series 40 -technique uema -sigma 0.8 -query 3
//	uncertquery -csv data.csv -technique dust -sigma 0.5 -query 0
//
// The topk mode answers a k-nearest-neighbour query through the pruned
// engine (early abandoning, LB_Keogh, shared DUST tables) and reports how
// much of the scan the pruning skipped:
//
//	uncertquery -mode topk -technique dtw -topk 5 -query 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uncertts/internal/core"
	"uncertts/internal/engine"
	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

func main() {
	var (
		name      = flag.String("dataset", "CBF", "synthetic dataset to generate (ignored with -csv)")
		csvPath   = flag.String("csv", "", "load the dataset from this CSV file instead of generating")
		series    = flag.Int("series", 40, "number of series when generating")
		length    = flag.Int("length", 96, "series length when generating")
		seed      = flag.Int64("seed", 1, "seed for generation and perturbation")
		technique = flag.String("technique", "uema", "euclidean, proud, dust, munich, uma, uema or dtw")
		sigma     = flag.Float64("sigma", 0.6, "error standard deviation (normal error)")
		queryIdx  = flag.Int("query", 0, "query series index")
		k         = flag.Int("k", 10, "ground-truth neighbourhood size")
		tau       = flag.Float64("tau", 0, "probability threshold for proud/munich (0 = calibrate)")
		mode      = flag.String("mode", "match", "match (range query vs ground truth) or topk (pruned k-NN)")
		topk      = flag.Int("topk", 5, "neighbours to return in topk mode")
		band      = flag.Int("band", 0, "Sakoe-Chiba half-width for dtw topk (0 = length/10)")
		workers   = flag.Int("workers", 0, "parallel workers in topk mode (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ds, err := loadDataset(*csvPath, *name, *series, *length, *seed)
	if err != nil {
		fatal(err)
	}
	n := ds.Series[0].Len()
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, *sigma, n, *seed)
	if err != nil {
		fatal(err)
	}
	samplesPerTS := 0
	if *technique == "munich" {
		samplesPerTS = 5
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: *k, SamplesPerTS: samplesPerTS})
	if err != nil {
		fatal(err)
	}
	if *queryIdx < 0 || *queryIdx >= w.Len() {
		fatal(fmt.Errorf("query index %d outside [0, %d)", *queryIdx, w.Len()))
	}

	if *mode == "topk" {
		runTopK(w, ds.Name, *technique, *queryIdx, *topk, *band, *workers, *sigma)
		return
	}
	if *mode != "match" {
		fatal(fmt.Errorf("unknown mode %q (want match or topk)", *mode))
	}

	m, err := buildMatcher(w, *technique, *tau)
	if err != nil {
		fatal(err)
	}
	if err := m.Prepare(w); err != nil {
		fatal(err)
	}
	got, err := m.Match(*queryIdx)
	if err != nil {
		fatal(err)
	}
	metrics, err := core.EvaluateQuery(w, m, *queryIdx)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset    : %s (%d series x %d points)\n", ds.Name, w.Len(), n)
	fmt.Printf("technique  : %s\n", m.Name())
	fmt.Printf("perturbation: normal error, sigma=%.2f\n", *sigma)
	fmt.Printf("query      : series %d (label %d)\n", *queryIdx, w.Exact[*queryIdx].Label)
	fmt.Printf("matches    : %v\n", got)
	fmt.Printf("ground truth: %v\n", w.Truth(*queryIdx))
	fmt.Printf("precision=%.3f recall=%.3f F1=%.3f\n", metrics.Precision, metrics.Recall, metrics.F1)
}

// runTopK answers the k-NN query through the pruned engine and reports the
// scan statistics next to a naive full-scan baseline.
func runTopK(w *core.Workload, dsName, technique string, queryIdx, k, band, workers int, sigma float64) {
	var measure engine.Measure
	switch strings.ToLower(technique) {
	case "euclidean":
		measure = engine.MeasureEuclidean
	case "uma":
		measure = engine.MeasureUMA
	case "uema":
		measure = engine.MeasureUEMA
	case "dtw":
		measure = engine.MeasureDTW
	case "dust":
		measure = engine.MeasureDUST
	default:
		fatal(fmt.Errorf("technique %q has no top-k measure (use euclidean, uma, uema, dtw or dust)", technique))
	}
	e, err := engine.New(w, engine.Options{Measure: measure, Band: band, Workers: workers})
	if err != nil {
		fatal(err)
	}
	nn, err := e.TopK(queryIdx, k)
	if err != nil {
		fatal(err)
	}
	stats := e.Stats()

	fmt.Printf("dataset    : %s (%d series x %d points)\n", dsName, w.Len(), w.SeriesLen())
	fmt.Printf("measure    : %s (pruned top-%d)\n", measure, k)
	fmt.Printf("perturbation: normal error, sigma=%.2f\n", sigma)
	fmt.Printf("query      : series %d (label %d)\n", queryIdx, w.Exact[queryIdx].Label)
	for rank, n := range nn {
		fmt.Printf("  #%-2d series %-4d label %-3d distance %.4f\n",
			rank+1, n.ID, w.Exact[n.ID].Label, n.Distance)
	}
	fmt.Printf("scan       : %d candidates, %d full computations, %d abandoned early, %d pruned by envelope (%.1f%% of the scan skipped)\n",
		stats.Candidates, stats.Completed, stats.AbandonedEarly, stats.PrunedByEnvelope,
		100*float64(stats.Candidates-stats.Completed)/float64(stats.Candidates))
}

func loadDataset(csvPath, name string, series, length int, seed int64) (timeseries.Dataset, error) {
	if csvPath == "" {
		return ucr.Generate(name, ucr.Options{MaxSeries: series, Length: length, Seed: seed})
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return timeseries.Dataset{}, err
	}
	defer f.Close()
	return timeseries.ReadCSV(f, csvPath)
}

func buildMatcher(w *core.Workload, technique string, tau float64) (core.Matcher, error) {
	calibrated := func(factory func(tau float64) core.Matcher) (core.Matcher, error) {
		if tau > 0 {
			return factory(tau), nil
		}
		best, _, err := core.CalibrateTau(w, factory, []int{0, 1, 2}, nil)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "calibrated tau = %g\n", best)
		return factory(best), nil
	}
	switch strings.ToLower(technique) {
	case "euclidean":
		return core.NewEuclideanMatcher(), nil
	case "dust":
		return core.NewDUSTMatcher(), nil
	case "uma":
		return core.NewUMAMatcher(2), nil
	case "uema":
		return core.NewUEMAMatcher(2, 1), nil
	case "proud":
		return calibrated(func(tau float64) core.Matcher { return core.NewPROUDMatcher(tau) })
	case "munich":
		return calibrated(func(tau float64) core.Matcher { return core.NewMUNICHMatcher(tau) })
	default:
		return nil, fmt.Errorf("unknown technique %q", technique)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uncertquery:", err)
	os.Exit(1)
}
