// Command uncertquery runs one uncertain similarity query end to end: load
// (or generate) a dataset, perturb it, pick a query series, and answer the
// similarity-matching task with the chosen technique, reporting the matches
// and their agreement with the clean-data ground truth.
//
// Usage:
//
//	uncertquery -dataset CBF -series 40 -technique uema -sigma 0.8 -query 3
//	uncertquery -csv data.csv -technique dust -sigma 0.5 -query 0
//
// The topk mode answers a k-nearest-neighbour query through the pruned
// engine (early abandoning, LB_Keogh, shared DUST tables) and reports how
// much of the scan the pruning skipped:
//
//	uncertquery -mode topk -technique dtw -topk 5 -query 3
//
// The probrange mode answers the probabilistic range query PRQ(q, C, eps,
// tau) of the MUNICH and PROUD techniques through the pruned engine —
// envelope, bounding-interval and sample-pair bounds for MUNICH, sound
// prefix bounds for PROUD — with eps defaulting to the calibrated
// ground-truth threshold:
//
//	uncertquery -mode probrange -technique proud -tau 0.05 -query 3
//
// Both engine modes execute through the declarative QueryRequest API
// (engine.Run) and accept -timeout, a deadline the whole execution stack
// honours — the scan stops promptly when it expires:
//
//	uncertquery -mode topk -technique dtw -topk 5 -timeout 500ms
//
// With -data the query runs against a persisted corpus directory (written
// by `uncertgen -out` or `uncertserve -data`) instead of a generated
// workload: the store is opened read-only, recovered exactly as
// uncertserve would, and -query addresses a series by its stable corpus
// ID. Ground-truth reporting (and tau/eps calibration) needs a generated
// workload, so probrange against -data requires explicit -eps and -tau:
//
//	uncertquery -data /var/lib/uncertserve -mode topk -technique uema -topk 5 -query 3
//	uncertquery -data /var/lib/uncertserve -mode probrange -technique proud -eps 4 -tau 0.1 -query 3
//
// With -server the query goes to a running uncertserve — a single node or
// a cluster coordinator, the request shape is identical — over HTTP, and
// -query addresses a stable corpus ID there. A degraded cluster answer
// (shards down or slow) is reported next to the partial result:
//
//	uncertquery -server http://localhost:8080 -mode topk -technique uema -topk 5 -query 3
//	uncertquery -server http://localhost:8090 -mode probrange -technique proud -eps 4 -tau 0.1 -query 3
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"uncertts/internal/cluster"
	"uncertts/internal/core"
	"uncertts/internal/corpus"
	"uncertts/internal/engine"
	"uncertts/internal/server"
	"uncertts/internal/store"
	"uncertts/internal/telemetry"
	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// config carries every flag; validate checks it before any work runs.
type config struct {
	dataset   string
	csvPath   string
	dataDir   string
	serverURL string
	series    int
	length    int
	seed      int64
	technique string
	sigma     float64
	queryIdx  int
	k         int
	tau       float64
	eps       float64
	mode      string
	topk      int
	band      int
	workers   int
	timeout   time.Duration
}

var (
	validModes = map[string]bool{"match": true, "topk": true, "probrange": true}
	// validTechniques maps each technique to the modes that serve it.
	validTechniques = map[string]map[string]bool{
		"euclidean": {"match": true, "topk": true},
		"uma":       {"match": true, "topk": true},
		"uema":      {"match": true, "topk": true},
		"dtw":       {"match": true, "topk": true},
		"dust":      {"match": true, "topk": true},
		"proud":     {"match": true, "probrange": true},
		"munich":    {"match": true, "probrange": true},
	}
)

// validate rejects bad flag combinations up front with a clear error
// instead of falling through to defaults or failing deep inside a run.
func validate(cfg config) error {
	mode := strings.ToLower(cfg.mode)
	if !validModes[mode] {
		return fmt.Errorf("unknown mode %q (want match, topk or probrange)", cfg.mode)
	}
	technique := strings.ToLower(cfg.technique)
	modes, ok := validTechniques[technique]
	if !ok {
		return fmt.Errorf("unknown technique %q (want euclidean, proud, dust, munich, uma, uema or dtw)", cfg.technique)
	}
	if mode == "probrange" && !modes["probrange"] {
		return fmt.Errorf("technique %q has no probabilistic measure (use proud or munich)", cfg.technique)
	}
	if mode == "topk" && !modes["topk"] {
		return fmt.Errorf("technique %q has no top-k measure (use euclidean, uma, uema, dtw or dust)", cfg.technique)
	}
	if cfg.k < 1 {
		return fmt.Errorf("-k = %d must be at least 1", cfg.k)
	}
	if cfg.topk < 1 {
		return fmt.Errorf("-topk = %d must be at least 1", cfg.topk)
	}
	if cfg.serverURL != "" {
		if cfg.csvPath != "" || cfg.dataDir != "" {
			return fmt.Errorf("-server is mutually exclusive with -csv and -data")
		}
		if mode == "match" {
			return fmt.Errorf("mode match needs a local generated workload with ground truth (use -mode topk or -mode probrange with -server)")
		}
		if mode == "probrange" && (cfg.eps == 0 || cfg.tau == 0) {
			return fmt.Errorf("probrange against -server needs explicit -eps and -tau (calibration needs a generated workload)")
		}
	}
	if cfg.dataDir != "" {
		if cfg.csvPath != "" {
			return fmt.Errorf("-data and -csv are mutually exclusive")
		}
		if mode == "match" {
			return fmt.Errorf("mode match needs a generated workload with ground truth (use -mode topk or -mode probrange with -data)")
		}
		if mode == "probrange" && (cfg.eps == 0 || cfg.tau == 0) {
			return fmt.Errorf("probrange against -data needs explicit -eps and -tau (calibration needs a generated workload)")
		}
	}
	if cfg.csvPath == "" && cfg.dataDir == "" {
		if cfg.series < 2 {
			return fmt.Errorf("-series = %d must be at least 2", cfg.series)
		}
		if cfg.length < 1 {
			return fmt.Errorf("-length = %d must be at least 1", cfg.length)
		}
		if cfg.k >= cfg.series {
			return fmt.Errorf("-k = %d needs more than %d series", cfg.k, cfg.series)
		}
	}
	if cfg.queryIdx < 0 {
		return fmt.Errorf("-query = %d must be non-negative", cfg.queryIdx)
	}
	if cfg.sigma < 0 {
		return fmt.Errorf("-sigma = %v must be non-negative", cfg.sigma)
	}
	if cfg.eps < 0 {
		return fmt.Errorf("-eps = %v must be non-negative", cfg.eps)
	}
	// tau = 0 means "calibrate"; anything else must be a usable threshold
	// (proud accepts (0, 1), munich (0, 1]).
	if cfg.tau != 0 {
		//lint:allow floatcmp munich's tau domain is closed at exactly 1; -tau is parsed, not computed
		ok := cfg.tau > 0 && (cfg.tau < 1 || (technique == "munich" && cfg.tau == 1))
		if !ok {
			return fmt.Errorf("-tau = %v outside the valid range (0 = calibrate; proud needs (0, 1), munich (0, 1])", cfg.tau)
		}
	}
	if cfg.timeout < 0 {
		return fmt.Errorf("-timeout = %v must be non-negative (0 = no deadline)", cfg.timeout)
	}
	return nil
}

// queryContext derives the engine-query context from the -timeout flag
// (0 = no deadline).
func queryContext(cfg config) (context.Context, context.CancelFunc) {
	if cfg.timeout > 0 {
		return context.WithTimeout(context.Background(), cfg.timeout)
	}
	return context.WithCancel(context.Background())
}

func main() {
	var cfg config
	flag.StringVar(&cfg.dataset, "dataset", "CBF", "synthetic dataset to generate (ignored with -csv)")
	flag.StringVar(&cfg.csvPath, "csv", "", "load the dataset from this CSV file instead of generating")
	flag.StringVar(&cfg.dataDir, "data", "", "query a persisted corpus directory (read-only recovery; -query addresses a stable corpus ID)")
	flag.StringVar(&cfg.serverURL, "server", "", "query a running uncertserve or cluster coordinator at this base URL (-query addresses a stable corpus ID)")
	flag.IntVar(&cfg.series, "series", 40, "number of series when generating")
	flag.IntVar(&cfg.length, "length", 96, "series length when generating")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for generation and perturbation")
	flag.StringVar(&cfg.technique, "technique", "uema", "euclidean, proud, dust, munich, uma, uema or dtw")
	flag.Float64Var(&cfg.sigma, "sigma", 0.6, "error standard deviation (normal error)")
	flag.IntVar(&cfg.queryIdx, "query", 0, "query series index")
	flag.IntVar(&cfg.k, "k", 10, "ground-truth neighbourhood size")
	flag.Float64Var(&cfg.tau, "tau", 0, "probability threshold for proud/munich (0 = calibrate)")
	flag.Float64Var(&cfg.eps, "eps", 0, "distance threshold in probrange mode (0 = the calibrated ground-truth eps)")
	flag.StringVar(&cfg.mode, "mode", "match", "match (range query vs ground truth), topk (pruned k-NN) or probrange (pruned probabilistic range query)")
	flag.IntVar(&cfg.topk, "topk", 5, "neighbours to return in topk mode")
	flag.IntVar(&cfg.band, "band", 0, "Sakoe-Chiba half-width for dtw topk (0 = length/10)")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel workers in topk/probrange mode (0 = GOMAXPROCS)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "deadline for topk/probrange queries, e.g. 500ms (0 = none)")
	flag.Parse()

	if err := validate(cfg); err != nil {
		fatal(err)
	}
	cfg.mode = strings.ToLower(cfg.mode)
	cfg.technique = strings.ToLower(cfg.technique)

	if cfg.serverURL != "" {
		runFromServer(cfg)
		return
	}
	if cfg.dataDir != "" {
		runFromStore(cfg)
		return
	}

	ds, err := loadDataset(cfg.csvPath, cfg.dataset, cfg.series, cfg.length, cfg.seed)
	if err != nil {
		fatal(err)
	}
	n := ds.Series[0].Len()
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, cfg.sigma, n, cfg.seed)
	if err != nil {
		fatal(err)
	}
	samplesPerTS := 0
	if cfg.technique == "munich" {
		samplesPerTS = 5
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: cfg.k, SamplesPerTS: samplesPerTS})
	if err != nil {
		fatal(err)
	}
	if cfg.queryIdx >= w.Len() {
		fatal(fmt.Errorf("query index %d outside [0, %d)", cfg.queryIdx, w.Len()))
	}

	switch cfg.mode {
	case "topk":
		runTopK(w, ds.Name, cfg)
	case "probrange":
		runProbRange(w, ds.Name, cfg)
	default:
		runMatch(w, ds.Name, cfg)
	}
}

func runMatch(w *core.Workload, dsName string, cfg config) {
	m, err := buildMatcher(w, cfg.technique, cfg.tau)
	if err != nil {
		fatal(err)
	}
	if err := m.Prepare(w); err != nil {
		fatal(err)
	}
	got, err := m.Match(cfg.queryIdx)
	if err != nil {
		fatal(err)
	}
	metrics, err := core.EvaluateQuery(w, m, cfg.queryIdx)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset    : %s (%d series x %d points)\n", dsName, w.Len(), w.SeriesLen())
	fmt.Printf("technique  : %s\n", m.Name())
	fmt.Printf("perturbation: normal error, sigma=%.2f\n", cfg.sigma)
	fmt.Printf("query      : series %d (label %d)\n", cfg.queryIdx, w.Exact[cfg.queryIdx].Label)
	fmt.Printf("matches    : %v\n", got)
	fmt.Printf("ground truth: %v\n", w.Truth(cfg.queryIdx))
	fmt.Printf("precision=%.3f recall=%.3f F1=%.3f\n", metrics.Precision, metrics.Recall, metrics.F1)
}

// measureFor maps a validated technique name to its engine measure.
func measureFor(technique string) engine.Measure {
	switch technique {
	case "euclidean":
		return engine.MeasureEuclidean
	case "uma":
		return engine.MeasureUMA
	case "uema":
		return engine.MeasureUEMA
	case "dtw":
		return engine.MeasureDTW
	case "dust":
		return engine.MeasureDUST
	case "proud":
		return engine.MeasurePROUD
	default:
		return engine.MeasureMUNICH
	}
}

// runFromStore answers the query against a persisted corpus: read-only
// recovery (the exact state uncertserve would serve), engines over the
// recovered snapshot, -query resolved as a stable corpus ID.
func runFromStore(cfg config) {
	st, err := store.Open(cfg.dataDir, corpus.Config{}, store.Options{ReadOnly: true})
	if err != nil {
		fatal(err)
	}
	snap := st.Corpus().Snapshot()
	if snap.Len() == 0 {
		fatal(fmt.Errorf("persisted corpus %s holds no series", cfg.dataDir))
	}
	pos, ok := snap.PosOf(cfg.queryIdx)
	if !ok {
		fatal(fmt.Errorf("no series with stable ID %d in %s (IDs are assigned at ingest and never reused)", cfg.queryIdx, cfg.dataDir))
	}
	measure := measureFor(cfg.technique)
	e, err := engine.NewFromSnapshot(snap, engine.Options{Measure: measure, Band: cfg.band, Workers: cfg.workers})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := queryContext(cfg)
	defer cancel()
	req := engine.Request{Measure: measure, Index: &pos, Workers: cfg.workers}
	if cfg.mode == "topk" {
		req.Kind, req.K = engine.KindTopK, cfg.topk
	} else {
		req.Kind, req.Eps, req.Tau = engine.KindProbRange, cfg.eps, cfg.tau
	}
	res, err := e.Run(ctx, req)
	if err != nil {
		fatal(err)
	}
	stats := e.Stats()

	fmt.Printf("corpus     : %s (%d series x %d points, epoch %d)\n", cfg.dataDir, snap.Len(), snap.SeriesLen(), snap.Epoch())
	if cfg.mode == "topk" {
		fmt.Printf("measure    : %s (pruned top-%d)\n", measure, cfg.topk)
	} else {
		fmt.Printf("measure    : %s (pruned probabilistic range, eps=%.4f, tau=%g)\n", measure, cfg.eps, cfg.tau)
	}
	fmt.Printf("query      : series %d (label %d)\n", cfg.queryIdx, snap.Entry(pos).PDF.Label)
	for rank, n := range res.Neighbors {
		fmt.Printf("  #%-2d series %-4d label %-3d distance %.4f\n",
			rank+1, snap.IDAt(n.ID), snap.Entry(n.ID).PDF.Label, n.Distance)
	}
	if res.IDs != nil {
		ids := make([]int, len(res.IDs))
		for i, p := range res.IDs {
			ids[i] = snap.IDAt(p)
		}
		fmt.Printf("matches    : %v\n", ids)
	}
	fmt.Printf("scan       : %d candidates, %d full computations, %d abandoned early, %d pruned by envelope (%.1f%% of the scan skipped)\n",
		stats.Candidates, stats.Completed, stats.AbandonedEarly, stats.PrunedByEnvelope,
		100*float64(stats.Candidates-stats.Completed)/float64(max(1, stats.Candidates)))
}

// runFromServer sends the query to a running uncertserve (or cluster
// coordinator — the wire shape is the same) and renders the answer. A
// degraded cluster response is reported shard by shard next to the
// partial result.
func runFromServer(cfg config) {
	req := server.QueryRequest{
		Measure: cfg.technique,
		ID:      &cfg.queryIdx,
		Workers: cfg.workers,
	}
	if cfg.timeout > 0 {
		req.TimeoutMS = cfg.timeout.Milliseconds()
	}
	if cfg.mode == "topk" {
		req.Type, req.K = "topk", cfg.topk
	} else {
		req.Type, req.Eps, req.Tau = "probrange", cfg.eps, cfg.tau
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	httpResp, err := http.Post(cfg.serverURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer httpResp.Body.Close()
	// The server minted (or adopted) a trace ID for this query and put it
	// in the response header; surface it whenever the answer needs a
	// follow-up look in the slow-query log or /debug/trace.
	traceID := httpResp.Header.Get(telemetry.TraceHeader)
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		if traceID != "" {
			fmt.Fprintf(os.Stderr, "trace id   : %s\n", traceID)
		}
		fatal(fmt.Errorf("%s/query answered %d: %s", cfg.serverURL, httpResp.StatusCode, strings.TrimSpace(string(msg))))
	}
	var resp cluster.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		fatal(err)
	}

	fmt.Printf("server     : %s (epoch %d)\n", cfg.serverURL, resp.Epoch)
	if cfg.mode == "topk" {
		fmt.Printf("measure    : %s (pruned top-%d)\n", resp.Measure, cfg.topk)
	} else {
		fmt.Printf("measure    : %s (pruned probabilistic range, eps=%.4f, tau=%g)\n", resp.Measure, cfg.eps, cfg.tau)
	}
	fmt.Printf("query      : series %d\n", cfg.queryIdx)
	for rank, n := range resp.Neighbors {
		fmt.Printf("  #%-2d series %-4d distance %.4f\n", rank+1, n.ID, n.Distance)
	}
	if resp.IDs != nil {
		fmt.Printf("matches    : %v\n", resp.IDs)
	}
	if resp.Degraded {
		fmt.Printf("DEGRADED   : partial answer, %d shard(s) missing\n", len(resp.ShardErrors))
		for _, se := range resp.ShardErrors {
			fmt.Printf("  shard %-10s %-12s %s\n", se.Shard, se.Kind, se.Error)
		}
		if traceID != "" {
			fmt.Printf("trace id   : %s\n", traceID)
		}
	}
}

// runTopK answers the k-NN query through the pruned engine and reports the
// scan statistics next to a naive full-scan baseline.
func runTopK(w *core.Workload, dsName string, cfg config) {
	measure := measureFor(cfg.technique)
	e, err := engine.New(w, engine.Options{Measure: measure, Band: cfg.band, Workers: cfg.workers})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := queryContext(cfg)
	defer cancel()
	res, err := e.Run(ctx, engine.Request{
		Measure: measure,
		Kind:    engine.KindTopK,
		Index:   &cfg.queryIdx,
		K:       cfg.topk,
	})
	if err != nil {
		fatal(err)
	}
	nn := res.Neighbors
	stats := e.Stats()

	fmt.Printf("dataset    : %s (%d series x %d points)\n", dsName, w.Len(), w.SeriesLen())
	fmt.Printf("measure    : %s (pruned top-%d)\n", measure, cfg.topk)
	fmt.Printf("perturbation: normal error, sigma=%.2f\n", cfg.sigma)
	fmt.Printf("query      : series %d (label %d)\n", cfg.queryIdx, w.Exact[cfg.queryIdx].Label)
	for rank, n := range nn {
		fmt.Printf("  #%-2d series %-4d label %-3d distance %.4f\n",
			rank+1, n.ID, w.Exact[n.ID].Label, n.Distance)
	}
	fmt.Printf("scan       : %d candidates, %d full computations, %d abandoned early, %d pruned by envelope (%.1f%% of the scan skipped)\n",
		stats.Candidates, stats.Completed, stats.AbandonedEarly, stats.PrunedByEnvelope,
		100*float64(stats.Candidates-stats.Completed)/float64(stats.Candidates))
}

// runProbRange answers the probabilistic range query through the pruned
// engine and reports which bound resolved how much of the scan.
func runProbRange(w *core.Workload, dsName string, cfg config) {
	measure := engine.MeasurePROUD
	if cfg.technique == "munich" {
		measure = engine.MeasureMUNICH
	}
	tau := cfg.tau
	if tau == 0 {
		best, err := calibrateTau(w, cfg.technique)
		if err != nil {
			fatal(err)
		}
		tau = best
	}
	eps := cfg.eps
	if eps == 0 {
		eps = w.EpsEucl(cfg.queryIdx)
	}
	e, err := engine.New(w, engine.Options{Measure: measure, Workers: cfg.workers})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := queryContext(cfg)
	defer cancel()
	res, err := e.Run(ctx, engine.Request{
		Measure: measure,
		Kind:    engine.KindProbRange,
		Index:   &cfg.queryIdx,
		Eps:     eps,
		Tau:     tau,
	})
	if err != nil {
		fatal(err)
	}
	got := res.IDs
	stats := e.Stats()

	fmt.Printf("dataset    : %s (%d series x %d points)\n", dsName, w.Len(), w.SeriesLen())
	fmt.Printf("measure    : %s (pruned probabilistic range, eps=%.4f, tau=%g)\n", measure, eps, tau)
	fmt.Printf("perturbation: normal error, sigma=%.2f\n", cfg.sigma)
	fmt.Printf("query      : series %d (label %d)\n", cfg.queryIdx, w.Exact[cfg.queryIdx].Label)
	fmt.Printf("matches    : %v\n", got)
	fmt.Printf("ground truth: %v\n", w.Truth(cfg.queryIdx))
	fmt.Printf("scan       : %d candidates, %d full refines, %d envelope-pruned, %d resolved by bounds, %d resolved on a prefix, %d refines abandoned early (%.1f%% of the refine work skipped)\n",
		stats.Candidates, stats.Completed, stats.PrunedByEnvelope, stats.ResolvedByBounds, stats.ResolvedEarly, stats.AbandonedEarly,
		100*float64(stats.Candidates-stats.Completed)/float64(stats.Candidates))
}

func loadDataset(csvPath, name string, series, length int, seed int64) (timeseries.Dataset, error) {
	if csvPath == "" {
		return ucr.Generate(name, ucr.Options{MaxSeries: series, Length: length, Seed: seed})
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return timeseries.Dataset{}, err
	}
	defer f.Close()
	return timeseries.ReadCSV(f, csvPath)
}

// calibrateTau reproduces the paper's "optimal tau" procedure for the
// probabilistic techniques over a fixed query sample, reporting the result
// on stderr. Both the match and probrange paths share it.
func calibrateTau(w *core.Workload, technique string) (float64, error) {
	factory := func(tau float64) core.Matcher { return core.NewPROUDMatcher(tau) }
	if technique == "munich" {
		// One probability cache across the sweep: the pair probabilities do
		// not depend on tau, so the expensive counting runs once per pair
		// instead of once per grid point.
		cache := core.NewMunichProbCache()
		factory = func(tau float64) core.Matcher { return &core.MUNICHMatcher{Tau: tau, Cache: cache} }
	}
	best, _, err := core.CalibrateTau(w, factory, []int{0, 1, 2}, nil)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(os.Stderr, "calibrated tau = %g\n", best)
	return best, nil
}

func buildMatcher(w *core.Workload, technique string, tau float64) (core.Matcher, error) {
	calibrated := func(factory func(tau float64) core.Matcher) (core.Matcher, error) {
		if tau > 0 {
			return factory(tau), nil
		}
		best, err := calibrateTau(w, technique)
		if err != nil {
			return nil, err
		}
		return factory(best), nil
	}
	switch technique {
	case "euclidean":
		return core.NewEuclideanMatcher(), nil
	case "dust":
		return core.NewDUSTMatcher(), nil
	case "uma":
		return core.NewUMAMatcher(2), nil
	case "uema":
		return core.NewUEMAMatcher(2, 1), nil
	case "dtw":
		return core.NewDTWMatcher(), nil
	case "proud":
		return calibrated(func(tau float64) core.Matcher { return core.NewPROUDMatcher(tau) })
	case "munich":
		return calibrated(func(tau float64) core.Matcher { return core.NewMUNICHMatcher(tau) })
	default:
		return nil, fmt.Errorf("unknown technique %q", technique)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uncertquery:", err)
	os.Exit(1)
}
