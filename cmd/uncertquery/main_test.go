package main

import (
	"strings"
	"testing"
	"time"
)

// goodConfig is a baseline that must validate; each case mutates one flag.
func goodConfig() config {
	return config{
		dataset:   "CBF",
		series:    40,
		length:    96,
		seed:      1,
		technique: "uema",
		sigma:     0.6,
		queryIdx:  0,
		k:         10,
		mode:      "match",
		topk:      5,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*config)
		wantErr string // substring of the expected error; empty = valid
	}{
		{"baseline", func(c *config) {}, ""},
		{"topk mode", func(c *config) { c.mode = "topk"; c.technique = "dtw" }, ""},
		{"probrange proud", func(c *config) { c.mode = "probrange"; c.technique = "proud"; c.tau = 0.05 }, ""},
		{"probrange munich tau 1", func(c *config) { c.mode = "probrange"; c.technique = "munich"; c.tau = 1 }, ""},
		{"probrange calibrated tau", func(c *config) { c.mode = "probrange"; c.technique = "munich" }, ""},
		{"match dtw", func(c *config) { c.technique = "dtw" }, ""},
		{"mixed case", func(c *config) { c.mode = "TopK"; c.technique = "DTW" }, ""},
		{"csv skips generation checks", func(c *config) { c.csvPath = "data.csv"; c.series = 0; c.length = 0 }, ""},

		{"unknown mode", func(c *config) { c.mode = "fuzzy" }, "unknown mode"},
		{"unknown technique", func(c *config) { c.technique = "cosine" }, "unknown technique"},
		{"topk with proud", func(c *config) { c.mode = "topk"; c.technique = "proud" }, "no top-k measure"},
		{"topk with munich", func(c *config) { c.mode = "topk"; c.technique = "munich" }, "no top-k measure"},
		{"probrange with dtw", func(c *config) { c.mode = "probrange"; c.technique = "dtw" }, "no probabilistic measure"},
		{"k zero", func(c *config) { c.k = 0 }, "-k = 0"},
		{"k negative", func(c *config) { c.k = -3 }, "-k = -3"},
		{"k not below series", func(c *config) { c.k = 40 }, "needs more than"},
		{"topk zero", func(c *config) { c.mode = "topk"; c.technique = "dtw"; c.topk = 0 }, "-topk = 0"},
		{"one series", func(c *config) { c.series = 1 }, "-series"},
		{"zero length", func(c *config) { c.length = 0 }, "-length"},
		{"negative query", func(c *config) { c.queryIdx = -1 }, "-query"},
		{"negative sigma", func(c *config) { c.sigma = -0.5 }, "-sigma"},
		{"negative eps", func(c *config) { c.eps = -2 }, "-eps"},
		{"negative tau", func(c *config) { c.tau = -0.1 }, "-tau"},
		{"tau one for proud", func(c *config) { c.mode = "probrange"; c.technique = "proud"; c.tau = 1 }, "-tau"},
		{"tau above one", func(c *config) { c.mode = "probrange"; c.technique = "munich"; c.tau = 1.5 }, "-tau"},
		{"negative timeout", func(c *config) { c.timeout = -time.Second }, "-timeout"},

		{"data topk", func(c *config) { c.dataDir = "d"; c.mode = "topk"; c.technique = "dtw"; c.series = 0; c.length = 0 }, ""},
		{"data probrange explicit", func(c *config) {
			c.dataDir = "d"
			c.mode = "probrange"
			c.technique = "proud"
			c.eps = 3
			c.tau = 0.1
		}, ""},
		{"data with csv", func(c *config) { c.dataDir = "d"; c.csvPath = "x.csv"; c.mode = "topk"; c.technique = "dtw" }, "mutually exclusive"},
		{"data match mode", func(c *config) { c.dataDir = "d" }, "ground truth"},
		{"data probrange without eps", func(c *config) { c.dataDir = "d"; c.mode = "probrange"; c.technique = "proud"; c.tau = 0.1 }, "explicit -eps"},
		{"data probrange without tau", func(c *config) { c.dataDir = "d"; c.mode = "probrange"; c.technique = "proud"; c.eps = 3 }, "explicit -eps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goodConfig()
			tc.mutate(&cfg)
			err := validate(cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", cfg, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%+v) = nil, want error containing %q", cfg, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
