package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"uncertts/internal/lint/driver"
	"uncertts/internal/lint/load"
	"uncertts/internal/lint/uncertlint"
)

// repoRoot resolves the module root (this package lives at cmd/uncertlint).
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestRepositoryIsClean is the smoke test the acceptance bar asks for: the
// full analyzer suite over the entire repository must produce zero
// diagnostics. Any invariant violation introduced by a future PR fails
// here (and in the dedicated CI step) with the exact file:line.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repository-wide analysis in the full suite only")
	}
	root := repoRoot(t)
	loader := load.NewLoader(root)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern ./... no longer covers the tree", len(pkgs))
	}
	diags, err := driver.Run(pkgs, uncertlint.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		rel, rerr := filepath.Rel(root, d.Pos.Filename)
		if rerr != nil {
			rel = d.Pos.Filename
		}
		t.Errorf("%s:%d:%d: %s [%s]", rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
}

// TestSuiteIsComplete pins the analyzer roster so a refactor cannot
// silently drop an invariant from the suite.
func TestSuiteIsComplete(t *testing.T) {
	want := []string{"arenawrite", "ctxpoll", "floatcmp", "intoalloc", "metricname", "sentinelcmp"}
	got := uncertlint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s is missing Doc or Run", a.Name)
		}
	}
}
