package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"uncertts/internal/lint/driver"
	"uncertts/internal/lint/load"
	"uncertts/internal/lint/uncertlint"
)

// vetConfig mirrors the fields of the JSON compilation-unit description
// the go command hands a vet tool (x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet compilation unit. It always writes the
// (empty — this suite has no cross-package facts) vetx output file the go
// command expects, prints diagnostics to stderr, and exits 1 when any
// survive suppression.
func unitcheck(args []string) {
	cfgPath := args[len(args)-1]
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("%s: %v", cfgPath, err))
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency unit: only facts were wanted, and we have none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatal(err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	pkg := &load.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := driver.Run([]*load.Package{pkg}, uncertlint.Analyzers())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uncertlint:", err)
	os.Exit(2)
}
