// Command uncertlint runs the repository's analyzer suite — the
// machine-checked invariants of internal/lint/analyzers — in two modes:
//
// Standalone, over go package patterns:
//
//	go run ./cmd/uncertlint ./...
//
// As a go vet tool, speaking vet's unitchecker protocol (-V=full handshake
// plus *.cfg units):
//
//	go build -o /tmp/uncertlint ./cmd/uncertlint
//	go vet -vettool=/tmp/uncertlint ./...
//
// Standalone mode analyzes production sources only; the vet mode also
// analyzes test files of each unit vet hands it. Exceptions are annotated
// in source as `//lint:allow <analyzer> <reason>` (see internal/lint/driver).
// Exit status: 0 clean, 1 diagnostics, 2 operational error.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uncertts/internal/lint/driver"
	"uncertts/internal/lint/load"
	"uncertts/internal/lint/uncertlint"
)

func main() {
	args := os.Args[1:]
	// go vet protocol: the version handshake and compilation-unit .cfg
	// runs bypass normal flag handling.
	for _, a := range args {
		if a == "-V=full" {
			printVersion()
			return
		}
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		unitcheck(args)
		return
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: uncertlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range uncertlint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := load.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uncertlint:", err)
		os.Exit(2)
	}
	diags, err := driver.Run(pkgs, uncertlint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "uncertlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// printVersion answers the go command's -V=full staleness handshake. The
// trailing buildID field must be content-derived so `go vet` caches results
// per tool build; hashing our own executable mirrors what the go toolchain's
// bundled vet does.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, string(sum[:]))
}
