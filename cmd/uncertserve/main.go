// Command uncertserve serves uncertain-similarity queries over HTTP/JSON:
// a mutable corpus of uncertain series behind /query (topk, range,
// probtopk, probrange across all seven measures), /query/stream
// (incremental NDJSON results), /series (ingest and delete) and /stats
// (corpus and per-measure engine accounting).
//
// Usage:
//
//	uncertserve -addr :8080 -dataset CBF -series 64 -length 96 -sigma 0.6 -samples 5
//
// Query a resident series by its stable ID, or ship an ad-hoc series.
// Queries run under the request's context — hanging up cancels the scan —
// and accept a per-request timeout_ms (-timeout sets the server default):
//
//	curl -s localhost:8080/query -d '{"measure":"uema","type":"topk","k":5,"id":3,"timeout_ms":500}'
//	curl -s localhost:8080/query -d '{"measure":"proud","type":"probrange","eps":4.5,"tau":0.1,"series":{"values":[...],"sigma":0.6}}'
//	curl -sN localhost:8080/query/stream -d '{"measure":"euclidean","type":"range","eps":6,"id":3}'
//
// Ingest and delete while queries run; in-flight queries keep the corpus
// snapshot they started on:
//
//	curl -s localhost:8080/series -d '{"insert":[{"values":[...],"sigma":0.6}]}'
//	curl -s localhost:8080/series -d '{"delete":[64]}'
//	curl -s localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"uncertts/internal/corpus"
	"uncertts/internal/munich"
	"uncertts/internal/server"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

type config struct {
	addr       string
	dataset    string
	series     int
	length     int
	seed       int64
	sigma      float64
	samples    int
	defWorkers int
	maxWorkers int
	mcSamples  int
	timeout    time.Duration
}

func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("uncertserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.dataset, "dataset", "CBF", "synthetic dataset preloaded into the corpus (empty = start empty)")
	fs.IntVar(&cfg.series, "series", 64, "number of series to preload")
	fs.IntVar(&cfg.length, "length", 96, "series length")
	fs.Int64Var(&cfg.seed, "seed", 1, "generation and perturbation seed")
	fs.Float64Var(&cfg.sigma, "sigma", 0.6, "error standard deviation (normal error)")
	fs.IntVar(&cfg.samples, "samples", 5, "repeated observations per timestamp (0 disables the MUNICH measure)")
	fs.IntVar(&cfg.defWorkers, "workers", 1, "default per-request worker budget")
	fs.IntVar(&cfg.maxWorkers, "max-workers", 0, "per-request worker budget cap (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.mcSamples, "munich-bins", 0, "MUNICH convolution estimator bins (0 = default)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "default per-query deadline for requests without timeout_ms, e.g. 2s (0 = none)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.timeout < 0 {
		return cfg, fmt.Errorf("-timeout = %v must be non-negative", cfg.timeout)
	}
	if cfg.length < 1 {
		return cfg, fmt.Errorf("-length = %d must be at least 1", cfg.length)
	}
	if cfg.sigma <= 0 {
		return cfg, fmt.Errorf("-sigma = %v must be positive", cfg.sigma)
	}
	if cfg.samples < 0 {
		return cfg, fmt.Errorf("-samples = %d must be non-negative", cfg.samples)
	}
	if cfg.dataset != "" && cfg.series < 1 {
		return cfg, fmt.Errorf("-series = %d must be at least 1", cfg.series)
	}
	return cfg, nil
}

// buildServer assembles the corpus (optionally preloaded with a perturbed
// synthetic dataset) and the server around it.
func buildServer(cfg config) (*server.Server, error) {
	c := corpus.New(corpus.Config{Length: cfg.length, ReportedSigma: cfg.sigma})
	if cfg.dataset != "" {
		ds, err := ucr.Generate(cfg.dataset, ucr.Options{MaxSeries: cfg.series, Length: cfg.length, Seed: cfg.seed})
		if err != nil {
			return nil, err
		}
		pert, err := uncertain.NewConstantPerturber(uncertain.Normal, cfg.sigma, cfg.length, cfg.seed)
		if err != nil {
			return nil, err
		}
		batch := make([]corpus.Series, len(ds.Series))
		for i, s := range ds.Series {
			ps := pert.PerturbPDF(s)
			batch[i] = corpus.Series{Values: ps.Observations, Errors: ps.Errors, Label: s.Label}
			if cfg.samples > 0 {
				ss, err := pert.PerturbSamples(s, cfg.samples)
				if err != nil {
					return nil, err
				}
				batch[i].Samples = ss.Samples
			}
		}
		if _, err := c.InsertBatch(batch); err != nil {
			return nil, err
		}
	}
	return server.New(c, server.Options{
		DefaultWorkers: cfg.defWorkers,
		MaxWorkers:     cfg.maxWorkers,
		DefaultTimeout: cfg.timeout,
		MUNICH:         munich.Options{Bins: cfg.mcSamples},
	}), nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uncertserve:", err)
		os.Exit(2)
	}
	srv, err := buildServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uncertserve:", err)
		os.Exit(1)
	}
	snap := srv.Corpus().Snapshot()
	log.Printf("uncertserve: %d series x %d points resident, listening on %s", snap.Len(), snap.SeriesLen(), cfg.addr)
	if err := http.ListenAndServe(cfg.addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "uncertserve:", err)
		os.Exit(1)
	}
}
