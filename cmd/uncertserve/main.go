// Command uncertserve serves uncertain-similarity queries over HTTP/JSON:
// a mutable corpus of uncertain series behind /query (topk, range,
// probtopk, probrange across all seven measures), /query/stream
// (incremental NDJSON results), /series (ingest and delete), /stats
// (corpus and per-measure engine accounting), /healthz (liveness plus
// durability state) and /admin/checkpoint (checkpoint + WAL compaction on
// demand).
//
// Usage:
//
//	uncertserve -addr :8080 -dataset CBF -series 64 -length 96 -sigma 0.6 -samples 5
//
// With -data the corpus is durable: every mutation is written ahead to a
// checksummed WAL under the given directory, checkpoints bound recovery
// time, and a restart (or crash) recovers the exact acknowledged state:
//
//	uncertserve -addr :8080 -data /var/lib/uncertserve -fsync always
//	curl -s localhost:8080/series -d '{"insert":[{"values":[...],"sigma":0.6}]}'
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/admin/checkpoint
//
// -fsync picks the durability/throughput trade-off: "always" fsyncs every
// mutation before acknowledging it, "interval" (default) batches fsyncs
// every -fsync-interval. A preload dataset (-dataset) seeds the store only
// when it is empty; on restart the persisted data wins.
//
// Query a resident series by its stable ID, or ship an ad-hoc series.
// Queries run under the request's context — hanging up cancels the scan —
// and accept a per-request timeout_ms (-timeout sets the server default):
//
//	curl -s localhost:8080/query -d '{"measure":"uema","type":"topk","k":5,"id":3,"timeout_ms":500}'
//	curl -s localhost:8080/query -d '{"measure":"proud","type":"probrange","eps":4.5,"tau":0.1,"series":{"values":[...],"sigma":0.6}}'
//	curl -sN localhost:8080/query/stream -d '{"measure":"euclidean","type":"range","eps":6,"id":3}'
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight requests
// get a deadline to finish, then the WAL is flushed, a final checkpoint
// is written, and the store is closed.
//
// Scaling out, two ways. -shards N partitions the corpus over N
// in-process shards behind one scatter-gather coordinator in this binary
// (with -data, each shard persists under <data>/shard-<i>); the HTTP
// surface stays /query, /series, /stats, /healthz:
//
//	uncertserve -addr :8090 -shards 4 -data /var/lib/uncertcluster
//
// Or run one plain uncertserve per shard and a separate coordinator-only
// process pointed at them — shard processes serve the /cluster endpoints
// the coordinator scatters over, exchanging the tightening top-k bound
// mid-query:
//
//	uncertserve -addr :8081 -dataset "" -data /var/lib/shard-0 &
//	uncertserve -addr :8082 -dataset "" -data /var/lib/shard-1 &
//	uncertserve -addr :8090 -coordinator http://localhost:8081,http://localhost:8082
//
// -shard-timeout bounds each shard's leg of a query; a shard that misses
// it (or is down) degrades the answer — partial results tagged
// "degraded" with per-shard detail — instead of failing it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"uncertts/internal/cluster"
	"uncertts/internal/corpus"
	"uncertts/internal/munich"
	"uncertts/internal/server"
	"uncertts/internal/store"
	"uncertts/internal/telemetry"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

type config struct {
	addr       string
	dataset    string
	series     int
	length     int
	seed       int64
	sigma      float64
	samples    int
	defWorkers int
	maxWorkers int
	mcSamples  int
	timeout    time.Duration
	noIndex    bool

	dataDir       string
	fsync         string
	fsyncEvery    time.Duration
	ckptBytes     int64
	shutdownGrace time.Duration

	shards       int
	coordinator  string
	shardTimeout time.Duration

	pprof     bool
	slowQuery time.Duration
}

func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("uncertserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.dataset, "dataset", "CBF", "synthetic dataset preloaded into the corpus (empty = start empty; ignored when -data was ever mutated)")
	fs.IntVar(&cfg.series, "series", 64, "number of series to preload")
	fs.IntVar(&cfg.length, "length", 96, "series length")
	fs.Int64Var(&cfg.seed, "seed", 1, "generation and perturbation seed")
	fs.Float64Var(&cfg.sigma, "sigma", 0.6, "error standard deviation (normal error)")
	fs.IntVar(&cfg.samples, "samples", 5, "repeated observations per timestamp (0 disables the MUNICH measure)")
	fs.IntVar(&cfg.defWorkers, "workers", 1, "default per-request worker budget")
	fs.IntVar(&cfg.maxWorkers, "max-workers", 0, "per-request worker budget cap (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.mcSamples, "munich-bins", 0, "MUNICH convolution estimator bins (0 = default)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "default per-query deadline for requests without timeout_ms, e.g. 2s (0 = none)")
	fs.BoolVar(&cfg.noIndex, "no-index", false, "serve every query through the linear scan, ignoring the sketch index")
	fs.StringVar(&cfg.dataDir, "data", "", "durable store directory (empty = in-memory corpus, restart loses everything)")
	fs.StringVar(&cfg.fsync, "fsync", "interval", "WAL fsync policy with -data: always (fsync before acknowledging each mutation) or interval")
	fs.DurationVar(&cfg.fsyncEvery, "fsync-interval", 100*time.Millisecond, "fsync period of -fsync interval")
	fs.Int64Var(&cfg.ckptBytes, "checkpoint-bytes", 8<<20, "WAL bytes past the last checkpoint that trigger a background checkpoint (negative disables)")
	fs.DurationVar(&cfg.shutdownGrace, "shutdown-grace", 10*time.Second, "deadline for in-flight requests on SIGINT/SIGTERM")
	fs.IntVar(&cfg.shards, "shards", 1, "partition the corpus over this many in-process shards behind a scatter-gather coordinator (1 = plain single-node serving)")
	fs.StringVar(&cfg.coordinator, "coordinator", "", "comma-separated shard base URLs; serve as a coordinator-only process over those remote shards")
	fs.DurationVar(&cfg.shardTimeout, "shard-timeout", 0, "per-shard query deadline in cluster modes; a shard missing it degrades the answer (0 = none)")
	fs.BoolVar(&cfg.pprof, "pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
	fs.DurationVar(&cfg.slowQuery, "slow-query", 0, "log any query slower than this threshold as a structured slow-query record, e.g. 200ms (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.timeout < 0 {
		return cfg, fmt.Errorf("-timeout = %v must be non-negative", cfg.timeout)
	}
	if cfg.length < 1 {
		return cfg, fmt.Errorf("-length = %d must be at least 1", cfg.length)
	}
	if cfg.sigma <= 0 {
		return cfg, fmt.Errorf("-sigma = %v must be positive", cfg.sigma)
	}
	if cfg.samples < 0 {
		return cfg, fmt.Errorf("-samples = %d must be non-negative", cfg.samples)
	}
	if cfg.dataset != "" && cfg.series < 1 {
		return cfg, fmt.Errorf("-series = %d must be at least 1", cfg.series)
	}
	if _, err := store.ParseSyncPolicy(cfg.fsync); err != nil {
		return cfg, err
	}
	if cfg.fsyncEvery <= 0 {
		return cfg, fmt.Errorf("-fsync-interval = %v must be positive", cfg.fsyncEvery)
	}
	if cfg.shutdownGrace <= 0 {
		return cfg, fmt.Errorf("-shutdown-grace = %v must be positive", cfg.shutdownGrace)
	}
	if cfg.shards < 1 {
		return cfg, fmt.Errorf("-shards = %d must be at least 1", cfg.shards)
	}
	if cfg.shardTimeout < 0 {
		return cfg, fmt.Errorf("-shard-timeout = %v must be non-negative", cfg.shardTimeout)
	}
	if cfg.slowQuery < 0 {
		return cfg, fmt.Errorf("-slow-query = %v must be non-negative", cfg.slowQuery)
	}
	if cfg.coordinator != "" {
		if cfg.shards > 1 {
			return cfg, fmt.Errorf("-coordinator and -shards are mutually exclusive (the remote shards own the data)")
		}
		if cfg.dataDir != "" {
			return cfg, fmt.Errorf("-coordinator does not take -data (the remote shards own the durable state)")
		}
	}
	return cfg, nil
}

// openCorpus returns the corpus to serve: a durable one recovered from
// -data when set, an in-memory one otherwise. The store is nil for the
// in-memory case.
func openCorpus(cfg config) (*corpus.Corpus, *store.Store, error) {
	ccfg := corpus.Config{Length: cfg.length, ReportedSigma: cfg.sigma}
	if cfg.dataDir == "" {
		return corpus.New(ccfg), nil, nil
	}
	policy, err := store.ParseSyncPolicy(cfg.fsync)
	if err != nil {
		return nil, nil, err
	}
	st, err := store.Open(cfg.dataDir, ccfg, store.Options{
		Sync:            policy,
		SyncEvery:       cfg.fsyncEvery,
		CheckpointBytes: cfg.ckptBytes,
	})
	if err != nil {
		return nil, nil, err
	}
	return st.Corpus(), st, nil
}

// preload seeds the corpus with the perturbed synthetic dataset, but only
// a pristine one: a recovered store keeps exactly its acknowledged state,
// including "operator deleted everything" (epoch > 0 with zero series),
// which must not be papered over with fresh synthetic data.
func preload(c *corpus.Corpus, cfg config, pristine bool) error {
	if cfg.dataset == "" || !pristine {
		return nil
	}
	ds, err := ucr.Generate(cfg.dataset, ucr.Options{MaxSeries: cfg.series, Length: cfg.length, Seed: cfg.seed})
	if err != nil {
		return err
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, cfg.sigma, cfg.length, cfg.seed)
	if err != nil {
		return err
	}
	batch := make([]corpus.Series, len(ds.Series))
	for i, s := range ds.Series {
		ps := pert.PerturbPDF(s)
		batch[i] = corpus.Series{Values: ps.Observations, Errors: ps.Errors, Label: s.Label}
		if cfg.samples > 0 {
			ss, err := pert.PerturbSamples(s, cfg.samples)
			if err != nil {
				return err
			}
			batch[i].Samples = ss.Samples
		}
	}
	_, err = c.InsertBatch(batch)
	return err
}

// buildServer assembles the corpus (durable when -data is set, optionally
// preloaded) and the server around it.
func buildServer(cfg config) (*server.Server, *store.Store, error) {
	c, st, err := openCorpus(cfg)
	if err != nil {
		return nil, nil, err
	}
	pristine := st == nil || c.Snapshot().Epoch() == 0
	if err := preload(c, cfg, pristine); err != nil {
		if st != nil {
			st.Close()
		}
		return nil, nil, err
	}
	return server.New(c, server.Options{
		DefaultWorkers: cfg.defWorkers,
		MaxWorkers:     cfg.maxWorkers,
		DefaultTimeout: cfg.timeout,
		MUNICH:         munich.Options{Bins: cfg.mcSamples},
		NoIndex:        cfg.noIndex,
		Store:          st,
	}), st, nil
}

// buildCluster assembles the single-binary multi-shard deployment: N
// in-process shards (each a full corpus + optional store + engine stack,
// persisting under <data>/shard-<i>) behind one scatter-gather
// coordinator. The preload dataset is routed through the coordinator so
// every series lands on its ShardFor home under its global ID — and only
// into a fully pristine cluster, mirroring the single-node rule.
func buildCluster(cfg config) (*cluster.Coordinator, []*store.Store, error) {
	shards := make([]cluster.Shard, cfg.shards)
	var stores []*store.Store
	closeAll := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	pristine := true
	for i := range shards {
		scfg := cfg
		if cfg.dataDir != "" {
			scfg.dataDir = filepath.Join(cfg.dataDir, fmt.Sprintf("shard-%d", i))
		}
		c, st, err := openCorpus(scfg)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if st != nil {
			stores = append(stores, st)
		}
		if c.Snapshot().Epoch() != 0 {
			pristine = false
		}
		shards[i] = cluster.NewLocal(fmt.Sprintf("shard-%d", i), server.New(c, server.Options{
			DefaultWorkers: cfg.defWorkers,
			MaxWorkers:     cfg.maxWorkers,
			MUNICH:         munich.Options{Bins: cfg.mcSamples},
			NoIndex:        cfg.noIndex,
			Store:          st,
		}))
	}
	co := cluster.New(shards, cluster.Options{ShardTimeout: cfg.shardTimeout})
	if pristine && cfg.dataset != "" {
		if err := preloadCluster(co, cfg); err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	return co, stores, nil
}

// preloadCluster seeds a pristine cluster with the same perturbed
// synthetic dataset the single-node preload uses, ingested through the
// coordinator in the same order — so the global IDs (and therefore every
// query answer) match a single node preloaded with the same flags.
func preloadCluster(co *cluster.Coordinator, cfg config) error {
	ds, err := ucr.Generate(cfg.dataset, ucr.Options{MaxSeries: cfg.series, Length: cfg.length, Seed: cfg.seed})
	if err != nil {
		return err
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, cfg.sigma, cfg.length, cfg.seed)
	if err != nil {
		return err
	}
	req := server.SeriesRequest{Insert: make([]server.SeriesJSON, len(ds.Series))}
	for i, s := range ds.Series {
		ps := pert.PerturbPDF(s)
		sj := server.SeriesJSON{Values: ps.Observations, Sigma: cfg.sigma, Label: s.Label}
		if cfg.samples > 0 {
			ss, err := pert.PerturbSamples(s, cfg.samples)
			if err != nil {
				return err
			}
			sj.Samples = ss.Samples
		}
		req.Insert[i] = sj
	}
	_, err = co.Mutate(context.Background(), req)
	return err
}

// buildHandler assembles the HTTP surface for whichever deployment the
// flags pick: coordinator-only over remote shards, single-binary
// multi-shard, or the plain single node. It returns every store that must
// be checkpointed and closed on shutdown.
func buildHandler(cfg config) (http.Handler, []*store.Store, error) {
	switch {
	case cfg.coordinator != "":
		var shards []cluster.Shard
		for i, u := range strings.Split(cfg.coordinator, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			shards = append(shards, cluster.NewHTTP(fmt.Sprintf("shard-%d", i), strings.TrimRight(u, "/"), nil))
		}
		if len(shards) == 0 {
			return nil, nil, fmt.Errorf("-coordinator needs at least one shard URL")
		}
		co := cluster.New(shards, cluster.Options{ShardTimeout: cfg.shardTimeout})
		log.Printf("uncertserve: coordinating %d remote shards", len(shards))
		return co.Handler(), nil, nil
	case cfg.shards > 1:
		co, stores, err := buildCluster(cfg)
		if err != nil {
			return nil, nil, err
		}
		resident := 0
		for _, sh := range co.Shards() {
			if l, ok := sh.(*cluster.LocalShard); ok {
				resident += l.Server().Corpus().Snapshot().Len()
			}
		}
		log.Printf("uncertserve: %d series over %d in-process shards", resident, cfg.shards)
		return co.Handler(), stores, nil
	default:
		srv, st, err := buildServer(cfg)
		if err != nil {
			return nil, nil, err
		}
		snap := srv.Corpus().Snapshot()
		if st != nil {
			log.Printf("uncertserve: durable store %s at epoch %d (fsync %s)", st.Dir(), snap.Epoch(), cfg.fsync)
			return srv.Handler(), []*store.Store{st}, nil
		}
		log.Printf("uncertserve: %d series x %d points resident", snap.Len(), snap.SeriesLen())
		return srv.Handler(), nil, nil
	}
}

// withPprof mounts the net/http/pprof handlers in front of the serving
// surface. Explicit routes (not the DefaultServeMux side effect of a
// blank import) so the profiles exist only when -pprof asked for them.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uncertserve:", err)
		os.Exit(2)
	}
	telemetry.DefaultTracer().SetSlowThreshold(cfg.slowQuery)
	handler, stores, err := buildHandler(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uncertserve:", err)
		os.Exit(1)
	}
	if cfg.pprof {
		handler = withPprof(handler)
		log.Printf("uncertserve: pprof profiles on /debug/pprof/")
	}
	log.Printf("uncertserve: listening on %s", cfg.addr)

	httpSrv := &http.Server{Addr: cfg.addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "uncertserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	log.Printf("uncertserve: shutting down (grace %v)", cfg.shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("uncertserve: shutdown: %v", err)
	}
	for _, st := range stores {
		// Flush + final checkpoint so the next start replays nothing.
		if err := st.Checkpoint(); err != nil && !errors.Is(err, store.ErrClosed) {
			log.Printf("uncertserve: final checkpoint: %v", err)
		}
		if err := st.Close(); err != nil {
			log.Printf("uncertserve: closing store: %v", err)
		}
	}
	log.Printf("uncertserve: bye")
}
