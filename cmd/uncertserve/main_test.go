package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseFlagsValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"bad length":  {"-length", "0"},
		"bad sigma":   {"-sigma", "-1"},
		"bad samples": {"-samples", "-2"},
		"bad series":  {"-series", "0"},
		"bad timeout": {"-timeout", "-1s"},
		"unknown":     {"-nope"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("%s (%v): expected an error", name, args)
		}
	}
	cfg, err := parseFlags([]string{"-series", "8", "-length", "32", "-samples", "0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.series != 8 || cfg.length != 32 || cfg.samples != 0 {
		t.Errorf("parsed config %+v", cfg)
	}
}

// TestEndToEnd builds the server on a tiny dataset and runs one query of
// each family through the HTTP handler.
func TestEndToEnd(t *testing.T) {
	cfg, err := parseFlags([]string{"-series", "12", "-length", "24", "-sigma", "0.5", "-samples", "3", "-munich-bins", "256"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Corpus().Len() != 12 {
		t.Fatalf("preloaded %d series, want 12", srv.Corpus().Len())
	}
	h := srv.Handler()
	for _, body := range []string{
		`{"measure":"euclidean","type":"topk","k":3,"id":0}`,
		`{"measure":"dtw","type":"topk","k":3,"id":1,"workers":2}`,
		`{"measure":"proud","type":"probrange","eps":3,"tau":0.1,"id":2}`,
		`{"measure":"munich","type":"probtopk","eps":3,"k":3,"id":3}`,
	} {
		req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("query %s: status %d: %s", body, rec.Code, rec.Body.String())
		}
		var resp map[string]interface{}
		if err := json.NewDecoder(bytes.NewReader(rec.Body.Bytes())).Decode(&resp); err != nil {
			t.Fatalf("query %s: bad JSON: %v", body, err)
		}
	}
	// An empty-dataset server starts with an empty corpus.
	empty, err := buildServer(config{dataset: "", length: 24, sigma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Corpus().Len() != 0 {
		t.Error("empty server should start with no series")
	}
}
