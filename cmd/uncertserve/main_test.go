package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"uncertts/internal/server"
	"uncertts/internal/store"
)

// jsonEqual compares two decoded JSON values structurally.
func jsonEqual(a, b interface{}) bool { return reflect.DeepEqual(a, b) }

func TestParseFlagsValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"bad length":  {"-length", "0"},
		"bad sigma":   {"-sigma", "-1"},
		"bad samples": {"-samples", "-2"},
		"bad series":  {"-series", "0"},
		"bad timeout": {"-timeout", "-1s"},
		"unknown":     {"-nope"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("%s (%v): expected an error", name, args)
		}
	}
	for name, args := range map[string][]string{
		"bad fsync":            {"-fsync", "sometimes"},
		"bad fsync interval":   {"-fsync-interval", "0s"},
		"bad grace":            {"-shutdown-grace", "-1s"},
		"bad shards":           {"-shards", "0"},
		"bad shard timeout":    {"-shard-timeout", "-1s"},
		"coordinator + shards": {"-coordinator", "http://localhost:1", "-shards", "2"},
		"coordinator + data":   {"-coordinator", "http://localhost:1", "-data", "/tmp/x"},
	} {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("%s (%v): expected an error", name, args)
		}
	}
	cfg, err := parseFlags([]string{"-series", "8", "-length", "32", "-samples", "0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.series != 8 || cfg.length != 32 || cfg.samples != 0 {
		t.Errorf("parsed config %+v", cfg)
	}
	if cfg.fsync != "interval" || cfg.dataDir != "" {
		t.Errorf("durability defaults %+v", cfg)
	}
}

// TestEndToEnd builds the server on a tiny dataset and runs one query of
// each family through the HTTP handler.
func TestEndToEnd(t *testing.T) {
	cfg, err := parseFlags([]string{"-series", "12", "-length", "24", "-sigma", "0.5", "-samples", "3", "-munich-bins", "256"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Corpus().Len() != 12 {
		t.Fatalf("preloaded %d series, want 12", srv.Corpus().Len())
	}
	h := srv.Handler()
	for _, body := range []string{
		`{"measure":"euclidean","type":"topk","k":3,"id":0}`,
		`{"measure":"dtw","type":"topk","k":3,"id":1,"workers":2}`,
		`{"measure":"proud","type":"probrange","eps":3,"tau":0.1,"id":2}`,
		`{"measure":"munich","type":"probtopk","eps":3,"k":3,"id":3}`,
	} {
		req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("query %s: status %d: %s", body, rec.Code, rec.Body.String())
		}
		var resp map[string]interface{}
		if err := json.NewDecoder(bytes.NewReader(rec.Body.Bytes())).Decode(&resp); err != nil {
			t.Fatalf("query %s: bad JSON: %v", body, err)
		}
	}
	// An empty-dataset server starts with an empty corpus.
	empty, _, err := buildServer(config{dataset: "", length: 24, sigma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Corpus().Len() != 0 {
		t.Error("empty server should start with no series")
	}
}

// TestShardedServerMatchesSingleNode builds the same preloaded workload
// twice — once as a plain single node, once as a durable 3-shard cluster
// in one binary — and checks that every query family answers
// bit-identically through both handlers (the cluster epoch differs by
// construction). It then rebuilds the cluster from the shard store
// directories and checks the answers survive the restart.
func TestShardedServerMatchesSingleNode(t *testing.T) {
	base := []string{"-series", "12", "-length", "24", "-sigma", "0.5", "-samples", "3", "-munich-bins", "256"}
	cfg, err := parseFlags(base, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	single, _, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	clusterArgs := append(append([]string{}, base...), "-shards", "3", "-data", dir)
	ccfg, err := parseFlags(clusterArgs, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sharded, stores, err := buildHandler(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`{"measure":"euclidean","type":"topk","k":4,"id":0}`,
		`{"measure":"uema","type":"range","eps":4,"id":1}`,
		`{"measure":"dust","type":"topk","k":3,"id":2}`,
		`{"measure":"proud","type":"probrange","eps":3,"tau":0.1,"id":2}`,
		`{"measure":"munich","type":"probtopk","eps":3,"k":3,"id":3}`,
	}
	query := func(t *testing.T, h http.Handler, body string) map[string]interface{} {
		t.Helper()
		req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("query %s: status %d: %s", body, rec.Code, rec.Body.String())
		}
		var resp map[string]interface{}
		if err := json.NewDecoder(bytes.NewReader(rec.Body.Bytes())).Decode(&resp); err != nil {
			t.Fatalf("query %s: bad JSON: %v", body, err)
		}
		delete(resp, "epoch")
		return resp
	}
	for _, body := range queries {
		want := query(t, single.Handler(), body)
		got := query(t, sharded, body)
		if !jsonEqual(want, got) {
			t.Errorf("query %s: cluster answer diverges\n want %v\n  got %v", body, want, got)
		}
	}

	for _, st := range stores {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recovered, stores2, err := buildHandler(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, st := range stores2 {
			st.Close()
		}
	}()
	for _, body := range queries {
		want := query(t, single.Handler(), body)
		got := query(t, recovered, body)
		if !jsonEqual(want, got) {
			t.Errorf("query %s after restart: cluster answer diverges\n want %v\n  got %v", body, want, got)
		}
	}
}

// TestDurableServerSurvivesRestart builds a durable server, ingests
// through the HTTP handler, tears everything down, and rebuilds from the
// same directory: the preload must be skipped and the ingested series
// must be back.
func TestDurableServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	mk := func() (sv *server.Server, st *store.Store) {
		cfg, err := parseFlags([]string{"-series", "6", "-length", "16", "-sigma", "0.5", "-samples", "2", "-data", dir, "-fsync", "always"}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		sv, st, err = buildServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sv, st
	}
	srv, st := mk()
	if srv.Corpus().Len() != 6 {
		t.Fatalf("preloaded %d series, want 6", srv.Corpus().Len())
	}
	vals := strings.Repeat("0.5,", 15) + "0.5"
	req := httptest.NewRequest("POST", "/series", strings.NewReader(`{"insert":[{"values":[`+vals+`],"sigma":0.4}]}`))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
	}
	wantEpoch := srv.Corpus().Snapshot().Epoch()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, st2 := mk()
	defer st2.Close()
	if got := srv2.Corpus().Len(); got != 7 {
		t.Fatalf("recovered %d series, want 7 (6 preloaded + 1 ingested, no re-preload)", got)
	}
	if got := srv2.Corpus().Snapshot().Epoch(); got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	q := httptest.NewRequest("POST", "/query", strings.NewReader(`{"measure":"euclidean","type":"topk","k":3,"id":6}`))
	qrec := httptest.NewRecorder()
	srv2.Handler().ServeHTTP(qrec, q)
	if qrec.Code != 200 {
		t.Fatalf("query after recovery: status %d: %s", qrec.Code, qrec.Body.String())
	}

	// Durably deleting everything must stick across a restart: an emptied
	// store is not pristine, so the preload must not resurrect the
	// synthetic dataset.
	ids := srv2.Corpus().Snapshot().IDs()
	if err := srv2.Corpus().Delete(ids...); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	srv3, st3 := mk()
	defer st3.Close()
	if got := srv3.Corpus().Len(); got != 0 {
		t.Fatalf("restart after delete-all resurrected %d series, want 0", got)
	}
}
