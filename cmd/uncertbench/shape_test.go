package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// jsonKeys marshals v and returns the sorted key set of the resulting
// object, so a struct's wire shape can be pinned independently of its
// Go field names.
func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestReportWireShapes pins the exact JSON key set of every -json report
// type. A renamed or dropped json tag fails here immediately, instead of
// silently producing BENCH_*.json files that no longer line up with the
// checked-in baselines.
func TestReportWireShapes(t *testing.T) {
	want := map[string]struct {
		value any
		keys  []string
	}{
		"BenchResult": {BenchResult{}, []string{
			"abandoned_early", "candidates", "completed", "direct_ns_per_op",
			"length", "measure", "ns_per_op", "pruned_by_envelope",
			"pruned_fraction", "queries", "resolved_by_bounds",
			"resolved_early", "run_ns_per_op", "series",
		}},
		"StoreBenchResult": {StoreBenchResult{}, []string{
			"checkpoint_load_ns_per_series", "ingest_ns_per_series", "length",
			"replay_ns_per_series", "samples", "series", "wal_bytes_per_series",
		}},
		"BenchReport": {BenchReport{}, []string{"measures", "store"}},
		"ScanMeasureResult": {ScanMeasureResult{}, []string{
			"abandoned_early", "buckets_pruned", "buckets_visited",
			"candidates", "completed", "index_skipped_fraction",
			"indexed_ns_per_op", "kind", "matches", "measure", "ns_per_op",
			"pruned_by_envelope", "pruned_fraction", "resolved_by_bounds",
			"resolved_early", "series_skipped_by_index",
		}},
		"ScanLayoutResult": {ScanLayoutResult{}, []string{
			"arena_ns_per_scan", "kernel", "scattered_ns_per_scan",
			"scattered_over_arena",
		}},
		"ObsBenchResult": {ObsBenchResult{}, []string{
			"measure", "obs_ns_per_op", "obs_over_plain", "plain_ns_per_op",
		}},
		"ScanBenchReport": {ScanBenchReport{}, []string{
			"build_ns", "calibrate_ns", "eps", "index_build_ns", "layout",
			"length", "measures", "obs", "queries", "samples", "seed",
			"series", "tau", "workers",
		}},
		"ClusterMeasureResult": {ClusterMeasureResult{}, []string{
			"cluster_ns_per_op", "completed_single",
			"completed_with_propagation", "completed_without_propagation",
			"measure", "merge_overhead", "no_prop_ns_per_op",
			"propagation_saved_fraction", "single_ns_per_op",
		}},
		"ClusterBenchReport": {ClusterBenchReport{}, []string{
			"build_ns", "k", "length", "measures", "queries", "samples",
			"seed", "series", "shards", "workers",
		}},
	}
	for name, tc := range want {
		if got := jsonKeys(t, tc.value); !reflect.DeepEqual(got, tc.keys) {
			t.Errorf("%s wire shape drifted:\n got %v\nwant %v", name, got, tc.keys)
		}
	}
}

// strictDecode decodes data into v rejecting unknown fields, and requires
// the document to contain exactly one JSON value.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after document")
	}
	return nil
}

// TestBaselineArtifactsMatchShape strict-decodes every checked-in
// BENCH_PR*.json at the repository root against the report types above.
// Exactly one document shape must accept each file (older baselines are
// bare []BenchResult arrays from before the store record existed; fields
// added since are simply absent there). If a report struct is reshaped
// without migrating or versioning the baselines, this fails.
func TestBaselineArtifactsMatchShape(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "BENCH_PR*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_PR*.json baselines found at the repository root")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(f)
		var matched []string

		var legacy []BenchResult
		if strictDecode(data, &legacy) == nil {
			matched = append(matched, "[]BenchResult")
			if len(legacy) == 0 {
				t.Errorf("%s: empty measure list", name)
			}
			for _, r := range legacy {
				if r.Measure == "" || r.NsPerOp <= 0 {
					t.Errorf("%s: implausible measure record %+v", name, r)
				}
			}
		}
		var engine BenchReport
		if strictDecode(data, &engine) == nil {
			matched = append(matched, "BenchReport")
			if len(engine.Measures) == 0 || engine.Store.IngestNsPerSeries <= 0 {
				t.Errorf("%s: implausible engine report", name)
			}
		}
		var scan ScanBenchReport
		if strictDecode(data, &scan) == nil {
			matched = append(matched, "ScanBenchReport")
			if len(scan.Measures) == 0 || len(scan.Layout) == 0 {
				t.Errorf("%s: implausible scan report", name)
			}
		}
		var clus ClusterBenchReport
		if strictDecode(data, &clus) == nil {
			matched = append(matched, "ClusterBenchReport")
			if len(clus.Measures) == 0 || clus.Shards < 2 {
				t.Errorf("%s: implausible cluster report", name)
			}
			for _, r := range clus.Measures {
				if r.CompletedWithProp >= r.CompletedWithoutProp {
					t.Errorf("%s: %s records no propagation gain (%d with vs %d without)",
						name, r.Measure, r.CompletedWithProp, r.CompletedWithoutProp)
				}
			}
		}

		if len(matched) != 1 {
			t.Errorf("%s: matched document shapes %v, want exactly one", name, matched)
		}
	}
}
