// Command uncertbench regenerates the paper's evaluation figures and
// benchmarks the query engine.
//
// Usage:
//
//	uncertbench -exp fig5 -scale medium -seed 42
//	uncertbench -exp all -scale small
//	uncertbench -list
//
// Each experiment prints one or more tables whose rows mirror the series
// plotted in the corresponding figure of the paper.
//
// The -bench mode times one batched query per measure through the pruned
// engine and reports ns/op next to the pruning counters; -json switches
// the report to machine-readable JSON so the perf trajectory can be
// tracked across changes (the repository keeps baselines as BENCH_*.json):
//
//	uncertbench -bench -scale small -json > BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"uncertts/internal/core"
	"uncertts/internal/engine"
	"uncertts/internal/experiments"
	"uncertts/internal/munich"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// run is main with its environment injected, so tests can drive the
// command end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uncertbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment to run (fig4..fig17, chisquare, topk, classify, or 'all')")
		scale    = fs.String("scale", "small", "workload scale: small, medium or full")
		seed     = fs.Int64("seed", 42, "random seed; equal seeds reproduce identical tables")
		list     = fs.Bool("list", false, "list available experiments and exit")
		outDir   = fs.String("out", "", "also write each table as a TSV file into this directory")
		bench    = fs.Bool("bench", false, "benchmark the query engine (one batched query per measure) instead of running experiments")
		jsonOut  = fs.Bool("json", false, "emit -bench results as JSON (machine-readable; requires -bench)")
		benchTau = fs.Float64("tau", 0.1, "probability threshold of the -bench probabilistic queries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *jsonOut && !*bench {
		return fmt.Errorf("-json requires -bench (experiment tables are TSV; use -out)")
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	if *bench {
		if *benchTau <= 0 || *benchTau >= 1 {
			return fmt.Errorf("-tau = %v outside (0, 1)", *benchTau)
		}
		return runBench(stdout, stderr, sc, *seed, *benchTau, *jsonOut)
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	registry := experiments.Registry()
	for _, name := range names {
		runner, ok := registry[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; use -list to see the options", name)
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
			if *outDir != "" {
				if err := writeTSV(*outDir, t); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(stderr, "%s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uncertbench:", err)
		os.Exit(1)
	}
}

// BenchResult is the machine-readable record of one measure's benchmark:
// wall time per query plus the engine's pruning counters, so the perf
// trajectory (and the pruning behaviour behind it) can be tracked across
// changes.
type BenchResult struct {
	Measure          string  `json:"measure"`
	Queries          int     `json:"queries"`
	Series           int     `json:"series"`
	Length           int     `json:"length"`
	NsPerOp          int64   `json:"ns_per_op"`
	Candidates       int64   `json:"candidates"`
	Completed        int64   `json:"completed"`
	AbandonedEarly   int64   `json:"abandoned_early"`
	PrunedByEnvelope int64   `json:"pruned_by_envelope"`
	ResolvedByBounds int64   `json:"resolved_by_bounds"`
	ResolvedEarly    int64   `json:"resolved_early"`
	PrunedFraction   float64 `json:"pruned_fraction"`
}

// benchShape maps a scale to the benchmark workload size.
func benchShape(sc experiments.Scale) (series, length int) {
	switch sc {
	case experiments.ScaleFull:
		return 96, 128
	case experiments.ScaleMedium:
		return 48, 96
	default:
		return 24, 48
	}
}

// runBench times one batched query per measure over a shared workload:
// top-10 for the distance measures, a probabilistic range query at the
// calibrated eps for PROUD and MUNICH.
func runBench(stdout, stderr io.Writer, sc experiments.Scale, seed int64, tau float64, asJSON bool) error {
	series, length := benchShape(sc)
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: series, Length: length, Seed: seed})
	if err != nil {
		return err
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.5, length, seed)
	if err != nil {
		return err
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 5, SamplesPerTS: 5})
	if err != nil {
		return err
	}
	queries := make([]int, w.Len())
	var epsSum float64
	for i := range queries {
		queries[i] = i
		epsSum += w.EpsEucl(i)
	}
	eps := epsSum / float64(len(queries))

	var results []BenchResult
	for _, m := range engine.Measures() {
		e, err := engine.New(w, engine.Options{Measure: m, MUNICH: munich.Options{Bins: 1024}})
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		start := time.Now()
		if m.Probabilistic() {
			if _, err := e.ProbRangeBatch(queries, eps, tau); err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
		} else {
			if _, err := e.TopKBatch(queries, 10); err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
		}
		elapsed := time.Since(start)
		st := e.Stats()
		r := BenchResult{
			Measure:          m.String(),
			Queries:          len(queries),
			Series:           series,
			Length:           length,
			NsPerOp:          elapsed.Nanoseconds() / int64(len(queries)),
			Candidates:       st.Candidates,
			Completed:        st.Completed,
			AbandonedEarly:   st.AbandonedEarly,
			PrunedByEnvelope: st.PrunedByEnvelope,
			ResolvedByBounds: st.ResolvedByBounds,
			ResolvedEarly:    st.ResolvedEarly,
		}
		if st.Candidates > 0 {
			r.PrunedFraction = float64(st.Pruned()) / float64(st.Candidates)
		}
		results = append(results, r)
		fmt.Fprintf(stderr, "%s done in %v\n", m, elapsed.Round(time.Millisecond))
	}

	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	fmt.Fprintf(stdout, "%-10s %14s %12s %12s %10s %10s\n", "measure", "ns/op", "candidates", "completed", "abandoned", "pruned%")
	for _, r := range results {
		fmt.Fprintf(stdout, "%-10s %14d %12d %12d %10d %9.1f%%\n",
			r.Measure, r.NsPerOp, r.Candidates, r.Completed, r.AbandonedEarly, 100*r.PrunedFraction)
	}
	return nil
}

// writeTSV saves a table as <dir>/<name>.tsv, one header line plus one line
// per row, tab-separated — directly loadable by gnuplot or pandas.
func writeTSV(dir string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.Name+".tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(f, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return f.Close()
}
