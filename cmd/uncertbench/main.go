// Command uncertbench regenerates the paper's evaluation figures and
// benchmarks the query engine.
//
// Usage:
//
//	uncertbench -exp fig5 -scale medium -seed 42
//	uncertbench -exp all -scale small
//	uncertbench -list
//
// Each experiment prints one or more tables whose rows mirror the series
// plotted in the corresponding figure of the paper.
//
// The -bench mode times one batched query per measure through the pruned
// engine and reports ns/op next to the pruning counters, plus the
// durability subsystem's throughput (WAL ingest, WAL replay on recovery,
// checkpoint load); -json switches the report to machine-readable JSON so
// the perf trajectory can be tracked across changes (the repository keeps
// baselines as BENCH_*.json):
//
//	uncertbench -bench -scale small -json > BENCH.json
//
// Two regression gates ride the bench for CI: -wrapper-max bounds the
// declarative Engine.Run wrapper against the direct prepared path, and
// -replay-max bounds WAL replay against fresh ingest (replay rebuilds the
// same artifacts and must stay in the same ballpark).
//
// Passing an explicit shape (-series/-length) or the bench-only preset
// -scale large (100k series x 128 points) switches -bench to the
// production-scale scan bench: the corpus is populated directly (no O(N^2)
// ground truth), eps is calibrated from the query set's Euclidean 5-NN
// distances, every selected measure's batched scan is timed through the
// engine, and a layout A/B runs the identical Euclidean and DTW kernels
// over the contiguous columnar arena versus scattered per-series heap
// copies. -scan-max-ns turns the per-measure ns/op into a CI gate, and
// -cpuprofile/-memprofile capture pprof profiles of either bench mode:
//
//	uncertbench -bench -scale large -json > BENCH_PR6.json
//	uncertbench -bench -series 10000 -length 256 -measures euclidean,dtw -scan-max-ns 2000000000
//
// Adding -shards N (N >= 2) to the production-scale bench switches to the
// cluster bench: the same corpus is served by a single node and by an
// N-shard in-process scatter-gather cluster, and each top-k measure is
// timed through both, plus through the cluster with mid-flight bound
// propagation disabled — recording the merge overhead and the full
// refinements the shared pruning cut saves (the run fails unless
// propagation strictly reduces them):
//
//	uncertbench -bench -series 100000 -length 128 -samples 0 -shards 4 -measures euclidean,uma,uema,dtw -json > BENCH_PR9.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"uncertts/internal/core"
	"uncertts/internal/corpus"
	"uncertts/internal/engine"
	"uncertts/internal/experiments"
	"uncertts/internal/munich"
	"uncertts/internal/store"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// run is main with its environment injected, so tests can drive the
// command end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uncertbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment to run (fig4..fig17, chisquare, topk, classify, or 'all')")
		scale     = fs.String("scale", "small", "workload scale: small, medium or full")
		seed      = fs.Int64("seed", 42, "random seed; equal seeds reproduce identical tables")
		list      = fs.Bool("list", false, "list available experiments and exit")
		outDir    = fs.String("out", "", "also write each table as a TSV file into this directory")
		bench     = fs.Bool("bench", false, "benchmark the query engine (one batched query per measure) instead of running experiments")
		jsonOut   = fs.Bool("json", false, "emit -bench results as JSON (machine-readable; requires -bench)")
		benchTau  = fs.Float64("tau", 0.1, "probability threshold of the -bench probabilistic queries")
		wrapMax   = fs.Float64("wrapper-max", 0, "fail if any measure's Run-path ns/op exceeds wrapper-max times the direct path (0 = no check; requires -bench)")
		replayMax = fs.Float64("replay-max", 0, "fail if WAL replay ns/series exceeds replay-max times ingest ns/series (0 = no check; requires -bench)")

		seriesN    = fs.Int("series", 0, "production-scale scan bench: corpus size (requires -bench; 0 = follow -scale)")
		shardsN    = fs.Int("shards", 0, "cluster bench: serve the scan-bench corpus from this many in-process shards and record merge overhead and bound-propagation gains against a single node (requires -bench and the scan shape; >= 2)")
		lengthN    = fs.Int("length", 0, "production-scale scan bench: series length (requires -bench; 0 = 128 when -series or -scale large selects the scan bench)")
		queriesN   = fs.Int("queries", 8, "scan bench: number of query series")
		samplesN   = fs.Int("samples", 3, "scan bench: repeated observations per timestamp (the MUNICH input; 0 disables MUNICH)")
		workersN   = fs.Int("workers", 0, "scan bench: engine worker bound (0 = GOMAXPROCS)")
		measures   = fs.String("measures", "all", "scan bench: comma-separated measures (euclidean,uma,uema,dtw,dust,proud,munich or 'all')")
		scanMaxNs  = fs.Int64("scan-max-ns", 0, "fail if any scan-bench measure exceeds this ns/op (0 = no check; the CI regression gate)")
		idxMaxNs   = fs.Int64("indexed-max-ns", 0, "fail if any indexed scan-bench measure exceeds this ns/op or skips no series through the sketch index (0 = no check)")
		obsMax     = fs.Float64("obs-max", 0, "fail if the telemetry-instrumented scan-bench arm exceeds obs-max times the uninstrumented arm, e.g. 1.03 for a 3% budget (0 = no check)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the -bench run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile at the end of the -bench run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *jsonOut && !*bench {
		return fmt.Errorf("-json requires -bench (experiment tables are TSV; use -out)")
	}
	if *wrapMax != 0 && !*bench {
		return fmt.Errorf("-wrapper-max requires -bench")
	}
	if *wrapMax < 0 {
		return fmt.Errorf("-wrapper-max = %v must be non-negative", *wrapMax)
	}
	if *replayMax != 0 && !*bench {
		return fmt.Errorf("-replay-max requires -bench")
	}
	if *replayMax < 0 {
		return fmt.Errorf("-replay-max = %v must be non-negative", *replayMax)
	}
	if !*bench {
		for name, set := range map[string]bool{
			"-series": *seriesN != 0, "-length": *lengthN != 0, "-shards": *shardsN != 0,
			"-scan-max-ns": *scanMaxNs != 0, "-indexed-max-ns": *idxMaxNs != 0, "-obs-max": *obsMax != 0,
			"-cpuprofile": *cpuprofile != "", "-memprofile": *memprofile != "",
		} {
			if set {
				return fmt.Errorf("%s requires -bench", name)
			}
		}
		if *scale == "large" {
			return fmt.Errorf("-scale large is a bench-only preset (use with -bench)")
		}
	}
	if *seriesN < 0 || *lengthN < 0 || *queriesN <= 0 || *samplesN < 0 || *workersN < 0 {
		return fmt.Errorf("-series/-length/-samples/-workers must be non-negative and -queries positive")
	}
	if *scanMaxNs < 0 {
		return fmt.Errorf("-scan-max-ns = %d must be non-negative", *scanMaxNs)
	}
	if *idxMaxNs < 0 {
		return fmt.Errorf("-indexed-max-ns = %d must be non-negative", *idxMaxNs)
	}
	if *obsMax != 0 && *obsMax < 1 {
		return fmt.Errorf("-obs-max = %v must be at least 1 (a ratio over the uninstrumented arm; 0 = no check)", *obsMax)
	}
	if *shardsN != 0 && *shardsN < 2 {
		return fmt.Errorf("-shards = %d: a cluster needs at least 2 shards (omit the flag for the single-node bench)", *shardsN)
	}

	if *bench {
		if *benchTau <= 0 || *benchTau >= 1 {
			return fmt.Errorf("-tau = %v outside (0, 1)", *benchTau)
		}
		// An explicit shape (or the large preset) selects the
		// production-scale scan bench over the evaluation-workload bench:
		// the latter computes an O(N^2) ground truth and tops out at a few
		// hundred series.
		if *seriesN > 0 || *lengthN > 0 || *scale == "large" {
			if *wrapMax != 0 || *replayMax != 0 {
				return fmt.Errorf("-wrapper-max/-replay-max apply to the workload bench, not the scan bench")
			}
			p := scanParams{
				series: *seriesN, length: *lengthN, queries: *queriesN,
				samples: *samplesN, workers: *workersN, shards: *shardsN,
				seed: *seed, tau: *benchTau, maxNs: *scanMaxNs, indexedMaxNs: *idxMaxNs,
				obsMax: *obsMax,
			}
			if p.series == 0 {
				p.series = 100_000
			}
			if p.length == 0 {
				p.length = 128
			}
			if p.series < 2*p.queries {
				return fmt.Errorf("-series = %d too small for %d queries", p.series, p.queries)
			}
			ms, err := parseMeasures(*measures, p.samples)
			if err != nil {
				return err
			}
			p.measures = ms
			if p.shards >= 2 {
				if p.maxNs != 0 || p.indexedMaxNs != 0 || p.obsMax != 0 {
					return fmt.Errorf("-scan-max-ns/-indexed-max-ns/-obs-max gate the scan bench, not the cluster bench")
				}
				return withProfiles(*cpuprofile, *memprofile, func() error {
					return runClusterBench(stdout, stderr, p, *jsonOut)
				})
			}
			return withProfiles(*cpuprofile, *memprofile, func() error {
				return runScanBench(stdout, stderr, p, *jsonOut)
			})
		}
		if *shardsN != 0 {
			return fmt.Errorf("-shards needs the production-scale shape (-series/-length or -scale large)")
		}
		sc, err := experiments.ParseScale(*scale)
		if err != nil {
			return err
		}
		return withProfiles(*cpuprofile, *memprofile, func() error {
			return runBench(stdout, stderr, sc, *seed, *benchTau, *jsonOut, *wrapMax, *replayMax)
		})
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	registry := experiments.Registry()
	for _, name := range names {
		runner, ok := registry[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; use -list to see the options", name)
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
			if *outDir != "" {
				if err := writeTSV(*outDir, t); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(stderr, "%s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uncertbench:", err)
		os.Exit(1)
	}
}

// parseMeasures resolves the -measures list. "all" expands to every
// measure, minus MUNICH when the bench corpus carries no samples (MUNICH
// requires the repeated-observation model); naming munich explicitly with
// -samples 0 is an error rather than a silent skip.
func parseMeasures(spec string, samples int) ([]engine.Measure, error) {
	if strings.EqualFold(spec, "all") {
		ms := engine.Measures()
		if samples == 0 {
			kept := ms[:0]
			for _, m := range ms {
				if m != engine.MeasureMUNICH {
					kept = append(kept, m)
				}
			}
			ms = kept
		}
		return ms, nil
	}
	var ms []engine.Measure
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		m, err := engine.ParseMeasure(tok)
		if err != nil {
			return nil, err
		}
		if m == engine.MeasureMUNICH && samples == 0 {
			return nil, fmt.Errorf("-measures munich requires -samples > 0")
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("-measures %q selects nothing", spec)
	}
	return ms, nil
}

// withProfiles brackets f with optional CPU and heap profiling.
func withProfiles(cpuPath, memPath string, f func() error) error {
	if cpuPath != "" {
		cf, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
		}()
	}
	if err := f(); err != nil {
		return err
	}
	if memPath != "" {
		mf, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC()
		return pprof.WriteHeapProfile(mf)
	}
	return nil
}

// writeJSON renders v as indented JSON.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// BenchResult is the machine-readable record of one measure's benchmark:
// wall time per query plus the engine's pruning counters, so the perf
// trajectory (and the pruning behaviour behind it) can be tracked across
// changes. ns_per_op times the batched direct path (the historical
// figure); direct_ns_per_op and run_ns_per_op time the same workload one
// query at a time through the prepared direct core and through the
// declarative Engine.Run entry point — their ratio is the cost of the
// request/validation/planning wrapper, which must stay ~free.
type BenchResult struct {
	Measure          string  `json:"measure"`
	Queries          int     `json:"queries"`
	Series           int     `json:"series"`
	Length           int     `json:"length"`
	NsPerOp          int64   `json:"ns_per_op"`
	DirectNsPerOp    int64   `json:"direct_ns_per_op"`
	RunNsPerOp       int64   `json:"run_ns_per_op"`
	Candidates       int64   `json:"candidates"`
	Completed        int64   `json:"completed"`
	AbandonedEarly   int64   `json:"abandoned_early"`
	PrunedByEnvelope int64   `json:"pruned_by_envelope"`
	ResolvedByBounds int64   `json:"resolved_by_bounds"`
	ResolvedEarly    int64   `json:"resolved_early"`
	PrunedFraction   float64 `json:"pruned_fraction"`
}

// StoreBenchResult is the machine-readable record of the durability
// subsystem's throughput on the bench workload: the cost of acknowledging
// one series through the write-ahead log, the cost of replaying one series
// from the log on recovery, and the cost of loading one series from a
// checkpoint (each includes rebuilding the derived index artifacts, which
// dominates — the on-disk format's own overhead is the ingest/replay gap).
type StoreBenchResult struct {
	Series                    int   `json:"series"`
	Length                    int   `json:"length"`
	Samples                   int   `json:"samples"`
	IngestNsPerSeries         int64 `json:"ingest_ns_per_series"`
	ReplayNsPerSeries         int64 `json:"replay_ns_per_series"`
	CheckpointLoadNsPerSeries int64 `json:"checkpoint_load_ns_per_series"`
	WALBytesPerSeries         int64 `json:"wal_bytes_per_series"`
}

// BenchReport is the full -bench -json document: per-measure query
// benchmarks plus the store throughput record.
type BenchReport struct {
	Measures []BenchResult    `json:"measures"`
	Store    StoreBenchResult `json:"store"`
}

// benchShape maps a scale to the benchmark workload size.
func benchShape(sc experiments.Scale) (series, length int) {
	switch sc {
	case experiments.ScaleFull:
		return 96, 128
	case experiments.ScaleMedium:
		return 48, 96
	default:
		return 24, 48
	}
}

// runBench times one batched query per measure over a shared workload
// (top-10 for the distance measures, a probabilistic range query at the
// calibrated eps for PROUD and MUNICH), then the durable store's
// ingest/replay/checkpoint throughput on the same shape.
func runBench(stdout, stderr io.Writer, sc experiments.Scale, seed int64, tau float64, asJSON bool, wrapperMax, replayMax float64) error {
	series, length := benchShape(sc)
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: series, Length: length, Seed: seed})
	if err != nil {
		return err
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.5, length, seed)
	if err != nil {
		return err
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 5, SamplesPerTS: 5})
	if err != nil {
		return err
	}
	queries := make([]int, w.Len())
	var epsSum float64
	for i := range queries {
		queries[i] = i
		epsSum += w.EpsEucl(i)
	}
	eps := epsSum / float64(len(queries))

	var results []BenchResult
	for _, m := range engine.Measures() {
		e, err := engine.New(w, engine.Options{Measure: m, MUNICH: munich.Options{Bins: 1024}})
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		start := time.Now()
		if m.Probabilistic() {
			if _, err := e.ProbRangeBatch(queries, eps, tau); err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
		} else {
			if _, err := e.TopKBatch(queries, 10); err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
		}
		elapsed := time.Since(start)
		st := e.Stats()

		// Time the same workload one query at a time through the prepared
		// direct core and through Engine.Run. Both passes are sequential
		// per query, so their difference isolates the declarative
		// wrapper's cost (validation, planning, result assembly). Best of
		// a few rounds, to keep scheduler noise out of the ratio.
		direct, err := bestOfRounds(func() error {
			for _, qi := range queries {
				pq, err := e.PrepareIndex(qi)
				if err != nil {
					return err
				}
				if m.Probabilistic() {
					_, err = e.ProbRangePrepared([]*engine.PreparedQuery{pq}, eps, tau)
				} else {
					_, err = e.TopKPrepared([]*engine.PreparedQuery{pq}, 10)
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s direct: %w", m, err)
		}
		runPath, err := bestOfRounds(func() error {
			for i := range queries {
				req := engine.Request{Measure: m, Index: &queries[i]}
				if m.Probabilistic() {
					req.Kind, req.Eps, req.Tau = engine.KindProbRange, eps, tau
				} else {
					req.Kind, req.K = engine.KindTopK, 10
				}
				if _, err := e.Run(context.Background(), req); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s run: %w", m, err)
		}

		r := BenchResult{
			Measure:          m.String(),
			Queries:          len(queries),
			Series:           series,
			Length:           length,
			NsPerOp:          elapsed.Nanoseconds() / int64(len(queries)),
			DirectNsPerOp:    direct.Nanoseconds() / int64(len(queries)),
			RunNsPerOp:       runPath.Nanoseconds() / int64(len(queries)),
			Candidates:       st.Candidates,
			Completed:        st.Completed,
			AbandonedEarly:   st.AbandonedEarly,
			PrunedByEnvelope: st.PrunedByEnvelope,
			ResolvedByBounds: st.ResolvedByBounds,
			ResolvedEarly:    st.ResolvedEarly,
		}
		if st.Candidates > 0 {
			r.PrunedFraction = float64(st.Pruned()) / float64(st.Candidates)
		}
		results = append(results, r)
		fmt.Fprintf(stderr, "%s done in %v (direct %v, run %v per op)\n",
			m, elapsed.Round(time.Millisecond), direct/time.Duration(len(queries)), runPath/time.Duration(len(queries)))
	}

	if wrapperMax > 0 {
		if err := checkWrapper(results, wrapperMax, stderr); err != nil {
			return err
		}
	}

	batch := make([]corpus.Series, w.Len())
	for i := range batch {
		batch[i] = corpus.Series{
			Values:  w.PDF[i].Observations,
			Errors:  w.PDF[i].Errors,
			Samples: w.Samples[i].Samples,
			Label:   w.PDF[i].Label,
		}
	}
	storeRes, err := runStoreBench(stderr, batch, length)
	if err != nil {
		return err
	}
	if replayMax > 0 {
		if err := checkReplay(storeRes, replayMax, stderr); err != nil {
			return err
		}
	}

	if asJSON {
		return writeJSON(stdout, BenchReport{Measures: results, Store: storeRes})
	}
	fmt.Fprintf(stdout, "%-10s %14s %14s %14s %12s %12s %10s %10s\n", "measure", "ns/op", "direct-ns/op", "run-ns/op", "candidates", "completed", "abandoned", "pruned%")
	for _, r := range results {
		fmt.Fprintf(stdout, "%-10s %14d %14d %14d %12d %12d %10d %9.1f%%\n",
			r.Measure, r.NsPerOp, r.DirectNsPerOp, r.RunNsPerOp, r.Candidates, r.Completed, r.AbandonedEarly, 100*r.PrunedFraction)
	}
	fmt.Fprintf(stdout, "store      ingest %d ns/series, replay %d ns/series, checkpoint load %d ns/series, wal %d B/series\n",
		storeRes.IngestNsPerSeries, storeRes.ReplayNsPerSeries, storeRes.CheckpointLoadNsPerSeries, storeRes.WALBytesPerSeries)
	return nil
}

// runStoreBench measures the durable store on the bench batch: acknowledge
// every series through the WAL one mutation at a time, reopen the
// directory (replaying the whole log), checkpoint, and reopen again (pure
// checkpoint load). Best of benchRounds rounds per metric, fresh directory
// each round.
func runStoreBench(stderr io.Writer, batch []corpus.Series, length int) (StoreBenchResult, error) {
	res := StoreBenchResult{Series: len(batch), Length: length}
	if len(batch) == 0 {
		return res, fmt.Errorf("store bench: empty batch")
	}
	if batch[0].Samples != nil {
		res.Samples = len(batch[0].Samples[0])
	}
	per := func(d time.Duration) int64 { return d.Nanoseconds() / int64(len(batch)) }
	keepMin := func(dst *int64, v int64, first bool) {
		if first || v < *dst {
			*dst = v
		}
	}
	for round := 0; round < benchRounds; round++ {
		dir, err := os.MkdirTemp("", "uncertbench-store-*")
		if err != nil {
			return res, err
		}
		ingest, replay, ckptLoad, walBytes, err := storeBenchRound(dir, batch, length)
		os.RemoveAll(dir)
		if err != nil {
			return res, err
		}
		first := round == 0
		keepMin(&res.IngestNsPerSeries, per(ingest), first)
		keepMin(&res.ReplayNsPerSeries, per(replay), first)
		keepMin(&res.CheckpointLoadNsPerSeries, per(ckptLoad), first)
		keepMin(&res.WALBytesPerSeries, walBytes/int64(len(batch)), first)
	}
	fmt.Fprintf(stderr, "store done (ingest %dns, replay %dns, checkpoint load %dns per series)\n",
		res.IngestNsPerSeries, res.ReplayNsPerSeries, res.CheckpointLoadNsPerSeries)
	return res, nil
}

// storeBenchRound runs one ingest → reopen → checkpoint → reopen cycle.
func storeBenchRound(dir string, batch []corpus.Series, length int) (ingest, replay, ckptLoad time.Duration, walBytes int64, err error) {
	st, err := store.Open(dir, corpus.Config{Length: length, ReportedSigma: 0.5}, store.Options{CheckpointBytes: -1})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	start := time.Now()
	for _, s := range batch {
		if _, err := st.Corpus().Insert(s); err != nil {
			st.Close()
			return 0, 0, 0, 0, err
		}
	}
	ingest = time.Since(start)
	walBytes = st.Status().WALBytesSinceCheckpoint
	if err := st.Close(); err != nil {
		return 0, 0, 0, 0, err
	}

	// Recovery is timed through read-only opens: the pure replay path
	// (checkpoint load + WAL decode + artifact rebuild) without the
	// new-segment creation and directory fsyncs a writable open adds —
	// those would swamp the per-series numbers on slow disks.
	start = time.Now()
	st2, err := store.Open(dir, corpus.Config{}, store.Options{ReadOnly: true})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	replay = time.Since(start)
	if st2.Corpus().Len() != len(batch) {
		return 0, 0, 0, 0, fmt.Errorf("store bench: replay recovered %d series, want %d", st2.Corpus().Len(), len(batch))
	}

	stc, err := store.Open(dir, corpus.Config{}, store.Options{CheckpointBytes: -1})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := stc.Checkpoint(); err != nil {
		stc.Close()
		return 0, 0, 0, 0, err
	}
	if err := stc.Close(); err != nil {
		return 0, 0, 0, 0, err
	}

	start = time.Now()
	st3, err := store.Open(dir, corpus.Config{}, store.Options{ReadOnly: true})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	ckptLoad = time.Since(start)
	if st3.Corpus().Len() != len(batch) {
		return 0, 0, 0, 0, fmt.Errorf("store bench: checkpoint recovered %d series, want %d", st3.Corpus().Len(), len(batch))
	}
	return ingest, replay, ckptLoad, walBytes, nil
}

// replayNoiseFloorNs is the absolute per-series slack of the replay check:
// below it, the ingest/replay gap is scheduler and filesystem noise.
const replayNoiseFloorNs = 25000

// checkReplay fails when WAL replay is slower than maxRatio times fresh
// ingest (beyond the noise floor) — the CI guard that keeps recovery time
// proportional to ingest time. Replay does strictly less work than ingest
// (decode instead of encode+write), so a big gap means the recovery path
// regressed.
func checkReplay(r StoreBenchResult, maxRatio float64, stderr io.Writer) error {
	ratio := float64(r.ReplayNsPerSeries) / float64(r.IngestNsPerSeries)
	fmt.Fprintf(stderr, "replay check: replay/ingest = %.3f\n", ratio)
	if ratio > maxRatio && r.ReplayNsPerSeries-r.IngestNsPerSeries > replayNoiseFloorNs {
		return fmt.Errorf("WAL replay regression beyond %.2fx over ingest: replay %dns vs ingest %dns per series",
			maxRatio, r.ReplayNsPerSeries, r.IngestNsPerSeries)
	}
	return nil
}

// benchRounds is the repetition count of the per-query timing passes; the
// minimum over rounds is reported, which is the standard way to strip
// scheduler noise from a microbenchmark.
const benchRounds = 5

// wrapperNoiseFloorNs is the absolute slack of the wrapper check: on the
// small bench workloads a per-op difference under a microsecond is timer
// and scheduler noise, not wrapper cost.
const wrapperNoiseFloorNs = 1000

func bestOfRounds(pass func() error) (time.Duration, error) {
	best := time.Duration(0)
	for round := 0; round < benchRounds; round++ {
		start := time.Now()
		if err := pass(); err != nil {
			return 0, err
		}
		if elapsed := time.Since(start); round == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// checkWrapper fails when any measure's Run-path ns/op exceeds the direct
// path by more than the allowed ratio (plus the absolute noise floor) —
// the CI guard that keeps the declarative wrapper ~free.
func checkWrapper(results []BenchResult, maxRatio float64, stderr io.Writer) error {
	var bad []string
	for _, r := range results {
		ratio := float64(r.RunNsPerOp) / float64(r.DirectNsPerOp)
		fmt.Fprintf(stderr, "wrapper check %s: run/direct = %.3f\n", r.Measure, ratio)
		if ratio > maxRatio && r.RunNsPerOp-r.DirectNsPerOp > wrapperNoiseFloorNs {
			bad = append(bad, fmt.Sprintf("%s %.3f (direct %dns, run %dns)", r.Measure, ratio, r.DirectNsPerOp, r.RunNsPerOp))
		}
	}
	if bad != nil {
		return fmt.Errorf("Run-path regression beyond %.2fx over the direct path: %s", maxRatio, strings.Join(bad, "; "))
	}
	return nil
}

// writeTSV saves a table as <dir>/<name>.tsv, one header line plus one line
// per row, tab-separated — directly loadable by gnuplot or pandas.
func writeTSV(dir string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.Name+".tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(f, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return f.Close()
}
