// Command uncertbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	uncertbench -exp fig5 -scale medium -seed 42
//	uncertbench -exp all -scale small
//	uncertbench -list
//
// Each experiment prints one or more tables whose rows mirror the series
// plotted in the corresponding figure of the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"uncertts/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (fig4..fig17, chisquare, topk, classify, or 'all')")
		scale  = flag.String("scale", "small", "workload scale: small, medium or full")
		seed   = flag.Int64("seed", 42, "random seed; equal seeds reproduce identical tables")
		list   = flag.Bool("list", false, "list available experiments and exit")
		outDir = flag.String("out", "", "also write each table as a TSV file into this directory")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	registry := experiments.Registry()
	for _, name := range names {
		runner, ok := registry[name]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; use -list to see the options", name))
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			if *outDir != "" {
				if err := writeTSV(*outDir, t); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// writeTSV saves a table as <dir>/<name>.tsv, one header line plus one line
// per row, tab-separated — directly loadable by gnuplot or pandas.
func writeTSV(dir string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.Name+".tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(f, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uncertbench:", err)
	os.Exit(1)
}
