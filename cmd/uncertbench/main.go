// Command uncertbench regenerates the paper's evaluation figures and
// benchmarks the query engine.
//
// Usage:
//
//	uncertbench -exp fig5 -scale medium -seed 42
//	uncertbench -exp all -scale small
//	uncertbench -list
//
// Each experiment prints one or more tables whose rows mirror the series
// plotted in the corresponding figure of the paper.
//
// The -bench mode times one batched query per measure through the pruned
// engine and reports ns/op next to the pruning counters; -json switches
// the report to machine-readable JSON so the perf trajectory can be
// tracked across changes (the repository keeps baselines as BENCH_*.json):
//
//	uncertbench -bench -scale small -json > BENCH.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"uncertts/internal/core"
	"uncertts/internal/engine"
	"uncertts/internal/experiments"
	"uncertts/internal/munich"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// run is main with its environment injected, so tests can drive the
// command end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uncertbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment to run (fig4..fig17, chisquare, topk, classify, or 'all')")
		scale    = fs.String("scale", "small", "workload scale: small, medium or full")
		seed     = fs.Int64("seed", 42, "random seed; equal seeds reproduce identical tables")
		list     = fs.Bool("list", false, "list available experiments and exit")
		outDir   = fs.String("out", "", "also write each table as a TSV file into this directory")
		bench    = fs.Bool("bench", false, "benchmark the query engine (one batched query per measure) instead of running experiments")
		jsonOut  = fs.Bool("json", false, "emit -bench results as JSON (machine-readable; requires -bench)")
		benchTau = fs.Float64("tau", 0.1, "probability threshold of the -bench probabilistic queries")
		wrapMax  = fs.Float64("wrapper-max", 0, "fail if any measure's Run-path ns/op exceeds wrapper-max times the direct path (0 = no check; requires -bench)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *jsonOut && !*bench {
		return fmt.Errorf("-json requires -bench (experiment tables are TSV; use -out)")
	}
	if *wrapMax != 0 && !*bench {
		return fmt.Errorf("-wrapper-max requires -bench")
	}
	if *wrapMax < 0 {
		return fmt.Errorf("-wrapper-max = %v must be non-negative", *wrapMax)
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	if *bench {
		if *benchTau <= 0 || *benchTau >= 1 {
			return fmt.Errorf("-tau = %v outside (0, 1)", *benchTau)
		}
		return runBench(stdout, stderr, sc, *seed, *benchTau, *jsonOut, *wrapMax)
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	registry := experiments.Registry()
	for _, name := range names {
		runner, ok := registry[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; use -list to see the options", name)
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
			if *outDir != "" {
				if err := writeTSV(*outDir, t); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(stderr, "%s done in %v\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uncertbench:", err)
		os.Exit(1)
	}
}

// BenchResult is the machine-readable record of one measure's benchmark:
// wall time per query plus the engine's pruning counters, so the perf
// trajectory (and the pruning behaviour behind it) can be tracked across
// changes. ns_per_op times the batched direct path (the historical
// figure); direct_ns_per_op and run_ns_per_op time the same workload one
// query at a time through the prepared direct core and through the
// declarative Engine.Run entry point — their ratio is the cost of the
// request/validation/planning wrapper, which must stay ~free.
type BenchResult struct {
	Measure          string  `json:"measure"`
	Queries          int     `json:"queries"`
	Series           int     `json:"series"`
	Length           int     `json:"length"`
	NsPerOp          int64   `json:"ns_per_op"`
	DirectNsPerOp    int64   `json:"direct_ns_per_op"`
	RunNsPerOp       int64   `json:"run_ns_per_op"`
	Candidates       int64   `json:"candidates"`
	Completed        int64   `json:"completed"`
	AbandonedEarly   int64   `json:"abandoned_early"`
	PrunedByEnvelope int64   `json:"pruned_by_envelope"`
	ResolvedByBounds int64   `json:"resolved_by_bounds"`
	ResolvedEarly    int64   `json:"resolved_early"`
	PrunedFraction   float64 `json:"pruned_fraction"`
}

// benchShape maps a scale to the benchmark workload size.
func benchShape(sc experiments.Scale) (series, length int) {
	switch sc {
	case experiments.ScaleFull:
		return 96, 128
	case experiments.ScaleMedium:
		return 48, 96
	default:
		return 24, 48
	}
}

// runBench times one batched query per measure over a shared workload:
// top-10 for the distance measures, a probabilistic range query at the
// calibrated eps for PROUD and MUNICH.
func runBench(stdout, stderr io.Writer, sc experiments.Scale, seed int64, tau float64, asJSON bool, wrapperMax float64) error {
	series, length := benchShape(sc)
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: series, Length: length, Seed: seed})
	if err != nil {
		return err
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.5, length, seed)
	if err != nil {
		return err
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 5, SamplesPerTS: 5})
	if err != nil {
		return err
	}
	queries := make([]int, w.Len())
	var epsSum float64
	for i := range queries {
		queries[i] = i
		epsSum += w.EpsEucl(i)
	}
	eps := epsSum / float64(len(queries))

	var results []BenchResult
	for _, m := range engine.Measures() {
		e, err := engine.New(w, engine.Options{Measure: m, MUNICH: munich.Options{Bins: 1024}})
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		start := time.Now()
		if m.Probabilistic() {
			if _, err := e.ProbRangeBatch(queries, eps, tau); err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
		} else {
			if _, err := e.TopKBatch(queries, 10); err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
		}
		elapsed := time.Since(start)
		st := e.Stats()

		// Time the same workload one query at a time through the prepared
		// direct core and through Engine.Run. Both passes are sequential
		// per query, so their difference isolates the declarative
		// wrapper's cost (validation, planning, result assembly). Best of
		// a few rounds, to keep scheduler noise out of the ratio.
		direct, err := bestOfRounds(func() error {
			for _, qi := range queries {
				pq, err := e.PrepareIndex(qi)
				if err != nil {
					return err
				}
				if m.Probabilistic() {
					_, err = e.ProbRangePrepared([]*engine.PreparedQuery{pq}, eps, tau)
				} else {
					_, err = e.TopKPrepared([]*engine.PreparedQuery{pq}, 10)
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s direct: %w", m, err)
		}
		runPath, err := bestOfRounds(func() error {
			for i := range queries {
				req := engine.Request{Measure: m, Index: &queries[i]}
				if m.Probabilistic() {
					req.Kind, req.Eps, req.Tau = engine.KindProbRange, eps, tau
				} else {
					req.Kind, req.K = engine.KindTopK, 10
				}
				if _, err := e.Run(context.Background(), req); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("%s run: %w", m, err)
		}

		r := BenchResult{
			Measure:          m.String(),
			Queries:          len(queries),
			Series:           series,
			Length:           length,
			NsPerOp:          elapsed.Nanoseconds() / int64(len(queries)),
			DirectNsPerOp:    direct.Nanoseconds() / int64(len(queries)),
			RunNsPerOp:       runPath.Nanoseconds() / int64(len(queries)),
			Candidates:       st.Candidates,
			Completed:        st.Completed,
			AbandonedEarly:   st.AbandonedEarly,
			PrunedByEnvelope: st.PrunedByEnvelope,
			ResolvedByBounds: st.ResolvedByBounds,
			ResolvedEarly:    st.ResolvedEarly,
		}
		if st.Candidates > 0 {
			r.PrunedFraction = float64(st.Pruned()) / float64(st.Candidates)
		}
		results = append(results, r)
		fmt.Fprintf(stderr, "%s done in %v (direct %v, run %v per op)\n",
			m, elapsed.Round(time.Millisecond), direct/time.Duration(len(queries)), runPath/time.Duration(len(queries)))
	}

	if wrapperMax > 0 {
		if err := checkWrapper(results, wrapperMax, stderr); err != nil {
			return err
		}
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	fmt.Fprintf(stdout, "%-10s %14s %14s %14s %12s %12s %10s %10s\n", "measure", "ns/op", "direct-ns/op", "run-ns/op", "candidates", "completed", "abandoned", "pruned%")
	for _, r := range results {
		fmt.Fprintf(stdout, "%-10s %14d %14d %14d %12d %12d %10d %9.1f%%\n",
			r.Measure, r.NsPerOp, r.DirectNsPerOp, r.RunNsPerOp, r.Candidates, r.Completed, r.AbandonedEarly, 100*r.PrunedFraction)
	}
	return nil
}

// benchRounds is the repetition count of the per-query timing passes; the
// minimum over rounds is reported, which is the standard way to strip
// scheduler noise from a microbenchmark.
const benchRounds = 5

// wrapperNoiseFloorNs is the absolute slack of the wrapper check: on the
// small bench workloads a per-op difference under a microsecond is timer
// and scheduler noise, not wrapper cost.
const wrapperNoiseFloorNs = 1000

func bestOfRounds(pass func() error) (time.Duration, error) {
	best := time.Duration(0)
	for round := 0; round < benchRounds; round++ {
		start := time.Now()
		if err := pass(); err != nil {
			return 0, err
		}
		if elapsed := time.Since(start); round == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// checkWrapper fails when any measure's Run-path ns/op exceeds the direct
// path by more than the allowed ratio (plus the absolute noise floor) —
// the CI guard that keeps the declarative wrapper ~free.
func checkWrapper(results []BenchResult, maxRatio float64, stderr io.Writer) error {
	var bad []string
	for _, r := range results {
		ratio := float64(r.RunNsPerOp) / float64(r.DirectNsPerOp)
		fmt.Fprintf(stderr, "wrapper check %s: run/direct = %.3f\n", r.Measure, ratio)
		if ratio > maxRatio && r.RunNsPerOp-r.DirectNsPerOp > wrapperNoiseFloorNs {
			bad = append(bad, fmt.Sprintf("%s %.3f (direct %dns, run %dns)", r.Measure, ratio, r.DirectNsPerOp, r.RunNsPerOp))
		}
	}
	if bad != nil {
		return fmt.Errorf("Run-path regression beyond %.2fx over the direct path: %s", maxRatio, strings.Join(bad, "; "))
	}
	return nil
}

// writeTSV saves a table as <dir>/<name>.tsv, one header line plus one line
// per row, tab-separated — directly loadable by gnuplot or pandas.
func writeTSV(dir string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.Name+".tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(f, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return f.Close()
}
