package main

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"uncertts/internal/cluster"
	"uncertts/internal/corpus"
	"uncertts/internal/engine"
	"uncertts/internal/munich"
	"uncertts/internal/server"
)

// The cluster bench is the scatter-gather arm of -bench: the same
// synthetic corpus the scan bench uses is served once by a single node
// and once by an N-shard in-process cluster, and each selected top-k
// measure is timed through three doors — the single-node /query path,
// the coordinator with the shared pruning cut propagated to every shard
// (production behaviour), and the coordinator with propagation disabled.
// The first pair prices the scatter-gather machinery (fan-out, streaming
// merge, windowing) against a single process; the second pair isolates
// what the mid-flight bound propagation buys, as wall time and as the
// count of full refinements the shards were spared. Every engine runs
// NoIndex so the gain is measured on the linear scan the bound governs
// and the counters stay comparable with the scan-bench baselines.
//
// To keep the CPU budget of the arms comparable, the single node answers
// with W workers and each of the N shards with ceil(W/N): the cluster's
// parallelism comes from the fan-out itself, not from oversubscribing
// the host.

// ClusterMeasureResult records one measure's single-vs-cluster top-k
// comparison. MergeOverhead is cluster ns/op over single-node ns/op
// (values under 1 mean the fan-out parallelism outweighed the merge
// cost); PropagationSavedFraction is the share of full refinements the
// shared cut eliminated relative to private per-shard cuts.
type ClusterMeasureResult struct {
	Measure                  string  `json:"measure"`
	SingleNsPerOp            int64   `json:"single_ns_per_op"`
	ClusterNsPerOp           int64   `json:"cluster_ns_per_op"`
	NoPropNsPerOp            int64   `json:"no_prop_ns_per_op"`
	MergeOverhead            float64 `json:"merge_overhead"`
	CompletedSingle          int64   `json:"completed_single"`
	CompletedWithProp        int64   `json:"completed_with_propagation"`
	CompletedWithoutProp     int64   `json:"completed_without_propagation"`
	PropagationSavedFraction float64 `json:"propagation_saved_fraction"`
}

// ClusterBenchReport is the -bench -shards JSON document.
type ClusterBenchReport struct {
	Series   int                    `json:"series"`
	Length   int                    `json:"length"`
	Queries  int                    `json:"queries"`
	Samples  int                    `json:"samples"`
	Workers  int                    `json:"workers"`
	Shards   int                    `json:"shards"`
	K        int                    `json:"k"`
	Seed     int64                  `json:"seed"`
	BuildNs  int64                  `json:"build_ns"`
	Measures []ClusterMeasureResult `json:"measures"`
}

// clusterBenchK is the neighbour count of the cluster bench queries,
// matching the scan bench's top-k workload.
const clusterBenchK = 10

func clusterServerOptions(workers int) server.Options {
	return server.Options{
		DefaultWorkers: workers,
		MUNICH:         munich.Options{Bins: 1024},
		NoIndex:        true,
	}
}

// buildClusterShards stands up the N-shard in-process cluster and ingests
// the bench corpus through the coordinator, which routes every series to
// its ShardFor home under the same global IDs 0..series-1 the single-node
// corpus assigns.
func buildClusterShards(stderr io.Writer, p scanParams, shardWorkers int) (*cluster.Coordinator, error) {
	shards := make([]cluster.Shard, p.shards)
	for i := range shards {
		c := corpus.New(corpus.Config{Length: p.length, ReportedSigma: 0.25})
		srv := server.New(c, clusterServerOptions(shardWorkers))
		shards[i] = cluster.NewLocal(fmt.Sprintf("shard-%d", i), srv)
	}
	co := cluster.New(shards, cluster.Options{})
	ctx := context.Background()
	const chunk = 4096
	for start := 0; start < p.series; start += chunk {
		count := p.series - start
		if count > chunk {
			count = chunk
		}
		batch := genScanBatch(start, count, p.length, p.samples, p.seed)
		req := server.SeriesRequest{Insert: make([]server.SeriesJSON, len(batch))}
		for i, s := range batch {
			req.Insert[i] = server.SeriesJSON{Values: s.Values, Samples: s.Samples, Label: s.Label}
		}
		if _, err := co.Mutate(ctx, req); err != nil {
			return nil, err
		}
		if (start/chunk)%8 == 7 {
			fmt.Fprintf(stderr, "cluster bench: %d/%d series ingested\n", start+count, p.series)
		}
	}
	return co, nil
}

// clusterCompleted reads the cluster-wide cumulative full-refinement
// counter of one measure (the coordinator merges the shards' stats).
func clusterCompleted(ctx context.Context, co *cluster.Coordinator, m engine.Measure) (int64, error) {
	st, err := co.Stats(ctx)
	if err != nil {
		return 0, err
	}
	return st.Measures[m.String()].Completed, nil
}

// runClusterBench is the -bench -shards path.
func runClusterBench(stdout, stderr io.Writer, p scanParams, asJSON bool) error {
	workers := p.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardWorkers := (workers + p.shards - 1) / p.shards
	report := ClusterBenchReport{
		Series: p.series, Length: p.length, Queries: p.queries,
		Samples: p.samples, Workers: workers, Shards: p.shards,
		K: clusterBenchK, Seed: p.seed,
	}

	start := time.Now()
	c, err := buildScanCorpus(stderr, p)
	if err != nil {
		return err
	}
	single := server.New(c, clusterServerOptions(workers))
	co, err := buildClusterShards(stderr, p, shardWorkers)
	if err != nil {
		return err
	}
	coNoProp := cluster.New(co.Shards(), cluster.Options{DisableBoundPropagation: true})
	report.BuildNs = time.Since(start).Nanoseconds()
	fmt.Fprintf(stderr, "cluster bench: %d x %d built twice (single + %d shards) in %v\n",
		p.series, p.length, p.shards, time.Since(start).Round(time.Millisecond))

	qis := make([]int, p.queries)
	for i := range qis {
		qis[i] = i * (p.series / p.queries)
	}
	ctx := context.Background()
	reqFor := func(qi, reqWorkers int) server.QueryRequest {
		id := qi
		return server.QueryRequest{Type: "topk", K: clusterBenchK, ID: &id, Workers: reqWorkers}
	}

	for _, m := range p.measures {
		if m.Probabilistic() {
			fmt.Fprintf(stderr, "cluster bench: skipping %s (the cluster bench times the top-k bound-propagation path)\n", m)
			continue
		}
		singlePass := func() error {
			for _, qi := range qis {
				req := reqFor(qi, workers)
				req.Measure = m.String()
				if _, err := single.Query(req); err != nil {
					return err
				}
			}
			return nil
		}
		clusterPass := func(co *cluster.Coordinator) func() error {
			return func() error {
				for _, qi := range qis {
					req := reqFor(qi, shardWorkers)
					req.Measure = m.String()
					resp, err := co.Query(ctx, req)
					if err != nil {
						return err
					}
					if resp.Degraded {
						return fmt.Errorf("cluster bench: %s query degraded in-process: %+v", m, resp.ShardErrors)
					}
				}
				return nil
			}
		}

		// Parity first: the merged scatter-gather answer must be
		// bit-identical to the single node's (epochs aside — the cluster
		// epoch sums over shards by construction).
		for _, qi := range qis {
			req := reqFor(qi, workers)
			req.Measure = m.String()
			want, err := single.Query(req)
			if err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
			creq := reqFor(qi, shardWorkers)
			creq.Measure = m.String()
			got, err := co.Query(ctx, creq)
			if err != nil {
				return fmt.Errorf("%s: %w", m, err)
			}
			want.Epoch, got.Epoch = 0, 0
			if !reflect.DeepEqual(*want, got.QueryResponse) {
				return fmt.Errorf("cluster bench: %s query %d diverges from the single node", m, qi)
			}
		}

		// Exact refinement accounting needs one dedicated pass per arm
		// (the adaptive timer runs a variable number of rounds).
		singleBase := single.Stats().Measures[m.String()].Completed
		if err := singlePass(); err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		singleCompleted := single.Stats().Measures[m.String()].Completed - singleBase

		base, err := clusterCompleted(ctx, co, m)
		if err != nil {
			return err
		}
		if err := clusterPass(co)(); err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		afterProp, err := clusterCompleted(ctx, co, m)
		if err != nil {
			return err
		}
		if err := clusterPass(coNoProp)(); err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		afterNoProp, err := clusterCompleted(ctx, co, m)
		if err != nil {
			return err
		}
		withProp, withoutProp := afterProp-base, afterNoProp-afterProp
		if withProp >= withoutProp {
			return fmt.Errorf("cluster bench: %s completed %d full refines with bound propagation, %d without — propagation must prune strictly more on the bench workload",
				m, withProp, withoutProp)
		}

		singleNs, err := timeAdaptive(3, 2*time.Second, singlePass)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		propNs, err := timeAdaptive(3, 2*time.Second, clusterPass(co))
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		noPropNs, err := timeAdaptive(3, 2*time.Second, clusterPass(coNoProp))
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}

		r := ClusterMeasureResult{
			Measure:              m.String(),
			SingleNsPerOp:        singleNs.Nanoseconds() / int64(len(qis)),
			ClusterNsPerOp:       propNs.Nanoseconds() / int64(len(qis)),
			NoPropNsPerOp:        noPropNs.Nanoseconds() / int64(len(qis)),
			CompletedSingle:      singleCompleted,
			CompletedWithProp:    withProp,
			CompletedWithoutProp: withoutProp,
		}
		r.MergeOverhead = float64(r.ClusterNsPerOp) / float64(r.SingleNsPerOp)
		r.PropagationSavedFraction = float64(withoutProp-withProp) / float64(withoutProp)
		report.Measures = append(report.Measures, r)
		fmt.Fprintf(stderr, "cluster bench: %-10s single %12d ns/op, cluster %12d ns/op (%.2fx), refines %d -> %d (%.1f%% saved by propagation)\n",
			m, r.SingleNsPerOp, r.ClusterNsPerOp, r.MergeOverhead, withoutProp, withProp, 100*r.PropagationSavedFraction)
	}
	if len(report.Measures) == 0 {
		return fmt.Errorf("cluster bench: no non-probabilistic measure selected")
	}

	if asJSON {
		return writeJSON(stdout, report)
	}
	fmt.Fprintf(stdout, "cluster bench %d series x %d length, %d queries, k=%d, %d shards, %d workers\n",
		p.series, p.length, p.queries, clusterBenchK, p.shards, workers)
	fmt.Fprintf(stdout, "%-10s %14s %14s %14s %8s %12s %12s %12s %8s\n",
		"measure", "single-ns/op", "cluster-ns/op", "noprop-ns/op", "merge-x", "refines-1node", "refines-prop", "refines-off", "saved%")
	for _, r := range report.Measures {
		fmt.Fprintf(stdout, "%-10s %14d %14d %14d %8.2f %12d %12d %12d %7.1f%%\n",
			r.Measure, r.SingleNsPerOp, r.ClusterNsPerOp, r.NoPropNsPerOp, r.MergeOverhead,
			r.CompletedSingle, r.CompletedWithProp, r.CompletedWithoutProp, 100*r.PropagationSavedFraction)
	}
	return nil
}
