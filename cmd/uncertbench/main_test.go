package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown experiment":        {"-exp", "fig99"},
		"unknown scale":             {"-scale", "huge"},
		"json without bench":        {"-json"},
		"bad tau":                   {"-bench", "-tau", "1.5"},
		"unknown flag":              {"-nope"},
		"wrapper-max without bench": {"-wrapper-max", "1.15"},
		"negative wrapper-max":      {"-bench", "-wrapper-max", "-1"},
		"replay-max without bench":  {"-replay-max", "2"},
		"negative replay-max":       {"-bench", "-replay-max", "-1"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s (%v): expected an error", name, args)
		}
	}
}

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig5") {
		t.Errorf("-list output missing fig5:\n%s", out.String())
	}
}

// TestEndToEndExperiment runs one real figure regeneration at the small
// scale and checks a table came out.
func TestEndToEndExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "chisquare", "-scale", "small", "-seed", "7"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chisquare") {
		t.Errorf("experiment output missing its table:\n%s", out.String())
	}
}

// TestBenchJSON runs the engine benchmark at the small scale and checks
// the machine-readable output: all seven measures, positive timings, the
// stats accounting identity, and the store throughput record.
func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-bench", "-scale", "small", "-seed", "7", "-json"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("bench output is not JSON: %v\n%s", err, out.String())
	}
	results := report.Measures
	if len(results) != 7 {
		t.Fatalf("got %d measures, want 7", len(results))
	}
	st := report.Store
	if st.IngestNsPerSeries <= 0 || st.ReplayNsPerSeries <= 0 || st.CheckpointLoadNsPerSeries <= 0 || st.WALBytesPerSeries <= 0 {
		t.Errorf("implausible store bench record %+v", st)
	}
	if st.Series != results[0].Series || st.Length != results[0].Length {
		t.Errorf("store bench shape %dx%d does not match the measure shape %dx%d",
			st.Series, st.Length, results[0].Series, results[0].Length)
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.Measure] = true
		if r.NsPerOp <= 0 || r.Queries <= 0 || r.Candidates <= 0 {
			t.Errorf("%s: implausible result %+v", r.Measure, r)
		}
		if sum := r.Completed + r.AbandonedEarly + r.PrunedByEnvelope + r.ResolvedByBounds + r.ResolvedEarly; sum != r.Candidates {
			t.Errorf("%s: accounting identity broken: %+v", r.Measure, r)
		}
	}
	for _, m := range []string{"Euclidean", "UMA", "UEMA", "DTW", "DUST", "PROUD", "MUNICH"} {
		if !seen[m] {
			t.Errorf("measure %s missing from bench output", m)
		}
	}
}
