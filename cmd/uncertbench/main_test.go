package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown experiment":        {"-exp", "fig99"},
		"unknown scale":             {"-scale", "huge"},
		"json without bench":        {"-json"},
		"bad tau":                   {"-bench", "-tau", "1.5"},
		"unknown flag":              {"-nope"},
		"wrapper-max without bench": {"-wrapper-max", "1.15"},
		"negative wrapper-max":      {"-bench", "-wrapper-max", "-1"},
		"replay-max without bench":  {"-replay-max", "2"},
		"negative replay-max":       {"-bench", "-replay-max", "-1"},
		"series without bench":      {"-series", "100"},
		"length without bench":      {"-length", "64"},
		"scan-max-ns without bench": {"-scan-max-ns", "100"},
		"cpuprofile without bench":  {"-cpuprofile", "cpu.out"},
		"large without bench":       {"-scale", "large"},
		"wrapper-max on scan bench": {"-bench", "-series", "100", "-wrapper-max", "1.1"},
		"replay-max on scan bench":  {"-bench", "-series", "100", "-replay-max", "2"},
		"unknown measure":           {"-bench", "-series", "100", "-measures", "nope"},
		"munich without samples":    {"-bench", "-series", "100", "-measures", "munich", "-samples", "0"},
		"too few series":            {"-bench", "-series", "10", "-queries", "8"},
		"zero queries":              {"-bench", "-series", "100", "-queries", "0"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s (%v): expected an error", name, args)
		}
	}
}

func TestListExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig5") {
		t.Errorf("-list output missing fig5:\n%s", out.String())
	}
}

// TestEndToEndExperiment runs one real figure regeneration at the small
// scale and checks a table came out.
func TestEndToEndExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "chisquare", "-scale", "small", "-seed", "7"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chisquare") {
		t.Errorf("experiment output missing its table:\n%s", out.String())
	}
}

// TestBenchJSON runs the engine benchmark at the small scale and checks
// the machine-readable output: all seven measures, positive timings, the
// stats accounting identity, and the store throughput record.
func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-bench", "-scale", "small", "-seed", "7", "-json"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var report BenchReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("bench output is not JSON: %v\n%s", err, out.String())
	}
	results := report.Measures
	if len(results) != 7 {
		t.Fatalf("got %d measures, want 7", len(results))
	}
	st := report.Store
	if st.IngestNsPerSeries <= 0 || st.ReplayNsPerSeries <= 0 || st.CheckpointLoadNsPerSeries <= 0 || st.WALBytesPerSeries <= 0 {
		t.Errorf("implausible store bench record %+v", st)
	}
	if st.Series != results[0].Series || st.Length != results[0].Length {
		t.Errorf("store bench shape %dx%d does not match the measure shape %dx%d",
			st.Series, st.Length, results[0].Series, results[0].Length)
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.Measure] = true
		if r.NsPerOp <= 0 || r.Queries <= 0 || r.Candidates <= 0 {
			t.Errorf("%s: implausible result %+v", r.Measure, r)
		}
		if sum := r.Completed + r.AbandonedEarly + r.PrunedByEnvelope + r.ResolvedByBounds + r.ResolvedEarly; sum != r.Candidates {
			t.Errorf("%s: accounting identity broken: %+v", r.Measure, r)
		}
	}
	for _, m := range []string{"Euclidean", "UMA", "UEMA", "DTW", "DUST", "PROUD", "MUNICH"} {
		if !seen[m] {
			t.Errorf("measure %s missing from bench output", m)
		}
	}
}

// TestScanBenchJSON drives the production-scale bench path at a toy shape
// and validates its machine-readable report: all seven measures, the
// accounting identity, and the Euclidean/DTW layout A/B records.
func TestScanBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-bench", "-series", "600", "-length", "48", "-queries", "3", "-seed", "7", "-json"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var report ScanBenchReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("scan bench output is not JSON: %v\n%s", err, out.String())
	}
	if report.Series != 600 || report.Length != 48 || report.Queries != 3 {
		t.Fatalf("report shape %+v does not echo the flags", report)
	}
	if report.Eps <= 0 || report.BuildNs <= 0 || report.CalibrateNs <= 0 {
		t.Errorf("implausible report header %+v", report)
	}
	if len(report.Measures) != 7 {
		t.Fatalf("got %d measures, want 7", len(report.Measures))
	}
	for _, r := range report.Measures {
		if r.NsPerOp <= 0 || r.Candidates <= 0 {
			t.Errorf("%s: implausible result %+v", r.Measure, r)
		}
		if sum := r.Completed + r.AbandonedEarly + r.PrunedByEnvelope + r.ResolvedByBounds + r.ResolvedEarly; sum != r.Candidates {
			t.Errorf("%s: accounting identity broken: %+v", r.Measure, r)
		}
	}
	kernels := map[string]bool{}
	for _, l := range report.Layout {
		kernels[l.Kernel] = true
		if l.ArenaNsPerScan <= 0 || l.ScatteredNsPerScan <= 0 || l.ScatteredOverArena <= 0 {
			t.Errorf("layout %s: implausible record %+v", l.Kernel, l)
		}
	}
	if !kernels["euclidean"] || !kernels["dtw"] {
		t.Errorf("layout records missing a kernel: %v", kernels)
	}
}

// TestScanBenchGate proves -scan-max-ns fails the run on regression.
func TestScanBenchGate(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run in -short mode")
	}
	err := run([]string{"-bench", "-series", "300", "-length", "32", "-queries", "2",
		"-measures", "euclidean", "-scan-max-ns", "1"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "scan regression") {
		t.Fatalf("expected a scan regression error, got %v", err)
	}
}
