package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"reflect"
	"runtime"
	"sort"
	"time"

	"uncertts/internal/corpus"
	"uncertts/internal/distance"
	"uncertts/internal/engine"
	"uncertts/internal/munich"
	"uncertts/internal/sketch"
	"uncertts/internal/stats"
	"uncertts/internal/telemetry"
)

// The scan bench is the production-scale arm of -bench: instead of the
// evaluation workload (whose O(N^2) ground truth caps it at a few hundred
// series), it populates a corpus directly — 100k+ series are routine — and
// times each measure's batched scan through the engine, plus a layout A/B
// that runs the identical kernel loop over the contiguous columnar arena
// and over scattered per-series heap copies. The A/B isolates what the
// arena buys: same instructions, same answers, different memory layout.

// ScanMeasureResult records one measure's batched scan at scale. The
// ns_per_op and pruning counters describe the forced linear scan
// (NoIndex), so they stay comparable with pre-index baselines; the
// indexed_* fields describe the same workload routed through the sketch
// index — bit-identical answers, fewer candidates. IndexedNsPerOp is 0
// when the measure has no sound sketch bound (DUST).
type ScanMeasureResult struct {
	Measure          string  `json:"measure"`
	Kind             string  `json:"kind"` // "topk" or "prob_range"
	NsPerOp          int64   `json:"ns_per_op"`
	Matches          int     `json:"matches"`
	Candidates       int64   `json:"candidates"`
	Completed        int64   `json:"completed"`
	AbandonedEarly   int64   `json:"abandoned_early"`
	PrunedByEnvelope int64   `json:"pruned_by_envelope"`
	ResolvedByBounds int64   `json:"resolved_by_bounds"`
	ResolvedEarly    int64   `json:"resolved_early"`
	PrunedFraction   float64 `json:"pruned_fraction"`

	IndexedNsPerOp       int64   `json:"indexed_ns_per_op"`
	BucketsVisited       int64   `json:"buckets_visited"`
	BucketsPruned        int64   `json:"buckets_pruned"`
	SeriesSkippedByIndex int64   `json:"series_skipped_by_index"`
	IndexSkippedFraction float64 `json:"index_skipped_fraction"`
}

// ScanLayoutResult is one kernel's arena-versus-scattered comparison. The
// two timings run byte-for-byte the same scan code over the same values;
// only the placement of the candidate rows differs.
type ScanLayoutResult struct {
	Kernel             string  `json:"kernel"`
	ArenaNsPerScan     int64   `json:"arena_ns_per_scan"`
	ScatteredNsPerScan int64   `json:"scattered_ns_per_scan"`
	ScatteredOverArena float64 `json:"scattered_over_arena"`
}

// ObsBenchResult is the telemetry-overhead A/B: the same per-query
// workload through engine.Run with the full observability envelope live
// (a minted trace in the context, per-query counter/histogram observes,
// tracer finish) and with none of it. ObsOverPlain is the ratio the
// -obs-max gate checks.
type ObsBenchResult struct {
	Measure      string  `json:"measure"`
	PlainNsPerOp int64   `json:"plain_ns_per_op"`
	ObsNsPerOp   int64   `json:"obs_ns_per_op"`
	ObsOverPlain float64 `json:"obs_over_plain"`
}

// ScanBenchReport is the -bench JSON document of the production-scale path.
type ScanBenchReport struct {
	Series       int                 `json:"series"`
	Length       int                 `json:"length"`
	Queries      int                 `json:"queries"`
	Samples      int                 `json:"samples"`
	Workers      int                 `json:"workers"`
	Seed         int64               `json:"seed"`
	Eps          float64             `json:"eps"`
	Tau          float64             `json:"tau"`
	BuildNs      int64               `json:"build_ns"`
	IndexBuildNs int64               `json:"index_build_ns"`
	CalibrateNs  int64               `json:"calibrate_ns"`
	Measures     []ScanMeasureResult `json:"measures"`
	Layout       []ScanLayoutResult  `json:"layout"`
	Obs          ObsBenchResult      `json:"obs"`
}

// scanParams carries the resolved scan-bench configuration.
type scanParams struct {
	series, length, queries, samples, workers int
	shards                                    int // >= 2 selects the cluster bench
	seed                                      int64
	tau                                       float64
	measures                                  []engine.Measure
	maxNs                                     int64
	indexedMaxNs                              int64
	obsMax                                    float64
}

// genScanBatch produces count deterministic synthetic series starting at
// index start: a per-series mixture of two sinusoids plus seeded Gaussian
// noise, with per-timestamp repeated observations for MUNICH.
func genScanBatch(start, count, length, samples int, seed int64) []corpus.Series {
	batch := make([]corpus.Series, count)
	for i := range batch {
		rng := stats.SplitRand(seed, int64(start+i))
		a, b := 0.5+rng.Float64(), 0.5+rng.Float64()
		p1, p2 := 0.05+0.2*rng.Float64(), 0.3+0.5*rng.Float64()
		phase := rng.Float64() * 2 * math.Pi
		s := corpus.Series{Values: make([]float64, length), Label: (start + i) % 8}
		for t := range s.Values {
			ft := float64(t)
			s.Values[t] = a*math.Sin(phase+p1*ft) + b*math.Cos(p2*ft) + 0.1*rng.NormFloat64()
		}
		if samples > 0 {
			s.Samples = make([][]float64, length)
			for t := range s.Samples {
				row := make([]float64, samples)
				for j := range row {
					row[j] = s.Values[t] + 0.1*rng.NormFloat64()
				}
				s.Samples[t] = row
			}
		}
		batch[i] = s
	}
	return batch
}

// buildScanCorpus populates the bench corpus in bounded batches.
func buildScanCorpus(stderr io.Writer, p scanParams) (*corpus.Corpus, error) {
	c := corpus.New(corpus.Config{Length: p.length, ReportedSigma: 0.25})
	const chunk = 4096
	for start := 0; start < p.series; start += chunk {
		count := p.series - start
		if count > chunk {
			count = chunk
		}
		if _, err := c.InsertBatch(genScanBatch(start, count, p.length, p.samples, p.seed)); err != nil {
			return nil, err
		}
		if (start/chunk)%8 == 7 {
			fmt.Fprintf(stderr, "scan bench: %d/%d series resident\n", start+count, p.series)
		}
	}
	return c, nil
}

// calibrateEps returns the average Euclidean distance from each query to
// its 5th-nearest neighbour — the paper's K-NN threshold recipe applied to
// the observation space, so the range queries return non-trivial but small
// answer sets at any scale.
func calibrateEps(snap *corpus.Snapshot, qis []int) (float64, error) {
	cols, dense := snap.Columns()
	row := func(i int) []float64 {
		if dense {
			return cols.Values.Row(i)
		}
		return snap.Entry(i).PDF.Observations
	}
	var sum float64
	for _, qi := range qis {
		q := row(qi)
		var best []float64 // ascending, at most 5
		for ci := 0; ci < snap.Len(); ci++ {
			if ci == qi {
				continue
			}
			d, err := distance.Euclidean(q, row(ci))
			if err != nil {
				return 0, err
			}
			if len(best) < 5 {
				best = append(best, d)
				sort.Float64s(best)
			} else if d < best[4] {
				best[4] = d
				sort.Float64s(best)
			}
		}
		if len(best) == 0 {
			return 0, fmt.Errorf("scan bench: query %d has no neighbours", qi)
		}
		sum += best[len(best)-1]
	}
	return sum / float64(len(qis)), nil
}

// timeAdaptive runs pass once, then keeps re-running (up to rounds) while
// the total elapsed time is under floor, returning the fastest round — full
// best-of-N for quick passes, a single honest measurement for long ones.
func timeAdaptive(rounds int, floor time.Duration, pass func() error) (time.Duration, error) {
	var best time.Duration
	var total time.Duration
	for round := 0; round < rounds; round++ {
		start := time.Now()
		if err := pass(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if round == 0 || elapsed < best {
			best = elapsed
		}
		total += elapsed
		if total >= floor {
			break
		}
	}
	return best, nil
}

// scanArm builds an engine over snap with opts, times the measure's
// batched query workload, and returns the per-query timing, the engine
// statistics of the final round, and that round's (deterministic) answers
// so the caller can assert scan/index parity.
func scanArm(snap *corpus.Snapshot, opts engine.Options, m engine.Measure, qis []int, eps, tau float64) (nsPerOp int64, matches int, st engine.Stats, res interface{}, indexed bool, err error) {
	e, err := engine.NewFromSnapshot(snap, opts)
	if err != nil {
		return 0, 0, engine.Stats{}, nil, false, err
	}
	elapsed, err := timeAdaptive(3, 2*time.Second, func() error {
		e.ResetStats()
		matches = 0
		if m.Probabilistic() {
			r, err := e.ProbRangeBatch(qis, eps, tau)
			if err != nil {
				return err
			}
			for _, ids := range r {
				matches += len(ids)
			}
			res = r
			return nil
		}
		r, err := e.TopKBatch(qis, 10)
		if err != nil {
			return err
		}
		for _, nn := range r {
			matches += len(nn)
		}
		res = r
		return nil
	})
	if err != nil {
		return 0, 0, engine.Stats{}, nil, false, err
	}
	return elapsed.Nanoseconds() / int64(len(qis)), matches, e.Stats(), res, e.Indexed(), nil
}

// runScanBench is the production-scale bench path.
func runScanBench(stdout, stderr io.Writer, p scanParams, asJSON bool) error {
	report := ScanBenchReport{
		Series: p.series, Length: p.length, Queries: p.queries,
		Samples: p.samples, Workers: p.workers, Seed: p.seed, Tau: p.tau,
	}
	start := time.Now()
	c, err := buildScanCorpus(stderr, p)
	if err != nil {
		return err
	}
	report.BuildNs = time.Since(start).Nanoseconds()
	snap := c.Snapshot()
	cols, dense := snap.Columns()
	if !dense {
		return fmt.Errorf("scan bench: corpus snapshot is not dense")
	}
	fmt.Fprintf(stderr, "scan bench: %d x %d built in %v\n", p.series, p.length, time.Since(start).Round(time.Millisecond))

	// The corpus maintained its index incrementally during the insert
	// batches above; time a from-scratch bulk build over the same sketch
	// rows so the report records what a cold rebuild (recovery, compaction)
	// costs at this scale.
	if tree := snap.Index(); tree != nil {
		members := make([]sketch.Member, snap.Len())
		for i := range members {
			members[i] = sketch.Member{ID: snap.Entry(i).ID, Row: i}
		}
		start = time.Now()
		rebuilt := sketch.Build(tree.Layout(), tree.LeafCap(), members, cols.Sketch)
		report.IndexBuildNs = time.Since(start).Nanoseconds()
		if rebuilt.Len() != snap.Len() {
			return fmt.Errorf("scan bench: bulk index rebuild tracks %d members, want %d", rebuilt.Len(), snap.Len())
		}
		fmt.Fprintf(stderr, "scan bench: sketch index bulk-built in %v\n", time.Since(start).Round(time.Millisecond))
	}

	qis := make([]int, p.queries)
	for i := range qis {
		qis[i] = i * (p.series / p.queries)
	}
	start = time.Now()
	eps, err := calibrateEps(snap, qis)
	if err != nil {
		return err
	}
	report.CalibrateNs = time.Since(start).Nanoseconds()
	report.Eps = eps
	fmt.Fprintf(stderr, "scan bench: eps calibrated to %.4f in %v\n", eps, time.Since(start).Round(time.Millisecond))

	for _, m := range p.measures {
		// The scan arm forces the linear path so ns_per_op stays comparable
		// with pre-index baselines; the indexed arm runs the same workload
		// through the sketch index and must return the same answers.
		linOpts := engine.Options{
			Measure: m, Workers: p.workers, NoIndex: true,
			MUNICH: munich.Options{Bins: 1024},
		}
		nsPerOp, matches, st, linRes, _, err := scanArm(snap, linOpts, m, qis, eps, p.tau)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		r := ScanMeasureResult{
			Measure:          m.String(),
			Kind:             "topk",
			NsPerOp:          nsPerOp,
			Matches:          matches,
			Candidates:       st.Candidates,
			Completed:        st.Completed,
			AbandonedEarly:   st.AbandonedEarly,
			PrunedByEnvelope: st.PrunedByEnvelope,
			ResolvedByBounds: st.ResolvedByBounds,
			ResolvedEarly:    st.ResolvedEarly,
		}
		if m.Probabilistic() {
			r.Kind = "prob_range"
		}
		if st.Candidates > 0 {
			r.PrunedFraction = float64(st.Pruned()) / float64(st.Candidates)
		}

		idxOpts := linOpts
		idxOpts.NoIndex = false
		idxNs, _, ist, idxRes, indexed, err := scanArm(snap, idxOpts, m, qis, eps, p.tau)
		if err != nil {
			return fmt.Errorf("%s indexed: %w", m, err)
		}
		if indexed {
			if !reflect.DeepEqual(idxRes, linRes) {
				return fmt.Errorf("scan bench: %s indexed answers differ from the linear scan", m)
			}
			r.IndexedNsPerOp = idxNs
			r.BucketsVisited = ist.BucketsVisited
			r.BucketsPruned = ist.BucketsPruned
			r.SeriesSkippedByIndex = ist.SeriesSkippedByIndex
			if total := ist.Candidates + ist.SeriesSkippedByIndex; total > 0 {
				r.IndexSkippedFraction = float64(ist.SeriesSkippedByIndex) / float64(total)
			}
		}
		report.Measures = append(report.Measures, r)
		fmt.Fprintf(stderr, "scan bench: %-10s scan %12d ns/op, indexed %12d ns/op  (%d matches, %.1f%% pruned, %.1f%% index-skipped)\n",
			m, r.NsPerOp, r.IndexedNsPerOp, matches, 100*r.PrunedFraction, 100*r.IndexSkippedFraction)
	}

	layout, err := runLayoutBench(stderr, snap, qis, eps, p.measures)
	if err != nil {
		return err
	}
	report.Layout = layout

	obs, err := runObsBench(stderr, snap, p, qis, eps)
	if err != nil {
		return err
	}
	report.Obs = obs
	if p.obsMax > 0 {
		// Tiny absolute deltas are timer noise, not telemetry cost: the
		// ratio gate only fires when the envelope also costs a measurable
		// amount per query.
		const obsNoiseNs = 20_000
		if obs.ObsOverPlain > p.obsMax && obs.ObsNsPerOp-obs.PlainNsPerOp > obsNoiseNs {
			return fmt.Errorf("telemetry regression: %s obs arm %d ns/op is %.3fx the plain arm's %d ns/op, exceeding -obs-max %g",
				obs.Measure, obs.ObsNsPerOp, obs.ObsOverPlain, obs.PlainNsPerOp, p.obsMax)
		}
	}

	if p.maxNs > 0 {
		for _, r := range report.Measures {
			if r.NsPerOp > p.maxNs {
				return fmt.Errorf("scan regression: %s %d ns/op exceeds -scan-max-ns %d", r.Measure, r.NsPerOp, p.maxNs)
			}
		}
	}
	if p.indexedMaxNs > 0 {
		for _, r := range report.Measures {
			if r.IndexedNsPerOp == 0 {
				continue // no sound sketch bound for this measure (DUST)
			}
			if r.SeriesSkippedByIndex == 0 {
				return fmt.Errorf("index regression: %s skipped no series through the sketch index", r.Measure)
			}
			if r.IndexedNsPerOp > p.indexedMaxNs {
				return fmt.Errorf("index regression: %s %d ns/op exceeds -indexed-max-ns %d", r.Measure, r.IndexedNsPerOp, p.indexedMaxNs)
			}
		}
	}

	if asJSON {
		return writeJSON(stdout, report)
	}
	fmt.Fprintf(stdout, "scan bench %d series x %d length, %d queries, workers=%d, eps=%.4f\n",
		p.series, p.length, p.queries, p.workers, eps)
	fmt.Fprintf(stdout, "%-10s %6s %14s %14s %10s %12s %12s %10s %10s\n",
		"measure", "kind", "scan-ns/op", "idx-ns/op", "matches", "candidates", "completed", "pruned%", "skipped%")
	for _, r := range report.Measures {
		fmt.Fprintf(stdout, "%-10s %6s %14d %14d %10d %12d %12d %9.1f%% %9.1f%%\n",
			r.Measure, r.Kind, r.NsPerOp, r.IndexedNsPerOp, r.Matches, r.Candidates, r.Completed,
			100*r.PrunedFraction, 100*r.IndexSkippedFraction)
	}
	for _, l := range report.Layout {
		fmt.Fprintf(stdout, "layout %-10s arena %d ns/scan, scattered %d ns/scan (%.2fx)\n",
			l.Kernel, l.ArenaNsPerScan, l.ScatteredNsPerScan, l.ScatteredOverArena)
	}
	fmt.Fprintf(stdout, "obs    %-10s plain %d ns/op, instrumented %d ns/op (%.3fx)\n",
		report.Obs.Measure, report.Obs.PlainNsPerOp, report.Obs.ObsNsPerOp, report.Obs.ObsOverPlain)
	return nil
}

// runObsBench times the per-query Run path with the observability
// envelope fully live against the identical workload with none of it.
// The obs arm mirrors what the server layer adds around every query — a
// minted trace travelling in the context (so the engine records its
// spans), a counter and a latency-histogram observe, and the tracer
// finish that files the trace into the ring — while the plain arm runs
// the same queries with a bare context, where every trace call is a nil
// no-op. The instruments live on a private registry and tracer so bench
// runs never pollute a serving process's /metrics.
func runObsBench(stderr io.Writer, snap *corpus.Snapshot, p scanParams, qis []int, eps float64) (ObsBenchResult, error) {
	m := p.measures[0]
	for _, c := range p.measures {
		if c == engine.MeasureEuclidean {
			m = c
			break
		}
	}
	e, err := engine.NewFromSnapshot(snap, engine.Options{
		Measure: m, Workers: p.workers, NoIndex: true,
		MUNICH: munich.Options{Bins: 1024},
	})
	if err != nil {
		return ObsBenchResult{}, err
	}
	req := func(qi int) engine.Request {
		r := engine.Request{Measure: m, Kind: engine.KindTopK, Index: &qi, K: 10}
		if m.Probabilistic() {
			r.Kind, r.K = engine.KindProbRange, 0
			r.Eps, r.Tau = eps, p.tau
		}
		return r
	}
	kind := engine.KindTopK.String()
	if m.Probabilistic() {
		kind = engine.KindProbRange.String()
	}

	plain, err := timeAdaptive(3, 2*time.Second, func() error {
		for _, qi := range qis {
			if _, err := e.Run(context.Background(), req(qi)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return ObsBenchResult{}, err
	}

	reg := telemetry.NewRegistry()
	queries := reg.NewCounterVec("uncertts_bench_obs_queries_total", "Obs-arm query count.", "kind", "measure")
	latency := reg.NewHistogramVec("uncertts_bench_obs_query_duration_seconds", "Obs-arm query latency.", nil, "kind", "measure")
	tracer := telemetry.NewTracer(128, 0, slog.New(slog.NewJSONHandler(io.Discard, nil)))
	obs, err := timeAdaptive(3, 2*time.Second, func() error {
		for _, qi := range qis {
			tr := tracer.StartTrace("", "query")
			tr.SetQuery(kind, m.String())
			start := time.Now()
			_, err := e.Run(telemetry.WithTrace(context.Background(), tr), req(qi))
			latency.With(kind, m.String()).Observe(time.Since(start).Seconds())
			queries.With(kind, m.String()).Inc()
			if err != nil {
				tr.Fail(err)
				tracer.Finish(tr)
				return err
			}
			tracer.Finish(tr)
		}
		return nil
	})
	if err != nil {
		return ObsBenchResult{}, err
	}

	r := ObsBenchResult{
		Measure:      m.String(),
		PlainNsPerOp: plain.Nanoseconds() / int64(len(qis)),
		ObsNsPerOp:   obs.Nanoseconds() / int64(len(qis)),
	}
	if r.PlainNsPerOp > 0 {
		r.ObsOverPlain = float64(r.ObsNsPerOp) / float64(r.PlainNsPerOp)
	}
	fmt.Fprintf(stderr, "obs bench: %s plain %d ns/op, instrumented %d ns/op (%.3fx)\n",
		r.Measure, r.PlainNsPerOp, r.ObsNsPerOp, r.ObsOverPlain)
	return r, nil
}

// scatterRows clones each arena row into its own heap allocation, in
// shuffled order with junk allocations interleaved, reproducing the
// fragmented placement a pointer-per-series corpus converges to. The junk
// is returned so the caller can keep it alive across the timed scans.
func scatterRows(rows func(int) []float64, n int, seed int64) (scat, junk [][]float64) {
	rng := stats.SplitRand(seed, 777)
	perm := rng.Perm(n)
	scat = make([][]float64, n)
	junk = make([][]float64, 0, n)
	for _, i := range perm {
		src := rows(i)
		row := make([]float64, len(src))
		copy(row, src)
		scat[i] = row
		junk = append(junk, make([]float64, 8+rng.Intn(24)))
	}
	return scat, junk
}

// runLayoutBench times the Euclidean and DTW scan kernels over the arena
// rows and over scattered copies of the same values. The per-candidate
// code is shared; only the row lookup differs.
func runLayoutBench(stderr io.Writer, snap *corpus.Snapshot, qis []int, eps float64, measures []engine.Measure) ([]ScanLayoutResult, error) {
	cols, ok := snap.Columns()
	if !ok {
		return nil, fmt.Errorf("layout bench: snapshot is not dense")
	}
	n := snap.Len()
	want := map[engine.Measure]bool{}
	for _, m := range measures {
		want[m] = true
	}
	var out []ScanLayoutResult

	timeScan := func(scan func() error) (int64, error) {
		elapsed, err := timeAdaptive(3, 2*time.Second, scan)
		if err != nil {
			return 0, err
		}
		return elapsed.Nanoseconds() / int64(len(qis)), nil
	}

	if want[engine.MeasureEuclidean] {
		euclScan := func(row func(int) []float64) func() error {
			return func() error {
				for _, qi := range qis {
					q := row(qi)
					var acc float64
					for ci := 0; ci < n; ci++ {
						d, err := distance.Euclidean(q, row(ci))
						if err != nil {
							return err
						}
						acc += d
					}
					if math.IsNaN(acc) {
						return fmt.Errorf("layout bench: NaN accumulator")
					}
				}
				return nil
			}
		}
		arenaNs, err := timeScan(euclScan(cols.Values.Row))
		if err != nil {
			return nil, err
		}
		scat, junk := scatterRows(cols.Values.Row, n, int64(snap.Epoch()))
		scatNs, err := timeScan(euclScan(func(i int) []float64 { return scat[i] }))
		if err != nil {
			return nil, err
		}
		runtime.KeepAlive(junk)
		out = append(out, ScanLayoutResult{
			Kernel: "euclidean", ArenaNsPerScan: arenaNs, ScatteredNsPerScan: scatNs,
			ScatteredOverArena: float64(scatNs) / float64(arenaNs),
		})
		fmt.Fprintf(stderr, "layout euclidean: arena %d ns/scan, scattered %d ns/scan\n", arenaNs, scatNs)
	}

	if want[engine.MeasureDTW] {
		band := snap.Config().Band
		cutoff2 := eps * eps
		dtwScan := func(row, up, lo func(int) []float64) func() error {
			return func() error {
				var scratch distance.DTWScratch
				for _, qi := range qis {
					q := row(qi)
					for ci := 0; ci < n; ci++ {
						if distance.LBKimSquared(q, row(ci)) > cutoff2 {
							continue
						}
						lb, err := distance.LBKeoghSquared(q, up(ci), lo(ci), cutoff2)
						if err != nil {
							return err
						}
						if lb > cutoff2 {
							continue
						}
						if _, _, err := distance.DTWBandEarlyAbandonScratch(q, row(ci), band, cutoff2, nil, &scratch); err != nil {
							return err
						}
					}
				}
				return nil
			}
		}
		arenaNs, err := timeScan(dtwScan(cols.Values.Row, cols.Upper.Row, cols.Lower.Row))
		if err != nil {
			return nil, err
		}
		scatV, junkV := scatterRows(cols.Values.Row, n, int64(snap.Epoch())+1)
		scatU, junkU := scatterRows(cols.Upper.Row, n, int64(snap.Epoch())+2)
		scatL, junkL := scatterRows(cols.Lower.Row, n, int64(snap.Epoch())+3)
		at := func(s [][]float64) func(int) []float64 { return func(i int) []float64 { return s[i] } }
		scatNs, err := timeScan(dtwScan(at(scatV), at(scatU), at(scatL)))
		if err != nil {
			return nil, err
		}
		runtime.KeepAlive(junkV)
		runtime.KeepAlive(junkU)
		runtime.KeepAlive(junkL)
		out = append(out, ScanLayoutResult{
			Kernel: "dtw", ArenaNsPerScan: arenaNs, ScatteredNsPerScan: scatNs,
			ScatteredOverArena: float64(scatNs) / float64(arenaNs),
		})
		fmt.Fprintf(stderr, "layout dtw: arena %d ns/scan, scattered %d ns/scan\n", arenaNs, scatNs)
	}
	return out, nil
}
