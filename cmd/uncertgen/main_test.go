package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"uncertts/internal/timeseries"
)

func TestFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown dataset": {"-dataset", "NoSuchSet", "-series", "4", "-length", "16"},
		"unknown family":  {"-perturb", "cauchy"},
		"negative series": {"-series", "-1"},
		"negative length": {"-length", "-1"},
		"negative sigma":  {"-perturb", "normal", "-sigma", "-0.5"},
		"unknown flag":    {"-nope"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s (%v): expected an error", name, args)
		}
	}
}

func TestListDatasets(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CBF") {
		t.Errorf("-list output missing CBF:\n%s", out.String())
	}
}

// TestEndToEnd generates a tiny dataset and re-reads the emitted CSV.
func TestEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "CBF", "-series", "5", "-length", "16", "-seed", "3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	ds, err := timeseries.ReadCSV(strings.NewReader(out.String()), "test")
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(ds.Series) != 5 || ds.Series[0].Len() != 16 {
		t.Fatalf("round-tripped %d series x %d points, want 5 x 16", len(ds.Series), ds.Series[0].Len())
	}
	// A perturbed run must emit different values for the same seed.
	var noisy bytes.Buffer
	if err := run([]string{"-dataset", "CBF", "-series", "5", "-length", "16", "-seed", "3", "-perturb", "normal", "-sigma", "0.5"}, &noisy, io.Discard); err != nil {
		t.Fatal(err)
	}
	if noisy.String() == out.String() {
		t.Error("perturbed output identical to the clean output")
	}
}
