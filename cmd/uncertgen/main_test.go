package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"uncertts/internal/corpus"
	"uncertts/internal/store"
	"uncertts/internal/timeseries"
)

func TestFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown dataset": {"-dataset", "NoSuchSet", "-series", "4", "-length", "16"},
		"unknown family":  {"-perturb", "cauchy"},
		"negative series": {"-series", "-1"},
		"negative length": {"-length", "-1"},
		"negative sigma":  {"-perturb", "normal", "-sigma", "-0.5"},
		"unknown flag":    {"-nope"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s (%v): expected an error", name, args)
		}
	}
}

func TestListDatasets(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CBF") {
		t.Errorf("-list output missing CBF:\n%s", out.String())
	}
}

// TestEndToEnd generates a tiny dataset and re-reads the emitted CSV.
func TestEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dataset", "CBF", "-series", "5", "-length", "16", "-seed", "3"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	ds, err := timeseries.ReadCSV(strings.NewReader(out.String()), "test")
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(ds.Series) != 5 || ds.Series[0].Len() != 16 {
		t.Fatalf("round-tripped %d series x %d points, want 5 x 16", len(ds.Series), ds.Series[0].Len())
	}
	// A perturbed run must emit different values for the same seed.
	var noisy bytes.Buffer
	if err := run([]string{"-dataset", "CBF", "-series", "5", "-length", "16", "-seed", "3", "-perturb", "normal", "-sigma", "0.5"}, &noisy, io.Discard); err != nil {
		t.Fatal(err)
	}
	if noisy.String() == out.String() {
		t.Error("perturbed output identical to the clean output")
	}
}

// TestOutEmitsDurableCorpus seeds a store directory and reopens it.
func TestOutEmitsDurableCorpus(t *testing.T) {
	dir := t.TempDir()
	var msg bytes.Buffer
	if err := run([]string{"-dataset", "CBF", "-series", "6", "-length", "16", "-samples", "3", "-out", dir}, io.Discard, &msg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg.String(), "persisted 6 series") {
		t.Errorf("summary missing from stderr: %q", msg.String())
	}
	st, err := store.Open(dir, corpus.Config{}, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Corpus().Snapshot()
	if snap.Len() != 6 || snap.SeriesLen() != 16 {
		t.Fatalf("persisted corpus is %d series x %d points, want 6 x 16", snap.Len(), snap.SeriesLen())
	}
	if !snap.HasSamples() {
		t.Error("persisted corpus lost its sample model (MUNICH would be unavailable)")
	}
	// Re-seeding a non-empty directory must refuse.
	if err := run([]string{"-dataset", "CBF", "-series", "2", "-length", "16", "-out", dir}, io.Discard, io.Discard); err == nil {
		t.Error("seeding a non-empty directory should fail")
	}
	// -samples without -out is a CSV run and must refuse.
	if err := run([]string{"-dataset", "CBF", "-series", "2", "-length", "16", "-samples", "3"}, io.Discard, io.Discard); err == nil {
		t.Error("-samples without -out should fail")
	}
}
