// Command uncertgen generates the synthetic UCR stand-in datasets and
// writes them as CSV (one series per row: id,label,values...).
//
// Usage:
//
//	uncertgen -dataset CBF -series 100 -length 128 -seed 1 > cbf.csv
//	uncertgen -list
//	uncertgen -dataset GunPoint -perturb normal -sigma 0.6   # noisy copy
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// run is main with its environment injected, so tests can drive the
// command end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uncertgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("dataset", "CBF", "dataset name (see -list)")
		series  = fs.Int("series", 0, "number of series (0 = the dataset's full cardinality)")
		length  = fs.Int("length", 0, "series length (0 = the dataset's native length)")
		seed    = fs.Int64("seed", 1, "generation seed")
		list    = fs.Bool("list", false, "list dataset names and exit")
		perturb = fs.String("perturb", "", "optionally perturb with this error family: normal, uniform or exponential")
		sigma   = fs.Float64("sigma", 0.6, "error standard deviation when -perturb is set")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, spec := range ucr.Specs() {
			fmt.Fprintf(stdout, "%-18s classes=%-3d series=%-5d length=%d\n",
				spec.Name, spec.Classes, spec.Series, spec.Length)
		}
		return nil
	}
	if *series < 0 {
		return fmt.Errorf("-series = %d must be non-negative", *series)
	}
	if *length < 0 {
		return fmt.Errorf("-length = %d must be non-negative", *length)
	}
	if *sigma < 0 {
		return fmt.Errorf("-sigma = %v must be non-negative", *sigma)
	}

	ds, err := ucr.Generate(*name, ucr.Options{MaxSeries: *series, Length: *length, Seed: *seed})
	if err != nil {
		return err
	}

	if *perturb != "" {
		family, err := parseFamily(*perturb)
		if err != nil {
			return err
		}
		p, err := uncertain.NewConstantPerturber(family, *sigma, ds.Series[0].Len(), *seed)
		if err != nil {
			return err
		}
		for i := range ds.Series {
			ps := p.PerturbPDF(ds.Series[i])
			copy(ds.Series[i].Values, ps.Observations)
		}
	}

	return timeseries.WriteCSV(stdout, ds)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uncertgen:", err)
		os.Exit(1)
	}
}

func parseFamily(s string) (uncertain.ErrorFamily, error) {
	for _, f := range uncertain.AllErrorFamilies() {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("unknown error family %q (want normal, uniform or exponential)", s)
}
