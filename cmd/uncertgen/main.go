// Command uncertgen generates the synthetic UCR stand-in datasets and
// writes them as CSV (one series per row: id,label,values...).
//
// Usage:
//
//	uncertgen -dataset CBF -series 100 -length 128 -seed 1 > cbf.csv
//	uncertgen -list
//	uncertgen -dataset GunPoint -perturb normal -sigma 0.6   # noisy copy
//
// With -out the workload is emitted as a durable corpus checkpoint
// instead: the directory can be served by `uncertserve -data` or queried
// by `uncertquery -data` directly, with no HTTP ingest step. The series
// are perturbed (-perturb selects the error family, defaulting to normal)
// and carry their reported error models; -samples attaches repeated
// observations so the persisted corpus can serve MUNICH:
//
//	uncertgen -dataset CBF -series 64 -length 96 -samples 5 -out /var/lib/uncertserve
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"uncertts/internal/corpus"
	"uncertts/internal/store"
	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// run is main with its environment injected, so tests can drive the
// command end to end.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uncertgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("dataset", "CBF", "dataset name (see -list)")
		series  = fs.Int("series", 0, "number of series (0 = the dataset's full cardinality)")
		length  = fs.Int("length", 0, "series length (0 = the dataset's native length)")
		seed    = fs.Int64("seed", 1, "generation seed")
		list    = fs.Bool("list", false, "list dataset names and exit")
		perturb = fs.String("perturb", "", "optionally perturb with this error family: normal, uniform or exponential (-out defaults to normal)")
		sigma   = fs.Float64("sigma", 0.6, "error standard deviation when -perturb or -out is set")
		out     = fs.String("out", "", "emit the workload as a durable corpus checkpoint into this directory instead of CSV")
		samples = fs.Int("samples", 0, "repeated observations per timestamp persisted with -out (0 disables MUNICH on the corpus)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, spec := range ucr.Specs() {
			fmt.Fprintf(stdout, "%-18s classes=%-3d series=%-5d length=%d\n",
				spec.Name, spec.Classes, spec.Series, spec.Length)
		}
		return nil
	}
	if *series < 0 {
		return fmt.Errorf("-series = %d must be non-negative", *series)
	}
	if *length < 0 {
		return fmt.Errorf("-length = %d must be non-negative", *length)
	}
	if *sigma < 0 {
		return fmt.Errorf("-sigma = %v must be non-negative", *sigma)
	}
	if *samples < 0 {
		return fmt.Errorf("-samples = %d must be non-negative", *samples)
	}
	if *samples > 0 && *out == "" {
		return fmt.Errorf("-samples requires -out (CSV output carries no sample model)")
	}

	ds, err := ucr.Generate(*name, ucr.Options{MaxSeries: *series, Length: *length, Seed: *seed})
	if err != nil {
		return err
	}

	if *out != "" {
		return writeStore(ds, *out, *perturb, *sigma, *samples, *seed, stderr)
	}

	if *perturb != "" {
		family, err := parseFamily(*perturb)
		if err != nil {
			return err
		}
		p, err := uncertain.NewConstantPerturber(family, *sigma, ds.Series[0].Len(), *seed)
		if err != nil {
			return err
		}
		for i := range ds.Series {
			ps := p.PerturbPDF(ds.Series[i])
			copy(ds.Series[i].Values, ps.Observations)
		}
	}

	return timeseries.WriteCSV(stdout, ds)
}

// writeStore seeds a durable corpus directory with the perturbed workload
// and checkpoints it, so the WAL starts empty and a later open replays
// nothing.
func writeStore(ds timeseries.Dataset, dir, perturb string, sigma float64, samples int, seed int64, stderr io.Writer) error {
	if sigma <= 0 {
		return fmt.Errorf("-out needs a positive -sigma (the persisted series carry their error models)")
	}
	if perturb == "" {
		perturb = "normal"
	}
	family, err := parseFamily(perturb)
	if err != nil {
		return err
	}
	n := ds.Series[0].Len()
	pert, err := uncertain.NewConstantPerturber(family, sigma, n, seed)
	if err != nil {
		return err
	}
	batch := make([]corpus.Series, len(ds.Series))
	for i, s := range ds.Series {
		ps := pert.PerturbPDF(s)
		batch[i] = corpus.Series{Values: ps.Observations, Errors: ps.Errors, Label: s.Label}
		if samples > 0 {
			ss, err := pert.PerturbSamples(s, samples)
			if err != nil {
				return err
			}
			batch[i].Samples = ss.Samples
		}
	}

	st, err := store.Open(dir, corpus.Config{Length: n, ReportedSigma: sigma}, store.Options{Sync: store.SyncAlways})
	if err != nil {
		return err
	}
	if st.Corpus().Len() > 0 {
		st.Close()
		return fmt.Errorf("-out directory %s already holds %d series (seed an empty directory)", dir, st.Corpus().Len())
	}
	if _, err := st.Corpus().InsertBatch(batch); err != nil {
		st.Close()
		return err
	}
	if err := st.Checkpoint(); err != nil {
		st.Close()
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	snap := st.Corpus().Snapshot()
	fmt.Fprintf(stderr, "uncertgen: persisted %d series x %d points (%s error, sigma %g, %d samples/ts) as a checkpoint in %s\n",
		snap.Len(), snap.SeriesLen(), perturb, sigma, samples, dir)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uncertgen:", err)
		os.Exit(1)
	}
}

func parseFamily(s string) (uncertain.ErrorFamily, error) {
	for _, f := range uncertain.AllErrorFamilies() {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("unknown error family %q (want normal, uniform or exponential)", s)
}
