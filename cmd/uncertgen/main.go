// Command uncertgen generates the synthetic UCR stand-in datasets and
// writes them as CSV (one series per row: id,label,values...).
//
// Usage:
//
//	uncertgen -dataset CBF -series 100 -length 128 -seed 1 > cbf.csv
//	uncertgen -list
//	uncertgen -dataset GunPoint -perturb normal -sigma 0.6   # noisy copy
package main

import (
	"flag"
	"fmt"
	"os"

	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

func main() {
	var (
		name    = flag.String("dataset", "CBF", "dataset name (see -list)")
		series  = flag.Int("series", 0, "number of series (0 = the dataset's full cardinality)")
		length  = flag.Int("length", 0, "series length (0 = the dataset's native length)")
		seed    = flag.Int64("seed", 1, "generation seed")
		list    = flag.Bool("list", false, "list dataset names and exit")
		perturb = flag.String("perturb", "", "optionally perturb with this error family: normal, uniform or exponential")
		sigma   = flag.Float64("sigma", 0.6, "error standard deviation when -perturb is set")
	)
	flag.Parse()

	if *list {
		for _, spec := range ucr.Specs() {
			fmt.Printf("%-18s classes=%-3d series=%-5d length=%d\n",
				spec.Name, spec.Classes, spec.Series, spec.Length)
		}
		return
	}

	ds, err := ucr.Generate(*name, ucr.Options{MaxSeries: *series, Length: *length, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	if *perturb != "" {
		family, err := parseFamily(*perturb)
		if err != nil {
			fatal(err)
		}
		p, err := uncertain.NewConstantPerturber(family, *sigma, ds.Series[0].Len(), *seed)
		if err != nil {
			fatal(err)
		}
		for i := range ds.Series {
			ps := p.PerturbPDF(ds.Series[i])
			copy(ds.Series[i].Values, ps.Observations)
		}
	}

	if err := timeseries.WriteCSV(os.Stdout, ds); err != nil {
		fatal(err)
	}
}

func parseFamily(s string) (uncertain.ErrorFamily, error) {
	for _, f := range uncertain.AllErrorFamilies() {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("unknown error family %q (want normal, uniform or exponential)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uncertgen:", err)
	os.Exit(1)
}
