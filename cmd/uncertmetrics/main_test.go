package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uncertts/internal/telemetry"
)

// registryEndpoint serves a fresh registry with a few live instruments —
// the same handler a serving process mounts on /metrics.
func registryEndpoint(t *testing.T) *httptest.Server {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.NewCounter("uncertts_test_events_total", "Test events.").Inc()
	reg.NewHistogram("uncertts_test_latency_seconds", "Test latency.", nil).Observe(0.004)
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestRunAcceptsValidEndpoint(t *testing.T) {
	srv := registryEndpoint(t)
	var out bytes.Buffer
	err := run(&out, srv.URL, "uncertts_test_events_total,uncertts_test_latency_seconds", false, time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("expected ok summary, got %q", out.String())
	}
}

func TestRunReportsMissingFamilies(t *testing.T) {
	srv := registryEndpoint(t)
	err := run(&bytes.Buffer{}, srv.URL, "uncertts_test_events_total,uncertts_absent_total", false, time.Second)
	if err == nil || !strings.Contains(err.Error(), "uncertts_absent_total") {
		t.Fatalf("want missing-family error naming uncertts_absent_total, got %v", err)
	}
}

func TestRunRejectsInvalidExposition(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("this is not an exposition {\n"))
	}))
	defer srv.Close()
	if err := run(&bytes.Buffer{}, srv.URL, "", false, time.Second); err == nil {
		t.Fatal("want parse error for malformed exposition")
	}
}

func TestRunRejectsNonOKStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	if err := run(&bytes.Buffer{}, srv.URL, "", false, time.Second); err == nil {
		t.Fatal("want error for non-200 endpoint")
	}
}

func TestRunListsFamilies(t *testing.T) {
	srv := registryEndpoint(t)
	var out bytes.Buffer
	if err := run(&out, srv.URL, "", true, time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "uncertts_test_events_total\n") {
		t.Fatalf("want family listing, got %q", out.String())
	}
}

func TestRunRequiresURL(t *testing.T) {
	if err := run(&bytes.Buffer{}, "", "", false, time.Second); err == nil {
		t.Fatal("want error when -url is empty")
	}
}
