// Command uncertmetrics scrapes a Prometheus text-exposition endpoint and
// validates it: the document must parse cleanly (well-formed comments,
// labels and histogram series), and every family named in -require must
// be present. It is the CI smoke check that a serving process's /metrics
// actually covers the layers it claims to.
//
// Usage:
//
//	uncertmetrics -url http://localhost:8080/metrics
//	uncertmetrics -url http://localhost:8090/metrics \
//	  -require uncertts_server_queries_total,uncertts_cluster_scatter_duration_seconds
//
// Exit status 0 means the endpoint parsed and every required family was
// found; any failure prints the reason and exits 1. -list prints the
// scraped family names (one per line) for debugging.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"uncertts/internal/telemetry"
)

func main() {
	var (
		url     = flag.String("url", "", "metrics endpoint to scrape (required)")
		require = flag.String("require", "", "comma-separated metric family names that must be present")
		list    = flag.Bool("list", false, "print the scraped family names")
		timeout = flag.Duration("timeout", 10*time.Second, "scrape timeout")
	)
	flag.Parse()
	if err := run(os.Stdout, *url, *require, *list, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "uncertmetrics:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, url, require string, list bool, timeout time.Duration) error {
	if url == "" {
		return fmt.Errorf("-url is required")
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s answered %d: %s", url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	families, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("%s: invalid exposition: %w", url, err)
	}
	if list {
		names := make([]string, 0, len(families))
		for name := range families {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintln(stdout, name)
		}
	}
	var missing []string
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := families[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s is missing required families: %s", url, strings.Join(missing, ", "))
	}
	fmt.Fprintf(stdout, "uncertmetrics: %s ok (%d families)\n", url, len(families))
	return nil
}
