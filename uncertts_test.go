package uncertts

import (
	"math"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the README
// quick start does.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := GenerateDataset("CBF", DatasetOptions{MaxSeries: 24, Length: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 24 {
		t.Fatalf("dataset size %d", ds.Len())
	}
	pert, err := NewConstantPerturber(Normal, 0.6, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(ds, pert, WorkloadConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Matcher{
		NewEuclideanMatcher(),
		NewDUSTMatcher(),
		NewUMAMatcher(2),
		NewUEMAMatcher(2, 1),
	} {
		ms, err := Evaluate(w, m, []int{0, 1, 2, 3})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		avg := AverageMetrics(ms)
		if avg.F1 < 0 || avg.F1 > 1 {
			t.Errorf("%s: F1 = %v", m.Name(), avg.F1)
		}
	}
	tau, _, err := CalibrateTau(w, func(tau float64) Matcher { return NewPROUDMatcher(tau) }, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(w, NewPROUDMatcher(tau), []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFiltersAndDistances(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	sig := []float64{1, 1, 1, 1, 1}
	ma := MovingAverage(vals, 1)
	uma, err := UMA(vals, sig, 1, WeightModeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ma {
		if math.Abs(ma[i]-uma[i]) > 1e-12 {
			t.Fatal("constant-sigma UMA must equal MA")
		}
	}
	if _, err := UEMA(vals, sig, 2, 0.5, WeightModeNormalized); err != nil {
		t.Fatal(err)
	}
	ema := ExponentialMovingAverage(vals, 2, 0.5)
	if len(ema) != len(vals) {
		t.Fatal("EMA length")
	}

	d, err := Euclidean([]float64{0, 0}, []float64{3, 4})
	if err != nil || d != 5 {
		t.Fatalf("Euclidean = %v, %v", d, err)
	}
	if _, err := DTW([]float64{1, 2}, []float64{1, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := DTWBand([]float64{1, 2}, []float64{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDistributions(t *testing.T) {
	for _, d := range []Dist{NormalDist(0, 1), UniformErrorDist(0.5), ExponentialErrorDist(0.5)} {
		if math.IsNaN(d.Mean()) || d.Variance() <= 0 {
			t.Errorf("%v: bad moments", d)
		}
	}
}

func TestPublicDUSTAndMUNICH(t *testing.T) {
	du := NewDUST(DUSTOptions{})
	errDist := NormalDist(0, 0.5)
	v, err := du.Value(0, 1, errDist, errDist)
	if err != nil || v <= 0 {
		t.Fatalf("DUST value = %v, %v", v, err)
	}
	x := SampleSeries{Samples: [][]float64{{0, 0.1}, {1, 1.1}}, ID: 0}
	y := SampleSeries{Samples: [][]float64{{0.2}, {1.2}}, ID: 1}
	p, err := MUNICHProbability(x, y, 1, MUNICHOptions{})
	if err != nil || p < 0 || p > 1 {
		t.Fatalf("MUNICH probability = %v, %v", p, err)
	}
	dd, err := PROUDDistance([]float64{0, 0}, []float64{1, 1}, 0.3, 0.3)
	if err != nil || dd.Mean <= 0 {
		t.Fatalf("PROUD distance = %+v, %v", dd, err)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 18 {
		t.Fatalf("want 18 experiments, got %d", len(names))
	}
	if _, err := RunExperiment("nope", ExperimentConfig{}); err == nil {
		t.Error("unknown experiment should error")
	}
	var unknown *UnknownExperimentError
	_, err := RunExperiment("nope", ExperimentConfig{})
	if !errorsAs(err, &unknown) {
		t.Errorf("want UnknownExperimentError, got %T", err)
	}
	tables, err := RunExperiment("chisquare", ExperimentConfig{Scale: ScaleSmall, Seed: 1})
	if err != nil || len(tables) != 1 {
		t.Fatalf("chisquare: %v, %d tables", err, len(tables))
	}
}

// errorsAs is a tiny local wrapper to avoid importing errors just for one
// assertion.
func errorsAs(err error, target **UnknownExperimentError) bool {
	if err == nil {
		return false
	}
	u, ok := err.(*UnknownExperimentError)
	if ok {
		*target = u
	}
	return ok
}

func TestPublicWavelets(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	c, err := HaarTransform(xs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := HaarInverse(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1e-9 {
			t.Fatal("Haar round trip failed")
		}
	}
}

func TestPublicExtensions(t *testing.T) {
	ds, err := GenerateDataset("CBF", DatasetOptions{MaxSeries: 14, Length: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// AR(1) perturbation.
	pert, err := NewAR1Perturber(Normal, 0.5, 0.6, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(ds, pert, WorkloadConfig{K: 3, SamplesPerTS: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Parallel evaluation with DTW and empirical-DUST matchers.
	for _, m := range []Matcher{
		NewDTWMatcher(),
		NewDUSTDTWMatcher(),
		NewDUSTEmpiricalMatcher(),
	} {
		ms, err := EvaluateParallel(w, m, []int{0, 1}, 2)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(ms) != 2 {
			t.Fatalf("%s: %d rows", m.Name(), len(ms))
		}
	}
	// Empirical distribution from data.
	e, err := NewEmpiricalDist([]float64{0.1, -0.2, 0.3, 0, -0.1, 0.2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 6 {
		t.Errorf("N = %d", e.N())
	}
	// Streaming monitor.
	mon, err := NewStreamMonitor(0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Register(StreamPattern{ID: 1, Values: []float64{0, 0, 0}, Eps: 2, Tau: 0.5}); err != nil {
		t.Fatal(err)
	}
	events, err := mon.PushBatch(0, []float64{0.05, -0.05, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	var _ StreamEvent = events[0]
}

func TestPublicSeriesHelpers(t *testing.T) {
	s := NewSeries([]float64{5, 10, 15})
	n := s.Normalize()
	if !n.IsNormalized(1e-9) {
		t.Error("Normalize failed")
	}
	if len(DatasetNames()) != 17 {
		t.Error("want 17 dataset names")
	}
	all := GenerateAllDatasets(DatasetOptions{MaxSeries: 3, Length: 40, Seed: 1})
	if len(all) != 17 {
		t.Error("want 17 datasets")
	}
	spec := MixedSigmaSpec{Fraction: 0.2, SigmaHigh: 1, SigmaLow: 0.4, Families: []ErrorFamily{Normal}}
	if _, err := NewMixedPerturber(spec, 40, 1); err != nil {
		t.Fatal(err)
	}
}

// TestPublicQueryEngine drives the pruned top-k engine through the public
// surface and checks it against the naive scan.
func TestPublicQueryEngine(t *testing.T) {
	ds, err := GenerateDataset("CBF", DatasetOptions{MaxSeries: 30, Length: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pert, err := NewConstantPerturber(Normal, 0.5, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(ds, pert, WorkloadConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, measure := range []QueryMeasure{MeasureEuclidean, MeasureUEMA, MeasureDTW, MeasureDUST} {
		e, err := NewQueryEngine(w, QueryEngineOptions{Measure: measure})
		if err != nil {
			t.Fatal(err)
		}
		nn, err := e.TopK(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(nn) != 5 {
			t.Fatalf("%v: got %d neighbours, want 5", measure, len(nn))
		}
		for i := 1; i < len(nn); i++ {
			if nn[i].Distance < nn[i-1].Distance {
				t.Fatalf("%v: neighbours out of order: %v", measure, nn)
			}
		}
		// The engine's distances must agree with its own exact Distance.
		for _, n := range nn {
			d, err := e.Distance(0, n.ID)
			if err != nil {
				t.Fatal(err)
			}
			if d != n.Distance {
				t.Fatalf("%v: neighbour %d distance %v != exact %v", measure, n.ID, n.Distance, d)
			}
		}
		s := e.Stats()
		if s.Candidates == 0 || s.Completed+s.AbandonedEarly+s.PrunedByEnvelope != s.Candidates {
			t.Fatalf("%v: inconsistent stats %+v", measure, s)
		}
	}
	// Batched evaluation through the generalised parallel executor still
	// matches the sequential path from the public surface too.
	m := NewUEMAMatcher(2, 1)
	serial, err := Evaluate(w, m, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := EvaluateParallel(w, m, []int{0, 1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatal("parallel metrics length mismatch")
	}
	for i := range par {
		if par[i] != serial[i] {
			t.Fatalf("query %d: parallel %+v != serial %+v", i, par[i], serial[i])
		}
	}
}
