// Privacy simulates the paper's second motivation: privacy-preserving
// publication of personal time series. A data owner perturbs trajectories
// with calibrated noise before release; an analyst later runs similarity
// search on the published (uncertain) data.
//
// The example sweeps the privacy level (noise sigma) and shows the
// utility/privacy trade-off for plain Euclidean versus the UEMA measure:
// UEMA retains usable accuracy at noise levels where Euclidean has already
// collapsed, i.e. the publisher can buy more privacy for the same utility.
//
//	go run ./examples/privacy
package main

import (
	"fmt"
	"log"

	"uncertts"
)

const (
	nUsers = 40
	length = 96
	seed   = 3
)

func main() {
	// Clean personal series (daily-activity-like smooth shapes).
	ds, err := uncertts.GenerateDataset("50words", uncertts.DatasetOptions{
		MaxSeries: nUsers, Length: length, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Privacy-preserving publication: utility (similarity-search F1)")
	fmt.Println("as the privacy noise grows. Uniform perturbation, K=8 ground truth.")
	fmt.Println()
	fmt.Println("sigma   Euclidean  UEMA(w=2)   UEMA advantage")

	for _, sigma := range []float64{0.2, 0.6, 1.0, 1.4, 2.0} {
		pert, err := uncertts.NewConstantPerturber(uncertts.Uniform, sigma, length, seed)
		if err != nil {
			log.Fatal(err)
		}
		w, err := uncertts.NewWorkload(ds, pert, uncertts.WorkloadConfig{K: 8})
		if err != nil {
			log.Fatal(err)
		}
		eu, err := uncertts.Evaluate(w, uncertts.NewEuclideanMatcher(), nil)
		if err != nil {
			log.Fatal(err)
		}
		ue, err := uncertts.Evaluate(w, uncertts.NewUEMAMatcher(2, 1), nil)
		if err != nil {
			log.Fatal(err)
		}
		euF1 := uncertts.AverageMetrics(eu).F1
		ueF1 := uncertts.AverageMetrics(ue).F1
		fmt.Printf("%.1f     %.3f      %.3f       %+.3f\n", sigma, euF1, ueF1, ueF1-euF1)
	}

	fmt.Println()
	fmt.Println("Reading: pick the largest sigma whose UEMA F1 still meets the")
	fmt.Println("analyst's utility bar — that sigma is the privacy budget the")
	fmt.Println("publisher can afford.")
}
