// Declarative: the one-request query API. A corpus is stood up once, and
// every query shape — top-k, range, probabilistic range — is expressed as
// a QueryRequest and executed by QueryEngine.Run under a context the whole
// stack honours: cancelling it (or letting its deadline expire) stops the
// scan promptly, all the way down to the executor shards and the distance
// kernels.
//
//	go run ./examples/declarative
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"uncertts"
)

const (
	nSeries = 48
	length  = 96
	seed    = 3
)

func main() {
	// A corpus of noisy series with a known error level.
	ds, err := uncertts.GenerateDataset("CBF", uncertts.DatasetOptions{
		MaxSeries: nSeries, Length: length, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	pert, err := uncertts.NewConstantPerturber(uncertts.Normal, 0.6, length, seed)
	if err != nil {
		log.Fatal(err)
	}
	c := uncertts.NewCorpus(uncertts.CorpusConfig{Length: length, ReportedSigma: 0.6})
	for _, s := range ds.Series {
		ps := pert.PerturbPDF(s)
		if _, err := c.Insert(uncertts.CorpusSeries{Values: ps.Observations, Errors: ps.Errors}); err != nil {
			log.Fatal(err)
		}
	}

	// One engine per measure; every query against it is a QueryRequest.
	e, err := uncertts.NewQueryEngineFromSnapshot(c.Snapshot(), uncertts.QueryEngineOptions{
		Measure: uncertts.MeasureUEMA,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	qi := 7

	// Top-k: the k nearest residents of series 7, excluding itself.
	res, err := e.Run(ctx, uncertts.QueryRequest{
		Measure: uncertts.MeasureUEMA,
		Kind:    uncertts.QueryTopK,
		Index:   &qi,
		K:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d of series %d under UEMA:\n", res.Total, qi)
	for rank, n := range res.Neighbors {
		fmt.Printf("  #%d series %-3d distance %.4f\n", rank+1, n.ID, n.Distance)
	}

	// Range, streamed: neighbours are delivered incrementally as the
	// executor shards confirm them (order is nondeterministic under
	// parallelism, so only the count is printed), then the final result
	// arrives sorted.
	eps := res.Neighbors[len(res.Neighbors)-1].Distance
	streamed := 0
	res, err = e.RunStream(ctx, uncertts.QueryRequest{
		Measure: uncertts.MeasureUEMA,
		Kind:    uncertts.QueryRange,
		Index:   &qi,
		Eps:     eps,
	}, func(uncertts.QueryStreamItem) error {
		streamed++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range eps=%.4f: %d matches streamed incrementally, final answer %v\n", eps, streamed, res.IDs)

	// Pagination: the same query windowed to one entry starting at the
	// second match.
	res, err = e.Run(ctx, uncertts.QueryRequest{
		Measure: uncertts.MeasureUEMA,
		Kind:    uncertts.QueryRange,
		Index:   &qi,
		Eps:     eps,
		Offset:  1,
		Limit:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page offset=1 limit=1: %v of %d total\n", res.IDs, res.Total)

	// Cancellation: a cancelled context stops the query before any work
	// runs, and the error is classified by sentinel, not string.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	_, err = e.Run(cancelled, uncertts.QueryRequest{
		Measure: uncertts.MeasureUEMA,
		Kind:    uncertts.QueryTopK,
		Index:   &qi,
		K:       5,
	})
	fmt.Printf("cancelled context: ErrQueryCancelled=%v context.Canceled=%v\n",
		errors.Is(err, uncertts.ErrQueryCancelled), errors.Is(err, context.Canceled))

	// Validation failures carry field-specific sentinels too.
	_, err = e.Run(ctx, uncertts.QueryRequest{
		Measure: uncertts.MeasureUEMA,
		Kind:    uncertts.QueryTopK,
		Index:   &qi,
		K:       0,
	})
	fmt.Printf("k=0: ErrBadRequest=%v (%v)\n", errors.Is(err, uncertts.ErrBadRequest), err)
}
