// Monitoring demonstrates the streaming deployment PROUD was built for: a
// plant-floor monitor watches noisy vibration streams for a known failure
// precursor, deciding per epoch — often before the epoch completes —
// whether each stream probabilistically matches the pattern.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"uncertts"
)

const (
	epochLen    = 32
	streamSigma = 0.3
	epochs      = 6
)

func main() {
	// The failure precursor: a growing oscillation.
	precursor := make([]float64, epochLen)
	for i := range precursor {
		precursor[i] = float64(i) / epochLen * osc(i)
	}

	mon, err := uncertts.NewStreamMonitor(0, streamSigma)
	if err != nil {
		log.Fatal(err)
	}
	// eps budget: expected noise energy is epochLen * sigma^2 ~ 2.9, so a
	// threshold of 3 in distance (9 in energy) leaves headroom for real
	// matches while rejecting unrelated regimes.
	if err := mon.Register(uncertts.StreamPattern{
		ID: 1, Values: precursor, Eps: 3, Tau: 0.5,
	}); err != nil {
		log.Fatal(err)
	}

	rng := uncertts.NewSeededRand(4)
	fmt.Println("epoch  stream  decision  at-timestamp  early")
	for epoch := 0; epoch < epochs; epoch++ {
		for _, stream := range []struct {
			id      int
			healthy bool
		}{{100, true}, {200, false}} {
			for i := 0; i < epochLen; i++ {
				var clean float64
				if stream.healthy {
					clean = 0.1 * osc(i) // steady low-amplitude hum
				} else {
					clean = precursor[i] // the precursor is developing
				}
				events, err := mon.Push(stream.id, clean+rng.NormFloat64()*streamSigma)
				if err != nil {
					log.Fatal(err)
				}
				for _, e := range events {
					fmt.Printf("%5d  %6d  %-8v  %12d  %v\n",
						epoch, e.StreamID, e.Decision, e.Timestamp, e.Early)
				}
			}
		}
	}
	fmt.Println("\nStream 200 (developing the precursor) matches every epoch;")
	fmt.Println("stream 100 (healthy hum) is rejected, usually early.")
}

func osc(i int) float64 {
	switch i % 4 {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return 0
	default:
		return -1
	}
}
