// Sensornet simulates the paper's manufacturing-plant motivation: a bank of
// vibration sensors with heterogeneous, per-sensor noise levels, where the
// task is to find machines whose vibration signature matches a known
// failure precursor.
//
// The example shows the DUST advantage the paper isolates in Figure 8: when
// the noise level genuinely varies across measurements and the per-
// measurement sigmas are KNOWN, DUST (and the sigma-weighted UMA/UEMA
// filters) beat both plain Euclidean and PROUD, which can only use one
// global sigma.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math"

	"uncertts"
)

const (
	nMachines = 48
	length    = 120
	seed      = 7
)

func main() {
	// Ground truth: every machine's clean vibration signature. Class 0
	// machines carry the failure-precursor pattern; other classes are
	// healthy regimes. (Trace is the synthetic stand-in with transient
	// patterns.)
	ds, err := uncertts.GenerateDataset("Trace", uncertts.DatasetOptions{
		MaxSeries: nMachines, Length: length, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The sensor bank: 20% of the sampling instants come from the cheap
	// high-noise sensors (sigma 1.0), the rest from calibrated ones
	// (sigma 0.4) — the paper's exact mixed-error setting.
	pert, err := uncertts.NewMixedPerturber(uncertts.MixedSigmaSpec{
		Fraction:  0.2,
		SigmaHigh: 1.0,
		SigmaLow:  0.4,
		Families:  []uncertts.ErrorFamily{uncertts.Normal},
	}, length, seed)
	if err != nil {
		log.Fatal(err)
	}

	w, err := uncertts.NewWorkload(ds, pert, uncertts.WorkloadConfig{K: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Machines:", nMachines, "| signature length:", length)
	fmt.Println("Noise: 20% of instants at sigma=1.0, 80% at sigma=0.4 (known per instant)")
	fmt.Println()

	type row struct {
		name string
		f1   float64
	}
	var rows []row
	for _, m := range []uncertts.Matcher{
		uncertts.NewEuclideanMatcher(), // ignores the sigmas entirely
		uncertts.NewDUSTMatcher(),      // uses the per-instant sigmas
		uncertts.NewUMAMatcher(2),      // weights samples by 1/sigma
		uncertts.NewUEMAMatcher(2, 1),  // ... with exponential decay
	} {
		ms, err := uncertts.Evaluate(w, m, nil)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{m.Name(), uncertts.AverageMetrics(ms).F1})
	}

	fmt.Println("Retrieving each machine's true nearest signatures from noisy data:")
	best := rows[0]
	for _, r := range rows {
		fmt.Printf("  %-16s F1 = %.3f\n", r.name, r.f1)
		if r.f1 > best.f1 {
			best = r
		}
	}
	fmt.Printf("\nWinner: %s (+%.1f%% F1 over plain Euclidean)\n",
		best.name, 100*(best.f1-rows[0].f1)/math.Max(rows[0].f1, 1e-9))
	fmt.Println("Lesson: when per-measurement noise levels are known, weighting")
	fmt.Println("by 1/sigma and smoothing over neighbouring instants recovers")
	fmt.Println("signatures that raw point-wise comparison loses.")
}
