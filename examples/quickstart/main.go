// Quickstart: perturb a dataset, run every technique on the same
// similarity-matching task, and print the F1 leaderboard.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"uncertts"
)

func main() {
	// 1. A clean dataset (synthetic stand-in for UCR CBF: cylinder, bell
	//    and funnel shapes).
	ds, err := uncertts.GenerateDataset("CBF", uncertts.DatasetOptions{
		MaxSeries: 40, Length: 96, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Corrupt it with zero-mean Gaussian sensor noise, sigma = 0.8.
	pert, err := uncertts.NewConstantPerturber(uncertts.Normal, 0.8, 96, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build the workload: ground truth comes from the clean data (each
	//    query's 10 nearest neighbours), the techniques only ever see the
	//    noisy observations.
	w, err := uncertts.NewWorkload(ds, pert, uncertts.WorkloadConfig{K: 10})
	if err != nil {
		log.Fatal(err)
	}

	// 4. PROUD needs its probability threshold calibrated (the paper uses
	//    the "optimal tau determined after repeated experiments").
	tau, _, err := uncertts.CalibrateTau(w, func(tau float64) uncertts.Matcher {
		return uncertts.NewPROUDMatcher(tau)
	}, []int{0, 1, 2, 3}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Same task, five techniques.
	techniques := []uncertts.Matcher{
		uncertts.NewEuclideanMatcher(),
		uncertts.NewPROUDMatcher(tau),
		uncertts.NewDUSTMatcher(),
		uncertts.NewUMAMatcher(2),
		uncertts.NewUEMAMatcher(2, 1),
	}
	fmt.Println("technique         F1     precision  recall")
	for _, m := range techniques {
		ms, err := uncertts.Evaluate(w, m, nil)
		if err != nil {
			log.Fatal(err)
		}
		avg := uncertts.AverageMetrics(ms)
		fmt.Printf("%-16s  %.3f  %.3f      %.3f\n", m.Name(), avg.F1, avg.Precision, avg.Recall)
	}
	fmt.Println("\nExpect UEMA and UMA on top: they exploit the temporal")
	fmt.Println("correlation of neighbouring points that the other techniques ignore.")
}
