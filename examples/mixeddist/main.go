// Mixeddist demonstrates the knowledge-sensitivity result of Figures 8-10:
// DUST only beats the simple techniques when its a-priori knowledge of the
// error distributions is *accurate*. The same workload is evaluated three
// times:
//
//  1. DUST told the true per-timestamp mixed sigmas   (Figure 8 setting)
//
//  2. DUST told a wrong constant sigma of 0.7         (Figure 10 setting)
//
//  3. Euclidean, which never uses error knowledge
//
//     go run ./examples/mixeddist
package main

import (
	"fmt"
	"log"

	"uncertts"
)

const (
	nSeries = 36
	length  = 96
	seed    = 11
)

func main() {
	ds, err := uncertts.GenerateDataset("SwedishLeaf", uncertts.DatasetOptions{
		MaxSeries: nSeries, Length: length, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	pert, err := uncertts.NewMixedPerturber(uncertts.MixedSigmaSpec{
		Fraction:  0.2,
		SigmaHigh: 1.0,
		SigmaLow:  0.4,
		Families:  []uncertts.ErrorFamily{uncertts.Normal},
	}, length, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Workload 1: techniques are told the truth.
	truthW, err := uncertts.NewWorkload(ds, pert, uncertts.WorkloadConfig{K: 8})
	if err != nil {
		log.Fatal(err)
	}
	// Workload 2: same observations, but the reported error model lies —
	// "the standard deviation is 0.7 everywhere".
	wrong := make([]uncertts.Dist, length)
	for i := range wrong {
		wrong[i] = uncertts.NormalDist(0, 0.7)
	}
	liedW, err := uncertts.NewWorkload(ds, pert, uncertts.WorkloadConfig{
		K: 8, ReportedErrors: wrong,
	})
	if err != nil {
		log.Fatal(err)
	}

	eval := func(w *uncertts.Workload, m uncertts.Matcher) float64 {
		ms, err := uncertts.Evaluate(w, m, nil)
		if err != nil {
			log.Fatal(err)
		}
		return uncertts.AverageMetrics(ms).F1
	}

	dustTrue := eval(truthW, uncertts.NewDUSTMatcher())
	dustLied := eval(liedW, uncertts.NewDUSTMatcher())
	eucl := eval(truthW, uncertts.NewEuclideanMatcher())

	fmt.Println("Mixed error: 20% of timestamps sigma=1.0, 80% sigma=0.4 (normal)")
	fmt.Printf("  DUST with true per-timestamp sigmas : F1 = %.3f\n", dustTrue)
	fmt.Printf("  DUST told constant sigma 0.7 (wrong): F1 = %.3f\n", dustLied)
	fmt.Printf("  Euclidean (no knowledge)            : F1 = %.3f\n", eucl)
	fmt.Println()
	fmt.Println("The paper's guideline: \"when we do not have enough, or accurate")
	fmt.Println("information on the distribution of the error, PROUD and DUST do")
	fmt.Println("not offer an advantage when compared to Euclidean.\"")
}
