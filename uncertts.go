// Package uncertts is a Go reproduction of "Uncertain Time-Series
// Similarity: Return to the Basics" (Dallachiesa, Nushi, Mirylenka,
// Palpanas; PVLDB 5(11), 2012).
//
// It implements, from scratch on the standard library:
//
//   - the three uncertain-similarity techniques the paper surveys — MUNICH
//     (repeated-observation counting), PROUD (central-limit probabilistic
//     ranges) and DUST (Bayesian per-value dissimilarity) — plus the plain
//     Euclidean baseline;
//   - the paper's own contribution, the UMA and UEMA uncertainty-weighted
//     moving-average measures;
//   - the full evaluation methodology of Section 4: ground-truth
//     construction, per-technique threshold calibration, tau calibration,
//     precision/recall/F1 scoring; and
//   - deterministic synthetic stand-ins for the 17 UCR datasets, an
//     error-perturbation engine (uniform / normal / exponential, constant
//     and mixed sigma), and runners that regenerate every figure of the
//     paper's evaluation.
//
// # Quick start
//
//	ds, _ := uncertts.GenerateDataset("CBF", uncertts.DatasetOptions{MaxSeries: 40, Length: 96, Seed: 1})
//	pert, _ := uncertts.NewConstantPerturber(uncertts.Normal, 0.6, 96, 1)
//	w, _ := uncertts.NewWorkload(ds, pert, uncertts.WorkloadConfig{K: 10})
//	metrics, _ := uncertts.Evaluate(w, uncertts.NewUEMAMatcher(2, 1), nil)
//	fmt.Printf("UEMA F1: %.3f\n", uncertts.AverageMetrics(metrics).F1)
//
// # Serving
//
// Beyond the batch evaluation, the package serves queries from a mutable
// corpus with snapshot isolation (see NewCorpus, NewQueryEngineFromSnapshot,
// NewQueryServer). Queries are declarative: build one QueryRequest and
// execute it with QueryEngine.Run under a context whose cancellation and
// deadline the whole stack honours:
//
//	c := uncertts.NewCorpus(uncertts.CorpusConfig{ReportedSigma: 0.6})
//	id, _ := c.Insert(uncertts.CorpusSeries{Values: obs})
//	e, _ := uncertts.NewQueryEngineFromSnapshot(c.Snapshot(), uncertts.QueryEngineOptions{})
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, _ := e.Run(ctx, uncertts.QueryRequest{
//		Kind:  uncertts.QueryTopK,
//		AdHoc: &uncertts.AdHocQuery{Values: someVector},
//		K:     5,
//	})
//	_, _ = id, res.Neighbors
//
// cmd/uncertserve exposes the same stack over HTTP/JSON, including a
// streaming NDJSON endpoint (/query/stream) and per-request timeouts.
//
// The corpus can be made durable with OpenCorpus: mutations are written
// ahead to a checksummed log, checkpoints bound recovery time, and a
// restart (or crash) recovers the exact acknowledged state — same stable
// IDs, same epochs, bit-identical query results.
//
// The cmd/uncertbench binary regenerates any figure:
//
//	uncertbench -exp fig5 -scale medium
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package uncertts

import (
	"math/rand"

	"uncertts/internal/core"
	"uncertts/internal/corpus"
	"uncertts/internal/distance"
	"uncertts/internal/dust"
	"uncertts/internal/engine"
	"uncertts/internal/experiments"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/qerr"
	"uncertts/internal/query"
	"uncertts/internal/server"
	"uncertts/internal/stats"
	"uncertts/internal/store"
	"uncertts/internal/stream"
	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
	"uncertts/internal/wavelet"
)

// ---- Time series substrate ----

// Series is a real-valued time series with constant sampling rate.
type Series = timeseries.Series

// Dataset is a named collection of series.
type Dataset = timeseries.Dataset

// NewSeries builds a Series over a copy of values.
func NewSeries(values []float64) Series { return timeseries.New(values) }

// WeightMode selects the Eq. 17/18 weight normalisation of the UMA/UEMA
// filters.
type WeightMode = timeseries.WeightMode

// Weight mode values.
const (
	WeightModeNormalized = timeseries.WeightModeNormalized
	WeightModeStrict     = timeseries.WeightModeStrict
)

// MovingAverage applies the paper's Eq. 15 filter.
func MovingAverage(values []float64, w int) []float64 {
	return timeseries.MovingAverage(values, w)
}

// ExponentialMovingAverage applies the paper's Eq. 16 filter.
func ExponentialMovingAverage(values []float64, w int, lambda float64) []float64 {
	return timeseries.ExponentialMovingAverage(values, w, lambda)
}

// UMA applies the Uncertain Moving Average filter (Eq. 17).
func UMA(values, sigmas []float64, w int, mode WeightMode) ([]float64, error) {
	return timeseries.UncertainMovingAverage(values, sigmas, w, mode)
}

// UEMA applies the Uncertain Exponential Moving Average filter (Eq. 18).
func UEMA(values, sigmas []float64, w int, lambda float64, mode WeightMode) ([]float64, error) {
	return timeseries.UncertainExponentialMovingAverage(values, sigmas, w, lambda, mode)
}

// ---- Distances ----

// Euclidean returns the L2 distance between equal-length series.
func Euclidean(x, y []float64) (float64, error) { return distance.Euclidean(x, y) }

// DTW returns the Dynamic Time Warping distance.
func DTW(x, y []float64) (float64, error) { return distance.DTW(x, y) }

// DTWBand returns DTW constrained to a Sakoe-Chiba band.
func DTWBand(x, y []float64, band int) (float64, error) { return distance.DTWBand(x, y, band) }

// ---- Probability distributions ----

// Dist is a continuous probability distribution (error model).
type Dist = stats.Dist

// NormalDist returns N(mu, sigma^2).
func NormalDist(mu, sigma float64) Dist { return stats.NewNormal(mu, sigma) }

// UniformErrorDist returns the zero-mean uniform error with stddev sigma.
func UniformErrorDist(sigma float64) Dist { return stats.NewUniformByStdDev(sigma) }

// ExponentialErrorDist returns the zero-mean exponential error with stddev
// sigma.
func ExponentialErrorDist(sigma float64) Dist { return stats.NewExponentialByStdDev(sigma) }

// ---- Uncertainty models and perturbation ----

// PDFSeries is the observation-plus-error-distribution uncertain model
// (PROUD / DUST input).
type PDFSeries = uncertain.PDFSeries

// SampleSeries is the repeated-observation uncertain model (MUNICH input).
type SampleSeries = uncertain.SampleSeries

// ErrorFamily enumerates the zero-mean error families of the evaluation.
type ErrorFamily = uncertain.ErrorFamily

// Error family values.
const (
	Normal      = uncertain.Normal
	Uniform     = uncertain.Uniform
	Exponential = uncertain.Exponential
)

// Perturber turns exact series into uncertain ones.
type Perturber = uncertain.Perturber

// MixedSigmaSpec describes the paper's mixed-error perturbations.
type MixedSigmaSpec = uncertain.MixedSigmaSpec

// NewConstantPerturber perturbs every timestamp with the same error.
func NewConstantPerturber(family ErrorFamily, sigma float64, n int, seed int64) (*Perturber, error) {
	return uncertain.NewConstantPerturber(family, sigma, n, seed)
}

// NewMixedPerturber perturbs with the mixed-sigma (and optionally
// mixed-family) error of Figures 8-10 and 15-17.
func NewMixedPerturber(spec MixedSigmaSpec, n int, seed int64) (*Perturber, error) {
	return uncertain.NewMixedPerturber(spec, n, seed)
}

// NewAR1Perturber perturbs with AR(1)-correlated errors (coefficient rho),
// probing what happens when the independence assumption every technique
// shares is violated.
func NewAR1Perturber(family ErrorFamily, sigma, rho float64, n int, seed int64) (*Perturber, error) {
	return uncertain.NewAR1Perturber(family, sigma, rho, n, seed)
}

// NewEmpiricalDist fits a Gaussian-kernel density estimate to samples
// (bandwidth 0 = Silverman's rule).
func NewEmpiricalDist(samples []float64, bandwidth float64) (*stats.Empirical, error) {
	return stats.NewEmpirical(samples, bandwidth)
}

// ---- Techniques ----

// DUSTOptions configures a DUST evaluator.
type DUSTOptions = dust.Options

// DUST is the lookup-table Bayesian dissimilarity evaluator.
type DUST = dust.Dust

// NewDUST returns a DUST evaluator.
func NewDUST(opts DUSTOptions) *DUST { return dust.New(opts) }

// PROUDDistance returns PROUD's normal approximation of the squared
// distance between two observation vectors.
func PROUDDistance(qObs, cObs []float64, qSigma, cSigma float64) (proud.DistanceDist, error) {
	return proud.Distance(qObs, cObs, qSigma, cSigma)
}

// MUNICHProbability returns Pr(distance <= eps) under the MUNICH
// repeated-observation semantics.
func MUNICHProbability(x, y SampleSeries, eps float64, opts munich.Options) (float64, error) {
	return munich.Probability(x, y, eps, opts)
}

// MUNICHOptions configures MUNICH probability estimation.
type MUNICHOptions = munich.Options

// ---- Evaluation framework ----

// Workload bundles exact data, perturbed views and ground truth.
type Workload = core.Workload

// WorkloadConfig parameterises workload construction.
type WorkloadConfig = core.WorkloadConfig

// Matcher is a similarity technique on the common matching task.
type Matcher = core.Matcher

// Metrics holds precision / recall / F1 for one query.
type Metrics = query.Metrics

// NewWorkload builds a workload from an exact dataset and a perturber.
func NewWorkload(ds Dataset, p *Perturber, cfg WorkloadConfig) (*Workload, error) {
	return core.NewWorkload(ds, p, cfg)
}

// NewEuclideanMatcher returns the Euclidean baseline.
func NewEuclideanMatcher() Matcher { return core.NewEuclideanMatcher() }

// NewDUSTMatcher returns the DUST technique.
func NewDUSTMatcher() Matcher { return core.NewDUSTMatcher() }

// NewPROUDMatcher returns the PROUD technique with probability threshold
// tau.
func NewPROUDMatcher(tau float64) Matcher { return core.NewPROUDMatcher(tau) }

// NewMUNICHMatcher returns the MUNICH technique with probability threshold
// tau (requires a workload built with SamplesPerTS > 0).
func NewMUNICHMatcher(tau float64) Matcher { return core.NewMUNICHMatcher(tau) }

// NewUMAMatcher returns the UMA measure with window half-width w.
func NewUMAMatcher(w int) Matcher { return core.NewUMAMatcher(w) }

// NewUEMAMatcher returns the UEMA measure with window half-width w and
// decay lambda.
func NewUEMAMatcher(w int, lambda float64) Matcher { return core.NewUEMAMatcher(w, lambda) }

// NewDTWMatcher returns the DTW baseline (DTW over perturbed observations).
func NewDTWMatcher() Matcher { return core.NewDTWMatcher() }

// NewDUSTDTWMatcher returns the DUST-under-DTW combination of Section 3.2.
func NewDUSTDTWMatcher() Matcher { return core.NewDUSTDTWMatcher() }

// NewMUNICHDTWMatcher returns MUNICH with the DTW inner distance (Monte
// Carlo estimation; requires a workload with SamplesPerTS > 0).
func NewMUNICHDTWMatcher(tau float64) Matcher { return core.NewMUNICHDTWMatcher(tau) }

// NewDUSTEmpiricalMatcher returns DUST with its error model *estimated*
// from repeated observations (requires SamplesPerTS > 1) instead of
// supplied a priori.
func NewDUSTEmpiricalMatcher() Matcher { return core.NewDUSTEmpiricalMatcher() }

// Evaluate runs a matcher over the workload's queries (nil = all) and
// returns per-query metrics.
func Evaluate(w *Workload, m Matcher, queries []int) ([]Metrics, error) {
	return core.Evaluate(w, m, queries)
}

// EvaluateParallel is Evaluate with per-query work fanned out across the
// given number of workers (0 = GOMAXPROCS); results are identical.
func EvaluateParallel(w *Workload, m Matcher, queries []int, workers int) ([]Metrics, error) {
	return core.EvaluateParallel(w, m, queries, workers)
}

// ---- Corpus (mutable data layer) ----

// Corpus is the mutable data layer: a long-lived collection of uncertain
// series supporting Insert/Delete while queries run. Per-series index
// artifacts (LB_Keogh envelopes, UMA/UEMA filtered vectors, PROUD suffix
// energies, MUNICH segment envelopes, shared DUST phi tables) are
// maintained incrementally on insert, and the corpus publishes immutable
// snapshots (copy-on-write, epoch-versioned) so concurrent readers are
// never blocked by writers.
type Corpus = corpus.Corpus

// CorpusConfig fixes the artifact geometry of a corpus (series length,
// envelope band, filter window, segment count, error defaults).
type CorpusConfig = corpus.Config

// CorpusSeries is the unit of ingestion: observations plus optional error
// model and repeated-observation samples.
type CorpusSeries = corpus.Series

// CorpusSnapshot is one immutable, epoch-versioned version of a corpus;
// everything reachable from it is frozen at publication.
type CorpusSnapshot = corpus.Snapshot

// CorpusEntry is one resident series with its derived artifacts.
type CorpusEntry = corpus.Entry

// NewCorpus returns an empty corpus with the given artifact geometry.
func NewCorpus(cfg CorpusConfig) *Corpus { return corpus.New(cfg) }

// ---- Durable corpus ----

// Store is the durability engine behind a corpus: an append-only,
// CRC-checksummed write-ahead log of mutations, periodic checkpoint
// snapshots, and background WAL compaction. Every mutation of the
// corpus returned by Store.Corpus is logged with write-ahead ordering —
// the log accepts the record before the mutation becomes visible to
// readers, so an acknowledged mutation is never silently lost (under
// SyncAlways not even by an OS crash). Store.Checkpoint serializes the
// full corpus state and deletes the log segments it covers;
// Store.Status feeds health endpoints; Store.Close flushes and stops.
type Store = store.Store

// StoreOptions configures OpenCorpus: fsync policy (SyncAlways /
// SyncInterval), WAL segment size, automatic checkpoint threshold, and
// read-only recovery.
type StoreOptions = store.Options

// StoreStatus is a point-in-time report of a store's health: current
// epoch, WAL bytes a recovery would replay, last checkpoint epoch.
type StoreStatus = store.Status

// StoreSyncPolicy selects when WAL appends are forced to disk.
type StoreSyncPolicy = store.SyncPolicy

// Store sync policies: SyncAlways fsyncs before acknowledging each
// mutation (durability), SyncInterval batches fsyncs on a timer
// (throughput; a process crash still loses nothing, an OS crash can lose
// up to one interval).
const (
	SyncAlways   = store.SyncAlways
	SyncInterval = store.SyncInterval
)

// Durability sentinels: mutations against a closed store fail with
// ErrStoreClosed, mutations against a read-only recovery with
// ErrStoreReadOnly (both match via errors.Is).
var (
	ErrStoreClosed   = store.ErrClosed
	ErrStoreReadOnly = store.ErrReadOnly
)

// OpenCorpus opens (or creates) a durable corpus in dir and recovers its
// exact last acknowledged state: the newest valid checkpoint is loaded,
// the write-ahead log past its epoch is replayed through the corpus'
// own mutation path (same stable IDs, same epochs, bit-identical query
// results), and a torn tail record left by a crash is truncated. cfg is
// consulted only for a brand-new store; afterwards the persisted
// configuration wins.
//
//	st, err := uncertts.OpenCorpus("/var/lib/uncertserve", uncertts.CorpusConfig{ReportedSigma: 0.6}, uncertts.StoreOptions{Sync: uncertts.SyncAlways})
//	if err != nil { ... }
//	defer st.Close()
//	c := st.Corpus()                  // durable: every Insert/Delete is logged before it is visible
//	id, err := c.Insert(uncertts.CorpusSeries{Values: obs})
//	_ = st.Checkpoint()               // bound recovery time, compact the WAL
//	_, _ = id, err
//
// cmd/uncertserve serves a durable corpus over HTTP (-data), cmd/uncertgen
// seeds one from a generated workload (-out), and cmd/uncertquery queries
// one directly (-data).
func OpenCorpus(dir string, cfg CorpusConfig, opts StoreOptions) (*Store, error) {
	return store.Open(dir, cfg, opts)
}

// ParseStoreSyncPolicy resolves a case-insensitive fsync policy name
// ("always", "interval").
func ParseStoreSyncPolicy(name string) (StoreSyncPolicy, error) {
	return store.ParseSyncPolicy(name)
}

// ---- Query engine ----

// QueryEngine is the pruned top-k / range similarity engine: it serves the
// MUNICH/PROUD/DUST/UMA-family measures over a workload with early
// abandoning, LB_Keogh envelope pruning (banded DTW) and shared DUST phi
// tables, executing batches on a sharded work-stealing pool. The
// probabilistic measures (MeasurePROUD, MeasureMUNICH) answer threshold
// queries — ProbRange(qi, eps, tau) and the probability-ranked
// ProbTopK(qi, eps, k) — pruned by measure-native bounds: MUNICH walks a
// segment-envelope lower bound, the exact bounding-interval prune and a
// per-timestamp sample-pair bound before any combination counting; PROUD
// stops accumulating as soon as sound prefix bounds force the predicate.
// Answers are exact — identical to the naive full scan — for every worker
// count.
type QueryEngine = engine.Engine

// QueryEngineOptions configures a QueryEngine.
type QueryEngineOptions = engine.Options

// QueryEngineStats counts the engine's work (candidates examined, full
// computations, early abandons, envelope prunes).
type QueryEngineStats = engine.Stats

// QueryMeasure selects the similarity measure a QueryEngine serves.
type QueryMeasure = engine.Measure

// Query engine measures.
const (
	MeasureEuclidean = engine.MeasureEuclidean
	MeasureUMA       = engine.MeasureUMA
	MeasureUEMA      = engine.MeasureUEMA
	MeasureDTW       = engine.MeasureDTW
	MeasureDUST      = engine.MeasureDUST
	MeasurePROUD     = engine.MeasurePROUD
	MeasureMUNICH    = engine.MeasureMUNICH
)

// Neighbor pairs a series ID with its distance from a query.
type Neighbor = query.Neighbor

// ProbMatch pairs a candidate index with its match probability
// Pr(distance <= eps); the result unit of the engine's ProbTopK queries.
type ProbMatch = engine.ProbMatch

// NewQueryEngine builds a pruned query engine over the workload (a thin
// wrapper over NewQueryEngineFromSnapshot on the workload's snapshot).
func NewQueryEngine(w *Workload, opts QueryEngineOptions) (*QueryEngine, error) {
	return engine.New(w, opts)
}

// NewQueryEngineFromSnapshot builds a pruned query engine over a corpus
// snapshot, reusing the snapshot's precomputed per-series artifacts
// whenever the options match the corpus geometry.
func NewQueryEngineFromSnapshot(snap *CorpusSnapshot, opts QueryEngineOptions) (*QueryEngine, error) {
	return engine.NewFromSnapshot(snap, opts)
}

// AdHocQuery is an arbitrary uncertain series — not necessarily resident
// in any corpus — posed as a query: observations, optional error model,
// optional repeated-observation samples (required for MUNICH).
type AdHocQuery = engine.Query

// PreparedQuery is a query bound to an engine with its derived state
// (filtered vector, suffix energies, sample envelope) precomputed, so
// repeated queries amortise their setup. Its Workers field sets a
// per-request worker budget.
type PreparedQuery = engine.PreparedQuery

// ---- Declarative query API ----

// QueryRequest is one declarative query against a QueryEngine: the kind
// (topk, range, probtopk, probrange) and its parameters, the target (a
// resident snapshot position via Index, or an AdHocQuery via AdHoc), a
// per-request worker budget and an Offset/Limit pagination window. Build
// one and hand it to QueryEngine.Run:
//
//	qi := 3
//	res, err := e.Run(ctx, uncertts.QueryRequest{
//		Measure: uncertts.MeasureDTW,
//		Kind:    uncertts.QueryTopK,
//		Index:   &qi,
//		K:       5,
//	})
//
// Run validates the request up front with field-specific errors (wrapping
// the Err* sentinels below) and honours ctx throughout: cancellation or an
// expired deadline stops the scan promptly — the executor polls the
// context at every work-item boundary and the long kernels (DTW rows,
// MUNICH refines, PROUD prefix accumulation) poll it mid-computation.
// Results are bit-identical to the legacy per-shape methods (TopK, Range,
// ProbTopK, ProbRange), which remain as thin wrappers over Run.
type QueryRequest = engine.Request

// QueryResult is the answer to one QueryRequest: exactly one of Neighbors
// (topk), IDs (range/probrange) or Matches (probtopk) is populated, plus
// Total (the answer size before the Offset/Limit window).
type QueryResult = engine.Result

// QueryKind is the query family of a QueryRequest.
type QueryKind = engine.Kind

// Query kinds.
const (
	QueryTopK      = engine.KindTopK
	QueryRange     = engine.KindRange
	QueryProbTopK  = engine.KindProbTopK
	QueryProbRange = engine.KindProbRange
)

// QueryStreamItem is one incremental result delivered by
// QueryEngine.RunStream: candidate position plus distance (topk/range) or
// probability (probtopk).
type QueryStreamItem = engine.Item

// ParseQueryKind resolves a case-insensitive kind name ("topk", "range",
// "probtopk", "probrange").
func ParseQueryKind(name string) (QueryKind, error) { return engine.ParseKind(name) }

// ParseQueryMeasure resolves a case-insensitive measure name ("euclidean",
// "uma", "uema", "dtw", "dust", "proud", "munich").
func ParseQueryMeasure(name string) (QueryMeasure, error) { return engine.ParseMeasure(name) }

// Typed sentinel errors of the query surface. Every validation or
// cancellation failure out of QueryEngine.Run (and the HTTP server built
// on it) wraps exactly one of these, so callers classify with errors.Is:
//
//	res, err := e.Run(ctx, req)
//	switch {
//	case errors.Is(err, uncertts.ErrQueryCancelled): // ctx cancelled or deadline hit
//	case errors.Is(err, uncertts.ErrBadRequest):     // invalid field, message names it
//	}
var (
	// ErrUnknownMeasure marks a measure outside the seven the engine
	// serves.
	ErrUnknownMeasure = qerr.ErrUnknownMeasure
	// ErrBadRequest marks a structurally invalid request (missing target,
	// k < 1, tau outside the measure's domain, ...).
	ErrBadRequest = qerr.ErrBadRequest
	// ErrLengthMismatch marks an ad-hoc query whose geometry does not
	// match the corpus.
	ErrLengthMismatch = qerr.ErrLengthMismatch
	// ErrQueryCancelled marks a query stopped by its context; errors
	// carrying it also match context.Canceled / context.DeadlineExceeded
	// under errors.Is.
	ErrQueryCancelled = qerr.ErrCancelled
)

// ---- HTTP query server ----

// QueryServer serves similarity queries over a corpus via HTTP/JSON:
// POST /query (topk, range, probtopk, probrange across all measures, by
// resident series ID or ad-hoc series), POST /query/stream (the same
// queries with incremental NDJSON results), POST /series (ingest/delete)
// and GET /stats. Every query executes under the HTTP request's context —
// a client hang-up cancels the query and drains the executor — with an
// optional per-request timeout_ms. Concurrent requests execute on the
// engine's work-stealing executor with per-request worker budgets;
// in-flight queries keep the corpus snapshot they started on.
type QueryServer = server.Server

// QueryServerOptions configures a QueryServer (per-request worker budgets,
// default query timeout, DTW band, MUNICH estimator).
type QueryServerOptions = server.Options

// NewQueryServer returns a query server over the corpus; mount Handler()
// on any http server.
func NewQueryServer(c *Corpus, opts QueryServerOptions) *QueryServer {
	return server.New(c, opts)
}

// CalibrateTau finds the best probability threshold for a probabilistic
// matcher, reproducing the paper's "optimal tau" procedure.
func CalibrateTau(w *Workload, factory func(tau float64) Matcher, queries []int, grid []float64) (float64, float64, error) {
	return core.CalibrateTau(w, factory, queries, grid)
}

// AverageMetrics averages per-query metrics.
func AverageMetrics(ms []Metrics) Metrics { return query.AverageMetrics(ms) }

// ---- Datasets ----

// DatasetOptions controls synthetic UCR generation.
type DatasetOptions = ucr.Options

// GenerateDataset produces one of the 17 synthetic UCR stand-ins by name.
func GenerateDataset(name string, opts DatasetOptions) (Dataset, error) {
	return ucr.Generate(name, opts)
}

// GenerateAllDatasets produces all 17 stand-ins.
func GenerateAllDatasets(opts DatasetOptions) []Dataset { return ucr.GenerateAll(opts) }

// DatasetNames lists the 17 dataset names in the paper's order.
func DatasetNames() []string { return ucr.Names() }

// ---- Experiments ----

// ExperimentConfig parameterises a figure regeneration.
type ExperimentConfig = experiments.Config

// ExperimentTable is a printable experiment result.
type ExperimentTable = experiments.Table

// ExperimentScale selects workload sizes.
type ExperimentScale = experiments.Scale

// Experiment scales.
const (
	ScaleSmall  = experiments.ScaleSmall
	ScaleMedium = experiments.ScaleMedium
	ScaleFull   = experiments.ScaleFull
)

// RunExperiment executes a named figure runner ("fig4" ... "fig17",
// "chisquare").
func RunExperiment(name string, cfg ExperimentConfig) ([]ExperimentTable, error) {
	r, ok := experiments.Registry()[name]
	if !ok {
		return nil, &UnknownExperimentError{Name: name}
	}
	return r(cfg)
}

// ExperimentNames lists the registered experiments.
func ExperimentNames() []string { return experiments.Names() }

// UnknownExperimentError reports a bad experiment name.
type UnknownExperimentError struct{ Name string }

func (e *UnknownExperimentError) Error() string {
	return "uncertts: unknown experiment " + e.Name
}

// ---- Streaming ----

// StreamMonitor continuously matches registered patterns against uncertain
// data streams using PROUD's probabilistic predicate with sound early
// termination.
type StreamMonitor = stream.Monitor

// StreamPattern is a reference pattern registered with a StreamMonitor.
type StreamPattern = stream.Pattern

// StreamEvent is a per-epoch match/no-match decision.
type StreamEvent = stream.Event

// NewStreamMonitor returns a monitor with the given reported error levels
// for the patterns and the streams.
func NewStreamMonitor(querySigma, streamSigma float64) (*StreamMonitor, error) {
	return stream.NewMonitor(querySigma, streamSigma)
}

// NewSeededRand returns a deterministic random source (reproducible
// examples and workloads).
func NewSeededRand(seed int64) *rand.Rand { return stats.NewRand(seed) }

// ---- Wavelets ----

// HaarTransform returns the orthonormal Haar DWT (power-of-two length).
func HaarTransform(xs []float64) ([]float64, error) { return wavelet.Transform(xs) }

// HaarInverse inverts HaarTransform.
func HaarInverse(coeffs []float64) ([]float64, error) { return wavelet.Inverse(coeffs) }
