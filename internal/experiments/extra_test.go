package experiments

import (
	"strconv"
	"testing"

	"uncertts/internal/ucr"
)

func TestTopKShapes(t *testing.T) {
	tables, err := TopK(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 17 {
		t.Fatalf("want 17 rows, got %d", len(tbl.Rows))
	}
	var euSum, ueSum float64
	for _, row := range tbl.Rows {
		for i := 1; i < len(row); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || v < 0 || v > 1 {
				t.Errorf("%s column %d: bad overlap %q", row[0], i, row[i])
			}
		}
		e, _ := strconv.ParseFloat(row[1], 64)
		u, _ := strconv.ParseFloat(row[4], 64)
		euSum += e
		ueSum += u
	}
	// The paper's ordering must carry over to the top-k task on average.
	if ueSum < euSum {
		t.Errorf("topk: mean UEMA overlap (%v) below Euclidean (%v)", ueSum/17, euSum/17)
	}
}

func TestClassifyShapes(t *testing.T) {
	tables, err := Classify(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 17 {
		t.Fatalf("want 17 rows, got %d", len(tbl.Rows))
	}
	// At the tiny test scale some datasets have ~1 series per class (e.g.
	// 16 series over 50 classes), which makes leave-one-out 1-NN accuracy
	// meaningless; assert quality only where each class has a few members.
	classes := map[string]int{}
	for _, spec := range ucr.Specs() {
		classes[spec.Name] = spec.Classes
	}
	p := testCfg.params()
	for _, row := range tbl.Rows {
		exact, _ := strconv.ParseFloat(row[1], 64)
		perClass := p.maxSeries / classes[row[0]]
		if perClass >= 4 && exact < 0.5 {
			t.Errorf("%s: exact-data 1-NN accuracy %v is implausibly low (%d series/class)",
				row[0], exact, perClass)
		}
		for i := 2; i < len(row); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || v < 0 || v > 1 {
				t.Errorf("%s column %d: bad accuracy %q", row[0], i, row[i])
			}
		}
	}
}
