package experiments

import (
	"fmt"

	"uncertts/internal/core"
	"uncertts/internal/uncertain"
)

// umaWorkloads builds the mixed-sigma normal workloads behind the Section 5
// parameter studies (Figures 13 and 14). The paper perturbs with the
// mixed-sigma normal error for these experiments.
func umaWorkloads(cfg Config) ([]*core.Workload, error) {
	p := cfg.params()
	var out []*core.Workload
	for di, ds := range cfg.datasets() {
		pert, err := mixedPerturber([]uncertain.ErrorFamily{uncertain.Normal}, p.length, cfg.Seed+int64(di)*613)
		if err != nil {
			return nil, err
		}
		w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: p.k})
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// averageF1Over evaluates a matcher factory over every workload and returns
// the overall mean F1.
func averageF1Over(ws []*core.Workload, queries int, factory func() core.Matcher) (float64, error) {
	var sum float64
	var count int
	for _, w := range ws {
		f1, err := meanF1(w, factory(), queryIndexes(w, queries))
		if err != nil {
			return 0, err
		}
		sum += f1
		count++
	}
	return sum / float64(count), nil
}

// Fig13 reproduces Figure 13: F1 as a function of the window half-width w
// for UMA, UEMA with lambda 0.1 and UEMA with lambda 1, averaged over all
// datasets. w = 0 degenerates to plain Euclidean; accuracy peaks around
// w = 2 and decays for wide windows.
func Fig13(cfg Config) ([]Table, error) {
	p := cfg.params()
	ws, err := umaWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	windows := []int{0, 1, 2, 3, 4, 6, 8, 10, 14, 20}
	if cfg.Scale == ScaleSmall {
		windows = []int{0, 1, 2, 4, 8, 14}
	}
	t := Table{
		Name:    "fig13",
		Caption: "F1 vs window half-width w for UMA and UEMA (lambda = 0.1, 1), mixed normal error",
		Header:  []string{"w", "UMA", "UEMA-0.1", "UEMA-1"},
	}
	for _, w := range windows {
		uma, err := averageF1Over(ws, p.queries, func() core.Matcher { return core.NewUMAMatcher(w) })
		if err != nil {
			return nil, err
		}
		uema01, err := averageF1Over(ws, p.queries, func() core.Matcher { return core.NewUEMAMatcher(w, 0.1) })
		if err != nil {
			return nil, err
		}
		uema1, err := averageF1Over(ws, p.queries, func() core.Matcher { return core.NewUEMAMatcher(w, 1) })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", w), fmtF(uma), fmtF(uema01), fmtF(uema1)})
	}
	return []Table{t}, nil
}

// Fig14 reproduces Figure 14: F1 as a function of the decaying factor
// lambda for UEMA with w = 5 and w = 10. Lambda has only a small effect.
func Fig14(cfg Config) ([]Table, error) {
	p := cfg.params()
	ws, err := umaWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	lambdas := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	if cfg.Scale == ScaleSmall {
		lambdas = []float64{0, 0.2, 0.5, 1}
	}
	t := Table{
		Name:    "fig14",
		Caption: "F1 vs decaying factor lambda for UEMA (w = 5, 10), mixed normal error",
		Header:  []string{"lambda", "UEMA-5", "UEMA-10"},
	}
	for _, lambda := range lambdas {
		w5, err := averageF1Over(ws, p.queries, func() core.Matcher { return core.NewUEMAMatcher(5, lambda) })
		if err != nil {
			return nil, err
		}
		w10, err := averageF1Over(ws, p.queries, func() core.Matcher { return core.NewUEMAMatcher(10, lambda) })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.1f", lambda), fmtF(w5), fmtF(w10)})
	}
	return []Table{t}, nil
}
