package experiments

import (
	"fmt"

	"uncertts/internal/core"
	"uncertts/internal/uncertain"
)

// movingAverageFigure is the shared engine of Figures 15-17: per-dataset F1
// of Euclidean, DUST, UMA and UEMA under mixed-sigma error of the given
// family. The paper's settings: w = 2 (window length 5) and lambda = 1.
func movingAverageFigure(cfg Config, name string, family uncertain.ErrorFamily) ([]Table, error) {
	p := cfg.params()
	const (
		w      = 2
		lambda = 1.0
	)
	t := Table{
		Name: name,
		Caption: fmt.Sprintf(
			"F1 per dataset, mixed %s error (20%% sigma 1.0, 80%% sigma 0.4); UMA/UEMA with w=2, lambda=1", family),
		Header: []string{"dataset", "Euclidean", "DUST", "UMA", "UEMA"},
	}
	for di, ds := range cfg.datasets() {
		pert, err := mixedPerturber([]uncertain.ErrorFamily{family}, p.length, cfg.Seed+int64(di)*389)
		if err != nil {
			return nil, err
		}
		wl, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: p.k})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s dataset %s: %w", name, ds.Name, err)
		}
		queries := queryIndexes(wl, p.queries)
		eF1, err := meanF1(wl, core.NewEuclideanMatcher(), queries)
		if err != nil {
			return nil, err
		}
		dF1, err := meanF1(wl, core.NewDUSTMatcher(), queries)
		if err != nil {
			return nil, err
		}
		uF1, err := meanF1(wl, core.NewUMAMatcher(w), queries)
		if err != nil {
			return nil, err
		}
		ueF1, err := meanF1(wl, core.NewUEMAMatcher(w, lambda), queries)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ds.Name, fmtF(eF1), fmtF(dF1), fmtF(uF1), fmtF(ueF1)})
	}
	return []Table{t}, nil
}

// Fig15 reproduces Figure 15: per-dataset F1 under mixed uniform error.
// UMA and UEMA consistently beat DUST and Euclidean.
func Fig15(cfg Config) ([]Table, error) {
	return movingAverageFigure(cfg, "fig15", uncertain.Uniform)
}

// Fig16 reproduces Figure 16: per-dataset F1 under mixed normal error.
func Fig16(cfg Config) ([]Table, error) {
	return movingAverageFigure(cfg, "fig16", uncertain.Normal)
}

// Fig17 reproduces Figure 17: per-dataset F1 under mixed exponential error,
// the hardest case for Euclidean.
func Fig17(cfg Config) ([]Table, error) {
	return movingAverageFigure(cfg, "fig17", uncertain.Exponential)
}
