package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// testCfg is a deliberately tiny configuration so the full suite stays fast;
// the per-figure shape assertions hold even at this scale.
var testCfg = Config{Scale: ScaleSmall, Seed: 42}

func f(t *testing.T, tbl Table, col string, keys ...string) float64 {
	t.Helper()
	s, ok := tbl.Lookup(col, keys...)
	if !ok {
		t.Fatalf("table %s: no value for %s at %v", tbl.Name, col, keys)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("table %s: %s at %v is not numeric: %q", tbl.Name, col, keys, s)
	}
	return v
}

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
	}{{"small", ScaleSmall}, {"MEDIUM", ScaleMedium}, {"full", ScaleFull}} {
		got, err := ParseScale(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale should error")
	}
	if ScaleSmall.String() != "small" || ScaleFull.String() != "full" {
		t.Error("Scale.String broken")
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"chisquare", "classify", "correlated", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "topk"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(names), len(want), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestTableRenderAndLookup(t *testing.T) {
	tbl := Table{
		Name:    "demo",
		Caption: "demo table",
		Header:  []string{"a", "b"},
		Rows:    [][]string{{"x", "1"}, {"y", "2"}},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo table") || !strings.Contains(out, "x") {
		t.Errorf("render output missing content:\n%s", out)
	}
	if v, ok := tbl.Lookup("b", "y"); !ok || v != "2" {
		t.Errorf("Lookup = %q, %v", v, ok)
	}
	if _, ok := tbl.Lookup("zz", "y"); ok {
		t.Error("unknown column should miss")
	}
	if _, ok := tbl.Lookup("b", "zzz"); ok {
		t.Error("unknown key should miss")
	}
}

func TestChiSquareRejectsEverywhere(t *testing.T) {
	tables, err := ChiSquare(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 17 {
		t.Fatalf("want 17 rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Errorf("%s: uniformity not rejected", row[0])
		}
	}
}

func TestFig4Shapes(t *testing.T) {
	tables, err := Fig4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("want 3 family tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		// At the smallest sigma every technique should be decent...
		for _, tech := range []string{"MUNICH", "PROUD", "DUST", "Euclidean"} {
			lo := f(t, tbl, tech, "0.2")
			if lo < 0.35 {
				t.Errorf("%s: %s F1 at sigma=0.2 = %v, too low", tbl.Name, tech, lo)
			}
		}
		// ...and high noise must not beat low noise for MUNICH (the
		// collapse the paper highlights).
		mLo := f(t, tbl, "MUNICH", "0.2")
		mHi := f(t, tbl, "MUNICH", "2.0")
		if mHi > mLo {
			t.Errorf("%s: MUNICH F1 grew with noise: %v -> %v", tbl.Name, mLo, mHi)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	tables, err := Fig5(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("want 3 tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		// Accuracy at sigma=0.2 must beat accuracy at sigma=2.0 for every
		// technique (noise hurts).
		for _, tech := range []string{"PROUD", "DUST", "Euclidean"} {
			lo := f(t, tbl, tech, "0.2")
			hi := f(t, tbl, tech, "2.0")
			if hi >= lo {
				t.Errorf("%s: %s F1 did not degrade: %v -> %v", tbl.Name, tech, lo, hi)
			}
		}
		// "Virtually no difference among the techniques": DUST and
		// Euclidean stay close at every sigma (PROUD is grid-calibrated so
		// it may trail at the smallest scale).
		for _, row := range tbl.Rows {
			sigma := row[0]
			d := f(t, tbl, "DUST", sigma)
			e := f(t, tbl, "Euclidean", sigma)
			if diff := d - e; diff > 0.35 || diff < -0.35 {
				t.Errorf("%s sigma=%s: DUST %v vs Euclidean %v too far apart", tbl.Name, sigma, d, e)
			}
		}
	}
}

func TestFig6Fig7Shapes(t *testing.T) {
	t6, err := Fig6(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	t7, err := Fig7(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][]Table{t6, t7} {
		if len(pair) != 2 {
			t.Fatalf("want precision+recall tables, got %d", len(pair))
		}
		prec := pair[0]
		// Precision decays with sigma (the paper's key observation).
		for _, family := range []string{"uniform", "normal", "exponential"} {
			lo := f(t, prec, family, "0.2")
			hi := f(t, prec, family, "2.0")
			if hi >= lo {
				t.Errorf("%s %s: precision did not decay: %v -> %v", prec.Name, family, lo, hi)
			}
		}
	}
}

func TestFig8Fig9Fig10Shapes(t *testing.T) {
	for _, run := range []struct {
		name string
		fn   Runner
	}{{"fig8", Fig8}, {"fig9", Fig9}, {"fig10", Fig10}} {
		tables, err := run.fn(testCfg)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		tbl := tables[0]
		if len(tbl.Rows) != 17 {
			t.Fatalf("%s: want 17 dataset rows, got %d", run.name, len(tbl.Rows))
		}
		for _, row := range tbl.Rows {
			for i := 1; i < len(row); i++ {
				v, err := strconv.ParseFloat(row[i], 64)
				if err != nil || v < 0 || v > 1 {
					t.Errorf("%s %s: column %d out of range: %q", run.name, row[0], i, row[i])
				}
			}
		}
	}
}

func TestFig11Fig12Shapes(t *testing.T) {
	t11, err := Fig11(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t11[0].Rows {
		eucl, _ := strconv.ParseFloat(row[3], 64)
		dust, _ := strconv.ParseFloat(row[2], 64)
		if eucl > dust {
			t.Errorf("fig11 sigma=%s: Euclidean (%v us) slower than DUST (%v us)", row[0], eucl, dust)
		}
	}

	t12, err := Fig12(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := t12[0].Rows
	first, _ := strconv.ParseFloat(rows[0][2], 64)          // DUST at length 50
	last, _ := strconv.ParseFloat(rows[len(rows)-1][2], 64) // DUST at length 1000
	if last <= first {
		t.Errorf("fig12: DUST time should grow with length: %v -> %v", first, last)
	}
}

func TestFig13Fig14Shapes(t *testing.T) {
	t13, err := Fig13(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := t13[0]
	// w=0 is plain Euclidean; a small positive w must improve accuracy.
	base := f(t, tbl, "UMA", "0")
	best := base
	for _, row := range tbl.Rows {
		if v := f(t, tbl, "UMA", row[0]); v > best {
			best = v
		}
	}
	if best <= base {
		t.Errorf("fig13: no window size improves over w=0 (base %v)", base)
	}

	t14, err := Fig14(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range t14[0].Rows {
		for i := 1; i < len(row); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || v < 0 || v > 1 {
				t.Errorf("fig14 lambda=%s: bad value %q", row[0], row[i])
			}
		}
	}
}

func TestFig15UMABeatsBaselines(t *testing.T) {
	tables, err := Fig16(testCfg) // normal-error variant, the paper's Fig 16
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// Averaged over all datasets, UEMA must beat Euclidean (the paper's
	// headline).
	var euSum, ueSum float64
	for _, row := range tbl.Rows {
		e, _ := strconv.ParseFloat(row[1], 64)
		u, _ := strconv.ParseFloat(row[4], 64)
		euSum += e
		ueSum += u
	}
	if ueSum <= euSum {
		t.Errorf("fig16: mean UEMA (%v) did not beat mean Euclidean (%v)", ueSum/17, euSum/17)
	}
}
