package experiments

import (
	"fmt"

	"uncertts/internal/stats"
)

// ChiSquare reproduces the Section 4.1.1 check: "According to the
// Chi-square test, the hypothesis that the datasets follow the uniform
// distribution was rejected (for all datasets) with confidence level
// alpha = 0.01."
func ChiSquare(cfg Config) ([]Table, error) {
	const alpha = 0.01
	t := Table{
		Name:    "chisquare",
		Caption: "chi-square uniformity test of dataset values (Section 4.1.1), alpha=0.01",
		Header:  []string{"dataset", "chi2", "df", "p-value", "uniform-rejected"},
	}
	for _, ds := range cfg.datasets() {
		res, err := stats.ChiSquareUniformTest(ds.AllValues(), 20)
		if err != nil {
			return nil, fmt.Errorf("experiments: chi-square on %s: %w", ds.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			fmt.Sprintf("%.1f", res.Statistic),
			fmt.Sprintf("%d", res.DF),
			fmt.Sprintf("%.3g", res.PValue),
			fmt.Sprintf("%v", res.Reject(alpha)),
		})
	}
	return []Table{t}, nil
}
