package experiments

import (
	"fmt"
	"sync"

	"uncertts/internal/core"
	"uncertts/internal/query"
	"uncertts/internal/uncertain"
)

// sweepPoint aggregates one (family, sigma) cell of the Figures 5-7 sweep:
// per-query metrics pooled over all datasets for each technique.
type sweepPoint struct {
	proud     []query.Metrics
	dust      []query.Metrics
	euclidean []query.Metrics
}

// sweepResult is the full PROUD/DUST/Euclidean sweep over all datasets,
// error families and error standard deviations.
type sweepResult struct {
	families []uncertain.ErrorFamily
	sigmas   []float64
	points   map[uncertain.ErrorFamily]map[string]*sweepPoint // keyed by fmtS(sigma)
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[Config]*sweepResult{}
)

// runSweep executes (or returns the memoised) sweep behind Figures 5, 6 and
// 7: every dataset, every family, every sigma, techniques PROUD (calibrated
// tau), DUST, and Euclidean.
func runSweep(cfg Config) (*sweepResult, error) {
	sweepMu.Lock()
	if r, ok := sweepCache[cfg]; ok {
		sweepMu.Unlock()
		return r, nil
	}
	sweepMu.Unlock()

	p := cfg.params()
	res := &sweepResult{
		families: uncertain.AllErrorFamilies(),
		sigmas:   p.sigmas,
		points:   map[uncertain.ErrorFamily]map[string]*sweepPoint{},
	}
	datasets := cfg.datasets()
	for _, family := range res.families {
		res.points[family] = map[string]*sweepPoint{}
		for _, sigma := range p.sigmas {
			pt := &sweepPoint{}
			res.points[family][fmtS(sigma)] = pt
			for di, ds := range datasets {
				pert, err := uncertain.NewConstantPerturber(family, sigma, p.length, cfg.Seed+int64(di)*131+int64(sigma*1000))
				if err != nil {
					return nil, err
				}
				w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: p.k})
				if err != nil {
					return nil, fmt.Errorf("experiments: sweep %s sigma=%v dataset=%s: %w", family, sigma, ds.Name, err)
				}
				queries := queryIndexes(w, p.queries)
				calQs := queries
				if len(calQs) > p.calQs {
					calQs = calQs[:p.calQs]
				}
				tau, _, err := core.CalibrateTau(w, func(tau float64) core.Matcher {
					return core.NewPROUDMatcher(tau)
				}, calQs, nil)
				if err != nil {
					return nil, err
				}
				proudMs, err := core.Evaluate(w, core.NewPROUDMatcher(tau), queries)
				if err != nil {
					return nil, err
				}
				dustMs, err := core.Evaluate(w, core.NewDUSTMatcher(), queries)
				if err != nil {
					return nil, err
				}
				euclMs, err := core.Evaluate(w, core.NewEuclideanMatcher(), queries)
				if err != nil {
					return nil, err
				}
				pt.proud = append(pt.proud, proudMs...)
				pt.dust = append(pt.dust, dustMs...)
				pt.euclidean = append(pt.euclidean, euclMs...)
			}
		}
	}

	sweepMu.Lock()
	sweepCache[cfg] = res
	sweepMu.Unlock()
	return res, nil
}

// Fig5 reproduces Figure 5: F1 of PROUD, DUST and Euclidean averaged over
// all datasets as the error standard deviation grows, one table per error
// family. The paper's finding: "there is virtually no difference among the
// different techniques". 95% confidence-interval half-widths are attached
// to each mean, mirroring the paper's error bars.
func Fig5(cfg Config) ([]Table, error) {
	res, err := runSweep(cfg)
	if err != nil {
		return nil, err
	}
	var tables []Table
	for _, family := range res.families {
		t := Table{
			Name:    "fig5-" + family.String(),
			Caption: fmt.Sprintf("F1 over all datasets, %s error (paper Fig 5)", family),
			Header:  []string{"sigma", "PROUD", "PROUD-ci", "DUST", "DUST-ci", "Euclidean", "Euclidean-ci"},
		}
		for _, sigma := range res.sigmas {
			pt := res.points[family][fmtS(sigma)]
			t.Rows = append(t.Rows, []string{
				fmtS(sigma),
				fmtF(query.AverageMetrics(pt.proud).F1), fmtF(ciHalf(pt.proud)),
				fmtF(query.AverageMetrics(pt.dust).F1), fmtF(ciHalf(pt.dust)),
				fmtF(query.AverageMetrics(pt.euclidean).F1), fmtF(ciHalf(pt.euclidean)),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig6 reproduces Figure 6: PROUD precision and recall as functions of the
// error standard deviation, one curve per error family. Recall stays in a
// high band while precision decays sharply.
func Fig6(cfg Config) ([]Table, error) {
	return precisionRecallTables(cfg, "fig6", "PROUD", func(pt *sweepPoint) []query.Metrics { return pt.proud })
}

// Fig7 reproduces Figure 7: DUST precision and recall, same axes as
// Figure 6; DUST trades slightly better precision for lower recall.
func Fig7(cfg Config) ([]Table, error) {
	return precisionRecallTables(cfg, "fig7", "DUST", func(pt *sweepPoint) []query.Metrics { return pt.dust })
}

func precisionRecallTables(cfg Config, name, technique string, pick func(*sweepPoint) []query.Metrics) ([]Table, error) {
	res, err := runSweep(cfg)
	if err != nil {
		return nil, err
	}
	prec := Table{
		Name:    name + "-precision",
		Caption: fmt.Sprintf("%s precision vs error stddev per error family", technique),
		Header:  []string{"sigma", "uniform", "normal", "exponential"},
	}
	rec := Table{
		Name:    name + "-recall",
		Caption: fmt.Sprintf("%s recall vs error stddev per error family", technique),
		Header:  []string{"sigma", "uniform", "normal", "exponential"},
	}
	for _, sigma := range res.sigmas {
		prow := []string{fmtS(sigma)}
		rrow := []string{fmtS(sigma)}
		for _, family := range []uncertain.ErrorFamily{uncertain.Uniform, uncertain.Normal, uncertain.Exponential} {
			m := query.AverageMetrics(pick(res.points[family][fmtS(sigma)]))
			prow = append(prow, fmtF(m.Precision))
			rrow = append(rrow, fmtF(m.Recall))
		}
		prec.Rows = append(prec.Rows, prow)
		rec.Rows = append(rec.Rows, rrow)
	}
	return []Table{prec, rec}, nil
}
