package experiments

import (
	"fmt"

	"uncertts/internal/core"
	"uncertts/internal/munich"
	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// Fig4 reproduces Figure 4: F1 of MUNICH, PROUD, DUST and Euclidean on the
// Gun Point dataset truncated to 60 series of length 6, with 5 samples per
// timestamp for MUNICH, 5 queries, and the error standard deviation swept
// over [0.2, 2.0] for the three error families. MUNICH's accuracy collapses
// for sigma > 0.6 while the others degrade gracefully.
func Fig4(cfg Config) ([]Table, error) {
	const (
		nSeries      = 60
		length       = 6
		samplesPerTS = 5
		nQueries     = 5
		k            = 10
	)
	full, err := ucr.Generate("GunPoint", ucr.Options{MaxSeries: nSeries, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	ds := full.Truncated(nSeries, length)
	// Re-normalize after truncation so distances stay on the usual scale.
	ds = timeseries.Dataset{Name: ds.Name, Series: ds.Series}.Normalize()

	p := cfg.params()
	var tables []Table
	for _, family := range uncertain.AllErrorFamilies() {
		t := Table{
			Name:    "fig4-" + family.String(),
			Caption: fmt.Sprintf("F1 on truncated Gun Point (60x6, 5 samples/ts), %s error", family),
			Header:  []string{"sigma", "MUNICH", "PROUD", "DUST", "Euclidean"},
		}
		for _, sigma := range p.sigmas {
			pert, err := uncertain.NewConstantPerturber(family, sigma, length, cfg.Seed+int64(sigma*1000))
			if err != nil {
				return nil, err
			}
			w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: k, SamplesPerTS: samplesPerTS})
			if err != nil {
				return nil, err
			}
			queries := queryIndexes(w, nQueries)
			calQs := queries
			if len(calQs) > p.calQs {
				calQs = calQs[:p.calQs]
			}

			// One probability cache per workload: the tau sweep and the
			// final evaluation share the expensive distance counting.
			cache := core.NewMunichProbCache()
			munichTau, _, err := core.CalibrateTau(w, func(tau float64) core.Matcher {
				return &core.MUNICHMatcher{Tau: tau, Opts: munich.Options{}, Cache: cache}
			}, calQs, nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig4 MUNICH tau: %w", err)
			}
			proudTau, _, err := core.CalibrateTau(w, func(tau float64) core.Matcher {
				return core.NewPROUDMatcher(tau)
			}, calQs, nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig4 PROUD tau: %w", err)
			}

			mF1, err := meanF1(w, &core.MUNICHMatcher{Tau: munichTau, Opts: munich.Options{}, Cache: cache}, queries)
			if err != nil {
				return nil, err
			}
			pF1, err := meanF1(w, core.NewPROUDMatcher(proudTau), queries)
			if err != nil {
				return nil, err
			}
			dF1, err := meanF1(w, core.NewDUSTMatcher(), queries)
			if err != nil {
				return nil, err
			}
			eF1, err := meanF1(w, core.NewEuclideanMatcher(), queries)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmtS(sigma), fmtF(mF1), fmtF(pF1), fmtF(dF1), fmtF(eF1)})
		}
		tables = append(tables, t)
	}
	return tables, nil
}
