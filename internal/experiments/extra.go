package experiments

import (
	"fmt"

	"uncertts/internal/core"
	"uncertts/internal/query"
	"uncertts/internal/uncertain"
)

// The two extension experiments go beyond the paper's figures but stay on
// its data and techniques:
//
//   - topk: DUST's original evaluation task — top-k retrieval. For every
//     query, the technique's top-k on the *perturbed* data is compared to
//     the exact top-k (overlap fraction, i.e. recall@k).
//   - classify: 1-nearest-neighbour classification under uncertainty,
//     the canonical UCR task; accuracy per technique.
//
// Both confirm the paper's ordering (UEMA/UMA >= DUST ~ Euclidean) on
// tasks other than range matching.

// distanceTechniques builds the distance-based matchers the extension
// tasks compare.
func distanceTechniques() []core.DistanceMatcher {
	return []core.DistanceMatcher{
		core.NewEuclideanMatcher(),
		core.NewDUSTMatcher(),
		core.NewUMAMatcher(2),
		core.NewUEMAMatcher(2, 1),
	}
}

// TopK evaluates top-k retrieval overlap per technique under mixed normal
// error.
func TopK(cfg Config) ([]Table, error) {
	p := cfg.params()
	k := p.k
	t := Table{
		Name:    "topk",
		Caption: fmt.Sprintf("top-%d retrieval overlap with the exact top-%d, mixed normal error", k, k),
		Header:  []string{"dataset", "Euclidean", "DUST", "UMA", "UEMA"},
	}
	for di, ds := range cfg.datasets() {
		pert, err := mixedPerturber([]uncertain.ErrorFamily{uncertain.Normal}, p.length, cfg.Seed+int64(di)*827)
		if err != nil {
			return nil, err
		}
		w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: k})
		if err != nil {
			return nil, err
		}
		queries := queryIndexes(w, p.queries)
		row := []string{ds.Name}
		for _, m := range distanceTechniques() {
			if err := m.Prepare(w); err != nil {
				return nil, err
			}
			var overlapSum float64
			for _, qi := range queries {
				exact, err := query.NearestNeighbors(w.Exact[qi], w.Exact, k)
				if err != nil {
					return nil, err
				}
				got, err := query.TopK(w.Len(), qi, func(ci int) (float64, error) {
					return m.Distance(qi, ci)
				}, k)
				if err != nil {
					return nil, err
				}
				exactSet := make(map[int]bool, k)
				for _, nb := range exact {
					exactSet[nb.ID] = true
				}
				hits := 0
				for _, nb := range got {
					if exactSet[nb.ID] {
						hits++
					}
				}
				overlapSum += float64(hits) / float64(k)
			}
			row = append(row, fmtF(overlapSum/float64(len(queries))))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Classify evaluates 1-NN classification accuracy per technique under
// mixed normal error. The 1-NN label of every query (over the perturbed
// data, per technique distance) is compared to the query's true label.
func Classify(cfg Config) ([]Table, error) {
	p := cfg.params()
	t := Table{
		Name:    "classify",
		Caption: "1-NN classification accuracy on perturbed data, mixed normal error (exact-data 1-NN as reference)",
		Header:  []string{"dataset", "exact-1NN", "Euclidean", "DUST", "UMA", "UEMA"},
	}
	for di, ds := range cfg.datasets() {
		pert, err := mixedPerturber([]uncertain.ErrorFamily{uncertain.Normal}, p.length, cfg.Seed+int64(di)*271)
		if err != nil {
			return nil, err
		}
		w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: p.k})
		if err != nil {
			return nil, err
		}
		queries := queryIndexes(w, 0) // every series, leave-one-out
		row := []string{ds.Name}

		// Reference: 1-NN on the exact data.
		correct := 0
		for _, qi := range queries {
			nn, err := query.NearestNeighbors(w.Exact[qi], w.Exact, 1)
			if err != nil {
				return nil, err
			}
			if w.Exact[nn[0].ID].Label == w.Exact[qi].Label {
				correct++
			}
		}
		row = append(row, fmtF(float64(correct)/float64(len(queries))))

		for _, m := range distanceTechniques() {
			if err := m.Prepare(w); err != nil {
				return nil, err
			}
			correct := 0
			for _, qi := range queries {
				nn, err := query.TopK(w.Len(), qi, func(ci int) (float64, error) {
					return m.Distance(qi, ci)
				}, 1)
				if err != nil {
					return nil, err
				}
				if len(nn) > 0 && w.Exact[nn[0].ID].Label == w.Exact[qi].Label {
					correct++
				}
			}
			row = append(row, fmtF(float64(correct)/float64(len(queries))))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
