// Package experiments reproduces every figure of the paper's evaluation
// (Figures 4-17) plus the Section 4.1.1 chi-square check. Each experiment
// is a named runner that builds its workloads, executes the techniques
// under the Section 4.1.2 methodology, and returns printable tables whose
// rows mirror the paper's plotted series.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"uncertts/internal/core"
	"uncertts/internal/query"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// Scale selects the experiment size. Absolute numbers differ from the
// paper's full-archive runs, but the comparative shape is preserved at
// every scale.
type Scale int

const (
	// ScaleSmall finishes in seconds; used by tests and quick looks.
	ScaleSmall Scale = iota
	// ScaleMedium is the default for regenerating the figures.
	ScaleMedium
	// ScaleFull uses the largest workloads; minutes per figure.
	ScaleFull
)

// ParseScale converts a string flag value.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want small, medium or full)", s)
	}
}

func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Config parameterises a run.
type Config struct {
	// Scale selects workload sizes.
	Scale Scale
	// Seed drives every random choice; equal configs reproduce bit-equal
	// tables.
	Seed int64
}

// params bundles the concrete numbers behind a scale.
type params struct {
	maxSeries int       // series per dataset
	length    int       // series length
	queries   int       // queries per dataset
	k         int       // ground-truth neighbourhood size
	sigmas    []float64 // error stddev sweep
	calQs     int       // queries used for tau calibration
}

func (c Config) params() params {
	switch c.Scale {
	case ScaleMedium:
		return params{
			maxSeries: 40, length: 96, queries: 10, k: 10,
			sigmas: sweep(0.2, 2.0, 0.2), calQs: 4,
		}
	case ScaleFull:
		return params{
			maxSeries: 80, length: 160, queries: 20, k: 10,
			sigmas: sweep(0.2, 2.0, 0.2), calQs: 6,
		}
	default:
		return params{
			maxSeries: 16, length: 48, queries: 4, k: 5,
			sigmas: []float64{0.2, 0.6, 1.0, 1.4, 2.0}, calQs: 3,
		}
	}
}

func sweep(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// Table is a printable experiment result.
type Table struct {
	// Name identifies the table ("fig5-normal", ...).
	Name string
	// Caption explains what the paper figure shows.
	Caption string
	// Header labels the columns.
	Header []string
	// Rows hold the data, one row per plotted point.
	Rows [][]string
}

// Render writes the table with aligned columns.
func (t Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.Name, t.Caption); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Lookup returns the value of column col in the first row whose leading
// columns equal keys; ok reports whether it was found. Tests use it to
// assert figure shapes.
func (t Table) Lookup(col string, keys ...string) (string, bool) {
	ci := -1
	for i, h := range t.Header {
		if h == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return "", false
	}
	for _, row := range t.Rows {
		match := true
		for i, k := range keys {
			if i >= len(row) || row[i] != k {
				match = false
				break
			}
		}
		if match && ci < len(row) {
			return row[ci], true
		}
	}
	return "", false
}

// Runner executes one experiment.
type Runner func(Config) ([]Table, error)

// Registry maps experiment names (fig4 ... fig17, chisquare) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"chisquare": ChiSquare,
		"fig4":      Fig4,
		"fig5":      Fig5,
		"fig6":      Fig6,
		"fig7":      Fig7,
		"fig8":      Fig8,
		"fig9":      Fig9,
		"fig10":     Fig10,
		"fig11":     Fig11,
		"fig12":     Fig12,
		"fig13":     Fig13,
		"fig14":     Fig14,
		"fig15":     Fig15,
		"fig16":     Fig16,
		"fig17":     Fig17,
		// Extension tasks beyond the paper's figures (DESIGN.md §6).
		"topk":       TopK,
		"classify":   Classify,
		"correlated": Correlated,
	}
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	r := Registry()
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// datasets generates the 17 stand-in datasets at the configured scale.
func (c Config) datasets() []timeseries.Dataset {
	p := c.params()
	return ucr.GenerateAll(ucr.Options{MaxSeries: p.maxSeries, Length: p.length, Seed: c.Seed})
}

// queryIndexes returns the first n query indexes of a workload (the paper
// uses every series as a query; scaled runs cap the count).
func queryIndexes(w *core.Workload, n int) []int {
	if n <= 0 || n > w.Len() {
		n = w.Len()
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// meanF1 evaluates a matcher and returns its mean F1 over the queries.
func meanF1(w *core.Workload, m core.Matcher, queries []int) (float64, error) {
	ms, err := core.Evaluate(w, m, queries)
	if err != nil {
		return 0, err
	}
	return query.AverageMetrics(ms).F1, nil
}

// fmtF returns a fixed-precision decimal for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }

// fmtS formats a sigma value the way the paper's axes label them.
func fmtS(v float64) string { return fmt.Sprintf("%.1f", v) }

// ciHalf returns the 95% CI half-width of the F1 column.
func ciHalf(ms []query.Metrics) float64 {
	return stats.MeanCI(query.F1s(ms), 0.95).HalfWidth()
}

// mixedPerturber builds the paper's mixed-sigma perturber (20% sigma 1.0,
// 80% sigma 0.4) over the given families.
func mixedPerturber(families []uncertain.ErrorFamily, length int, seed int64) (*uncertain.Perturber, error) {
	return uncertain.NewMixedPerturber(uncertain.MixedSigmaSpec{
		Fraction:  0.2,
		SigmaHigh: 1.0,
		SigmaLow:  0.4,
		Families:  families,
	}, length, seed)
}
