package experiments

import (
	"strconv"
	"testing"
)

func TestCorrelatedShapes(t *testing.T) {
	tables, err := Correlated(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 rho rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for i := 1; i < len(row); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil || v < 0 || v > 1 {
				t.Errorf("rho=%s column %d: bad F1 %q", row[0], i, row[i])
			}
		}
	}
	// At rho=0 the UMA advantage over Euclidean exists; at rho=0.9 the
	// advantage must shrink (correlated noise does not average out).
	gap := func(rho string) float64 {
		return f(t, tbl, "UMA", rho) - f(t, tbl, "Euclidean", rho)
	}
	if gap("0.9") > gap("0.0")+0.02 {
		t.Errorf("UMA advantage should not grow under correlated noise: rho=0 gap %v, rho=0.9 gap %v",
			gap("0.0"), gap("0.9"))
	}
}
