package experiments

import (
	"fmt"

	"uncertts/internal/core"
	"uncertts/internal/uncertain"
)

// Correlated is an extension experiment probing the paper's closing
// observation ("a fruitful research direction is to take into account the
// temporal correlations in the time series") from the error side: what
// happens when the *errors themselves* are temporally correlated, breaking
// the independence assumption every technique shares?
//
// The error stddev is fixed and the AR(1) coefficient rho is swept. The
// techniques are told the (correct) marginal distribution but not the
// correlation. Expect the moving-average measures to lose part of their
// advantage as rho grows: averaging neighbours cancels less noise when the
// noise no longer averages out.
func Correlated(cfg Config) ([]Table, error) {
	p := cfg.params()
	const sigma = 0.8
	rhos := []float64{0, 0.3, 0.6, 0.9}
	t := Table{
		Name:    "correlated",
		Caption: fmt.Sprintf("F1 vs AR(1) error correlation rho, normal error sigma=%.1f, averaged over all datasets", sigma),
		Header:  []string{"rho", "Euclidean", "DUST", "UMA", "UEMA"},
	}
	datasets := cfg.datasets()
	for _, rho := range rhos {
		sums := make([]float64, 4)
		for di, ds := range datasets {
			pert, err := uncertain.NewAR1Perturber(uncertain.Normal, sigma, rho, p.length, cfg.Seed+int64(di)*569)
			if err != nil {
				return nil, err
			}
			w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: p.k})
			if err != nil {
				return nil, err
			}
			queries := queryIndexes(w, p.queries)
			for mi, mk := range []func() core.Matcher{
				func() core.Matcher { return core.NewEuclideanMatcher() },
				func() core.Matcher { return core.NewDUSTMatcher() },
				func() core.Matcher { return core.NewUMAMatcher(2) },
				func() core.Matcher { return core.NewUEMAMatcher(2, 1) },
			} {
				f1, err := meanF1(w, mk(), queries)
				if err != nil {
					return nil, err
				}
				sums[mi] += f1
			}
		}
		n := float64(len(datasets))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", rho),
			fmtF(sums[0] / n), fmtF(sums[1] / n), fmtF(sums[2] / n), fmtF(sums[3] / n),
		})
	}
	return []Table{t}, nil
}
