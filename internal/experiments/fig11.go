package experiments

import (
	"fmt"
	"time"

	"uncertts/internal/core"
	"uncertts/internal/timeseries"
	"uncertts/internal/uncertain"
)

// timePerQuery measures the mean wall-clock time of Match over the queries.
func timePerQuery(w *core.Workload, m core.Matcher, queries []int) (time.Duration, error) {
	if err := m.Prepare(w); err != nil {
		return 0, err
	}
	// One warm-up query lets lazy structures (DUST tables) build outside
	// the measured region, as a real deployment would amortise them.
	if _, err := m.Match(queries[0]); err != nil {
		return 0, err
	}
	start := time.Now()
	for _, qi := range queries {
		if _, err := m.Match(qi); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(len(queries)), nil
}

// timingRow runs PROUD, DUST and Euclidean on one workload and reports
// microseconds per query for each.
func timingRow(w *core.Workload, queries []int) (proudUS, dustUS, euclUS float64, err error) {
	p, err := timePerQuery(w, core.NewPROUDMatcher(0.5), queries)
	if err != nil {
		return 0, 0, 0, err
	}
	d, err := timePerQuery(w, core.NewDUSTMatcher(), queries)
	if err != nil {
		return 0, 0, 0, err
	}
	e, err := timePerQuery(w, core.NewEuclideanMatcher(), queries)
	if err != nil {
		return 0, 0, 0, err
	}
	toUS := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return toUS(p), toUS(d), toUS(e), nil
}

// Fig11 reproduces Figure 11: CPU time per query for PROUD, DUST and
// Euclidean while the error standard deviation grows (normal errors,
// averaged over all datasets). Sigma barely affects any of them; Euclidean
// is fastest, DUST costliest.
func Fig11(cfg Config) ([]Table, error) {
	p := cfg.params()
	datasets := cfg.datasets()
	t := Table{
		Name:    "fig11",
		Caption: "time per query (microseconds) vs error stddev, normal error, averaged over all datasets",
		Header:  []string{"sigma", "PROUD", "DUST", "Euclidean"},
	}
	for _, sigma := range p.sigmas {
		var pSum, dSum, eSum float64
		for di, ds := range datasets {
			pert, err := uncertain.NewConstantPerturber(uncertain.Normal, sigma, p.length, cfg.Seed+int64(di)*53)
			if err != nil {
				return nil, err
			}
			w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: p.k})
			if err != nil {
				return nil, err
			}
			queries := queryIndexes(w, p.queries)
			pu, du, eu, err := timingRow(w, queries)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig11 %s sigma=%v: %w", ds.Name, sigma, err)
			}
			pSum += pu
			dSum += du
			eSum += eu
		}
		n := float64(len(datasets))
		t.Rows = append(t.Rows, []string{
			fmtS(sigma),
			fmt.Sprintf("%.1f", pSum/n),
			fmt.Sprintf("%.1f", dSum/n),
			fmt.Sprintf("%.1f", eSum/n),
		})
	}
	return []Table{t}, nil
}

// Fig12 reproduces Figure 12: CPU time per query while the series length
// grows from 50 to 1000 points (series obtained by resampling, exactly as
// the paper does). Time grows linearly with length for every technique.
func Fig12(cfg Config) ([]Table, error) {
	p := cfg.params()
	lengths := []int{50, 100, 200, 400, 600, 800, 1000}
	if cfg.Scale == ScaleSmall {
		lengths = []int{50, 200, 600, 1000}
	}
	datasets := cfg.datasets()
	if len(datasets) > 4 && cfg.Scale != ScaleFull {
		datasets = datasets[:4] // timing shape needs few datasets
	}
	const sigma = 0.6
	t := Table{
		Name:    "fig12",
		Caption: "time per query (microseconds) vs series length (resampled), normal error sigma=0.6",
		Header:  []string{"length", "PROUD", "DUST", "Euclidean"},
	}
	for _, length := range lengths {
		var pSum, dSum, eSum float64
		for di, ds := range datasets {
			resampled, err := ds.Resampled(length)
			if err != nil {
				return nil, err
			}
			resampled = timeseries.Dataset{Name: ds.Name, Series: resampled.Series}.Normalize()
			pert, err := uncertain.NewConstantPerturber(uncertain.Normal, sigma, length, cfg.Seed+int64(di)*29)
			if err != nil {
				return nil, err
			}
			w, err := core.NewWorkload(resampled, pert, core.WorkloadConfig{K: p.k})
			if err != nil {
				return nil, err
			}
			queries := queryIndexes(w, p.queries)
			pu, du, eu, err := timingRow(w, queries)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig12 %s len=%d: %w", ds.Name, length, err)
			}
			pSum += pu
			dSum += du
			eSum += eu
		}
		n := float64(len(datasets))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", length),
			fmt.Sprintf("%.1f", pSum/n),
			fmt.Sprintf("%.1f", dSum/n),
			fmt.Sprintf("%.1f", eSum/n),
		})
	}
	return []Table{t}, nil
}
