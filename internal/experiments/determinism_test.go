package experiments

import (
	"reflect"
	"testing"
)

// TestRunsAreDeterministic is the reproducibility guarantee the paper
// emphasises ("we make sure that the results of our experiments are
// completely reproducible"): the same config must yield bit-identical
// tables across runs, end to end through dataset generation, perturbation,
// calibration and evaluation.
func TestRunsAreDeterministic(t *testing.T) {
	cfg := Config{Scale: ScaleSmall, Seed: 7}
	for _, name := range []string{"chisquare", "fig13", "fig16", "topk"} {
		runner := Registry()[name]
		a, err := runner(cfg)
		if err != nil {
			t.Fatalf("%s first run: %v", name, err)
		}
		b, err := runner(cfg)
		if err != nil {
			t.Fatalf("%s second run: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs with the same config differ", name)
		}
	}
}

// TestSeedChangesResults guards against the opposite failure: a seed that
// is silently ignored would make the "deterministic" test pass trivially.
func TestSeedChangesResults(t *testing.T) {
	a, err := Fig16(Config{Scale: ScaleSmall, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig16(Config{Scale: ScaleSmall, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical tables; the seed is being ignored somewhere")
	}
}
