package experiments

import (
	"fmt"

	"uncertts/internal/core"
	"uncertts/internal/uncertain"
)

// mixedErrorFigure is the shared engine of Figures 8, 9 and 10: per-dataset
// F1 of Euclidean, DUST and PROUD under the mixed-sigma perturbation (20%
// of timestamps with sigma 1.0, 80% with sigma 0.4).
//
//   - Figure 8: normal errors; PROUD is stuck with a constant reported
//     sigma of 0.7 (it cannot model per-timestamp variation) while DUST is
//     told the true per-timestamp mixture.
//   - Figure 9: each timestamp draws its family from {uniform, normal,
//     exponential}; DUST still gets the truth.
//   - Figure 10: normal errors, but DUST too is (wrongly) told sigma = 0.7
//     everywhere, erasing its advantage.
func mixedErrorFigure(cfg Config, name, caption string, families []uncertain.ErrorFamily, misreportDust bool) ([]Table, error) {
	p := cfg.params()
	t := Table{
		Name:    name,
		Caption: caption,
		Header:  []string{"dataset", "Euclidean", "DUST", "PROUD"},
	}
	for di, ds := range cfg.datasets() {
		pert, err := mixedPerturber(families, p.length, cfg.Seed+int64(di)*977)
		if err != nil {
			return nil, err
		}
		// DUST's view: the truth, unless this is the Figure 10 scenario.
		dustCfg := core.WorkloadConfig{K: p.k}
		if misreportDust {
			dustCfg.ReportedErrors = uncertain.MisreportSigma(uncertain.Normal, 0.7, p.length)
		}
		dustW, err := core.NewWorkload(ds, pert, dustCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s dataset %s: %w", name, ds.Name, err)
		}
		// PROUD's view: constant sigma 0.7 — the paper: "in this
		// experiment, PROUD was using a standard deviation setting of 0.7".
		proudW := dustW
		if !misreportDust {
			proudW, err = core.NewWorkload(ds, pert, core.WorkloadConfig{
				K:              p.k,
				ReportedErrors: uncertain.MisreportSigma(uncertain.Normal, 0.7, p.length),
			})
			if err != nil {
				return nil, err
			}
		}

		queries := queryIndexes(dustW, p.queries)
		calQs := queries
		if len(calQs) > p.calQs {
			calQs = calQs[:p.calQs]
		}
		tau, _, err := core.CalibrateTau(proudW, func(tau float64) core.Matcher {
			return core.NewPROUDMatcher(tau)
		}, calQs, nil)
		if err != nil {
			return nil, err
		}

		eF1, err := meanF1(dustW, core.NewEuclideanMatcher(), queries)
		if err != nil {
			return nil, err
		}
		dF1, err := meanF1(dustW, core.NewDUSTMatcher(), queries)
		if err != nil {
			return nil, err
		}
		pF1, err := meanF1(proudW, core.NewPROUDMatcher(tau), queries)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ds.Name, fmtF(eF1), fmtF(dF1), fmtF(pF1)})
	}
	return []Table{t}, nil
}

// Fig8 reproduces Figure 8: mixed-sigma normal error per dataset; DUST,
// knowing the true per-timestamp sigmas, gains a few points over PROUD and
// Euclidean.
func Fig8(cfg Config) ([]Table, error) {
	return mixedErrorFigure(cfg, "fig8",
		"F1 per dataset, mixed normal error (20% sigma 1.0, 80% sigma 0.4); PROUD told constant 0.7",
		[]uncertain.ErrorFamily{uncertain.Normal}, false)
}

// Fig9 reproduces Figure 9: the error family itself is mixed per timestamp
// (uniform, normal and exponential); the techniques converge.
func Fig9(cfg Config) ([]Table, error) {
	return mixedErrorFigure(cfg, "fig9",
		"F1 per dataset, mixed-family error (uniform+normal+exponential), 20% sigma 1.0 / 80% sigma 0.4",
		uncertain.AllErrorFamilies(), false)
}

// Fig10 reproduces Figure 10: as Figure 8 but DUST too is told the wrong
// constant sigma 0.7, so its advantage over PROUD/Euclidean disappears.
func Fig10(cfg Config) ([]Table, error) {
	return mixedErrorFigure(cfg, "fig10",
		"F1 per dataset, mixed normal error with sigma misreported as constant 0.7 to every technique",
		[]uncertain.ErrorFamily{uncertain.Normal}, true)
}
