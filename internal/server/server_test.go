package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"uncertts/internal/corpus"
	"uncertts/internal/munich"
	"uncertts/internal/stats"
	"uncertts/internal/store"
)

// testSeries derives a deterministic series with samples from a seed.
func testSeries(length int, seed int64) SeriesJSON {
	rng := stats.NewRand(seed + 400)
	s := SeriesJSON{Values: make([]float64, length), Samples: make([][]float64, length), Sigma: 0.3}
	for i := range s.Values {
		s.Values[i] = math.Cos(float64(seed)*0.9+float64(i)*0.27) + 0.2*rng.NormFloat64()
		row := make([]float64, 3)
		for j := range row {
			row[j] = s.Values[i] + 0.15*rng.NormFloat64()
		}
		s.Samples[i] = row
	}
	return s
}

func testServer(t testing.TB, series, length int) (*Server, *httptest.Server) {
	t.Helper()
	c := corpus.New(corpus.Config{ReportedSigma: 0.3})
	srv := New(c, Options{MUNICH: munich.Options{Bins: 256}})
	var batch []corpus.Series
	for i := 0; i < series; i++ {
		cs, err := testSeries(length, int64(i)).toCorpus()
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, cs)
	}
	if _, err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t testing.TB, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestQueryEndpointEveryMeasureAndType(t *testing.T) {
	_, ts := testServer(t, 16, 24)
	cases := []QueryRequest{
		{Measure: "euclidean", Type: "topk", K: 5},
		{Measure: "uma", Type: "topk", K: 3},
		{Measure: "uema", Type: "range", Eps: 3},
		{Measure: "dtw", Type: "topk", K: 4},
		{Measure: "dust", Type: "range", Eps: 5},
		{Measure: "proud", Type: "probrange", Eps: 2, Tau: 0.1},
		{Measure: "proud", Type: "probtopk", Eps: 2, K: 4},
		{Measure: "munich", Type: "probrange", Eps: 2, Tau: 0.1},
		{Measure: "munich", Type: "probtopk", Eps: 2, K: 4},
	}
	for _, req := range cases {
		// Once as a resident-series query, once ad-hoc.
		id := 2
		req.ID = &id
		var resp QueryResponse
		if r := postJSON(t, ts.URL+"/query", req, &resp); r.StatusCode != http.StatusOK {
			t.Fatalf("%s/%s by ID: status %d", req.Measure, req.Type, r.StatusCode)
		}
		if resp.Epoch == 0 || resp.Measure == "" {
			t.Errorf("%s/%s: incomplete response %+v", req.Measure, req.Type, resp)
		}
		req.ID = nil
		q := testSeries(24, 77)
		req.Series = &q
		var adhoc QueryResponse
		if r := postJSON(t, ts.URL+"/query", req, &adhoc); r.StatusCode != http.StatusOK {
			t.Fatalf("%s/%s ad-hoc: status %d", req.Measure, req.Type, r.StatusCode)
		}
		req.Series = nil
	}
}

func TestQueryByIDExcludesSelfAndUsesStableIDs(t *testing.T) {
	srv, ts := testServer(t, 10, 16)
	// Delete a series so positions and stable IDs diverge.
	firstID := srv.Corpus().Snapshot().IDAt(0)
	if err := srv.Corpus().Delete(firstID); err != nil {
		t.Fatal(err)
	}
	id := srv.Corpus().Snapshot().IDAt(3) // some resident stable ID
	var resp QueryResponse
	req := QueryRequest{Measure: "euclidean", Type: "topk", K: 20, ID: &id}
	if r := postJSON(t, ts.URL+"/query", req, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	snap := srv.Corpus().Snapshot()
	for _, n := range resp.Neighbors {
		if n.ID == id {
			t.Error("query series appeared in its own answer")
		}
		if _, ok := snap.PosOf(n.ID); !ok {
			t.Errorf("answer ID %d is not a stable resident ID", n.ID)
		}
		if n.ID == firstID {
			t.Error("deleted series appeared in the answer")
		}
	}
	if len(resp.Neighbors) != snap.Len()-1 {
		t.Errorf("topk(k=20) returned %d of %d candidates", len(resp.Neighbors), snap.Len()-1)
	}
}

func TestSeriesEndpointInsertDelete(t *testing.T) {
	srv, ts := testServer(t, 6, 16)
	var resp SeriesResponse
	req := SeriesRequest{Insert: []SeriesJSON{testSeries(16, 100), testSeries(16, 101)}}
	if r := postJSON(t, ts.URL+"/series", req, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", r.StatusCode)
	}
	if len(resp.IDs) != 2 || resp.Series != 8 {
		t.Fatalf("insert response %+v", resp)
	}
	var del SeriesResponse
	if r := postJSON(t, ts.URL+"/series", SeriesRequest{Delete: resp.IDs[:1]}, &del); r.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", r.StatusCode)
	}
	if del.Deleted != 1 || del.Series != 7 {
		t.Fatalf("delete response %+v", del)
	}
	if srv.Corpus().Len() != 7 {
		t.Errorf("corpus length %d, want 7", srv.Corpus().Len())
	}
	// Unknown deletes are 404.
	if r := postJSON(t, ts.URL+"/series", SeriesRequest{Delete: []int{9999}}, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown delete: status %d, want 404", r.StatusCode)
	}
	// A mixed request with an unknown delete is atomic: the insert must
	// not land either.
	before := srv.Corpus().Snapshot()
	mixed := SeriesRequest{Insert: []SeriesJSON{testSeries(16, 300)}, Delete: []int{9999}}
	if r := postJSON(t, ts.URL+"/series", mixed, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("mixed with unknown delete: status %d, want 404", r.StatusCode)
	}
	if after := srv.Corpus().Snapshot(); after.Epoch() != before.Epoch() || after.Len() != before.Len() {
		t.Error("failed mixed mutation changed the corpus")
	}
}

func TestStatsEndpointAccumulatesAcrossRebuilds(t *testing.T) {
	_, ts := testServer(t, 10, 16)
	id := 1
	q := QueryRequest{Measure: "euclidean", Type: "topk", K: 3, ID: &id}
	postJSON(t, ts.URL+"/query", q, &QueryResponse{})

	var st1 StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st1); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st1.Series != 10 || st1.Measures["Euclidean"].Candidates == 0 {
		t.Fatalf("stats after one query: %+v", st1)
	}
	if st1.Measures["Euclidean"].Summary == "" {
		t.Error("summary missing")
	}

	// Mutate (forcing an engine rebuild), query again: counters must not
	// reset.
	postJSON(t, ts.URL+"/series", SeriesRequest{Insert: []SeriesJSON{testSeries(16, 200)}}, &SeriesResponse{})
	postJSON(t, ts.URL+"/query", q, &QueryResponse{})
	var st2 StatsResponse
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st2.Measures["Euclidean"].Candidates <= st1.Measures["Euclidean"].Candidates {
		t.Errorf("stats did not accumulate across the engine rebuild: %d then %d",
			st1.Measures["Euclidean"].Candidates, st2.Measures["Euclidean"].Candidates)
	}
	if st2.Epoch <= st1.Epoch {
		t.Errorf("epoch did not advance: %d then %d", st1.Epoch, st2.Epoch)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := testServer(t, 6, 16)
	id := 0
	for name, req := range map[string]QueryRequest{
		"unknown measure":    {Measure: "cosine", Type: "topk", K: 3, ID: &id},
		"unknown type":       {Measure: "euclidean", Type: "knn", K: 3, ID: &id},
		"no query":           {Measure: "euclidean", Type: "topk", K: 3},
		"both id and series": {Measure: "euclidean", Type: "topk", K: 3, ID: &id, Series: &SeriesJSON{Values: make([]float64, 16)}},
		"prob on distance":   {Measure: "euclidean", Type: "probrange", Eps: 1, Tau: 0.5, ID: &id},
		"bad tau":            {Measure: "munich", Type: "probrange", Eps: 1, Tau: 1.5, ID: &id},
		"bad k":              {Measure: "euclidean", Type: "topk", K: 0, ID: &id},
		"wrong length":       {Measure: "euclidean", Type: "topk", K: 3, Series: &SeriesJSON{Values: make([]float64, 5)}},
	} {
		if r := postJSON(t, ts.URL+"/query", req, nil); r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, r.StatusCode)
		}
	}
	missing := 12345
	if r := postJSON(t, ts.URL+"/query", QueryRequest{Measure: "euclidean", Type: "topk", K: 3, ID: &missing}, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown ID: status %d, want 404", r.StatusCode)
	}
	// Method checks.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
	}
	if r := postJSON(t, ts.URL+"/series", SeriesRequest{}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty mutation: status %d, want 400", r.StatusCode)
	}
}

// TestConcurrentMixedTraffic is the acceptance test for the serving tier:
// at least 64 concurrent requests mixing every query family with
// ingestion and deletion, under -race in CI. Queries run against whatever
// snapshot is current; snapshot isolation keeps every request coherent.
func TestConcurrentMixedTraffic(t *testing.T) {
	srv, ts := testServer(t, 16, 24)
	const requests = 80
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 8 {
			case 0: // ingest
				var resp SeriesResponse
				r := postJSON(t, ts.URL+"/series", SeriesRequest{Insert: []SeriesJSON{testSeries(24, int64(1000+i))}}, &resp)
				if r.StatusCode != http.StatusOK {
					t.Errorf("ingest %d: status %d", i, r.StatusCode)
					return
				}
				// Delete half of what we ingested, concurrently with
				// queries that may be using the snapshot it lived in.
				if i%16 == 0 {
					if r := postJSON(t, ts.URL+"/series", SeriesRequest{Delete: resp.IDs}, nil); r.StatusCode != http.StatusOK {
						t.Errorf("delete %d: status %d", i, r.StatusCode)
					}
				}
			case 1:
				q := testSeries(24, int64(3000+i))
				req := QueryRequest{Measure: "proud", Type: "probrange", Eps: 2, Tau: 0.1, Series: &q, Workers: 2}
				if r := postJSON(t, ts.URL+"/query", req, &QueryResponse{}); r.StatusCode != http.StatusOK {
					t.Errorf("proud %d: status %d", i, r.StatusCode)
				}
			case 2:
				q := testSeries(24, int64(3000+i))
				req := QueryRequest{Measure: "munich", Type: "probtopk", Eps: 2, K: 3, Series: &q}
				if r := postJSON(t, ts.URL+"/query", req, &QueryResponse{}); r.StatusCode != http.StatusOK {
					t.Errorf("munich %d: status %d", i, r.StatusCode)
				}
			case 3:
				q := testSeries(24, int64(3000+i))
				req := QueryRequest{Measure: "dtw", Type: "topk", K: 5, Series: &q, Workers: 4}
				if r := postJSON(t, ts.URL+"/query", req, &QueryResponse{}); r.StatusCode != http.StatusOK {
					t.Errorf("dtw %d: status %d", i, r.StatusCode)
				}
			case 4:
				q := testSeries(24, int64(3000+i))
				req := QueryRequest{Measure: "dust", Type: "range", Eps: 6, Series: &q}
				if r := postJSON(t, ts.URL+"/query", req, &QueryResponse{}); r.StatusCode != http.StatusOK {
					t.Errorf("dust %d: status %d", i, r.StatusCode)
				}
			case 5:
				// Query a resident series by stable ID; it may have been
				// deleted by a concurrent request, so 404 is acceptable.
				id := i % 16
				req := QueryRequest{Measure: "euclidean", Type: "topk", K: 4, ID: &id}
				if r := postJSON(t, ts.URL+"/query", req, &QueryResponse{}); r.StatusCode != http.StatusOK && r.StatusCode != http.StatusNotFound {
					t.Errorf("byid %d: status %d", i, r.StatusCode)
				}
			case 6:
				q := testSeries(24, int64(3000+i))
				req := QueryRequest{Measure: "uema", Type: "topk", K: 4, Series: &q}
				if r := postJSON(t, ts.URL+"/query", req, &QueryResponse{}); r.StatusCode != http.StatusOK {
					t.Errorf("uema %d: status %d", i, r.StatusCode)
				}
			case 7:
				resp, err := http.Get(ts.URL + "/stats")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("stats %d: status %d", i, resp.StatusCode)
				}
			}
		}(i)
	}
	wg.Wait()

	if srv.Corpus().Snapshot().Epoch() == 0 {
		t.Fatal("no mutation was published; the test proved nothing")
	}
	st := srv.Stats()
	total := int64(0)
	for _, ms := range st.Measures {
		total += ms.Candidates
	}
	if total == 0 {
		t.Fatal("no query work was accounted")
	}
	_ = fmt.Sprintf("%+v", st)
}

func TestHealthzWithoutStore(t *testing.T) {
	_, ts := testServer(t, 4, 16)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Durable || h.Store != nil {
		t.Fatalf("healthz = %+v, want ok and not durable", h)
	}
	if h.Series != 4 {
		t.Fatalf("healthz reports %d series, want 4", h.Series)
	}

	// Without a store, /admin/checkpoint must refuse rather than pretend.
	cp, err := http.Post(ts.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cp.Body.Close()
	if cp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /admin/checkpoint without store = %d, want 503", cp.StatusCode)
	}
}

func TestHealthzAndCheckpointWithStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), corpus.Config{ReportedSigma: 0.3}, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := New(st.Corpus(), Options{Store: st})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var ins SeriesResponse
	if resp := postJSON(t, ts.URL+"/series", SeriesRequest{Insert: []SeriesJSON{testSeries(16, 1), testSeries(16, 2)}}, &ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert = %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || !h.Durable || h.Store == nil {
		t.Fatalf("healthz = %+v, want ok and durable", h)
	}
	if h.Store.WALBytesSinceCheckpoint == 0 {
		t.Fatal("healthz reports no WAL bytes after an acknowledged ingest")
	}
	if h.Epoch != ins.Epoch {
		t.Fatalf("healthz epoch %d, ingest answered epoch %d", h.Epoch, ins.Epoch)
	}

	cp, err := http.Post(ts.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cpStatus store.Status
	if err := json.NewDecoder(cp.Body).Decode(&cpStatus); err != nil {
		t.Fatal(err)
	}
	cp.Body.Close()
	if cp.StatusCode != http.StatusOK {
		t.Fatalf("POST /admin/checkpoint = %d", cp.StatusCode)
	}
	if cpStatus.LastCheckpointEpoch != ins.Epoch || cpStatus.WALBytesSinceCheckpoint != 0 {
		t.Fatalf("post-checkpoint status = %+v, want checkpoint at epoch %d and empty WAL", cpStatus, ins.Epoch)
	}

	// After close the server keeps answering queries but healthz degrades.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h2 HealthResponse
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if h2.Status != "degraded" {
		t.Fatalf("healthz after store close = %q, want degraded", h2.Status)
	}
}
