package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"uncertts/internal/engine"
	"uncertts/internal/telemetry"
)

// The shard-side cluster surface. A server doubles as one shard of a
// scatter-gather cluster (see internal/cluster): the coordinator
// broadcasts a query to every shard's /cluster/query, streams candidates
// back over NDJSON, and exchanges the tightening global top-k bound both
// ways mid-flight —
//
//	POST /cluster/query  one QueryRequest plus a bound token; the NDJSON
//	                     response interleaves bound records (the shard's
//	                     own cut improving) with item records, then a
//	                     final done record carrying the shard's epoch and
//	                     wire-stable engine stats;
//	POST /cluster/bound  pushes the coordinator's tighter global bound
//	                     into a running query, keyed by the bound token;
//	GET  /cluster/series fetches a resident series in its wire form, so
//	                     the coordinator can forward an ID-targeted query
//	                     to the shards that do not hold the series;
//	GET  /cluster/info   shard geometry: epoch, series count, length and
//	                     the next unassigned ID (coordinator recovery).
//
// In-process shards skip HTTP entirely: cluster.LocalShard calls RunBound
// with a shared engine.Bound, and propagation is the atomic itself.

// ClusterQueryRequest is the wire form of POST /cluster/query: a plain
// query plus the mid-flight bound plumbing.
type ClusterQueryRequest struct {
	QueryRequest
	// BoundToken keys this execution in the shard's bound registry so the
	// coordinator can push a tighter global bound mid-flight (empty =
	// no push channel; the stream's own bound records still flow).
	BoundToken string `json:"bound_token,omitempty"`
	// BoundSq seeds the top-k cut (squared-distance space, already
	// ulpUp-inflated) before the scan starts.
	BoundSq *float64 `json:"bound_sq,omitempty"`
	// ProbBound seeds the probtopk cut (k-th best probability space).
	ProbBound *float64 `json:"prob_bound,omitempty"`
}

// ClusterBoundJSON is both the wire form of POST /cluster/bound and the
// bound record interleaved into a /cluster/query NDJSON stream.
type ClusterBoundJSON struct {
	// Token keys the running execution (POST /cluster/bound only).
	Token string `json:"token,omitempty"`
	// BoundSq is the tightest proven upper bound on the global k-th best
	// squared distance (topk).
	BoundSq *float64 `json:"bound_sq,omitempty"`
	// ProbBound is the best proven lower bound on the global k-th best
	// match probability (probtopk).
	ProbBound *float64 `json:"prob_bound,omitempty"`
}

// ClusterDoneJSON is the final /cluster/query stream record.
type ClusterDoneJSON struct {
	Done  bool   `json:"done"`
	Epoch uint64 `json:"epoch"`
	// Total is the number of item records streamed before this one.
	Total int `json:"total"`
	// Stats is the shard's cumulative engine accounting for the query's
	// measure, in the wire-stable engine.Stats shape.
	Stats engine.Stats `json:"stats"`
}

// ClusterSeriesJSON is the wire form of GET /cluster/series: a resident
// series rendered back into its ingestion shape, faithful for every
// series that entered through the JSON surface (values + constant sigma +
// samples — the only shapes cluster ingestion produces).
type ClusterSeriesJSON struct {
	ID     int        `json:"id"`
	Series SeriesJSON `json:"series"`
}

// ClusterInfoJSON is the wire form of GET /cluster/info.
type ClusterInfoJSON struct {
	Epoch     uint64 `json:"epoch"`
	Series    int    `json:"series"`
	SeriesLen int    `json:"series_len"`
	NextID    int    `json:"next_id"`
}

// boundRegistry tracks the shared cuts of running cluster queries so
// /cluster/bound pushes can reach them by token.
type boundRegistry struct {
	mu sync.Mutex
	m  map[string]*boundPair
}

type boundPair struct {
	bnd  *engine.Bound
	pbnd *engine.ProbBound
}

func (r *boundRegistry) register(token string, p *boundPair) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]*boundPair)
	}
	r.m[token] = p
}

func (r *boundRegistry) unregister(token string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, token)
}

func (r *boundRegistry) lookup(token string) *boundPair {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[token]
}

// RunBound is Run with an externally shared pruning cut: the top-k kinds
// coordinate through bnd/pbnd (when non-nil) instead of a private bound.
// In-process cluster shards answer through it — every shard's engine
// lowers and reads the same atomic, so propagation needs no transport.
func (s *Server) RunBound(ctx context.Context, req QueryRequest, bnd *engine.Bound, pbnd *engine.ProbBound) (resp *QueryResponse, err error) {
	done := track(req)
	defer func() { done(err) }()
	sp := telemetry.TraceFrom(ctx).Start("parse")
	e, snap, ereq, err := s.plan(req)
	sp.EndErr(err)
	if err != nil {
		return nil, err
	}
	ereq.Bound, ereq.ProbBound = bnd, pbnd
	res, err := e.Run(ctx, ereq)
	if err != nil {
		return nil, err
	}
	return toResponse(snap, ereq.Measure, res), nil
}

// boundPollInterval is how often a /cluster/query stream samples its
// shard-local cut for improvements to report. Cheap (one atomic load) and
// far below any realistic shard scan time, yet coarse enough that bound
// records stay a rounding error next to item payloads.
const boundPollInterval = 2 * time.Millisecond

// handleClusterQuery serves POST /cluster/query: the scatter leg of a
// coordinator's query. The NDJSON response interleaves ClusterBoundJSON
// records (whenever this shard's own cut tightens) with StreamItemJSON
// records, then closes with a ClusterDoneJSON. Failures before the first
// record are plain HTTP errors; mid-stream failures terminate the body
// with an {"error": ...} record.
func (s *Server) handleClusterQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ClusterQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := s.queryContext(r.Context(), req.QueryRequest)
	defer cancel()
	// Adopt the coordinator's trace ID from the request header: the shard's
	// own ring then holds this query's spans under the same ID the
	// coordinator (and the client) quote, so one ID pulls the full
	// cross-shard picture from every /debug/trace it touched.
	tr := s.tracer.StartTrace(r.Header.Get(telemetry.TraceHeader), "cluster_query")
	tr.SetQuery(queryLabels(req.QueryRequest))
	w.Header().Set(telemetry.TraceHeader, tr.ID())
	ctx = telemetry.WithTrace(ctx, tr)
	done := track(req.QueryRequest)
	finish := func(err error) {
		done(err)
		tr.Fail(err)
		s.tracer.Finish(tr)
	}
	sp := telemetry.TraceFrom(ctx).Start("parse")
	e, snap, ereq, err := s.plan(req.QueryRequest)
	sp.EndErr(err)
	if err != nil {
		finish(err)
		http.Error(w, err.Error(), statusFor(err))
		return
	}

	// The shared cut: seeded from the coordinator's current knowledge,
	// registered for mid-flight pushes, sampled for mid-flight reports.
	bnd, pbnd := engine.NewBound(), engine.NewProbBound()
	if req.BoundSq != nil {
		bnd.LowerSquared(*req.BoundSq)
	}
	if req.ProbBound != nil {
		pbnd.Raise(*req.ProbBound)
	}
	ereq.Bound, ereq.ProbBound = bnd, pbnd
	if req.BoundToken != "" {
		s.bounds.register(req.BoundToken, &boundPair{bnd: bnd, pbnd: pbnd})
		defer s.bounds.unregister(req.BoundToken)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var writeMu sync.Mutex
	enc := json.NewEncoder(w)
	write := func(v interface{}) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		if err := enc.Encode(v); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// Report this shard's cut as it tightens, so the coordinator can relay
	// it to the other shards while this scan is still running.
	pollDone := make(chan struct{})
	var pollWG sync.WaitGroup
	if ereq.Kind == engine.KindTopK || ereq.Kind == engine.KindProbTopK {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			t := time.NewTicker(boundPollInterval)
			defer t.Stop()
			lastSq, lastP := math.Inf(1), math.Inf(-1)
			for {
				select {
				case <-pollDone:
					return
				case <-t.C:
				}
				if ereq.Kind == engine.KindTopK {
					if v := bnd.Squared(); v < lastSq {
						lastSq = v
						_ = write(ClusterBoundJSON{BoundSq: &v})
					}
				} else {
					if v := pbnd.Value(); v > lastP {
						lastP = v
						_ = write(ClusterBoundJSON{ProbBound: &v})
					}
				}
			}
		}()
	}

	streamed := 0
	emit := func(it engine.Item) error {
		rec := StreamItemJSON{ID: snap.IDAt(it.ID)}
		switch ereq.Kind {
		case engine.KindTopK, engine.KindRange:
			d := it.Distance
			rec.Distance = &d
		case engine.KindProbTopK:
			p := it.Prob
			rec.Prob = &p
		}
		streamed++
		return write(rec)
	}
	_, err = e.RunStream(ctx, ereq, emit)
	close(pollDone)
	pollWG.Wait()
	finish(err)
	if err != nil {
		if streamed == 0 {
			http.Error(w, err.Error(), statusFor(err))
			return
		}
		_ = write(map[string]string{"error": err.Error()})
		return
	}
	_ = write(ClusterDoneJSON{
		Done:  true,
		Epoch: snap.Epoch(),
		Total: streamed,
		Stats: s.statsFor(ereq.Measure),
	})
}

// handleClusterBound serves POST /cluster/bound: the gather-to-scatter leg
// of bound propagation. Pushing into a finished (or unknown) token is a
// no-op 204 — the query the bound was meant for has already drained, and
// racing a retry against completion must not fail the coordinator.
func (s *Server) handleClusterBound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var rec ClusterBoundJSON
	if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if rec.Token == "" {
		http.Error(w, "a bound push needs a token", http.StatusBadRequest)
		return
	}
	if p := s.bounds.lookup(rec.Token); p != nil {
		if rec.BoundSq != nil {
			p.bnd.LowerSquared(*rec.BoundSq)
		}
		if rec.ProbBound != nil {
			p.pbnd.Raise(*rec.ProbBound)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// FetchSeries renders the resident series with the given stable ID back
// into its wire ingestion shape. It errors when the series carries a
// per-timestamp error model a constant sigma cannot express — impossible
// for series ingested through the JSON surface, which is all a cluster
// shard ever holds.
func (s *Server) FetchSeries(id int) (*ClusterSeriesJSON, error) {
	snap := s.c.Snapshot()
	pos, ok := snap.PosOf(id)
	if !ok {
		return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("no series with ID %d", id)}
	}
	ent := snap.Entry(pos)
	sj := SeriesJSON{Values: ent.PDF.Observations, Label: ent.PDF.Label}
	if ent.Samples != nil {
		sj.Samples = ent.Samples.Samples
	}
	if ent.OwnErrors {
		sigma := ent.Sigmas[0]
		for _, v := range ent.Sigmas {
			if v != sigma { //lint:allow floatcmp exact representability check: forwarding is only faithful for a truly constant sigma
				return nil, &httpError{
					status: http.StatusUnprocessableEntity,
					msg:    fmt.Sprintf("series %d carries a non-constant error model and cannot be forwarded as a wire series", id),
				}
			}
		}
		sj.Sigma = sigma
	}
	return &ClusterSeriesJSON{ID: id, Series: sj}, nil
}

// handleClusterSeries serves GET /cluster/series?id=N.
func (s *Server) handleClusterSeries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		http.Error(w, "id must be an integer", http.StatusBadRequest)
		return
	}
	rec, err := s.FetchSeries(id)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, rec)
}

// Info reports the shard geometry the coordinator needs: the corpus
// epoch, resident count, series length, and the next unassigned stable ID
// (the coordinator recovers its global ID allocator as the max over
// shards).
func (s *Server) Info() ClusterInfoJSON {
	snap := s.c.Snapshot()
	return ClusterInfoJSON{
		Epoch:     snap.Epoch(),
		Series:    snap.Len(),
		SeriesLen: snap.SeriesLen(),
		NextID:    snap.NextID(),
	}
}

// handleClusterInfo serves GET /cluster/info.
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.Info())
}
