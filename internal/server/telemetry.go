package server

import (
	"context"
	"errors"
	"strings"
	"time"

	"uncertts/internal/engine"
	"uncertts/internal/qerr"
	"uncertts/internal/telemetry"
)

// The server's metric families. Package-level on the default registry so
// every Server in the process (a single node, or the N in-process shards
// of `uncertserve -shards N`) accrues into one /metrics surface.
var (
	queriesTotal = telemetry.NewCounterVec(
		"uncertts_server_queries_total",
		"Queries executed, by query kind and measure (label \"invalid\" when the request did not parse).",
		"kind", "measure")
	queryDuration = telemetry.NewHistogramVec(
		"uncertts_server_query_duration_seconds",
		"Query execution latency, by query kind and measure.",
		nil, "kind", "measure")
	queryErrors = telemetry.NewCounterVec(
		"uncertts_server_query_errors_total",
		"Failed queries, by error class (the qerr sentinel taxonomy).",
		"error")
	queriesInFlight = telemetry.NewGauge(
		"uncertts_server_queries_in_flight_total",
		"Queries currently executing.")
)

// queryLabels resolves a request's metric labels without trusting raw
// client strings (unbounded label cardinality); anything unparseable is
// folded into "invalid". Measures are lowercased to match the wire
// request spelling ("euclidean", not the display form "Euclidean").
func queryLabels(req QueryRequest) (kind, measure string) {
	kind, measure = "invalid", "invalid"
	if k, err := engine.ParseKind(req.Type); err == nil {
		kind = k.String()
	}
	if m, err := engine.ParseMeasure(req.Measure); err == nil {
		measure = strings.ToLower(m.String())
	}
	return kind, measure
}

// track opens the metric envelope of one query — in-flight gauge, count,
// latency, error class — and returns the closure that closes it. Every
// execution surface (Run, RunBound, the stream handlers) runs inside one
// track window, and exactly one.
func track(req QueryRequest) func(error) {
	kind, measure := queryLabels(req)
	queriesInFlight.Add(1)
	start := time.Now()
	return func(err error) {
		queriesInFlight.Add(-1)
		queriesTotal.With(kind, measure).Inc()
		queryDuration.With(kind, measure).Observe(time.Since(start).Seconds())
		if err != nil {
			queryErrors.With(errorLabel(err)).Inc()
		}
	}
}

// errorLabel classifies a query failure for uncertts_server_query_errors_total,
// mirroring statusFor's taxonomy with the qerr sentinels spelled out.
func errorLabel(err error) string {
	var he *httpError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case qerr.IsCancellation(err):
		return "cancelled"
	case errors.Is(err, qerr.ErrShardTimeout):
		return "shard_timeout"
	case errors.Is(err, qerr.ErrShardUnreachable):
		return "shard_unreachable"
	case errors.Is(err, qerr.ErrUnknownMeasure):
		return "unknown_measure"
	case errors.Is(err, qerr.ErrLengthMismatch):
		return "length_mismatch"
	case errors.As(err, &he) && he.status == 404:
		return "not_found"
	case errors.Is(err, qerr.ErrBadRequest):
		return "bad_request"
	case errors.As(err, &he):
		return "bad_request"
	default:
		return "other"
	}
}
