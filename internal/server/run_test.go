package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"uncertts/internal/corpus"
	"uncertts/internal/qerr"
)

// slowServer builds a corpus whose DTW queries take long enough (hundreds
// of milliseconds: unconstrained warping over long series) that timeouts
// and disconnects reliably land mid-query.
func slowServer(t testing.TB, series, length int) (*Server, *atomic.Int64, *httptest.Server) {
	t.Helper()
	c := corpus.New(corpus.Config{ReportedSigma: 0.3, Length: length})
	var batch []corpus.Series
	for i := 0; i < series; i++ {
		vals := make([]float64, length)
		for j := range vals {
			vals[j] = math.Sin(float64(i)*0.7 + float64(j)*0.05)
		}
		batch = append(batch, corpus.Series{Values: vals})
	}
	if _, err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	srv := New(c, Options{Band: -1}) // unconstrained DTW: O(n^2) per pair
	// inFlight counts requests currently inside the handler, so tests can
	// assert the executor drained after a disconnect.
	var inFlight atomic.Int64
	h := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return srv, &inFlight, ts
}

func slowQuery() QueryRequest {
	id := 0
	return QueryRequest{Measure: "dtw", Type: "topk", K: 3, ID: &id}
}

func TestQueryTimeoutAnswers504(t *testing.T) {
	_, _, ts := slowServer(t, 12, 1024)
	req := slowQuery()
	req.TimeoutMS = 1
	start := time.Now()
	resp := postJSON(t, ts.URL+"/query", req, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timed-out query held the request %v", elapsed)
	}
}

func TestServerDefaultTimeout(t *testing.T) {
	srv, _, _ := slowServer(t, 12, 1024)
	srv.opts.DefaultTimeout = time.Millisecond
	// queryContext applies the server default when the request carries no
	// timeout_ms of its own; the derived deadline must stop the query.
	ctx, cancel := srv.queryContext(context.Background(), slowQuery())
	defer cancel()
	if _, err := srv.Run(ctx, slowQuery()); !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.DeadlineExceeded", err)
	}
}

// TestClientDisconnectCancelsQueryAndDrains is the serving-side
// cancellation acceptance test: a client that hangs up mid-/query stops
// the executor — the handler (and with it the engine scan) returns
// promptly instead of finishing the scan for a dead connection.
func TestClientDisconnectCancelsQueryAndDrains(t *testing.T) {
	_, inFlight, ts := slowServer(t, 12, 2048)
	body, err := json.Marshal(slowQuery())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errCh <- err
	}()
	// Wait until the request is inside the handler, then hang up.
	deadline := time.Now().Add(5 * time.Second)
	for inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("client should observe its own cancellation")
	}
	// The handler must drain promptly: the engine saw the cancellation
	// and released its executor shards.
	start := time.Now()
	for inFlight.Load() != 0 {
		if time.Since(start) > 10*time.Second {
			t.Fatalf("handler still running %v after client disconnect", time.Since(start))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueryStreamNDJSON(t *testing.T) {
	srv, ts := testServer(t, 10, 24)
	id := 2
	// Reference answer through the non-streaming path.
	ref, err := srv.Query(QueryRequest{Measure: "euclidean", Type: "range", Eps: 50, ID: &id})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.IDs) == 0 {
		t.Fatal("test needs a non-empty range answer")
	}

	resp := postJSON(t, ts.URL+"/query/stream", QueryRequest{Measure: "euclidean", Type: "range", Eps: 50, ID: &id}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	buf, err := http.Get(ts.URL + "/stats") // sanity: server still alive
	if err != nil {
		t.Fatal(err)
	}
	buf.Body.Close()

	// postJSON drained the body; re-issue and parse by hand.
	raw, err := json.Marshal(QueryRequest{Measure: "euclidean", Type: "range", Eps: 50, ID: &id})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var ids []int
	var done StreamDoneJSON
	sawDone := false
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawDone {
			t.Fatalf("record after the done record: %s", line)
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
			sawDone = true
			continue
		}
		var it StreamItemJSON
		if err := json.Unmarshal(line, &it); err != nil {
			t.Fatalf("bad item line %q: %v", line, err)
		}
		if it.Distance == nil {
			t.Errorf("range stream item %d without distance", it.ID)
		}
		ids = append(ids, it.ID)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("stream ended without a done record")
	}
	if done.Total != len(ids) || done.Type != "range" || done.Stats == "" {
		t.Errorf("done record = %+v with %d items", done, len(ids))
	}
	sort.Ints(ids)
	if !reflect.DeepEqual(ids, ref.IDs) {
		t.Errorf("streamed IDs %v != /query answer %v", ids, ref.IDs)
	}

	// Top-k streams its ranked answer in order.
	res2, err := http.Post(ts.URL+"/query/stream", "application/json",
		bytes.NewReader(mustJSON(t, QueryRequest{Measure: "euclidean", Type: "topk", K: 3, ID: &id})))
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	refTopK, err := srv.Query(QueryRequest{Measure: "euclidean", Type: "topk", K: 3, ID: &id})
	if err != nil {
		t.Fatal(err)
	}
	var rank []int
	sc = bufio.NewScanner(res2.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || bytes.Contains(line, []byte(`"done"`)) {
			continue
		}
		var it StreamItemJSON
		if err := json.Unmarshal(line, &it); err != nil {
			t.Fatal(err)
		}
		rank = append(rank, it.ID)
	}
	want := make([]int, len(refTopK.Neighbors))
	for i, n := range refTopK.Neighbors {
		want[i] = n.ID
	}
	if !reflect.DeepEqual(rank, want) {
		t.Errorf("topk stream order %v, want %v", rank, want)
	}
}

func mustJSON(t testing.TB, v interface{}) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestQueryPaginationAndTotal(t *testing.T) {
	srv, _ := testServer(t, 12, 24)
	id := 0
	full, err := srv.Query(QueryRequest{Measure: "uema", Type: "topk", K: 8, ID: &id})
	if err != nil {
		t.Fatal(err)
	}
	if full.Total != len(full.Neighbors) {
		t.Fatalf("total = %d, want %d", full.Total, len(full.Neighbors))
	}
	page, err := srv.Query(QueryRequest{Measure: "uema", Type: "topk", K: 8, ID: &id, Offset: 2, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != full.Total {
		t.Errorf("page total = %d, want %d", page.Total, full.Total)
	}
	if !reflect.DeepEqual(page.Neighbors, full.Neighbors[2:5]) {
		t.Errorf("page = %v, want %v", page.Neighbors, full.Neighbors[2:5])
	}
}

func TestStatusMapping(t *testing.T) {
	_, ts := testServer(t, 8, 24)
	id, missing := 0, 9999
	cases := []struct {
		name string
		req  QueryRequest
		want int
	}{
		{"unknown measure", QueryRequest{Measure: "cosine", Type: "topk", K: 3, ID: &id}, http.StatusBadRequest},
		{"unknown kind", QueryRequest{Measure: "uema", Type: "knn", K: 3, ID: &id}, http.StatusBadRequest},
		{"unknown id", QueryRequest{Measure: "uema", Type: "topk", K: 3, ID: &missing}, http.StatusNotFound},
		{"k = 0", QueryRequest{Measure: "uema", Type: "topk", ID: &id}, http.StatusBadRequest},
		{"bad tau", QueryRequest{Measure: "proud", Type: "probrange", Eps: 1, Tau: 7, ID: &id}, http.StatusBadRequest},
		{"length mismatch", QueryRequest{Measure: "uema", Type: "topk", K: 3, Series: &SeriesJSON{Values: []float64{1, 2}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/query", tc.req, nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Pagination is a /query concern; the stream endpoint rejects it
	// instead of silently delivering the unwindowed stream.
	paged := QueryRequest{Measure: "uema", Type: "topk", K: 3, ID: &id, Limit: 1}
	if resp := postJSON(t, ts.URL+"/query/stream", paged, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("stream with limit: status = %d, want 400", resp.StatusCode)
	}
}
