// Package server exposes a corpus and its query engines over HTTP/JSON —
// the serving tier that turns the batch reproduction into a system:
//
//	POST /query         similarity queries (topk, range, probtopk,
//	                    probrange) across every measure, against resident
//	                    series (by stable corpus ID) or ad-hoc series
//	                    shipped in the request;
//	POST /query/stream  the same queries with incremental NDJSON results:
//	                    one record per confirmed neighbour, then a final
//	                    stats record;
//	POST /series        ingestion and deletion;
//	GET  /stats         corpus and per-measure engine accounting.
//
// Every query parses straight into one declarative engine.Request and
// executes through Engine.Run under the HTTP request's context: a client
// that hangs up cancels its query (the executor drains promptly), and a
// per-request timeout_ms field bounds the work server-side. Failures are
// typed — the engine returns qerr sentinels, which map mechanically to
// HTTP status codes (400 for validation, 404 for unknown IDs, 504 for
// expired deadlines).
//
// Requests execute on the engine's work-stealing executor with a
// per-request worker budget, against whatever corpus snapshot is current
// when the request arrives. Snapshot isolation does the heavy lifting for
// concurrency: a query keeps its snapshot for its whole execution, so
// in-flight queries are never perturbed by concurrent ingestion, and
// writers never wait for readers.
//
// Engines are cached per measure and rebuilt only when the corpus epoch
// moves on — and rebuilding is cheap because the per-series artifacts
// (envelopes, filtered vectors, suffix energies, phi tables) live in the
// corpus entries, which snapshots share. Work counters survive rebuilds:
// /stats reports the cumulative accounting since the server started.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"uncertts/internal/corpus"
	"uncertts/internal/engine"
	"uncertts/internal/munich"
	"uncertts/internal/qerr"
	"uncertts/internal/stats"
	"uncertts/internal/store"
	"uncertts/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// DefaultWorkers is the worker budget of a request that does not ask
	// for one (0 = 1: concurrent requests parallelise across, not within,
	// requests by default).
	DefaultWorkers int
	// MaxWorkers caps any request's worker budget (0 = GOMAXPROCS).
	MaxWorkers int
	// DefaultTimeout bounds a query that does not carry its own
	// timeout_ms (0 = no server-side bound). Expiry cancels the query's
	// context, drains the executor and answers 504.
	DefaultTimeout time.Duration
	// Band is the Sakoe-Chiba half-width DTW engines use (0 = length/10).
	Band int
	// MUNICH configures the probability estimator of MUNICH engines.
	MUNICH munich.Options
	// NoIndex forces every engine onto the linear scan path, ignoring the
	// corpus' sketch index (debugging / apples-to-apples benchmarking).
	NoIndex bool
	// Store optionally attaches the durability engine behind the corpus:
	// /healthz then reports WAL and checkpoint state, and POST
	// /admin/checkpoint triggers a checkpoint + WAL compaction on demand.
	Store *store.Store
	// Tracer receives this server's finished query traces (nil = the
	// process-wide telemetry.DefaultTracer). Tests inject their own to
	// observe spans without the shared ring.
	Tracer *telemetry.Tracer
}

// Server serves similarity queries over a corpus. It is safe for
// concurrent use.
type Server struct {
	c    *corpus.Corpus
	opts Options

	mu      sync.Mutex
	engines map[engine.Measure]*measureEngines

	// bounds tracks the shared pruning cuts of running cluster queries,
	// keyed by the coordinator's bound token (see cluster.go).
	bounds boundRegistry

	// tracer collects finished query traces for /debug/trace and the
	// slow-query log.
	tracer *telemetry.Tracer
}

// measureEngines tracks one measure's engine across corpus epochs. The
// previous engine is kept alive (not just its counters) until the next
// rebuild so that requests still running on it when it was retired keep
// accruing into /stats; only the engine before that is folded into the
// frozen baseline.
type measureEngines struct {
	epoch    uint64
	cur      *engine.Engine
	prev     *engine.Engine
	baseline engine.Stats
}

// New returns a server over the corpus.
func New(c *corpus.Corpus, opts Options) *Server {
	if opts.DefaultWorkers <= 0 {
		opts.DefaultWorkers = 1
	}
	if opts.MaxWorkers <= 0 {
		opts.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = telemetry.DefaultTracer()
	}
	return &Server{
		c:       c,
		opts:    opts,
		engines: make(map[engine.Measure]*measureEngines),
		tracer:  tracer,
	}
}

// Corpus returns the corpus the server mutates and queries.
func (s *Server) Corpus() *corpus.Corpus { return s.c }

// Handler returns the HTTP handler serving /query, /query/stream, /series
// and /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/query/stream", s.handleQueryStream)
	mux.HandleFunc("/series", s.handleSeries)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", telemetry.Handler())
	mux.HandleFunc("/debug/trace", s.tracer.HandleDebugTrace)
	mux.HandleFunc("/admin/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/cluster/query", s.handleClusterQuery)
	mux.HandleFunc("/cluster/bound", s.handleClusterBound)
	mux.HandleFunc("/cluster/series", s.handleClusterSeries)
	mux.HandleFunc("/cluster/info", s.handleClusterInfo)
	return mux
}

// engineFor returns an engine serving the measure over the current corpus
// snapshot, rebuilding the cached one only when the corpus moved past its
// epoch. The snapshot is loaded under the lock so a request that read an
// older snapshot before blocking can never evict a fresher engine.
func (s *Server) engineFor(m engine.Measure) (*engine.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.c.Snapshot()
	me := s.engines[m]
	if me == nil {
		me = &measureEngines{}
		s.engines[m] = me
	}
	if me.cur != nil && me.epoch >= snap.Epoch() {
		return me.cur, nil
	}
	e, err := engine.NewFromSnapshot(snap, engine.Options{
		Measure: m,
		Band:    s.opts.Band,
		MUNICH:  s.opts.MUNICH,
		NoIndex: s.opts.NoIndex,
	})
	if err != nil {
		return nil, err
	}
	if me.prev != nil {
		me.baseline = me.baseline.Merge(me.prev.Stats())
	}
	me.prev = me.cur
	me.cur = e
	me.epoch = snap.Epoch()
	return e, nil
}

// cumulative folds one measure's accounting: the frozen baseline plus the
// live counters of the current and most recently retired engines.
func (me *measureEngines) cumulative() engine.Stats {
	st := me.baseline
	if me.prev != nil {
		st = st.Merge(me.prev.Stats())
	}
	if me.cur != nil {
		st = st.Merge(me.cur.Stats())
	}
	return st
}

// measureStats returns the cumulative counters for every measure.
func (s *Server) measureStats() map[string]engine.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]engine.Stats)
	for m, me := range s.engines {
		out[m.String()] = me.cumulative()
	}
	return out
}

// SeriesJSON is the wire form of one uncertain series.
type SeriesJSON struct {
	// Values holds one observation per timestamp.
	Values []float64 `json:"values"`
	// Sigma optionally attaches a constant error stddev (a zero-mean
	// normal error model).
	Sigma float64 `json:"sigma,omitempty"`
	// Samples optionally attaches repeated observations per timestamp
	// (required to serve the series with MUNICH).
	Samples [][]float64 `json:"samples,omitempty"`
	// Label carries an optional class label.
	Label int `json:"label,omitempty"`
}

func (sj SeriesJSON) toCorpus() (corpus.Series, error) {
	if sj.Sigma < 0 {
		return corpus.Series{}, errors.New("sigma must be non-negative")
	}
	cs := corpus.Series{Values: sj.Values, Samples: sj.Samples, Label: sj.Label}
	if sj.Sigma > 0 {
		d := stats.NewNormal(0, sj.Sigma)
		cs.Errors = make([]stats.Dist, len(sj.Values))
		for i := range cs.Errors {
			cs.Errors[i] = d
		}
	}
	return cs, nil
}

// QueryRequest is the wire form of POST /query and /query/stream — the
// JSON rendering of one declarative engine.Request plus the transport
// concerns (stable-ID target resolution, per-request timeout).
type QueryRequest struct {
	// Measure is one of euclidean, uma, uema, dtw, dust, proud, munich.
	Measure string `json:"measure"`
	// Type is the query family: topk or range for the distance measures,
	// probtopk or probrange for proud/munich.
	Type string `json:"type"`
	// K is the neighbour count for topk/probtopk.
	K int `json:"k,omitempty"`
	// Eps is the distance threshold (range, probtopk, probrange).
	Eps float64 `json:"eps,omitempty"`
	// Tau is the probability threshold (probrange).
	Tau float64 `json:"tau,omitempty"`
	// ID poses a resident series (by stable corpus ID) as the query; the
	// series itself is excluded from the answer.
	ID *int `json:"id,omitempty"`
	// Series poses an ad-hoc query series instead; nothing is excluded.
	Series *SeriesJSON `json:"series,omitempty"`
	// Workers is the per-request worker budget (0 = the server default,
	// capped at the server maximum).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds this query's execution in milliseconds (0 = the
	// server's DefaultTimeout). On expiry the executor drains and the
	// request answers 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Offset drops the first Offset result entries (after the final
	// deterministic ordering).
	Offset int `json:"offset,omitempty"`
	// Limit truncates the result list after Limit entries (0 = all).
	Limit int `json:"limit,omitempty"`
}

// NeighborJSON is one topk answer entry.
type NeighborJSON struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

// MatchJSON is one probtopk answer entry.
type MatchJSON struct {
	ID   int     `json:"id"`
	Prob float64 `json:"prob"`
}

// QueryResponse is the wire form of a /query answer. IDs are stable corpus
// IDs, valid across snapshots.
type QueryResponse struct {
	Measure   string         `json:"measure"`
	Type      string         `json:"type"`
	Epoch     uint64         `json:"epoch"`
	Neighbors []NeighborJSON `json:"neighbors,omitempty"`
	IDs       []int          `json:"ids,omitempty"`
	Matches   []MatchJSON    `json:"matches,omitempty"`
	// Total is the full answer size before any offset/limit window was
	// applied, so paginating clients know when to stop.
	Total int `json:"total"`
}

// httpError carries a status code out of a handler helper.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// statusFor maps an error from the query path to its HTTP status: the
// qerr sentinels carry the classification (validation 400, expired
// deadline 504, client-side cancellation 499 — the nginx convention, the
// client is gone anyway), and explicit httpErrors (404 for unknown IDs)
// pass through.
func statusFor(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case qerr.IsCancellation(err):
		return 499
	default:
		return http.StatusBadRequest
	}
}

// StatusFor is the exported form of statusFor: the cluster coordinator
// reuses the server's error-to-status mapping for its own handler, so a
// shard-side 404 or 400 surfaces identically through either tier.
func StatusFor(err error) int { return statusFor(err) }

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	// r.Context() is cancelled when the client hangs up, so a dead
	// connection stops its query; timeout_ms adds the server-side bound.
	ctx, cancel := s.queryContext(r.Context(), req)
	defer cancel()
	// The trace ID travels in a response header, never the JSON body — the
	// /query answer stays bit-identical whether or not anyone is tracing.
	tr := s.tracer.StartTrace(r.Header.Get(telemetry.TraceHeader), "query")
	tr.SetQuery(queryLabels(req))
	w.Header().Set(telemetry.TraceHeader, tr.ID())
	resp, err := s.Run(telemetry.WithTrace(ctx, tr), req)
	tr.Fail(err)
	s.tracer.Finish(tr)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, resp)
}

// queryContext derives the execution context of one query from the
// transport context: the request's own timeout_ms first, the server
// default otherwise.
func (s *Server) queryContext(parent context.Context, req QueryRequest) (context.Context, context.CancelFunc) {
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, timeout)
}

// plan resolves a wire request into the engine serving its measure, the
// snapshot the answer is against, and the declarative engine request
// (stable IDs translated to snapshot positions).
func (s *Server) plan(req QueryRequest) (*engine.Engine, *corpus.Snapshot, engine.Request, error) {
	if req.TimeoutMS < 0 {
		return nil, nil, engine.Request{}, badRequest("timeout_ms = %d must be non-negative (0 = the server default)", req.TimeoutMS)
	}
	m, err := engine.ParseMeasure(req.Measure)
	if err != nil {
		return nil, nil, engine.Request{}, err
	}
	kind, err := engine.ParseKind(req.Type)
	if err != nil {
		return nil, nil, engine.Request{}, err
	}
	e, err := s.engineFor(m)
	if err != nil {
		return nil, nil, engine.Request{}, fmt.Errorf("building %s engine: %w", m, err)
	}
	snap := e.Snapshot()
	ereq := engine.Request{
		Measure: m,
		Kind:    kind,
		K:       req.K,
		Eps:     req.Eps,
		Tau:     req.Tau,
		Workers: s.clampWorkers(req.Workers),
		Offset:  req.Offset,
		Limit:   req.Limit,
	}
	switch {
	case req.ID != nil && req.Series != nil:
		return nil, nil, engine.Request{}, badRequest("id and series are mutually exclusive")
	case req.ID != nil:
		pos, ok := snap.PosOf(*req.ID)
		if !ok {
			return nil, nil, engine.Request{}, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("no series with ID %d", *req.ID)}
		}
		ereq.Index = &pos
	case req.Series != nil:
		ereq.AdHoc = &engine.Query{
			Values:  req.Series.Values,
			Sigma:   req.Series.Sigma,
			Samples: req.Series.Samples,
		}
	default:
		return nil, nil, engine.Request{}, badRequest("the query needs an id or a series")
	}
	return e, snap, ereq, nil
}

// Run executes one query request against the current snapshot under ctx.
// It is exported so in-process callers (tests, embedding applications)
// can skip HTTP; cancellation and deadline semantics are exactly those of
// engine.Run.
func (s *Server) Run(ctx context.Context, req QueryRequest) (resp *QueryResponse, err error) {
	done := track(req)
	defer func() { done(err) }()
	sp := telemetry.TraceFrom(ctx).Start("parse")
	e, snap, ereq, err := s.plan(req)
	sp.EndErr(err)
	if err != nil {
		return nil, err
	}
	res, err := e.Run(ctx, ereq)
	if err != nil {
		return nil, err
	}
	return toResponse(snap, ereq.Measure, res), nil
}

// Query executes one query request with no cancellation — the legacy
// in-process surface, equivalent to Run with a background context.
func (s *Server) Query(req QueryRequest) (*QueryResponse, error) {
	return s.Run(context.Background(), req)
}

// toResponse translates an engine result (snapshot positions) into the
// wire response (stable corpus IDs, normalized measure and kind names).
func toResponse(snap *corpus.Snapshot, m engine.Measure, res *engine.Result) *QueryResponse {
	resp := &QueryResponse{
		Measure: m.String(),
		Type:    res.Kind.String(),
		Epoch:   snap.Epoch(),
		Total:   res.Total,
	}
	for _, n := range res.Neighbors {
		resp.Neighbors = append(resp.Neighbors, NeighborJSON{ID: snap.IDAt(n.ID), Distance: n.Distance})
	}
	for _, pm := range res.Matches {
		resp.Matches = append(resp.Matches, MatchJSON{ID: snap.IDAt(pm.ID), Prob: pm.Prob})
	}
	if res.IDs != nil {
		resp.IDs = stableIDs(snap, res.IDs)
	}
	return resp
}

// StreamItemJSON is one incremental /query/stream record: the stable
// corpus ID of a confirmed neighbour plus its distance (topk, range) or
// match probability (probtopk); probrange items carry the ID alone.
type StreamItemJSON struct {
	ID       int      `json:"id"`
	Distance *float64 `json:"distance,omitempty"`
	Prob     *float64 `json:"prob,omitempty"`
}

// StreamDoneJSON is the final /query/stream record: a summary of the
// completed query plus the measure's cumulative engine stats.
type StreamDoneJSON struct {
	Done    bool   `json:"done"`
	Measure string `json:"measure"`
	Type    string `json:"type"`
	Epoch   uint64 `json:"epoch"`
	// Total is the number of item records streamed before this one.
	Total int `json:"total"`
	// Stats is the measure's cumulative engine accounting (the same
	// counters /stats reports), rendered as its one-line summary.
	Stats string `json:"stats"`
}

// handleQueryStream serves POST /query/stream: the same request shape as
// /query, answered as NDJSON — one StreamItemJSON per confirmed result
// (range kinds stream mid-scan as shards confirm matches, in
// nondeterministic order; top-k kinds stream the ranked answer as it is
// confirmed at the merge), then one StreamDoneJSON. The offset/limit
// window is a /query concern (it is defined on the final sorted answer,
// which a mid-scan stream does not have yet), so stream requests carrying
// one are rejected rather than silently unwindowed. Errors before the
// first record are plain HTTP errors; a failure mid-stream terminates the
// body with an {"error": ...} record instead of the final done record.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Offset != 0 || req.Limit != 0 {
		http.Error(w, "offset/limit do not apply to /query/stream (the stream delivers every confirmed match; use /query for pagination)", http.StatusBadRequest)
		return
	}
	ctx, cancel := s.queryContext(r.Context(), req)
	defer cancel()
	tr := s.tracer.StartTrace(r.Header.Get(telemetry.TraceHeader), "query_stream")
	tr.SetQuery(queryLabels(req))
	w.Header().Set(telemetry.TraceHeader, tr.ID())
	ctx = telemetry.WithTrace(ctx, tr)
	done := track(req)
	finish := func(err error) {
		done(err)
		tr.Fail(err)
		s.tracer.Finish(tr)
	}
	sp := telemetry.TraceFrom(ctx).Start("parse")
	e, snap, ereq, err := s.plan(req)
	sp.EndErr(err)
	if err != nil {
		finish(err)
		http.Error(w, err.Error(), statusFor(err))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	kind := ereq.Kind
	streamed := 0
	emit := func(it engine.Item) error {
		rec := StreamItemJSON{ID: snap.IDAt(it.ID)}
		switch kind {
		case engine.KindTopK, engine.KindRange:
			d := it.Distance
			rec.Distance = &d
		case engine.KindProbTopK:
			p := it.Prob
			rec.Prob = &p
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		streamed++
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if _, err := e.RunStream(ctx, ereq, emit); err != nil {
		finish(err)
		if streamed == 0 {
			http.Error(w, err.Error(), statusFor(err))
			return
		}
		_ = enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	finish(nil)
	_ = enc.Encode(StreamDoneJSON{
		Done:    true,
		Measure: ereq.Measure.String(),
		Type:    kind.String(),
		Epoch:   snap.Epoch(),
		Total:   streamed,
		Stats:   s.statsFor(ereq.Measure).String(),
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// statsFor returns one measure's cumulative counters — the same
// aggregation /stats reports, so a stream's done record agrees with
// /stats even across engine rebuilds.
func (s *Server) statsFor(m engine.Measure) engine.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	me := s.engines[m]
	if me == nil {
		return engine.Stats{}
	}
	return me.cumulative()
}

func stableIDs(snap *corpus.Snapshot, positions []int) []int {
	out := make([]int, len(positions))
	for i, pos := range positions {
		out[i] = snap.IDAt(pos)
	}
	return out
}

func (s *Server) clampWorkers(requested int) int {
	w := requested
	if w <= 0 {
		w = s.opts.DefaultWorkers
	}
	if w > s.opts.MaxWorkers {
		w = s.opts.MaxWorkers
	}
	return w
}

// SeriesRequest is the wire form of POST /series: insertions and deletions
// applied as one atomic mutation — either everything lands in a single
// corpus epoch, or (e.g. on an unknown delete ID) nothing changes.
type SeriesRequest struct {
	Insert []SeriesJSON `json:"insert,omitempty"`
	// InsertIDs optionally pins the stable ID of each inserted series
	// (one per Insert entry, strictly increasing, at or above the corpus'
	// next unassigned ID). The cluster coordinator uses it to ingest
	// series under globally allocated IDs; plain clients leave it empty
	// and receive contiguous IDs.
	InsertIDs []int `json:"insert_ids,omitempty"`
	Delete    []int `json:"delete,omitempty"`
}

// SeriesResponse reports the outcome of a /series mutation.
type SeriesResponse struct {
	// IDs are the stable corpus IDs of the inserted series, in input
	// order.
	IDs []int `json:"ids,omitempty"`
	// Deleted is the number of removed series.
	Deleted int `json:"deleted,omitempty"`
	// Epoch is the corpus epoch after the mutation.
	Epoch uint64 `json:"epoch"`
	// Series is the resident count after the mutation.
	Series int `json:"series"`
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SeriesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.Mutate(req)
	if err != nil {
		status := http.StatusBadRequest
		var he *httpError
		if errors.As(err, &he) {
			status = he.status
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, resp)
}

// Mutate applies one ingestion/deletion request as a single atomic corpus
// mutation: on any error (including an unknown delete ID) nothing is
// changed, so clients can retry safely.
func (s *Server) Mutate(req SeriesRequest) (*SeriesResponse, error) {
	if len(req.Insert) == 0 && len(req.Delete) == 0 {
		return nil, badRequest("nothing to insert or delete")
	}
	if len(req.InsertIDs) > 0 && len(req.InsertIDs) != len(req.Insert) {
		return nil, badRequest("insert_ids has %d entries for %d inserted series", len(req.InsertIDs), len(req.Insert))
	}
	batch := make([]corpus.Series, len(req.Insert))
	for i, sj := range req.Insert {
		cs, err := sj.toCorpus()
		if err != nil {
			return nil, badRequest("series %d: %v", i, err)
		}
		batch[i] = cs
	}
	ids, err := s.c.ApplyAt(batch, req.InsertIDs, req.Delete)
	if err != nil {
		return nil, &httpError{status: statusForApplyError(err), msg: err.Error()}
	}
	snap := s.c.Snapshot()
	return &SeriesResponse{
		IDs:     ids,
		Deleted: len(req.Delete),
		Epoch:   snap.Epoch(),
		Series:  snap.Len(),
	}, nil
}

// statusForApplyError maps a corpus mutation error to an HTTP status:
// unknown-ID deletions are 404, everything else (validation) is 400.
func statusForApplyError(err error) int {
	if strings.Contains(err.Error(), "no series with ID") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// StatsResponse is the wire form of GET /stats.
type StatsResponse struct {
	// Series is the resident series count.
	Series int `json:"series"`
	// SeriesLen is the common series length.
	SeriesLen int `json:"series_len"`
	// Epoch is the current corpus epoch.
	Epoch uint64 `json:"epoch"`
	// Measures maps measure name to its cumulative engine counters.
	Measures map[string]MeasureStatsJSON `json:"measures,omitempty"`
}

// MeasureStatsJSON is the cumulative accounting of one measure's engines:
// the full wire-stable engine.Stats counter set (inlined) plus a rendered
// summary line. Carrying engine.Stats itself is what lets a cluster
// coordinator merge shard /stats responses without drift.
type MeasureStatsJSON struct {
	engine.Stats
	Summary string `json:"summary"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.Stats())
}

// Stats assembles the /stats payload.
func (s *Server) Stats() *StatsResponse {
	snap := s.c.Snapshot()
	resp := &StatsResponse{
		Series:    snap.Len(),
		SeriesLen: snap.SeriesLen(),
		Epoch:     snap.Epoch(),
		Measures:  make(map[string]MeasureStatsJSON),
	}
	for name, st := range s.measureStats() {
		resp.Measures[name] = MeasureStatsJSON{Stats: st, Summary: st.String()}
	}
	return resp
}

// HealthResponse is the wire form of GET /healthz: liveness plus the
// durability picture operators page on — current epoch, resident series,
// and (when a store is attached) how much WAL a crash right now would
// replay.
type HealthResponse struct {
	// Status is "ok" while the server can answer queries; "degraded" when
	// the attached store stopped accepting mutations or reported a
	// background failure.
	Status string `json:"status"`
	// Epoch is the current corpus epoch.
	Epoch uint64 `json:"epoch"`
	// Series is the resident series count.
	Series int `json:"series"`
	// Durable reports whether a store is attached.
	Durable bool `json:"durable"`
	// UptimeSeconds is the time since this process started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Build identifies the running binary (module version, VCS revision).
	Build telemetry.BuildJSON `json:"build"`
	// Store is the attached store's status (absent when not durable).
	Store *store.Status `json:"store,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.Health())
}

// Health assembles the /healthz payload.
func (s *Server) Health() *HealthResponse {
	snap := s.c.Snapshot()
	resp := &HealthResponse{
		Status:        "ok",
		Epoch:         snap.Epoch(),
		Series:        snap.Len(),
		UptimeSeconds: telemetry.Uptime().Seconds(),
		Build:         telemetry.Build(),
	}
	if s.opts.Store != nil {
		st := s.opts.Store.Status()
		resp.Durable = true
		resp.Store = &st
		if !st.Open || st.LastError != "" {
			resp.Status = "degraded"
		}
	}
	return resp
}

// handleCheckpoint serves POST /admin/checkpoint: it durably serializes
// the current corpus state, compacts the WAL, and answers with the fresh
// store status. 503 when the server runs without a store.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.opts.Store == nil {
		http.Error(w, "this server runs without a durable store (start it with -data)", http.StatusServiceUnavailable)
		return
	}
	if err := s.opts.Store.Checkpoint(); err != nil {
		http.Error(w, "checkpoint: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, s.opts.Store.Status())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
