// Package server exposes a corpus and its query engines over HTTP/JSON —
// the serving tier that turns the batch reproduction into a system:
//
//	POST /query   similarity queries (topk, range, probtopk, probrange)
//	              across every measure, against resident series (by stable
//	              corpus ID) or ad-hoc series shipped in the request;
//	POST /series  ingestion and deletion;
//	GET  /stats   corpus and per-measure engine accounting.
//
// Requests execute on the engine's work-stealing executor with a
// per-request worker budget, against whatever corpus snapshot is current
// when the request arrives. Snapshot isolation does the heavy lifting for
// concurrency: a query keeps its snapshot for its whole execution, so
// in-flight queries are never perturbed by concurrent ingestion, and
// writers never wait for readers.
//
// Engines are cached per measure and rebuilt only when the corpus epoch
// moves on — and rebuilding is cheap because the per-series artifacts
// (envelopes, filtered vectors, suffix energies, phi tables) live in the
// corpus entries, which snapshots share. Work counters survive rebuilds:
// /stats reports the cumulative accounting since the server started.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"

	"uncertts/internal/corpus"
	"uncertts/internal/engine"
	"uncertts/internal/munich"
	"uncertts/internal/stats"
)

// Options configures a Server.
type Options struct {
	// DefaultWorkers is the worker budget of a request that does not ask
	// for one (0 = 1: concurrent requests parallelise across, not within,
	// requests by default).
	DefaultWorkers int
	// MaxWorkers caps any request's worker budget (0 = GOMAXPROCS).
	MaxWorkers int
	// Band is the Sakoe-Chiba half-width DTW engines use (0 = length/10).
	Band int
	// MUNICH configures the probability estimator of MUNICH engines.
	MUNICH munich.Options
}

// Server serves similarity queries over a corpus. It is safe for
// concurrent use.
type Server struct {
	c    *corpus.Corpus
	opts Options

	mu      sync.Mutex
	engines map[engine.Measure]*measureEngines
}

// measureEngines tracks one measure's engine across corpus epochs. The
// previous engine is kept alive (not just its counters) until the next
// rebuild so that requests still running on it when it was retired keep
// accruing into /stats; only the engine before that is folded into the
// frozen baseline.
type measureEngines struct {
	epoch    uint64
	cur      *engine.Engine
	prev     *engine.Engine
	baseline engine.Stats
}

// New returns a server over the corpus.
func New(c *corpus.Corpus, opts Options) *Server {
	if opts.DefaultWorkers <= 0 {
		opts.DefaultWorkers = 1
	}
	if opts.MaxWorkers <= 0 {
		opts.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	return &Server{
		c:       c,
		opts:    opts,
		engines: make(map[engine.Measure]*measureEngines),
	}
}

// Corpus returns the corpus the server mutates and queries.
func (s *Server) Corpus() *corpus.Corpus { return s.c }

// Handler returns the HTTP handler serving /query, /series and /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/series", s.handleSeries)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// engineFor returns an engine serving the measure over the current corpus
// snapshot, rebuilding the cached one only when the corpus moved past its
// epoch. The snapshot is loaded under the lock so a request that read an
// older snapshot before blocking can never evict a fresher engine.
func (s *Server) engineFor(m engine.Measure) (*engine.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.c.Snapshot()
	me := s.engines[m]
	if me == nil {
		me = &measureEngines{}
		s.engines[m] = me
	}
	if me.cur != nil && me.epoch >= snap.Epoch() {
		return me.cur, nil
	}
	e, err := engine.NewFromSnapshot(snap, engine.Options{
		Measure: m,
		Band:    s.opts.Band,
		MUNICH:  s.opts.MUNICH,
	})
	if err != nil {
		return nil, err
	}
	if me.prev != nil {
		me.baseline = me.baseline.Merge(me.prev.Stats())
	}
	me.prev = me.cur
	me.cur = e
	me.epoch = snap.Epoch()
	return e, nil
}

// measureStats returns the cumulative counters for every measure: the
// frozen baseline plus the live counters of the current and most recently
// retired engines.
func (s *Server) measureStats() map[string]engine.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]engine.Stats)
	for m, me := range s.engines {
		st := me.baseline
		if me.prev != nil {
			st = st.Merge(me.prev.Stats())
		}
		if me.cur != nil {
			st = st.Merge(me.cur.Stats())
		}
		out[m.String()] = st
	}
	return out
}

// SeriesJSON is the wire form of one uncertain series.
type SeriesJSON struct {
	// Values holds one observation per timestamp.
	Values []float64 `json:"values"`
	// Sigma optionally attaches a constant error stddev (a zero-mean
	// normal error model).
	Sigma float64 `json:"sigma,omitempty"`
	// Samples optionally attaches repeated observations per timestamp
	// (required to serve the series with MUNICH).
	Samples [][]float64 `json:"samples,omitempty"`
	// Label carries an optional class label.
	Label int `json:"label,omitempty"`
}

func (sj SeriesJSON) toCorpus() (corpus.Series, error) {
	if sj.Sigma < 0 {
		return corpus.Series{}, errors.New("sigma must be non-negative")
	}
	cs := corpus.Series{Values: sj.Values, Samples: sj.Samples, Label: sj.Label}
	if sj.Sigma > 0 {
		d := stats.NewNormal(0, sj.Sigma)
		cs.Errors = make([]stats.Dist, len(sj.Values))
		for i := range cs.Errors {
			cs.Errors[i] = d
		}
	}
	return cs, nil
}

// QueryRequest is the wire form of POST /query.
type QueryRequest struct {
	// Measure is one of euclidean, uma, uema, dtw, dust, proud, munich.
	Measure string `json:"measure"`
	// Type is the query family: topk or range for the distance measures,
	// probtopk or probrange for proud/munich.
	Type string `json:"type"`
	// K is the neighbour count for topk/probtopk.
	K int `json:"k,omitempty"`
	// Eps is the distance threshold (range, probtopk, probrange).
	Eps float64 `json:"eps,omitempty"`
	// Tau is the probability threshold (probrange).
	Tau float64 `json:"tau,omitempty"`
	// ID poses a resident series (by stable corpus ID) as the query; the
	// series itself is excluded from the answer.
	ID *int `json:"id,omitempty"`
	// Series poses an ad-hoc query series instead; nothing is excluded.
	Series *SeriesJSON `json:"series,omitempty"`
	// Workers is the per-request worker budget (0 = the server default,
	// capped at the server maximum).
	Workers int `json:"workers,omitempty"`
}

// NeighborJSON is one topk answer entry.
type NeighborJSON struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

// MatchJSON is one probtopk answer entry.
type MatchJSON struct {
	ID   int     `json:"id"`
	Prob float64 `json:"prob"`
}

// QueryResponse is the wire form of a /query answer. IDs are stable corpus
// IDs, valid across snapshots.
type QueryResponse struct {
	Measure   string         `json:"measure"`
	Type      string         `json:"type"`
	Epoch     uint64         `json:"epoch"`
	Neighbors []NeighborJSON `json:"neighbors,omitempty"`
	IDs       []int          `json:"ids,omitempty"`
	Matches   []MatchJSON    `json:"matches,omitempty"`
}

// httpError carries a status code out of a handler helper.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.Query(req)
	if err != nil {
		status := http.StatusBadRequest
		var he *httpError
		if errors.As(err, &he) {
			status = he.status
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, resp)
}

// Query executes one query request against the current snapshot. It is
// exported so in-process callers (tests, embedding applications) can skip
// HTTP.
func (s *Server) Query(req QueryRequest) (*QueryResponse, error) {
	m, err := engine.ParseMeasure(req.Measure)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	e, err := s.engineFor(m)
	if err != nil {
		return nil, badRequest("building %s engine: %v", m, err)
	}
	snap := e.Snapshot()

	var pq *engine.PreparedQuery
	switch {
	case req.ID != nil && req.Series != nil:
		return nil, badRequest("id and series are mutually exclusive")
	case req.ID != nil:
		pos, ok := snap.PosOf(*req.ID)
		if !ok {
			return nil, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("no series with ID %d", *req.ID)}
		}
		pq, err = e.PrepareIndex(pos)
	case req.Series != nil:
		pq, err = e.Prepare(engine.Query{
			Values:  req.Series.Values,
			Sigma:   req.Series.Sigma,
			Samples: req.Series.Samples,
		})
	default:
		return nil, badRequest("the query needs an id or a series")
	}
	if err != nil {
		return nil, badRequest("preparing query: %v", err)
	}
	pq.Workers = s.clampWorkers(req.Workers)

	resp := &QueryResponse{Measure: m.String(), Type: req.Type, Epoch: snap.Epoch()}
	switch req.Type {
	case "topk":
		nn, err := pq.TopK(req.K)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		for _, n := range nn {
			resp.Neighbors = append(resp.Neighbors, NeighborJSON{ID: snap.IDAt(n.ID), Distance: n.Distance})
		}
	case "range":
		ids, err := pq.Range(req.Eps)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		resp.IDs = stableIDs(snap, ids)
	case "probrange":
		ids, err := pq.ProbRange(req.Eps, req.Tau)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		resp.IDs = stableIDs(snap, ids)
	case "probtopk":
		ms, err := pq.ProbTopK(req.Eps, req.K)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		for _, pm := range ms {
			resp.Matches = append(resp.Matches, MatchJSON{ID: snap.IDAt(pm.ID), Prob: pm.Prob})
		}
	default:
		return nil, badRequest("unknown query type %q (want topk, range, probtopk or probrange)", req.Type)
	}
	return resp, nil
}

func stableIDs(snap *corpus.Snapshot, positions []int) []int {
	out := make([]int, len(positions))
	for i, pos := range positions {
		out[i] = snap.IDAt(pos)
	}
	return out
}

func (s *Server) clampWorkers(requested int) int {
	w := requested
	if w <= 0 {
		w = s.opts.DefaultWorkers
	}
	if w > s.opts.MaxWorkers {
		w = s.opts.MaxWorkers
	}
	return w
}

// SeriesRequest is the wire form of POST /series: insertions and deletions
// applied as one atomic mutation — either everything lands in a single
// corpus epoch, or (e.g. on an unknown delete ID) nothing changes.
type SeriesRequest struct {
	Insert []SeriesJSON `json:"insert,omitempty"`
	Delete []int        `json:"delete,omitempty"`
}

// SeriesResponse reports the outcome of a /series mutation.
type SeriesResponse struct {
	// IDs are the stable corpus IDs of the inserted series, in input
	// order.
	IDs []int `json:"ids,omitempty"`
	// Deleted is the number of removed series.
	Deleted int `json:"deleted,omitempty"`
	// Epoch is the corpus epoch after the mutation.
	Epoch uint64 `json:"epoch"`
	// Series is the resident count after the mutation.
	Series int `json:"series"`
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SeriesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.Mutate(req)
	if err != nil {
		status := http.StatusBadRequest
		var he *httpError
		if errors.As(err, &he) {
			status = he.status
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, resp)
}

// Mutate applies one ingestion/deletion request as a single atomic corpus
// mutation: on any error (including an unknown delete ID) nothing is
// changed, so clients can retry safely.
func (s *Server) Mutate(req SeriesRequest) (*SeriesResponse, error) {
	if len(req.Insert) == 0 && len(req.Delete) == 0 {
		return nil, badRequest("nothing to insert or delete")
	}
	batch := make([]corpus.Series, len(req.Insert))
	for i, sj := range req.Insert {
		cs, err := sj.toCorpus()
		if err != nil {
			return nil, badRequest("series %d: %v", i, err)
		}
		batch[i] = cs
	}
	ids, err := s.c.Apply(batch, req.Delete)
	if err != nil {
		return nil, &httpError{status: statusForApplyError(err), msg: err.Error()}
	}
	snap := s.c.Snapshot()
	return &SeriesResponse{
		IDs:     ids,
		Deleted: len(req.Delete),
		Epoch:   snap.Epoch(),
		Series:  snap.Len(),
	}, nil
}

// statusForApplyError maps a corpus mutation error to an HTTP status:
// unknown-ID deletions are 404, everything else (validation) is 400.
func statusForApplyError(err error) int {
	if strings.Contains(err.Error(), "no series with ID") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// StatsResponse is the wire form of GET /stats.
type StatsResponse struct {
	// Series is the resident series count.
	Series int `json:"series"`
	// SeriesLen is the common series length.
	SeriesLen int `json:"series_len"`
	// Epoch is the current corpus epoch.
	Epoch uint64 `json:"epoch"`
	// Measures maps measure name to its cumulative engine counters.
	Measures map[string]MeasureStatsJSON `json:"measures,omitempty"`
}

// MeasureStatsJSON is the cumulative accounting of one measure's engines.
type MeasureStatsJSON struct {
	Candidates       int64  `json:"candidates"`
	Completed        int64  `json:"completed"`
	AbandonedEarly   int64  `json:"abandoned_early"`
	PrunedByEnvelope int64  `json:"pruned_by_envelope"`
	ResolvedByBounds int64  `json:"resolved_by_bounds"`
	ResolvedEarly    int64  `json:"resolved_early"`
	Summary          string `json:"summary"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.Stats())
}

// Stats assembles the /stats payload.
func (s *Server) Stats() *StatsResponse {
	snap := s.c.Snapshot()
	resp := &StatsResponse{
		Series:    snap.Len(),
		SeriesLen: snap.SeriesLen(),
		Epoch:     snap.Epoch(),
		Measures:  make(map[string]MeasureStatsJSON),
	}
	for name, st := range s.measureStats() {
		resp.Measures[name] = MeasureStatsJSON{
			Candidates:       st.Candidates,
			Completed:        st.Completed,
			AbandonedEarly:   st.AbandonedEarly,
			PrunedByEnvelope: st.PrunedByEnvelope,
			ResolvedByBounds: st.ResolvedByBounds,
			ResolvedEarly:    st.ResolvedEarly,
			Summary:          st.String(),
		}
	}
	return resp
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
