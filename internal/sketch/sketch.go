// Package sketch implements the coarse summary layer of the query engine:
// a fixed-width PAA (piecewise aggregate approximation) sketch row per
// resident series, stored in its own contiguous arena alongside the other
// columnar artifacts, and an iSAX-style split-on-overflow bucket tree over
// those rows. The engine walks the tree's buckets best-first by a sound
// lower bound before any exact kernel runs, so a query inspects a handful
// of buckets instead of every resident series.
//
// One sketch row serves every measure the engine indexes. Its layout, for
// series length N summarised into W segments with S MUNICH envelope
// segments, is
//
//		| paaV(W) | paaU(W) | paaE(W) | kLo(W) | kHi(W) | mLo(S) | mHi(S) | energy | sigmaMax | v0 | vLast |
//
//	  - paaV/paaU/paaE are the segment means of the raw observations and of
//	    the UMA/UEMA-filtered vectors (Euclidean, UMA, UEMA, PROUD bounds);
//	  - kLo/kHi are the segment means of the LB_Keogh lower and upper
//	    envelopes (banded DTW bounds, Keogh's LB_PAA form);
//	  - mLo/mHi copy the MUNICH segment envelope (bucket-level envelope
//	    bounds for the sample model; zero for series without samples, which
//	    only widens the bucket region and stays sound);
//	  - energy is the series' total squared-observation energy (PROUD upper
//	    bounds) and sigmaMax the largest per-timestamp reported error stddev
//	    (tracked for the bucket region; the PROUD bound itself uses the
//	    corpus' constant reported sigma, matching the exact arithmetic);
//	  - v0/vLast are the exact first and last observations. Every banded DTW
//	    warping path contains the aligned pairs (0, 0) and (N-1, N-1), so the
//	    endpoint gaps (q_0-c_0)^2 + (q_{N-1}-c_{N-1})^2 (LB_Kim's first/last
//	    terms) add soundly to any envelope bound evaluated over the interior
//	    timestamps only.
//
// A bucket's region is the elementwise [min, max] of its members' rows, so
// every per-measure bound reads the same two vectors:
//
//   - lock-step measures take MinDistSquared over the paa block — per
//     segment j, sum_{t in j} (q_t - c_t)^2 >= len_j (qbar_j - cbar_j)^2
//     by Jensen, and cbar_j lies inside [lo_j, hi_j], so the distance from
//     qbar_j to the interval lower-bounds the true squared distance;
//   - DTW sums the exact endpoint gaps against the [v0, vLast] intervals
//     with MinDistSquared over the INTERIOR segments of [kLo block of lo,
//     kHi block of hi] (the first and last segments are excluded so the
//     endpoint terms are never double-counted): for one member, sum_{t in j}
//     dist(q_t, [L_t, U_t])^2 >= len_j * dist(qbar_j, [Lbar_j, Ubar_j])^2 by
//     Cauchy-Schwarz, the bucket interval contains every member's
//     [Lbar_j, Ubar_j], and the whole chains under LB_Kim + LB_Keogh^2 <=
//     DTW^2. The engine additionally takes the max with the reverse bound
//     (candidate PAA means against the query's envelope means, via
//     IntervalMinDistSquared), sound by the symmetric argument;
//   - PROUD brackets every member's squared gap in [MinDistSquared,
//     2(E_q + max energy)] and pushes the interval through the same moment
//     bounds the per-candidate prefix pruning uses;
//   - MUNICH feeds [mLo block of lo, mHi block of hi] to the segment
//     envelope lower bound; above eps, every member's match probability is
//     exactly zero.
package sketch

import (
	"uncertts/internal/munich"
)

// Layout fixes the sketch-row geometry for one corpus: series length N
// summarised into W PAA segments, with S MUNICH envelope segments copied
// through. All rows of one arena share a Layout.
type Layout struct {
	// N is the series length.
	N int
	// W is the PAA segment count (1 <= W <= N).
	W int
	// S is the MUNICH envelope segment count carried in the row.
	S int
	// Spans holds the W half-open timestamp ranges [lo, hi) the PAA
	// segments cover — the same segment geometry MUNICH envelopes use.
	Spans [][2]int
}

// NewLayout resolves the layout for series length n with w PAA segments
// (clamped to n; <= 0 adopts the default 16) and s MUNICH segments.
func NewLayout(n, w, s int) Layout {
	if w <= 0 {
		w = DefaultSegments
	}
	w = munich.ClampSegments(n, w)
	return Layout{N: n, W: w, S: s, Spans: munich.SegmentSpans(n, w)}
}

// DefaultSegments is the PAA segment count a zero configuration adopts
// (clamped to the series length). The envelope blocks need this resolution
// for the DTW bound to bite at bench scale; the lock-step bounds would be
// happy with far fewer segments.
const DefaultSegments = 64

// DefaultLeafCap is the bucket-tree leaf capacity a zero configuration
// adopts. Small leaves keep bucket regions tight, so far buckets are
// skipped wholesale without reading any member row.
const DefaultLeafCap = 16

// Stride is the sketch-row length: five W-wide blocks, two S-wide blocks,
// energy, sigmaMax and the two endpoint observations.
func (l Layout) Stride() int { return 5*l.W + 2*l.S + 4 }

// Column offsets into a sketch row (or a bucket region vector).
func (l Layout) OffPAAV() int     { return 0 }
func (l Layout) OffPAAU() int     { return l.W }
func (l Layout) OffPAAE() int     { return 2 * l.W }
func (l Layout) OffKLo() int      { return 3 * l.W }
func (l Layout) OffKHi() int      { return 4 * l.W }
func (l Layout) OffMLo() int      { return 5 * l.W }
func (l Layout) OffMHi() int      { return 5*l.W + l.S }
func (l Layout) OffEnergy() int   { return 5*l.W + 2*l.S }
func (l Layout) OffSigmaMax() int { return 5*l.W + 2*l.S + 1 }
func (l Layout) OffV0() int       { return 5*l.W + 2*l.S + 2 }
func (l Layout) OffVLast() int    { return 5*l.W + 2*l.S + 3 }

// Interior returns the PAA spans with the first and last segments removed —
// the segment set DTW bounds sum over so the exact endpoint terms can be
// added without double counting. Nil when W < 3 (the endpoint terms then
// stand alone).
func (l Layout) Interior() [][2]int {
	if l.W < 3 {
		return nil
	}
	return l.Spans[1 : l.W-1]
}

// PAAInto writes the segment means of xs into dst (one per span). It never
// allocates.
func PAAInto(dst, xs []float64, spans [][2]int) {
	for j, sp := range spans {
		var acc float64
		for t := sp[0]; t < sp[1]; t++ {
			acc += xs[t]
		}
		dst[j] = acc / float64(sp[1]-sp[0])
	}
}

// PAA returns the segment means of xs over the given spans.
func PAA(xs []float64, spans [][2]int) []float64 {
	out := make([]float64, len(spans))
	PAAInto(out, xs, spans)
	return out
}

// FillRow computes one series' full sketch row into dst (length Stride),
// from the artifacts the corpus already maintains: the observation vector,
// the UMA/UEMA-filtered vectors, the LB_Keogh envelopes (summarised as
// segment means — LB_PAA), the MUNICH segment envelope (zero slices for
// series without samples), the total squared energy and the largest
// per-timestamp error stddev. It never allocates.
func (l Layout) FillRow(dst, values, uma, uema, upper, lower, envLo, envHi []float64, energy, sigmaMax float64) {
	w := l.W
	PAAInto(dst[:w], values, l.Spans)
	PAAInto(dst[w:2*w], uma, l.Spans)
	PAAInto(dst[2*w:3*w], uema, l.Spans)
	PAAInto(dst[3*w:4*w], lower, l.Spans)
	PAAInto(dst[4*w:5*w], upper, l.Spans)
	copy(dst[l.OffMLo():l.OffMLo()+l.S], envLo)
	copy(dst[l.OffMHi():l.OffMHi()+l.S], envHi)
	dst[l.OffEnergy()] = energy
	dst[l.OffSigmaMax()] = sigmaMax
	dst[l.OffV0()] = values[0]
	dst[l.OffVLast()] = values[l.N-1]
}

// MinDistSquared returns a lower bound on the squared lock-step distance
// between any series whose segment means lie in the per-segment intervals
// [lo_j, hi_j] and the query whose segment means are qpaa. Per segment j of
// width len_j, Jensen gives sum_{t in j} (q_t - c_t)^2 >= len_j (qbar_j -
// cbar_j)^2, and cbar_j in [lo_j, hi_j] lower-bounds (qbar_j - cbar_j)^2 by
// the squared distance from qbar_j to the interval — the classic PAA
// MinDist, weighted by the exact span widths so ragged segmentations stay
// sound.
func MinDistSquared(qpaa, lo, hi []float64, spans [][2]int) float64 {
	var acc float64
	for j, sp := range spans {
		v := qpaa[j]
		var d float64
		switch {
		case v < lo[j]:
			d = lo[j] - v
		case v > hi[j]:
			d = v - hi[j]
		default:
			continue
		}
		acc += float64(sp[1]-sp[0]) * d * d
	}
	return acc
}

// MinDistSquaredBounded evaluates MinDistSquared under an abandonment limit:
// it returns (the exact sum, false) when the sum stays within limit, or (the
// partial sum, true) at the first segment that pushes the accumulation over
// — a partial sum over the limit already proves the full (nonnegative) sum
// is, so the boolean is identical to comparing the full value against limit.
// Most candidates cross the limit within a few segments, which is what makes
// the indexed sweep affordable on a single core.
func MinDistSquaredBounded(qpaa, lo, hi []float64, spans [][2]int, limit float64) (float64, bool) {
	var acc float64
	for j, sp := range spans {
		v := qpaa[j]
		var d float64
		switch {
		case v < lo[j]:
			d = lo[j] - v
		case v > hi[j]:
			d = v - hi[j]
		default:
			continue
		}
		acc += float64(sp[1]-sp[0]) * d * d
		if acc > limit {
			return acc, true
		}
	}
	return acc, false
}

// MinDistSquaredOver reports whether MinDistSquared(qpaa, lo, hi, spans)
// exceeds limit — MinDistSquaredBounded's decision without the value.
func MinDistSquaredOver(qpaa, lo, hi []float64, spans [][2]int, limit float64) bool {
	_, over := MinDistSquaredBounded(qpaa, lo, hi, spans, limit)
	return over
}

// IntervalMinDistSquaredBounded evaluates IntervalMinDistSquared under an
// abandonment limit, with MinDistSquaredBounded's contract: (exact sum,
// false) within limit, (partial sum, true) once the accumulation exceeds it.
func IntervalMinDistSquaredBounded(alo, ahi, blo, bhi []float64, spans [][2]int, limit float64) (float64, bool) {
	var acc float64
	for j, sp := range spans {
		var d float64
		switch {
		case ahi[j] < blo[j]:
			d = blo[j] - ahi[j]
		case alo[j] > bhi[j]:
			d = alo[j] - bhi[j]
		default:
			continue
		}
		acc += float64(sp[1]-sp[0]) * d * d
		if acc > limit {
			return acc, true
		}
	}
	return acc, false
}

// IntervalMinDistSquaredOver reports whether IntervalMinDistSquared exceeds
// limit — IntervalMinDistSquaredBounded's decision without the value.
func IntervalMinDistSquaredOver(alo, ahi, blo, bhi []float64, spans [][2]int, limit float64) bool {
	_, over := IntervalMinDistSquaredBounded(alo, ahi, blo, bhi, spans, limit)
	return over
}

// IntervalMinDistSquared is MinDistSquared with an interval on both sides:
// per segment j, the squared gap between [alo_j, ahi_j] and [blo_j, bhi_j]
// (zero when they overlap), weighted by the span width. It lower-bounds
// MinDistSquared(x, blo, bhi, spans) for every x with x_j in [alo_j, ahi_j].
func IntervalMinDistSquared(alo, ahi, blo, bhi []float64, spans [][2]int) float64 {
	var acc float64
	for j, sp := range spans {
		var d float64
		switch {
		case ahi[j] < blo[j]:
			d = blo[j] - ahi[j]
		case alo[j] > bhi[j]:
			d = alo[j] - bhi[j]
		default:
			continue
		}
		acc += float64(sp[1]-sp[0]) * d * d
	}
	return acc
}
