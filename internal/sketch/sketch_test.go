package sketch

import (
	"math"
	"sort"
	"testing"

	"uncertts/internal/arena"
	"uncertts/internal/distance"
	"uncertts/internal/stats"
)

// genRow builds one synthetic series' sketch row plus the raw artifacts the
// bounds are checked against.
type genSeries struct {
	values, upper, lower []float64
}

func genRows(t *testing.T, lay Layout, b *arena.Builder, count int, seed int64) []genSeries {
	t.Helper()
	out := make([]genSeries, count)
	envLo := make([]float64, lay.S)
	envHi := make([]float64, lay.S)
	for i := range out {
		rng := stats.SplitRand(seed, int64(i))
		vals := make([]float64, lay.N)
		for t := range vals {
			vals[t] = math.Sin(float64(t)*(0.05+0.3*rng.Float64())) + 0.5*rng.NormFloat64()
		}
		upper, lower := distance.Envelope(vals, 3)
		uma := make([]float64, lay.N)
		uema := make([]float64, lay.N)
		for t := range vals {
			uma[t] = vals[t] * 0.9
			uema[t] = vals[t] * 1.1
		}
		var energy float64
		for _, v := range vals {
			energy += v * v
		}
		row := b.AppendZero()
		lay.FillRow(row, vals, uma, uema, upper, lower, envLo, envHi, energy, 0.4)
		out[i] = genSeries{values: vals, upper: upper, lower: lower}
	}
	return out
}

func TestLayoutGeometry(t *testing.T) {
	lay := NewLayout(100, 16, 8)
	if lay.W != 16 || lay.S != 8 {
		t.Fatalf("layout resolved W=%d S=%d, want 16, 8", lay.W, lay.S)
	}
	if got, want := lay.Stride(), 5*16+2*8+4; got != want {
		t.Fatalf("stride = %d, want %d", got, want)
	}
	if lay.OffVLast() != lay.Stride()-1 {
		t.Fatalf("vLast offset %d is not the last column of stride %d", lay.OffVLast(), lay.Stride())
	}
	if got := len(lay.Interior()); got != 14 {
		t.Fatalf("interior spans = %d, want 14 (W minus the two edge segments)", got)
	}
	if tiny := NewLayout(4, 2, 1); tiny.Interior() != nil {
		t.Fatalf("interior for W=2 should be nil, got %v", tiny.Interior())
	}
	// W clamps to short series; zero adopts the default.
	if short := NewLayout(5, 16, 2); short.W != 5 {
		t.Fatalf("W = %d for length 5, want clamp to 5", short.W)
	}
	if def := NewLayout(100, 0, 2); def.W != DefaultSegments {
		t.Fatalf("W = %d for zero config, want %d", def.W, DefaultSegments)
	}
	// Spans tile [0, N) exactly.
	covered := 0
	for _, sp := range lay.Spans {
		covered += sp[1] - sp[0]
	}
	if covered != lay.N {
		t.Fatalf("spans cover %d of %d timestamps", covered, lay.N)
	}
}

func TestPAAInto(t *testing.T) {
	spans := [][2]int{{0, 2}, {2, 5}}
	dst := make([]float64, 2)
	PAAInto(dst, []float64{1, 3, 2, 4, 6}, spans)
	if dst[0] != 2 || dst[1] != 4 {
		t.Fatalf("PAA = %v, want [2 4]", dst)
	}
}

// TestMinDistSoundness checks the per-measure bound chain on random data:
// the Euclidean bound under the true squared distance, and the DTW bound
// under LB_Keogh^2 (itself a lower bound on DTW^2).
func TestMinDistSoundness(t *testing.T) {
	lay := NewLayout(64, 8, 4)
	b := arena.NewBuilder(lay.Stride(), 0)
	series := genRows(t, lay, b, 40, 11)
	mat := b.Matrix()
	members := make([]Member, len(series))
	for i := range members {
		members[i] = Member{ID: i, Row: i}
	}
	tree := Build(lay, 8, members, mat)
	buckets := tree.Buckets()
	if len(buckets) < 2 {
		t.Fatalf("expected multiple buckets, got %d", len(buckets))
	}
	w := lay.W
	interior := lay.Interior()
	gap2 := func(v, lo, hi float64) float64 {
		switch {
		case v < lo:
			return (lo - v) * (lo - v)
		case v > hi:
			return (v - hi) * (v - hi)
		}
		return 0
	}
	var scratch distance.DTWScratch
	for qi := 0; qi < 10; qi++ {
		q := series[qi].values
		qpaa := PAA(q, lay.Spans)
		qu, ql := distance.Envelope(q, 3)
		quSeg, qlSeg := PAA(qu, lay.Spans), PAA(ql, lay.Spans)
		for _, bk := range buckets {
			eucl := MinDistSquared(qpaa, bk.Lo[:w], bk.Hi[:w], lay.Spans)
			kim := gap2(q[0], bk.Lo[lay.OffV0()], bk.Hi[lay.OffV0()]) +
				gap2(q[lay.N-1], bk.Lo[lay.OffVLast()], bk.Hi[lay.OffVLast()])
			fwd := MinDistSquared(qpaa[1:w-1], bk.Lo[3*w+1:4*w-1], bk.Hi[4*w+1:5*w-1], interior)
			rev := IntervalMinDistSquared(bk.Lo[1:w-1], bk.Hi[1:w-1], qlSeg[1:w-1], quSeg[1:w-1], interior)
			dtwLB := kim + math.Max(fwd, rev)
			for _, m := range bk.Members {
				s := series[m.ID]
				var d2, keogh2 float64
				for t := range q {
					gap := q[t] - s.values[t]
					d2 += gap * gap
					switch {
					case q[t] > s.upper[t]:
						g := q[t] - s.upper[t]
						keogh2 += g * g
					case q[t] < s.lower[t]:
						g := s.lower[t] - q[t]
						keogh2 += g * g
					}
				}
				if eucl > d2*(1+1e-12)+1e-12 {
					t.Fatalf("query %d member %d: Euclidean bound %g exceeds true d2 %g", qi, m.ID, eucl, d2)
				}
				dtwTrue, _, _ := distance.DTWBandEarlyAbandonScratch(q, s.values, 3, math.Inf(1), nil, &scratch)
				if dtwLB > dtwTrue*dtwTrue*(1+1e-12)+1e-12 {
					t.Fatalf("query %d member %d: DTW bound %g exceeds true DTW^2 %g (keogh2 %g)",
						qi, m.ID, dtwLB, dtwTrue*dtwTrue, keogh2)
				}
			}
		}
	}
}

// TestBoundedVariants pins the abandonment contract of the Bounded/Over
// forms against the eager sums: the decision must be identical to comparing
// the full value, and a surviving evaluation must return the exact sum.
func TestBoundedVariants(t *testing.T) {
	lay := NewLayout(64, 8, 4)
	b := arena.NewBuilder(lay.Stride(), 0)
	series := genRows(t, lay, b, 30, 5)
	mat := b.Matrix()
	members := make([]Member, len(series))
	for i := range members {
		members[i] = Member{ID: i, Row: i}
	}
	tree := Build(lay, 8, members, mat)
	w := lay.W
	for qi := 0; qi < 5; qi++ {
		qpaa := PAA(series[qi].values, lay.Spans)
		qu, ql := distance.Envelope(series[qi].values, 3)
		quSeg, qlSeg := PAA(qu, lay.Spans), PAA(ql, lay.Spans)
		for _, bk := range tree.Buckets() {
			full := MinDistSquared(qpaa, bk.Lo[:w], bk.Hi[:w], lay.Spans)
			ifull := IntervalMinDistSquared(bk.Lo[:w], bk.Hi[:w], qlSeg, quSeg, lay.Spans)
			for _, limit := range []float64{0, full / 2, full, full * 2, math.Inf(1)} {
				v, over := MinDistSquaredBounded(qpaa, bk.Lo[:w], bk.Hi[:w], lay.Spans, limit)
				if over != (full > limit) {
					t.Fatalf("MinDistSquaredBounded over=%v, want full %g > limit %g", over, full, limit)
				}
				if !over && v != full {
					t.Fatalf("MinDistSquaredBounded survived with %g, want exact %g", v, full)
				}
				if over != MinDistSquaredOver(qpaa, bk.Lo[:w], bk.Hi[:w], lay.Spans, limit) {
					t.Fatalf("MinDistSquaredOver disagrees with Bounded at limit %g", limit)
				}
				iv, iover := IntervalMinDistSquaredBounded(bk.Lo[:w], bk.Hi[:w], qlSeg, quSeg, lay.Spans, limit)
				if iover != (ifull > limit) {
					t.Fatalf("IntervalMinDistSquaredBounded over=%v, want full %g > limit %g", iover, ifull, limit)
				}
				if !iover && iv != ifull {
					t.Fatalf("IntervalMinDistSquaredBounded survived with %g, want exact %g", iv, ifull)
				}
				if iover != IntervalMinDistSquaredOver(bk.Lo[:w], bk.Hi[:w], qlSeg, quSeg, lay.Spans, limit) {
					t.Fatalf("IntervalMinDistSquaredOver disagrees with Bounded at limit %g", limit)
				}
			}
		}
	}
}

// TestLocate checks that descending by a member's own raw-value PAA symbols
// lands on the bucket that holds it — inserts descend the same way — and
// that the returned index is in Buckets() order.
func TestLocate(t *testing.T) {
	lay := NewLayout(32, 8, 4)
	b := arena.NewBuilder(lay.Stride(), 0)
	genRows(t, lay, b, 100, 7)
	mat := b.Matrix()
	members := make([]Member, 100)
	for i := range members {
		members[i] = Member{ID: i, Row: i}
	}
	tree := Build(lay, 8, members, mat)
	buckets := tree.Buckets()
	for _, m := range members {
		bi := tree.Locate(mat.Row(m.Row)[:lay.W])
		if bi < 0 || bi >= len(buckets) {
			t.Fatalf("Locate(member %d) = %d, want a bucket index in [0, %d)", m.ID, bi, len(buckets))
		}
		found := false
		for _, bm := range buckets[bi].Members {
			if bm.ID == m.ID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("Locate(member %d) = bucket %d, which does not hold it", m.ID, bi)
		}
	}
	if bi := NewTree(lay, 8).Locate(make([]float64, lay.W)); bi != -1 {
		t.Fatalf("Locate on empty tree = %d, want -1", bi)
	}
}

// collectIDs returns the sorted member IDs across all buckets, failing on
// duplicates.
func collectIDs(t *testing.T, tree *Tree) []int {
	t.Helper()
	seen := map[int]bool{}
	var ids []int
	for _, bk := range tree.Buckets() {
		for _, m := range bk.Members {
			if seen[m.ID] {
				t.Fatalf("member %d appears in two buckets", m.ID)
			}
			seen[m.ID] = true
			ids = append(ids, m.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

func TestTreeBuildInvariants(t *testing.T) {
	lay := NewLayout(32, 8, 4)
	b := arena.NewBuilder(lay.Stride(), 0)
	genRows(t, lay, b, 100, 7)
	mat := b.Matrix()
	members := make([]Member, 100)
	for i := range members {
		members[i] = Member{ID: i, Row: i}
	}
	tree := Build(lay, 8, members, mat)
	if tree.Len() != 100 {
		t.Fatalf("tree.Len() = %d, want 100", tree.Len())
	}
	ids := collectIDs(t, tree)
	if len(ids) != 100 || ids[0] != 0 || ids[99] != 99 {
		t.Fatalf("buckets cover %d members (%v...), want all 100", len(ids), ids[:min(5, len(ids))])
	}
	for _, bk := range tree.Buckets() {
		if len(bk.Members) > tree.LeafCap() {
			// Only identical-symbol leaves may overflow; random data can't.
			t.Fatalf("bucket holds %d members over cap %d", len(bk.Members), tree.LeafCap())
		}
		for _, m := range bk.Members {
			row := mat.Row(m.Row)
			for i, v := range row {
				if v < bk.Lo[i] || v > bk.Hi[i] {
					t.Fatalf("member %d column %d = %g outside region [%g, %g]", m.ID, i, v, bk.Lo[i], bk.Hi[i])
				}
			}
		}
	}
}

// TestTreePersistentUpdate checks that Update leaves the receiver intact
// and that incremental maintenance converges to the same member set as a
// bulk build.
func TestTreePersistentUpdate(t *testing.T) {
	lay := NewLayout(32, 8, 4)
	b := arena.NewBuilder(lay.Stride(), 0)
	genRows(t, lay, b, 60, 3)
	mat := b.Matrix()
	all := make([]Member, 60)
	for i := range all {
		all[i] = Member{ID: i, Row: i}
	}

	base := Build(lay, 4, all[:40], mat)
	baseIDs := collectIDs(t, base)

	// Delete ten, insert the remaining twenty, in one batch.
	next := base.Update(mat, all[40:], all[:10])
	if next.Len() != 50 {
		t.Fatalf("updated tree has %d members, want 50", next.Len())
	}
	nextIDs := collectIDs(t, next)
	want := make([]int, 0, 50)
	for i := 10; i < 60; i++ {
		want = append(want, i)
	}
	for i, id := range nextIDs {
		if id != want[i] {
			t.Fatalf("updated member set %v..., want %v...", nextIDs[:min(8, len(nextIDs))], want[:8])
		}
	}

	// The base version is untouched (persistence).
	afterIDs := collectIDs(t, base)
	if len(afterIDs) != len(baseIDs) {
		t.Fatalf("base tree changed under Update: %d members, had %d", len(afterIDs), len(baseIDs))
	}
	for i := range baseIDs {
		if afterIDs[i] != baseIDs[i] {
			t.Fatalf("base tree member set changed under Update")
		}
	}

	// Region containment still holds after churn.
	for _, bk := range next.Buckets() {
		for _, m := range bk.Members {
			row := mat.Row(m.Row)
			for i, v := range row {
				if v < bk.Lo[i] || v > bk.Hi[i] {
					t.Fatalf("post-update member %d column %d outside region", m.ID, i)
				}
			}
		}
	}
}

// TestTreeDegenerateSplit: identical rows cannot split and are left in one
// overflowing leaf rather than looping.
func TestTreeDegenerateSplit(t *testing.T) {
	lay := NewLayout(16, 4, 2)
	b := arena.NewBuilder(lay.Stride(), 0)
	row := make([]float64, lay.Stride())
	for i := range row {
		row[i] = 1.5
	}
	for i := 0; i < 20; i++ {
		b.Append(row)
	}
	mat := b.Matrix()
	members := make([]Member, 20)
	for i := range members {
		members[i] = Member{ID: i, Row: i}
	}
	tree := Build(lay, 4, members, mat)
	buckets := tree.Buckets()
	if len(buckets) != 1 || len(buckets[0].Members) != 20 {
		t.Fatalf("degenerate build produced %d buckets, want one overflowing leaf", len(buckets))
	}
}
