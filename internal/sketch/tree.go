package sketch

import (
	"uncertts/internal/arena"
)

// The bucket tree is an iSAX-style index over the sketch rows: leaves hold
// up to leafCap members, and a leaf that overflows splits on the raw-value
// PAA symbol with the widest extent at its midpoint — each split refines
// that symbol's quantisation by one bit, which is exactly iSAX's
// variable-cardinality idea expressed as a binary tree. Every node carries
// the elementwise [min, max] region of its members' full sketch rows; the
// engine's per-measure lower bounds read only those two vectors, so a
// bucket is admitted or skipped in O(W) regardless of its size.
//
// Trees are persistent (copy-on-write) with generation tags: Update bumps
// the generation and shallow-copies only the nodes it touches, so every
// published corpus snapshot keeps its own immutable tree while a batch of
// inserts and deletes amortises its path copies. A tree returned by Update
// or Build is never mutated again — snapshots may hold it indefinitely.
//
// Deletes descend by the removed member's own sketch row (the row is still
// resident in the arena until compaction), which lands on the same leaf the
// insert chose. Emptied leaves are kept (their region is cleared and
// Buckets skips them); compaction rebuilds the tree in bulk, which also
// rewires the members to the compacted arena rows.

// Member identifies one series in the tree: its stable corpus ID and its
// row in the sketch arena. On a dense snapshot the row equals the series'
// snapshot position; sparse snapshots resolve positions through the ID.
type Member struct {
	ID  int
	Row int
}

type node struct {
	gen    uint64
	lo, hi []float64 // elementwise region over the full stride; nil when empty

	members []Member // leaf payload; internal nodes keep it nil

	left, right *node // both nil for leaves, both set for internal nodes
	dim         int   // split symbol (internal nodes)
	thr         float64
}

func (n *node) leaf() bool { return n.left == nil }

// Tree is one immutable version of the bucket tree.
type Tree struct {
	lay     Layout
	leafCap int
	gen     uint64
	root    *node
	size    int
}

// NewTree returns an empty tree for the layout (leafCap <= 0 adopts
// DefaultLeafCap).
func NewTree(lay Layout, leafCap int) *Tree {
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	return &Tree{lay: lay, leafCap: leafCap}
}

// Layout returns the sketch-row geometry the tree indexes.
func (t *Tree) Layout() Layout { return t.lay }

// LeafCap returns the split-on-overflow leaf capacity.
func (t *Tree) LeafCap() int { return t.leafCap }

// Len returns the number of members.
func (t *Tree) Len() int { return t.size }

// Build bulk-builds a tree over the members: one oversized leaf split
// recursively — the same split rule the incremental path applies, so an
// incrementally maintained tree and a bulk-built one answer queries
// identically (bucket shapes may differ; every bound is sound for both).
func Build(lay Layout, leafCap int, members []Member, mat arena.Matrix) *Tree {
	t := NewTree(lay, leafCap)
	t.gen = 1
	if len(members) == 0 {
		return t
	}
	n := &node{gen: t.gen, members: append([]Member(nil), members...)}
	n.lo, n.hi = regionOf(n.members, mat, t.lay.Stride())
	t.splitOverflow(n, mat)
	t.root = n
	t.size = len(members)
	return t
}

// Update returns a new tree version with the deletes removed and the
// inserts added, reading member rows from mat. The receiver is left intact
// (persistent update); only nodes on the touched paths are copied.
func (t *Tree) Update(mat arena.Matrix, inserts, deletes []Member) *Tree {
	nt := &Tree{lay: t.lay, leafCap: t.leafCap, gen: t.gen + 1, root: t.root, size: t.size}
	for _, m := range deletes {
		nt.root = nt.remove(nt.root, m, mat.Row(m.Row), mat)
	}
	for _, m := range inserts {
		nt.root = nt.insert(nt.root, m, mat.Row(m.Row), mat)
	}
	return nt
}

// touch returns a node owned by the tree's generation, copying n (and its
// region and member storage, which later mutations write) when it belongs
// to an older version.
func (t *Tree) touch(n *node) *node {
	if n.gen == t.gen {
		return n
	}
	c := &node{gen: t.gen, left: n.left, right: n.right, dim: n.dim, thr: n.thr}
	if n.lo != nil {
		c.lo = append([]float64(nil), n.lo...)
		c.hi = append([]float64(nil), n.hi...)
	}
	if n.members != nil {
		c.members = append([]Member(nil), n.members...)
	}
	return c
}

func (t *Tree) insert(n *node, m Member, row []float64, mat arena.Matrix) *node {
	if n == nil {
		nn := &node{gen: t.gen, members: []Member{m}}
		nn.lo = append([]float64(nil), row...)
		nn.hi = append([]float64(nil), row...)
		t.size++
		return nn
	}
	n = t.touch(n)
	if n.leaf() {
		n.members = append(n.members, m)
		if n.lo == nil {
			n.lo = append([]float64(nil), row...)
			n.hi = append([]float64(nil), row...)
		} else {
			extendRegion(n.lo, n.hi, row)
		}
		t.size++
		t.splitOverflow(n, mat)
		return n
	}
	if row[n.dim] <= n.thr {
		n.left = t.insert(n.left, m, row, mat)
	} else {
		n.right = t.insert(n.right, m, row, mat)
	}
	unionRegion(n)
	return n
}

func (t *Tree) remove(n *node, m Member, row []float64, mat arena.Matrix) *node {
	if n == nil {
		return nil
	}
	n = t.touch(n)
	if n.leaf() {
		for i, mm := range n.members {
			if mm.ID == m.ID {
				n.members = append(n.members[:i], n.members[i+1:]...)
				t.size--
				n.lo, n.hi = regionOf(n.members, mat, t.lay.Stride())
				break
			}
		}
		return n
	}
	if row[n.dim] <= n.thr {
		n.left = t.remove(n.left, m, row, mat)
	} else {
		n.right = t.remove(n.right, m, row, mat)
	}
	unionRegion(n)
	return n
}

// splitOverflow splits a leaf that exceeds the capacity, recursively, on
// the widest raw-value PAA symbol at its midpoint. A leaf whose members all
// share identical symbols (zero extent on every dimension) cannot split and
// is left overflowing; a midpoint whose floating-point rounding would strand
// every member on one side likewise leaves the leaf intact.
func (t *Tree) splitOverflow(n *node, mat arena.Matrix) {
	if len(n.members) <= t.leafCap {
		return
	}
	best, bestExt := -1, 0.0
	for d := 0; d < t.lay.W; d++ {
		if ext := n.hi[d] - n.lo[d]; ext > bestExt {
			best, bestExt = d, ext
		}
	}
	if best < 0 {
		return
	}
	thr := n.lo[best] + (n.hi[best]-n.lo[best])/2
	var left, right []Member
	for _, m := range n.members {
		if mat.Row(m.Row)[best] <= thr {
			left = append(left, m)
		} else {
			right = append(right, m)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return
	}
	l := &node{gen: t.gen, members: left}
	l.lo, l.hi = regionOf(left, mat, t.lay.Stride())
	r := &node{gen: t.gen, members: right}
	r.lo, r.hi = regionOf(right, mat, t.lay.Stride())
	t.splitOverflow(l, mat)
	t.splitOverflow(r, mat)
	n.members = nil
	n.left, n.right = l, r
	n.dim, n.thr = best, thr
}

// regionOf computes the elementwise [min, max] region over the members'
// rows (nil, nil when there are none).
func regionOf(members []Member, mat arena.Matrix, stride int) (lo, hi []float64) {
	if len(members) == 0 {
		return nil, nil
	}
	first := mat.Row(members[0].Row)
	lo = append(make([]float64, 0, stride), first...)
	hi = append(make([]float64, 0, stride), first...)
	for _, m := range members[1:] {
		extendRegion(lo, hi, mat.Row(m.Row))
	}
	return lo, hi
}

func extendRegion(lo, hi, row []float64) {
	for i, v := range row {
		if v < lo[i] {
			lo[i] = v
		}
		if v > hi[i] {
			hi[i] = v
		}
	}
}

// unionRegion recomputes an internal node's region as the union of its
// children's (children may be empty after deletes).
func unionRegion(n *node) {
	l, r := n.left, n.right
	switch {
	case l.lo == nil && r.lo == nil:
		n.lo, n.hi = nil, nil
	case l.lo == nil:
		n.lo = append(n.lo[:0], r.lo...)
		n.hi = append(n.hi[:0], r.hi...)
	case r.lo == nil:
		n.lo = append(n.lo[:0], l.lo...)
		n.hi = append(n.hi[:0], l.hi...)
	default:
		n.lo = append(n.lo[:0], l.lo...)
		n.hi = append(n.hi[:0], l.hi...)
		extendRegion(n.lo, n.hi, r.lo)
		extendRegion(n.lo, n.hi, r.hi)
	}
}

// Bucket is one non-empty leaf as the engine consumes it: the region
// vectors and the member list, all aliasing the tree's immutable storage —
// callers must treat them as read-only.
type Bucket struct {
	Lo, Hi  []float64
	Members []Member
}

// Locate descends to the leaf a row with the given raw-value PAA symbols
// would land on — the query's "home" leaf, holding its nearest SAX
// neighbours — and returns its index in Buckets() order, or -1 when that
// leaf is empty (or the tree is). The engine seeds its top-k cut from this
// leaf: exact distances to SAX neighbours are near-final, which is what
// makes the early-abandoning bucket sweep bite. The point need not be
// resident; any vector's PAA works.
func (t *Tree) Locate(paa []float64) int {
	n := t.root
	if n == nil {
		return -1
	}
	for !n.leaf() {
		if paa[n.dim] <= n.thr {
			n = n.left
		} else {
			n = n.right
		}
	}
	if len(n.members) == 0 {
		return -1
	}
	idx := -1
	pos := 0
	var walk func(m *node)
	walk = func(m *node) {
		if m == nil || idx >= 0 {
			return
		}
		if m.leaf() {
			if m == n {
				idx = pos
			} else if len(m.members) > 0 {
				pos++
			}
			return
		}
		walk(m.left)
		walk(m.right)
	}
	walk(t.root)
	return idx
}

// Buckets returns the non-empty leaves in tree order. The engine collects
// them once per snapshot and ranks them per query by its measure's bound.
func (t *Tree) Buckets() []Bucket {
	var out []Bucket
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf() {
			if len(n.members) > 0 {
				out = append(out, Bucket{Lo: n.lo, Hi: n.hi, Members: n.members})
			}
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}
