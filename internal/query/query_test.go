package query

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"uncertts/internal/timeseries"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestEvaluateKnownCases(t *testing.T) {
	cases := []struct {
		name           string
		result, truth  []int
		p, r, f1       float64
		tp, fpos, fneg int
	}{
		{"perfect", []int{1, 2, 3}, []int{1, 2, 3}, 1, 1, 1, 3, 0, 0},
		{"half precision", []int{1, 2, 3, 4}, []int{1, 2}, 0.5, 1, 2.0 / 3, 2, 2, 0},
		{"half recall", []int{1}, []int{1, 2}, 1, 0.5, 2.0 / 3, 1, 0, 1},
		{"disjoint", []int{1}, []int{2}, 0, 0, 0, 0, 1, 1},
		{"both empty", nil, nil, 1, 1, 1, 0, 0, 0},
		{"empty result", nil, []int{1}, 0, 0, 0, 0, 0, 1},
		{"empty truth", []int{1}, nil, 0, 0, 0, 0, 1, 0},
	}
	for _, c := range cases {
		m := Evaluate(c.result, c.truth)
		if !almostEqual(m.Precision, c.p, 1e-12) || !almostEqual(m.Recall, c.r, 1e-12) || !almostEqual(m.F1, c.f1, 1e-12) {
			t.Errorf("%s: got p=%v r=%v f1=%v, want p=%v r=%v f1=%v",
				c.name, m.Precision, m.Recall, m.F1, c.p, c.r, c.f1)
		}
		if m.TruePositives != c.tp || m.FalsePositives != c.fpos || m.FalseNegatives != c.fneg {
			t.Errorf("%s: counts tp=%d fp=%d fn=%d, want %d/%d/%d",
				c.name, m.TruePositives, m.FalsePositives, m.FalseNegatives, c.tp, c.fpos, c.fneg)
		}
	}
}

func TestEvaluateDeduplicates(t *testing.T) {
	m := Evaluate([]int{1, 1, 1}, []int{1})
	if m.F1 != 1 {
		t.Errorf("duplicate IDs should collapse: %+v", m)
	}
}

func TestEvaluateF1IsHarmonicMean(t *testing.T) {
	f := func(result, truth []int8) bool {
		r := make([]int, len(result))
		for i, v := range result {
			r[i] = int(v)
		}
		tr := make([]int, len(truth))
		for i, v := range truth {
			tr[i] = int(v)
		}
		m := Evaluate(r, tr)
		if m.Precision+m.Recall == 0 {
			return m.F1 == 0 || (len(r) == 0 && len(tr) == 0)
		}
		want := 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		return almostEqual(m.F1, want, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mkCollection() []timeseries.Series {
	mk := func(id int, vals ...float64) timeseries.Series {
		s := timeseries.New(vals)
		s.ID = id
		return s
	}
	return []timeseries.Series{
		mk(0, 0, 0),
		mk(1, 1, 0),
		mk(2, 0, 2),
		mk(3, 3, 4),
	}
}

func TestNearestNeighbors(t *testing.T) {
	coll := mkCollection()
	nn, err := NearestNeighbors(coll[0], coll, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 || nn[0].ID != 1 || nn[1].ID != 2 {
		t.Errorf("nn = %+v, want ids 1 then 2", nn)
	}
	if !almostEqual(nn[0].Distance, 1, 1e-12) || !almostEqual(nn[1].Distance, 2, 1e-12) {
		t.Errorf("distances = %v, %v", nn[0].Distance, nn[1].Distance)
	}
	// Self excluded even when k exceeds the collection.
	all, err := NearestNeighbors(coll[0], coll, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("want 3 neighbours, got %d", len(all))
	}
	if _, err := NearestNeighbors(coll[0], coll, 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestKthNeighborDistance(t *testing.T) {
	coll := mkCollection()
	d, err := KthNeighborDistance(coll[0], coll, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 5, 1e-12) {
		t.Errorf("3rd NN distance = %v, want 5", d)
	}
	if _, err := KthNeighborDistance(coll[0], coll, 5); err == nil {
		t.Error("k beyond collection should error")
	}
}

func TestRangeQuery(t *testing.T) {
	coll := mkCollection()
	got, err := RangeQuery(coll[0], coll, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("range query = %v, want [1 2]", got)
	}
	// eps exactly at a distance includes the boundary.
	got, err = RangeQuery(coll[0], coll, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("boundary eps should include the exact hit: %v", got)
	}
	if _, err := RangeQuery(coll[0], coll, -1); err == nil {
		t.Error("negative eps should error")
	}
	if _, err := RangeQuery(coll[0], coll, math.NaN()); err == nil {
		t.Error("NaN eps should error")
	}
}

func TestRangeQueryLengthMismatch(t *testing.T) {
	coll := mkCollection()
	bad := timeseries.New([]float64{1, 2, 3})
	bad.ID = 9
	if _, err := RangeQuery(bad, coll, 1); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestRangeQueryFunc(t *testing.T) {
	dist := func(i int) (float64, error) { return float64(i), nil }
	got, err := RangeQueryFunc(5, 0, dist, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v, want [1 2]", got)
	}
	failing := func(i int) (float64, error) { return 0, errors.New("boom") }
	if _, err := RangeQueryFunc(3, 0, failing, 1); err == nil {
		t.Error("distance errors should propagate")
	}
	if _, err := RangeQueryFunc(3, 0, dist, -1); err == nil {
		t.Error("negative eps should error")
	}
}

func TestTopK(t *testing.T) {
	dist := func(i int) (float64, error) { return float64((i * 7) % 5), nil }
	got, err := TopK(5, 0, dist, 2)
	if err != nil {
		t.Fatal(err)
	}
	// distances: 1->2, 2->4, 3->1, 4->3. Top2: 3 (d=1), 1 (d=2).
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 1 {
		t.Errorf("topk = %+v", got)
	}
	if _, err := TopK(5, 0, dist, 0); err == nil {
		t.Error("k=0 should error")
	}
	over, err := TopK(3, 0, dist, 10)
	if err != nil || len(over) != 2 {
		t.Errorf("k over n should clamp: %v %v", over, err)
	}
	failing := func(i int) (float64, error) { return 0, errors.New("boom") }
	if _, err := TopK(3, 0, failing, 1); err == nil {
		t.Error("distance errors should propagate")
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	dist := func(i int) (float64, error) { return 1, nil }
	a, _ := TopK(6, 0, dist, 3)
	b, _ := TopK(6, 0, dist, 3)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("tied results must be deterministic")
		}
	}
	if a[0].ID != 1 || a[1].ID != 2 || a[2].ID != 3 {
		t.Errorf("ties should break by ID: %+v", a)
	}
}

func TestAverageMetrics(t *testing.T) {
	ms := []Metrics{
		{Precision: 1, Recall: 0.5, F1: 2.0 / 3, TruePositives: 1},
		{Precision: 0.5, Recall: 1, F1: 2.0 / 3, TruePositives: 3},
	}
	avg := AverageMetrics(ms)
	if !almostEqual(avg.Precision, 0.75, 1e-12) || !almostEqual(avg.Recall, 0.75, 1e-12) {
		t.Errorf("avg = %+v", avg)
	}
	if avg.TruePositives != 4 {
		t.Errorf("counts should sum: %d", avg.TruePositives)
	}
	if got := AverageMetrics(nil); got.F1 != 0 {
		t.Errorf("empty average = %+v", got)
	}
}

func TestF1s(t *testing.T) {
	ms := []Metrics{{F1: 0.5}, {F1: 1}}
	f1 := F1s(ms)
	if len(f1) != 2 || f1[0] != 0.5 || f1[1] != 1 {
		t.Errorf("F1s = %v", f1)
	}
}
