// Package query provides the similarity-matching task machinery of Section
// 4.1.2: ground-truth range queries over exact series, k-nearest-neighbour
// scans for threshold calibration, and the precision / recall / F1 metrics
// (Equation 14) used to score every technique.
package query

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"uncertts/internal/distance"
	"uncertts/internal/timeseries"
)

// Metrics holds precision, recall and their F1 combination.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	// TruePositives, FalsePositives and FalseNegatives expose the raw
	// confusion counts behind the ratios.
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Evaluate compares a result set against the ground truth (both sets of
// series IDs) and returns the metrics. Conventions for degenerate cases:
// empty truth and empty result is perfect (all ones); empty result against
// non-empty truth has recall 0; precision of an empty result is defined as
// 0 unless the truth is empty too.
func Evaluate(result, truth []int) Metrics {
	rset := make(map[int]bool, len(result))
	for _, id := range result {
		rset[id] = true
	}
	tset := make(map[int]bool, len(truth))
	for _, id := range truth {
		tset[id] = true
	}
	var tp, fp, fn int
	for id := range rset {
		if tset[id] {
			tp++
		} else {
			fp++
		}
	}
	for id := range tset {
		if !rset[id] {
			fn++
		}
	}
	m := Metrics{TruePositives: tp, FalsePositives: fp, FalseNegatives: fn}
	switch {
	case len(rset) == 0 && len(tset) == 0:
		m.Precision, m.Recall, m.F1 = 1, 1, 1
		return m
	case len(rset) == 0:
		return m // all zeros
	case len(tset) == 0:
		return m
	}
	m.Precision = float64(tp) / float64(tp+fp)
	m.Recall = float64(tp) / float64(tp+fn)
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Neighbor pairs a series ID with its distance from a query.
type Neighbor struct {
	ID       int
	Distance float64
}

// NearestNeighbors returns the k nearest series to q in the collection
// under Euclidean distance, excluding the series with q's own ID, sorted by
// ascending distance (ties broken by ID for determinism).
func NearestNeighbors(q timeseries.Series, collection []timeseries.Series, k int) ([]Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("query: k = %d must be positive", k)
	}
	neighbors := make([]Neighbor, 0, len(collection))
	for _, c := range collection {
		if c.ID == q.ID {
			continue
		}
		d, err := distance.Euclidean(q.Values, c.Values)
		if err != nil {
			return nil, fmt.Errorf("query: neighbour %d: %w", c.ID, err)
		}
		neighbors = append(neighbors, Neighbor{ID: c.ID, Distance: d})
	}
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].Distance != neighbors[j].Distance {
			return neighbors[i].Distance < neighbors[j].Distance
		}
		return neighbors[i].ID < neighbors[j].ID
	})
	if k > len(neighbors) {
		k = len(neighbors)
	}
	return neighbors[:k], nil
}

// KthNeighborDistance returns the distance to the k-th nearest neighbour of
// q; this is how the paper calibrates the per-query threshold eps ("we
// identify the 10th nearest neighbor of q in C ... we define eps_eucl as the
// Euclidean distance ... between q and c").
func KthNeighborDistance(q timeseries.Series, collection []timeseries.Series, k int) (float64, error) {
	nn, err := NearestNeighbors(q, collection, k)
	if err != nil {
		return 0, err
	}
	if len(nn) < k {
		return 0, fmt.Errorf("query: collection has only %d candidates, need %d", len(nn), k)
	}
	return nn[k-1].Distance, nil
}

// RangeQuery returns the IDs of all series within eps of q under Euclidean
// distance, excluding q's own ID. Applied to the exact (unperturbed) series
// it produces the ground-truth answer set of Section 4.1.2.
func RangeQuery(q timeseries.Series, collection []timeseries.Series, eps float64) ([]int, error) {
	if math.IsNaN(eps) || eps < 0 {
		return nil, errors.New("query: eps must be non-negative")
	}
	var out []int
	eps2 := eps * eps
	for _, c := range collection {
		if c.ID == q.ID {
			continue
		}
		d2, err := distance.SquaredEuclidean(q.Values, c.Values)
		if err != nil {
			return nil, fmt.Errorf("query: candidate %d: %w", c.ID, err)
		}
		if d2 <= eps2 {
			out = append(out, c.ID)
		}
	}
	return out, nil
}

// RangeQueryFunc runs a range query with an arbitrary distance function
// over opaque items; used to express every distance-based technique
// (Euclidean, DUST, UMA, UEMA) as the same task.
func RangeQueryFunc(n int, queryID int, dist func(i int) (float64, error), eps float64) ([]int, error) {
	if math.IsNaN(eps) || eps < 0 {
		return nil, errors.New("query: eps must be non-negative")
	}
	var out []int
	for i := 0; i < n; i++ {
		if i == queryID {
			continue
		}
		d, err := dist(i)
		if err != nil {
			return nil, fmt.Errorf("query: candidate %d: %w", i, err)
		}
		if d <= eps {
			out = append(out, i)
		}
	}
	return out, nil
}

// TopK returns the k items with smallest distance according to dist,
// excluding queryID, ties broken by index.
func TopK(n int, queryID int, dist func(i int) (float64, error), k int) ([]Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("query: k = %d must be positive", k)
	}
	neighbors := make([]Neighbor, 0, n)
	for i := 0; i < n; i++ {
		if i == queryID {
			continue
		}
		d, err := dist(i)
		if err != nil {
			return nil, fmt.Errorf("query: candidate %d: %w", i, err)
		}
		neighbors = append(neighbors, Neighbor{ID: i, Distance: d})
	}
	sort.Slice(neighbors, func(i, j int) bool {
		if neighbors[i].Distance != neighbors[j].Distance {
			return neighbors[i].Distance < neighbors[j].Distance
		}
		return neighbors[i].ID < neighbors[j].ID
	})
	if k > len(neighbors) {
		k = len(neighbors)
	}
	return neighbors[:k], nil
}

// AverageMetrics averages a slice of Metrics component-wise; experiments
// aggregate per-query metrics this way before plotting.
func AverageMetrics(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var out Metrics
	for _, m := range ms {
		out.Precision += m.Precision
		out.Recall += m.Recall
		out.F1 += m.F1
		out.TruePositives += m.TruePositives
		out.FalsePositives += m.FalsePositives
		out.FalseNegatives += m.FalseNegatives
	}
	n := float64(len(ms))
	out.Precision /= n
	out.Recall /= n
	out.F1 /= n
	return out
}

// F1s extracts the F1 column, for confidence-interval computation.
func F1s(ms []Metrics) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.F1
	}
	return out
}
