// Package wavelet implements the Haar discrete wavelet transform and a
// top-coefficient synopsis. PROUD was originally formulated over a Haar
// wavelet synopsis of the data stream (Section 4.3 of the paper); this
// package provides that substrate and an ablation point: PROUD over raw
// series versus PROUD over a synopsis.
package wavelet

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNotPowerOfTwo is returned when a transform input length is not a power
// of two.
var ErrNotPowerOfTwo = errors.New("wavelet: input length is not a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two >= n (n >= 1).
func NextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PadToPowerOfTwo returns xs extended to the next power-of-two length by
// repeating the final value, a standard boundary treatment that avoids
// introducing an artificial jump.
func PadToPowerOfTwo(xs []float64) []float64 {
	n := NextPowerOfTwo(len(xs))
	out := make([]float64, n)
	copy(out, xs)
	if len(xs) > 0 {
		last := xs[len(xs)-1]
		for i := len(xs); i < n; i++ {
			out[i] = last
		}
	}
	return out
}

// Non-power-of-two policy
//
// The strict Transform/Inverse pair rejects lengths that are not powers of
// two; TransformAny/InverseAny accept every positive length with a fixed,
// documented treatment:
//
//   - pad on analysis: the input is extended to the next power of two by
//     repeating its final value (PadToPowerOfTwo) — a continuation boundary
//     that introduces no artificial jump, so the detail coefficients near
//     the tail stay small;
//   - truncate on synthesis: InverseAny reconstructs the padded vector and
//     returns its first origLen points, which reproduces the original
//     series exactly (round-trip identity at any length).
//
// Parseval holds over the padded vector, not the original: coefficient-
// space distances lower-bound distances between padded representatives,
// which are not comparable across series padded from different lengths and
// over-weight the repeated tail at equal lengths. That is why the sketch
// index (internal/sketch) summarises series with span-based PAA — exact
// segment geometry at every length — instead of padded Haar coefficients;
// padded transforms are for synopsis compression (NewSynopsis), where the
// corpus pins one common length and the padding is shared by every series.

// TransformAny returns the orthonormal Haar DWT of xs at any positive
// length, applying the repeat-last padding policy above. The coefficient
// vector has length NextPowerOfTwo(len(xs)).
func TransformAny(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, errors.New("wavelet: TransformAny: empty input")
	}
	if IsPowerOfTwo(len(xs)) {
		return Transform(xs)
	}
	return Transform(PadToPowerOfTwo(xs))
}

// InverseAny inverts TransformAny: it reconstructs the padded series and
// truncates it back to origLen points (0 < origLen <= len(coeffs), with
// len(coeffs) a power of two no smaller than NextPowerOfTwo(origLen) would
// require).
func InverseAny(coeffs []float64, origLen int) ([]float64, error) {
	if origLen < 1 || origLen > len(coeffs) {
		return nil, fmt.Errorf("wavelet: InverseAny: length %d outside [1, %d]", origLen, len(coeffs))
	}
	full, err := Inverse(coeffs)
	if err != nil {
		return nil, err
	}
	return full[:origLen], nil
}

// Transform returns the orthonormal Haar DWT of xs, whose length must be a
// power of two. With the orthonormal normalisation, the transform preserves
// Euclidean distances exactly (Parseval), which is what makes a wavelet
// synopsis compatible with distance-based pruning.
func Transform(xs []float64) ([]float64, error) {
	n := len(xs)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("%w: %d", ErrNotPowerOfTwo, n)
	}
	out := make([]float64, n)
	copy(out, xs)
	buf := make([]float64, n)
	for length := n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a, b := out[2*i], out[2*i+1]
			buf[i] = (a + b) / math.Sqrt2
			buf[half+i] = (a - b) / math.Sqrt2
		}
		copy(out[:length], buf[:length])
	}
	return out, nil
}

// Inverse returns the inverse orthonormal Haar DWT.
func Inverse(coeffs []float64) ([]float64, error) {
	n := len(coeffs)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("%w: %d", ErrNotPowerOfTwo, n)
	}
	out := make([]float64, n)
	copy(out, coeffs)
	buf := make([]float64, n)
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			s, d := out[i], out[half+i]
			buf[2*i] = (s + d) / math.Sqrt2
			buf[2*i+1] = (s - d) / math.Sqrt2
		}
		copy(out[:length], buf[:length])
	}
	return out, nil
}

// Synopsis is a sparse top-k wavelet representation of a series.
type Synopsis struct {
	// N is the (power-of-two) length of the represented series.
	N int
	// Indices are the retained coefficient positions, ascending.
	Indices []int
	// Coeffs are the retained coefficient values, parallel to Indices.
	Coeffs []float64
}

// NewSynopsis transforms xs (padding to a power of two if needed) and keeps
// the k coefficients of largest magnitude. k is clamped to the transform
// length.
func NewSynopsis(xs []float64, k int) (*Synopsis, error) {
	if len(xs) == 0 {
		return nil, errors.New("wavelet: NewSynopsis: empty input")
	}
	padded := PadToPowerOfTwo(xs)
	coeffs, err := Transform(padded)
	if err != nil {
		return nil, err
	}
	if k > len(coeffs) {
		k = len(coeffs)
	}
	if k < 1 {
		k = 1
	}
	order := make([]int, len(coeffs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return math.Abs(coeffs[order[a]]) > math.Abs(coeffs[order[b]])
	})
	keep := order[:k]
	sort.Ints(keep)
	s := &Synopsis{N: len(coeffs), Indices: keep, Coeffs: make([]float64, k)}
	for i, idx := range keep {
		s.Coeffs[i] = coeffs[idx]
	}
	return s, nil
}

// Reconstruct returns the series approximation encoded by the synopsis,
// truncated to origLen points (pass s.N for the full padded length).
func (s *Synopsis) Reconstruct(origLen int) ([]float64, error) {
	if origLen < 0 || origLen > s.N {
		return nil, fmt.Errorf("wavelet: Reconstruct: length %d outside [0, %d]", origLen, s.N)
	}
	full := make([]float64, s.N)
	for i, idx := range s.Indices {
		full[idx] = s.Coeffs[i]
	}
	inv, err := Inverse(full)
	if err != nil {
		return nil, err
	}
	return inv[:origLen], nil
}

// Distance returns the Euclidean distance between two synopses computed in
// coefficient space. By Parseval this lower-bounds the true Euclidean
// distance between the represented series (it drops the energy of the
// discarded coefficients).
func Distance(a, b *Synopsis) (float64, error) {
	if a.N != b.N {
		return 0, fmt.Errorf("wavelet: Distance: synopsis lengths differ (%d vs %d)", a.N, b.N)
	}
	var acc float64
	i, j := 0, 0
	for i < len(a.Indices) && j < len(b.Indices) {
		switch {
		case a.Indices[i] == b.Indices[j]:
			d := a.Coeffs[i] - b.Coeffs[j]
			acc += d * d
			i++
			j++
		case a.Indices[i] < b.Indices[j]:
			acc += a.Coeffs[i] * a.Coeffs[i]
			i++
		default:
			acc += b.Coeffs[j] * b.Coeffs[j]
			j++
		}
	}
	for ; i < len(a.Indices); i++ {
		acc += a.Coeffs[i] * a.Coeffs[i]
	}
	for ; j < len(b.Indices); j++ {
		acc += b.Coeffs[j] * b.Coeffs[j]
	}
	return math.Sqrt(acc), nil
}
