package wavelet

import (
	"errors"
	"math"
	"testing"

	"uncertts/internal/stats"
)

// The corpus geometries the sketch index must serve: one short non-power
// length, one exact power of two, one long ragged length.
var anyLengths = []int{48, 128, 1000}

func genSeriesFor(n int, seed int64) []float64 {
	rng := stats.SplitRand(seed, int64(n))
	xs := make([]float64, n)
	for t := range xs {
		xs[t] = math.Sin(0.07*float64(t)) + 0.3*rng.NormFloat64()
	}
	return xs
}

func TestTransformAnyRoundTrip(t *testing.T) {
	for _, n := range anyLengths {
		xs := genSeriesFor(n, 5)
		coeffs, err := TransformAny(xs)
		if err != nil {
			t.Fatalf("length %d: TransformAny: %v", n, err)
		}
		if len(coeffs) != NextPowerOfTwo(n) {
			t.Fatalf("length %d: %d coefficients, want %d", n, len(coeffs), NextPowerOfTwo(n))
		}
		back, err := InverseAny(coeffs, n)
		if err != nil {
			t.Fatalf("length %d: InverseAny: %v", n, err)
		}
		if len(back) != n {
			t.Fatalf("length %d: reconstruction has %d points", n, len(back))
		}
		for i := range xs {
			if math.Abs(back[i]-xs[i]) > 1e-10 {
				t.Fatalf("length %d: round trip diverges at %d: %g vs %g", n, i, back[i], xs[i])
			}
		}
	}
}

func TestTransformAnyParsevalOverPadded(t *testing.T) {
	for _, n := range anyLengths {
		xs := genSeriesFor(n, 9)
		padded := PadToPowerOfTwo(xs)
		coeffs, err := TransformAny(xs)
		if err != nil {
			t.Fatalf("length %d: %v", n, err)
		}
		var ePad, eCoeff float64
		for _, v := range padded {
			ePad += v * v
		}
		for _, c := range coeffs {
			eCoeff += c * c
		}
		if math.Abs(ePad-eCoeff) > 1e-8*(1+ePad) {
			t.Fatalf("length %d: padded energy %g vs coefficient energy %g", n, ePad, eCoeff)
		}
	}
}

// The strict pair keeps rejecting ragged lengths — the Any variants are the
// only sanctioned entry point for them.
func TestStrictTransformStillRejects(t *testing.T) {
	for _, n := range []int{48, 1000} {
		if _, err := Transform(make([]float64, n)); !errors.Is(err, ErrNotPowerOfTwo) {
			t.Fatalf("Transform(%d) error = %v, want ErrNotPowerOfTwo", n, err)
		}
		if _, err := Inverse(make([]float64, n)); !errors.Is(err, ErrNotPowerOfTwo) {
			t.Fatalf("Inverse(%d) error = %v, want ErrNotPowerOfTwo", n, err)
		}
	}
	// 128 is a power of two: TransformAny must delegate without padding.
	coeffs, err := TransformAny(make([]float64, 128))
	if err != nil || len(coeffs) != 128 {
		t.Fatalf("TransformAny(128) = %d coeffs, err %v", len(coeffs), err)
	}
}

func TestInverseAnyValidation(t *testing.T) {
	coeffs := make([]float64, 64)
	if _, err := InverseAny(coeffs, 0); err == nil {
		t.Fatal("InverseAny accepted origLen 0")
	}
	if _, err := InverseAny(coeffs, 65); err == nil {
		t.Fatal("InverseAny accepted origLen beyond the coefficient length")
	}
	if _, err := TransformAny(nil); err == nil {
		t.Fatal("TransformAny accepted an empty input")
	}
}

// Padding repeats the final value, so a constant tail costs no detail
// energy: the synopsis of a ragged-length series stays compact.
func TestPadPolicyRepeatsLast(t *testing.T) {
	xs := genSeriesFor(48, 2)
	padded := PadToPowerOfTwo(xs)
	if len(padded) != 64 {
		t.Fatalf("padded length %d, want 64", len(padded))
	}
	for i := 48; i < 64; i++ {
		if padded[i] != xs[47] {
			t.Fatalf("pad value at %d is %g, want the final value %g", i, padded[i], xs[47])
		}
	}
}
