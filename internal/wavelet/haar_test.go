package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"uncertts/internal/distance"
	"uncertts/internal/stats"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestPowerOfTwoHelpers(t *testing.T) {
	for _, c := range []struct {
		n    int
		is   bool
		next int
	}{
		{1, true, 1}, {2, true, 2}, {3, false, 4}, {8, true, 8}, {9, false, 16},
	} {
		if IsPowerOfTwo(c.n) != c.is {
			t.Errorf("IsPowerOfTwo(%d) = %v", c.n, !c.is)
		}
		if NextPowerOfTwo(c.n) != c.next {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", c.n, NextPowerOfTwo(c.n), c.next)
		}
	}
	if IsPowerOfTwo(0) || IsPowerOfTwo(-4) {
		t.Error("non-positive n is never a power of two")
	}
}

func TestPadToPowerOfTwo(t *testing.T) {
	out := PadToPowerOfTwo([]float64{1, 2, 3})
	if len(out) != 4 || out[3] != 3 {
		t.Errorf("pad = %v", out)
	}
	if got := PadToPowerOfTwo(nil); len(got) != 1 {
		t.Errorf("empty pad should give the length-1 zero vector, got %v", got)
	}
}

func TestTransformRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		n := 1
		for n*2 <= len(raw) && n < 64 {
			n *= 2
		}
		xs := raw[:n]
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		coeffs, err := Transform(xs)
		if err != nil {
			return false
		}
		back, err := Inverse(coeffs)
		if err != nil {
			return false
		}
		for i := range xs {
			if !almostEqual(back[i], xs[i], 1e-9*(1+math.Abs(xs[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransformKnownValues(t *testing.T) {
	coeffs, err := Transform([]float64{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	want0 := 6 / math.Sqrt2
	want1 := 2 / math.Sqrt2
	if !almostEqual(coeffs[0], want0, 1e-12) || !almostEqual(coeffs[1], want1, 1e-12) {
		t.Errorf("coeffs = %v, want [%v %v]", coeffs, want0, want1)
	}
}

func TestTransformRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := Transform([]float64{1, 2, 3}); err == nil {
		t.Error("length 3 should be rejected")
	}
	if _, err := Inverse([]float64{1, 2, 3}); err == nil {
		t.Error("length 3 should be rejected")
	}
}

func TestParseval(t *testing.T) {
	// The orthonormal Haar transform preserves Euclidean distance.
	rng := stats.NewRand(9)
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	cx, _ := Transform(x)
	cy, _ := Transform(y)
	dOrig, _ := distance.Euclidean(x, y)
	dCoef, _ := distance.Euclidean(cx, cy)
	if !almostEqual(dOrig, dCoef, 1e-9) {
		t.Errorf("Parseval violated: %v vs %v", dOrig, dCoef)
	}
}

func TestSynopsisFullKeepIsExact(t *testing.T) {
	xs := []float64{1, 5, -2, 3, 0, 0, 2, 2}
	s, err := NewSynopsis(xs, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Reconstruct(len(xs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if !almostEqual(back[i], xs[i], 1e-9) {
			t.Errorf("full synopsis reconstruct differs at %d: %v vs %v", i, back[i], xs[i])
		}
	}
}

func TestSynopsisCompressionError(t *testing.T) {
	// Smooth signal: few coefficients capture most energy; reconstruction
	// error decreases as k grows.
	n := 128
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 32)
	}
	var prevErr float64 = math.Inf(1)
	for _, k := range []int{4, 16, 64, 128} {
		s, err := NewSynopsis(xs, k)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.Reconstruct(n)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := distance.Euclidean(xs, back)
		if d > prevErr+1e-9 {
			t.Errorf("reconstruction error should not grow with k: k=%d err=%v prev=%v", k, d, prevErr)
		}
		prevErr = d
	}
	if prevErr > 1e-9 {
		t.Errorf("k=n reconstruction should be exact, err=%v", prevErr)
	}
}

func TestSynopsisDistanceLowerBounds(t *testing.T) {
	rng := stats.NewRand(21)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 64)
		y := make([]float64, 64)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		sx, _ := NewSynopsis(x, 16)
		sy, _ := NewSynopsis(y, 16)
		approx, err := Distance(sx, sy)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := distance.Euclidean(x, y)
		// Synopsis distance uses only retained coefficients. When a
		// coefficient is retained by one side only, its full magnitude
		// enters, so the result is not a strict lower bound of the exact
		// distance in general — but it must be close and non-negative.
		if approx < 0 {
			t.Errorf("negative synopsis distance %v", approx)
		}
		if math.Abs(approx-exact) > 0.7*exact {
			t.Errorf("synopsis distance %v too far from exact %v", approx, exact)
		}
	}
}

func TestSynopsisErrors(t *testing.T) {
	if _, err := NewSynopsis(nil, 4); err == nil {
		t.Error("empty input should error")
	}
	s, err := NewSynopsis([]float64{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Coeffs) != 1 {
		t.Errorf("k<1 should clamp to 1, got %d", len(s.Coeffs))
	}
	if _, err := s.Reconstruct(99); err == nil {
		t.Error("over-long reconstruct should error")
	}
	other, _ := NewSynopsis([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 2)
	if _, err := Distance(s, other); err == nil {
		t.Error("mismatched synopsis lengths should error")
	}
}

func TestSynopsisNonPowerOfTwoInput(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5} // padded to 8
	s, err := NewSynopsis(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("padded length = %d, want 8", s.N)
	}
	back, err := s.Reconstruct(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if !almostEqual(back[i], xs[i], 1e-9) {
			t.Errorf("reconstruct[%d] = %v, want %v", i, back[i], xs[i])
		}
	}
}
