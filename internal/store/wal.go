package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The write-ahead log is a sequence of segment files wal-<seq>.log. Each
// segment starts with an 8-byte magic and carries length-prefixed,
// CRC-checksummed records:
//
//	segment: | magic "UWALSEG1" | record | record | ...
//	record:  | u32 payload len | u32 CRC32-C(payload) | payload |
//
// Records are appended and flushed atomically with respect to the reader
// protocol: a crash can only tear the final record of the newest segment
// (earlier segments are complete by construction — rotation happens only
// after a clean append). Recovery verifies every record's checksum,
// truncates the first torn or corrupt record of the newest segment, and
// treats anything after it as never written.

const (
	walMagic       = "UWALSEG1"
	walHeaderLen   = len(walMagic)
	recHeaderLen   = 8       // u32 length + u32 crc
	maxRecordBytes = 1 << 30 // sanity cap: a larger length is corruption
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseSegmentName returns the sequence number of a WAL segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the WAL segment sequence numbers present in dir, in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// walWriter appends records to the current segment, rotating to a new one
// when the configured size is exceeded. It is not internally locked; the
// Store serializes access.
type walWriter struct {
	dir      string
	segBytes int64
	f        *os.File
	seq      uint64
	size     int64
	dirty    bool // bytes written since the last fsync
}

// openWalWriter starts a fresh segment with the given sequence number.
func openWalWriter(dir string, seq uint64, segBytes int64) (*walWriter, error) {
	w := &walWriter{dir: dir, segBytes: segBytes}
	if err := w.startSegment(seq); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) startSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return err
	}
	w.f, w.seq, w.size, w.dirty = f, seq, int64(walHeaderLen), true
	return syncDir(w.dir)
}

// append frames and writes one record, rotating first if the segment is
// full. The record is pushed to the OS on return (a process crash cannot
// lose it); whether it is forced to disk is the Store's fsync policy.
func (w *walWriter) append(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("store: record of %d bytes exceeds the %d-byte cap", len(payload), maxRecordBytes)
	}
	if w.size > int64(walHeaderLen) && w.size+int64(recHeaderLen+len(payload)) > w.segBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	w.size += int64(recHeaderLen + len(payload))
	w.dirty = true
	return nil
}

// rotate finishes the current segment (fsynced so it is complete on disk
// before any record lands in the next one) and starts its successor.
func (w *walWriter) rotate() error {
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return w.startSegment(w.seq + 1)
}

// sync forces everything appended so far to disk.
func (w *walWriter) sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// readSegment scans one segment file and returns its complete records and
// the byte offset of the first torn or corrupt record (len of the file
// when none). A missing or short magic yields zero records with a torn
// offset of 0.
func readSegment(path string) (records [][]byte, tornAt int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < walHeaderLen || string(data[:walHeaderLen]) != walMagic {
		return nil, 0, nil
	}
	off := int64(walHeaderLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return records, off, nil
		}
		if len(rest) < recHeaderLen {
			return records, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecordBytes || int64(len(rest)) < int64(recHeaderLen)+n {
			return records, off, nil
		}
		payload := rest[recHeaderLen : int64(recHeaderLen)+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return records, off, nil
		}
		records = append(records, payload)
		off += int64(recHeaderLen) + n
	}
}

// recoverWAL reads every segment in order and returns the surviving
// records. Torn or corrupt data is tolerated only at the tail of the
// newest segment: when truncate is true the tail is cut off on disk (and a
// headerless newest segment deleted outright); in read-only recovery the
// files are left alone. A bad record in any older segment is real
// corruption and fails recovery.
func recoverWAL(dir string, truncate bool) ([][]byte, uint64, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, 0, err
	}
	var out [][]byte
	var maxSeq uint64
	for i, seq := range seqs {
		maxSeq = seq
		path := filepath.Join(dir, segmentName(seq))
		records, tornAt, err := readSegment(path)
		if err != nil {
			return nil, 0, err
		}
		complete, err := segmentComplete(path, tornAt)
		if err != nil {
			return nil, 0, err
		}
		if !complete {
			if i != len(seqs)-1 {
				return nil, 0, fmt.Errorf("store: segment %s is corrupt at offset %d but is not the newest segment", segmentName(seq), tornAt)
			}
			if truncate {
				if tornAt == 0 {
					if err := os.Remove(path); err != nil {
						return nil, 0, err
					}
				} else if err := truncateFile(path, tornAt); err != nil {
					return nil, 0, err
				}
			}
		}
		out = append(out, records...)
	}
	return out, maxSeq, nil
}

// segmentComplete reports whether the segment's records end exactly at the
// end of the file.
func segmentComplete(path string, tornAt int64) (bool, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return false, err
	}
	return tornAt == fi.Size() && fi.Size() >= int64(walHeaderLen), nil
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and file creations inside it are
// durable. Filesystems that refuse directory fsync cost durability of the
// namespace operation, not correctness of recovery, so the error is
// swallowed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	_ = d.Sync()
	return d.Close()
}
