package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"uncertts/internal/corpus"
	"uncertts/internal/engine"
)

// The crash-recovery property: whatever prefix of acknowledged mutations
// survives on disk, Open must recover a corpus that answers every query —
// all seven measures, several worker counts — bit-identically to an
// in-memory corpus that applied exactly that prefix. The tests below drive
// a mutation history against a durable store while mirroring it into a
// shadow (purely in-memory) corpus, fingerprinting the shadow after every
// mutation; then they simulate crashes by truncating or corrupting the WAL
// tail at chosen byte offsets and check the recovered corpus against the
// fingerprint of the surviving prefix.

// mutation is one scripted step of the crash tests.
type mutation struct {
	insert []corpus.Series
	delete []int
}

// crashScript returns a mutation history exercising batches, deletes and
// mixed atomic mutations. IDs are knowable up front because assignment is
// sequential: inserts receive 0,1,2,... in order.
func crashScript() []mutation {
	n, samples := 16, 3
	return []mutation{
		{insert: []corpus.Series{testSeries(0, n, samples), testSeries(1, n, samples), testSeries(2, n, samples)}},
		{insert: []corpus.Series{testSeries(3, n, samples), testSeries(4, n, samples)}},
		{delete: []int{1}},
		{insert: []corpus.Series{testSeries(5, n, samples), testSeries(6, n, samples)}, delete: []int{0, 3}},
		{insert: []corpus.Series{testSeries(7, n, samples)}},
		{delete: []int{2}},
	}
}

// runScript applies the script to the durable corpus and a shadow
// in-memory corpus in lockstep, returning the shadow's query fingerprint
// after every prefix (index = number of applied mutations) and the WAL
// byte size after every mutation.
func runScript(t *testing.T, s *Store, script []mutation) (refs []map[string]*engine.Result, boundaries []int64) {
	t.Helper()
	shadow := corpus.New(testConfig())
	refs = append(refs, queryFingerprint(t, shadow.Snapshot())) // epoch 0
	for i, m := range script {
		if _, err := s.Corpus().Apply(m.insert, m.delete); err != nil {
			t.Fatalf("mutation %d on durable corpus: %v", i+1, err)
		}
		if _, err := shadow.Apply(m.insert, m.delete); err != nil {
			t.Fatalf("mutation %d on shadow corpus: %v", i+1, err)
		}
		refs = append(refs, queryFingerprint(t, shadow.Snapshot()))
		boundaries = append(boundaries, walSize(t, s.dir))
	}
	return refs, boundaries
}

// walSize sums the sizes of every WAL segment in dir.
func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, seq := range seqs {
		fi, err := os.Stat(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// copyDir clones a store directory so each crash case mutilates its own
// copy.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// newestSegmentPath returns the path of the newest WAL segment.
func newestSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	return filepath.Join(dir, segmentName(seqs[len(seqs)-1]))
}

// verifyRecovery opens the (mutilated) directory and checks the recovered
// corpus answers bit-identically to the expected prefix, for every
// measure at workers {1, 2, 8}; it also proves recovery is stable (a
// second open answers the same) and that the store stays writable.
func verifyRecovery(t *testing.T, dir string, wantEpoch uint64, want map[string]*engine.Result) {
	t.Helper()
	for round := 0; round < 2; round++ {
		s, err := Open(dir, corpus.Config{}, Options{Sync: SyncAlways})
		if err != nil {
			t.Fatalf("recovery round %d: %v", round, err)
		}
		snap := s.Corpus().Snapshot()
		if snap.Epoch() != wantEpoch {
			s.Close()
			t.Fatalf("recovery round %d: epoch = %d, want %d", round, snap.Epoch(), wantEpoch)
		}
		if got := queryFingerprint(t, snap); !reflect.DeepEqual(got, want) {
			s.Close()
			t.Fatalf("recovery round %d: recovered corpus answers differently from the surviving prefix", round)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// The recovered store must accept new mutations and assign the ID the
	// recovered state implies.
	s, err := Open(dir, corpus.Config{}, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wantID := s.Corpus().Snapshot().NextID()
	id, err := s.Corpus().Insert(testSeries(42, 16, 3))
	if err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	if id != wantID {
		t.Fatalf("insert after recovery assigned ID %d, want %d", id, wantID)
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master, testConfig(), Options{Sync: SyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	script := crashScript()
	refs, boundaries := runScript(t, s, script)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	headerOnly := int64(walHeaderLen)
	for i := 0; i <= len(script); i++ {
		i := i
		// Crash exactly at a record boundary: mutations 1..i survive.
		end := headerOnly
		if i > 0 {
			end = boundaries[i-1]
		}
		t.Run(fmt.Sprintf("boundary-%d", i), func(t *testing.T) {
			dir := copyDir(t, master)
			if err := truncateFile(newestSegmentPath(t, dir), end); err != nil {
				t.Fatal(err)
			}
			verifyRecovery(t, dir, uint64(i), refs[i])
		})
		if i == len(script) {
			continue
		}
		// Crash mid-record i+1 (torn tail): only mutations 1..i survive.
		next := boundaries[i]
		for _, delta := range []int64{3, (next - end) / 2, next - end - 1} {
			if delta <= 0 || end+delta >= next {
				continue
			}
			delta := delta
			t.Run(fmt.Sprintf("torn-%d-plus-%d", i, delta), func(t *testing.T) {
				dir := copyDir(t, master)
				if err := truncateFile(newestSegmentPath(t, dir), end+delta); err != nil {
					t.Fatal(err)
				}
				verifyRecovery(t, dir, uint64(i), refs[i])
			})
		}
	}

	// A corrupted (bit-flipped, not short) tail record must also be
	// dropped: the checksum catches it and recovery keeps the prefix.
	t.Run("corrupt-tail-payload", func(t *testing.T) {
		dir := copyDir(t, master)
		path := newestSegmentPath(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-5] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		verifyRecovery(t, dir, uint64(len(script)-1), refs[len(script)-1])
	})
}

// TestCrashRecoveryAfterCheckpoint runs the same property across a
// checkpoint: the prefix covered by the checkpoint is always recovered
// from it, and the replayed suffix obeys the torn-tail rule.
func TestCrashRecoveryAfterCheckpoint(t *testing.T) {
	master := t.TempDir()
	s, err := Open(master, testConfig(), Options{Sync: SyncAlways, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	script := crashScript()
	mid := 4
	shadow := corpus.New(testConfig())
	refs := []map[string]*engine.Result{queryFingerprint(t, shadow.Snapshot())}
	var tailBounds []int64
	for i, m := range script {
		if _, err := s.Corpus().Apply(m.insert, m.delete); err != nil {
			t.Fatal(err)
		}
		if _, err := shadow.Apply(m.insert, m.delete); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, queryFingerprint(t, shadow.Snapshot()))
		if i+1 == mid {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if i+1 >= mid {
			tailBounds = append(tailBounds, walSize(t, s.dir))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// tailBounds[0] is the WAL size right after the checkpoint (suffix
	// empty), tailBounds[k] after k replayable mutations.
	for k := 0; k < len(tailBounds); k++ {
		k := k
		t.Run(fmt.Sprintf("suffix-%d", k), func(t *testing.T) {
			dir := copyDir(t, master)
			if err := truncateFile(newestSegmentPath(t, dir), tailBounds[k]); err != nil {
				t.Fatal(err)
			}
			verifyRecovery(t, dir, uint64(mid+k), refs[mid+k])
		})
		if k+1 < len(tailBounds) {
			t.Run(fmt.Sprintf("suffix-%d-torn", k), func(t *testing.T) {
				dir := copyDir(t, master)
				if err := truncateFile(newestSegmentPath(t, dir), tailBounds[k]+(tailBounds[k+1]-tailBounds[k])/2); err != nil {
					t.Fatal(err)
				}
				verifyRecovery(t, dir, uint64(mid+k), refs[mid+k])
			})
		}
	}

	// Destroying the WAL suffix entirely still recovers the checkpoint
	// state.
	t.Run("checkpoint-only", func(t *testing.T) {
		dir := copyDir(t, master)
		if err := os.Remove(newestSegmentPath(t, dir)); err != nil {
			t.Fatal(err)
		}
		verifyRecovery(t, dir, uint64(mid), refs[mid])
	})
}
