package store

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"uncertts/internal/corpus"
	"uncertts/internal/engine"
	"uncertts/internal/stats"
)

// testSeries builds a deterministic series with an error model and
// repeated observations, so every measure (including MUNICH) is servable.
func testSeries(i, n, samples int) corpus.Series {
	vals := make([]float64, n)
	errs := make([]stats.Dist, n)
	var obs [][]float64
	if samples > 0 {
		obs = make([][]float64, n)
	}
	for t := 0; t < n; t++ {
		vals[t] = math.Sin(float64(t+i)/3) + 0.1*float64(i)
		errs[t] = stats.NewNormal(0, 0.4+0.01*float64((i+t)%5))
		if samples > 0 {
			row := make([]float64, samples)
			for j := range row {
				// Deterministic pseudo-observations around the value.
				row[j] = vals[t] + 0.3*math.Sin(float64(i*31+t*7+j*13))
			}
			obs[t] = row
		}
	}
	return corpus.Series{Values: vals, Errors: errs, Samples: obs, Label: i % 3}
}

func testConfig() corpus.Config {
	return corpus.Config{Length: 16, ReportedSigma: 0.4}
}

// queryFingerprint runs every measure's canonical query at several worker
// counts and returns the results; two corpora with equal fingerprints
// answer bit-identically.
func queryFingerprint(t *testing.T, snap *corpus.Snapshot) map[string]*engine.Result {
	t.Helper()
	out := make(map[string]*engine.Result)
	if snap.Len() == 0 {
		return out
	}
	qi := 0
	eps := 4.0
	for _, m := range engine.Measures() {
		if m == engine.MeasureMUNICH && !snap.HasSamples() {
			continue
		}
		e, err := engine.NewFromSnapshot(snap, engine.Options{Measure: m})
		if err != nil {
			t.Fatalf("engine %s: %v", m, err)
		}
		for _, workers := range []int{1, 2, 8} {
			req := engine.Request{Measure: m, Index: &qi, Workers: workers}
			if m.Probabilistic() {
				req.Kind, req.Eps, req.Tau = engine.KindProbRange, eps, 0.2
			} else {
				req.Kind, req.K = engine.KindTopK, min(4, snap.Len())
			}
			res, err := e.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("query %s workers=%d: %v", m, workers, err)
			}
			out[m.String()+"/"+string(rune('0'+workers))] = res
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestOpenInsertReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Corpus()
	var batch []corpus.Series
	for i := 0; i < 6; i++ {
		batch = append(batch, testSeries(i, 16, 3))
	}
	ids, err := c.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ids[1], ids[4]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(testSeries(9, 16, 3)); err != nil {
		t.Fatal(err)
	}
	want := queryFingerprint(t, c.Snapshot())
	wantEpoch, wantNext := c.Snapshot().Epoch(), c.Snapshot().NextID()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, corpus.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap := s2.Corpus().Snapshot()
	if snap.Epoch() != wantEpoch || snap.NextID() != wantNext {
		t.Fatalf("recovered epoch/nextID = %d/%d, want %d/%d", snap.Epoch(), snap.NextID(), wantEpoch, wantNext)
	}
	got := queryFingerprint(t, snap)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered corpus answers differently from the original")
	}

	// The recovered corpus must keep assigning the IDs the original would
	// have.
	id, err := s2.Corpus().Insert(testSeries(11, 16, 3))
	if err != nil {
		t.Fatal(err)
	}
	if id != wantNext {
		t.Fatalf("post-recovery insert got ID %d, want %d", id, wantNext)
	}
}

func TestCheckpointCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so the WAL rotates during the test.
	s, err := Open(dir, testConfig(), Options{Sync: SyncAlways, SegmentBytes: 2048, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Corpus()
	for i := 0; i < 12; i++ {
		if _, err := c.Insert(testSeries(i, 16, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if seqs, _ := listSegments(dir); len(seqs) < 2 {
		t.Fatalf("expected rotated segments, got %d", len(seqs))
	}
	want := queryFingerprint(t, c.Snapshot())

	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listSegments(dir)
	if len(seqs) != 1 {
		t.Fatalf("checkpoint left %d WAL segments, want 1", len(seqs))
	}
	epochs, _ := listCheckpoints(dir)
	if len(epochs) != 1 || epochs[0] != c.Snapshot().Epoch() {
		t.Fatalf("checkpoints on disk = %v, want exactly [%d]", epochs, c.Snapshot().Epoch())
	}
	st := s.Status()
	if st.WALBytesSinceCheckpoint != 0 {
		t.Fatalf("WAL bytes since checkpoint = %d after checkpoint", st.WALBytesSinceCheckpoint)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, corpus.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := queryFingerprint(t, s2.Corpus().Snapshot()); !reflect.DeepEqual(got, want) {
		t.Fatal("corpus recovered from checkpoint answers differently")
	}
}

func TestMutationAfterCloseRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Corpus()
	if _, err := c.Insert(testSeries(0, 16, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(testSeries(1, 16, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: err = %v, want ErrClosed", err)
	}
	if c.Len() != 1 {
		t.Fatalf("rejected insert still mutated the corpus (len %d)", c.Len())
	}
}

func TestReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Corpus().Insert(testSeries(0, 16, 3)); err != nil {
		t.Fatal(err)
	}
	want := queryFingerprint(t, s.Corpus().Snapshot())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before := dirListing(t, dir)

	ro, err := Open(dir, corpus.Config{}, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := queryFingerprint(t, ro.Corpus().Snapshot()); !reflect.DeepEqual(got, want) {
		t.Fatal("read-only recovery answers differently")
	}
	if _, err := ro.Corpus().Insert(testSeries(1, 16, 3)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only insert: err = %v, want ErrReadOnly", err)
	}
	if after := dirListing(t, dir); !reflect.DeepEqual(before, after) {
		t.Fatalf("read-only open changed the directory:\nbefore %v\nafter  %v", before, after)
	}
	if !ro.Status().ReadOnly {
		t.Fatal("status does not report read-only")
	}
}

// dirListing maps file name to size for every file in dir.
func dirListing(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64)
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fi.Size()
	}
	return out
}

func TestUnsupportedDistributionAbortsMutation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := s.Corpus()
	emp, err := stats.NewEmpirical([]float64{-0.5, 0, 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := testSeries(0, 16, 0)
	for i := range bad.Errors {
		bad.Errors[i] = emp
	}
	if _, err := c.Insert(bad); err == nil {
		t.Fatal("insert with an unpersistable error distribution succeeded")
	}
	if c.Len() != 0 {
		t.Fatalf("aborted mutation still landed (len %d)", c.Len())
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	mix := stats.NewMixture(
		[]stats.Dist{stats.NewNormal(0, 0.3), stats.NewUniformByStdDev(0.5)},
		[]float64{0.2, 0.8},
	)
	s := testSeries(2, 8, 4)
	s.Errors[3] = mix
	s.Errors[4] = stats.NewExponentialByStdDev(0.7)
	plain := corpus.Series{Values: []float64{1, 2, 3, 4, 5, 6, 7, 8}, Label: -2}
	m := corpus.Mutation{
		Insert:  []corpus.Series{s, plain},
		Delete:  []int{7, 0, 12},
		FirstID: 42,
		Epoch:   99,
	}
	payload, err := encodeMutation(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeMutation(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, m)
	}
}

func TestRecoveryIgnoresCheckpointTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testConfig(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Corpus().Insert(testSeries(0, 16, 3)); err != nil {
		t.Fatal(err)
	}
	want := queryFingerprint(t, s.Corpus().Snapshot())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint: a stray temp file.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-123.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, corpus.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := queryFingerprint(t, s2.Corpus().Snapshot()); !reflect.DeepEqual(got, want) {
		t.Fatal("recovery with a temp file answers differently")
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint-123.tmp")); !os.IsNotExist(err) {
		t.Fatal("recovery left the checkpoint temp file behind")
	}
}

// TestReadsPreArenaV1Checkpoint proves backward compatibility of the
// checkpoint reader: a file in the legacy interleaved V1 format (magic
// UCKPT001, written before the columnar arena fast path existed) must
// recover into a corpus that answers every measure bit-identically.
func TestReadsPreArenaV1Checkpoint(t *testing.T) {
	c := corpus.New(testConfig())
	var batch []corpus.Series
	for i := 0; i < 5; i++ {
		batch = append(batch, testSeries(i, 16, 3))
	}
	if _, err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	want := queryFingerprint(t, snap)

	body, err := encodeCheckpointV1(snap)
	if err != nil {
		t.Fatal(err)
	}
	file := make([]byte, 0, len(ckptMagicV1)+4+len(body))
	file = append(file, ckptMagicV1...)
	file = binary.LittleEndian.AppendUint32(file, crc32.Checksum(body, crcTable))
	file = append(file, body...)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, checkpointName(snap.Epoch())), file, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, corpus.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := s.Corpus().Snapshot()
	if got.Epoch() != snap.Epoch() || got.NextID() != snap.NextID() {
		t.Fatalf("V1 recovery epoch/nextID = %d/%d, want %d/%d", got.Epoch(), got.NextID(), snap.Epoch(), snap.NextID())
	}
	if fp := queryFingerprint(t, got); !reflect.DeepEqual(fp, want) {
		t.Fatal("corpus recovered from a V1 checkpoint answers differently")
	}
	// Checkpointing the recovered corpus writes the modern columnar format,
	// which must round-trip as well.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, ok, err := loadNewestCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after upgrade: ok=%v err=%v", ok, err)
	}
	if st.epoch != snap.Epoch() || len(st.series) != snap.Len() {
		t.Fatalf("upgraded checkpoint epoch=%d series=%d, want %d/%d", st.epoch, len(st.series), snap.Epoch(), snap.Len())
	}
}
