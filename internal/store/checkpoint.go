package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"uncertts/internal/corpus"
)

// A checkpoint file serializes one full corpus state at a recorded epoch.
// Two format versions exist, distinguished by magic:
//
//	| magic "UCKPT002" | u32 CRC32-C(body) | body |
//	body: | u64 epoch | i64 nextID | config | u32 n |
//	      | u64 total | total x f64 |                  (all values, row-major)
//	      | n x (i64 id, label/errors/samples tail) |
//
// V2 is the arena fast path: every series' observation vector lives in one
// flat row-major block (n x length), written straight out of the corpus'
// columnar arena when the snapshot is dense and decoded as a single
// allocation whose rows are subslice views — so a bulk restore performs one
// block read plus one copy into the new corpus arena, instead of one
// allocation and one copy per series.
//
//	| magic "UCKPT001" | u32 CRC32-C(body) | body |
//	body: | u64 epoch | i64 nextID | config | u32 n | n x (i64 id, series) |
//
// V1 interleaves each series' values with its record. New checkpoints are
// always written as V2; readers accept both forever, so corpora
// checkpointed before the columnar refactor keep recovering.
//
// Checkpoints are written to a temporary file, fsynced, and renamed into
// place, so a crash mid-checkpoint leaves at worst an ignorable *.tmp —
// never a half-valid checkpoint. Recovery loads the newest checkpoint
// whose checksum validates and replays the WAL records past its epoch.
// The series records carry raw ingestion data, not derived artifacts:
// envelopes, filtered vectors, suffix energies and phi tables are cheap to
// rebuild through the corpus' incremental-maintenance path and would
// bloat the file many times over.

const (
	ckptMagicV1 = "UCKPT001"
	ckptMagic   = "UCKPT002"
)

func checkpointName(epoch uint64) string { return fmt.Sprintf("checkpoint-%016x.ckpt", epoch) }

// parseCheckpointName returns the epoch of a checkpoint file name.
func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	epoch, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt"), 16, 64)
	if err != nil {
		return 0, false
	}
	return epoch, true
}

// listCheckpoints returns the checkpoint epochs present in dir, newest
// first.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, e := range entries {
		if epoch, ok := parseCheckpointName(e.Name()); ok && !e.IsDir() {
			epochs = append(epochs, epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	return epochs, nil
}

// checkpointState is the decoded content of one checkpoint file.
type checkpointState struct {
	epoch  uint64
	nextID int
	cfg    corpus.Config
	series []corpus.RestoredSeries
}

// encodeCheckpoint renders a snapshot as a V2 (columnar) checkpoint body.
func encodeCheckpoint(snap *corpus.Snapshot) ([]byte, error) {
	var e enc
	e.u64(snap.Epoch())
	e.i64(int64(snap.NextID()))
	if err := e.config(snap.Config()); err != nil {
		return nil, err
	}
	n := snap.Len()
	e.u32(uint32(n))
	length := snap.SeriesLen()
	e.u64(uint64(n * length))
	if cols, ok := snap.Columns(); ok && cols.Values.Rows() == n {
		// Dense snapshot: the arena's backing array IS the block.
		e.f64Block(cols.Values.Data())
	} else {
		for i := 0; i < n; i++ {
			e.f64Block(snap.Entry(i).PDF.Observations)
		}
	}
	for i := 0; i < n; i++ {
		ent := snap.Entry(i)
		e.i64(int64(ent.ID))
		s := corpus.Series{Label: ent.PDF.Label}
		if ent.OwnErrors {
			s.Errors = ent.PDF.Errors
		}
		if ent.Samples != nil {
			s.Samples = ent.Samples.Samples
		}
		if err := e.seriesTail(s); err != nil {
			return nil, err
		}
	}
	return e.b, nil
}

// encodeCheckpointV1 renders the legacy interleaved body. The writer no
// longer emits it; it exists so the tests can fabricate pre-arena
// checkpoint files and prove the V1 reader keeps working.
func encodeCheckpointV1(snap *corpus.Snapshot) ([]byte, error) {
	var e enc
	e.u64(snap.Epoch())
	e.i64(int64(snap.NextID()))
	if err := e.config(snap.Config()); err != nil {
		return nil, err
	}
	e.u32(uint32(snap.Len()))
	for i := 0; i < snap.Len(); i++ {
		ent := snap.Entry(i)
		e.i64(int64(ent.ID))
		s := corpus.Series{Values: ent.PDF.Observations, Label: ent.PDF.Label}
		if ent.OwnErrors {
			s.Errors = ent.PDF.Errors
		}
		if ent.Samples != nil {
			s.Samples = ent.Samples.Samples
		}
		if err := e.series(s); err != nil {
			return nil, err
		}
	}
	return e.b, nil
}

// decodeCheckpoint parses a V2 (columnar) checkpoint body: the values
// block is decoded once and each restored series receives a subslice view
// into it, so the only per-series allocations are for optional error and
// sample models.
func decodeCheckpoint(body []byte) (checkpointState, error) {
	d := &dec{b: body}
	var st checkpointState
	st.epoch = d.u64()
	st.nextID = int(d.i64())
	st.cfg = d.config()
	if n, ok := d.sliceLen(8); ok {
		block := d.f64Block()
		length := st.cfg.Length
		if d.err == nil && len(block) != n*length {
			return checkpointState{}, fmt.Errorf("store: decode: values block holds %d floats, want %d series x length %d", len(block), n, length)
		}
		st.series = make([]corpus.RestoredSeries, 0, n)
		for i := 0; i < n; i++ {
			id := int(d.i64())
			s := d.seriesTail()
			if d.err != nil {
				break
			}
			s.Values = block[i*length : (i+1)*length]
			st.series = append(st.series, corpus.RestoredSeries{ID: id, Series: s})
		}
	}
	if d.err != nil {
		return checkpointState{}, d.err
	}
	if !d.done() {
		return checkpointState{}, fmt.Errorf("store: decode: %d trailing bytes after the checkpoint", len(d.b)-d.off)
	}
	return st, nil
}

// decodeCheckpointV1 parses the legacy interleaved body.
func decodeCheckpointV1(body []byte) (checkpointState, error) {
	d := &dec{b: body}
	var st checkpointState
	st.epoch = d.u64()
	st.nextID = int(d.i64())
	st.cfg = d.config()
	if n, ok := d.sliceLen(8); ok {
		st.series = make([]corpus.RestoredSeries, 0, n)
		for i := 0; i < n; i++ {
			id := int(d.i64())
			s := d.series()
			if d.err != nil {
				break
			}
			st.series = append(st.series, corpus.RestoredSeries{ID: id, Series: s})
		}
	}
	if d.err != nil {
		return checkpointState{}, d.err
	}
	if !d.done() {
		return checkpointState{}, fmt.Errorf("store: decode: %d trailing bytes after the checkpoint", len(d.b)-d.off)
	}
	return st, nil
}

// writeCheckpoint durably writes the snapshot as dir/checkpoint-<epoch>:
// temp file, fsync, rename, directory fsync.
func writeCheckpoint(dir string, snap *corpus.Snapshot) error {
	body, err := encodeCheckpoint(snap)
	if err != nil {
		return err
	}
	var hdr [len(ckptMagic) + 4]byte
	copy(hdr[:], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[len(ckptMagic):], crc32.Checksum(body, crcTable))

	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(hdr[:]); err != nil {
		cleanup()
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	final := filepath.Join(dir, checkpointName(snap.Epoch()))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (checkpointState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return checkpointState{}, err
	}
	if len(data) < len(ckptMagic)+4 {
		return checkpointState{}, fmt.Errorf("store: %s is not a checkpoint file", filepath.Base(path))
	}
	magic := string(data[:len(ckptMagic)])
	if magic != ckptMagic && magic != ckptMagicV1 {
		return checkpointState{}, fmt.Errorf("store: %s is not a checkpoint file", filepath.Base(path))
	}
	sum := binary.LittleEndian.Uint32(data[len(ckptMagic) : len(ckptMagic)+4])
	body := data[len(ckptMagic)+4:]
	if crc32.Checksum(body, crcTable) != sum {
		return checkpointState{}, fmt.Errorf("store: checkpoint %s fails its checksum", filepath.Base(path))
	}
	if magic == ckptMagicV1 {
		return decodeCheckpointV1(body)
	}
	return decodeCheckpoint(body)
}

// loadNewestCheckpoint finds the newest checkpoint in dir that validates,
// skipping over damaged ones (an interrupted compaction may have deleted
// the WAL covering an older checkpoint, but a damaged newest checkpoint
// with intact predecessors plus their WAL suffix still recovers). ok is
// false when dir has no usable checkpoint.
func loadNewestCheckpoint(dir string) (checkpointState, bool, error) {
	epochs, err := listCheckpoints(dir)
	if err != nil {
		return checkpointState{}, false, err
	}
	for _, epoch := range epochs {
		st, err := readCheckpoint(filepath.Join(dir, checkpointName(epoch)))
		if err != nil {
			continue
		}
		if st.epoch != epoch {
			continue
		}
		return st, true, nil
	}
	return checkpointState{}, false, nil
}
