package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"uncertts/internal/corpus"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
)

// The on-disk encoding is a flat little-endian byte stream: fixed-width
// primitives (u8/u32/u64/f64), u32-length-prefixed slices, and one
// presence byte in front of every optional field (so nil and empty stay
// distinct — the corpus treats them differently). Error distributions are
// a tagged union over the families the paper uses; anything else is
// rejected at append time, which aborts the mutation before it is
// acknowledged.

// Distribution tags of the dist union.
const (
	distNormal      = 1
	distUniform     = 2
	distExponential = 3
	distMixture     = 4
)

// maxSliceLen caps every decoded length so corrupted records cannot drive
// huge allocations: a length is only trusted if the remaining payload
// could possibly hold that many one-byte elements.
func (d *dec) sliceLen(elemSize int) (int, bool) {
	n := int(d.u32())
	if d.err != nil {
		return 0, false
	}
	if n < 0 || elemSize*n > len(d.b)-d.off {
		d.fail("slice length %d exceeds the remaining payload", n)
		return 0, false
	}
	return n, true
}

// enc appends primitives to a growing buffer. Encoding cannot fail except
// on an unsupported distribution, which the dist method reports.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) floats(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// f64Block appends raw float64s with no length prefix — the caller has
// already written the total. One grow, then straight stores: the bulk form
// for writing a whole arena in a single pass.
func (e *enc) f64Block(v []float64) {
	off := len(e.b)
	e.b = append(e.b, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(e.b[off+8*i:], math.Float64bits(x))
	}
}

func (e *enc) dist(d stats.Dist) error {
	switch v := d.(type) {
	case stats.Normal:
		e.u8(distNormal)
		e.f64(v.Mu)
		e.f64(v.Sigma)
	case stats.Uniform:
		e.u8(distUniform)
		e.f64(v.A)
		e.f64(v.B)
	case stats.Exponential:
		e.u8(distExponential)
		e.f64(v.Scale)
		e.f64(v.Shift)
	case stats.Mixture:
		e.u8(distMixture)
		e.u32(uint32(len(v.Components)))
		for i, c := range v.Components {
			if err := e.dist(c); err != nil {
				return err
			}
			e.f64(v.Weights[i])
		}
	default:
		return fmt.Errorf("store: error distribution %T is not persistable (want normal, uniform, exponential or a mixture of them)", d)
	}
	return nil
}

func (e *enc) dists(ds []stats.Dist) error {
	e.u32(uint32(len(ds)))
	for _, d := range ds {
		if err := e.dist(d); err != nil {
			return err
		}
	}
	return nil
}

// series encodes one ingestion record exactly as submitted: nil error
// models and nil sample models stay nil through a round trip, so replay
// walks the same defaulting paths the original insert did.
func (e *enc) series(s corpus.Series) error {
	e.floats(s.Values)
	e.i64(int64(s.Label))
	e.bool(s.Errors != nil)
	if s.Errors != nil {
		if err := e.dists(s.Errors); err != nil {
			return err
		}
	}
	e.bool(s.Samples != nil)
	if s.Samples != nil {
		e.u32(uint32(len(s.Samples)))
		for _, row := range s.Samples {
			e.floats(row)
		}
	}
	return nil
}

// seriesTail encodes a series record minus its values — the V2 checkpoint
// form, where every values vector lives in the shared flat block instead.
func (e *enc) seriesTail(s corpus.Series) error {
	e.i64(int64(s.Label))
	e.bool(s.Errors != nil)
	if s.Errors != nil {
		if err := e.dists(s.Errors); err != nil {
			return err
		}
	}
	e.bool(s.Samples != nil)
	if s.Samples != nil {
		e.u32(uint32(len(s.Samples)))
		for _, row := range s.Samples {
			e.floats(row)
		}
	}
	return nil
}

// config encodes the corpus artifact geometry. Checkpoints persist the
// resolved config, so recovery never re-derives length- or sigma-dependent
// defaults from data.
func (e *enc) config(cfg corpus.Config) error {
	e.i64(int64(cfg.Length))
	e.f64(cfg.ReportedSigma)
	e.bool(cfg.Sigmas != nil)
	if cfg.Sigmas != nil {
		e.floats(cfg.Sigmas)
	}
	e.bool(cfg.Errors != nil)
	if cfg.Errors != nil {
		if err := e.dists(cfg.Errors); err != nil {
			return err
		}
	}
	e.i64(int64(cfg.Band))
	e.i64(int64(cfg.Segments))
	e.i64(int64(cfg.W))
	e.f64(cfg.Lambda)
	e.i64(int64(cfg.Mode))
	e.i64(int64(cfg.DUST.TableSize))
	e.f64(cfg.DUST.MaxDelta)
	e.f64(cfg.DUST.TailWeight)
	e.f64(cfg.DUST.TailSpread)
	e.bool(cfg.DUST.Exact)
	e.f64(cfg.DUST.IntegrationTol)
	return nil
}

// encodeMutation renders one WAL record payload.
func encodeMutation(m corpus.Mutation) ([]byte, error) {
	var e enc
	e.u64(m.Epoch)
	e.i64(int64(m.FirstID))
	e.u32(uint32(len(m.Insert)))
	for _, s := range m.Insert {
		if err := e.series(s); err != nil {
			return nil, err
		}
	}
	e.u32(uint32(len(m.Delete)))
	for _, id := range m.Delete {
		e.i64(int64(id))
	}
	// Explicit ID assignments (ApplyAt mutations) ride in an optional
	// trailing section, so every record without one is byte-identical to
	// the pre-cluster format: old logs replay unchanged, and new logs
	// without explicit IDs stay readable by the old decoder.
	if len(m.IDs) > 0 {
		e.u32(uint32(len(m.IDs)))
		for _, id := range m.IDs {
			e.i64(int64(id))
		}
	}
	return e.b, nil
}

// dec reads primitives back out of a payload, latching the first error and
// returning zero values afterwards, so call sites read linearly and check
// once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("store: decode: "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated payload (want %d bytes at offset %d of %d)", n, d.off, len(d.b))
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) bool() bool   { return d.u8() != 0 }
func (d *dec) done() bool   { return d.err == nil && d.off == len(d.b) }

func (d *dec) floats() []float64 {
	n, ok := d.sliceLen(8)
	if !ok {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *dec) dist() stats.Dist {
	switch tag := d.u8(); tag {
	case distNormal:
		mu, sigma := d.f64(), d.f64()
		if d.err != nil {
			return nil
		}
		if sigma <= 0 || math.IsNaN(sigma) {
			d.fail("normal distribution with sigma %v", sigma)
			return nil
		}
		return stats.Normal{Mu: mu, Sigma: sigma}
	case distUniform:
		a, b := d.f64(), d.f64()
		if d.err != nil {
			return nil
		}
		if !(b > a) {
			d.fail("uniform distribution with empty support [%v, %v]", a, b)
			return nil
		}
		return stats.Uniform{A: a, B: b}
	case distExponential:
		scale, shift := d.f64(), d.f64()
		if d.err != nil {
			return nil
		}
		if scale <= 0 || math.IsNaN(scale) {
			d.fail("exponential distribution with scale %v", scale)
			return nil
		}
		return stats.Exponential{Scale: scale, Shift: shift}
	case distMixture:
		n, ok := d.sliceLen(1)
		if !ok {
			return nil
		}
		if n == 0 {
			d.fail("empty mixture")
			return nil
		}
		comps := make([]stats.Dist, n)
		weights := make([]float64, n)
		for i := range comps {
			comps[i] = d.dist()
			weights[i] = d.f64()
			if d.err != nil {
				return nil
			}
			if weights[i] < 0 || math.IsNaN(weights[i]) {
				d.fail("mixture weight %v", weights[i])
				return nil
			}
		}
		return stats.Mixture{Components: comps, Weights: weights}
	default:
		d.fail("unknown distribution tag %d", tag)
		return nil
	}
}

func (d *dec) dists() []stats.Dist {
	n, ok := d.sliceLen(1)
	if !ok {
		return nil
	}
	out := make([]stats.Dist, n)
	for i := range out {
		out[i] = d.dist()
		if d.err != nil {
			return nil
		}
	}
	return out
}

func (d *dec) series() corpus.Series {
	var s corpus.Series
	s.Values = d.floats()
	s.Label = int(d.i64())
	if d.bool() {
		s.Errors = d.dists()
	}
	if d.bool() {
		n, ok := d.sliceLen(4)
		if !ok {
			return s
		}
		s.Samples = make([][]float64, n)
		for i := range s.Samples {
			s.Samples[i] = d.floats()
		}
	}
	return s
}

// f64Block reads a u64 count followed by that many raw float64s — the
// decode counterpart of enc.f64Block plus its preceding total, converted in
// one pass into a single allocation.
func (d *dec) f64Block() []float64 {
	n := int(d.u64())
	if d.err != nil {
		return nil
	}
	if n < 0 || 8*n > len(d.b)-d.off {
		d.fail("values block length %d exceeds the remaining payload", n)
		return nil
	}
	b := d.take(8 * n)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// seriesTail decodes a V2 series record; Values is left nil for the caller
// to attach from the shared block.
func (d *dec) seriesTail() corpus.Series {
	var s corpus.Series
	s.Label = int(d.i64())
	if d.bool() {
		s.Errors = d.dists()
	}
	if d.bool() {
		n, ok := d.sliceLen(4)
		if !ok {
			return s
		}
		s.Samples = make([][]float64, n)
		for i := range s.Samples {
			s.Samples[i] = d.floats()
		}
	}
	return s
}

func (d *dec) config() corpus.Config {
	var cfg corpus.Config
	cfg.Length = int(d.i64())
	cfg.ReportedSigma = d.f64()
	if d.bool() {
		cfg.Sigmas = d.floats()
	}
	if d.bool() {
		cfg.Errors = d.dists()
	}
	cfg.Band = int(d.i64())
	cfg.Segments = int(d.i64())
	cfg.W = int(d.i64())
	cfg.Lambda = d.f64()
	cfg.Mode = timeseries.WeightMode(d.i64())
	cfg.DUST.TableSize = int(d.i64())
	cfg.DUST.MaxDelta = d.f64()
	cfg.DUST.TailWeight = d.f64()
	cfg.DUST.TailSpread = d.f64()
	cfg.DUST.Exact = d.bool()
	cfg.DUST.IntegrationTol = d.f64()
	return cfg
}

// decodeMutation parses one WAL record payload.
func decodeMutation(payload []byte) (corpus.Mutation, error) {
	d := &dec{b: payload}
	var m corpus.Mutation
	m.Epoch = d.u64()
	m.FirstID = int(d.i64())
	if n, ok := d.sliceLen(1); ok && n > 0 {
		m.Insert = make([]corpus.Series, n)
		for i := range m.Insert {
			m.Insert[i] = d.series()
			if d.err != nil {
				break
			}
		}
	}
	if n, ok := d.sliceLen(8); ok && n > 0 {
		m.Delete = make([]int, n)
		for i := range m.Delete {
			m.Delete[i] = int(d.i64())
		}
	}
	// Optional explicit-ID section (absent in pre-cluster records).
	if d.err == nil && d.off < len(d.b) {
		if n, ok := d.sliceLen(8); ok && n > 0 {
			m.IDs = make([]int, n)
			for i := range m.IDs {
				m.IDs[i] = int(d.i64())
			}
		}
	}
	if d.err != nil {
		return corpus.Mutation{}, d.err
	}
	if !d.done() {
		return corpus.Mutation{}, fmt.Errorf("store: decode: %d trailing bytes after the mutation", len(d.b)-d.off)
	}
	return m, nil
}
