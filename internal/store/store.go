// Package store makes a corpus durable: an append-only, checksummed
// write-ahead log of corpus mutations, periodic checkpoint snapshots, and
// a recovery path that reconstructs the exact pre-crash corpus.
//
// The design leans on two properties of the corpus layer:
//
//   - Mutations are deterministic given their record. The corpus assigns
//     stable IDs and epochs sequentially, so a logged mutation carrying
//     its first assigned ID and epoch replays bit-identically — recovery
//     needs no undo information and no index state.
//
//   - Derived artifacts are functions of raw series. Checkpoints persist
//     only ingestion records (observations, error models, samples);
//     LB_Keogh envelopes, filtered vectors, suffix energies and DUST phi
//     tables are rebuilt through the same incremental-maintenance code
//     inserts use. Files stay compact and recovery stays exact.
//
// Write-ahead ordering is enforced by the corpus hook: every mutation is
// encoded, appended and (under the "always" fsync policy) forced to disk
// before its snapshot publishes — a mutation is acknowledged to a client
// only after the log accepted it. Recovery loads the newest valid
// checkpoint, replays the WAL records past its epoch, and truncates a
// torn tail record left by a crash mid-append. Checkpoints rotate the log
// first and serialize a barrier snapshot second, so every record in the
// finished segments is covered by the checkpoint and the segments can be
// compacted away.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"uncertts/internal/corpus"
)

// Sentinel errors of the store surface.
var (
	// ErrClosed marks an operation on a closed store; mutations against
	// the corpus of a closed store are rejected (and therefore not lost).
	ErrClosed = errors.New("store: closed")
	// ErrReadOnly marks a mutation against a corpus opened read-only.
	ErrReadOnly = errors.New("store: read-only")
)

// SyncPolicy selects when WAL appends are forced to disk.
type SyncPolicy int

const (
	// SyncInterval batches fsyncs on a timer (default 100ms): a process
	// crash loses nothing (records are in the OS page cache), an OS crash
	// can lose up to one interval of acknowledged mutations. The
	// throughput choice.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs every record before the mutation is acknowledged:
	// no acknowledged mutation survives in memory only. The durability
	// choice.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy resolves a policy name ("always", "interval").
func ParseSyncPolicy(name string) (SyncPolicy, error) {
	switch strings.ToLower(name) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always or interval)", name)
	}
}

// Options configures a Store.
type Options struct {
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the fsync period of SyncInterval (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the WAL to a fresh segment once the current one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// CheckpointBytes triggers a background checkpoint once this many WAL
	// bytes accumulate past the last checkpoint (default 8 MiB; negative
	// disables automatic checkpoints).
	CheckpointBytes int64
	// ReadOnly recovers the corpus without touching the directory: no
	// torn-tail truncation, no new segment, and every further mutation is
	// rejected with ErrReadOnly.
	ReadOnly bool
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 8 << 20
	}
	return o
}

// Store is the durability engine behind one corpus. All methods are safe
// for concurrent use, and the corpus it returns may be mutated and queried
// concurrently as usual — appends ride the corpus write lock, checkpoints
// serialize a barrier snapshot without blocking readers.
type Store struct {
	dir  string
	opts Options
	c    *corpus.Corpus

	mu            sync.Mutex // guards the writer and counters below
	w             *walWriter
	closed        bool
	failed        error // first log write/sync failure; latches the store
	walBytes      int64 // bytes appended (or replayed past the checkpoint)
	ckptMark      int64 // walBytes at the last completed checkpoint
	lastCkptEpoch uint64
	ckptPending   bool
	lastErr       error // last background sync/checkpoint failure

	ckptMu sync.Mutex // serializes checkpoint writers

	stopCh chan struct{}
	ckptCh chan struct{}
	wg     sync.WaitGroup
}

// Open opens (or creates) the durable corpus at dir and recovers its
// state: the newest valid checkpoint is loaded, the WAL records past its
// epoch are replayed through the corpus' own mutation path, a torn tail
// record is truncated, and a fresh WAL segment is started for new
// mutations. cfg is consulted only when the directory holds no usable
// checkpoint (a brand-new store, or one whose every checkpoint is
// damaged); otherwise the persisted configuration wins. The returned
// store is already wired: every mutation of Corpus() is logged with
// write-ahead ordering.
func Open(dir string, cfg corpus.Config, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		removeTempFiles(dir)
	}

	st, haveCkpt, err := loadNewestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	var c *corpus.Corpus
	if haveCkpt {
		c, err = corpus.Restore(st.cfg, st.series, st.nextID, st.epoch)
	} else {
		c, err = corpus.Restore(cfg, nil, 0, 0)
	}
	if err != nil {
		return nil, fmt.Errorf("store: restoring checkpoint: %w", err)
	}

	payloads, maxSeq, err := recoverWAL(dir, !opts.ReadOnly)
	if err != nil {
		return nil, err
	}
	var replayedBytes int64
	for _, p := range payloads {
		m, err := decodeMutation(p)
		if err != nil {
			return nil, fmt.Errorf("store: replaying WAL: %w", err)
		}
		if m.Epoch <= c.Snapshot().Epoch() {
			continue // covered by the checkpoint
		}
		if err := c.Replay(m); err != nil {
			return nil, fmt.Errorf("store: replaying WAL: %w", err)
		}
		replayedBytes += int64(recHeaderLen + len(p))
	}

	s := &Store{
		dir:           dir,
		opts:          opts,
		c:             c,
		walBytes:      replayedBytes,
		lastCkptEpoch: st.epoch,
		stopCh:        make(chan struct{}),
		ckptCh:        make(chan struct{}, 1),
	}
	if opts.ReadOnly {
		s.closed = true
		c.SetHook(func(corpus.Mutation) error { return ErrReadOnly })
		return s, nil
	}

	if !haveCkpt {
		// Persist the founding configuration immediately so a reopen never
		// depends on the caller passing the same cfg again.
		if err := writeCheckpoint(dir, c.BarrierSnapshot()); err != nil {
			return nil, err
		}
		s.lastCkptEpoch = c.Snapshot().Epoch()
		s.walBytes = 0
	}

	w, err := openWalWriter(dir, maxSeq+1, opts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	s.w = w
	c.SetHook(s.append)

	s.wg.Add(1)
	go s.background()
	return s, nil
}

// Corpus returns the recovered, persistence-wired corpus.
func (s *Store) Corpus() *corpus.Corpus { return s.c }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// append is the corpus hook: it runs under the corpus write lock, before
// the mutation's snapshot publishes. An error here aborts the mutation.
func (s *Store) append(m corpus.Mutation) error {
	payload, err := encodeMutation(m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return fmt.Errorf("store: log failed earlier, mutations disabled until the store is reopened: %w", s.failed)
	}
	// A failed write or fsync latches the store: the segment tail may now
	// hold a torn or never-acknowledged record, and accepting further
	// appends behind it would let recovery resurrect rejected data or stop
	// short of acknowledged records. Reopening truncates the bad tail.
	if err := s.w.append(payload); err != nil {
		s.failed = err
		return err
	}
	if s.opts.Sync == SyncAlways {
		start := time.Now()
		if err := s.w.sync(); err != nil {
			s.failed = err
			return err
		}
		fsyncDuration.Observe(time.Since(start).Seconds())
	}
	s.walBytes += int64(recHeaderLen + len(payload))
	walAppendedBytes.Add(int64(recHeaderLen + len(payload)))
	walPendingBytes.Set(float64(s.walBytes - s.ckptMark))
	if s.opts.CheckpointBytes > 0 && s.walBytes-s.ckptMark > s.opts.CheckpointBytes && !s.ckptPending {
		s.ckptPending = true
		select {
		case s.ckptCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// background runs the interval fsync and the automatic checkpoints.
func (s *Store) background() {
	defer s.wg.Done()
	var tick *time.Ticker
	var tickCh <-chan time.Time
	if s.opts.Sync == SyncInterval {
		tick = time.NewTicker(s.opts.SyncEvery)
		tickCh = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-s.stopCh:
			return
		case <-tickCh:
			if err := s.Sync(); err != nil && !errors.Is(err, ErrClosed) {
				s.setErr(err)
			}
		case <-s.ckptCh:
			err := s.Checkpoint()
			s.mu.Lock()
			s.ckptPending = false
			s.mu.Unlock()
			if err != nil && !errors.Is(err, ErrClosed) {
				s.setErr(err)
			}
		}
	}
}

func (s *Store) setErr(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

// Sync forces every appended record to disk. A failure latches the store
// (see append): after a refused fsync the durability of the tail is
// unknowable, so no further mutations are acknowledged.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.failed != nil {
		return s.failed
	}
	start := time.Now()
	if err := s.w.sync(); err != nil {
		s.failed = err
		return err
	}
	fsyncDuration.Observe(time.Since(start).Seconds())
	return nil
}

// Checkpoint durably serializes the current corpus state and compacts the
// WAL: the log rotates to a fresh segment, a barrier snapshot (guaranteed
// to cover every record in the finished segments) is written as a
// checkpoint file, and the finished segments plus superseded checkpoint
// files are deleted. Safe to call at any time, including concurrently
// with mutations and queries.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	ckptStart := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.failed != nil {
		// The segment tail may be torn; rotating and compacting could
		// discard the evidence recovery needs to truncate it correctly.
		err := s.failed
		s.mu.Unlock()
		return fmt.Errorf("store: log failed, checkpoint refused (reopen to recover): %w", err)
	}
	// Finish the current segment so that everything logged so far sits in
	// segments older than the one new appends go to. The barrier snapshot
	// below is taken after the rotation: any mutation whose record landed
	// in a finished segment has published by then, so the snapshot covers
	// it and the finished segments become garbage.
	if err := s.w.rotate(); err != nil {
		s.mu.Unlock()
		return err
	}
	doneSeq := s.w.seq // segments strictly below this are compactable
	mark := s.walBytes
	s.mu.Unlock()

	snap := s.c.BarrierSnapshot()
	if err := writeCheckpoint(s.dir, snap); err != nil {
		return err
	}

	s.mu.Lock()
	if mark > s.ckptMark {
		s.ckptMark = mark
	}
	s.lastCkptEpoch = snap.Epoch()
	walPendingBytes.Set(float64(s.walBytes - s.ckptMark))
	s.mu.Unlock()

	if err := s.compact(doneSeq, snap.Epoch()); err != nil {
		return err
	}
	checkpointDuration.Observe(time.Since(ckptStart).Seconds())
	return nil
}

// compact deletes WAL segments older than the latest checkpoint's
// rotation point and checkpoint files older than the latest checkpoint.
// Failures are reported but recovery never depends on compaction having
// run: stale files are simply re-ignored (segments replay as no-ops below
// the checkpoint epoch, old checkpoints lose to newer ones).
func (s *Store) compact(doneSeq uint64, epoch uint64) error {
	seqs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq < doneSeq {
			if err := os.Remove(filepath.Join(s.dir, segmentName(seq))); err != nil {
				return err
			}
		}
	}
	epochs, err := listCheckpoints(s.dir)
	if err != nil {
		return err
	}
	for _, e := range epochs {
		if e < epoch {
			if err := os.Remove(filepath.Join(s.dir, checkpointName(e))); err != nil {
				return err
			}
		}
	}
	return syncDir(s.dir)
}

// Close flushes and fsyncs the WAL and stops the background work. The
// corpus stays queryable, but every further mutation is rejected with
// ErrClosed (and therefore cannot be silently lost). Close does not write
// a checkpoint; callers wanting one (e.g. a graceful shutdown) call
// Checkpoint first.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	close(s.stopCh)
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.w.close()
}

// Status is a point-in-time report of the store's health, served by the
// HTTP /healthz endpoint.
type Status struct {
	// Dir is the store directory.
	Dir string `json:"dir"`
	// Open reports whether the store accepts mutations.
	Open bool `json:"open"`
	// ReadOnly reports a read-only recovery.
	ReadOnly bool `json:"read_only,omitempty"`
	// Epoch is the current corpus epoch.
	Epoch uint64 `json:"epoch"`
	// Series is the resident series count.
	Series int `json:"series"`
	// LastCheckpointEpoch is the epoch of the newest durable checkpoint.
	LastCheckpointEpoch uint64 `json:"last_checkpoint_epoch"`
	// WALBytesSinceCheckpoint is the log volume a recovery would replay.
	WALBytesSinceCheckpoint int64 `json:"wal_bytes_since_checkpoint"`
	// Segments is the number of WAL segment files on disk.
	Segments int `json:"segments"`
	// LastError is the most recent background sync/checkpoint failure.
	LastError string `json:"last_error,omitempty"`
}

// Status reports the store's current state.
func (s *Store) Status() Status {
	snap := s.c.Snapshot()
	s.mu.Lock()
	st := Status{
		Dir:                     s.dir,
		Open:                    !s.closed && s.failed == nil,
		ReadOnly:                s.opts.ReadOnly,
		Epoch:                   snap.Epoch(),
		Series:                  snap.Len(),
		LastCheckpointEpoch:     s.lastCkptEpoch,
		WALBytesSinceCheckpoint: s.walBytes - s.ckptMark,
	}
	switch {
	case s.failed != nil:
		st.LastError = s.failed.Error()
	case s.lastErr != nil:
		st.LastError = s.lastErr.Error()
	}
	s.mu.Unlock()
	if seqs, err := listSegments(s.dir); err == nil {
		st.Segments = len(seqs)
	}
	return st
}

// removeTempFiles clears checkpoint temp files left by a crash
// mid-checkpoint.
func removeTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
