package store

import "uncertts/internal/telemetry"

// The store's metric families: WAL volume and the two durability
// latencies operators watch — how long an fsync stalls the write path and
// how long checkpoints run.
var (
	walAppendedBytes = telemetry.NewCounter(
		"uncertts_store_wal_appended_bytes_total",
		"WAL bytes appended since the process started (headers included).")
	walPendingBytes = telemetry.NewGauge(
		"uncertts_store_wal_pending_bytes",
		"WAL bytes a recovery right now would replay (appended past the last checkpoint).")
	fsyncDuration = telemetry.NewHistogram(
		"uncertts_store_fsync_duration_seconds",
		"WAL fsync latency (both the always-policy in-line syncs and the interval syncs).",
		nil)
	checkpointDuration = telemetry.NewHistogram(
		"uncertts_store_checkpoint_duration_seconds",
		"Checkpoint latency: barrier snapshot, serialization and WAL compaction.",
		nil)
)
