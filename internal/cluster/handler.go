package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"uncertts/internal/qerr"
	"uncertts/internal/server"
)

// The coordinator's HTTP surface mirrors the single-node server's —
// /query, /series, /stats, /healthz with the same request shapes — so
// clients scale from one node to a cluster by repointing their base URL.
// /query answers a cluster Response (the single-node QueryResponse plus
// the degraded flag and per-shard error detail).

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/series", c.handleSeries)
	mux.HandleFunc("/stats", c.handleStats)
	mux.HandleFunc("/healthz", c.handleHealthz)
	return mux
}

// statusFor maps a coordinator error to its HTTP status: all-shards-down
// is 502 Bad Gateway, an all-shards-slow query is 504 Gateway Timeout, a
// shard's own refusal passes its status through verbatim, and everything
// else follows the single-node mapping.
func statusFor(err error) int {
	var se *ShardStatusError
	switch {
	case errors.As(err, &se):
		return se.Status
	case errors.Is(err, qerr.ErrShardUnreachable):
		return http.StatusBadGateway
	case errors.Is(err, qerr.ErrShardTimeout):
		return http.StatusGatewayTimeout
	default:
		return server.StatusFor(err)
	}
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req server.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.TimeoutMS < 0 {
		http.Error(w, "timeout_ms must be non-negative", http.StatusBadRequest)
		return
	}
	// timeout_ms bounds the whole scatter-gather here; shards run without
	// their own deadline (Query strips it) under this context.
	ctx, cancel := r.Context(), context.CancelFunc(func() {})
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	defer cancel()
	resp, err := c.Query(ctx, req)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleSeries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req server.SeriesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := c.Mutate(r.Context(), req)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	resp, err := c.Stats(r.Context())
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, c.Health(r.Context()))
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
