package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"uncertts/internal/engine"
	"uncertts/internal/qerr"
	"uncertts/internal/server"
	"uncertts/internal/telemetry"
)

// The coordinator's HTTP surface mirrors the single-node server's —
// /query, /series, /stats, /healthz with the same request shapes — so
// clients scale from one node to a cluster by repointing their base URL.
// /query answers a cluster Response (the single-node QueryResponse plus
// the degraded flag and per-shard error detail).

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/series", c.handleSeries)
	mux.HandleFunc("/stats", c.handleStats)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.Handle("/metrics", telemetry.Handler())
	mux.HandleFunc("/debug/trace", c.tracer.HandleDebugTrace)
	return mux
}

// statusFor maps a coordinator error to its HTTP status: all-shards-down
// is 502 Bad Gateway, an all-shards-slow query is 504 Gateway Timeout, a
// shard's own refusal passes its status through verbatim, and everything
// else follows the single-node mapping.
func statusFor(err error) int {
	var se *ShardStatusError
	switch {
	case errors.As(err, &se):
		return se.Status
	case errors.Is(err, qerr.ErrShardUnreachable):
		return http.StatusBadGateway
	case errors.Is(err, qerr.ErrShardTimeout):
		return http.StatusGatewayTimeout
	default:
		return server.StatusFor(err)
	}
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req server.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.TimeoutMS < 0 {
		http.Error(w, "timeout_ms must be non-negative", http.StatusBadRequest)
		return
	}
	// timeout_ms bounds the whole scatter-gather here; shards run without
	// their own deadline (Query strips it) under this context.
	ctx, cancel := r.Context(), context.CancelFunc(func() {})
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	defer cancel()
	// The coordinator mints the query's trace ID (or adopts the caller's)
	// and hands it to every shard leg via the trace header; the ID travels
	// back in the response header, never the JSON body.
	tr := c.tracer.StartTrace(r.Header.Get(telemetry.TraceHeader), "cluster_scatter")
	kname, mname := "invalid", "invalid"
	if k, err := engine.ParseKind(req.Type); err == nil {
		kname = k.String()
	}
	if m, err := engine.ParseMeasure(req.Measure); err == nil {
		mname = strings.ToLower(m.String())
	}
	tr.SetQuery(kname, mname)
	w.Header().Set(telemetry.TraceHeader, tr.ID())
	resp, err := c.Query(telemetry.WithTrace(ctx, tr), req)
	if err != nil {
		tr.Fail(err)
		c.tracer.Finish(tr)
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	c.tracer.Finish(tr)
	writeJSON(w, resp)
}

func (c *Coordinator) handleSeries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req server.SeriesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "malformed JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := c.Mutate(r.Context(), req)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	resp, err := c.Stats(r.Context())
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, c.Health(r.Context()))
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
