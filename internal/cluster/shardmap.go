// Package cluster scales the single-process serving tier out to a
// partitioned corpus: a deterministic shard map assigns every series to
// one shard by its stable global ID, each shard is a full corpus + store
// + engine stack behind the existing server API, and a scatter-gather
// coordinator broadcasts each query to all shards, merges the per-shard
// answers deterministically, and propagates the tightening global top-k
// bound back into still-running shards mid-flight.
//
// Two invariants make the merged answers bit-identical to a single-node
// corpus holding the same series:
//
//   - Global IDs everywhere. The coordinator allocates monotonically
//     increasing global IDs and shards ingest under them (ApplyAt), so a
//     shard's entry is indistinguishable from the same entry in one big
//     corpus, and position order equals ID order on every shard — the
//     tie-break order of every query kind.
//
//   - Sound shared bounds. A shard's k-th best is the k-th best of a
//     subset, hence a true upper bound on the global k-th; the shared
//     engine.Bound only ever carries such values (ulpUp-inflated so exact
//     ties survive), so a candidate abandoned against it can never belong
//     to the merged answer.
//
// Failure semantics are graceful: an unreachable or timed-out shard
// yields a degraded response carrying the partial merge plus typed
// per-shard errors (qerr.ErrShardUnreachable / qerr.ErrShardTimeout,
// mapped to 502/504 when no shard answered at all).
package cluster

// ShardFor maps a stable series ID to its owning shard among n. The hash
// is the splitmix64 finalizer — every input bit avalanches into every
// output bit, so contiguous coordinator-allocated IDs spread evenly —
// and it is part of the persistent format: resident series were routed
// by it, so changing it would silently orphan them. The golden tests pin
// it value-for-value.
func ShardFor(id, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}
