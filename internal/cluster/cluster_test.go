package cluster

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"uncertts/internal/corpus"
	"uncertts/internal/engine"
	"uncertts/internal/munich"
	"uncertts/internal/qerr"
	"uncertts/internal/server"
	"uncertts/internal/stats"
)

// TestShardForGolden pins the shard map value-for-value: resident series
// were routed by these exact assignments, so any drift silently orphans
// them. If this test fails, the hash changed — that is a data-format
// break, not a test to update.
func TestShardForGolden(t *testing.T) {
	golden := map[int][]int{
		2: {0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1},
		3: {0, 1, 1, 2, 2, 0, 1, 1, 1, 0, 2, 2, 1, 1, 0, 1},
		4: {0, 1, 2, 0, 0, 0, 0, 0, 0, 3, 1, 1, 0, 1, 1, 1},
		8: {0, 5, 2, 0, 4, 4, 4, 4, 0, 7, 1, 5, 4, 1, 1, 1},
	}
	for n, want := range golden {
		for id, w := range want {
			if got := ShardFor(id, n); got != w {
				t.Errorf("ShardFor(%d, %d) = %d, golden %d", id, n, got, w)
			}
		}
	}
	big := map[int]int{1 << 40: 0, 123456789: 0, 987654321: 0, 55555: 6, 31337: 4}
	for id, w := range big {
		if got := ShardFor(id, 8); got != w {
			t.Errorf("ShardFor(%d, 8) = %d, golden %d", id, got, w)
		}
	}
	for _, n := range []int{0, 1, -1} {
		if got := ShardFor(42, n); got != 0 {
			t.Errorf("ShardFor(42, %d) = %d, want 0", n, got)
		}
	}
}

// TestShardForSpreads sanity-checks that contiguous coordinator-allocated
// IDs spread roughly evenly.
func TestShardForSpreads(t *testing.T) {
	counts := make([]int, 4)
	for id := 0; id < 10000; id++ {
		counts[ShardFor(id, 4)]++
	}
	for s, c := range counts {
		if c < 2000 || c > 3000 {
			t.Errorf("shard %d holds %d of 10000 contiguous IDs (want ~2500)", s, c)
		}
	}
}

// testSeries derives a deterministic series with samples from a seed —
// every error model the seven measures need.
func testSeries(length int, seed int64) server.SeriesJSON {
	rng := stats.NewRand(seed + 400)
	s := server.SeriesJSON{Values: make([]float64, length), Samples: make([][]float64, length), Sigma: 0.3}
	for i := range s.Values {
		s.Values[i] = math.Cos(float64(seed)*0.9+float64(i)*0.27) + 0.2*rng.NormFloat64()
		row := make([]float64, 3)
		for j := range row {
			row[j] = s.Values[i] + 0.15*rng.NormFloat64()
		}
		s.Samples[i] = row
	}
	return s
}

func newShardServer(t testing.TB) *server.Server {
	t.Helper()
	c := corpus.New(corpus.Config{ReportedSigma: 0.3, Segments: 4})
	return server.New(c, server.Options{MUNICH: munich.Options{Bins: 256}})
}

// localCluster builds an n-shard in-process cluster.
func localCluster(t testing.TB, n int, opts Options) (*Coordinator, []*server.Server) {
	t.Helper()
	shards := make([]Shard, n)
	servers := make([]*server.Server, n)
	for i := range shards {
		servers[i] = newShardServer(t)
		shards[i] = NewLocal(shardName(i), servers[i])
	}
	return New(shards, opts), servers
}

func shardName(i int) string { return "shard-" + string(rune('0'+i)) }

// httpCluster builds an n-shard cluster of real HTTP shard processes
// (httptest servers), each optionally wrapped in middleware.
func httpCluster(t testing.TB, n int, opts Options, mw func(int, http.Handler) http.Handler) (*Coordinator, []*server.Server, []*httptest.Server) {
	t.Helper()
	shards := make([]Shard, n)
	servers := make([]*server.Server, n)
	httpServers := make([]*httptest.Server, n)
	for i := range shards {
		servers[i] = newShardServer(t)
		h := servers[i].Handler()
		if mw != nil {
			h = mw(i, h)
		}
		httpServers[i] = httptest.NewServer(h)
		t.Cleanup(httpServers[i].Close)
		shards[i] = NewHTTP(shardName(i), httpServers[i].URL, nil)
	}
	return New(shards, opts), servers, httpServers
}

// ingest loads count deterministic series through the coordinator and
// returns their global IDs (contiguous from the allocator).
func ingest(t testing.TB, co *Coordinator, count, length int) []int {
	t.Helper()
	req := server.SeriesRequest{}
	for i := 0; i < count; i++ {
		req.Insert = append(req.Insert, testSeries(length, int64(i)))
	}
	resp, err := co.Mutate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return resp.IDs
}

// singleNode builds the reference: one server holding the same series in
// the same insertion order (hence the same stable IDs).
func singleNode(t testing.TB, count, length int) *server.Server {
	t.Helper()
	srv := newShardServer(t)
	req := server.SeriesRequest{}
	for i := 0; i < count; i++ {
		req.Insert = append(req.Insert, testSeries(length, int64(i)))
	}
	if _, err := srv.Mutate(req); err != nil {
		t.Fatal(err)
	}
	return srv
}

// parityCases covers every measure and query kind, plus a windowed case.
func parityCases() []server.QueryRequest {
	return []server.QueryRequest{
		{Measure: "euclidean", Type: "topk", K: 5},
		{Measure: "euclidean", Type: "topk", K: 8, Offset: 2, Limit: 3},
		{Measure: "euclidean", Type: "range", Eps: 4},
		{Measure: "uma", Type: "topk", K: 5},
		{Measure: "uma", Type: "range", Eps: 4},
		{Measure: "uema", Type: "topk", K: 5},
		{Measure: "uema", Type: "range", Eps: 4},
		{Measure: "dtw", Type: "topk", K: 5},
		{Measure: "dtw", Type: "range", Eps: 4},
		{Measure: "dust", Type: "topk", K: 5},
		{Measure: "dust", Type: "range", Eps: 6},
		{Measure: "proud", Type: "probtopk", Eps: 2, K: 5},
		{Measure: "proud", Type: "probrange", Eps: 2, Tau: 0.1},
		{Measure: "munich", Type: "probtopk", Eps: 2, K: 5},
		{Measure: "munich", Type: "probrange", Eps: 2, Tau: 0.05},
	}
}

// TestClusterParityWithSingleNode is the core guarantee: for every
// measure, every query kind, ad-hoc and ID-targeted, over in-process and
// HTTP shards at 1, 2 and 4 shards, the scatter-gather answer is
// bit-identical to a single node holding the union of the series (epoch
// excepted — the cluster epoch is the sum of shard epochs).
func TestClusterParityWithSingleNode(t *testing.T) {
	const nSeries, length = 24, 32
	single := singleNode(t, nSeries, length)
	ctx := context.Background()

	check := func(t *testing.T, co *Coordinator) {
		for _, base := range parityCases() {
			for _, target := range []string{"adhoc", "id"} {
				req := base
				if target == "id" {
					id := 3
					req.ID = &id
				} else {
					q := testSeries(length, 99)
					req.Series = &q
				}
				want, err := single.Run(ctx, req)
				if err != nil {
					t.Fatalf("%s/%s %s single-node: %v", req.Measure, req.Type, target, err)
				}
				got, err := co.Query(ctx, req)
				if err != nil {
					t.Fatalf("%s/%s %s cluster: %v", req.Measure, req.Type, target, err)
				}
				if got.Degraded || len(got.ShardErrors) != 0 {
					t.Fatalf("%s/%s %s: unexpected degradation %+v", req.Measure, req.Type, target, got.ShardErrors)
				}
				want.Epoch, got.Epoch = 0, 0
				if !reflect.DeepEqual(*want, got.QueryResponse) {
					t.Errorf("%s/%s %s: cluster answer diverges\n want %+v\n  got %+v", req.Measure, req.Type, target, *want, got.QueryResponse)
				}
			}
		}
	}

	for _, n := range []int{1, 2, 4} {
		n := n
		t.Run("local/"+string(rune('0'+n)), func(t *testing.T) {
			co, _ := localCluster(t, n, Options{})
			ingest(t, co, nSeries, length)
			check(t, co)
		})
		t.Run("http/"+string(rune('0'+n)), func(t *testing.T) {
			co, _, _ := httpCluster(t, n, Options{}, nil)
			ingest(t, co, nSeries, length)
			check(t, co)
		})
	}
}

// TestCoordinatorBoundPropagationReducesRefines shows the point of the
// shared cut deterministically: the same 4-shard query answered with one
// shared bound (what the coordinator injects) completes strictly fewer
// full refinements than with a private bound per shard. Shards run
// sequentially with one worker so both sides are deterministic.
func TestCoordinatorBoundPropagationReducesRefines(t *testing.T) {
	const nSeries, length = 160, 48
	run := func(shared bool) int64 {
		co, servers := localCluster(t, 4, Options{})
		ingest(t, co, nSeries, length)
		q := testSeries(length, 500)
		req := server.QueryRequest{Measure: "euclidean", Type: "topk", K: 3, Series: &q, Workers: 1}
		ctx := context.Background()
		bnd := engine.NewBound()
		for _, sh := range co.Shards() {
			if !shared {
				bnd = engine.NewBound()
			}
			if _, err := sh.Query(ctx, req, bnd, nil); err != nil {
				t.Fatal(err)
			}
		}
		var completed int64
		for _, srv := range servers {
			for _, ms := range srv.Stats().Measures {
				completed += ms.Completed
			}
		}
		return completed
	}
	withProp, withoutProp := run(true), run(false)
	if withProp >= withoutProp {
		t.Fatalf("shared bound completed %d refinements, private bounds %d — propagation should prune strictly more", withProp, withoutProp)
	}
}

// TestDisableBoundPropagationOption drives the same shards through two
// coordinators — one propagating the shared cut, one with
// DisableBoundPropagation — and checks the knob changes only the work
// done, never the answer. (The strict fewer-refines guarantee is pinned
// deterministically above; here the shards run concurrently, so the
// disabled arm is only required not to do less work.)
func TestDisableBoundPropagationOption(t *testing.T) {
	co, servers := localCluster(t, 4, Options{})
	ingest(t, co, 160, 48)
	coNo := New(co.Shards(), Options{DisableBoundPropagation: true})

	ctx := context.Background()
	req := server.QueryRequest{Measure: "euclidean", Type: "topk", K: 5, Series: seriesPtr(48, 501)}
	completed := func() int64 {
		var n int64
		for _, srv := range servers {
			for _, ms := range srv.Stats().Measures {
				n += ms.Completed
			}
		}
		return n
	}

	prop, err := co.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	afterProp := completed()
	noProp, err := coNo.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	withoutProp := completed() - afterProp

	if !reflect.DeepEqual(prop, noProp) {
		t.Fatalf("DisableBoundPropagation changed the answer:\n with %+v\n without %+v", prop, noProp)
	}
	if withoutProp < afterProp {
		t.Fatalf("private bounds completed %d refinements, shared bound %d — disabling propagation cannot prune more", withoutProp, afterProp)
	}
}

// hangFlag lets middleware start misbehaving only after ingest.
type hangFlag struct{ atomic.Bool }

// TestDegradedShardTimeout kills one shard's query path by hanging it:
// the coordinator's per-shard deadline fires, the answer degrades with a
// typed timeout, and when every shard hangs the query fails 504.
func TestDegradedShardTimeout(t *testing.T) {
	var hangAll, hangOne hangFlag
	co, _, _ := httpCluster(t, 3, Options{ShardTimeout: 150 * time.Millisecond}, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/cluster/query" && (hangAll.Load() || (hangOne.Load() && i == 1)) {
				// Drain the body first: the server only watches for client
				// disconnect (which cancels r.Context()) once the request
				// body has been consumed.
				_, _ = io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	ingest(t, co, 12, 16)
	ctx := context.Background()
	req := server.QueryRequest{Measure: "euclidean", Type: "topk", K: 4, Series: seriesPtr(16, 7)}

	hangOne.Store(true)
	resp, err := co.Query(ctx, req)
	if err != nil {
		t.Fatalf("one slow shard should degrade, not fail: %v", err)
	}
	if !resp.Degraded || len(resp.ShardErrors) != 1 {
		t.Fatalf("want one degraded shard, got %+v", resp)
	}
	if resp.ShardErrors[0].Kind != "timeout" || resp.ShardErrors[0].Shard != shardName(1) {
		t.Fatalf("want a timeout on shard-1, got %+v", resp.ShardErrors[0])
	}
	if len(resp.Neighbors) == 0 {
		t.Fatal("degraded answer should still carry the reachable shards' neighbours")
	}

	hangAll.Store(true)
	if _, err := co.Query(ctx, req); err == nil {
		t.Fatal("every shard slow: the query must fail")
	} else if statusFor(err) != http.StatusGatewayTimeout {
		t.Fatalf("all-shards-slow should map to 504, got %d (%v)", statusFor(err), err)
	}
}

// TestDegradedShardUnreachable takes one shard's process down entirely.
func TestDegradedShardUnreachable(t *testing.T) {
	co, _, httpServers := httpCluster(t, 3, Options{}, nil)
	ingest(t, co, 12, 16)
	ctx := context.Background()
	req := server.QueryRequest{Measure: "euclidean", Type: "topk", K: 4, Series: seriesPtr(16, 7)}

	httpServers[2].Close()
	resp, err := co.Query(ctx, req)
	if err != nil {
		t.Fatalf("one dead shard should degrade, not fail: %v", err)
	}
	if !resp.Degraded || len(resp.ShardErrors) != 1 {
		t.Fatalf("want one degraded shard, got %+v", resp)
	}
	se := resp.ShardErrors[0]
	if se.Kind != "unreachable" || se.Shard != shardName(2) {
		t.Fatalf("want unreachable shard-2, got %+v", se)
	}

	httpServers[0].Close()
	httpServers[1].Close()
	if _, err := co.Query(ctx, req); err == nil {
		t.Fatal("every shard dead: the query must fail")
	} else if statusFor(err) != http.StatusBadGateway {
		t.Fatalf("all-shards-dead should map to 502, got %d (%v)", statusFor(err), err)
	} else if !errors.Is(err, qerr.ErrShardUnreachable) {
		t.Fatalf("want qerr.ErrShardUnreachable, got %v", err)
	}
}

// TestDegradedMidStreamDeath crashes a shard after it has streamed part
// of its answer: the truncated stream must not contaminate the merge.
func TestDegradedMidStreamDeath(t *testing.T) {
	var die hangFlag
	co, _, _ := httpCluster(t, 3, Options{}, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/cluster/query" && die.Load() && i == 0 {
				// A plausible item record, then the connection dies with no
				// done record — as if the process was SIGKILLed mid-query.
				w.Header().Set("Content-Type", "application/x-ndjson")
				_, _ = w.Write([]byte("{\"id\":0,\"distance\":0.0}\n"))
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	ingest(t, co, 12, 16)
	die.Store(true)
	resp, err := co.Query(context.Background(), server.QueryRequest{Measure: "euclidean", Type: "topk", K: 4, Series: seriesPtr(16, 7)})
	if err != nil {
		t.Fatalf("mid-stream death should degrade, not fail: %v", err)
	}
	if !resp.Degraded || resp.ShardErrors[0].Kind != "unreachable" {
		t.Fatalf("want unreachable degradation, got %+v", resp)
	}
	for _, nb := range resp.Neighbors {
		if nb.ID == 0 && nb.Distance == 0 {
			t.Fatal("the dead shard's truncated stream leaked into the merge")
		}
	}
}

// TestShardRefusalFailsWholeQuery: a request every shard would refuse
// (validation, unknown ID) is the query's own fault and must fail with
// the shard's status, never degrade.
func TestShardRefusalFailsWholeQuery(t *testing.T) {
	co, _, _ := httpCluster(t, 2, Options{}, nil)
	ingest(t, co, 8, 16)
	ctx := context.Background()

	if _, err := co.Query(ctx, server.QueryRequest{Measure: "euclidean", Type: "topk", K: 0, Series: seriesPtr(16, 7)}); err == nil {
		t.Fatal("k=0 must fail")
	} else if statusFor(err) != http.StatusBadRequest {
		t.Fatalf("k=0 should map to 400, got %d (%v)", statusFor(err), err)
	}

	id := 99999
	if _, err := co.Query(ctx, server.QueryRequest{Measure: "euclidean", Type: "topk", K: 3, ID: &id}); err == nil {
		t.Fatal("an unknown ID must fail")
	} else if statusFor(err) != http.StatusNotFound {
		t.Fatalf("unknown ID should map to 404, got %d (%v)", statusFor(err), err)
	}
}

// TestMutateRoutingAndRecovery checks that every series lands on its
// ShardFor home, that deletions find it there again, that the allocator
// recovers from shard state alone, and that insert_ids is refused.
func TestMutateRoutingAndRecovery(t *testing.T) {
	co, servers := localCluster(t, 3, Options{})
	ids := ingest(t, co, 20, 16)
	ctx := context.Background()

	for i, id := range ids {
		if id != i {
			t.Fatalf("coordinator IDs must be contiguous from 0, got %v", ids)
		}
	}
	for s, srv := range servers {
		snap := srv.Corpus().Snapshot()
		for i := 0; i < snap.Len(); i++ {
			if home := ShardFor(snap.IDAt(i), 3); home != s {
				t.Errorf("series %d lives on shard %d, ShardFor says %d", snap.IDAt(i), s, home)
			}
		}
	}

	// A fresh coordinator over the same shards recovers the allocator.
	co2 := New(co.Shards(), Options{})
	resp, err := co2.Mutate(ctx, server.SeriesRequest{Insert: []server.SeriesJSON{testSeries(16, 100)}, Delete: []int{3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 1 || resp.IDs[0] != 20 {
		t.Fatalf("recovered allocator should continue at 20, got %v", resp.IDs)
	}
	if resp.Series != 19 {
		t.Fatalf("21 inserted - 2 deleted = 19 resident, got %d", resp.Series)
	}
	id := 3
	if _, err := co2.Query(ctx, server.QueryRequest{Measure: "euclidean", Type: "topk", K: 2, ID: &id}); err == nil {
		t.Fatal("deleted series must be gone")
	} else if statusFor(err) != http.StatusNotFound {
		t.Fatalf("want 404 for a deleted ID, got %d", statusFor(err))
	}

	if _, err := co2.Mutate(ctx, server.SeriesRequest{Insert: []server.SeriesJSON{testSeries(16, 101)}, InsertIDs: []int{500}}); err == nil {
		t.Fatal("insert_ids must be refused at the coordinator")
	}
}

// TestClusterStatsAndHealth checks the merged accounting and the health
// rollup, including an unreachable shard.
func TestClusterStatsAndHealth(t *testing.T) {
	co, _, httpServers := httpCluster(t, 3, Options{}, nil)
	ingest(t, co, 12, 16)
	ctx := context.Background()
	if _, err := co.Query(ctx, server.QueryRequest{Measure: "euclidean", Type: "topk", K: 4, Series: seriesPtr(16, 7)}); err != nil {
		t.Fatal(err)
	}

	st, err := co.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Series != 12 {
		t.Fatalf("merged stats should count 12 resident series, got %d", st.Series)
	}
	ms, ok := st.Measures["Euclidean"]
	if !ok || ms.Candidates == 0 {
		t.Fatalf("merged stats should carry Euclidean counters, got %+v", st.Measures)
	}

	if h := co.Health(ctx); h.Status != "ok" || len(h.Shards) != 3 {
		t.Fatalf("healthy cluster should report ok over 3 shards, got %+v", h)
	}
	httpServers[1].Close()
	h := co.Health(ctx)
	if h.Status != "degraded" || h.Shards[1].Status != "unreachable" {
		t.Fatalf("a dead shard should degrade health, got %+v", h)
	}
}

func seriesPtr(length int, seed int64) *server.SeriesJSON {
	s := testSeries(length, seed)
	return &s
}
