package cluster

import "uncertts/internal/telemetry"

// The coordinator's metric families: the scatter-gather picture a single
// shard cannot see — per-shard leg latency, how often answers degrade,
// which shards fail and how, and how much mid-flight bound propagation
// actually flows.
var (
	scatterDuration = telemetry.NewHistogramVec(
		"uncertts_cluster_scatter_duration_seconds",
		"One shard's leg of a scattered query, by shard.",
		nil, "shard")
	degradedQueries = telemetry.NewCounter(
		"uncertts_cluster_degraded_queries_total",
		"Queries answered from a partial shard set (at least one shard dropped).")
	shardErrors = telemetry.NewCounterVec(
		"uncertts_cluster_shard_errors_total",
		"Failed shard legs, by shard and failure kind (timeout or unreachable).",
		"shard", "kind")
	boundPushes = telemetry.NewCounter(
		"uncertts_cluster_bound_pushes_total",
		"Mid-flight bound improvements pushed into running shard queries over /cluster/bound.")
)
