package cluster

import (
	"context"

	"uncertts/internal/engine"
	"uncertts/internal/server"
)

// Shard is one partition of the cluster behind the serving API the
// coordinator scatters over. Implementations must inject the shared cuts
// into the query execution (and, for remote shards, ferry improvements
// both ways while the query runs): bnd for topk, pbnd for probtopk; both
// may be nil for the range kinds.
type Shard interface {
	// Name identifies the shard in degraded responses and health reports.
	Name() string
	// Query answers one query with the shared cuts injected.
	Query(ctx context.Context, req server.QueryRequest, bnd *engine.Bound, pbnd *engine.ProbBound) (*server.QueryResponse, error)
	// Mutate applies one ingestion/deletion mutation (insert_ids carry
	// the coordinator-assigned global IDs).
	Mutate(ctx context.Context, req server.SeriesRequest) (*server.SeriesResponse, error)
	// FetchSeries returns a resident series in its wire ingestion shape,
	// so an ID-targeted query can be forwarded to the other shards.
	FetchSeries(ctx context.Context, id int) (*server.ClusterSeriesJSON, error)
	// Info reports the shard's geometry (epoch, counts, next ID).
	Info(ctx context.Context) (server.ClusterInfoJSON, error)
	// Stats returns the shard's cumulative engine accounting.
	Stats(ctx context.Context) (*server.StatsResponse, error)
	// Health returns the shard's liveness and durability picture.
	Health(ctx context.Context) (*server.HealthResponse, error)
}

// LocalShard serves a shard in-process: a plain *server.Server (corpus +
// optional store + engine cache) called directly. Bound propagation is
// free — every shard's engine lowers and reads the same injected atomic,
// which is exactly the within-process sharing the engine already does
// across workers.
type LocalShard struct {
	name string
	srv  *server.Server
}

// NewLocal wraps a server as an in-process shard.
func NewLocal(name string, srv *server.Server) *LocalShard {
	return &LocalShard{name: name, srv: srv}
}

// Server returns the wrapped server (the single-binary CLI closes its
// store through it; tests read its stats).
func (l *LocalShard) Server() *server.Server { return l.srv }

func (l *LocalShard) Name() string { return l.name }

func (l *LocalShard) Query(ctx context.Context, req server.QueryRequest, bnd *engine.Bound, pbnd *engine.ProbBound) (*server.QueryResponse, error) {
	return l.srv.RunBound(ctx, req, bnd, pbnd)
}

func (l *LocalShard) Mutate(_ context.Context, req server.SeriesRequest) (*server.SeriesResponse, error) {
	return l.srv.Mutate(req)
}

func (l *LocalShard) FetchSeries(_ context.Context, id int) (*server.ClusterSeriesJSON, error) {
	return l.srv.FetchSeries(id)
}

func (l *LocalShard) Info(_ context.Context) (server.ClusterInfoJSON, error) {
	return l.srv.Info(), nil
}

func (l *LocalShard) Stats(_ context.Context) (*server.StatsResponse, error) {
	return l.srv.Stats(), nil
}

func (l *LocalShard) Health(_ context.Context) (*server.HealthResponse, error) {
	return l.srv.Health(), nil
}
