package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"uncertts/internal/engine"
	"uncertts/internal/qerr"
	"uncertts/internal/server"
	"uncertts/internal/telemetry"
)

// Options configures a Coordinator.
type Options struct {
	// ShardTimeout bounds each shard's leg of a query (0 = only the
	// query's own context bounds it). Expiry degrades the answer rather
	// than failing it: the slow shard's contribution is dropped and the
	// response carries qerr.ErrShardTimeout in its per-shard detail.
	ShardTimeout time.Duration

	// DisableBoundPropagation gives every shard its own private pruning
	// cut instead of the shared global one. Answers are identical either
	// way (the cut only prunes work, never results); shards just complete
	// more full refines. The knob exists so `uncertbench -shards` can A/B
	// the propagation gain through the exact production code path — leave
	// it off when serving.
	DisableBoundPropagation bool

	// Tracer receives the coordinator's finished query traces (nil = the
	// process-wide telemetry.DefaultTracer).
	Tracer *telemetry.Tracer
}

// Coordinator scatters queries over a set of shards and gathers the
// answers back into one deterministic response. With every shard
// reachable the merged answer is bit-identical to a single-node corpus
// holding the union of the shards' series (see the package doc for why);
// with shards down or slow it degrades to the partial merge.
//
// The coordinator also owns global ID allocation: mutations are
// serialized, IDs are handed out monotonically (recovered lazily as the
// max next-ID over shards), and each series lands on ShardFor(id) — which
// is also how deletions and ID-targeted queries find it again.
type Coordinator struct {
	shards []Shard
	opts   Options
	tracer *telemetry.Tracer

	// mu serializes mutations and guards the global ID allocator.
	mu     sync.Mutex
	nextID int // -1 until recovered from shard Info
}

// New builds a coordinator over the shards. The shard order is part of
// the cluster identity: ShardFor indexes into it.
func New(shards []Shard, opts Options) *Coordinator {
	tracer := opts.Tracer
	if tracer == nil {
		tracer = telemetry.DefaultTracer()
	}
	return &Coordinator{shards: shards, opts: opts, tracer: tracer, nextID: -1}
}

// Shards returns the shard set in cluster order.
func (c *Coordinator) Shards() []Shard { return c.shards }

// ShardErrorJSON is one failed shard's detail in a degraded response.
type ShardErrorJSON struct {
	Shard string `json:"shard"`
	// Kind is "timeout" (reachable but too slow) or "unreachable".
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// Response is a coordinator query answer: the merged QueryResponse plus
// the degradation picture. Epoch is the sum of the answering shards'
// epochs (a cluster-wide mutation counter, not comparable to a
// single-node epoch).
type Response struct {
	server.QueryResponse
	// Degraded reports that at least one shard did not contribute; the
	// result is correct for the reachable partition but may be missing
	// globally better answers.
	Degraded    bool             `json:"degraded,omitempty"`
	ShardErrors []ShardErrorJSON `json:"shard_errors,omitempty"`
}

// Query scatters one query to every shard and merges the answers.
//
// Top-k kinds share one pruning cut across all shards: each shard's
// engine lowers it as its local top-k fills, and still-running shards
// read the tightened global value mid-scan (in-process via the shared
// atomic, remotely via the NDJSON bound records and /cluster/bound
// pushes). ID-targeted queries run as an ID query on the series' home
// shard (which excludes the series itself, exactly like single-node) and
// as the equivalent ad-hoc query everywhere else.
func (c *Coordinator) Query(ctx context.Context, req server.QueryRequest) (*Response, error) {
	if len(c.shards) == 0 {
		return nil, qerr.BadRequestf("the coordinator has no shards")
	}
	m, err := engine.ParseMeasure(req.Measure)
	if err != nil {
		return nil, err
	}
	kind, err := engine.ParseKind(req.Type)
	if err != nil {
		return nil, err
	}
	if req.Offset < 0 || req.Limit < 0 {
		return nil, qerr.BadRequestf("offset and limit must be non-negative")
	}

	// Shards answer unwindowed (the offset/limit window is defined on the
	// globally merged ordering) and without their own deadline (the
	// per-shard ShardTimeout and the query context bound them).
	shardReq := req
	shardReq.Offset, shardReq.Limit, shardReq.TimeoutMS = 0, 0, 0

	homeShard := -1
	var fwdReq server.QueryRequest
	if req.ID != nil {
		homeShard = ShardFor(*req.ID, len(c.shards))
		rec, err := c.shards[homeShard].FetchSeries(ctx, *req.ID)
		if err != nil {
			// Without the series there is no query to forward — this
			// failure cannot degrade, it fails the query (404 for an
			// unknown ID, 502/504 for a dead or slow home shard).
			return nil, classify(ctx, c.shards[homeShard].Name(), err)
		}
		fwdReq = shardReq
		fwdReq.ID = nil
		fwdReq.Series = forwardSeries(m, rec)
	}

	var bnd *engine.Bound
	var pbnd *engine.ProbBound
	switch kind {
	case engine.KindTopK:
		bnd = engine.NewBound()
	case engine.KindProbTopK:
		pbnd = engine.NewProbBound()
	}

	tr := telemetry.TraceFrom(ctx)
	results := make([]*server.QueryResponse, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			sreq := shardReq
			if homeShard >= 0 && i != homeShard {
				sreq = fwdReq
			}
			sbnd, spbnd := bnd, pbnd
			if c.opts.DisableBoundPropagation {
				if sbnd != nil {
					sbnd = engine.NewBound()
				}
				if spbnd != nil {
					spbnd = engine.NewProbBound()
				}
			}
			sctx, cancel := c.shardContext(ctx)
			defer cancel()
			sp := tr.Start("scatter:" + sh.Name())
			start := time.Now()
			res, err := sh.Query(sctx, sreq, sbnd, spbnd)
			scatterDuration.With(sh.Name()).Observe(time.Since(start).Seconds())
			sp.EndErr(err)
			if err != nil {
				errs[i] = classify(ctx, sh.Name(), err)
				return
			}
			results[i] = res
		}(i, sh)
	}
	wg.Wait()

	var shardErrs []ShardErrorJSON
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !degradable(err) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
		ekind := "unreachable"
		if errors.Is(err, qerr.ErrShardTimeout) {
			ekind = "timeout"
		}
		shardErrors.With(c.shards[i].Name(), ekind).Inc()
		shardErrs = append(shardErrs, ShardErrorJSON{Shard: c.shards[i].Name(), Kind: ekind, Error: err.Error()})
	}
	answered := 0
	for _, r := range results {
		if r != nil {
			answered++
		}
	}
	if answered == 0 {
		return nil, firstErr
	}

	out := &Response{
		QueryResponse: server.QueryResponse{Measure: m.String(), Type: kind.String()},
		Degraded:      len(shardErrs) > 0,
		ShardErrors:   shardErrs,
	}
	if out.Degraded {
		degradedQueries.Inc()
		tr.SetDegraded()
	}
	for _, r := range results {
		if r != nil {
			out.Epoch += r.Epoch
		}
	}
	msp := tr.Start("merge")
	c.merge(out, results, kind, req)
	msp.End()
	return out, nil
}

// merge folds the per-shard answers into the global one: sort the union
// by the kind's deterministic order, truncate top-k kinds to k, record
// the pre-window total, and apply the offset/limit window.
func (c *Coordinator) merge(out *Response, results []*server.QueryResponse, kind engine.Kind, req server.QueryRequest) {
	switch kind {
	case engine.KindTopK:
		var all []server.NeighborJSON
		for _, r := range results {
			if r != nil {
				all = append(all, r.Neighbors...)
			}
		}
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.Distance != b.Distance {
				return a.Distance < b.Distance
			}
			return a.ID < b.ID
		})
		if req.K > 0 && len(all) > req.K {
			all = all[:req.K]
		}
		out.Total = len(all)
		out.Neighbors = window(all, req.Offset, req.Limit)
	case engine.KindProbTopK:
		var all []server.MatchJSON
		for _, r := range results {
			if r != nil {
				all = append(all, r.Matches...)
			}
		}
		sort.Slice(all, func(i, j int) bool {
			a, b := all[i], all[j]
			if a.Prob != b.Prob {
				return a.Prob > b.Prob
			}
			return a.ID < b.ID
		})
		if req.K > 0 && len(all) > req.K {
			all = all[:req.K]
		}
		out.Total = len(all)
		out.Matches = window(all, req.Offset, req.Limit)
	default:
		var ids []int
		for _, r := range results {
			if r != nil {
				ids = append(ids, r.IDs...)
			}
		}
		sort.Ints(ids)
		out.Total = len(ids)
		out.IDs = window(ids, req.Offset, req.Limit)
	}
}

// window applies the /query offset/limit semantics to the final merged
// ordering: drop the first offset entries, then truncate to limit
// (0 = all). An empty window stays nil so the JSON field is omitted,
// exactly like a single-node empty answer.
func window[T any](s []T, offset, limit int) []T {
	if offset >= len(s) {
		return nil
	}
	s = s[offset:]
	if limit > 0 && len(s) > limit {
		s = s[:limit]
	}
	if len(s) == 0 {
		return nil
	}
	return s
}

// forwardSeries turns a fetched resident series into the ad-hoc query the
// non-home shards answer. The error model needs one measure-specific
// adjustment: a resident PROUD query always uses the engine's reported
// sigma — never the series' own — so the forwarded form drops the sigma
// and lets each shard's engine apply its (identical) reported sigma;
// every other measure adopts the series' own constant sigma, exactly as
// the home shard's resident query does.
func forwardSeries(m engine.Measure, rec *server.ClusterSeriesJSON) *server.SeriesJSON {
	fwd := server.SeriesJSON{Values: rec.Series.Values, Samples: rec.Series.Samples, Label: rec.Series.Label}
	if m != engine.MeasurePROUD {
		fwd.Sigma = rec.Series.Sigma
	}
	return &fwd
}

func (c *Coordinator) shardContext(parent context.Context) (context.Context, context.CancelFunc) {
	if c.opts.ShardTimeout <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, c.opts.ShardTimeout)
}

// classify maps one shard failure onto the coordinator's error taxonomy.
// Degradable failures (the shard is gone or too slow, the query itself is
// fine) come back wrapping qerr.ErrShardUnreachable or ErrShardTimeout;
// everything else is the query's or the caller's own problem and fails
// the whole query: the parent context died, or the shard refused the
// request with a 4xx (every shard would refuse it identically).
func classify(parent context.Context, name string, err error) error {
	if parent.Err() != nil {
		return err
	}
	if errors.Is(err, qerr.ErrShardUnreachable) || errors.Is(err, qerr.ErrShardTimeout) {
		return err
	}
	var se *ShardStatusError
	if errors.As(err, &se) {
		if se.Status >= 500 {
			return qerr.ShardUnreachablef("%v", se)
		}
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return qerr.ShardTimeoutf("shard %s exceeded the per-shard deadline: %v", name, err)
	}
	return err
}

// degradable reports whether a classified shard error drops that shard's
// contribution (degraded partial answer) rather than failing the query.
func degradable(err error) bool {
	return errors.Is(err, qerr.ErrShardUnreachable) || errors.Is(err, qerr.ErrShardTimeout)
}

// Mutate applies one ingestion/deletion request across the cluster. The
// coordinator allocates the global IDs (recovering its allocator from
// shard Info on first use), routes every series and deletion to its
// ShardFor home, and applies the per-shard sub-mutations in shard order.
// Mutations are serialized coordinator-side and atomic per shard but NOT
// atomic across shards: a mid-sequence shard failure leaves earlier
// shards mutated, and the error says so. Allocated IDs are burned either
// way — a retry lands the same series under fresh IDs rather than
// half-colliding with the partial application.
func (c *Coordinator) Mutate(ctx context.Context, req server.SeriesRequest) (*server.SeriesResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.shards) == 0 {
		return nil, qerr.BadRequestf("the coordinator has no shards")
	}
	if len(req.Insert) == 0 && len(req.Delete) == 0 {
		return nil, qerr.BadRequestf("nothing to insert or delete")
	}
	if len(req.InsertIDs) > 0 {
		return nil, qerr.BadRequestf("the coordinator allocates stable IDs itself; insert_ids is not accepted")
	}
	if err := c.recoverNextID(ctx); err != nil {
		return nil, err
	}

	ids := make([]int, len(req.Insert))
	for i := range ids {
		ids[i] = c.nextID + i
	}
	if len(ids) > 0 {
		c.nextID = ids[len(ids)-1] + 1
	}

	type shardWork struct {
		insert    []server.SeriesJSON
		insertIDs []int
		del       []int
	}
	work := make([]shardWork, len(c.shards))
	for i, sj := range req.Insert {
		s := ShardFor(ids[i], len(c.shards))
		work[s].insert = append(work[s].insert, sj)
		work[s].insertIDs = append(work[s].insertIDs, ids[i])
	}
	for _, id := range req.Delete {
		s := ShardFor(id, len(c.shards))
		work[s].del = append(work[s].del, id)
	}

	for i, w := range work {
		if len(w.insert) == 0 && len(w.del) == 0 {
			continue
		}
		sreq := server.SeriesRequest{Insert: w.insert, InsertIDs: w.insertIDs, Delete: w.del}
		if _, err := c.shards[i].Mutate(ctx, sreq); err != nil {
			return nil, fmt.Errorf("applying to shard %s (earlier shards already applied): %w", c.shards[i].Name(), err)
		}
	}

	var epoch uint64
	series := 0
	for _, sh := range c.shards {
		info, err := sh.Info(ctx)
		if err != nil {
			return nil, fmt.Errorf("mutation applied, but reading geometry from shard %s: %w", sh.Name(), err)
		}
		epoch += info.Epoch
		series += info.Series
	}
	return &server.SeriesResponse{IDs: ids, Deleted: len(req.Delete), Epoch: epoch, Series: series}, nil
}

// recoverNextID initialises the global ID allocator as the max next-ID
// over all shards. Every shard must answer: allocating below a silent
// shard's high-water mark would collide when it comes back.
func (c *Coordinator) recoverNextID(ctx context.Context) error {
	if c.nextID >= 0 {
		return nil
	}
	next := 0
	for _, sh := range c.shards {
		info, err := sh.Info(ctx)
		if err != nil {
			return fmt.Errorf("recovering the ID allocator from shard %s: %w", sh.Name(), err)
		}
		if info.NextID > next {
			next = info.NextID
		}
	}
	c.nextID = next
	return nil
}

// Stats merges the shards' /stats payloads: resident counts and epochs
// sum, per-measure engine counters merge field-wise (the wire-stable
// engine.Stats shape is what makes this drift-free).
func (c *Coordinator) Stats(ctx context.Context) (*server.StatsResponse, error) {
	out := &server.StatsResponse{Measures: make(map[string]server.MeasureStatsJSON)}
	merged := make(map[string]engine.Stats)
	for _, sh := range c.shards {
		st, err := sh.Stats(ctx)
		if err != nil {
			return nil, fmt.Errorf("reading stats from shard %s: %w", sh.Name(), err)
		}
		out.Epoch += st.Epoch
		out.Series += st.Series
		if st.SeriesLen > out.SeriesLen {
			out.SeriesLen = st.SeriesLen
		}
		for name, ms := range st.Measures {
			merged[name] = merged[name].Merge(ms.Stats)
		}
	}
	for name, st := range merged {
		out.Measures[name] = server.MeasureStatsJSON{Stats: st, Summary: st.String()}
	}
	return out, nil
}

// ShardHealthJSON is one shard's entry in the cluster health report.
type ShardHealthJSON struct {
	Shard string `json:"shard"`
	// Status is the shard's own health status, or "unreachable" when the
	// health probe itself failed.
	Status string                 `json:"status"`
	Error  string                 `json:"error,omitempty"`
	Health *server.HealthResponse `json:"health,omitempty"`
}

// HealthResponse is the cluster-wide health picture: "ok" only when
// every shard answered and reported ok. UptimeSeconds and Build describe
// the coordinator process itself, not the shards (each shard's own
// /healthz carries its own).
type HealthResponse struct {
	Status        string              `json:"status"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Build         telemetry.BuildJSON `json:"build"`
	Shards        []ShardHealthJSON   `json:"shards"`
}

// Health probes every shard.
func (c *Coordinator) Health(ctx context.Context) *HealthResponse {
	out := &HealthResponse{Status: "ok", UptimeSeconds: telemetry.Uptime().Seconds(), Build: telemetry.Build()}
	for _, sh := range c.shards {
		h, err := sh.Health(ctx)
		if err != nil {
			out.Status = "degraded"
			out.Shards = append(out.Shards, ShardHealthJSON{Shard: sh.Name(), Status: "unreachable", Error: err.Error()})
			continue
		}
		if h.Status != "ok" {
			out.Status = "degraded"
		}
		out.Shards = append(out.Shards, ShardHealthJSON{Shard: sh.Name(), Status: h.Status, Health: h})
	}
	return out
}
