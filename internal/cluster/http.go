package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"uncertts/internal/engine"
	"uncertts/internal/qerr"
	"uncertts/internal/server"
	"uncertts/internal/telemetry"
)

// ShardStatusError carries a shard's HTTP refusal (any non-2xx answer)
// back through the coordinator with its status intact: a shard-side 404
// (unknown ID) or 400 (bad request) is the query's own fault, and the
// coordinator re-raises it verbatim instead of degrading around it.
type ShardStatusError struct {
	Shard  string
	Status int
	Msg    string
}

func (e *ShardStatusError) Error() string {
	return fmt.Sprintf("shard %s answered %d: %s", e.Shard, e.Status, e.Msg)
}

// boundPushInterval is how often an HTTPShard samples the coordinator's
// shared cut for improvements to push into its running shard query. It
// mirrors the shard's own report cadence (server.boundPollInterval).
const boundPushInterval = 2 * time.Millisecond

// HTTPShard drives one remote shard process over its /cluster endpoints.
// Queries stream back over NDJSON; bound propagation runs both ways while
// the stream is open — shard-side improvements arrive as bound records in
// the stream, coordinator-side improvements are POSTed to /cluster/bound
// keyed by a per-query token.
type HTTPShard struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTP wraps the shard process at baseURL (e.g. "http://127.0.0.1:8081").
// A nil client uses http.DefaultClient.
func NewHTTP(name, baseURL string, client *http.Client) *HTTPShard {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPShard{name: name, base: baseURL, client: client}
}

func (h *HTTPShard) Name() string { return h.name }

// newToken mints the per-query bound token. Collisions across concurrent
// queries to the same shard must be negligible; 16 random bytes are.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a token
		// that disables mid-flight pushes rather than failing the query.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// wireRecord is the union of every record kind a /cluster/query NDJSON
// stream interleaves: bound records (bound_sq / prob_bound, no id), item
// records (id plus distance or prob), the final done record, and the
// mid-stream error record.
type wireRecord struct {
	Done  bool         `json:"done"`
	Epoch uint64       `json:"epoch"`
	Total int          `json:"total"`
	Stats engine.Stats `json:"stats"`

	Error string `json:"error"`

	BoundSq   *float64 `json:"bound_sq"`
	ProbBound *float64 `json:"prob_bound"`

	ID       *int     `json:"id"`
	Distance *float64 `json:"distance"`
	Prob     *float64 `json:"prob"`
}

func (h *HTTPShard) Query(ctx context.Context, req server.QueryRequest, bnd *engine.Bound, pbnd *engine.ProbBound) (*server.QueryResponse, error) {
	m, err := engine.ParseMeasure(req.Measure)
	if err != nil {
		return nil, err
	}
	kind, err := engine.ParseKind(req.Type)
	if err != nil {
		return nil, err
	}

	creq := server.ClusterQueryRequest{QueryRequest: req}
	token := ""
	if bnd != nil || pbnd != nil {
		token = newToken()
		creq.BoundToken = token
	}
	if bnd != nil {
		if v := bnd.Squared(); !math.IsInf(v, 1) {
			creq.BoundSq = &v
		}
	}
	if pbnd != nil {
		if v := pbnd.Value(); !math.IsInf(v, -1) {
			creq.ProbBound = &v
		}
	}
	body, err := json.Marshal(creq)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/cluster/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := telemetry.TraceFrom(ctx).ID(); id != "" {
		hreq.Header.Set(telemetry.TraceHeader, id)
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("shard %s: %w", h.name, ctx.Err())
		}
		return nil, qerr.ShardUnreachablef("shard %s: %v", h.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, h.statusError(resp)
	}

	// Push the coordinator's cut into the running shard query whenever it
	// tightens past what we last pushed. Echoes are harmless: LowerSquared
	// and Raise are idempotent min/max updates.
	pushDone := make(chan struct{})
	var pushWG sync.WaitGroup
	if token != "" {
		pushWG.Add(1)
		go func() {
			defer pushWG.Done()
			t := time.NewTicker(boundPushInterval)
			defer t.Stop()
			lastSq, lastP := math.Inf(1), math.Inf(-1)
			for {
				select {
				case <-pushDone:
					return
				case <-t.C:
				}
				rec := server.ClusterBoundJSON{Token: token}
				if bnd != nil {
					if v := bnd.Squared(); v < lastSq {
						lastSq = v
						rec.BoundSq = &v
					}
				}
				if pbnd != nil {
					if v := pbnd.Value(); v > lastP {
						lastP = v
						rec.ProbBound = &v
					}
				}
				if rec.BoundSq == nil && rec.ProbBound == nil {
					continue
				}
				h.pushBound(ctx, rec)
			}
		}()
	}
	stopPush := func() {
		close(pushDone)
		pushWG.Wait()
	}

	out := &server.QueryResponse{Measure: m.String(), Type: kind.String()}
	dec := json.NewDecoder(resp.Body)
	for {
		var rec wireRecord
		if err := dec.Decode(&rec); err != nil {
			stopPush()
			if ctx.Err() != nil {
				return nil, fmt.Errorf("shard %s: %w", h.name, ctx.Err())
			}
			if err == io.EOF {
				return nil, qerr.ShardUnreachablef("shard %s: stream ended without a done record", h.name)
			}
			return nil, qerr.ShardUnreachablef("shard %s: reading stream: %v", h.name, err)
		}
		switch {
		case rec.Error != "":
			stopPush()
			return nil, qerr.ShardUnreachablef("shard %s failed mid-stream: %s", h.name, rec.Error)
		case rec.Done:
			stopPush()
			out.Epoch = rec.Epoch
			out.Total = rec.Total
			h.sortResult(out, kind)
			return out, nil
		case rec.ID != nil:
			switch kind {
			case engine.KindTopK:
				d := 0.0
				if rec.Distance != nil {
					d = *rec.Distance
				}
				out.Neighbors = append(out.Neighbors, server.NeighborJSON{ID: *rec.ID, Distance: d})
			case engine.KindProbTopK:
				p := 0.0
				if rec.Prob != nil {
					p = *rec.Prob
				}
				out.Matches = append(out.Matches, server.MatchJSON{ID: *rec.ID, Prob: p})
			default:
				out.IDs = append(out.IDs, *rec.ID)
			}
		case rec.BoundSq != nil && bnd != nil:
			// The shard's own cut tightening: already squared and
			// ulpUp-inflated, so it folds straight into the shared bound.
			bnd.LowerSquared(*rec.BoundSq)
		case rec.ProbBound != nil && pbnd != nil:
			pbnd.Raise(*rec.ProbBound)
		}
	}
}

// sortResult restores the deterministic single-shard ordering the stream
// does not guarantee (range items stream mid-scan in confirmation order).
func (h *HTTPShard) sortResult(out *server.QueryResponse, kind engine.Kind) {
	switch kind {
	case engine.KindTopK:
		sort.Slice(out.Neighbors, func(i, j int) bool {
			a, b := out.Neighbors[i], out.Neighbors[j]
			if a.Distance != b.Distance {
				return a.Distance < b.Distance
			}
			return a.ID < b.ID
		})
	case engine.KindProbTopK:
		sort.Slice(out.Matches, func(i, j int) bool {
			a, b := out.Matches[i], out.Matches[j]
			if a.Prob != b.Prob {
				return a.Prob > b.Prob
			}
			return a.ID < b.ID
		})
	default:
		sort.Ints(out.IDs)
	}
}

// pushBound POSTs one bound improvement into the running shard query.
// Failures are ignored: the push is an optimisation, the stream's own
// records keep the answer correct without it.
func (h *HTTPShard) pushBound(ctx context.Context, rec server.ClusterBoundJSON) {
	body, err := json.Marshal(rec)
	if err != nil {
		return
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/cluster/bound", bytes.NewReader(body))
	if err != nil {
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(hreq)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		boundPushes.Inc()
	}
}

func (h *HTTPShard) Mutate(ctx context.Context, req server.SeriesRequest) (*server.SeriesResponse, error) {
	var out server.SeriesResponse
	if err := h.post(ctx, "/series", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (h *HTTPShard) FetchSeries(ctx context.Context, id int) (*server.ClusterSeriesJSON, error) {
	var out server.ClusterSeriesJSON
	if err := h.get(ctx, "/cluster/series?id="+url.QueryEscape(strconv.Itoa(id)), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (h *HTTPShard) Info(ctx context.Context) (server.ClusterInfoJSON, error) {
	var out server.ClusterInfoJSON
	if err := h.get(ctx, "/cluster/info", &out); err != nil {
		return server.ClusterInfoJSON{}, err
	}
	return out, nil
}

func (h *HTTPShard) Stats(ctx context.Context) (*server.StatsResponse, error) {
	var out server.StatsResponse
	if err := h.get(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (h *HTTPShard) Health(ctx context.Context) (*server.HealthResponse, error) {
	var out server.HealthResponse
	if err := h.get(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (h *HTTPShard) post(ctx context.Context, path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return h.do(ctx, hreq, out)
}

func (h *HTTPShard) get(ctx context.Context, path string, out interface{}) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+path, nil)
	if err != nil {
		return err
	}
	return h.do(ctx, hreq, out)
}

func (h *HTTPShard) do(ctx context.Context, hreq *http.Request, out interface{}) error {
	resp, err := h.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("shard %s: %w", h.name, ctx.Err())
		}
		return qerr.ShardUnreachablef("shard %s: %v", h.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return h.statusError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return qerr.ShardUnreachablef("shard %s: malformed response: %v", h.name, err)
	}
	return nil
}

// statusError reads a non-2xx shard answer into a ShardStatusError.
func (h *HTTPShard) statusError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return &ShardStatusError{Shard: h.name, Status: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
}
