package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"uncertts/internal/corpus"
	"uncertts/internal/munich"
	"uncertts/internal/server"
	"uncertts/internal/telemetry"
)

// newShardServerWithTracer is newShardServer with an injected tracer, so
// a test can observe the traces a shard finishes.
func newShardServerWithTracer(t testing.TB, tr *telemetry.Tracer) *server.Server {
	t.Helper()
	c := corpus.New(corpus.Config{ReportedSigma: 0.3, Segments: 4})
	return server.New(c, server.Options{MUNICH: munich.Options{Bins: 256}, Tracer: tr})
}

// traceRecorder captures the trace header each shard leg received, so the
// cross-process propagation contract is asserted on the actual wire.
type traceRecorder struct {
	mu   sync.Mutex
	seen map[int]string // shard index -> trace header on /cluster/query
}

func (tr *traceRecorder) middleware(i int, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/cluster/query" {
			tr.mu.Lock()
			tr.seen[i] = r.Header.Get(telemetry.TraceHeader)
			tr.mu.Unlock()
		}
		h.ServeHTTP(w, r)
	})
}

// TestDegradedQueryTelemetry kills one shard and drives a query through
// the coordinator's HTTP surface, asserting the full observability story:
// the degraded-query and per-shard error counters move, the response
// carries the minted trace ID in its header (never the JSON body), the
// live shards received that exact ID on their scatter legs, and the
// finished trace records a span per shard plus the merge — with the dead
// shard's span carrying the error.
func TestDegradedQueryTelemetry(t *testing.T) {
	tracer := telemetry.NewTracer(8, 0, slog.New(slog.NewJSONHandler(io.Discard, nil)))
	rec := &traceRecorder{seen: map[int]string{}}
	co, _, httpServers := httpCluster(t, 3, Options{Tracer: tracer}, rec.middleware)
	ingest(t, co, 12, 16)

	degradedBefore := degradedQueries.Value()
	shardErrBefore := shardErrors.With(shardName(2), "unreachable").Value()

	front := httptest.NewServer(co.Handler())
	defer front.Close()
	httpServers[2].Close()

	body, err := json.Marshal(server.QueryRequest{Measure: "euclidean", Type: "topk", K: 4, Series: seriesPtr(16, 7)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query should answer 200, got %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(telemetry.TraceHeader)
	if traceID == "" {
		t.Fatal("response is missing the trace ID header")
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(traceID)) {
		t.Fatal("the trace ID leaked into the JSON body; it must travel only in the header")
	}
	var out Response
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || len(out.ShardErrors) != 1 || out.ShardErrors[0].Shard != shardName(2) {
		t.Fatalf("want a degraded answer missing shard-2, got %+v", out)
	}

	if got := degradedQueries.Value() - degradedBefore; got != 1 {
		t.Errorf("degraded-query counter moved by %d, want 1", got)
	}
	if got := shardErrors.With(shardName(2), "unreachable").Value() - shardErrBefore; got != 1 {
		t.Errorf("shard-error counter {shard-2, unreachable} moved by %d, want 1", got)
	}

	rec.mu.Lock()
	for _, i := range []int{0, 1} {
		if rec.seen[i] != traceID {
			t.Errorf("shard %d saw trace header %q, want %q", i, rec.seen[i], traceID)
		}
	}
	rec.mu.Unlock()

	recent := tracer.Recent(1)
	if len(recent) != 1 {
		t.Fatalf("tracer retained %d traces, want 1", len(recent))
	}
	tr := recent[0]
	if tr.ID != traceID || tr.Op != "cluster_scatter" || !tr.Degraded {
		t.Fatalf("trace record mismatch: %+v", tr)
	}
	if tr.Kind != "topk" || tr.Measure != "euclidean" {
		t.Fatalf("trace should carry the query labels, got kind=%q measure=%q", tr.Kind, tr.Measure)
	}
	spans := map[string]telemetry.SpanJSON{}
	for _, sp := range tr.Spans {
		spans[sp.Name] = sp
	}
	for _, name := range []string{"scatter:shard-0", "scatter:shard-1", "scatter:shard-2", "merge"} {
		if _, ok := spans[name]; !ok {
			t.Errorf("trace is missing span %q (have %v)", name, spanNames(tr.Spans))
		}
	}
	if sp := spans["scatter:shard-2"]; sp.Error == "" {
		t.Error("the dead shard's scatter span should record its error")
	}
	for _, name := range []string{"scatter:shard-0", "scatter:shard-1", "merge"} {
		if sp := spans[name]; sp.Error != "" {
			t.Errorf("span %q records error %q, want none", name, sp.Error)
		}
	}
}

func spanNames(spans []telemetry.SpanJSON) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}

// TestShardAdoptsCoordinatorTraceID asserts the shard side of the
// contract: a /cluster/query leg carrying a trace header finishes a shard
// trace under that exact ID, so one grep correlates the coordinator's
// trace with every shard's.
func TestShardAdoptsCoordinatorTraceID(t *testing.T) {
	shardTracer := telemetry.NewTracer(8, 0, slog.New(slog.NewJSONHandler(io.Discard, nil)))
	srv := newShardServerWithTracer(t, shardTracer)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	co := New([]Shard{NewHTTP(shardName(0), hs.URL, nil)},
		Options{Tracer: telemetry.NewTracer(8, 0, slog.New(slog.NewJSONHandler(io.Discard, nil)))})
	ingest(t, co, 6, 16)

	front := httptest.NewServer(co.Handler())
	defer front.Close()
	body, err := json.Marshal(server.QueryRequest{Measure: "euclidean", Type: "topk", K: 3, Series: seriesPtr(16, 2)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get(telemetry.TraceHeader)
	if traceID == "" {
		t.Fatal("coordinator response is missing the trace ID header")
	}

	recent := shardTracer.Recent(1)
	if len(recent) != 1 {
		t.Fatalf("shard tracer retained %d traces, want 1", len(recent))
	}
	if recent[0].ID != traceID {
		t.Fatalf("shard finished trace %q, want the coordinator's %q", recent[0].ID, traceID)
	}
	if recent[0].Op != "cluster_query" {
		t.Fatalf("shard trace op = %q, want cluster_query", recent[0].Op)
	}
}
