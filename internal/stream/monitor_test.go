package stream

import (
	"testing"

	"uncertts/internal/proud"
	"uncertts/internal/stats"
)

func newTestMonitor(t *testing.T, patterns ...Pattern) *Monitor {
	t.Helper()
	m, err := NewMonitor(0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range patterns {
		if err := m.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestMonitorMatchesIdenticalEpoch(t *testing.T) {
	ref := []float64{0, 1, 2, 1, 0, -1, -2, -1}
	m := newTestMonitor(t, Pattern{ID: 1, Values: ref, Eps: 5, Tau: 0.5})
	events, err := m.PushBatch(7, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("want exactly one decision per epoch, got %d", len(events))
	}
	e := events[0]
	if e.Decision != proud.Accept || e.StreamID != 7 || e.PatternID != 1 {
		t.Errorf("event = %+v", e)
	}
	if e.Timestamp != len(ref)-1 && !e.Early {
		t.Errorf("non-early decision should land on the epoch boundary: %+v", e)
	}
}

func TestMonitorRejectsDistantStream(t *testing.T) {
	ref := make([]float64, 10)
	far := make([]float64, 10)
	for i := range far {
		far[i] = 50
	}
	m := newTestMonitor(t, Pattern{ID: 1, Values: ref, Eps: 1, Tau: 0.6})
	events, err := m.PushBatch(0, far)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Decision != proud.Reject {
		t.Fatalf("events = %+v", events)
	}
	// tau >= 0.5 enables the sound early reject on a hugely distant
	// stream.
	if !events[0].Early {
		t.Error("expected an early rejection")
	}
}

func TestMonitorEpochsRestart(t *testing.T) {
	ref := []float64{1, 2, 3}
	m := newTestMonitor(t, Pattern{ID: 1, Values: ref, Eps: 4, Tau: 0.5})
	// Three epochs of data: identical, identical, distant.
	data := append(append(append([]float64{}, ref...), ref...), 40, 40, 40)
	events, err := m.PushBatch(0, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("want 3 epoch decisions, got %d: %+v", len(events), events)
	}
	if events[0].Decision != proud.Accept || events[1].Decision != proud.Accept {
		t.Errorf("first two epochs should accept: %+v", events)
	}
	if events[2].Decision != proud.Reject {
		t.Errorf("third epoch should reject: %+v", events)
	}
}

func TestMonitorMultipleStreamsIndependent(t *testing.T) {
	ref := []float64{0, 1, 0}
	m := newTestMonitor(t, Pattern{ID: 1, Values: ref, Eps: 3, Tau: 0.5})
	// Interleave two streams; each must get its own epoch state. Events
	// may fire early (the distant stream rejects on its very first push),
	// so collect across every call.
	var ev0, ev1 []Event
	push := func(stream int, v float64) {
		t.Helper()
		ev, err := m.Push(stream, v)
		if err != nil {
			t.Fatal(err)
		}
		if stream == 0 {
			ev0 = append(ev0, ev...)
		} else {
			ev1 = append(ev1, ev...)
		}
	}
	push(0, 0)
	push(1, 30)
	push(0, 1)
	push(1, 30)
	push(0, 0)
	push(1, 30)
	if len(ev0) != 1 || ev0[0].Decision != proud.Accept {
		t.Errorf("stream 0: %+v", ev0)
	}
	if len(ev1) != 1 || ev1[0].Decision != proud.Reject {
		t.Errorf("stream 1: %+v", ev1)
	}
}

func TestMonitorMultiplePatterns(t *testing.T) {
	m := newTestMonitor(t,
		Pattern{ID: 1, Values: []float64{0, 0, 0, 0}, Eps: 2, Tau: 0.5},
		Pattern{ID: 2, Values: []float64{10, 10, 10, 10}, Eps: 2, Tau: 0.5},
	)
	events, err := m.PushBatch(0, []float64{0.1, -0.1, 0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	byPattern := map[int]proud.Decision{}
	for _, e := range events {
		byPattern[e.PatternID] = e.Decision
	}
	if byPattern[1] != proud.Accept {
		t.Errorf("pattern 1 should accept: %+v", events)
	}
	if byPattern[2] != proud.Reject {
		t.Errorf("pattern 2 should reject: %+v", events)
	}
}

func TestMonitorNoisyStreamStatistics(t *testing.T) {
	// A stream that equals the pattern plus noise at the reported sigma
	// should be accepted in the large majority of epochs when eps is
	// calibrated generously.
	rng := stats.NewRand(3)
	ref := make([]float64, 16)
	for i := range ref {
		ref[i] = float64(i % 4)
	}
	m, err := NewMonitor(0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(Pattern{ID: 1, Values: ref, Eps: 3, Tau: 0.2}); err != nil {
		t.Fatal(err)
	}
	accepts, total := 0, 0
	for epoch := 0; epoch < 50; epoch++ {
		for _, v := range ref {
			events, err := m.Push(0, v+rng.NormFloat64()*0.3)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events {
				total++
				if e.Decision == proud.Accept {
					accepts++
				}
			}
		}
	}
	if total != 50 {
		t.Fatalf("want 50 epoch decisions, got %d", total)
	}
	if rate := float64(accepts) / float64(total); rate < 0.8 {
		t.Errorf("accept rate %v too low for in-band noise", rate)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(-1, 0); err == nil {
		t.Error("negative sigma should error")
	}
	m, _ := NewMonitor(0.1, 0.1)
	if err := m.Register(Pattern{ID: 1, Values: nil, Eps: 1, Tau: 0.5}); err == nil {
		t.Error("empty pattern should error")
	}
	if err := m.Register(Pattern{ID: 1, Values: []float64{1}, Eps: 1, Tau: 0}); err == nil {
		t.Error("tau=0 should error")
	}
	if err := m.Register(Pattern{ID: 1, Values: []float64{1}, Eps: -1, Tau: 0.5}); err == nil {
		t.Error("negative eps should error")
	}
	if _, err := m.Push(0, 1); err == nil {
		t.Error("push with no patterns should error")
	}
	if err := m.Register(Pattern{ID: 1, Values: []float64{1, 2}, Eps: 1, Tau: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Push(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(Pattern{ID: 2, Values: []float64{1}, Eps: 1, Tau: 0.5}); err == nil {
		t.Error("late registration should error")
	}
	if m.Patterns() != 1 {
		t.Errorf("Patterns = %d", m.Patterns())
	}
}

func TestMonitorEarlyDecisionEmittedOnce(t *testing.T) {
	// After an early rejection, the rest of the epoch must be drained
	// silently and the next epoch must evaluate afresh.
	// eps must leave room for the expected noise energy n*varD ~ 0.48, or
	// even an identical pair is correctly rejected.
	ref := make([]float64, 6)
	m := newTestMonitor(t, Pattern{ID: 1, Values: ref, Eps: 2, Tau: 0.7})
	far := []float64{99, 99, 99, 99, 99, 99}
	events, err := m.PushBatch(0, far)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("early decision emitted %d times", len(events))
	}
	// Next epoch: matching data accepts again.
	events, err = m.PushBatch(0, ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Decision != proud.Accept {
		t.Fatalf("second epoch events = %+v", events)
	}
}

// TestMonitorDrainsUntilEpochBoundary pins the drain window push by push:
// after an early decision, every remaining push of the epoch must emit
// nothing, and the boundary must reset the state for a fresh epoch.
func TestMonitorDrainsUntilEpochBoundary(t *testing.T) {
	ref := make([]float64, 5)
	m := newTestMonitor(t, Pattern{ID: 1, Values: ref, Eps: 2, Tau: 0.7})
	// The first far push forces an early rejection...
	events, err := m.Push(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Decision != proud.Reject || !events[0].Early || events[0].Timestamp != 0 {
		t.Fatalf("first push events = %+v, want one early reject at timestamp 0", events)
	}
	// ...and the remaining 4 pushes of the epoch drain silently.
	for i := 1; i < len(ref); i++ {
		events, err := m.Push(0, 99)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 0 {
			t.Fatalf("drain push %d emitted %+v, want nothing", i, events)
		}
	}
	// The next epoch evaluates afresh: matching data accepts exactly at the
	// new epoch's boundary.
	for i := 0; i < len(ref); i++ {
		events, err := m.Push(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(ref)-1 {
			if len(events) != 0 {
				t.Fatalf("second epoch push %d emitted %+v before the boundary", i, events)
			}
			continue
		}
		if len(events) != 1 || events[0].Decision != proud.Accept || events[0].Early || events[0].Timestamp != len(ref)-1 {
			t.Fatalf("second epoch decision = %+v, want boundary accept at timestamp %d", events, len(ref)-1)
		}
	}
}

// TestMonitorRestartsEvaluatorAfterEachEpoch verifies the evaluator is
// rebuilt on the push that follows a completed epoch: decisions land on
// every epoch boundary with per-epoch (not cumulative) statistics, so an
// epoch of far data between two matching epochs flips only its own
// decision.
func TestMonitorRestartsEvaluatorAfterEachEpoch(t *testing.T) {
	ref := []float64{0, 1, 0, 1}
	m := newTestMonitor(t, Pattern{ID: 1, Values: ref, Eps: 3, Tau: 0.5})
	feed := func(vals []float64) []Event {
		t.Helper()
		evs, err := m.PushBatch(0, vals)
		if err != nil {
			t.Fatal(err)
		}
		return evs
	}
	first := feed(ref)
	if len(first) != 1 || first[0].Decision != proud.Accept {
		t.Fatalf("epoch 1 events = %+v", first)
	}
	far := feed([]float64{40, 40, 40, 40})
	if len(far) != 1 || far[0].Decision != proud.Reject {
		t.Fatalf("epoch 2 events = %+v", far)
	}
	// A stale evaluator would carry epoch 2's huge accumulated distance
	// into epoch 3 and reject; a fresh one accepts.
	third := feed(ref)
	if len(third) != 1 || third[0].Decision != proud.Accept {
		t.Fatalf("epoch 3 events = %+v, want accept from a fresh evaluator", third)
	}
}

// TestMonitorStreamStateIsolationDuringDrain interleaves a stream that is
// draining an early decision with one that is still evaluating: the
// drain state of one stream must not advance, decide, or reset the other.
func TestMonitorStreamStateIsolationDuringDrain(t *testing.T) {
	ref := make([]float64, 4)
	m := newTestMonitor(t, Pattern{ID: 1, Values: ref, Eps: 2, Tau: 0.7})
	// Stream 7 rejects early on its first push and enters its drain.
	evs, err := m.Push(7, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].StreamID != 7 || !evs[0].Early {
		t.Fatalf("stream 7 events = %+v", evs)
	}
	// Stream 8 starts later and receives matching data, interleaved with
	// stream 7's silent drain pushes.
	var got []Event
	for i := 0; i < len(ref); i++ {
		evs, err := m.Push(8, 0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, evs...)
		if i < len(ref)-1 {
			drain, err := m.Push(7, 99)
			if err != nil {
				t.Fatal(err)
			}
			if len(drain) != 0 {
				t.Fatalf("stream 7 drain push %d emitted %+v", i, drain)
			}
		}
	}
	if len(got) != 1 || got[0].StreamID != 8 || got[0].Decision != proud.Accept || got[0].Timestamp != len(ref)-1 {
		t.Fatalf("stream 8 events = %+v, want one boundary accept", got)
	}
}
