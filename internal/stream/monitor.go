// Package stream provides continuous similarity monitoring over uncertain
// data streams — the deployment scenario PROUD was designed for (Yeh et
// al., EDBT 2009): reference patterns are registered once, uncertain
// observations arrive one timestamp at a time, and the monitor reports, per
// epoch, which patterns probabilistically match the stream.
//
// Internally every (stream, pattern) pair runs a proud.Stream evaluator,
// so decisions can fire before an epoch completes whenever the sound
// early-termination bound applies.
package stream

import (
	"errors"
	"fmt"

	"uncertts/internal/proud"
)

// Pattern is a registered reference series with its matching thresholds.
type Pattern struct {
	// ID identifies the pattern in emitted events.
	ID int
	// Values is the reference observation sequence; its length defines the
	// epoch length for this pattern.
	Values []float64
	// Eps is the Euclidean distance threshold.
	Eps float64
	// Tau is the probability threshold in (0, 1).
	Tau float64
}

// Event reports a decision for one pattern on one stream.
type Event struct {
	// StreamID and PatternID identify the pair.
	StreamID  int
	PatternID int
	// Decision is Accept or Reject (Undecided is never emitted).
	Decision proud.Decision
	// Timestamp is the stream position (0-based within the epoch) at which
	// the decision became certain; len(pattern)-1 for end-of-epoch
	// decisions, earlier for early terminations.
	Timestamp int
	// Early reports whether the decision fired before the epoch completed.
	Early bool
}

// Monitor matches registered patterns against uncertain streams.
type Monitor struct {
	// QuerySigma and StreamSigma are the constant error standard
	// deviations reported for the patterns and the streams.
	QuerySigma  float64
	StreamSigma float64

	patterns []Pattern
	states   map[int][]*patternState // stream ID -> one state per pattern
}

type patternState struct {
	s       *proud.Stream
	pos     int
	decided bool
}

// NewMonitor returns a Monitor with the given reported error levels.
func NewMonitor(querySigma, streamSigma float64) (*Monitor, error) {
	if querySigma < 0 || streamSigma < 0 {
		return nil, fmt.Errorf("stream: negative sigma (query %v, stream %v)", querySigma, streamSigma)
	}
	return &Monitor{
		QuerySigma:  querySigma,
		StreamSigma: streamSigma,
		states:      make(map[int][]*patternState),
	}, nil
}

// Register adds a pattern. Patterns must be registered before the first
// Push; registering later returns an error to keep epoch alignment simple.
func (m *Monitor) Register(p Pattern) error {
	if len(p.Values) == 0 {
		return errors.New("stream: empty pattern")
	}
	if p.Tau <= 0 || p.Tau >= 1 {
		return fmt.Errorf("stream: pattern %d: tau %v outside (0, 1)", p.ID, p.Tau)
	}
	if p.Eps < 0 {
		return fmt.Errorf("stream: pattern %d: negative eps %v", p.ID, p.Eps)
	}
	if len(m.states) != 0 {
		return errors.New("stream: cannot register patterns after pushing data")
	}
	m.patterns = append(m.patterns, p)
	return nil
}

// Patterns returns the number of registered patterns.
func (m *Monitor) Patterns() int { return len(m.patterns) }

// Push consumes the next observation of the given stream and returns any
// decisions that became certain at this timestamp. When a pattern's epoch
// completes (or decides early), its evaluator restarts on the next
// timestamp, so matching is per consecutive epoch.
func (m *Monitor) Push(streamID int, value float64) ([]Event, error) {
	if len(m.patterns) == 0 {
		return nil, errors.New("stream: no patterns registered")
	}
	states, ok := m.states[streamID]
	if !ok {
		states = make([]*patternState, len(m.patterns))
		m.states[streamID] = states
	}
	var events []Event
	for pi, p := range m.patterns {
		st := states[pi]
		if st == nil || st.pos >= len(p.Values) {
			ps, err := proud.NewStream(p.Eps, p.Tau, len(p.Values), m.QuerySigma, m.StreamSigma)
			if err != nil {
				return nil, fmt.Errorf("stream: pattern %d: %w", p.ID, err)
			}
			st = &patternState{s: ps}
			states[pi] = st
		}
		if err := st.s.Push(p.Values[st.pos], value); err != nil {
			return nil, fmt.Errorf("stream: pattern %d: %w", p.ID, err)
		}
		pos := st.pos
		st.pos++
		if st.decided {
			// Early decision already emitted for this epoch; drain until
			// the epoch boundary.
			if st.pos >= len(p.Values) {
				states[pi] = nil
			}
			continue
		}
		d := st.s.Decide()
		if d == proud.Undecided {
			continue
		}
		events = append(events, Event{
			StreamID:  streamID,
			PatternID: p.ID,
			Decision:  d,
			Timestamp: pos,
			Early:     !st.s.Complete(),
		})
		if st.s.Complete() {
			states[pi] = nil // fresh epoch next push
		} else {
			st.decided = true
		}
	}
	return events, nil
}

// PushBatch pushes a whole slice of observations and concatenates the
// emitted events.
func (m *Monitor) PushBatch(streamID int, values []float64) ([]Event, error) {
	var all []Event
	for _, v := range values {
		ev, err := m.Push(streamID, v)
		if err != nil {
			return nil, err
		}
		all = append(all, ev...)
	}
	return all, nil
}
