package qerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestSentinelWrapping(t *testing.T) {
	err := BadRequestf("k = %d must be at least 1", 0)
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("BadRequestf should wrap ErrBadRequest, got %v", err)
	}
	if want := "bad request: k = 0 must be at least 1"; err.Error() != want {
		t.Errorf("message = %q, want %q", err.Error(), want)
	}

	err = LengthMismatchf("query has %d values, corpus series have %d", 9, 16)
	if !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("LengthMismatchf should wrap ErrLengthMismatch, got %v", err)
	}
}

func TestCancelledCarriesBothSentinels(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		err := Cancelled(cause)
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("Cancelled(%v) should wrap ErrCancelled", cause)
		}
		if !errors.Is(err, cause) {
			t.Errorf("Cancelled(%v) should wrap the context error", cause)
		}
		if !IsCancellation(err) {
			t.Errorf("IsCancellation(Cancelled(%v)) = false", cause)
		}
	}
	if err := Cancelled(nil); !errors.Is(err, context.Canceled) {
		t.Errorf("Cancelled(nil) should default to context.Canceled, got %v", err)
	}
	// A deeper wrap still classifies.
	deep := fmt.Errorf("engine: query 3: %w", Cancelled(context.Canceled))
	if !IsCancellation(deep) || !errors.Is(deep, ErrCancelled) {
		t.Errorf("wrapped cancellation lost its sentinels: %v", deep)
	}
	if IsCancellation(errors.New("boom")) {
		t.Error("IsCancellation should reject unrelated errors")
	}
}
