// Package qerr defines the typed sentinel errors of the query surface.
// Every error the declarative query API (engine.Run and the HTTP server
// built on it) returns wraps exactly one of these sentinels, so callers
// classify failures with errors.Is instead of matching message strings,
// and the server maps them to HTTP status codes mechanically.
package qerr

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrUnknownMeasure marks a measure name or value outside the seven
	// the engine serves (euclidean, uma, uema, dtw, dust, proud, munich).
	ErrUnknownMeasure = errors.New("unknown measure")
	// ErrBadRequest marks a structurally invalid request: missing target,
	// k < 1, tau outside the measure's domain, a query kind the measure
	// does not serve, and so on. The wrapped message names the field.
	ErrBadRequest = errors.New("bad request")
	// ErrLengthMismatch marks an ad-hoc query series whose geometry does
	// not match the corpus (values, error model or sample model length).
	ErrLengthMismatch = errors.New("length mismatch")
	// ErrCancelled marks a query stopped by its context — cancellation or
	// deadline — before completing. Errors carrying it also carry the
	// context's own error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) keep working.
	ErrCancelled = errors.New("query cancelled")
	// ErrShardUnreachable marks a cluster shard that could not be reached
	// at all — connection refused, reset mid-stream, or a malformed shard
	// response. The coordinator maps it to 502 Bad Gateway; a degraded
	// response carries it in the per-shard error detail.
	ErrShardUnreachable = errors.New("shard unreachable")
	// ErrShardTimeout marks a cluster shard that was reachable but did not
	// answer within the coordinator's per-shard deadline. The coordinator
	// maps it to 504 Gateway Timeout — distinct from ErrShardUnreachable so
	// operators can tell a dead shard from a slow one.
	ErrShardTimeout = errors.New("shard timeout")
)

// ShardUnreachablef builds a shard-connectivity error wrapping
// ErrShardUnreachable.
func ShardUnreachablef(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrShardUnreachable, fmt.Sprintf(format, args...))
}

// ShardTimeoutf builds a shard-deadline error wrapping ErrShardTimeout.
func ShardTimeoutf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrShardTimeout, fmt.Sprintf(format, args...))
}

// BadRequestf builds a field-specific validation error wrapping
// ErrBadRequest.
func BadRequestf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// LengthMismatchf builds a field-specific geometry error wrapping
// ErrLengthMismatch.
func LengthMismatchf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrLengthMismatch, fmt.Sprintf(format, args...))
}

// Cancelled wraps a context's error so the result matches both
// ErrCancelled and the context error (Canceled or DeadlineExceeded) under
// errors.Is. A nil cause (a cancellation detected by a kernel whose
// context has not resolved yet) falls back to context.Canceled.
func Cancelled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%w: %w", ErrCancelled, cause)
}

// IsCancellation reports whether err stems from context cancellation or an
// expired deadline, whichever layer reported it first.
func IsCancellation(err error) bool {
	return errors.Is(err, ErrCancelled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
