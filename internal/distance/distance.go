// Package distance implements the distance functions underlying the
// similarity techniques: Lp norms, Euclidean distance (the basis of MUNICH
// and PROUD), and Dynamic Time Warping (which MUNICH and DUST can also be
// combined with, Section 3.2 of the paper).
package distance

import (
	"errors"
	"fmt"
	"math"
)

// ErrLengthMismatch is returned for lock-step distances over unequal-length
// inputs.
var ErrLengthMismatch = errors.New("distance: input lengths differ")

// Euclidean returns the L2 distance between x and y.
func Euclidean(x, y []float64) (float64, error) {
	d2, err := SquaredEuclidean(x, y)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d2), nil
}

// SquaredEuclidean returns the squared L2 distance between x and y. Working
// with squares avoids the sqrt in inner loops; thresholds are squared once
// instead.
func SquaredEuclidean(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	var acc float64
	for i := range x {
		d := x[i] - y[i]
		acc += d * d
	}
	return acc, nil
}

// Lp returns the Minkowski distance of order p >= 1 between x and y.
// p = math.Inf(1) gives the Chebyshev distance.
func Lp(x, y []float64, p float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	if p < 1 {
		return 0, fmt.Errorf("distance: Lp order %v < 1 is not a metric", p)
	}
	if math.IsInf(p, 1) {
		var max float64
		for i := range x {
			if d := math.Abs(x[i] - y[i]); d > max {
				max = d
			}
		}
		return max, nil
	}
	//lint:allow floatcmp Minkowski-order dispatch: p is a caller-chosen exact constant, not a computed value
	if p == 2 {
		return Euclidean(x, y)
	}
	//lint:allow floatcmp Minkowski-order dispatch: p is a caller-chosen exact constant, not a computed value
	if p == 1 {
		var acc float64
		for i := range x {
			acc += math.Abs(x[i] - y[i])
		}
		return acc, nil
	}
	var acc float64
	for i := range x {
		acc += math.Pow(math.Abs(x[i]-y[i]), p)
	}
	return math.Pow(acc, 1/p), nil
}

// DTW returns the Dynamic Time Warping distance between x and y with
// unconstrained warping, using squared point costs and returning the square
// root of the optimal path cost (the convention that makes DTW coincide with
// Euclidean distance when the optimal path is the diagonal).
func DTW(x, y []float64) (float64, error) {
	return DTWBand(x, y, -1)
}

// DTWBand returns the DTW distance constrained to a Sakoe-Chiba band of the
// given half-width (band < 0 means unconstrained). The band must be at least
// |len(x)-len(y)| for a path to exist.
func DTWBand(x, y []float64, band int) (float64, error) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 0, errors.New("distance: DTW over empty series")
	}
	if band >= 0 && abs(n-m) > band {
		return 0, fmt.Errorf("distance: DTW band %d narrower than length difference %d", band, abs(n-m))
	}
	// Rolling two-row DP over the (n+1) x (m+1) cost matrix.
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range curr {
			curr[j] = math.Inf(1)
		}
		lo, hi := 1, m
		if band >= 0 {
			if l := i - band; l > lo {
				lo = l
			}
			if h := i + band; h < hi {
				hi = h
			}
		}
		for j := lo; j <= hi; j++ {
			d := x[i-1] - y[j-1]
			cost := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if curr[j-1] < best {
				best = curr[j-1] // deletion
			}
			curr[j] = cost + best
		}
		prev, curr = curr, prev
	}
	return math.Sqrt(prev[m]), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Matrix computes the full pairwise distance matrix of a collection using
// the supplied distance function. Entry [i][j] holds d(items[i], items[j]).
// The function is assumed symmetric; each pair is evaluated once.
func Matrix(items [][]float64, d func(a, b []float64) (float64, error)) ([][]float64, error) {
	n := len(items)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, err := d(items[i], items[j])
			if err != nil {
				return nil, fmt.Errorf("distance: matrix entry (%d, %d): %w", i, j, err)
			}
			out[i][j] = v
			out[j][i] = v
		}
	}
	return out, nil
}
