package distance

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestEuclideanKnown(t *testing.T) {
	d, err := Euclidean([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 5, 1e-12) {
		t.Errorf("d = %v, want 5", d)
	}
}

func TestEuclideanErrors(t *testing.T) {
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	d, err := Euclidean(nil, nil)
	if err != nil || d != 0 {
		t.Errorf("empty inputs: d=%v err=%v", d, err)
	}
}

func TestSquaredEuclideanConsistent(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		x, y := raw[:half], raw[half:2*half]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		d2, err1 := SquaredEuclidean(x, y)
		d, err2 := Euclidean(x, y)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(d*d, d2, 1e-9*(1+d2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetricProperties(t *testing.T) {
	// Symmetry, identity, triangle inequality for Euclidean on random triples.
	f := func(a, b, c [4]float64) bool {
		for _, arr := range [][4]float64{a, b, c} {
			for _, v := range arr {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
					return true
				}
			}
		}
		dab, _ := Euclidean(a[:], b[:])
		dba, _ := Euclidean(b[:], a[:])
		daa, _ := Euclidean(a[:], a[:])
		dac, _ := Euclidean(a[:], c[:])
		dcb, _ := Euclidean(c[:], b[:])
		if dab != dba || daa != 0 {
			return false
		}
		return dab <= dac+dcb+1e-9*(1+dab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLpSpecialCases(t *testing.T) {
	x := []float64{1, -2, 3}
	y := []float64{0, 0, 0}
	l1, err := Lp(x, y, 1)
	if err != nil || !almostEqual(l1, 6, 1e-12) {
		t.Errorf("L1 = %v (%v), want 6", l1, err)
	}
	l2, err := Lp(x, y, 2)
	if err != nil || !almostEqual(l2, math.Sqrt(14), 1e-12) {
		t.Errorf("L2 = %v (%v)", l2, err)
	}
	linf, err := Lp(x, y, math.Inf(1))
	if err != nil || !almostEqual(linf, 3, 1e-12) {
		t.Errorf("Linf = %v (%v), want 3", linf, err)
	}
	l3, err := Lp(x, y, 3)
	want := math.Pow(1+8+27, 1.0/3)
	if err != nil || !almostEqual(l3, want, 1e-12) {
		t.Errorf("L3 = %v (%v), want %v", l3, err, want)
	}
	if _, err := Lp(x, y, 0.5); err == nil {
		t.Error("p < 1 should error")
	}
	if _, err := Lp(x, []float64{1}, 2); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestLpOrdering(t *testing.T) {
	// For fixed vectors, Lp is non-increasing in p.
	x := []float64{1, 2, 3, 4}
	y := []float64{0, 0, 0, 0}
	prev := math.Inf(1)
	for _, p := range []float64{1, 1.5, 2, 3, 10, math.Inf(1)} {
		d, err := Lp(x, y, p)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev+1e-12 {
			t.Errorf("Lp not monotone at p=%v: %v > %v", p, d, prev)
		}
		prev = d
	}
}

func TestDTWEqualsEuclideanOnAlignedSeries(t *testing.T) {
	// When the optimal path is the diagonal (identical series), DTW = 0 and
	// generally DTW <= Euclidean.
	x := []float64{1, 2, 3, 2, 1}
	d, err := DTW(x, x)
	if err != nil || d != 0 {
		t.Errorf("DTW(x,x) = %v (%v), want 0", d, err)
	}
	y := []float64{1, 2, 4, 2, 1}
	dtw, _ := DTW(x, y)
	eucl, _ := Euclidean(x, y)
	if dtw > eucl+1e-12 {
		t.Errorf("DTW (%v) must not exceed Euclidean (%v)", dtw, eucl)
	}
}

func TestDTWHandlesShift(t *testing.T) {
	// A shifted copy of a pattern is close under DTW but far under Euclidean.
	x := []float64{0, 0, 1, 2, 1, 0, 0, 0}
	y := []float64{0, 0, 0, 1, 2, 1, 0, 0}
	dtw, err := DTW(x, y)
	if err != nil {
		t.Fatal(err)
	}
	eucl, _ := Euclidean(x, y)
	if dtw >= eucl {
		t.Errorf("DTW (%v) should beat Euclidean (%v) on shifted patterns", dtw, eucl)
	}
	if dtw > 1e-9 {
		t.Errorf("DTW of a pure shift should be ~0, got %v", dtw)
	}
}

func TestDTWUnequalLengths(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{1, 1, 2, 2, 3, 3}
	d, err := DTW(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("DTW of stuttered copy should be ~0, got %v", d)
	}
}

func TestDTWBand(t *testing.T) {
	x := []float64{0, 0, 1, 2, 1, 0, 0, 0}
	y := []float64{0, 0, 0, 1, 2, 1, 0, 0}
	full, _ := DTW(x, y)
	banded, err := DTWBand(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if banded < full-1e-12 {
		t.Errorf("banded DTW (%v) cannot beat unconstrained (%v)", banded, full)
	}
	wide, err := DTWBand(x, y, 100)
	if err != nil || !almostEqual(wide, full, 1e-12) {
		t.Errorf("very wide band (%v) should equal unconstrained (%v)", wide, full)
	}
	// Band 0 on equal lengths forces the diagonal = Euclidean.
	b0, err := DTWBand(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	eucl, _ := Euclidean(x, y)
	if !almostEqual(b0, eucl, 1e-12) {
		t.Errorf("band-0 DTW = %v, want Euclidean %v", b0, eucl)
	}
}

func TestDTWErrors(t *testing.T) {
	if _, err := DTW(nil, []float64{1}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := DTWBand([]float64{1}, []float64{1, 2, 3, 4}, 1); err == nil {
		t.Error("band narrower than length difference should error")
	}
}

func TestDTWSymmetry(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e50 {
				return true
			}
		}
		half := len(raw) / 2
		x, y := raw[:half], raw[half:]
		dxy, err1 := DTW(x, y)
		dyx, err2 := DTW(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(dxy, dyx, 1e-9*(1+dxy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrix(t *testing.T) {
	items := [][]float64{{0, 0}, {3, 4}, {0, 1}}
	m, err := Matrix(items, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m[0][1], 5, 1e-12) || m[0][1] != m[1][0] {
		t.Errorf("matrix wrong: %v", m)
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal must be zero: %v", m[i][i])
		}
	}
	bad := [][]float64{{1}, {1, 2}}
	if _, err := Matrix(bad, Euclidean); err == nil {
		t.Error("mismatched items should propagate an error")
	}
}
