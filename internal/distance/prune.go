package distance

// Pruning primitives for the query engine: early-abandoning accumulation
// for lock-step distances, and the LB_Keogh envelope lower bound for banded
// DTW. Both let a top-k or range scan discard most candidates after a small
// prefix of the work — the classic UCR-suite tricks, applied here above the
// uncertain-similarity measures.

import (
	"fmt"
	"math"

	"uncertts/internal/qerr"
)

// SquaredEuclideanEarlyAbandon accumulates the squared L2 distance between
// x and y, abandoning as soon as the running sum exceeds cutoff. It returns
// the accumulated sum and whether the scan ran to completion. A completed
// scan returns exactly the value SquaredEuclidean would (same accumulation
// order), and completion implies sum <= cutoff. cutoff = +Inf never
// abandons.
func SquaredEuclideanEarlyAbandon(x, y []float64, cutoff float64) (float64, bool, error) {
	if len(x) != len(y) {
		return 0, false, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	var acc float64
	for i := range x {
		d := x[i] - y[i]
		acc += d * d
		if acc > cutoff {
			return acc, false, nil
		}
	}
	return acc, true, nil
}

// Envelope returns the upper and lower running-extremum envelopes of y
// within a Sakoe-Chiba band of half-width r:
//
//	upper[i] = max(y[i-r .. i+r])    lower[i] = min(y[i-r .. i+r])
//
// computed in O(n) with monotonic deques. r < 0 (unconstrained DTW) uses
// the whole series as the window. The envelopes feed LBKeoghSquared.
func Envelope(y []float64, r int) (upper, lower []float64) {
	n := len(y)
	upper = make([]float64, n)
	lower = make([]float64, n)
	EnvelopeInto(upper, lower, y, r)
	return upper, lower
}

// EnvelopeInto computes Envelope into caller-provided upper and lower
// slices (both must have len(y)). It allocates transient deque storage;
// per-series loops (corpus ingest, batch envelope builds) should hold an
// EnvelopeScratch and call EnvelopeIntoScratch instead.
func EnvelopeInto(upper, lower, y []float64, r int) {
	EnvelopeIntoScratch(upper, lower, y, r, &EnvelopeScratch{})
}

// EnvelopeScratch carries the monotonic-deque storage EnvelopeIntoScratch
// reuses across calls. The zero value is ready to use; the first call
// sizes it to the series length. Not safe for concurrent use.
type EnvelopeScratch struct {
	maxDQ, minDQ []int
}

// EnvelopeIntoScratch is EnvelopeInto with caller-owned scratch — the
// allocation-free form (after the scratch warms up to the series length)
// that arena-backed corpora use to build envelopes in place on the ingest
// path.
func EnvelopeIntoScratch(upper, lower, y []float64, r int, s *EnvelopeScratch) {
	n := len(y)
	if n == 0 {
		return
	}
	if r < 0 || r >= n {
		r = n - 1
	}
	if cap(s.maxDQ) < n {
		s.maxDQ = make([]int, n)
		s.minDQ = make([]int, n)
	}
	// Monotonic index deques: maxDQ keeps decreasing values, minDQ keeps
	// increasing values, over the sliding window [i-r, i+r]. Each index
	// enters a deque at most once, so tail lengths are bounded by n; the
	// head advances instead of re-slicing so the storage keeps its front
	// capacity across calls.
	maxDQ, minDQ := s.maxDQ[:0], s.minDQ[:0]
	maxHead, minHead := 0, 0
	push := func(j int) {
		for len(maxDQ) > maxHead && y[maxDQ[len(maxDQ)-1]] <= y[j] {
			maxDQ = maxDQ[:len(maxDQ)-1]
		}
		maxDQ = append(maxDQ, j)
		for len(minDQ) > minHead && y[minDQ[len(minDQ)-1]] >= y[j] {
			minDQ = minDQ[:len(minDQ)-1]
		}
		minDQ = append(minDQ, j)
	}
	for j := 0; j <= r && j < n; j++ {
		push(j)
	}
	for i := 0; i < n; i++ {
		if in := i + r; in < n && in > r {
			// indices <= r were pushed in the warm-up loop above
			push(in)
		}
		if out := i - r - 1; out >= 0 {
			if maxDQ[maxHead] == out {
				maxHead++
			}
			if minDQ[minHead] == out {
				minHead++
			}
		}
		upper[i] = y[maxDQ[maxHead]]
		lower[i] = y[minDQ[minHead]]
	}
}

// LBKimSquared is the O(1) first/last-point lower bound on the squared
// banded-DTW path cost between x and y: every warping path aligns x[0] with
// y[0] and x[n-1] with y[m-1], so those two squared point costs (one when
// the series have a single point) are always paid. It is far weaker than
// LB_Keogh but costs two subtractions, making it the first tier of the
// prune cascade.
func LBKimSquared(x, y []float64) float64 {
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	d0 := x[0] - y[0]
	acc := d0 * d0
	if len(x) > 1 || len(y) > 1 {
		dn := x[len(x)-1] - y[len(y)-1]
		acc += dn * dn
	}
	return acc
}

// LBKeoghSquared returns the LB_Keogh lower bound on the squared optimal
// path cost of banded DTW between q and the series whose envelopes are
// (upper, lower): every q[i] must align with some y[j] inside the band, so
// its cheapest possible point cost is its squared distance to the envelope.
// DTWBand returns the square root of the path cost, so
// LBKeoghSquared(q, U, L) <= DTWBand(q, y, r)^2 always holds.
//
// The scan abandons once the partial bound exceeds cutoff (pass +Inf to
// force a full evaluation); either way the returned value is a valid lower
// bound.
func LBKeoghSquared(q, upper, lower []float64, cutoff float64) (float64, error) {
	if len(q) != len(upper) || len(q) != len(lower) {
		return 0, fmt.Errorf("%w: series %d vs envelope %d/%d", ErrLengthMismatch, len(q), len(upper), len(lower))
	}
	var acc float64
	for i := range q {
		if d := q[i] - upper[i]; d > 0 {
			acc += d * d
		} else if d := lower[i] - q[i]; d > 0 {
			acc += d * d
		}
		if acc > cutoff {
			return acc, nil
		}
	}
	return acc, nil
}

// DTWBandEarlyAbandon is DTWBand with a cutoff on the squared path cost:
// once every reachable cell of a DP row exceeds cutoff, no completion can
// come in under it and the scan abandons. It returns the distance (the
// square root of the path cost, identical to DTWBand when complete) and
// whether the computation completed. Completion implies dist^2 <= cutoff
// up to the final-cell check; cutoff = +Inf never abandons.
func DTWBandEarlyAbandon(x, y []float64, band int, cutoff float64) (float64, bool, error) {
	return DTWBandEarlyAbandonCancel(x, y, band, cutoff, nil)
}

// dtwCancelStride is the number of DP rows computed between cancellation
// polls: frequent enough that even a single long DTW stops within a sliver
// of its runtime, sparse enough that the poll is noise next to a row.
const dtwCancelStride = 32

// DTWBandEarlyAbandonCancel is DTWBandEarlyAbandon with cooperative
// cancellation: every dtwCancelStride DP rows it polls done and, once done
// is closed, returns an error wrapping qerr.ErrCancelled. A nil done never
// cancels and computes exactly DTWBandEarlyAbandon.
func DTWBandEarlyAbandonCancel(x, y []float64, band int, cutoff float64, done <-chan struct{}) (float64, bool, error) {
	return DTWBandEarlyAbandonScratch(x, y, band, cutoff, done, nil)
}

// DTWScratch holds the two DP rows a banded-DTW evaluation needs, so a scan
// over many candidates reuses one pair of buffers instead of allocating per
// call. The zero value is ready to use; it grows on demand and is not safe
// for concurrent use (give each worker its own).
type DTWScratch struct {
	prev, curr []float64
}

// rows returns the two DP rows sized for a series of length m, growing the
// scratch buffers if needed.
func (s *DTWScratch) rows(m int) (prev, curr []float64) {
	if cap(s.prev) < m+1 {
		s.prev = make([]float64, m+1)
		s.curr = make([]float64, m+1)
	}
	return s.prev[:m+1], s.curr[:m+1]
}

// DTWBandEarlyAbandonScratch is DTWBandEarlyAbandonCancel with caller-owned
// DP scratch. A nil scratch allocates fresh rows, computing exactly
// DTWBandEarlyAbandonCancel; the arithmetic is identical either way, so the
// results are bit-for-bit the same.
func DTWBandEarlyAbandonScratch(x, y []float64, band int, cutoff float64, done <-chan struct{}, scratch *DTWScratch) (float64, bool, error) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 0, false, fmt.Errorf("distance: DTW over empty series")
	}
	if band >= 0 && abs(n-m) > band {
		return 0, false, fmt.Errorf("distance: DTW band %d narrower than length difference %d", band, abs(n-m))
	}
	var prev, curr []float64
	if scratch != nil {
		prev, curr = scratch.rows(m)
	} else {
		prev = make([]float64, m+1)
		curr = make([]float64, m+1)
	}
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		if done != nil && i%dtwCancelStride == 0 {
			select {
			case <-done:
				return 0, false, qerr.Cancelled(nil)
			default:
			}
		}
		for j := range curr {
			curr[j] = math.Inf(1)
		}
		lo, hi := 1, m
		if band >= 0 {
			if l := i - band; l > lo {
				lo = l
			}
			if h := i + band; h < hi {
				hi = h
			}
		}
		rowMin := math.Inf(1)
		for j := lo; j <= hi; j++ {
			d := x[i-1] - y[j-1]
			cost := d * d
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if curr[j-1] < best {
				best = curr[j-1]
			}
			curr[j] = cost + best
			if curr[j] < rowMin {
				rowMin = curr[j]
			}
		}
		// Path costs are non-decreasing along any warping path, so once the
		// cheapest cell of a row exceeds the cutoff the final cost must too.
		if rowMin > cutoff {
			return math.Sqrt(rowMin), false, nil
		}
		prev, curr = curr, prev
	}
	if prev[m] > cutoff {
		return math.Sqrt(prev[m]), false, nil
	}
	return math.Sqrt(prev[m]), true, nil
}
