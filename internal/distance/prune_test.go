package distance

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"uncertts/internal/qerr"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestSquaredEuclideanEarlyAbandonMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x, y := randSeries(rng, 64), randSeries(rng, 64)
		want, err := SquaredEuclidean(x, y)
		if err != nil {
			t.Fatal(err)
		}
		got, complete, err := SquaredEuclideanEarlyAbandon(x, y, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if !complete || got != want {
			t.Fatalf("cutoff=+Inf: got (%v, %v), want (%v, true)", got, complete, want)
		}
		// A cutoff at the exact value completes; anything below abandons.
		if _, complete, _ := SquaredEuclideanEarlyAbandon(x, y, want); !complete {
			t.Fatal("cutoff == distance should complete")
		}
		if got, complete, _ := SquaredEuclideanEarlyAbandon(x, y, want/2); complete {
			t.Fatal("cutoff below distance should abandon")
		} else if got <= want/2 {
			t.Fatalf("abandoned partial %v should exceed cutoff %v", got, want/2)
		}
	}
}

func TestSquaredEuclideanEarlyAbandonLengthMismatch(t *testing.T) {
	if _, _, err := SquaredEuclideanEarlyAbandon([]float64{1}, []float64{1, 2}, 10); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestEnvelopeBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 7, 33} {
		for _, r := range []int{-1, 0, 1, 3, 100} {
			y := randSeries(rng, n)
			upper, lower := Envelope(y, r)
			for i := 0; i < n; i++ {
				lo, hi := i-r, i+r
				if r < 0 || r >= n {
					lo, hi = 0, n-1
				}
				if lo < 0 {
					lo = 0
				}
				if hi > n-1 {
					hi = n - 1
				}
				wantU, wantL := math.Inf(-1), math.Inf(1)
				for j := lo; j <= hi; j++ {
					wantU = math.Max(wantU, y[j])
					wantL = math.Min(wantL, y[j])
				}
				if upper[i] != wantU || lower[i] != wantL {
					t.Fatalf("n=%d r=%d i=%d: envelope (%v, %v), want (%v, %v)",
						n, r, i, upper[i], lower[i], wantU, wantL)
				}
			}
		}
	}
}

func TestLBKeoghLowerBoundsBandedDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 48
		q, y := randSeries(rng, n), randSeries(rng, n)
		for _, band := range []int{0, 2, 5, n} {
			upper, lower := Envelope(y, band)
			lb, err := LBKeoghSquared(q, upper, lower, math.Inf(1))
			if err != nil {
				t.Fatal(err)
			}
			d, err := DTWBand(q, y, band)
			if err != nil {
				t.Fatal(err)
			}
			if lb > d*d*(1+1e-12) {
				t.Fatalf("band=%d: LB_Keogh %v exceeds DTW^2 %v", band, lb, d*d)
			}
		}
	}
}

func TestLBKeoghEnvelopeSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	y := randSeries(rng, 32)
	upper, lower := Envelope(y, 3)
	lb, err := LBKeoghSquared(y, upper, lower, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 {
		t.Fatalf("series inside its own envelope must have zero bound, got %v", lb)
	}
}

func TestDTWBandEarlyAbandonMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		q, y := randSeries(rng, 40), randSeries(rng, 40)
		for _, band := range []int{-1, 0, 4, 10} {
			want, err := DTWBand(q, y, band)
			if err != nil {
				t.Fatal(err)
			}
			got, complete, err := DTWBandEarlyAbandon(q, y, band, math.Inf(1))
			if err != nil {
				t.Fatal(err)
			}
			if !complete || got != want {
				t.Fatalf("band=%d: got (%v, %v), want (%v, true)", band, got, complete, want)
			}
			if got, complete, _ := DTWBandEarlyAbandon(q, y, band, want*want/4); complete {
				t.Fatalf("band=%d: cutoff below cost should abandon", band)
			} else if got*got <= want*want/4*(1-1e-12) {
				t.Fatalf("band=%d: abandoned partial %v should exceed cutoff", band, got)
			}
		}
	}
}

func TestDTWBandEarlyAbandonErrors(t *testing.T) {
	if _, _, err := DTWBandEarlyAbandon(nil, []float64{1}, -1, 1); err == nil {
		t.Fatal("want empty-series error")
	}
	if _, _, err := DTWBandEarlyAbandon([]float64{1, 2, 3}, []float64{1}, 1, 1); err == nil {
		t.Fatal("want band-too-narrow error")
	}
}

func TestDTWBandEarlyAbandonCancel(t *testing.T) {
	n := 256 // long enough to cross several poll strides
	x, y := make([]float64, n), make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
		y[i] = math.Cos(float64(i) * 0.13)
	}
	closed := make(chan struct{})
	close(closed)
	_, complete, err := DTWBandEarlyAbandonCancel(x, y, -1, math.Inf(1), closed)
	if !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if complete {
		t.Fatal("cancelled DTW reported complete")
	}

	// A nil done computes exactly the uncancelled kernel.
	want, wantComplete, err := DTWBandEarlyAbandon(x, y, -1, math.Inf(1))
	if err != nil || !wantComplete {
		t.Fatalf("reference failed: %v", err)
	}
	got, complete, err := DTWBandEarlyAbandonCancel(x, y, -1, math.Inf(1), nil)
	if err != nil || !complete || got != want {
		t.Fatalf("nil done gave %v (complete=%v, err=%v), want %v", got, complete, err, want)
	}
}
