package corpus

import (
	"testing"
)

// artifactCopy deep-copies every float64 artifact view of a snapshot so a
// later comparison can prove the views never changed underneath a reader.
type artifactCopy struct {
	values, sigmas, uma, uema, upper, lower, suffix []float64
	envLo, envHi                                    []float64
}

func copyArtifacts(e *Entry) artifactCopy {
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	return artifactCopy{
		values: cp(e.PDF.Observations),
		sigmas: cp(e.Sigmas),
		uma:    cp(e.UMA),
		uema:   cp(e.UEMA),
		upper:  cp(e.Upper),
		lower:  cp(e.Lower),
		suffix: cp(e.Suffix),
		envLo:  cp(e.Env.Lo),
		envHi:  cp(e.Env.Hi),
	}
}

func checkArtifacts(t *testing.T, when string, e *Entry, want artifactCopy) {
	t.Helper()
	eq := func(name string, got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: entry %d: %s length changed %d -> %d", when, e.ID, name, len(want), len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: entry %d: %s[%d] changed %v -> %v", when, e.ID, name, i, want[i], got[i])
			}
		}
	}
	eq("values", e.PDF.Observations, want.values)
	eq("sigmas", e.Sigmas, want.sigmas)
	eq("uma", e.UMA, want.uma)
	eq("uema", e.UEMA, want.uema)
	eq("upper", e.Upper, want.upper)
	eq("lower", e.Lower, want.lower)
	eq("suffix", e.Suffix, want.suffix)
	eq("envLo", e.Env.Lo, want.envLo)
	eq("envHi", e.Env.Hi, want.envHi)
}

// TestSnapshotViewsSurviveMutation is the arena aliasing guarantee: a
// snapshot's per-entry artifact views are subslices of the corpus' shared
// arenas, yet no later mutation — appends that grow the arenas, deletes,
// or the compaction they trigger — may ever change what a held snapshot
// reads through them.
func TestSnapshotViewsSurviveMutation(t *testing.T) {
	c := New(Config{ReportedSigma: 0.5, Segments: 4})
	ids, err := c.InsertBatch([]Series{
		testSeries(24, 3, 0.1), testSeries(24, 3, 0.7),
		testSeries(24, 3, 1.3), testSeries(24, 3, 2.9),
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := c.Snapshot()
	if _, ok := s1.Columns(); !ok {
		t.Fatal("insert-only snapshot is not dense")
	}
	want1 := make([]artifactCopy, s1.Len())
	for i := range want1 {
		want1[i] = copyArtifacts(s1.Entry(i))
	}

	// Appends beyond the captured row count: the arena may grow (and
	// reallocate its backing array) many times over.
	for i := 0; i < 64; i++ {
		if _, err := c.Insert(testSeries(24, 3, 10+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want1 {
		checkArtifacts(t, "after growth", s1.Entry(i), want1[i])
	}
	if cols, ok := s1.Columns(); !ok {
		t.Fatal("snapshot lost its columns")
	} else if cols.Values.Rows() != s1.Len() {
		t.Fatalf("snapshot columns expose %d rows, want %d", cols.Values.Rows(), s1.Len())
	}

	s2 := c.Snapshot()
	want2 := make([]artifactCopy, s2.Len())
	for i := range want2 {
		want2[i] = copyArtifacts(s2.Entry(i))
	}

	// Delete well past the compaction threshold (dead > 25% of rows): the
	// corpus compacts into fresh storage, and both held snapshots must
	// keep reading their original bytes.
	if err := c.Delete(ids...); err != nil {
		t.Fatal(err)
	}
	snapIDs := c.Snapshot().IDs()
	if err := c.Delete(snapIDs[:len(snapIDs)/2]...); err != nil {
		t.Fatal(err)
	}
	for i := range want1 {
		checkArtifacts(t, "after compaction", s1.Entry(i), want1[i])
	}
	for i := range want2 {
		checkArtifacts(t, "after compaction", s2.Entry(i), want2[i])
	}

	// The post-compaction snapshot is dense again, and its rebuilt rows
	// carry the same artifacts the surviving entries had before.
	s3 := c.Snapshot()
	cols, ok := s3.Columns()
	if !ok {
		t.Fatal("post-compaction snapshot is not dense")
	}
	if cols.Values.Rows() != s3.Len() {
		t.Fatalf("compacted columns hold %d rows, want %d", cols.Values.Rows(), s3.Len())
	}
	for i := 0; i < s3.Len(); i++ {
		e := s3.Entry(i)
		pos, ok := s2.PosOf(e.ID)
		if !ok {
			t.Fatalf("compacted entry %d not in pre-delete snapshot", e.ID)
		}
		checkArtifacts(t, "compacted rows", e, want2[pos])
		if &e.PDF.Observations[0] != &cols.Values.Row(i)[0] {
			t.Fatalf("compacted entry %d does not alias its column row", e.ID)
		}
	}

	// Inserting after compaction appends into the fresh arena without
	// disturbing any of the above.
	if _, err := c.Insert(testSeries(24, 3, 99)); err != nil {
		t.Fatal(err)
	}
	for i := range want1 {
		checkArtifacts(t, "after post-compaction insert", s1.Entry(i), want1[i])
	}
	for i := 0; i < s3.Len(); i++ {
		pos, _ := s2.PosOf(s3.Entry(i).ID)
		checkArtifacts(t, "after post-compaction insert", s3.Entry(i), want2[pos])
	}
}

// TestFailedInsertRollsBackArena proves a rejected mutation leaves no
// half-written rows behind: the staged arena rows are truncated and the
// next successful insert reuses them.
func TestFailedInsertRollsBackArena(t *testing.T) {
	c := New(Config{ReportedSigma: 0.5})
	if _, err := c.Insert(testSeries(16, 0, 0.3)); err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()
	// A length-mismatched series fails validation after arena staging began.
	if _, err := c.Insert(testSeries(9, 0, 0.5)); err == nil {
		t.Fatal("length-mismatched insert succeeded")
	}
	if _, err := c.Insert(testSeries(16, 0, 0.9)); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	if after.Len() != 2 {
		t.Fatalf("Len = %d, want 2", after.Len())
	}
	cols, ok := after.Columns()
	if !ok {
		t.Fatal("snapshot not dense after rollback")
	}
	if cols.Values.Rows() != 2 {
		t.Fatalf("columns hold %d rows, want 2", cols.Values.Rows())
	}
	checkArtifacts(t, "after rollback", before.Entry(0), copyArtifacts(after.Entry(0)))
}
