package corpus

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"uncertts/internal/distance"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
)

// testSeries builds a deterministic series of length n with optional
// samples per timestamp.
func testSeries(n, samplesPerTS int, seed float64) Series {
	s := Series{Values: make([]float64, n)}
	for i := range s.Values {
		s.Values[i] = math.Sin(seed + float64(i)*0.37)
	}
	if samplesPerTS > 0 {
		s.Samples = make([][]float64, n)
		for i := range s.Samples {
			row := make([]float64, samplesPerTS)
			for j := range row {
				row[j] = s.Values[i] + 0.1*float64(j)
			}
			s.Samples[i] = row
		}
	}
	return s
}

func TestInsertDeleteEpochsAndIDs(t *testing.T) {
	c := New(Config{ReportedSigma: 0.5})
	if got := c.Snapshot().Epoch(); got != 0 {
		t.Fatalf("fresh corpus epoch = %d, want 0", got)
	}
	var ids []int
	for i := 0; i < 5; i++ {
		id, err := c.Insert(testSeries(32, 0, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	snap := c.Snapshot()
	if snap.Len() != 5 || snap.Epoch() != 5 {
		t.Fatalf("Len=%d Epoch=%d, want 5/5", snap.Len(), snap.Epoch())
	}
	if !reflect.DeepEqual(snap.IDs(), ids) {
		t.Fatalf("IDs = %v, want %v", snap.IDs(), ids)
	}
	if err := c.Delete(ids[1], ids[3]); err != nil {
		t.Fatal(err)
	}
	snap2 := c.Snapshot()
	if snap2.Len() != 3 {
		t.Fatalf("Len after delete = %d, want 3", snap2.Len())
	}
	if _, ok := snap2.PosOf(ids[1]); ok {
		t.Error("deleted ID still resolves")
	}
	if pos, ok := snap2.PosOf(ids[4]); !ok || snap2.IDAt(pos) != ids[4] {
		t.Errorf("PosOf(%d) = %d,%v", ids[4], pos, ok)
	}
	// IDs are never reused.
	id, err := c.Insert(testSeries(32, 0, 9))
	if err != nil {
		t.Fatal(err)
	}
	if id <= ids[4] {
		t.Errorf("new ID %d not above all prior IDs %v", id, ids)
	}
	// The old snapshot is untouched by every mutation since.
	if snap.Len() != 5 || !reflect.DeepEqual(snap.IDs(), ids) {
		t.Error("earlier snapshot observed a mutation")
	}
}

func TestDeleteUnknownIDIsAtomic(t *testing.T) {
	c := New(Config{ReportedSigma: 0.5})
	id, err := c.Insert(testSeries(16, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(id, 999); err == nil {
		t.Fatal("expected error for unknown ID")
	}
	if c.Len() != 1 {
		t.Error("failed delete removed a series anyway")
	}
}

func TestInsertValidation(t *testing.T) {
	c := New(Config{ReportedSigma: 0.5})
	if _, err := c.Insert(Series{}); err == nil {
		t.Error("empty series should error")
	}
	if _, err := c.Insert(testSeries(16, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(testSeries(17, 0, 1)); err == nil {
		t.Error("misaligned length should error")
	}
	bad := testSeries(16, 0, 2)
	bad.Errors = make([]stats.Dist, 16) // all nil
	if _, err := c.Insert(bad); err == nil {
		t.Error("nil error distribution should error")
	}
	short := testSeries(16, 0, 3)
	short.Samples = make([][]float64, 4)
	if _, err := c.Insert(short); err == nil {
		t.Error("short sample model should error")
	}
}

func TestEntryArtifactsMatchDirectComputation(t *testing.T) {
	cfg := Config{ReportedSigma: 0.4, Band: 3, Segments: 4, W: 2, Lambda: 0.9}
	c := New(cfg)
	s := testSeries(24, 3, 5)
	id, err := c.Insert(s)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	pos, ok := snap.PosOf(id)
	if !ok {
		t.Fatal("inserted ID does not resolve")
	}
	e := snap.Entry(pos)

	up, lo := distance.Envelope(s.Values, 3)
	if !reflect.DeepEqual(e.Upper, up) || !reflect.DeepEqual(e.Lower, lo) {
		t.Error("LB_Keogh envelopes differ from direct computation")
	}
	if !reflect.DeepEqual(e.Suffix, proud.SuffixEnergy(s.Values)) {
		t.Error("suffix energies differ from direct computation")
	}
	sigmas := make([]float64, 24)
	for i := range sigmas {
		sigmas[i] = 0.4
	}
	uma, err := timeseries.UncertainMovingAverage(s.Values, sigmas, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.UMA, uma) {
		t.Error("UMA vector differs from direct computation")
	}
	uema, err := timeseries.UncertainExponentialMovingAverage(s.Values, sigmas, 2, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.UEMA, uema) {
		t.Error("UEMA vector differs from direct computation")
	}
	wantEnv := munich.BuildEnvelope(*e.Samples, 4)
	if !reflect.DeepEqual(e.Env, wantEnv) {
		t.Error("MUNICH envelope differs from direct computation")
	}
	if len(snap.Spans()) != 4 {
		t.Errorf("spans = %v, want 4 segments", snap.Spans())
	}
	if !snap.HasSamples() {
		t.Error("HasSamples() = false with a sampled series resident")
	}
}

func TestDerivedSigmaAndDefaults(t *testing.T) {
	// No sigma configured: derived from the first series' error dists.
	c := New(Config{})
	s := testSeries(8, 0, 1)
	s.Errors = make([]stats.Dist, 8)
	for i := range s.Errors {
		s.Errors[i] = stats.NewNormal(0, 0.7)
	}
	if _, err := c.Insert(s); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().ReportedSigma(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("derived sigma = %v, want 0.7", got)
	}
	cfg := c.Snapshot().Config()
	if cfg.W != 2 || cfg.Lambda != 1 || cfg.Segments != 8 || cfg.Band != 1 {
		t.Errorf("resolved config = %+v", cfg)
	}
}

func TestInsertBatchIsAtomic(t *testing.T) {
	c := New(Config{ReportedSigma: 0.5})
	if _, err := c.Insert(testSeries(16, 0, 0)); err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()
	// Second series of the batch is invalid: nothing may be inserted.
	if _, err := c.InsertBatch([]Series{testSeries(16, 0, 1), testSeries(9, 0, 2)}); err == nil {
		t.Fatal("expected batch error")
	}
	if c.Snapshot().Epoch() != before.Epoch() || c.Len() != 1 {
		t.Error("failed batch mutated the corpus")
	}
	ids, err := c.InsertBatch([]Series{testSeries(16, 0, 3), testSeries(16, 0, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || c.Snapshot().Epoch() != before.Epoch()+1 {
		t.Errorf("batch insert: ids=%v epoch=%d", ids, c.Snapshot().Epoch())
	}
}

func TestApplyIsAtomicAcrossInsertAndDelete(t *testing.T) {
	c := New(Config{ReportedSigma: 0.5})
	ids, err := c.InsertBatch([]Series{testSeries(16, 0, 0), testSeries(16, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()
	// Unknown delete ID: the combined mutation must change nothing, not
	// even land the (valid) insert.
	if _, err := c.Apply([]Series{testSeries(16, 0, 2)}, []int{999}); err == nil {
		t.Fatal("expected error for unknown delete ID")
	}
	if c.Snapshot().Epoch() != before.Epoch() || c.Len() != 2 {
		t.Error("failed Apply mutated the corpus")
	}
	// A valid combined mutation lands in one epoch.
	newIDs, err := c.Apply([]Series{testSeries(16, 0, 3)}, []int{ids[0]})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Epoch() != before.Epoch()+1 || snap.Len() != 2 {
		t.Errorf("combined Apply: epoch %d len %d, want %d/2", snap.Epoch(), snap.Len(), before.Epoch()+1)
	}
	if _, ok := snap.PosOf(ids[0]); ok {
		t.Error("deleted ID survived the combined mutation")
	}
	if _, ok := snap.PosOf(newIDs[0]); !ok {
		t.Error("inserted ID missing after the combined mutation")
	}
}

// TestConcurrentReadersAndWriters exercises the snapshot machinery under
// -race: writers insert and delete while readers repeatedly grab snapshots
// and walk them; every snapshot must be internally consistent.
func TestConcurrentReadersAndWriters(t *testing.T) {
	c := New(Config{ReportedSigma: 0.5})
	seed, err := c.InsertBatch([]Series{testSeries(32, 2, 0), testSeries(32, 2, 1), testSeries(32, 2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	_ = seed
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Snapshot()
				for i := 0; i < snap.Len(); i++ {
					e := snap.Entry(i)
					if pos, ok := snap.PosOf(e.ID); !ok || pos != i {
						t.Error("inconsistent snapshot position map")
						return
					}
					if len(e.PDF.Observations) != snap.SeriesLen() {
						t.Error("inconsistent entry length")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				id, err := c.Insert(testSeries(32, 2, float64(100*w+i)))
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := c.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}
