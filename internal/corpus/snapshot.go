package corpus

import (
	"uncertts/internal/dust"
	"uncertts/internal/munich"
	"uncertts/internal/sketch"
	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
)

// Snapshot is one immutable version of the corpus. Everything reachable
// from a snapshot — the entry slice, every entry, every artifact — is
// frozen at publication; readers may keep using a snapshot for as long as
// they like while the corpus moves on.
type Snapshot struct {
	cfg     Config
	epoch   uint64
	entries []*Entry
	pos     map[int]int // ID -> position
	d       *dust.Dust
	spans   [][2]int // MUNICH segment geometry for cfg.Segments
	nextID  int      // the ID the next insert will receive
	cols    *Columns // dense columnar view; nil while dead rows await compaction
	tree    *sketch.Tree
}

// finishGeometry resolves the derived geometry once cfg.Length is known.
func (s *Snapshot) finishGeometry() {
	s.cfg = s.cfg.resolveLength(s.cfg.Length)
	s.spans = segmentSpansFor(s.cfg)
}

func segmentSpansFor(cfg Config) [][2]int {
	if cfg.Length == 0 {
		return nil
	}
	return munich.SegmentSpans(cfg.Length, cfg.Segments)
}

// Epoch returns the snapshot's version number; it increases by one with
// every published mutation.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NextID returns the stable ID the next inserted series will receive, as
// of this snapshot — part of the state a checkpoint must persist so that
// recovery reassigns the same IDs the original corpus would have.
func (s *Snapshot) NextID() int { return s.nextID }

// Config returns the resolved artifact geometry.
func (s *Snapshot) Config() Config { return s.cfg }

// Len returns the number of resident series.
func (s *Snapshot) Len() int { return len(s.entries) }

// SeriesLen returns the common series length (0 while the corpus is empty
// and no length was configured).
func (s *Snapshot) SeriesLen() int { return s.cfg.Length }

// ReportedSigma returns the constant error stddev PROUD receives.
func (s *Snapshot) ReportedSigma() float64 { return s.cfg.ReportedSigma }

// Entry returns the entry at position i (0 <= i < Len()).
func (s *Snapshot) Entry(i int) *Entry { return s.entries[i] }

// IDAt returns the stable series ID at position i.
func (s *Snapshot) IDAt(i int) int { return s.entries[i].ID }

// PosOf resolves a stable series ID to its position in this snapshot.
func (s *Snapshot) PosOf(id int) (int, bool) {
	i, ok := s.pos[id]
	return i, ok
}

// IDs returns the resident series IDs in position order.
func (s *Snapshot) IDs() []int {
	out := make([]int, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.ID
	}
	return out
}

// Dust returns the shared DUST evaluator. Phi tables are keyed by error
// distribution and built lazily, so the tables accumulated for resident
// series keep serving every later snapshot (and any ad-hoc query reusing
// the same error models) for free.
func (s *Snapshot) Dust() *dust.Dust { return s.d }

// Spans returns the MUNICH segment geometry every entry envelope was built
// with.
func (s *Snapshot) Spans() [][2]int { return s.spans }

// Columns returns the snapshot's dense columnar arena view: row i of every
// matrix holds the artifacts of the entry at position i, so a scan in
// position order reads contiguous memory. It is available exactly when the
// snapshot is dense — no deleted rows awaiting compaction — which is the
// steady state (inserts preserve density, deletes break it until the
// corpus compacts). ok=false means readers must fall back to the per-entry
// views, which alias the same storage row by row.
func (s *Snapshot) Columns() (*Columns, bool) { return s.cols, s.cols != nil }

// Index returns the snapshot's immutable bucket-tree sketch index, present
// on every snapshot with resolved geometry (dense or not — member positions
// resolve through PosOf on sparse snapshots). Nil while the corpus is empty
// and no length was configured.
func (s *Snapshot) Index() *sketch.Tree { return s.tree }

// DefaultErrors returns the per-timestamp error distributions attached to
// series inserted without their own — the model ad-hoc queries adopt when
// they carry no error information.
func (s *Snapshot) DefaultErrors() []stats.Dist {
	// A configured default that is too short for the series length is
	// useless; fall back to the constant-sigma model rather than slicing
	// out of bounds.
	if len(s.cfg.Errors) >= s.cfg.Length {
		return s.cfg.Errors[:s.cfg.Length]
	}
	d := stats.NewNormal(0, s.cfg.ReportedSigma)
	out := make([]stats.Dist, s.cfg.Length)
	for i := range out {
		out[i] = d
	}
	return out
}

// HasSamples reports whether every resident series carries the
// repeated-observation model (the precondition for serving MUNICH).
func (s *Snapshot) HasSamples() bool {
	for _, e := range s.entries {
		if e.Samples == nil {
			return false
		}
	}
	return len(s.entries) > 0
}

// PDFSeries returns the PDF-model views in position order (sharing the
// snapshot's immutable storage).
func (s *Snapshot) PDFSeries() []uncertain.PDFSeries {
	out := make([]uncertain.PDFSeries, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.PDF
	}
	return out
}

// SampleSeries returns the sample-model views in position order, or nil if
// any resident series lacks samples.
func (s *Snapshot) SampleSeries() []uncertain.SampleSeries {
	if !s.HasSamples() {
		return nil
	}
	out := make([]uncertain.SampleSeries, len(s.entries))
	for i, e := range s.entries {
		out[i] = *e.Samples
	}
	return out
}
