// Package corpus is the mutable data layer of the system: a long-lived
// collection of uncertain time series that can be grown (Insert) and
// shrunk (Delete) while queries run, decoupling data ownership from the
// batch-oriented evaluation Workload.
//
// Two ideas carry the package:
//
//   - Incremental index maintenance. Every similarity measure the engine
//     serves leans on per-series derived artifacts — LB_Keogh envelopes for
//     banded DTW, UMA/UEMA filtered vectors, PROUD suffix energies, MUNICH
//     segment envelopes, DUST phi lookup tables. All of them are functions
//     of one series at a time (the phi tables of the shared evaluator are
//     keyed by error distribution and built lazily), so an insert computes
//     exactly the new series' artifacts and a delete drops exactly the
//     removed ones. Nothing is ever rebuilt collection-wide.
//
//   - Snapshot isolation. The corpus publishes its state as an immutable
//     Snapshot under an atomic pointer (copy-on-write: writers copy the
//     entry slice, never an entry). Readers grab the pointer once and see a
//     frozen, consistent collection for as long as they hold it — queries
//     racing with writers are never blocked and never observe a partial
//     mutation. Each snapshot carries a monotonically increasing epoch so
//     callers can cheaply detect staleness (the HTTP server keys its
//     per-measure engine cache on it).
package corpus

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"uncertts/internal/distance"
	"uncertts/internal/dust"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/sketch"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
	"uncertts/internal/uncertain"
)

// Config fixes the artifact geometry of a corpus. Every derived artifact is
// parameterised (envelope band, filter window, segment count, ...); pinning
// the parameters at corpus construction is what lets inserts maintain the
// artifacts incrementally and lets engines reuse them without recomputing.
type Config struct {
	// Length is the common series length. Zero adopts the length of the
	// first inserted series.
	Length int
	// ReportedSigma is the constant error stddev handed to PROUD and used
	// as the default error model for series inserted without Errors. Zero
	// derives the root-mean-variance of the first inserted series' errors.
	ReportedSigma float64
	// Sigmas optionally fixes the per-timestamp error stddevs used to
	// filter series inserted without their own Errors (UMA/UEMA). Nil
	// falls back to a constant ReportedSigma per timestamp.
	Sigmas []float64
	// Errors optionally fixes the default per-timestamp error
	// distributions attached to series inserted without Errors. Nil falls
	// back to Normal(0, ReportedSigma).
	Errors []stats.Dist
	// Band is the Sakoe-Chiba half-width the LB_Keogh envelopes are built
	// for. Zero derives max(1, Length/10); negative means unconstrained.
	Band int
	// Segments is the MUNICH envelope segment count (0 = 16, clamped to
	// the series length).
	Segments int
	// W is the UMA/UEMA filter window half-width (0 = the paper's 2).
	W int
	// Lambda is the UEMA decay (0 = the paper's 1).
	Lambda float64
	// Mode selects the Eq. 17/18 weight normalisation for UMA/UEMA.
	Mode timeseries.WeightMode
	// DUST configures the shared phi-table evaluator.
	DUST dust.Options

	// SketchSegments is the PAA segment count of the sketch index rows
	// (0 = sketch.DefaultSegments, clamped to the series length), and
	// SketchLeafCap the bucket-tree leaf capacity (0 = sketch.DefaultLeafCap).
	// Both are tuning knobs only — query results are bit-identical for every
	// setting (the index is a sound prefilter) — and are deliberately NOT
	// persisted by checkpoints: a restored corpus adopts the defaults, which
	// changes nothing but bucket shapes.
	SketchSegments int
	SketchLeafCap  int
}

// withDefaults resolves the zero values that do not need the series length.
func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = 2
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.Segments <= 0 {
		c.Segments = 16
	}
	if c.SketchSegments <= 0 {
		c.SketchSegments = sketch.DefaultSegments
	}
	if c.SketchLeafCap <= 0 {
		c.SketchLeafCap = sketch.DefaultLeafCap
	}
	return c
}

// resolveLength resolves the length-dependent defaults once the series
// length is known.
func (c Config) resolveLength(n int) Config {
	c.Length = n
	if c.Band == 0 {
		c.Band = n / 10
		if c.Band < 1 {
			c.Band = 1
		}
	}
	c.Segments = munich.ClampSegments(n, c.Segments)
	c.SketchSegments = munich.ClampSegments(n, c.SketchSegments)
	return c
}

// Series is the unit of ingestion: an observation vector plus optional
// uncertainty metadata.
type Series struct {
	// Values holds the observed value per timestamp.
	Values []float64
	// Errors optionally attaches per-timestamp reported error
	// distributions. Nil uses the corpus defaults.
	Errors []stats.Dist
	// Samples optionally attaches the repeated-observation model
	// (Samples[i][j] is the j-th observation at timestamp i); required for
	// the series to be servable by MUNICH.
	Samples [][]float64
	// Label carries an optional class label.
	Label int
}

// Mutation is one atomic corpus change as seen by a persistence hook: the
// ingestion records exactly as submitted, the IDs of the deleted series,
// and the deterministic outcome of the mutation — the first stable ID
// assigned to the inserted series (they receive FirstID, FirstID+1, ...)
// and the epoch of the snapshot the mutation publishes. Logging a Mutation
// is enough to replay it bit-identically: Replay forces the same ID
// assignment and epoch.
type Mutation struct {
	// Insert holds the ingestion records in input order, exactly as
	// submitted (Errors nil when the series adopted the corpus defaults).
	Insert []Series
	// IDs, when non-empty, holds the caller-assigned stable ID of each
	// inserted series (an ApplyAt mutation); empty means the contiguous
	// assignment FirstID, FirstID+1, ...
	IDs []int
	// Delete holds the removed stable IDs.
	Delete []int
	// FirstID is the corpus' next unassigned ID at mutation time; for a
	// contiguous mutation it is the stable ID assigned to Insert[0].
	FirstID int
	// Epoch is the epoch of the snapshot this mutation publishes.
	Epoch uint64
}

// Hook observes every mutation before its snapshot is published — the
// write-ahead ordering a durable log needs. It runs under the corpus write
// lock, after the mutation validated but before anything is visible to
// readers; returning an error aborts the whole mutation (no IDs are
// consumed, no snapshot is published), so a mutation is acknowledged only
// once its hook accepted it.
type Hook func(Mutation) error

// Entry is one resident series with every derived artifact the query
// engines consume. Entries are immutable after insertion: a snapshot shares
// them freely across epochs, and readers may hold them indefinitely.
type Entry struct {
	// ID is the stable corpus handle (unique for the corpus lifetime,
	// never reused).
	ID int
	// PDF is the observation-plus-error-model view (PROUD/DUST input);
	// PDF.ID equals ID.
	PDF uncertain.PDFSeries
	// Samples is the repeated-observation view (MUNICH input), nil when
	// the series was inserted without samples.
	Samples *uncertain.SampleSeries
	// Sigmas caches the per-timestamp error stddevs of PDF.Errors.
	Sigmas []float64
	// UMA and UEMA are the filtered vectors of the corpus' filter config.
	UMA, UEMA []float64
	// Upper and Lower are the LB_Keogh envelopes for the corpus band.
	Upper, Lower []float64
	// Suffix holds PROUD's suffix energies of the observations.
	Suffix []float64
	// Env is the MUNICH segment envelope (zero value when Samples is nil).
	Env munich.Envelope
	// Sketch is the series' PAA sketch row (see internal/sketch for the
	// layout), the summary the bucket index is built over.
	Sketch []float64
	// OwnErrors records whether the series was inserted with its own error
	// distributions (as opposed to adopting the corpus defaults) — the
	// fidelity bit a checkpoint needs to re-ingest the entry through the
	// exact same code path.
	OwnErrors bool

	// row is the entry's row index in the corpus arenas at the time it was
	// built (or last compacted). All float64 artifacts above are views into
	// arena row `row`; compaction rewires fresh Entry copies to new rows.
	row int
}

// Corpus is the mutable collection. All methods are safe for concurrent
// use; writers serialise on an internal mutex while readers only touch the
// atomic snapshot pointer.
type Corpus struct {
	mu     sync.Mutex
	cur    atomic.Pointer[Snapshot]
	nextID int
	d      *dust.Dust
	hook   Hook
	// ar holds the columnar arenas backing every resident entry's float64
	// artifacts. Nil until the series length is resolved (the first insert,
	// for corpora configured without a Length). Guarded by mu.
	ar *arenas
	// tree is the current version of the persistent bucket-tree sketch
	// index over ar's sketch rows; it is maintained incrementally with every
	// mutation and published (immutably) with every snapshot. Nil exactly
	// when ar is nil. Guarded by mu.
	tree *sketch.Tree
}

// New returns an empty corpus with the given artifact geometry.
func New(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	c := &Corpus{d: dust.New(cfg.DUST)}
	snap := &Snapshot{cfg: cfg, epoch: 0, pos: map[int]int{}, d: c.d}
	if cfg.Length > 0 {
		snap.finishGeometry()
		c.ar = newArenas(snap.cfg, 0)
		c.tree = sketch.NewTree(c.ar.lay, snap.cfg.SketchLeafCap)
		snap.cols = c.ar.capture()
		snap.tree = c.tree
	}
	c.cur.Store(snap)
	return c
}

// Snapshot returns the current immutable snapshot. It never blocks, not
// even while a writer is publishing.
func (c *Corpus) Snapshot() *Snapshot { return c.cur.Load() }

// BarrierSnapshot returns the current snapshot after waiting out any
// in-flight mutation: unlike Snapshot it acquires the write lock, so every
// mutation whose hook has already run has published by the time it
// returns. Checkpointers rely on it — a state serialized from a
// BarrierSnapshot is guaranteed to cover every mutation the write-ahead
// log acknowledged before the barrier.
func (c *Corpus) BarrierSnapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.Load()
}

// SetHook installs the persistence hook observing every future mutation
// (nil removes it). The hook runs under the corpus write lock with
// write-ahead ordering: it sees the mutation before any reader can, and
// its error aborts the mutation entirely.
func (c *Corpus) SetHook(h Hook) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = h
}

// Len returns the current number of resident series.
func (c *Corpus) Len() int { return c.Snapshot().Len() }

// Insert adds one series and publishes a new snapshot. It returns the
// stable ID assigned to the series.
func (c *Corpus) Insert(s Series) (int, error) {
	ids, err := c.InsertBatch([]Series{s})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// InsertBatch adds several series atomically — readers observe either none
// or all of them — and returns their IDs in input order.
func (c *Corpus) InsertBatch(batch []Series) ([]int, error) {
	return c.Apply(batch, nil)
}

// Delete removes the series with the given IDs and publishes a new
// snapshot. Unknown IDs are an error; nothing is removed unless every ID
// resolves.
func (c *Corpus) Delete(ids ...int) error {
	_, err := c.Apply(nil, ids)
	return err
}

// Apply performs one atomic mutation combining insertions and deletions:
// either the whole batch lands in a single published snapshot, or nothing
// changes. It returns the IDs of the inserted series in input order.
// Deleting an unknown ID (including an ID only just inserted by the same
// call) is an error that aborts the entire mutation.
func (c *Corpus) Apply(insert []Series, deleteIDs []int) ([]int, error) {
	if len(insert) == 0 && len(deleteIDs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applyLocked(insert, nil, deleteIDs, true)
}

// ApplyAt is Apply with caller-assigned stable IDs for the inserted
// series: insertIDs[i] becomes the ID of insert[i]. The IDs must be
// strictly increasing and start at or above the corpus' next unassigned
// ID, so an ID is never reused; afterwards the corpus' next ID is one
// past the largest assigned. Cluster shards use it to ingest series
// under coordinator-assigned global IDs — position order stays ID order,
// and a shard answers queries bit-identically to the same series
// resident in a single corpus.
func (c *Corpus) ApplyAt(insert []Series, insertIDs []int, deleteIDs []int) ([]int, error) {
	if len(insert) == 0 && len(deleteIDs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applyLocked(insert, insertIDs, deleteIDs, true)
}

// Replay re-applies a logged mutation with its recorded outcome, bypassing
// the hook (the record being replayed is already durable). Replay verifies
// the recorded epoch and ID assignment against the corpus state — a
// mismatch means the log and the corpus diverged and recovery must stop.
func (c *Corpus) Replay(m Mutation) error {
	if len(m.Insert) == 0 && len(m.Delete) == 0 {
		return errors.New("corpus: replay of an empty mutation")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.cur.Load()
	if m.Epoch != old.epoch+1 {
		return fmt.Errorf("corpus: replay epoch %d does not follow current epoch %d", m.Epoch, old.epoch)
	}
	if len(m.Insert) > 0 && m.FirstID != c.nextID {
		return fmt.Errorf("corpus: replay would assign IDs from %d but the log recorded %d", c.nextID, m.FirstID)
	}
	_, err := c.applyLocked(m.Insert, m.IDs, m.Delete, false)
	return err
}

// applyLocked is the mutation core; callers hold c.mu. When logged is true
// the hook (if any) observes the mutation before it publishes. A non-empty
// insertIDs pins the stable ID of each inserted series (ApplyAt); nil keeps
// the contiguous assignment from c.nextID.
func (c *Corpus) applyLocked(insert []Series, insertIDs []int, deleteIDs []int, logged bool) ([]int, error) {
	old := c.cur.Load()
	cfg := old.cfg

	if len(insertIDs) > 0 {
		if len(insertIDs) != len(insert) {
			return nil, fmt.Errorf("corpus: %d explicit IDs for %d inserted series", len(insertIDs), len(insert))
		}
		prev := c.nextID - 1
		for _, id := range insertIDs {
			if id <= prev {
				return nil, fmt.Errorf("corpus: explicit IDs must be strictly increasing and at least the next unassigned ID %d (got %d after %d)", c.nextID, id, prev)
			}
			prev = id
		}
	}

	drop := make(map[int]bool, len(deleteIDs))
	for _, id := range deleteIDs {
		if _, ok := old.pos[id]; !ok {
			return nil, fmt.Errorf("corpus: no series with ID %d", id)
		}
		drop[id] = true
	}

	if len(insert) > 0 {
		if cfg.Length == 0 {
			if len(insert[0].Values) == 0 {
				return nil, errors.New("corpus: cannot insert an empty series")
			}
			cfg = cfg.resolveLength(len(insert[0].Values))
		}
		if cfg.ReportedSigma <= 0 {
			cfg.ReportedSigma = deriveSigma(insert[0], cfg)
		}
		if c.ar == nil {
			c.ar = newArenas(cfg, len(insert))
			c.tree = sketch.NewTree(c.ar.lay, cfg.SketchLeafCap)
		} else if len(insert) > 1 {
			c.ar.grow(len(insert))
		}
	}

	entries := make([]*Entry, 0, len(old.entries)+len(insert)-len(drop))
	// Dropped entries become tree deletions: their sketch rows stay resident
	// until compaction, so the tree can descend by the removed row itself.
	var delMembers []sketch.Member
	for _, e := range old.entries {
		if drop[e.ID] {
			delMembers = append(delMembers, sketch.Member{ID: e.ID, Row: e.row})
			continue
		}
		entries = append(entries, e)
	}
	// Inserts stage rows into the arenas as they build; an abort (bad
	// series, rejected hook) must roll the staged rows back so the arenas
	// stay aligned with the published entries. No snapshot has been captured
	// over the staged rows, so truncation is safe.
	committed := false
	var mark int
	if c.ar != nil {
		mark = c.ar.rows()
		defer func() {
			if !committed {
				c.ar.truncate(mark)
			}
		}()
	}
	var ids []int
	var insMembers []sketch.Member
	for i, s := range insert {
		id := c.nextID + i
		if len(insertIDs) > 0 {
			id = insertIDs[i]
		}
		e, err := buildEntry(id, s, cfg, c.ar)
		if err != nil {
			return nil, err
		}
		ids = append(ids, e.ID)
		insMembers = append(insMembers, sketch.Member{ID: e.ID, Row: e.row})
		entries = append(entries, e)
	}
	if logged && c.hook != nil {
		m := Mutation{Insert: insert, IDs: insertIDs, Delete: deleteIDs, FirstID: c.nextID, Epoch: old.epoch + 1}
		if err := c.hook(m); err != nil {
			return nil, fmt.Errorf("corpus: persistence hook rejected the mutation: %w", err)
		}
	}
	committed = true
	if len(insertIDs) > 0 {
		c.nextID = insertIDs[len(insertIDs)-1] + 1
	} else {
		c.nextID += len(insert)
	}
	// Deletes leave dead rows behind; once more than a quarter of the arena
	// is dead, rebuild it densely (published snapshots keep reading the old
	// storage — compaction allocates fresh arrays and fresh Entry objects).
	if c.ar != nil {
		if dead := c.ar.rows() - len(entries); dead > 0 && dead*4 > c.ar.rows() {
			// compactLocked bulk-rebuilds the tree over the compacted rows,
			// so the incremental update is subsumed.
			entries = c.compactLocked(entries)
		} else if len(insMembers) > 0 || len(delMembers) > 0 {
			c.tree = c.tree.Update(c.ar.sketch.Matrix(), insMembers, delMembers)
		}
	}
	c.publish(cfg, old, entries)
	return ids, nil
}

// compactLocked rebuilds the arenas with only the surviving entries' rows
// and returns fresh Entry objects whose artifact views point into the new
// storage. Old entries (still referenced by published snapshots) are left
// untouched. Callers hold c.mu.
func (c *Corpus) compactLocked(entries []*Entry) []*Entry {
	keep := make([]int, len(entries))
	for i, e := range entries {
		keep[i] = e.row
	}
	na := c.ar.compact(keep)
	cols := na.capture()
	out := make([]*Entry, len(entries))
	for i, e := range entries {
		ne := *e
		ne.row = i
		ne.PDF.Observations = cols.Values.Row(i)
		ne.Sigmas = cols.Sigmas.Row(i)
		ne.UMA = cols.UMA.Row(i)
		ne.UEMA = cols.UEMA.Row(i)
		ne.Upper = cols.Upper.Row(i)
		ne.Lower = cols.Lower.Row(i)
		ne.Suffix = cols.Suffix.Row(i)
		if ne.Samples != nil {
			ne.Env = munich.Envelope{Lo: cols.EnvLo.Row(i), Hi: cols.EnvHi.Row(i)}
		}
		ne.Sketch = cols.Sketch.Row(i)
		out[i] = &ne
	}
	c.ar = na
	// Compaction rewires every member to a new row, so the tree is rebuilt
	// in bulk over the dense arena rather than patched.
	members := make([]sketch.Member, len(out))
	for i, e := range out {
		members[i] = sketch.Member{ID: e.ID, Row: i}
	}
	c.tree = sketch.Build(na.lay, c.tree.LeafCap(), members, cols.Sketch)
	return out
}

// RestoredSeries pairs an ingestion record with the stable ID it held — the
// unit of a checkpoint, carrying exactly what re-ingestion through
// buildEntry needs to reproduce the resident entry bit for bit.
type RestoredSeries struct {
	ID     int
	Series Series
}

// Restore rebuilds a corpus from persisted state: the resolved artifact
// geometry, the resident series (with their stable IDs) in position order,
// the next ID to assign, and the epoch to publish the restored snapshot
// at. Every derived artifact is recomputed through the same incremental
// code path inserts use, so a restored corpus answers queries
// bit-identically to the one that was checkpointed.
func Restore(cfg Config, series []RestoredSeries, nextID int, epoch uint64) (*Corpus, error) {
	cfg = cfg.withDefaults()
	if len(series) > 0 && cfg.Length == 0 {
		return nil, errors.New("corpus: restore: resident series but no resolved series length")
	}
	if nextID < 0 {
		return nil, fmt.Errorf("corpus: restore: negative next ID %d", nextID)
	}
	c := &Corpus{d: dust.New(cfg.DUST), nextID: nextID}
	if cfg.Length > 0 {
		cfg = cfg.resolveLength(cfg.Length)
		// One exactly-sized allocation per arena up front: the bulk load
		// then stages every series without a single growth copy.
		c.ar = newArenas(cfg, len(series))
	}
	entries := make([]*Entry, 0, len(series))
	seen := make(map[int]bool, len(series))
	for _, rec := range series {
		if rec.ID < 0 || rec.ID >= nextID {
			return nil, fmt.Errorf("corpus: restore: series ID %d outside [0, %d)", rec.ID, nextID)
		}
		if seen[rec.ID] {
			return nil, fmt.Errorf("corpus: restore: duplicate series ID %d", rec.ID)
		}
		seen[rec.ID] = true
		e, err := buildEntry(rec.ID, rec.Series, cfg, c.ar)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	snap := &Snapshot{cfg: cfg, epoch: epoch, entries: entries, pos: make(map[int]int, len(entries)), d: c.d, nextID: nextID}
	for i, e := range entries {
		snap.pos[e.ID] = i
	}
	if cfg.Length > 0 {
		snap.finishGeometry()
	}
	if c.ar != nil {
		snap.cols = c.ar.capture()
		// The sketch rows were rebuilt row by row through buildEntry — the
		// same incremental path inserts use — so the restored index prunes
		// bit-identically; only the bucket shapes depend on load order.
		members := make([]sketch.Member, len(entries))
		for i, e := range entries {
			members[i] = sketch.Member{ID: e.ID, Row: e.row}
		}
		c.tree = sketch.Build(c.ar.lay, snap.cfg.SketchLeafCap, members, snap.cols.Sketch)
		snap.tree = c.tree
	}
	c.cur.Store(snap)
	return c, nil
}

// publish installs a new snapshot over the given entries. Callers hold
// c.mu.
func (c *Corpus) publish(cfg Config, old *Snapshot, entries []*Entry) {
	snap := &Snapshot{
		cfg:     cfg,
		epoch:   old.epoch + 1,
		entries: entries,
		pos:     make(map[int]int, len(entries)),
		d:       c.d,
		nextID:  c.nextID,
	}
	for i, e := range entries {
		snap.pos[e.ID] = i
	}
	snap.finishGeometry()
	// A snapshot is dense — arena row i holds the artifacts of position i —
	// exactly when no deleted rows await compaction, i.e. when the arena row
	// count matches the entry count (rows and entries both grow in insertion
	// order, and only deletes break the alignment). Dense snapshots carry
	// the columnar view engines use for contiguous scans.
	if c.ar != nil && c.ar.rows() == len(entries) {
		snap.cols = c.ar.capture()
	}
	// The index travels with every snapshot, dense or not: its bounds read
	// only the tree's own region storage, and member positions resolve
	// through PosOf on sparse snapshots.
	snap.tree = c.tree
	c.cur.Store(snap)
}

// deriveSigma mirrors the Workload derivation: the root mean variance of
// the reported error distributions, falling back to 1 when the first series
// carries no error model at all.
func deriveSigma(s Series, cfg Config) float64 {
	errs := s.Errors
	if errs == nil {
		errs = cfg.Errors
	}
	if len(errs) == 0 {
		return 1
	}
	var acc float64
	for _, d := range errs {
		acc += d.Variance()
	}
	return math.Sqrt(acc / float64(len(errs)))
}

// buildEntry computes every derived artifact for one inserted series — the
// whole cost of an insert, independent of the corpus size. The float64
// artifacts are staged directly into the arenas (one new row each, computed
// in place); on error the caller rolls the staged rows back, so a failed
// build leaves no trace.
func buildEntry(id int, s Series, cfg Config, ar *arenas) (*Entry, error) {
	n := cfg.Length
	if len(s.Values) != n {
		return nil, fmt.Errorf("corpus: series has length %d, want %d (corpora require aligned series)", len(s.Values), n)
	}
	row := ar.rows()
	obs := ar.values.Append(s.Values)

	errs := s.Errors
	if errs == nil {
		if cfg.Errors != nil {
			errs = cfg.Errors
		} else {
			d := stats.NewNormal(0, cfg.ReportedSigma)
			errs = make([]stats.Dist, n)
			for i := range errs {
				errs[i] = d
			}
		}
	}
	if len(errs) < n {
		return nil, fmt.Errorf("corpus: %d error distributions for a length-%d series", len(errs), n)
	}
	errs = errs[:n]
	for i, d := range errs {
		if d == nil {
			return nil, fmt.Errorf("corpus: nil error distribution at timestamp %d", i)
		}
	}

	e := &Entry{
		ID:        id,
		PDF:       uncertain.PDFSeries{Observations: obs, Errors: errs, Label: s.Label, ID: id},
		OwnErrors: s.Errors != nil,
		row:       row,
	}
	// Configured default sigmas are validated by the filters below (length
	// mismatch aborts the insert) and only then copied into the arena, so
	// the filter errors stay exactly as before the columnar refactor.
	sigmas := cfg.Sigmas
	derived := s.Errors != nil || sigmas == nil
	if derived {
		sig := ar.sigmas.AppendZero()
		for i := range sig {
			sig[i] = math.Sqrt(errs[i].Variance())
		}
		sigmas = sig
	}

	e.UMA = ar.uma.AppendZero()
	if err := timeseries.UncertainMovingAverageInto(e.UMA, obs, sigmas, cfg.W, cfg.Mode); err != nil {
		return nil, fmt.Errorf("corpus: UMA filter: %w", err)
	}
	e.UEMA = ar.uema.AppendZero()
	if err := timeseries.UncertainExponentialMovingAverageInto(e.UEMA, obs, sigmas, cfg.W, cfg.Lambda, cfg.Mode); err != nil {
		return nil, fmt.Errorf("corpus: UEMA filter: %w", err)
	}
	if !derived {
		sigmas = ar.sigmas.Append(sigmas)
	}
	e.Sigmas = sigmas
	e.Upper, e.Lower = ar.upper.AppendZero(), ar.lower.AppendZero()
	distance.EnvelopeIntoScratch(e.Upper, e.Lower, obs, cfg.Band, &ar.envScratch)
	e.Suffix = ar.suffix.AppendZero()
	proud.SuffixEnergyInto(e.Suffix, obs)

	// Every arena gets its row even when the series carries no samples, to
	// keep row indices aligned across artifacts; Env stays the zero value
	// (its absence is what gates MUNICH).
	envLo, envHi := ar.envLo.AppendZero(), ar.envHi.AppendZero()
	if s.Samples != nil {
		if len(s.Samples) != n {
			return nil, fmt.Errorf("corpus: sample model has %d timestamps, want %d", len(s.Samples), n)
		}
		ss := uncertain.SampleSeries{Samples: s.Samples, Label: s.Label, ID: id}
		if err := ss.Validate(); err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		e.Samples = &ss
		e.Env = munich.Envelope{Lo: envLo, Hi: envHi}
		munich.BuildEnvelopeInto(e.Env, ss)
	}
	e.Sketch = ar.sketch.AppendZero()
	var sigmaMax float64
	for _, v := range e.Sigmas {
		if v > sigmaMax {
			sigmaMax = v
		}
	}
	ar.lay.FillRow(e.Sketch, obs, e.UMA, e.UEMA, e.Upper, e.Lower, envLo, envHi, e.Suffix[0], sigmaMax)
	return e, nil
}
