package corpus

import (
	"uncertts/internal/arena"
	"uncertts/internal/distance"
	"uncertts/internal/sketch"
)

// arenas bundles the columnar builders holding every float64 artifact of
// the resident series: one arena per artifact, one row per entry, rows in
// insertion order. All arenas always hold the same number of rows — every
// successful insert appends exactly one row to each — so a single row index
// addresses an entry's artifacts across all of them.
//
// The builders live on the Corpus (guarded by its write lock); snapshots
// capture immutable arena.Matrix views at publication. Deletes leave dead
// rows behind; compact() rebuilds the arenas densely once too much of the
// storage is dead.
type arenas struct {
	values *arena.Builder // observations, stride n
	sigmas *arena.Builder // per-timestamp error stddevs, stride n
	uma    *arena.Builder // UMA-filtered vectors, stride n
	uema   *arena.Builder // UEMA-filtered vectors, stride n
	upper  *arena.Builder // LB_Keogh upper envelopes, stride n
	lower  *arena.Builder // LB_Keogh lower envelopes, stride n
	suffix *arena.Builder // PROUD suffix energies, stride n+1
	envLo  *arena.Builder // MUNICH envelope minima, stride cfg.Segments
	envHi  *arena.Builder // MUNICH envelope maxima, stride cfg.Segments
	sketch *arena.Builder // PAA sketch rows for the bucket index, stride lay.Stride()

	// lay is the sketch-row geometry all sketch rows share (and the bucket
	// tree indexes).
	lay sketch.Layout

	// envScratch is the deque storage LB_Keogh envelope builds reuse
	// across inserts; buildEntry runs under the corpus writer lock, so
	// one scratch per arena set suffices.
	envScratch distance.EnvelopeScratch
}

// newArenas allocates the builder set for a resolved geometry (cfg.Length
// and cfg.Segments known), with capacity reserved for capRows series.
func newArenas(cfg Config, capRows int) *arenas {
	n := cfg.Length
	lay := sketch.NewLayout(n, cfg.SketchSegments, cfg.Segments)
	return &arenas{
		values: arena.NewBuilder(n, capRows),
		sigmas: arena.NewBuilder(n, capRows),
		uma:    arena.NewBuilder(n, capRows),
		uema:   arena.NewBuilder(n, capRows),
		upper:  arena.NewBuilder(n, capRows),
		lower:  arena.NewBuilder(n, capRows),
		suffix: arena.NewBuilder(n+1, capRows),
		envLo:  arena.NewBuilder(cfg.Segments, capRows),
		envHi:  arena.NewBuilder(cfg.Segments, capRows),
		sketch: arena.NewBuilder(lay.Stride(), capRows),
		lay:    lay,
	}
}

// rows returns the common row count.
func (a *arenas) rows() int { return a.values.Rows() }

// grow reserves capacity for extra more rows in every builder.
func (a *arenas) grow(extra int) {
	for _, b := range a.all() {
		b.Grow(extra)
	}
}

// truncate rolls every builder back to the given row count — the abort path
// of a mutation that staged rows no snapshot has been captured over.
func (a *arenas) truncate(rows int) {
	for _, b := range a.all() {
		b.Truncate(rows)
	}
}

func (a *arenas) all() []*arena.Builder {
	return []*arena.Builder{a.values, a.sigmas, a.uma, a.uema, a.upper, a.lower, a.suffix, a.envLo, a.envHi, a.sketch}
}

// compact rebuilds every arena with only the rows of the surviving entries,
// in entry position order, in fresh storage (published snapshots keep
// reading the old arrays), and returns the compacted set. Row i of the new
// arenas holds entry i's artifacts — density restored.
func (a *arenas) compact(keep []int) *arenas {
	return &arenas{
		values: a.values.Compact(keep),
		sigmas: a.sigmas.Compact(keep),
		uma:    a.uma.Compact(keep),
		uema:   a.uema.Compact(keep),
		upper:  a.upper.Compact(keep),
		lower:  a.lower.Compact(keep),
		suffix: a.suffix.Compact(keep),
		envLo:  a.envLo.Compact(keep),
		envHi:  a.envHi.Compact(keep),
		sketch: a.sketch.Compact(keep),
		lay:    a.lay,
	}
}

// Columns is the dense columnar view of a snapshot: one arena.Matrix per
// artifact, row i holding the artifact of the entry at position i. It is
// only available on dense snapshots (no dead rows — see Snapshot.Columns);
// engines use it to drive hot scans over contiguous memory instead of
// chasing per-entry slice headers.
type Columns struct {
	// Values holds the observation vectors (stride = series length).
	Values arena.Matrix
	// Sigmas holds the per-timestamp error stddevs.
	Sigmas arena.Matrix
	// UMA and UEMA hold the filtered vectors of the corpus filter config.
	UMA, UEMA arena.Matrix
	// Upper and Lower hold the LB_Keogh envelopes for the corpus band.
	Upper, Lower arena.Matrix
	// Suffix holds PROUD's suffix energies (stride = series length + 1).
	Suffix arena.Matrix
	// EnvLo and EnvHi hold the MUNICH segment envelopes (stride =
	// cfg.Segments; zero rows for series without samples).
	EnvLo, EnvHi arena.Matrix
	// Sketch holds the PAA sketch rows the bucket index summarises
	// (stride = the sketch layout's stride).
	Sketch arena.Matrix
}

// capture freezes the current builder state as a columnar view.
func (a *arenas) capture() *Columns {
	return &Columns{
		Values: a.values.Matrix(),
		Sigmas: a.sigmas.Matrix(),
		UMA:    a.uma.Matrix(),
		UEMA:   a.uema.Matrix(),
		Upper:  a.upper.Matrix(),
		Lower:  a.lower.Matrix(),
		Suffix: a.suffix.Matrix(),
		EnvLo:  a.envLo.Matrix(),
		EnvHi:  a.envHi.Matrix(),
		Sketch: a.sketch.Matrix(),
	}
}
