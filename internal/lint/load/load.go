// Package load type-checks Go packages for analysis without
// golang.org/x/tools/go/packages: it shells out to `go list -export` for
// package metadata and compiled export data, parses the target packages'
// sources, and type-checks them with the standard library's go/types and
// gc importer. Only the current module and its standard-library imports
// resolve — exactly the closed world uncertlint analyzes.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader loads and type-checks packages. It caches export data paths and
// imported packages, so loading many packages (or many testdata
// directories) pays for `go list` and each import once. A Loader is safe
// for use from one goroutine.
type Loader struct {
	// Dir is the directory `go list` runs in; it must lie inside the
	// module being analyzed. Empty means the current directory.
	Dir string

	fset    *token.FileSet
	imp     types.ImporterFrom
	mu      sync.Mutex
	exports map[string]string // import path -> export data file
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns and records
// every listed package's export data file. It returns the packages that
// matched the patterns themselves (DepOnly == false).
func (l *Loader) goList(patterns ...string) ([]listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		l.mu.Lock()
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		l.mu.Unlock()
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, nil
}

// lookupExport serves the gc importer: it returns a reader over the export
// data of the given import path, running `go list` lazily for paths not
// seen yet (a testdata package importing something outside the already
// listed dependency closure).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		if _, err := l.goList(path); err != nil {
			return nil, fmt.Errorf("resolving import %q: %v", path, err)
		}
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
	}
	if !ok || file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// Load lists the packages matching the go package patterns and type-checks
// each from source. Test files are not part of the returned syntax — the
// suite checks production code, and several analyzers deliberately exempt
// tests.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every non-test .go file in dir as one
// package with the given import path. It exists for testdata packages,
// which live outside the module's package graph; their imports resolve
// against the enclosing module via the lazy export lookup.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	return l.check(importPath, dir, files)
}

// check parses the named files and type-checks them as one package.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}
