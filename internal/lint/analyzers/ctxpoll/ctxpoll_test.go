package ctxpoll_test

import (
	"testing"

	"uncertts/internal/lint/analysistest"
	"uncertts/internal/lint/analyzers/ctxpoll"
)

func TestDefinitions(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxpoll.Analyzer, "distance")
}

func TestCallSites(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxpoll.Analyzer, "b")
}
