// Package b seeds call-site violations for ctxpoll: callers that pick a
// kernel's non-cancellable spelling when a Cancel/Ctx variant exists.
package b

import (
	"context"

	"uncertts/internal/core"
	"uncertts/internal/distance"
	"uncertts/internal/munich"
	"uncertts/internal/uncertain"
)

func scan(ctx context.Context, q, c []float64, xs, ys uncertain.SampleSeries) error {
	if _, _, err := distance.DTWBandEarlyAbandon(q, c, 4, 1e9); err != nil { // want `call to distance\.DTWBandEarlyAbandon cannot be cancelled; use DTWBandEarlyAbandonCancel`
		return err
	}
	if _, _, err := munich.ProbabilityCutoff(xs, ys, 0.5, 0.1, munich.Options{}); err != nil { // want `call to munich\.ProbabilityCutoff cannot be cancelled; use ProbabilityCutoffCancel`
		return err
	}
	if err := core.RunSharded(100, 1, 4, func(lo, hi int) error { return nil }); err != nil { // want `call to core\.RunSharded cannot be cancelled; use RunShardedCtx`
		return err
	}

	// The cancellable spellings are the sanctioned ones.
	if _, _, err := distance.DTWBandEarlyAbandonCancel(q, c, 4, 1e9, ctx.Done()); err != nil {
		return err
	}
	if err := core.RunShardedCtx(ctx, 100, 1, 4, func(lo, hi int) error { return nil }); err != nil {
		return err
	}
	// Kernels with no cancellable sibling carry no obligation.
	if _, err := distance.Euclidean(q, c); err != nil {
		return err
	}
	return nil
}

func suppressed(q, c []float64) (float64, bool, error) {
	//lint:allow ctxpoll init-time call with no request context in scope
	return distance.DTWBandEarlyAbandon(q, c, 4, 1e9)
}
