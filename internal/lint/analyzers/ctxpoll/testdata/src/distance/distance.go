// Package distance stands in for a kernel package (ctxpoll matches
// kernel packages by import path base) to seed definition-side
// violations: exported kernels that accept a cancellation handle but
// whose loops can never observe it.
package distance

import "context"

// ScanCtx accepts a context and loops without ever polling it.
func ScanCtx(ctx context.Context, xs []float64) float64 { // want `ScanCtx accepts a cancellation handle but no loop ever polls or forwards it`
	var acc float64
	for _, x := range xs {
		acc += x * x
	}
	return acc
}

// ScanDone accepts a done channel and ignores it just as thoroughly.
func ScanDone(xs []float64, done <-chan struct{}) float64 { // want `ScanDone accepts a cancellation handle but no loop ever polls or forwards it`
	var acc float64
	for i := 0; i < len(xs); i++ {
		acc += xs[i]
	}
	return acc
}

// PolledCtx polls ctx.Err at every step: compliant.
func PolledCtx(ctx context.Context, xs []float64) (float64, error) {
	var acc float64
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		acc += x
	}
	return acc, nil
}

// PolledHoisted hoists done := ctx.Done() above the loop — the kernel
// idiom; the derived local counts as the handle.
func PolledHoisted(ctx context.Context, xs []float64) (float64, error) {
	done := ctx.Done()
	var acc float64
	for _, x := range xs {
		select {
		case <-done:
			return 0, ctx.Err()
		default:
		}
		acc += x
	}
	return acc, nil
}

// Forwarded delegates cancellation to a callee inside the loop.
func Forwarded(ctx context.Context, xs [][]float64) (float64, error) {
	var acc float64
	for _, row := range xs {
		v, err := PolledCtx(ctx, row)
		if err != nil {
			return 0, err
		}
		acc += v
	}
	return acc, nil
}

// NoLoops accepts a context but has nothing long-running to poll from.
func NoLoops(ctx context.Context, a, b float64) float64 {
	return a + b
}

// unexported kernels are wrappers' business, not the contract surface.
func scanQuietly(ctx context.Context, xs []float64) float64 {
	var acc float64
	for _, x := range xs {
		acc += x
	}
	return acc
}

// Suppressed loops without polling, with a recorded justification.
//
//lint:allow ctxpoll bounded eight-iteration loop, cancellation latency is nanoseconds
func Suppressed(ctx context.Context, xs *[8]float64) float64 {
	var acc float64
	for _, x := range xs {
		acc += x
	}
	return acc
}
