// Package ctxpoll guards the cancellation contract of the kernel
// packages (internal/distance, internal/munich, internal/proud,
// internal/core): a long-running kernel that accepts a cancellation
// handle — a context.Context or the lighter `done <-chan struct{}` the
// kernels thread through their inner loops — must actually observe it,
// and code outside those packages must not call a kernel's
// non-cancellable spelling when a Cancel/Ctx variant exists.
//
// Two checks:
//
//  1. Definitions: an exported function in a kernel package that takes a
//     cancellation parameter and contains loops, none of which reference
//     that parameter (no select on Done, no Err() poll, no delegation
//     passing it on), is an uncancellable kernel wearing a cancellable
//     signature.
//
//  2. Call sites: a call from outside the defining package to a kernel
//     function that has no cancellation parameter, when a sibling named
//     <Func>Cancel or <Func>Ctx exists, abandons cancellation at the
//     boundary where it matters most. Call sites with genuinely no
//     context available annotate with //lint:allow ctxpoll <reason>.
package ctxpoll

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"uncertts/internal/lint/analysis"
)

// Analyzer enforces the kernel cancellation contract.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "flags kernels that take a ctx/done handle but never poll it in a loop, and calls bypassing a Cancel/Ctx kernel variant",
	Run:  run,
}

// kernelPackages matches by import path base so the analyzer applies both
// to the real uncertts/internal/* packages and to analysistest packages
// named after them.
var kernelPackages = map[string]bool{
	"distance": true,
	"munich":   true,
	"proud":    true,
	"core":     true,
}

func isKernelPkg(p *types.Package) bool {
	return p != nil && kernelPackages[path.Base(p.Path())]
}

func run(pass *analysis.Pass) (interface{}, error) {
	if isKernelPkg(pass.Pkg) {
		checkDefinitions(pass)
	}
	checkCallSites(pass)
	return nil, nil
}

// cancellationParams returns the objects of every context.Context or
// <-chan struct{} parameter of the function.
func cancellationParams(pass *analysis.Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isCancellationType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isCancellationType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// checkDefinitions flags exported kernel functions whose loops can never
// observe their cancellation parameter.
func checkDefinitions(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			params := cancellationParams(pass, fd)
			if len(params) == 0 {
				continue
			}
			// Locals derived from the handle count as handles too: the
			// idiom is done := ctx.Done() hoisted above the loop.
			params = taintDerived(pass, fd.Body, params)
			loops := 0
			polled := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.ForStmt:
					body = n.Body
				case *ast.RangeStmt:
					body = n.Body
				default:
					return true
				}
				loops++
				if referencesAny(pass, body, params) {
					polled = true
				}
				return true
			})
			if loops > 0 && !polled {
				pass.Reportf(fd.Name.Pos(),
					"%s accepts a cancellation handle but no loop ever polls or forwards it; a long scan through here cannot be cancelled", fd.Name.Name)
			}
		}
	}
}

// taintDerived grows the handle set with every local variable assigned
// from an expression that mentions a handle (done := ctx.Done(), aliases
// of aliases), iterating to a fixpoint.
func taintDerived(pass *analysis.Pass, body *ast.BlockStmt, objs []types.Object) []types.Object {
	in := func(obj types.Object) bool {
		for _, o := range objs {
			if o == obj {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			tainted := false
			for _, rhs := range assign.Rhs {
				if referencesAny(pass, rhs, objs) {
					tainted = true
				}
			}
			if !tainted {
				return true
			}
			for _, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil && !in(obj) {
					objs = append(objs, obj)
					changed = true
				}
			}
			return true
		})
	}
	return objs
}

// referencesAny reports whether any identifier inside n resolves to one
// of the given objects.
func referencesAny(pass *analysis.Pass, n ast.Node, objs []types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := pass.TypesInfo.Uses[id]
		for _, obj := range objs {
			if use == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkCallSites flags calls to kernel functions that bypass an existing
// Cancel/Ctx variant.
func checkCallSites(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if !isKernelPkg(fn.Pkg()) || fn.Pkg() == pass.Pkg || !fn.Exported() {
				return true
			}
			if hasCancellationParam(fn) {
				return true
			}
			variant := cancellableVariant(fn)
			if variant == "" {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s cannot be cancelled; use %s (or annotate why no context is available here)",
				path.Base(fn.Pkg().Path()), fn.Name(), variant)
			return true
		})
	}
}

func hasCancellationParam(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isCancellationType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// cancellableVariant returns the name of an exported sibling function
// named <fn>Cancel or <fn>Ctx that takes a cancellation parameter, or "".
func cancellableVariant(fn *types.Func) string {
	scope := fn.Pkg().Scope()
	for _, suffix := range []string{"Cancel", "Ctx"} {
		obj := scope.Lookup(fn.Name() + suffix)
		sibling, ok := obj.(*types.Func)
		if ok && sibling.Exported() && hasCancellationParam(sibling) {
			return sibling.Name()
		}
	}
	return ""
}
