// Package arenawrite enforces the arena copy-on-write contract: slices
// obtained from an arena.Matrix (Row, Data), from a corpus snapshot's
// Columns, or from a corpus Entry's artifact fields are views into shared
// immutable storage. Writing through one corrupts every snapshot aliasing
// the same rows — silently, across goroutines, with no test failing until
// a scan reads the poisoned row. Only the arena package itself (whose
// Builder owns rows before publication) may write; everyone else gets
// flagged on element assignment, op-assignment, ++/--, and copy-into.
//
// The analyzer tracks views through local variables and re-slicings
// within a function (`row := m.Row(i); row[0] = x` is flagged), but not
// across function boundaries: passing a view to a function that writes
// through its parameter is the reviewers' (and the race detector's)
// problem, not this analyzer's.
package arenawrite

import (
	"go/ast"
	"go/types"
	"path"

	"uncertts/internal/lint/analysis"
)

// Analyzer flags writes through arena and corpus snapshot views.
var Analyzer = &analysis.Analyzer{
	Name: "arenawrite",
	Doc:  "flags writes through arena.Matrix.Row/Data, Snapshot.Columns and corpus entry views — snapshot storage is immutable",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if path.Base(pass.Pkg.Path()) == "arena" {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, tainted: map[types.Object]bool{}}

	// Fixpoint taint: locals assigned from a view (or a slice/index of
	// one) are views themselves.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				if !c.isView(rhs) {
					continue
				}
				id, ok := assign.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				if obj != nil && !c.tainted[obj] {
					c.tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if kind := c.viewKind(idx.X); kind != "" {
						c.pass.Reportf(lhs.Pos(), "write through %s; snapshot storage is immutable (arena copy-on-write contract)", kind)
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if kind := c.viewKind(idx.X); kind != "" {
					c.pass.Reportf(n.Pos(), "%s through %s; snapshot storage is immutable (arena copy-on-write contract)", n.Tok, kind)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
					if kind := c.viewKind(n.Args[0]); kind != "" {
						c.pass.Reportf(n.Pos(), "copy into %s; snapshot storage is immutable (arena copy-on-write contract)", kind)
					}
				}
			}
		}
		return true
	})
}

func (c *checker) isView(e ast.Expr) bool { return c.viewKind(e) != "" }

// viewKind classifies e as a snapshot view and returns a description for
// the diagnostic, or "" if e is not a view. It sees through parens,
// re-slicings, and element selection of tracked views.
func (c *checker) viewKind(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil && c.tainted[obj] {
			return "a local alias of a snapshot view"
		}
	case *ast.SliceExpr:
		return c.viewKind(e.X)
	case *ast.IndexExpr:
		return c.viewKind(e.X)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && isMatrixView(fn) {
				return "arena.Matrix." + fn.Name() + "()"
			}
		}
	case *ast.SelectorExpr:
		obj, ok := c.pass.TypesInfo.Uses[e.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			return ""
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return ""
		}
		if c.entryDerived(e.X) {
			return "corpus entry view ." + e.Sel.Name
		}
	}
	return ""
}

// isMatrixView reports whether fn is (arena.Matrix).Row or Data.
func isMatrixView(fn *types.Func) bool {
	if fn.Name() != "Row" && fn.Name() != "Data" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), "arena", "Matrix")
}

// entryDerived reports whether the expression is (a selector chain rooted
// at) a corpus.Entry value — the carrier of snapshot artifact views.
func (c *checker) entryDerived(e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		if isNamed(tv.Type, "corpus", "Entry") {
			return true
		}
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return c.entryDerived(sel.X)
	}
	return false
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgBase.name, matching the package by import path base so analysistest
// packages stand in for the real ones.
func isNamed(t types.Type, pkgBase, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && path.Base(obj.Pkg().Path()) == pkgBase
}
