// Package a seeds writes through arena and corpus snapshot views for the
// arenawrite analyzer's analysistest run.
package a

import (
	"uncertts/internal/arena"
	"uncertts/internal/corpus"
)

func direct(m arena.Matrix) {
	m.Row(0)[1] = 5             // want `write through arena\.Matrix\.Row\(\)`
	copy(m.Data(), []float64{}) // want `copy into arena\.Matrix\.Data\(\)`
}

func throughLocals(m arena.Matrix, src []float64) {
	row := m.Row(0)
	row[0] = 1  // want `write through a local alias of a snapshot view`
	row[2] += 3 // want `write through a local alias of a snapshot view`

	sub := m.Row(1)[1:]
	sub[0]++ // want `\+\+ through a local alias of a snapshot view`

	d := m.Data()
	copy(d, src) // want `copy into a local alias of a snapshot view`

	alias := d
	alias[9] = 0 // want `write through a local alias of a snapshot view`
}

func entryViews(e *corpus.Entry, src []float64) {
	e.UMA[0] = 1              // want `write through corpus entry view \.UMA`
	copy(e.Suffix, src)       // want `copy into corpus entry view \.Suffix`
	e.PDF.Observations[0] = 2 // want `write through corpus entry view \.Observations`
	e.Env.Lo[0] = 3           // want `write through corpus entry view \.Lo`
	sig := e.Sigmas
	sig[1] = 0.5 // want `write through a local alias of a snapshot view`
}

func snapshotColumns(s *corpus.Snapshot) {
	cols, ok := s.Columns()
	if !ok {
		return
	}
	cols.UMA.Row(3)[0] = 1 // want `write through arena\.Matrix\.Row\(\)`
}

func legal(b *arena.Builder, m arena.Matrix, e *corpus.Entry) float64 {
	// Builder rows are writer-owned until published.
	row := b.AppendZero()
	row[0] = 1
	// Reading views is the whole point.
	v := m.Row(0)[1] + e.UMA[2]
	// Plain local slices are nobody's views.
	local := make([]float64, 4)
	local[3] = v
	copy(local, e.Suffix)
	return local[3]
}

func suppressed(m arena.Matrix) {
	//lint:allow arenawrite proving the suppression path for the test harness
	m.Row(0)[0] = 42
}
