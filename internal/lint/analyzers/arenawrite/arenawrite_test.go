package arenawrite_test

import (
	"testing"

	"uncertts/internal/lint/analysistest"
	"uncertts/internal/lint/analyzers/arenawrite"
)

func TestArenaWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), arenawrite.Analyzer, "a")
}
