// Package a seeds sentinel-comparison violations for the sentinelcmp
// analyzer's analysistest run.
package a

import (
	"context"
	"errors"
	"io"

	"uncertts/internal/qerr"
)

func compare(err error) bool {
	if err == qerr.ErrBadRequest { // want `qerr\.ErrBadRequest compared with ==; use errors\.Is`
		return true
	}
	if err != qerr.ErrCancelled { // want `qerr\.ErrCancelled compared with !=; use errors\.Is`
		return false
	}
	if qerr.ErrUnknownMeasure == err { // want `qerr\.ErrUnknownMeasure compared with ==`
		return true
	}
	if err == context.Canceled { // want `context\.Canceled compared with ==`
		return true
	}
	return err == context.DeadlineExceeded // want `context\.DeadlineExceeded compared with ==`
}

func valueSwitch(err error) int {
	switch err {
	case qerr.ErrLengthMismatch: // want `switch case compares qerr\.ErrLengthMismatch by identity`
		return 1
	case context.DeadlineExceeded: // want `switch case compares context\.DeadlineExceeded by identity`
		return 2
	case nil, io.EOF: // foreign sentinels are none of our business
		return 3
	}
	return 0
}

func fine(err error) bool {
	if errors.Is(err, qerr.ErrBadRequest) { // the sanctioned spelling
		return true
	}
	if err == io.EOF { // io.EOF is returned unwrapped by convention
		return true
	}
	return err == nil
}

func suppressed(err error) bool {
	//lint:allow sentinelcmp proving the suppression path for the test harness
	return err == qerr.ErrBadRequest
}
