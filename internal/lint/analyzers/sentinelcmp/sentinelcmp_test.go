package sentinelcmp_test

import (
	"testing"

	"uncertts/internal/lint/analysistest"
	"uncertts/internal/lint/analyzers/sentinelcmp"
)

func TestSentinelCmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sentinelcmp.Analyzer, "a")
}
