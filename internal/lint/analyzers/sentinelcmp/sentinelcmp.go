// Package sentinelcmp flags identity comparisons against the query
// surface's sentinel errors. Every error the engine returns wraps a
// qerr.Err* sentinel (or a context error) via fmt.Errorf("%w", ...), so
// `err == qerr.ErrBadRequest` is almost always false at runtime — the
// invariant is that sentinels are classified with errors.Is, never with
// == or != or a value switch.
package sentinelcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"uncertts/internal/lint/analysis"
)

// Analyzer flags ==/!= and switch-case comparisons against qerr.Err*
// sentinels and the context package's Canceled/DeadlineExceeded.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelcmp",
	Doc:  "flags == / != / switch-case against qerr sentinels and context errors; wrapped errors only match via errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, op := range []ast.Expr{n.X, n.Y} {
					if name := sentinelName(pass, op); name != "" {
						pass.Reportf(n.OpPos, "%s compared with %s; use errors.Is — wrapped errors never compare equal", name, n.Op)
						return true
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinelName(pass, e); name != "" {
							pass.Reportf(e.Pos(), "switch case compares %s by identity; use errors.Is in an if/else chain", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// sentinelName returns a printable name if e refers to a sentinel error
// variable, else "".
func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return ""
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	switch v.Pkg().Path() {
	case "uncertts/internal/qerr":
		if len(v.Name()) > 3 && v.Name()[:3] == "Err" {
			return "qerr." + v.Name()
		}
	case "context":
		if v.Name() == "Canceled" || v.Name() == "DeadlineExceeded" {
			return "context." + v.Name()
		}
	}
	return ""
}
