// Package a seeds raw float comparisons for the floatcmp analyzer's
// analysistest run.
package a

import "math"

func raw(a, b float64) bool {
	if a == b { // want `floating-point == is exact`
		return true
	}
	return a != b // want `floating-point != is exact`
}

func raw32(a, b float32) bool {
	return a == b // want `floating-point == is exact`
}

func mixedConst(a float64) bool {
	return a == 0.25 // want `floating-point == is exact`
}

func allowlisted(a, b float64, n int) bool {
	if a == 0 { // exact-zero test
		return false
	}
	if 0.0 != b { // exact-zero test, reversed
		return false
	}
	if a != a { // NaN idiom
		return true
	}
	if a == math.Inf(1) { // exact by construction
		return true
	}
	if n == 3 { // integers compare exactly
		return true
	}
	return 1.5 == 1.5 // constant folding, no runtime comparison
}

type item struct {
	dist float64
	id   int
}

func less(a, b item) bool {
	if a.dist != b.dist { // sort tie-break guard
		return a.dist < b.dist
	}
	return a.id < b.id
}

func suppressed(a, b float64) bool {
	//lint:allow floatcmp proving the suppression path for the test harness
	return a == b
}
