// Package floatcmp flags exact ==/!= comparisons between floating-point
// values. Almost every float in this codebase is the product of
// accumulation (filters, envelopes, probability estimates), where exact
// equality silently depends on evaluation order; the sanctioned guarded
// comparisons are allowlisted and everything else must either switch to a
// tolerance/ULP comparison or carry an explicit //lint:allow with the
// argument for why exact equality is sound.
//
// Allowlisted without annotation:
//   - comparisons in _test.go files
//   - exact-zero tests (x == 0): zero is a sanctioned sentinel for "unset"
//     config fields and degenerate denominators
//   - the NaN idiom x != x (both operands textually identical)
//   - comparisons against math.Inf(...), which is exact by construction
//   - the sort tie-break guard `if x != y { return x < y }` (any ordering
//     operator, same operands): equal bits mean a tie by definition, and
//     both orderings of unequal values are handled explicitly
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"uncertts/internal/lint/analysis"
)

// Analyzer flags raw floating-point equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags == / != between floats outside guarded comparisons (exact zero, NaN idiom, math.Inf, tests)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		tieBreaks := tieBreakGuards(f)
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if tieBreaks[cmp] {
				return true
			}
			if !isFloat(pass, cmp.X) && !isFloat(pass, cmp.Y) {
				return true
			}
			if isExactZero(pass, cmp.X) || isExactZero(pass, cmp.Y) {
				return true
			}
			if isMathInf(pass, cmp.X) || isMathInf(pass, cmp.Y) {
				return true
			}
			if types.ExprString(cmp.X) == types.ExprString(cmp.Y) {
				return true // NaN self-test idiom
			}
			if isConst(pass, cmp.X) && isConst(pass, cmp.Y) {
				return true // compile-time comparison
			}
			pass.Reportf(cmp.OpPos, "floating-point %s is exact; use a tolerance/ULP comparison or annotate why exact equality is sound", cmp.Op)
			return true
		})
	}
	return nil, nil
}

// tieBreakGuards collects the != conditions of sort tie-break guards:
// `if x != y { return x < y }` (or >, <=, >=) over the same two operands.
func tieBreakGuards(f *ast.File) map[*ast.BinaryExpr]bool {
	out := map[*ast.BinaryExpr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || len(ifs.Body.List) != 1 {
			return true
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			return true
		}
		ret, ok := ifs.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		ord, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch ord.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		cx, cy := types.ExprString(cond.X), types.ExprString(cond.Y)
		ox, oy := types.ExprString(ord.X), types.ExprString(ord.Y)
		if (cx == ox && cy == oy) || (cx == oy && cy == ox) {
			out[cond] = true
		}
		return true
	})
	return out
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isExactZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}

func isMathInf(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Inf"
}
