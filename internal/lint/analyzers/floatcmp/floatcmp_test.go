package floatcmp_test

import (
	"testing"

	"uncertts/internal/lint/analysistest"
	"uncertts/internal/lint/analyzers/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcmp.Analyzer, "a")
}
