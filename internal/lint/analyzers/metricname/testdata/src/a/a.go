// Package a seeds metric-naming violations for the metricname analyzer's
// analysistest run.
package a

import (
	"uncertts/internal/telemetry"
)

var dynamicName = "uncertts_runtime_built_total"

var (
	_ = telemetry.NewCounter("uncertts_good_events_total", "Fine: snake_case with a unit suffix.")
	_ = telemetry.NewGauge("uncertts_good_pending_bytes", "Fine: bytes unit.")
	_ = telemetry.NewHistogram("uncertts_good_latency_seconds", "Fine: seconds unit.", nil)
	_ = telemetry.NewCounterVec("uncertts_good_errors_total", "Fine: vec variant.", "kind")
	_ = telemetry.NewGaugeVec("uncertts_good_fill_ratio", "Fine: ratio unit.", "shard")

	_ = telemetry.NewCounter("uncertts_missing_suffix", "No unit suffix.")                        // want `metric name "uncertts_missing_suffix" breaks the naming contract`
	_ = telemetry.NewGauge("UncertTSCamelCase_total", "Not snake_case.")                          // want `metric name "UncertTSCamelCase_total" breaks the naming contract`
	_ = telemetry.NewHistogram("uncertts_bad-dash_seconds", "Dash is not allowed.", nil)          // want `metric name "uncertts_bad-dash_seconds" breaks the naming contract`
	_ = telemetry.NewCounter(dynamicName, "Computed names hide the inventory.")                   // want `telemetry\.NewCounter name must be a string literal`
	_ = telemetry.NewCounterVec("uncertts_"+"concat_total", "Concatenation is not a literal.")    // want `telemetry\.NewCounterVec name must be a string literal`
	_ = telemetry.NewGaugeFunc("9starts_with_digit_total", "Must start with a letter.", zero)     // want `metric name "9starts_with_digit_total" breaks the naming contract`
	_ = telemetry.NewHistogramVec("uncertts_caught_elsewhere", "Vec form, no suffix.", nil, "xs") // want `metric name "uncertts_caught_elsewhere" breaks the naming contract`
)

func zero() float64 { return 0 }

// registryMethods proves the *Registry methods are watched exactly like
// the package-level constructors.
func registryMethods(reg *telemetry.Registry) {
	reg.NewCounter("uncertts_method_events_total", "Fine.")
	reg.NewGauge("uncertts_method_no_suffix", "Method form, bad name.") // want `metric name "uncertts_method_no_suffix" breaks the naming contract`
}

func suppressed() {
	//lint:allow metricname proving the suppression path for the test harness
	_ = telemetry.NewCounter("uncertts_suppressed_name", "Would otherwise be flagged.")
}
