// Package metricname enforces the telemetry registry's naming contract at
// build time. Every metric registered through the telemetry New*
// constructors must be named by a string literal — so the full metric
// inventory is greppable — and the literal must be snake_case with a unit
// suffix (_total, _seconds, _bytes or _ratio), the exact rule the registry
// enforces with a panic at registration. The analyzer turns that runtime
// panic into a diagnostic on the offending call.
package metricname

import (
	"go/ast"
	"go/types"
	"strconv"

	"uncertts/internal/lint/analysis"
	"uncertts/internal/telemetry"
)

// telemetryPkg is the package whose constructors the analyzer watches.
const telemetryPkg = "uncertts/internal/telemetry"

// constructors are the registration entry points, both the package-level
// functions and the *Registry methods (they share names).
var constructors = map[string]bool{
	"NewCounter":      true,
	"NewCounterVec":   true,
	"NewGauge":        true,
	"NewGaugeVec":     true,
	"NewGaugeFunc":    true,
	"NewHistogram":    true,
	"NewHistogramVec": true,
}

// Analyzer flags telemetry metric registrations whose name is not a valid
// literal.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "flags telemetry New* registrations whose metric name is not a snake_case string literal with a unit suffix (_total, _seconds, _bytes, _ratio)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The telemetry package itself builds names generically (the registry
	// internals and its own tests exercise invalid names on purpose).
	if pass.Pkg.Path() == telemetryPkg {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := constructorName(pass, call)
			if name == "" || len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "telemetry.%s name must be a string literal so the metric inventory stays greppable", name)
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !telemetry.ValidMetricName(val) {
				pass.Reportf(lit.Pos(), "metric name %q breaks the naming contract: snake_case starting with a letter, ending in _total, _seconds, _bytes or _ratio", val)
			}
			return true
		})
	}
	return nil, nil
}

// constructorName returns the telemetry constructor a call resolves to,
// or "" when the callee is anything else.
func constructorName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != telemetryPkg {
		return ""
	}
	if !constructors[fn.Name()] {
		return ""
	}
	return fn.Name()
}
