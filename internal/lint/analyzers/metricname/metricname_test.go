package metricname_test

import (
	"testing"

	"uncertts/internal/lint/analysistest"
	"uncertts/internal/lint/analyzers/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), metricname.Analyzer, "a")
}
