// Package intoalloc enforces the contract of the ...Into kernel family:
// an Into-suffixed function whose documentation advertises itself as
// allocation-free must not allocate. These kernels exist so arena-backed
// corpora can (re)build per-series artifacts in place on the hot ingest
// path; a make/append hidden inside one reintroduces exactly the per-call
// garbage the arena refactor removed, without failing any correctness
// test.
package intoalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"uncertts/internal/lint/analysis"
)

// Analyzer flags allocations inside Into-kernels documented
// allocation-free.
var Analyzer = &analysis.Analyzer{
	Name: "intoalloc",
	Doc:  "flags append/make/new/slice-or-map literals inside ...Into kernels documented allocation-free",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasSuffix(fd.Name.Name, "Into") {
				continue
			}
			if !claimsAllocationFree(fd.Doc) {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if b := builtinName(pass, n.Fun); b == "make" || b == "new" || b == "append" {
						pass.Reportf(n.Pos(), "%s inside %s, which is documented allocation-free", b, name)
					}
				case *ast.CompositeLit:
					tv, ok := pass.TypesInfo.Types[n]
					if !ok || tv.Type == nil {
						return true
					}
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Map:
						pass.Reportf(n.Pos(), "composite literal allocates inside %s, which is documented allocation-free", name)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// claimsAllocationFree reports whether the doc comment advertises the
// kernel as allocation-free.
func claimsAllocationFree(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	text := strings.ToLower(doc.Text())
	return strings.Contains(text, "allocation-free") || strings.Contains(text, "allocation free")
}

// builtinName returns the name of the builtin a call expression invokes,
// or "".
func builtinName(pass *analysis.Pass, fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
