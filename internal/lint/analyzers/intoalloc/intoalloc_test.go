package intoalloc_test

import (
	"testing"

	"uncertts/internal/lint/analysistest"
	"uncertts/internal/lint/analyzers/intoalloc"
)

func TestIntoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), intoalloc.Analyzer, "a")
}
