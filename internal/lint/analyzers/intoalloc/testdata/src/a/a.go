// Package a seeds allocations inside Into-kernels for the intoalloc
// analyzer's analysistest run.
package a

// FillInto fills dst from src — the allocation-free form arena-backed
// callers use.
func FillInto(dst, src []float64) {
	tmp := make([]float64, len(src)) // want `make inside FillInto, which is documented allocation-free`
	tmp = append(tmp, 1)             // want `append inside FillInto, which is documented allocation-free`
	extra := []float64{1, 2}         // want `composite literal allocates inside FillInto`
	seen := map[int]bool{}           // want `composite literal allocates inside FillInto`
	p := new(float64)                // want `new inside FillInto, which is documented allocation-free`
	_, _, _, _ = tmp, extra, seen, p
	copy(dst, src)
}

// ScaleInto scales src into dst. It says nothing about allocation, so it
// may allocate freely.
func ScaleInto(dst, src []float64) {
	tmp := make([]float64, len(src))
	copy(tmp, src)
	for i, v := range tmp {
		dst[i] = 2 * v
	}
}

// SumInto accumulates src into dst — allocation free, and actually so.
func SumInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// Fill allocates but is not an Into kernel.
func Fill(n int) []float64 {
	return make([]float64, n)
}

// StampInto writes a marker — the allocation-free form with one justified
// exception.
func StampInto(dst []float64) {
	//lint:allow intoalloc proving the suppression path for the test harness
	tmp := make([]float64, 1)
	dst[0] = tmp[0]
}
