// Package analysistest runs one analyzer over a testdata package and
// checks its diagnostics against `// want "regex"` comments, in the style
// of golang.org/x/tools/go/analysis/analysistest. Diagnostics pass through
// the driver's //lint:allow filtering first, so testdata can also prove
// that suppression directives work: a seeded violation carrying a valid
// directive must have no want comment.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"uncertts/internal/lint/analysis"
	"uncertts/internal/lint/driver"
	"uncertts/internal/lint/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory (go test runs with the package directory as working
// directory).
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// wantRx matches one quoted expectation: "..." (Go-quoted) or `...`.
var wantRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg>, applies the analyzer through the driver,
// and reports any mismatch between diagnostics and want comments as test
// failures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("no testdata package: %v", err)
	}
	loader := load.NewLoader(dir)
	p, err := loader.LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := driver.Run([]*load.Package{p}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// Collect expectations keyed by file:line.
	wants := map[string][]*expectation{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRx.FindAllString(text[i+len("// want "):], -1) {
					pattern := q
					if q[0] == '"' {
						if pattern, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
						}
					} else {
						pattern = q[1 : len(q)-1]
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", key, q, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.rx)
			}
		}
	}
}
