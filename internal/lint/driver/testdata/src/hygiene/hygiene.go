// Package hygiene seeds broken and unused //lint:allow directives for the
// driver's directive-hygiene test.
package hygiene

func directives(a, b float64) bool {
	//lint:allow floatcmp exact equality is fine here because the test says so
	if a == b {
		return true
	}
	//lint:allow floatcmp this one suppresses nothing
	x := a + b
	//lint:allow floatcmp
	y := x + 1
	//lint:allow nosuchanalyzer some reason
	z := y + 1
	//lint:allow
	return z > 0
}
