package driver_test

import (
	"path/filepath"
	"strings"
	"testing"

	"uncertts/internal/lint/analysis"
	"uncertts/internal/lint/analyzers/floatcmp"
	"uncertts/internal/lint/driver"
	"uncertts/internal/lint/load"
)

// TestDirectiveHygiene proves the three failure modes of //lint:allow are
// themselves diagnostics: an unused directive, a directive with no reason,
// and a directive naming an unknown analyzer — while a well-formed, used
// directive suppresses its finding silently.
func TestDirectiveHygiene(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "hygiene"))
	if err != nil {
		t.Fatal(err)
	}
	loader := load.NewLoader(dir)
	pkg, err := loader.LoadDir(dir, "hygiene")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run([]*load.Package{pkg}, []*analysis.Analyzer{floatcmp.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	wants := []string{
		"unused //lint:allow directive for floatcmp",
		"malformed //lint:allow directive: missing reason",
		`malformed //lint:allow directive: unknown analyzer "nosuchanalyzer"`,
		"malformed //lint:allow directive: missing analyzer name and reason",
	}
	if len(got) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(wants), strings.Join(got, "\n"))
	}
	for i, w := range wants {
		if !strings.Contains(got[i], w) {
			t.Errorf("diagnostic %d = %q, want contains %q", i, got[i], w)
		}
	}
}
