// Package driver runs a suite of analyzers over loaded packages and
// applies the repository's suppression directive:
//
//	//lint:allow <analyzer> <reason>
//
// A directive suppresses diagnostics from the named analyzer on its own
// line and on the line directly below it (so it works both as a trailing
// comment and as a standalone comment above the offending line). The
// reason is mandatory, the analyzer name must belong to the suite, and a
// directive that suppresses nothing is itself a diagnostic — every
// exception to an invariant stays explicit, justified, and greppable.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"uncertts/internal/lint/analysis"
	"uncertts/internal/lint/load"
)

// Prefix is the directive marker, in the pragma style gofmt preserves.
const Prefix = "//lint:allow"

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

type directive struct {
	analyzer string
	file     string
	line     int
	pos      token.Position
	problem  string // non-empty: the directive itself is broken
	used     bool
}

// collectDirectives scans a file's comments for //lint:allow directives.
func collectDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, Prefix) {
				continue
			}
			rest := strings.TrimPrefix(text, Prefix)
			pos := fset.Position(c.Pos())
			d := &directive{file: pos.Filename, line: pos.Line, pos: pos}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.problem = "missing analyzer name and reason"
			case !known[fields[0]]:
				d.problem = fmt.Sprintf("unknown analyzer %q", fields[0])
			case len(fields) == 1:
				d.analyzer = fields[0]
				d.problem = "missing reason: write " + Prefix + " " + fields[0] + " <why this exception is sound>"
			default:
				d.analyzer = fields[0]
			}
			out = append(out, d)
		}
	}
	return out
}

// Run applies every analyzer to every package, filters suppressed
// diagnostics, and appends directive-hygiene diagnostics (malformed or
// unused directives). The result is sorted by position.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var directives []*directive
		for _, f := range pkg.Files {
			directives = append(directives, collectDirectives(pkg.Fset, f, known)...)
		}
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				raw = append(raw, Diagnostic{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
			}
		}
	diags:
		for _, d := range raw {
			for _, dir := range directives {
				if dir.problem == "" && dir.analyzer == d.Analyzer && dir.file == d.Pos.Filename &&
					(dir.line == d.Pos.Line || dir.line == d.Pos.Line-1) {
					dir.used = true
					continue diags
				}
			}
			out = append(out, d)
		}
		for _, dir := range directives {
			switch {
			case dir.problem != "":
				out = append(out, Diagnostic{Analyzer: "uncertlint", Pos: dir.pos,
					Message: "malformed " + Prefix + " directive: " + dir.problem})
			case !dir.used:
				out = append(out, Diagnostic{Analyzer: "uncertlint", Pos: dir.pos,
					Message: fmt.Sprintf("unused %s directive for %s: nothing on this or the next line triggers it", Prefix, dir.analyzer)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
