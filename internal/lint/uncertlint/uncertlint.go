// Package uncertlint assembles the repository's analyzer suite — the
// machine-checked form of the invariants the engine's correctness rests
// on. cmd/uncertlint runs it standalone or as a go vet -vettool; tests
// run it straight from here.
package uncertlint

import (
	"uncertts/internal/lint/analysis"
	"uncertts/internal/lint/analyzers/arenawrite"
	"uncertts/internal/lint/analyzers/ctxpoll"
	"uncertts/internal/lint/analyzers/floatcmp"
	"uncertts/internal/lint/analyzers/intoalloc"
	"uncertts/internal/lint/analyzers/metricname"
	"uncertts/internal/lint/analyzers/sentinelcmp"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenawrite.Analyzer,
		ctxpoll.Analyzer,
		floatcmp.Analyzer,
		intoalloc.Analyzer,
		metricname.Analyzer,
		sentinelcmp.Analyzer,
	}
}
