// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, reimplemented on the standard library so
// the repository's own analyzers build offline with zero module
// dependencies. An Analyzer written against this package uses the same
// Name/Doc/Run shape as an x/tools analyzer, so migrating to the upstream
// framework later is a change of import path, not of analyzer code.
//
// Only the pieces the uncertlint suite needs exist: single-pass syntactic
// and type-based inspection of one package at a time. There is no fact
// propagation across packages, no analyzer-to-analyzer Requires graph, and
// no suggested fixes; the uncertlint analyzers need none of these.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation: one summary line, then prose.
	Doc string
	// Run applies the analyzer to a package. It reports diagnostics via
	// pass.Report/Reportf. The result value is unused by this driver and
	// exists for x/tools signature compatibility.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one analyzer's view of one package: the syntax trees, the
// type information, and the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver installs it; analyzer
	// code should call Reportf or Report.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
