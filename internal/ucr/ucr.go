// Package ucr generates deterministic synthetic stand-ins for the 17 UCR
// classification datasets the paper evaluates on (Section 4.1.1). The real
// archive is not redistributable and this build is offline; DESIGN.md
// documents the substitution.
//
// What the experiments actually require from the data is:
//
//  1. class structure, so ground-truth nearest neighbours are meaningful;
//  2. strong temporal correlation between neighbouring points, the property
//     UMA/UEMA exploit; and
//  3. non-uniform value distributions (the paper's chi-square check).
//
// Each dataset is produced from per-class prototype shapes (classic
// cylinder-bell-funnel patterns, the six synthetic-control regimes, or
// seeded harmonic/bump prototypes for the remaining sets), with instances
// derived by smooth time warping plus low-amplitude smooth noise, then
// z-normalized. Cardinalities, lengths and class counts mirror the real
// archive (scaled caps keep experiment runtimes sane).
package ucr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
)

// Spec describes one dataset: its name and the shape parameters mirrored
// from the real UCR archive (train+test joined, as the paper does).
type Spec struct {
	Name    string
	Classes int
	Series  int
	Length  int
}

// specs mirrors the 17 datasets of the paper, in its presentation order.
var specs = []Spec{
	{"50words", 50, 905, 270},
	{"Adiac", 37, 781, 176},
	{"Beef", 5, 60, 470},
	{"CBF", 3, 930, 128},
	{"Coffee", 2, 56, 286},
	{"ECG200", 2, 200, 96},
	{"FISH", 7, 350, 463},
	{"FaceAll", 14, 2250, 131},
	{"FaceFour", 4, 112, 350},
	{"GunPoint", 2, 200, 150},
	{"Lighting2", 2, 121, 637},
	{"Lighting7", 7, 143, 319},
	{"OSULeaf", 6, 442, 427},
	{"OliveOil", 4, 60, 570},
	{"SwedishLeaf", 15, 1125, 128},
	{"Trace", 4, 200, 275},
	{"syntheticControl", 6, 600, 60},
}

// Specs returns the 17 dataset specifications in the paper's order.
func Specs() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// Names returns the dataset names in order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Options controls generation.
type Options struct {
	// MaxSeries caps the number of series per dataset (0 = the spec's full
	// cardinality). Experiments use small caps for quick runs.
	MaxSeries int
	// Length overrides the series length (0 = the spec's length).
	Length int
	// Seed drives all randomness. The same (name, options) pair always
	// produces the identical dataset.
	Seed int64
}

// Generate produces the named dataset.
func Generate(name string, opts Options) (timeseries.Dataset, error) {
	for _, s := range specs {
		if s.Name == name {
			return generate(s, opts), nil
		}
	}
	return timeseries.Dataset{}, fmt.Errorf("ucr: unknown dataset %q (have %v)", name, Names())
}

// GenerateAll produces all 17 datasets.
func GenerateAll(opts Options) []timeseries.Dataset {
	out := make([]timeseries.Dataset, len(specs))
	for i, s := range specs {
		out[i] = generate(s, opts)
	}
	return out
}

func generate(spec Spec, opts Options) timeseries.Dataset {
	n := spec.Series
	if opts.MaxSeries > 0 && opts.MaxSeries < n {
		n = opts.MaxSeries
	}
	length := spec.Length
	if opts.Length > 0 {
		length = opts.Length
	}
	seed := opts.Seed ^ nameSeed(spec.Name)
	protoRng := stats.SplitRand(seed, 1)
	prototypes := make([][]float64, spec.Classes)
	for c := range prototypes {
		prototypes[c] = prototype(spec.Name, c, length, protoRng)
	}
	ds := timeseries.Dataset{Name: spec.Name, Series: make([]timeseries.Series, n)}
	for i := 0; i < n; i++ {
		rng := stats.SplitRand(seed, int64(i)+1000)
		class := i % spec.Classes
		inst := instance(prototypes[class], rng)
		timeseries.NormalizeInPlace(inst)
		ds.Series[i] = timeseries.Series{Values: inst, Label: class, ID: i}
	}
	return ds
}

// nameSeed hashes a dataset name into a seed (FNV-1a).
func nameSeed(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h)
}

// prototype builds the class-c prototype shape for the named dataset. The
// classic constructions (CBF, synthetic control, Gun Point) live here;
// every other dataset routes to its domain-specific shape family in
// shapes.go, falling back to the generic harmonic prototype.
func prototype(name string, class, length int, rng *rand.Rand) []float64 {
	switch name {
	case "CBF":
		return cbfPrototype(class, length)
	case "syntheticControl":
		return syntheticControlPrototype(class, length)
	case "GunPoint":
		return gunPointPrototype(class, length)
	}
	if family := shapeFamily(name); family != nil {
		return smoothSeries(family(class, length, rng))
	}
	return harmonicPrototype(class, length, rng)
}

// cbfPrototype produces the classic cylinder / bell / funnel shapes.
func cbfPrototype(class, n int) []float64 {
	start := n / 4
	end := 3 * n / 4
	switch class {
	case 0: // cylinder
		return timeseries.Plateau(n, start, end, 3)
	case 1: // bell: rising ramp
		return timeseries.Ramp(n, start, end, 3, true)
	default: // funnel: falling ramp
		return timeseries.Ramp(n, start, end, 3, false)
	}
}

// syntheticControlPrototype produces the six control-chart regimes.
func syntheticControlPrototype(class, n int) []float64 {
	out := make([]float64, n)
	switch class {
	case 0: // normal: flat
	case 1: // cyclic
		return timeseries.SineWave(n, float64(n)/4, 0, 2)
	case 2: // increasing trend
		for i := range out {
			out[i] = 4 * float64(i) / float64(n)
		}
	case 3: // decreasing trend
		for i := range out {
			out[i] = -4 * float64(i) / float64(n)
		}
	case 4: // upward shift
		for i := n / 2; i < n; i++ {
			out[i] = 3
		}
	default: // downward shift
		for i := n / 2; i < n; i++ {
			out[i] = -3
		}
	}
	return out
}

// gunPointPrototype mimics the gun-draw vs point motion: both are bumps,
// the gun class holds a plateau at the top.
func gunPointPrototype(class, n int) []float64 {
	bump := timeseries.GaussianBump(n, float64(n)/2, float64(n)/8, 3)
	if class == 0 {
		return bump
	}
	plat := timeseries.Plateau(n, 2*n/5, 3*n/5, 1.2)
	return timeseries.Add(bump, plat)
}

// harmonicPrototype builds a smooth class prototype from a seeded sum of
// sinusoids plus one or two Gaussian bumps; distinct classes get distinct
// draws, which keeps between-class distances healthy.
func harmonicPrototype(class, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	waves := 2 + rng.Intn(3)
	for w := 0; w < waves; w++ {
		period := float64(n) / (1 + rng.Float64()*6)
		phase := rng.Float64() * 2 * math.Pi
		amp := 0.5 + rng.Float64()*1.5
		out = timeseries.Add(out, timeseries.SineWave(n, period, phase, amp))
	}
	bumps := 1 + rng.Intn(2)
	for b := 0; b < bumps; b++ {
		center := rng.Float64() * float64(n)
		width := float64(n) * (0.03 + rng.Float64()*0.1)
		height := (rng.Float64()*2 - 1) * 3
		out = timeseries.Add(out, timeseries.GaussianBump(n, center, width, height))
	}
	_ = class // class identity comes from the RNG draw order
	return out
}

// instance derives one dataset member from a class prototype: smooth time
// warping for within-class variation plus low-amplitude smoothed noise.
func instance(proto []float64, rng *rand.Rand) []float64 {
	warped := timeseries.Warp(rng, proto, 0.25)
	noise := timeseries.SmoothedRandomWalk(rng, len(proto), 0.05, 2)
	// Center the noise walk so it does not drift the instance.
	mu := stats.Mean(noise)
	for i := range noise {
		noise[i] -= mu
	}
	return timeseries.Add(warped, noise)
}

// ClassCounts returns how many series of each class the dataset holds;
// useful for sanity checks.
func ClassCounts(d timeseries.Dataset) map[int]int {
	out := make(map[int]int)
	for _, s := range d.Series {
		out[s.Label]++
	}
	return out
}

// SeparationReport summarises within- versus between-class Euclidean
// distances of a dataset: the generator is useful only if same-class series
// are closer than different-class ones on average.
type SeparationReport struct {
	WithinMean  float64
	BetweenMean float64
}

// Separation computes the report over (at most) the first limit series.
func Separation(d timeseries.Dataset, limit int) SeparationReport {
	n := len(d.Series)
	if limit > 0 && limit < n {
		n = limit
	}
	var within, between []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := d.Series[i], d.Series[j]
			if a.Len() != b.Len() {
				continue
			}
			var d2 float64
			for k := range a.Values {
				diff := a.Values[k] - b.Values[k]
				d2 += diff * diff
			}
			dist := math.Sqrt(d2)
			if a.Label == b.Label {
				within = append(within, dist)
			} else {
				between = append(between, dist)
			}
		}
	}
	return SeparationReport{WithinMean: stats.Mean(within), BetweenMean: stats.Mean(between)}
}

// SortSpecsByName returns the specs sorted alphabetically; the default
// order is the paper's.
func SortSpecsByName() []Spec {
	out := Specs()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
