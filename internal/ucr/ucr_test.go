package ucr

import (
	"testing"

	"uncertts/internal/stats"
)

func TestSpecsComplete(t *testing.T) {
	s := Specs()
	if len(s) != 17 {
		t.Fatalf("want 17 datasets, got %d", len(s))
	}
	seen := map[string]bool{}
	for _, spec := range s {
		if seen[spec.Name] {
			t.Errorf("duplicate dataset %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Classes < 2 {
			t.Errorf("%s: classes = %d", spec.Name, spec.Classes)
		}
		if spec.Series < spec.Classes {
			t.Errorf("%s: fewer series than classes", spec.Name)
		}
		if spec.Length < 32 {
			t.Errorf("%s: length = %d", spec.Name, spec.Length)
		}
	}
	// The paper reports on average about 502 series of length about 290;
	// our specs average to the same order of magnitude.
	var sumSeries, sumLen int
	for _, spec := range s {
		sumSeries += spec.Series
		sumLen += spec.Length
	}
	avgSeries := sumSeries / len(s)
	avgLen := sumLen / len(s)
	if avgSeries < 300 || avgSeries > 700 {
		t.Errorf("average cardinality %d too far from the paper's 502", avgSeries)
	}
	if avgLen < 200 || avgLen > 400 {
		t.Errorf("average length %d too far from the paper's 290", avgLen)
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("nope", Options{}); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := Options{MaxSeries: 12, Length: 64, Seed: 5}
	a, err := Generate("CBF", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("CBF", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Values {
			if a.Series[i].Values[j] != b.Series[i].Values[j] {
				t.Fatal("generation is not deterministic")
			}
		}
	}
	c, err := Generate("CBF", Options{MaxSeries: 12, Length: 64, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Series[0].Values[0] == a.Series[0].Values[0] &&
		c.Series[0].Values[1] == a.Series[0].Values[1] &&
		c.Series[0].Values[2] == a.Series[0].Values[2] {
		t.Error("different seeds should give different data")
	}
}

func TestGenerateShapes(t *testing.T) {
	ds, err := Generate("GunPoint", Options{MaxSeries: 20, Length: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 20 {
		t.Errorf("series count = %d", ds.Len())
	}
	for _, s := range ds.Series {
		if s.Len() != 80 {
			t.Errorf("series %d length = %d", s.ID, s.Len())
		}
		if !s.IsNormalized(1e-6) {
			t.Errorf("series %d not z-normalized: mean=%v sd=%v", s.ID, s.Mean(), s.StdDev())
		}
	}
	counts := ClassCounts(ds)
	if len(counts) != 2 {
		t.Errorf("GunPoint should have 2 classes, got %v", counts)
	}
}

func TestClassSeparation(t *testing.T) {
	// Same-class series must be closer than different-class series on
	// average — otherwise nearest-neighbour ground truth is meaningless.
	for _, name := range []string{"CBF", "syntheticControl", "GunPoint", "Trace", "Coffee"} {
		ds, err := Generate(name, Options{MaxSeries: 36, Length: 96, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rep := Separation(ds, 36)
		if !(rep.WithinMean < rep.BetweenMean) {
			t.Errorf("%s: within-class mean %v not below between-class mean %v",
				name, rep.WithinMean, rep.BetweenMean)
		}
	}
}

func TestValuesNotUniform(t *testing.T) {
	// Mirror of the paper's Section 4.1.1: chi-square must reject
	// uniformity of the value distribution at alpha = 0.01 for every
	// dataset.
	for _, ds := range GenerateAll(Options{MaxSeries: 30, Length: 128, Seed: 3}) {
		res, err := stats.ChiSquareUniformTest(ds.AllValues(), 20)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if !res.Reject(0.01) {
			t.Errorf("%s: uniformity not rejected (%v)", ds.Name, res)
		}
	}
}

func TestTemporalCorrelation(t *testing.T) {
	// The UMA/UEMA result hinges on neighbouring points being correlated.
	for _, name := range []string{"50words", "ECG200", "FaceFour"} {
		ds, err := Generate(name, Options{MaxSeries: 10, Length: 128, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range ds.Series[:3] {
			var num, den float64
			mu := s.Mean()
			for i := 0; i < s.Len()-1; i++ {
				num += (s.Values[i] - mu) * (s.Values[i+1] - mu)
			}
			for _, v := range s.Values {
				den += (v - mu) * (v - mu)
			}
			// ECG-style series have sharp QRS spikes and legitimately sit a
			// little lower than smooth shapes; 0.7 is still strongly
			// correlated (white noise sits near 0).
			if ac := num / den; ac < 0.7 {
				t.Errorf("%s series %d: lag-1 autocorrelation %v < 0.7", name, s.ID, ac)
			}
		}
	}
}

func TestGenerateAllRespectsCaps(t *testing.T) {
	all := GenerateAll(Options{MaxSeries: 8, Length: 50, Seed: 1})
	if len(all) != 17 {
		t.Fatalf("want 17 datasets, got %d", len(all))
	}
	for _, ds := range all {
		if ds.Len() != 8 {
			t.Errorf("%s: %d series, want 8", ds.Name, ds.Len())
		}
		if ds.AvgLength() != 50 {
			t.Errorf("%s: avg length %d, want 50", ds.Name, ds.AvgLength())
		}
	}
}

func TestFullSpecSizesWithoutCap(t *testing.T) {
	ds, err := Generate("Beef", Options{Seed: 1}) // small full spec: 60 x 470
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 60 || ds.AvgLength() != 470 {
		t.Errorf("Beef full size = %d x %d, want 60 x 470", ds.Len(), ds.AvgLength())
	}
}

func TestSortSpecsByName(t *testing.T) {
	sorted := SortSpecsByName()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Name >= sorted[i].Name {
			t.Fatal("not sorted")
		}
	}
	// The original order must be untouched.
	if Specs()[0].Name != "50words" {
		t.Error("Specs order mutated")
	}
}

func TestAllPrototypeFamiliesProduceDistinctClasses(t *testing.T) {
	for _, name := range []string{"CBF", "syntheticControl"} {
		ds, err := Generate(name, Options{MaxSeries: 12, Length: 60, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		counts := ClassCounts(ds)
		if len(counts) < 3 {
			t.Errorf("%s: expected at least 3 classes, got %v", name, counts)
		}
	}
}
