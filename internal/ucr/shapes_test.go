package ucr

import (
	"math"
	"testing"

	"uncertts/internal/stats"
)

func TestShapeFamilyRouting(t *testing.T) {
	withFamily := []string{"ECG200", "Coffee", "OliveOil", "Beef", "Adiac",
		"FISH", "OSULeaf", "SwedishLeaf", "FaceAll", "FaceFour",
		"Lighting2", "Lighting7", "Trace", "50words"}
	for _, name := range withFamily {
		if shapeFamily(name) == nil {
			t.Errorf("%s should have a dedicated shape family", name)
		}
	}
	for _, name := range []string{"CBF", "GunPoint", "syntheticControl", "unknown"} {
		if shapeFamily(name) != nil {
			t.Errorf("%s should not route through shapeFamily", name)
		}
	}
}

func TestShapePrototypesFiniteAndVaried(t *testing.T) {
	rng := stats.NewRand(5)
	for _, name := range []string{"ECG200", "Coffee", "Adiac", "Lighting2", "Trace", "50words"} {
		family := shapeFamily(name)
		for class := 0; class < 4; class++ {
			proto := family(class, 128, rng)
			if len(proto) != 128 {
				t.Fatalf("%s class %d: length %d", name, class, len(proto))
			}
			for i, v := range proto {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s class %d: bad value at %d: %v", name, class, i, v)
				}
			}
			if stats.Variance(proto) == 0 {
				t.Errorf("%s class %d: constant prototype", name, class)
			}
		}
	}
}

func TestECGClassesDiffer(t *testing.T) {
	// The ischemia-style class must have lower peak amplitude relative to
	// its own spread than the normal class (depressed R wave).
	rng := stats.NewRand(7)
	normal := ecgPrototype(0, 256, rng)
	rng2 := stats.NewRand(7)
	abnormal := ecgPrototype(1, 256, rng2)
	_, maxN := stats.MinMax(normal)
	_, maxA := stats.MinMax(abnormal)
	if maxA >= maxN {
		t.Errorf("abnormal R amplitude (%v) should be below normal (%v)", maxA, maxN)
	}
}

func TestSpectrumHasAbsorptionDips(t *testing.T) {
	rng := stats.NewRand(9)
	spec := spectrumPrototype(0, 256, rng)
	// The spectrum must dip below its own smooth baseline somewhere: check
	// that the minimum is well below the median.
	med := stats.Quantile(spec, 0.5)
	lo, _ := stats.MinMax(spec)
	if med-lo < 0.3 {
		t.Errorf("no visible absorption dip: median %v, min %v", med, lo)
	}
}

func TestContourIsPeriodicLike(t *testing.T) {
	// Contours describe closed shapes: first and last values should be
	// close (one full revolution).
	rng := stats.NewRand(11)
	c := contourPrototype(0, 256, rng)
	span := maxAbs(c)
	if math.Abs(c[0]-c[255]) > 0.25*span {
		t.Errorf("contour endpoints too far apart: %v vs %v (span %v)", c[0], c[255], span)
	}
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func TestTransientStartsQuiet(t *testing.T) {
	rng := stats.NewRand(13)
	tr := transientPrototype(0, 256, rng)
	if tr[0] != 0 {
		t.Errorf("transient should start at baseline, got %v", tr[0])
	}
	if maxAbs(tr) < 1 {
		t.Error("transient should contain a visible burst")
	}
}

func TestTraceClassShapes(t *testing.T) {
	rng := stats.NewRand(15)
	for class := 0; class < 4; class++ {
		p := tracePrototype(class, 200, rng)
		if p[0] != 0 {
			t.Errorf("class %d: should start at baseline", class)
		}
		if stats.Variance(p) == 0 {
			t.Errorf("class %d: no feature generated", class)
		}
	}
}

func TestSpecializedDatasetsStillSeparate(t *testing.T) {
	// The specialized families must preserve the within < between class
	// distance property the experiments rely on. 50words has 50 classes,
	// so it needs enough series for same-class pairs to exist at all.
	for _, c := range []struct {
		name   string
		series int
	}{
		{"ECG200", 24}, {"Lighting7", 24}, {"FaceFour", 24}, {"50words", 104},
	} {
		ds, err := Generate(c.name, Options{MaxSeries: c.series, Length: 96, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		rep := Separation(ds, c.series)
		if !(rep.WithinMean < rep.BetweenMean) {
			t.Errorf("%s: within %v not below between %v", c.name, rep.WithinMean, rep.BetweenMean)
		}
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if min(2, 3) != 2 || min(3, 2) != 2 || max(2, 3) != 3 || max(3, 2) != 3 {
		t.Error("min/max helpers broken")
	}
}
