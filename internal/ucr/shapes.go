package ucr

import (
	"math"
	"math/rand"

	"uncertts/internal/timeseries"
)

// This file holds the domain-specific prototype generators. Every UCR
// stand-in gets a shape family that mimics what the real dataset measures,
// so that within-class similarity, between-class contrast and the value
// distribution all resemble the originals:
//
//	ECG200                 — PQRST heartbeat complexes
//	Coffee, OliveOil, Beef — spectra: smooth baseline + absorption peaks
//	Adiac, FISH, OSULeaf,
//	SwedishLeaf, FaceAll,
//	FaceFour               — closed contours unrolled to 1-D (Fourier shape
//	                          descriptors with class-specific harmonics)
//	Lighting2, Lighting7   — transient bursts with exponential decay
//	Trace                  — step transients with class-dependent oscillation
//	50words                — word profiles: piecewise smooth strokes
//
// CBF, syntheticControl and GunPoint have their classic constructions in
// ucr.go.

// ecgPrototype builds a PQRST-like heartbeat: small P wave, sharp QRS
// complex, broad T wave, repeated over the series. Class differences mimic
// the normal-vs-ischemia split of ECG200: class 1 has a depressed, widened
// ST segment and lower R amplitude.
func ecgPrototype(class, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	beat := 40 + rng.Intn(12) // samples per heartbeat
	rAmp := 3.0
	tAmp := 0.8
	stShift := 0.0
	if class%2 == 1 {
		rAmp = 2.2
		tAmp = 0.45
		stShift = -0.35
	}
	for start := 0; start < n; start += beat {
		addWave := func(center, width, amp float64) {
			for i := max(0, int(center-4*width)); i < n && float64(i) < center+4*width; i++ {
				z := (float64(i) - center) / width
				out[i] += amp * math.Exp(-z*z/2)
			}
		}
		b := float64(start)
		w := float64(beat)
		addWave(b+0.15*w, 0.03*w, 0.4)   // P
		addWave(b+0.32*w, 0.012*w, -0.6) // Q
		addWave(b+0.36*w, 0.015*w, rAmp) // R
		addWave(b+0.40*w, 0.012*w, -0.9) // S
		addWave(b+0.62*w, 0.07*w, tAmp)  // T
		if stShift != 0 {
			for i := start + int(0.42*w); i < start+int(0.58*w) && i < n; i++ {
				out[i] += stShift
			}
		}
	}
	return out
}

// spectrumPrototype builds an absorption spectrum: a smooth decaying
// baseline with class-specific absorption peaks at seeded wavelengths —
// the shape family of Coffee (arabica/robusta), OliveOil and Beef
// spectrograms.
func spectrumPrototype(class, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	// Baseline: gentle polynomial decay.
	a := 0.5 + rng.Float64()
	b := rng.Float64() * 2
	for i := range out {
		x := float64(i) / float64(n)
		out[i] = a*(1-x)*(1-x) + b*(1-x)
	}
	// Class-specific absorption peaks.
	peaks := 3 + rng.Intn(4)
	for p := 0; p < peaks; p++ {
		center := rng.Float64() * float64(n)
		width := float64(n) * (0.01 + rng.Float64()*0.05)
		depth := 0.5 + rng.Float64()*2
		for i := range out {
			z := (float64(i) - center) / width
			out[i] -= depth * math.Exp(-z*z/2)
		}
	}
	_ = class
	return out
}

// contourPrototype builds a closed-contour descriptor unrolled to 1-D: a
// truncated Fourier series over one period with class-specific harmonic
// amplitudes and phases. This is how leaf outlines (SwedishLeaf, OSULeaf),
// diatoms (Adiac), fish (FISH) and head profiles (FaceAll, FaceFour) are
// classically encoded.
func contourPrototype(class, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	harmonics := 3 + rng.Intn(5)
	for h := 1; h <= harmonics; h++ {
		amp := (0.5 + rng.Float64()) / float64(h) // 1/f-ish spectrum
		phase := rng.Float64() * 2 * math.Pi
		for i := range out {
			theta := 2 * math.Pi * float64(i) / float64(n)
			out[i] += amp * math.Cos(float64(h)*theta+phase)
		}
	}
	// Lobes: leaves and diatoms have k-fold symmetry; pick k per class.
	k := 2 + rng.Intn(6)
	lobeAmp := 0.3 + rng.Float64()*0.7
	for i := range out {
		theta := 2 * math.Pi * float64(i) / float64(n)
		out[i] += lobeAmp * math.Abs(math.Sin(float64(k)*theta/2))
	}
	_ = class
	return out
}

// transientPrototype builds lightning-style transients (Lighting2/7): a
// quiet baseline, then one or more sharp onsets with exponential decay at
// class-specific positions and rates.
func transientPrototype(class, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	bursts := 1 + rng.Intn(3)
	for b := 0; b < bursts; b++ {
		onset := rng.Intn(n * 3 / 4)
		amp := 2 + rng.Float64()*3
		decay := 5 + rng.Float64()*20
		for i := onset; i < n; i++ {
			out[i] += amp * math.Exp(-float64(i-onset)/decay)
		}
		// Sub-oscillation riding on the decay.
		period := 4 + rng.Float64()*12
		for i := onset; i < n; i++ {
			out[i] += 0.3 * amp * math.Exp(-float64(i-onset)/decay) *
				math.Sin(2*math.Pi*float64(i-onset)/period)
		}
	}
	_ = class
	return out
}

// tracePrototype builds the Trace-style instrumentation transients: a flat
// run, a class-dependent feature (step, ramp or oscillation packet), then a
// return to baseline.
func tracePrototype(class, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	start := n/4 + rng.Intn(n/8)
	end := start + n/4
	if end > n {
		end = n
	}
	switch class % 4 {
	case 0: // step up
		for i := start; i < n; i++ {
			out[i] = 2
		}
	case 1: // ramp then drop
		for i := start; i < end; i++ {
			out[i] = 2 * float64(i-start) / float64(end-start)
		}
	case 2: // oscillation packet
		for i := start; i < end; i++ {
			out[i] = 1.5 * math.Sin(2*math.Pi*float64(i-start)/12)
		}
	default: // step with overshoot
		for i := start; i < n; i++ {
			out[i] = 2
		}
		for i := start; i < min(start+8, n); i++ {
			out[i] += 1.5 * math.Exp(-float64(i-start)/3)
		}
	}
	return out
}

// wordPrototype builds 50words-style word profiles: a few smooth strokes
// (Gaussian arcs) of varying width laid out left to right, one layout per
// class.
func wordPrototype(class, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	strokes := 2 + rng.Intn(4)
	pos := 0.1 + rng.Float64()*0.1
	for s := 0; s < strokes && pos < 0.95; s++ {
		width := 0.03 + rng.Float64()*0.12
		height := 0.8 + rng.Float64()*2.4
		if rng.Intn(3) == 0 {
			height = -height
		}
		center := pos * float64(n)
		w := width * float64(n)
		for i := range out {
			z := (float64(i) - center) / w
			out[i] += height * math.Exp(-z*z/2)
		}
		pos += width*2 + rng.Float64()*0.1
	}
	_ = class
	return out
}

// shapeFamily routes each dataset to its generator; datasets without a
// special family use the generic harmonic prototype.
func shapeFamily(name string) func(class, n int, rng *rand.Rand) []float64 {
	switch name {
	case "ECG200":
		return ecgPrototype
	case "Coffee", "OliveOil", "Beef":
		return spectrumPrototype
	case "Adiac", "FISH", "OSULeaf", "SwedishLeaf", "FaceAll", "FaceFour":
		return contourPrototype
	case "Lighting2", "Lighting7":
		return transientPrototype
	case "Trace":
		return tracePrototype
	case "50words":
		return wordPrototype
	default:
		return nil
	}
}

// smoothSeries applies light smoothing so prototype discontinuities (steps,
// burst onsets) keep realistic slew rates after sampling.
func smoothSeries(xs []float64) []float64 {
	return timeseries.MovingAverage(xs, 1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
