// Package arena provides contiguous columnar storage for fixed-stride
// float64 rows — the resident representation of series data and every
// per-series derived artifact (filtered vectors, envelopes, suffix
// energies).
//
// The motivation is the memory wall: a similarity scan is a streaming read
// over every candidate's vector, and when those vectors are individual heap
// allocations the scan chases pointers across the address space, defeating
// the hardware prefetcher and thrashing the TLB. An arena packs all rows
// back to back in one backing array, so a scan in row order is one long
// sequential read — the layout PIMDAL-style analytics engines identify as
// the difference between compute-bound and bandwidth-bound scans.
//
// Two types carry the package:
//
//   - Builder is the mutable, append-only accumulator a corpus writer owns.
//     Appending never disturbs previously returned row views: rows are only
//     ever written once, at the tail, and a reallocation (growth) leaves
//     old views pointing into the old backing array.
//   - Matrix is an immutable snapshot of a builder's rows. It is a plain
//     value (three words); copying it is free, and every row is addressed
//     by arithmetic (data[i*stride : i*stride+stride]) rather than through
//     a per-row slice header, so a hot loop touches no pointer array at
//     all.
//
// The copy-on-write contract with corpus snapshots: a snapshot captures
// Matrix() at publication; later Appends write only beyond the captured row
// count (possibly into spare capacity of the same backing array, which the
// capped Matrix can never observe), and Truncate only ever discards rows no
// Matrix has been captured over. Compact builds entirely new storage, so
// snapshots taken before a compaction keep reading the old arrays.
package arena

import "fmt"

// Matrix is an immutable, dense, row-major view of equal-stride rows in one
// contiguous backing array. The zero value is an empty matrix.
type Matrix struct {
	data   []float64
	stride int
	rows   int
}

// Rows returns the number of rows.
func (m Matrix) Rows() int { return m.rows }

// Stride returns the row width.
func (m Matrix) Stride() int { return m.stride }

// Row returns row i as a view into the backing array. The view's capacity
// is capped at its length, so appending to it can never overwrite a
// neighbouring row.
func (m Matrix) Row(i int) []float64 {
	off := i * m.stride
	return m.data[off : off+m.stride : off+m.stride]
}

// Data returns the backing array truncated to the matrix's rows — the bulk
// form serializers use to write all rows in one pass.
func (m Matrix) Data() []float64 { return m.data[: m.rows*m.stride : m.rows*m.stride] }

// Builder accumulates rows of a fixed stride in one growing backing array.
// It is not safe for concurrent use; corpus writers serialise on their own
// lock. The zero value is unusable — use NewBuilder.
type Builder struct {
	stride int
	data   []float64
}

// NewBuilder returns a builder for rows of the given stride with capacity
// preallocated for capRows rows (0 = no preallocation). stride must be
// positive.
func NewBuilder(stride, capRows int) *Builder {
	if stride <= 0 {
		panic(fmt.Sprintf("arena: stride %d must be positive", stride))
	}
	if capRows < 0 {
		capRows = 0
	}
	return &Builder{stride: stride, data: make([]float64, 0, stride*capRows)}
}

// Stride returns the row width.
func (b *Builder) Stride() int { return b.stride }

// Rows returns the number of appended rows.
func (b *Builder) Rows() int { return len(b.data) / b.stride }

// Grow reserves capacity for at least extra more rows, so a bulk load pays
// for one allocation instead of log-many growth steps.
func (b *Builder) Grow(extra int) {
	if extra <= 0 {
		return
	}
	need := len(b.data) + extra*b.stride
	if need <= cap(b.data) {
		return
	}
	grown := make([]float64, len(b.data), need)
	copy(grown, b.data)
	b.data = grown
}

// Append copies row into the arena and returns the resident view. row must
// have exactly the builder's stride.
func (b *Builder) Append(row []float64) []float64 {
	if len(row) != b.stride {
		panic(fmt.Sprintf("arena: appending a %d-wide row to a stride-%d arena", len(row), b.stride))
	}
	v := b.AppendZero()
	copy(v, row)
	return v
}

// AppendZero extends the arena by one zero row and returns its view, for
// callers that compute the row in place (filters, envelopes) without a
// temporary.
func (b *Builder) AppendZero() []float64 {
	off := len(b.data)
	if off+b.stride <= cap(b.data) {
		// Reuse spare capacity, clearing any bytes left by a Truncate.
		b.data = b.data[: off+b.stride : cap(b.data)]
		row := b.data[off : off+b.stride : off+b.stride]
		clear(row)
		return row
	}
	b.data = append(b.data, make([]float64, b.stride)...)
	return b.data[off : off+b.stride : off+b.stride]
}

// Truncate discards rows from the tail until exactly rows remain — the
// rollback a corpus writer needs when a mutation aborts after staging rows
// no snapshot has been captured over. Truncating below a published Matrix's
// row count corrupts the COW contract; callers must only truncate staged
// (unpublished) rows.
func (b *Builder) Truncate(rows int) {
	if rows < 0 || rows > b.Rows() {
		panic(fmt.Sprintf("arena: truncate to %d rows of %d", rows, b.Rows()))
	}
	b.data = b.data[: rows*b.stride : cap(b.data)]
}

// Matrix captures the builder's current rows as an immutable view. Later
// appends are invisible through it (the view is capped), and later
// compactions switch the builder to new storage without disturbing it.
func (b *Builder) Matrix() Matrix {
	return Matrix{data: b.data[:len(b.data):len(b.data)], stride: b.stride, rows: b.Rows()}
}

// Compact returns a new builder holding only the rows whose indices appear
// in keep, in keep order, in freshly allocated storage. The receiver is
// left untouched (snapshots over it stay valid); the caller adopts the
// returned builder as the live arena.
func (b *Builder) Compact(keep []int) *Builder {
	nb := NewBuilder(b.stride, len(keep))
	for _, i := range keep {
		if i < 0 || i >= b.Rows() {
			panic(fmt.Sprintf("arena: compact keeps row %d of %d", i, b.Rows()))
		}
		nb.data = append(nb.data, b.data[i*b.stride:(i+1)*b.stride]...)
	}
	return nb
}
