package arena

import (
	"testing"
)

func row(vals ...float64) []float64 { return vals }

func TestAppendAndRowViews(t *testing.T) {
	b := NewBuilder(3, 0)
	v0 := b.Append(row(1, 2, 3))
	v1 := b.Append(row(4, 5, 6))
	if b.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", b.Rows())
	}
	if v0[0] != 1 || v0[2] != 3 || v1[1] != 5 {
		t.Fatalf("views read back wrong: %v %v", v0, v1)
	}
	m := b.Matrix()
	if m.Rows() != 2 || m.Stride() != 3 {
		t.Fatalf("matrix %dx%d, want 2x3", m.Rows(), m.Stride())
	}
	for i := 0; i < 2; i++ {
		r := m.Row(i)
		for j := range r {
			if want := float64(i*3 + j + 1); r[j] != want {
				t.Fatalf("m.Row(%d)[%d] = %v, want %v", i, j, r[j], want)
			}
		}
	}
	if got := m.Data(); len(got) != 6 || got[0] != 1 || got[5] != 6 {
		t.Fatalf("Data() = %v", got)
	}
}

// A captured Matrix must never observe later appends, whether they land in
// spare capacity of the same backing array or force a reallocation.
func TestMatrixIsImmuneToLaterAppends(t *testing.T) {
	b := NewBuilder(2, 8) // room for in-place appends
	b.Append(row(1, 2))
	m := b.Matrix()
	v := b.Append(row(3, 4)) // fits in capacity: same backing array
	if m.Rows() != 1 {
		t.Fatalf("snapshot rows grew to %d", m.Rows())
	}
	r := m.Row(0)
	if r[0] != 1 || r[1] != 2 {
		t.Fatalf("snapshot row changed: %v", r)
	}
	// The snapshot's views are capped: appending through them cannot reach
	// the neighbouring row.
	grown := append(r, 99)
	_ = grown
	if v[0] != 3 {
		t.Fatalf("append through a capped view overwrote the next row: %v", v)
	}
	for i := 0; i < 100; i++ { // force several reallocations
		b.Append(row(float64(i), float64(-i)))
	}
	if r := m.Row(0); r[0] != 1 || r[1] != 2 {
		t.Fatalf("snapshot row changed after reallocation: %v", r)
	}
}

func TestTruncateRollsBackStagedRows(t *testing.T) {
	b := NewBuilder(2, 4)
	b.Append(row(1, 2))
	m := b.Matrix()
	b.Append(row(3, 4))
	b.Append(row(5, 6))
	b.Truncate(1)
	if b.Rows() != 1 {
		t.Fatalf("rows = %d after truncate, want 1", b.Rows())
	}
	// The staged bytes must not leak into a later append's zero row.
	z := b.AppendZero()
	for j, x := range z {
		if x != 0 {
			t.Fatalf("AppendZero()[%d] = %v after truncate, want 0", j, x)
		}
	}
	if r := m.Row(0); r[0] != 1 || r[1] != 2 {
		t.Fatalf("published row disturbed by truncate cycle: %v", r)
	}
}

func TestCompactLeavesOldStorageIntact(t *testing.T) {
	b := NewBuilder(2, 0)
	for i := 0; i < 5; i++ {
		b.Append(row(float64(i), float64(10*i)))
	}
	old := b.Matrix()
	nb := b.Compact([]int{0, 2, 4})
	if nb.Rows() != 3 {
		t.Fatalf("compacted rows = %d, want 3", nb.Rows())
	}
	nm := nb.Matrix()
	for k, src := range []int{0, 2, 4} {
		if got, want := nm.Row(k)[0], float64(src); got != want {
			t.Fatalf("compacted row %d starts with %v, want %v", k, got, want)
		}
	}
	// Writing through the new builder can never reach the old matrix.
	nm.Row(0)[0] = -1
	if old.Row(0)[0] != 0 {
		t.Fatalf("compaction aliases old storage")
	}
	for i := 0; i < 5; i++ {
		if got := old.Row(i)[1]; got != float64(10*i) {
			t.Fatalf("old matrix row %d = %v after compact", i, got)
		}
	}
}

func TestGrowPreservesRowsAndAvoidsRealloc(t *testing.T) {
	b := NewBuilder(4, 0)
	b.Append(row(1, 2, 3, 4))
	b.Grow(1000)
	if b.Rows() != 1 || b.Matrix().Row(0)[3] != 4 {
		t.Fatalf("grow disturbed existing rows")
	}
	v := b.Matrix().Row(0)
	for i := 0; i < 1000; i++ {
		b.Append(row(5, 6, 7, 8))
	}
	if v[0] != 1 {
		t.Fatalf("row view invalidated by appends within reserved capacity")
	}
}
