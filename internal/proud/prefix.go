package proud

import (
	"math"

	"uncertts/internal/stats"
)

// Batch-side prefix bounds: the same sound early-decision machinery as
// Stream.earlyDecision, extended for the case where the whole candidate
// series is resident. A batch scanner accumulates the distance moments
// timestamp by timestamp (in exactly Distance's order, so a completed scan
// is bit-identical to the full computation) and periodically asks whether
// the predicate outcome is already forced. The stream variant can only
// bound the eventual moments from below (every unseen timestamp adds at
// least varD to the mean); with the data resident the scanner can also
// bound the unseen observation gap from above — via precomputed suffix
// energies and (q_j - c_j)^2 <= 2 q_j^2 + 2 c_j^2 — which unlocks certain
// accepts and, for epsLimit < 0 (tau < 1/2, PROUD's calibrated regime),
// certain rejects that the stream bound cannot reach.

// SuffixEnergy precomputes, for one observation vector, the tail sums of
// squared values: out[t] = sum_{j >= t} obs[j]^2, with out[len(obs)] = 0.
// The sum of two series' suffix energies at t, doubled, upper-bounds the
// unseen squared-gap energy sum_{j >= t} (q_j - c_j)^2.
func SuffixEnergy(obs []float64) []float64 {
	out := make([]float64, len(obs)+1)
	SuffixEnergyInto(out, obs)
	return out
}

// SuffixEnergyInto computes SuffixEnergy into dst, which must have length
// len(obs)+1 — the allocation-free form arena-backed corpora use (suffix
// arenas have stride length+1).
func SuffixEnergyInto(dst, obs []float64) {
	dst[len(obs)] = 0
	for t := len(obs) - 1; t >= 0; t-- {
		dst[t] = dst[t+1] + obs[t]*obs[t]
	}
}

// momentBounds returns conservative bounds on the eventual distance moments
// given the prefix accumulation, the number of unseen timestamps, the
// per-timestamp error variance sum varD, and an upper bound maxGapEnergy on
// the unseen squared-gap energy (+Inf when unknown). The bounds are widened
// by a relative slack so that floating-point drift between this closed-form
// arithmetic and the term-by-term accumulation of the full scan can never
// flip a "certain" decision away from what the completed scan would return.
func momentBounds(mean, variance float64, remaining int, varD, maxGapEnergy float64) (loMean, hiMean, loVar, hiVar float64) {
	rem := float64(remaining)
	loMean = mean + rem*varD
	loVar = variance + rem*2*varD*varD
	hiMean = loMean + maxGapEnergy
	hiVar = loVar + 4*varD*maxGapEnergy
	const rel = 1e-12
	loMean -= rel * math.Abs(loMean)
	hiMean += rel * math.Abs(hiMean)
	loVar -= rel * loVar
	if loVar < 0 {
		loVar = 0
	}
	hiVar += rel * hiVar
	return loMean, hiMean, loVar, hiVar
}

// PrefixDecide returns the certain outcome of the PROUD acceptance test
// (EpsNorm(eps) >= epsLimit) given only a prefix of the accumulation, or
// Undecided when unseen data could still swing it. mean and variance are
// the moments accumulated so far (Distance's order), remaining the count of
// unseen timestamps, varD the per-timestamp error variance sum, and
// maxGapEnergy an upper bound on sum_{unseen} (q_j - c_j)^2 — pass +Inf to
// recover exactly the stream's weaker bound (no certain accepts, and no
// certain rejects when epsLimit < 0).
//
// Soundness: the eventual mean lies in [loMean, hiMean] and the eventual
// variance in [loVar, hiVar]. The acceptance test eps^2 - E >= epsLimit*sd
// is monotone in each: reject is certain when even the friendliest
// completion (smallest E; smallest sd for epsLimit >= 0, largest sd for
// epsLimit < 0) fails, accept when even the harshest completion passes.
func PrefixDecide(mean, variance float64, remaining int, varD, maxGapEnergy, eps, epsLimit float64) Decision {
	loMean, hiMean, loVar, hiVar := momentBounds(mean, variance, remaining, varD, maxGapEnergy)
	eps2 := eps * eps
	if epsLimit >= 0 {
		if eps2-loMean < epsLimit*math.Sqrt(loVar) {
			return Reject
		}
		if eps2-hiMean >= epsLimit*math.Sqrt(hiVar) {
			return Accept
		}
		return Undecided
	}
	if eps2-loMean < epsLimit*math.Sqrt(hiVar) {
		return Reject
	}
	if eps2-hiMean >= epsLimit*math.Sqrt(loVar) {
		return Accept
	}
	return Undecided
}

// ProbWithinUpper returns an upper bound on the eventual Pr(dist^2 <=
// eps^2) from a prefix of the accumulation — the top-k pruning companion of
// PrefixDecide: a candidate whose bound falls below the k-th best match
// probability found so far cannot enter the answer. The bound maximises
// EpsNorm = (eps^2 - E)/sd over the feasible moment box (treating E and sd
// as independent, which only loosens it) and pushes the result through the
// normal CDF.
func ProbWithinUpper(mean, variance float64, remaining int, varD, maxGapEnergy, eps float64) float64 {
	loMean, _, loVar, hiVar := momentBounds(mean, variance, remaining, varD, maxGapEnergy)
	eps2 := eps * eps
	num := eps2 - loMean // largest feasible numerator
	var en float64
	switch {
	case num >= 0:
		sd := math.Sqrt(loVar)
		if sd == 0 {
			return 1 // point mass at or below eps^2 is feasible
		}
		en = num / sd
	default:
		sd := math.Sqrt(hiVar)
		if sd == 0 {
			return 0 // point mass certainly above eps^2
		}
		en = num / sd
	}
	return stats.NormalCDF(en)
}
