package proud

import (
	"math"
	"testing"

	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestDistanceMomentsCertainSeries(t *testing.T) {
	// With zero sigmas, the "distribution" degenerates to the exact squared
	// Euclidean distance with zero variance.
	q := []float64{0, 0, 0}
	c := []float64{1, 2, 2}
	d, err := Distance(q, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.Mean, 9, 1e-12) {
		t.Errorf("mean = %v, want 9", d.Mean)
	}
	if d.Variance != 0 {
		t.Errorf("variance = %v, want 0", d.Variance)
	}
}

func TestDistanceMomentsAgainstSimulation(t *testing.T) {
	// Monte Carlo check of E[dist^2] and Var[dist^2] under Gaussian errors.
	rng := stats.NewRand(7)
	qTrue := []float64{0.5, -1, 2, 0}
	cTrue := []float64{0, 0, 1.5, 1}
	qSigma, cSigma := 0.3, 0.5
	const trials = 300000
	var sum, sumSq float64
	for tr := 0; tr < trials; tr++ {
		var d2 float64
		for i := range qTrue {
			x := qTrue[i] + rng.NormFloat64()*qSigma
			y := cTrue[i] + rng.NormFloat64()*cSigma
			d := x - y
			d2 += d * d
		}
		sum += d2
		sumSq += d2 * d2
	}
	simMean := sum / trials
	simVar := sumSq/trials - simMean*simMean
	d, err := Distance(qTrue, cTrue, qSigma, cSigma)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.Mean, simMean, 0.02*simMean) {
		t.Errorf("analytic mean %v vs simulated %v", d.Mean, simMean)
	}
	if !almostEqual(d.Variance, simVar, 0.05*simVar) {
		t.Errorf("analytic variance %v vs simulated %v", d.Variance, simVar)
	}
}

func TestDistanceErrors(t *testing.T) {
	if _, err := Distance([]float64{1}, []float64{1, 2}, 1, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Distance([]float64{1}, []float64{1}, -1, 1); err == nil {
		t.Error("negative sigma should error")
	}
}

func TestDistancePDFMatchesConstantSigma(t *testing.T) {
	// When every timestamp has the same error stddev, DistancePDF and
	// Distance agree.
	qObs := []float64{1, 2, 3}
	cObs := []float64{2, 2, 1}
	mk := func(obs []float64, sigma float64, id int) uncertain.PDFSeries {
		errs := make([]stats.Dist, len(obs))
		for i := range errs {
			errs[i] = stats.NewNormal(0, sigma)
		}
		return uncertain.PDFSeries{Observations: obs, Errors: errs, ID: id}
	}
	q := mk(qObs, 0.4, 0)
	c := mk(cObs, 0.6, 1)
	viaPDF, err := DistancePDF(q, c)
	if err != nil {
		t.Fatal(err)
	}
	viaConst, err := Distance(qObs, cObs, 0.4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(viaPDF.Mean, viaConst.Mean, 1e-12) || !almostEqual(viaPDF.Variance, viaConst.Variance, 1e-12) {
		t.Errorf("PDF (%+v) and constant-sigma (%+v) paths disagree", viaPDF, viaConst)
	}
}

func TestDistancePDFValidation(t *testing.T) {
	good := uncertain.PDFSeries{
		Observations: []float64{1},
		Errors:       []stats.Dist{stats.NewNormal(0, 1)},
	}
	if _, err := DistancePDF(good, uncertain.PDFSeries{}); err == nil {
		t.Error("invalid candidate should error")
	}
	longer := uncertain.PDFSeries{
		Observations: []float64{1, 2},
		Errors:       []stats.Dist{stats.NewNormal(0, 1), stats.NewNormal(0, 1)},
	}
	if _, err := DistancePDF(good, longer); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestEpsLimit(t *testing.T) {
	// tau = 0.5 gives limit 0; higher tau gives positive limits.
	l, err := EpsLimit(0.5)
	if err != nil || !almostEqual(l, 0, 1e-12) {
		t.Errorf("EpsLimit(0.5) = %v, %v", l, err)
	}
	l95, err := EpsLimit(0.95)
	if err != nil || !almostEqual(l95, 1.6448536269514722, 1e-9) {
		t.Errorf("EpsLimit(0.95) = %v, %v", l95, err)
	}
	if _, err := EpsLimit(0); err == nil {
		t.Error("tau=0 should error")
	}
	if _, err := EpsLimit(1); err == nil {
		t.Error("tau=1 should error")
	}
}

func TestProbWithinMatchesNormalCDF(t *testing.T) {
	d := DistanceDist{Mean: 10, Variance: 4}
	// eps^2 = 12 -> z = (12-10)/2 = 1.
	got := d.ProbWithin(math.Sqrt(12))
	want := stats.NormalCDF(1)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("ProbWithin = %v, want %v", got, want)
	}
}

func TestProbWithinDegenerate(t *testing.T) {
	d := DistanceDist{Mean: 9, Variance: 0}
	if d.ProbWithin(3) != 1 { // eps^2 = 9 >= 9
		t.Error("certain distance exactly at eps should have probability 1")
	}
	if d.ProbWithin(2.9) != 0 {
		t.Error("certain distance above eps should have probability 0")
	}
	if !math.IsInf(d.EpsNorm(3), 1) || !math.IsInf(d.EpsNorm(2), -1) {
		t.Error("EpsNorm of a certain distance should be signed infinity")
	}
}

func TestNormalHelper(t *testing.T) {
	n := DistanceDist{Mean: 5, Variance: 4}.Normal()
	if !almostEqual(n.Mu, 5, 1e-12) || !almostEqual(n.Sigma, 2, 1e-12) {
		t.Errorf("Normal() = %+v", n)
	}
	degenerate := DistanceDist{Mean: 5, Variance: 0}.Normal()
	if degenerate.Sigma <= 0 {
		t.Error("degenerate Normal() must still have positive sigma")
	}
}

func TestMatcherAcceptanceMonotoneInTau(t *testing.T) {
	// Raising tau makes the test stricter: acceptance can only shrink.
	q := []float64{0, 0, 0, 0}
	c := []float64{0.5, 0.5, 0.5, 0.5}
	accepted := func(tau float64) bool {
		m := Matcher{Eps: 1.1, Tau: tau, QuerySigma: 0.3, CandSigma: 0.3}
		ok, err := m.Matches(q, c)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	prev := true
	for _, tau := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.999} {
		cur := accepted(tau)
		if cur && !prev {
			t.Errorf("acceptance at tau=%v after rejection at lower tau", tau)
		}
		prev = cur
	}
}

func TestMatcherRangeQuerySeparatesNearFromFar(t *testing.T) {
	mk := func(id int, v float64, n int) uncertain.PDFSeries {
		obs := make([]float64, n)
		errs := make([]stats.Dist, n)
		for i := range obs {
			obs[i] = v
			errs[i] = stats.NewNormal(0, 0.2)
		}
		return uncertain.PDFSeries{Observations: obs, Errors: errs, ID: id}
	}
	q := mk(0, 0, 16)
	near := mk(1, 0.1, 16)
	far := mk(2, 3, 16)
	m := Matcher{Eps: 2, Tau: 0.5, QuerySigma: 0.2, CandSigma: 0.2}
	got, err := m.RangeQuery(q, []uncertain.PDFSeries{near, far})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("range query = %v, want [1]", got)
	}
}

func TestMatcherErrorPropagation(t *testing.T) {
	q := uncertain.PDFSeries{Observations: []float64{1}, Errors: []stats.Dist{stats.NewNormal(0, 1)}}
	bad := uncertain.PDFSeries{Observations: []float64{1, 2}, Errors: []stats.Dist{stats.NewNormal(0, 1), stats.NewNormal(0, 1)}, ID: 3}
	m := Matcher{Eps: 1, Tau: 0.5}
	if _, err := m.RangeQuery(q, []uncertain.PDFSeries{bad}); err == nil {
		t.Error("length mismatch in candidate should error")
	}
	if _, err := m.RangeQuery(uncertain.PDFSeries{}, nil); err == nil {
		t.Error("invalid query should error")
	}
	badTau := Matcher{Eps: 1, Tau: 2}
	if _, err := badTau.Matches([]float64{1}, []float64{1}); err == nil {
		t.Error("invalid tau should error")
	}
}

func TestSynopsisMatcherAgreesOnSmoothData(t *testing.T) {
	// With all coefficients retained, the synopsis matcher must agree with
	// the raw matcher on power-of-two lengths (Parseval).
	n := 32
	q := make([]float64, n)
	c := make([]float64, n)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 16)
		c[i] = math.Sin(2*math.Pi*float64(i)/16 + 0.2)
	}
	base := Matcher{Eps: 1.5, Tau: 0.5, QuerySigma: 0.3, CandSigma: 0.3}
	full := SynopsisMatcher{Matcher: base, Coeffs: n}
	rawOK, err := base.Matches(q, c)
	if err != nil {
		t.Fatal(err)
	}
	synOK, err := full.Matches(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if rawOK != synOK {
		t.Errorf("full synopsis (%v) disagrees with raw (%v)", synOK, rawOK)
	}
}

func TestSynopsisMatcherSmallK(t *testing.T) {
	n := 64
	q := make([]float64, n)
	c := make([]float64, n)
	for i := range q {
		q[i] = math.Sin(2 * math.Pi * float64(i) / 32)
		c[i] = q[i] + 0.01
	}
	m := SynopsisMatcher{Matcher: Matcher{Eps: 1, Tau: 0.5, QuerySigma: 0.1, CandSigma: 0.1}, Coeffs: 8}
	ok, err := m.Matches(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("nearly identical smooth series should match under a synopsis")
	}
	if _, err := m.Matches(q, c[:10]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestTopKIndices(t *testing.T) {
	xs := []float64{0.1, -5, 2, 0, 3}
	idx := topKIndices(xs, 2)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 4 {
		t.Errorf("topKIndices = %v, want [1 4]", idx)
	}
	all := topKIndices(xs, 0)
	if len(all) != len(xs) {
		t.Errorf("k<=0 should keep everything, got %d", len(all))
	}
	over := topKIndices(xs, 99)
	if len(over) != len(xs) {
		t.Errorf("k>len should clamp, got %d", len(over))
	}
}
