package proud

import (
	"math"
	"testing"

	"uncertts/internal/stats"
)

// prefixPair builds two observation vectors with a controllable gap level.
func prefixPair(rng interface{ NormFloat64() float64 }, n int, gap float64) (q, c []float64) {
	q = make([]float64, n)
	c = make([]float64, n)
	for i := 0; i < n; i++ {
		q[i] = rng.NormFloat64()
		c[i] = q[i] + gap*rng.NormFloat64()
	}
	return q, c
}

// accumulate replays Distance's accumulation over the first t timestamps.
func accumulate(q, c []float64, varD float64, t int) (mean, variance float64) {
	for i := 0; i < t; i++ {
		mu := q[i] - c[i]
		mean += mu*mu + varD
		variance += 2*varD*varD + 4*varD*mu*mu
	}
	return mean, variance
}

// TestPrefixDecideAgreesWithFullDecision: whenever PrefixDecide claims a
// certain outcome at any prefix, it must equal the decision of the
// completed accumulation — across gap levels, eps, and both epsLimit
// signs.
func TestPrefixDecideAgreesWithFullDecision(t *testing.T) {
	rng := stats.NewRand(11)
	const n = 64
	sigma := 0.4
	varD := sigma*sigma + sigma*sigma
	for _, gap := range []float64{0, 0.3, 1.5, 6} {
		for trial := 0; trial < 20; trial++ {
			q, c := prefixPair(rng, n, gap)
			sufQ, sufC := SuffixEnergy(q), SuffixEnergy(c)
			for _, tau := range []float64{0.05, 0.5, 0.95} {
				limit, err := EpsLimit(tau)
				if err != nil {
					t.Fatal(err)
				}
				for _, eps := range []float64{0.5, 3, 8, 20} {
					fullMean, fullVar := accumulate(q, c, varD, n)
					full := DistanceDist{Mean: fullMean, Variance: fullVar}
					want := Reject
					if full.EpsNorm(eps) >= limit {
						want = Accept
					}
					decidedAt := -1
					for pre := 1; pre < n; pre++ {
						mean, variance := accumulate(q, c, varD, pre)
						gapBound := 2 * (sufQ[pre] + sufC[pre])
						got := PrefixDecide(mean, variance, n-pre, varD, gapBound, eps, limit)
						if got == Undecided {
							continue
						}
						if got != want {
							t.Fatalf("gap=%g tau=%g eps=%g prefix=%d: PrefixDecide = %v, full decision = %v",
								gap, tau, eps, pre, got, want)
						}
						if decidedAt < 0 {
							decidedAt = pre
						}
					}
					_ = decidedAt
				}
			}
		}
	}
}

// TestPrefixDecideUnboundedGapMatchesStream: with maxGapEnergy = +Inf the
// decision must degrade to exactly the stream's weaker bound — no certain
// accepts ever, and no certain rejects when epsLimit < 0.
func TestPrefixDecideUnboundedGapMatchesStream(t *testing.T) {
	rng := stats.NewRand(13)
	const n = 32
	sigma := 0.5
	varD := sigma*sigma + sigma*sigma
	q, c := prefixPair(rng, n, 2)
	for _, tau := range []float64{0.1, 0.7} {
		limit, err := EpsLimit(tau)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{1, 5, 15} {
			s, err := NewStream(eps, tau, n, sigma, sigma)
			if err != nil {
				t.Fatal(err)
			}
			for pre := 1; pre < n; pre++ {
				if err := s.Push(q[pre-1], c[pre-1]); err != nil {
					t.Fatal(err)
				}
				mean, variance := accumulate(q, c, varD, pre)
				got := PrefixDecide(mean, variance, n-pre, varD, math.Inf(1), eps, limit)
				if want := s.Decide(); got != want {
					t.Fatalf("tau=%g eps=%g prefix=%d: PrefixDecide(inf gap) = %v, stream = %v",
						tau, eps, pre, got, want)
				}
				if got == Accept {
					t.Fatalf("certain accept with unbounded gap energy at prefix %d", pre)
				}
				if limit < 0 && got == Reject {
					t.Fatalf("certain reject with unbounded gap energy and epsLimit < 0 at prefix %d", pre)
				}
			}
		}
	}
}

// TestProbWithinUpperBoundsExactProbability: the prefix probability bound
// must dominate the completed ProbWithin at every prefix.
func TestProbWithinUpperBoundsExactProbability(t *testing.T) {
	rng := stats.NewRand(17)
	const n = 48
	sigma := 0.3
	varD := sigma*sigma + sigma*sigma
	for _, gap := range []float64{0, 0.5, 3} {
		for trial := 0; trial < 20; trial++ {
			q, c := prefixPair(rng, n, gap)
			sufQ, sufC := SuffixEnergy(q), SuffixEnergy(c)
			for _, eps := range []float64{1, 4, 10} {
				fullMean, fullVar := accumulate(q, c, varD, n)
				exact := DistanceDist{Mean: fullMean, Variance: fullVar}.ProbWithin(eps)
				for pre := 1; pre <= n; pre++ {
					mean, variance := accumulate(q, c, varD, pre)
					gapBound := 2 * (sufQ[pre] + sufC[pre])
					up := ProbWithinUpper(mean, variance, n-pre, varD, gapBound, eps)
					if up < exact-1e-12 {
						t.Fatalf("gap=%g eps=%g prefix=%d: upper bound %v below exact probability %v",
							gap, eps, pre, up, exact)
					}
				}
			}
		}
	}
}

func TestSuffixEnergy(t *testing.T) {
	obs := []float64{1, -2, 3}
	suf := SuffixEnergy(obs)
	want := []float64{14, 13, 9, 0}
	if len(suf) != len(want) {
		t.Fatalf("len = %d, want %d", len(suf), len(want))
	}
	for i := range want {
		if suf[i] != want[i] {
			t.Errorf("suf[%d] = %v, want %v", i, suf[i], want[i])
		}
	}
}
