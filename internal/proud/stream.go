package proud

import (
	"errors"
	"fmt"
	"math"
)

// Stream evaluates the PROUD acceptance test incrementally, the way the
// original system consumed streaming time series: per-timestamp
// observations arrive one at a time, the distance moments accumulate, and
// the predicate can be decided — sometimes early — without buffering the
// whole series.
//
// Early termination is sound, not heuristic: every future timestamp
// contributes at least varD = qSigma^2 + cSigma^2 to E[dist^2] and a
// non-negative amount to Var[dist^2]. For tau >= 0.5 (eps_limit >= 0) this
// yields a certain-reject test before the stream ends; a certain-accept
// requires an upper bound on the remaining observation gap, which the
// caller can supply if the data is bounded.
type Stream struct {
	eps      float64
	tau      float64
	epsLimit float64
	total    int // expected stream length
	varD     float64

	seen     int
	mean     float64
	variance float64
}

// NewStream returns a streaming PROUD evaluator for a query/candidate pair
// of the given length, with the constant error standard deviations PROUD is
// told for the two sides.
func NewStream(eps, tau float64, length int, qSigma, cSigma float64) (*Stream, error) {
	if length <= 0 {
		return nil, fmt.Errorf("proud: stream length %d must be positive", length)
	}
	if qSigma < 0 || cSigma < 0 {
		return nil, fmt.Errorf("proud: negative sigma (query %v, candidate %v)", qSigma, cSigma)
	}
	limit, err := EpsLimit(tau)
	if err != nil {
		return nil, err
	}
	return &Stream{
		eps:      eps,
		tau:      tau,
		epsLimit: limit,
		total:    length,
		varD:     qSigma*qSigma + cSigma*cSigma,
	}, nil
}

// ErrStreamComplete is returned by Push after the declared length has been
// consumed.
var ErrStreamComplete = errors.New("proud: stream already complete")

// Push consumes the next pair of observations.
func (s *Stream) Push(qObs, cObs float64) error {
	if s.seen >= s.total {
		return ErrStreamComplete
	}
	mu := qObs - cObs
	s.mean += mu*mu + s.varD
	s.variance += 2*s.varD*s.varD + 4*s.varD*mu*mu
	s.seen++
	return nil
}

// Seen reports how many timestamps have been consumed.
func (s *Stream) Seen() int { return s.seen }

// Complete reports whether the whole stream has been consumed.
func (s *Stream) Complete() bool { return s.seen >= s.total }

// Decision is the tri-state outcome of a streaming predicate check.
type Decision int

const (
	// Undecided: the outcome still depends on unseen data.
	Undecided Decision = iota
	// Accept: the pair satisfies the probabilistic range predicate.
	Accept
	// Reject: the pair fails the predicate.
	Reject
)

func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	case Undecided:
		return "undecided"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Decide returns the final decision once the stream is complete, or an
// early certain decision if one is already forced. With data still pending
// and no forced outcome it returns Undecided.
func (s *Stream) Decide() Decision {
	if s.Complete() {
		d := DistanceDist{Mean: s.mean, Variance: s.variance}
		if d.EpsNorm(s.eps) >= s.epsLimit {
			return Accept
		}
		return Reject
	}
	return s.earlyDecision()
}

// earlyDecision applies the sound bounds for incomplete streams.
func (s *Stream) earlyDecision() Decision {
	remaining := float64(s.total - s.seen)
	// Every remaining timestamp adds at least varD to the mean and at
	// least 2 varD^2 to the variance.
	minMean := s.mean + remaining*s.varD
	minVar := s.variance + remaining*2*s.varD*s.varD

	if s.epsLimit >= 0 {
		// Accept requires eps^2 - E >= epsLimit * sd with both sides'
		// eventual values unknown, but E only grows and sd only grows.
		// If already eps^2 - minMean < epsLimit * sqrt(minVar), the left
		// side can only shrink further and the right side only grow, so
		// reject is certain.
		if s.eps*s.eps-minMean < s.epsLimit*math.Sqrt(minVar) {
			return Reject
		}
		return Undecided
	}
	// For epsLimit < 0 the right side is negative and grows in magnitude
	// with sd, so no certain decision is available without a bound on the
	// remaining per-timestamp gaps.
	return Undecided
}

// RunStream pushes two full observation vectors through a fresh stream and
// returns the decision, the number of timestamps consumed before the
// decision became certain, and any error. It is the batch convenience and
// the reference for the early-stopping tests.
func RunStream(qObs, cObs []float64, eps, tau, qSigma, cSigma float64) (Decision, int, error) {
	if len(qObs) != len(cObs) {
		return Undecided, 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(qObs), len(cObs))
	}
	s, err := NewStream(eps, tau, len(qObs), qSigma, cSigma)
	if err != nil {
		return Undecided, 0, err
	}
	for i := range qObs {
		if err := s.Push(qObs[i], cObs[i]); err != nil {
			return Undecided, 0, err
		}
		if d := s.Decide(); d != Undecided {
			return d, s.Seen(), nil
		}
	}
	return s.Decide(), s.Seen(), nil
}
