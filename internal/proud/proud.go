// Package proud implements the PROUD probabilistic similarity matcher of
// Yeh et al. (EDBT 2009), as described in Section 2.2 of the paper.
//
// PROUD models each timestamp as a random variable and exploits the central
// limit theorem: the squared Euclidean distance between two uncertain series
// is a sum of many independent terms D_i^2, so it is approximately normal
// with mean Sum E[D_i^2] and variance Sum Var[D_i^2] (Equation 7). A
// probabilistic range query PRQ(Q, C, eps, tau) then reduces to one
// standard-normal quantile lookup (Equations 8-11):
//
//	accept Y  iff  eps_norm(X, Y) >= eps_limit,  where
//	eps_limit = Phi^-1(tau)
//	eps_norm  = (eps^2 - E[dist2]) / sqrt(Var[dist2])
//
// PROUD needs only the first two moments of the per-timestamp error — in
// the paper's setting a single constant error standard deviation — which is
// why it cannot exploit per-timestamp error variation (Figures 8-10).
package proud

import (
	"errors"
	"fmt"
	"math"

	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
	"uncertts/internal/wavelet"
)

// ErrLengthMismatch is returned when query and candidate lengths differ.
var ErrLengthMismatch = errors.New("proud: series lengths differ")

// DistanceDist holds the normal approximation of the squared Euclidean
// distance between two uncertain series.
type DistanceDist struct {
	// Mean is E[distance^2].
	Mean float64
	// Variance is Var[distance^2].
	Variance float64
}

// Normal returns the approximating normal distribution. A zero variance
// (two certain series) degenerates to a point mass, represented by a
// near-zero sigma.
func (d DistanceDist) Normal() stats.Normal {
	sigma := math.Sqrt(d.Variance)
	if sigma <= 0 {
		sigma = 1e-12
	}
	return stats.NewNormal(d.Mean, sigma)
}

// Distance computes the normal approximation of the squared distance
// between two series of observations, given the error standard deviation
// the technique was told for each side. Following PROUD's own Gaussian
// treatment of D_i, the variance of D_i^2 uses the normal fourth-moment
// identity Var[D^2] = 2 s^4 + 4 s^2 mu^2 with mu = E[D_i], s^2 = Var[D_i].
func Distance(qObs, cObs []float64, qSigma, cSigma float64) (DistanceDist, error) {
	if len(qObs) != len(cObs) {
		return DistanceDist{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(qObs), len(cObs))
	}
	if qSigma < 0 || cSigma < 0 {
		return DistanceDist{}, fmt.Errorf("proud: negative sigma (query %v, candidate %v)", qSigma, cSigma)
	}
	varD := qSigma*qSigma + cSigma*cSigma
	var mean, variance float64
	for i := range qObs {
		mu := qObs[i] - cObs[i]
		mean += mu*mu + varD
		variance += 2*varD*varD + 4*varD*mu*mu
	}
	return DistanceDist{Mean: mean, Variance: variance}, nil
}

// DistancePDF computes the normal approximation from full PDF-model series,
// reading the per-timestamp variances from the attached error
// distributions. This is what PROUD *would* do with perfect per-timestamp
// knowledge; the paper's PROUD uses a single constant sigma (see Matcher).
func DistancePDF(q, c uncertain.PDFSeries) (DistanceDist, error) {
	if err := q.Validate(); err != nil {
		return DistanceDist{}, err
	}
	if err := c.Validate(); err != nil {
		return DistanceDist{}, err
	}
	if q.Len() != c.Len() {
		return DistanceDist{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, q.Len(), c.Len())
	}
	var mean, variance float64
	for i := 0; i < q.Len(); i++ {
		mu := q.Observations[i] - c.Observations[i]
		varD := q.Errors[i].Variance() + c.Errors[i].Variance()
		mean += mu*mu + varD
		variance += 2*varD*varD + 4*varD*mu*mu
	}
	return DistanceDist{Mean: mean, Variance: variance}, nil
}

// EpsLimit returns Phi^-1(tau), the normalised acceptance threshold of
// Equation 8.
func EpsLimit(tau float64) (float64, error) {
	if tau <= 0 || tau >= 1 {
		return 0, fmt.Errorf("proud: tau %v outside (0, 1)", tau)
	}
	return stats.NormalQuantile(tau)
}

// EpsNorm returns the normalised epsilon of Equation 9 for a (non-squared)
// distance threshold eps.
func (d DistanceDist) EpsNorm(eps float64) float64 {
	sd := math.Sqrt(d.Variance)
	if sd == 0 {
		// Certain series: the predicate is deterministic. Signed infinity
		// encodes accept/reject for any tau.
		if eps*eps >= d.Mean {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	return (eps*eps - d.Mean) / sd
}

// ProbWithin returns Pr(distance^2 <= eps^2) under the normal approximation.
func (d DistanceDist) ProbWithin(eps float64) float64 {
	en := d.EpsNorm(eps)
	if math.IsInf(en, 1) {
		return 1
	}
	if math.IsInf(en, -1) {
		return 0
	}
	return stats.NormalCDF(en)
}

// Matcher answers probabilistic range queries with PROUD's knowledge model:
// one observation per timestamp and a single constant error standard
// deviation per series ("PROUD assumes that the standard deviation of the
// uncertainty error remains constant across all timestamps", Section 3.1).
type Matcher struct {
	// Eps is the Euclidean distance threshold.
	Eps float64
	// Tau is the probability threshold in (0, 1).
	Tau float64
	// QuerySigma and CandSigma are the constant error standard deviations
	// PROUD is told for the query and the candidates.
	QuerySigma float64
	CandSigma  float64
}

// Matches applies Equations 8-11 to the observation vectors.
func (m Matcher) Matches(qObs, cObs []float64) (bool, error) {
	d, err := Distance(qObs, cObs, m.QuerySigma, m.CandSigma)
	if err != nil {
		return false, err
	}
	limit, err := EpsLimit(m.Tau)
	if err != nil {
		return false, err
	}
	return d.EpsNorm(m.Eps) >= limit, nil
}

// RangeQuery returns the IDs of all candidates whose acceptance test passes.
func (m Matcher) RangeQuery(q uncertain.PDFSeries, collection []uncertain.PDFSeries) ([]int, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	var out []int
	for _, c := range collection {
		ok, err := m.Matches(q.Observations, c.Observations)
		if err != nil {
			return nil, fmt.Errorf("proud: candidate %d: %w", c.ID, err)
		}
		if ok {
			out = append(out, c.ID)
		}
	}
	return out, nil
}

// SynopsisMatcher is the PROUD-over-Haar-synopsis variant mentioned in the
// paper (Section 4.3: "it is possible to apply PROUD on top of a Haar
// wavelet synopsis"). Observations are transformed with the orthonormal
// Haar DWT — which preserves Euclidean distance and, being orthonormal,
// maps i.i.d. per-timestamp error variance sigma^2 to the same variance per
// coefficient — and only the Coeffs largest query coefficients participate
// in the accumulation.
type SynopsisMatcher struct {
	Matcher
	// Coeffs is the number of retained wavelet coefficients.
	Coeffs int
}

// Matches runs the PROUD test in coefficient space.
func (m SynopsisMatcher) Matches(qObs, cObs []float64) (bool, error) {
	if len(qObs) != len(cObs) {
		return false, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(qObs), len(cObs))
	}
	qc, err := wavelet.Transform(wavelet.PadToPowerOfTwo(qObs))
	if err != nil {
		return false, err
	}
	cc, err := wavelet.Transform(wavelet.PadToPowerOfTwo(cObs))
	if err != nil {
		return false, err
	}
	idx := topKIndices(qc, m.Coeffs)
	varD := m.QuerySigma*m.QuerySigma + m.CandSigma*m.CandSigma
	var mean, variance float64
	for _, i := range idx {
		mu := qc[i] - cc[i]
		mean += mu*mu + varD
		variance += 2*varD*varD + 4*varD*mu*mu
	}
	d := DistanceDist{Mean: mean, Variance: variance}
	limit, err := EpsLimit(m.Tau)
	if err != nil {
		return false, err
	}
	return d.EpsNorm(m.Eps) >= limit, nil
}

// topKIndices returns the positions of the k largest-magnitude entries.
func topKIndices(xs []float64, k int) []int {
	if k <= 0 || k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine for the small k used in synopses.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if math.Abs(xs[idx[j]]) > math.Abs(xs[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
