package proud

import (
	"testing"

	"uncertts/internal/stats"
)

func TestStreamMatchesBatchDecision(t *testing.T) {
	// The streaming decision at completion must equal the batch Matcher.
	rng := stats.NewRand(3)
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(24)
		q := make([]float64, n)
		c := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64() * 1.2
		}
		eps := 1 + rng.Float64()*6
		tau := 0.05 + rng.Float64()*0.9
		sigma := 0.2 + rng.Float64()

		m := Matcher{Eps: eps, Tau: tau, QuerySigma: sigma, CandSigma: sigma}
		want, err := m.Matches(q, c)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunStream(q, c, eps, tau, sigma, sigma)
		if err != nil {
			t.Fatal(err)
		}
		wantD := Reject
		if want {
			wantD = Accept
		}
		if got != wantD {
			t.Fatalf("trial %d: stream says %v, batch says %v", trial, got, wantD)
		}
	}
}

func TestStreamEarlyRejectIsSoundAndUseful(t *testing.T) {
	// A pair that is wildly far apart should be rejected before the end of
	// the stream (tau >= 0.5 enables the certain-reject bound), and the
	// early decision must agree with the full evaluation.
	n := 100
	q := make([]float64, n)
	c := make([]float64, n)
	for i := range q {
		c[i] = 10 // enormous gap at every timestamp
	}
	d, seen, err := RunStream(q, c, 2.0, 0.7, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if d != Reject {
		t.Fatalf("distant pair not rejected: %v", d)
	}
	if seen >= n {
		t.Errorf("no early stopping: consumed %d of %d", seen, n)
	}
	// Batch agreement.
	m := Matcher{Eps: 2.0, Tau: 0.7, QuerySigma: 0.3, CandSigma: 0.3}
	ok, err := m.Matches(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("batch evaluation disagrees with early reject")
	}
}

func TestStreamNoEarlyDecisionForSmallTau(t *testing.T) {
	// With tau < 0.5 (negative eps_limit) the certain-reject bound does
	// not apply; the stream must stay undecided until complete.
	n := 50
	q := make([]float64, n)
	c := make([]float64, n)
	for i := range c {
		c[i] = 5
	}
	s, err := NewStream(1, 0.1, n, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if err := s.Push(q[i], c[i]); err != nil {
			t.Fatal(err)
		}
		if d := s.Decide(); d != Undecided {
			t.Fatalf("premature decision %v at %d with tau=0.1", d, i)
		}
	}
	if err := s.Push(q[n-1], c[n-1]); err != nil {
		t.Fatal(err)
	}
	if s.Decide() == Undecided {
		t.Error("complete stream must decide")
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(1, 0.5, 0, 1, 1); err == nil {
		t.Error("zero length should error")
	}
	if _, err := NewStream(1, 0.5, 5, -1, 1); err == nil {
		t.Error("negative sigma should error")
	}
	if _, err := NewStream(1, 0, 5, 1, 1); err == nil {
		t.Error("tau=0 should error")
	}
	s, err := NewStream(1, 0.5, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(0, 0); err == nil {
		t.Error("pushing past the declared length should error")
	}
	if _, _, err := RunStream([]float64{1}, []float64{1, 2}, 1, 0.5, 1, 1); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestDecisionString(t *testing.T) {
	if Accept.String() != "accept" || Reject.String() != "reject" || Undecided.String() != "undecided" {
		t.Error("Decision.String broken")
	}
	if Decision(9).String() == "" {
		t.Error("unknown decision should stringify")
	}
}

func TestStreamIdenticalSeriesAccepted(t *testing.T) {
	// Identical observations with a generous eps must be accepted at
	// moderate tau.
	n := 30
	q := make([]float64, n)
	d, _, err := RunStream(q, q, 10, 0.5, 0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if d != Accept {
		t.Errorf("identical pair with huge eps: %v", d)
	}
}
