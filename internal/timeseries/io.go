package timeseries

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serialises a dataset, one row per series:
//
//	id,label,v0,v1,...,vn-1
//
// Rows may have different lengths (ragged datasets round-trip losslessly).
func WriteCSV(w io.Writer, ds Dataset) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for _, s := range ds.Series {
		row := make([]string, 0, 2+s.Len())
		row = append(row, strconv.Itoa(s.ID), strconv.Itoa(s.Label))
		for _, v := range s.Values {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("timeseries: writing series %d: %w", s.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the WriteCSV format into a dataset with the given name.
func ReadCSV(r io.Reader, name string) (Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // ragged rows allowed
	ds := Dataset{Name: name}
	for lineNo := 1; ; lineNo++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Dataset{}, fmt.Errorf("timeseries: ReadCSV line %d: %w", lineNo, err)
		}
		if len(row) < 3 {
			return Dataset{}, fmt.Errorf("timeseries: ReadCSV line %d: need id,label,values..., got %d fields", lineNo, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return Dataset{}, fmt.Errorf("timeseries: ReadCSV line %d: bad id %q: %w", lineNo, row[0], err)
		}
		label, err := strconv.Atoi(row[1])
		if err != nil {
			return Dataset{}, fmt.Errorf("timeseries: ReadCSV line %d: bad label %q: %w", lineNo, row[1], err)
		}
		values := make([]float64, len(row)-2)
		for i, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return Dataset{}, fmt.Errorf("timeseries: ReadCSV line %d, field %d: bad value %q: %w", lineNo, i+3, cell, err)
			}
			values[i] = v
		}
		ds.Series = append(ds.Series, Series{Values: values, Label: label, ID: id})
	}
	if len(ds.Series) == 0 {
		return Dataset{}, errors.New("timeseries: ReadCSV: no series")
	}
	return ds, nil
}
