package timeseries

import (
	"math"
	"math/rand"
)

// The generators below produce the prototype shapes used by the synthetic
// UCR stand-in datasets (package ucr). They deliberately create strong
// temporal correlation between neighbouring points: that correlation is the
// property the paper's UMA/UEMA result hinges on.

// SineWave returns a sine of the given length, period (in samples), phase
// (radians) and amplitude.
func SineWave(n int, period, phase, amplitude float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = amplitude * math.Sin(2*math.Pi*float64(i)/period+phase)
	}
	return out
}

// GaussianBump returns a bell curve of the given length centered at center
// (sample index) with the given width (stddev in samples) and height.
func GaussianBump(n int, center, width, height float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		z := (float64(i) - center) / width
		out[i] = height * math.Exp(-z*z/2)
	}
	return out
}

// Plateau returns a step function that is `height` on [start, end) and 0
// elsewhere; the building block of the CBF cylinder shape.
func Plateau(n, start, end int, height float64) []float64 {
	out := make([]float64, n)
	for i := start; i < end && i < n; i++ {
		if i >= 0 {
			out[i] = height
		}
	}
	return out
}

// Ramp returns a linear ramp from 0 at start to height at end-1, zero
// elsewhere; the building block of the CBF bell and funnel shapes.
func Ramp(n, start, end int, height float64, rising bool) []float64 {
	out := make([]float64, n)
	span := end - start
	if span <= 0 {
		return out
	}
	for i := start; i < end && i < n; i++ {
		if i < 0 {
			continue
		}
		f := float64(i-start) / float64(span)
		if rising {
			out[i] = height * f
		} else {
			out[i] = height * (1 - f)
		}
	}
	return out
}

// SmoothedRandomWalk returns a random walk smoothed with a moving average of
// half-width smooth; it produces organic, strongly autocorrelated shapes.
func SmoothedRandomWalk(rng *rand.Rand, n int, step float64, smooth int) []float64 {
	walk := make([]float64, n)
	acc := 0.0
	for i := range walk {
		acc += rng.NormFloat64() * step
		walk[i] = acc
	}
	return MovingAverage(walk, smooth)
}

// Add returns the elementwise sum of a and b, which must have equal length.
func Add(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Scale returns a copy of xs with every element multiplied by k.
func Scale(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = k * x
	}
	return out
}

// Warp returns xs resampled with a smooth monotone time warp of strength
// amount in [0, 1): values are read at positions t + amount*sin(...) so the
// shape is preserved but locally stretched, which is how within-class
// variation is produced in the synthetic datasets.
func Warp(rng *rand.Rand, xs []float64, amount float64) []float64 {
	n := len(xs)
	if n < 2 || amount <= 0 {
		out := make([]float64, n)
		copy(out, xs)
		return out
	}
	phase := rng.Float64() * 2 * math.Pi
	period := 0.5 + rng.Float64() // between half and 1.5 cycles over the series
	out := make([]float64, n)
	for i := range out {
		t := float64(i)
		shift := amount * float64(n) / 10 * math.Sin(2*math.Pi*period*t/float64(n)+phase)
		pos := t + shift
		if pos < 0 {
			pos = 0
		}
		if pos > float64(n-1) {
			pos = float64(n - 1)
		}
		lo := int(pos)
		hi := lo + 1
		if hi >= n {
			out[i] = xs[n-1]
			continue
		}
		f := pos - float64(lo)
		out[i] = xs[lo]*(1-f) + xs[hi]*f
	}
	return out
}
