// Package timeseries provides the certain (exact-valued) time-series
// substrate: the Series type, z-normalization, resampling, moving-average
// filters, and shape generators. Uncertainty is layered on top of it by
// package uncertain.
package timeseries

import (
	"errors"
	"fmt"
	"math"

	"uncertts/internal/stats"
)

// ErrLengthMismatch is returned when an operation requires equal-length series.
var ErrLengthMismatch = errors.New("timeseries: series lengths differ")

// Series is a real-valued time series sampled at constant rate with discrete
// timestamps, exactly as defined in Section 2 of the paper:
// S = <s1, s2, ..., sn>.
type Series struct {
	// Values holds the observation at each timestamp.
	Values []float64
	// Label is an optional class label (the UCR datasets are classification
	// datasets; labels make nearest-neighbour ground truth meaningful).
	Label int
	// ID identifies the series within its dataset.
	ID int
}

// New returns a Series over a copy of values.
func New(values []float64) Series {
	v := make([]float64, len(values))
	copy(v, values)
	return Series{Values: v}
}

// Len returns the number of timestamps.
func (s Series) Len() int { return len(s.Values) }

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return Series{Values: v, Label: s.Label, ID: s.ID}
}

// At returns the value at timestamp i.
func (s Series) At(i int) float64 { return s.Values[i] }

// Mean returns the mean of the series values.
func (s Series) Mean() float64 { return stats.Mean(s.Values) }

// StdDev returns the population standard deviation of the series values.
func (s Series) StdDev() float64 { return stats.StdDevOf(s.Values) }

// String summarises the series.
func (s Series) String() string {
	return fmt.Sprintf("series(id=%d label=%d n=%d)", s.ID, s.Label, s.Len())
}

// Normalize returns the z-normalized copy of the series: zero mean and unit
// variance ("Where not specified otherwise, we assume normalized time series
// with zero mean and unit variance", Section 2). Constant series are shifted
// to zero but left unscaled, since their variance is zero.
func (s Series) Normalize() Series {
	out := s.Clone()
	NormalizeInPlace(out.Values)
	return out
}

// NormalizeInPlace z-normalizes values in place.
func NormalizeInPlace(values []float64) {
	if len(values) == 0 {
		return
	}
	mu := stats.Mean(values)
	sd := stats.StdDevOf(values)
	if sd == 0 || math.IsNaN(sd) {
		for i := range values {
			values[i] -= mu
		}
		return
	}
	for i := range values {
		values[i] = (values[i] - mu) / sd
	}
}

// IsNormalized reports whether the series has zero mean and unit variance
// within tolerance tol.
func (s Series) IsNormalized(tol float64) bool {
	if s.Len() == 0 {
		return true
	}
	return math.Abs(s.Mean()) <= tol && math.Abs(s.StdDev()-1) <= tol
}

// Resample returns the series linearly resampled to n points, mapping the
// original domain [0, len-1] onto [0, n-1]. The paper's Figure 12 obtains
// series of lengths 50..1000 by "resampling the raw sequences".
func (s Series) Resample(n int) (Series, error) {
	if n < 1 {
		return Series{}, fmt.Errorf("timeseries: Resample: target length %d < 1", n)
	}
	if s.Len() == 0 {
		return Series{}, errors.New("timeseries: Resample: empty series")
	}
	out := Series{Values: make([]float64, n), Label: s.Label, ID: s.ID}
	if s.Len() == 1 {
		for i := range out.Values {
			out.Values[i] = s.Values[0]
		}
		return out, nil
	}
	if n == 1 {
		out.Values[0] = s.Values[0]
		return out, nil
	}
	scale := float64(s.Len()-1) / float64(n-1)
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(math.Floor(pos))
		hi := lo + 1
		if hi >= s.Len() {
			out.Values[i] = s.Values[s.Len()-1]
			continue
		}
		f := pos - float64(lo)
		out.Values[i] = s.Values[lo]*(1-f) + s.Values[hi]*f
	}
	return out, nil
}

// Truncate returns the first n points of the series (or the series itself if
// it is shorter). Figure 4 uses Gun Point truncated to length 6.
func (s Series) Truncate(n int) Series {
	if n >= s.Len() {
		return s.Clone()
	}
	if n < 0 {
		n = 0
	}
	v := make([]float64, n)
	copy(v, s.Values[:n])
	return Series{Values: v, Label: s.Label, ID: s.ID}
}

// Dataset is a named collection of series, mirroring C = {S1, ..., SN} in
// the paper's problem definition.
type Dataset struct {
	Name   string
	Series []Series
}

// Len returns the number of series in the dataset.
func (d Dataset) Len() int { return len(d.Series) }

// AvgLength returns the average series length, rounded to nearest.
func (d Dataset) AvgLength() int {
	if len(d.Series) == 0 {
		return 0
	}
	total := 0
	for _, s := range d.Series {
		total += s.Len()
	}
	return (total + len(d.Series)/2) / len(d.Series)
}

// AllValues returns every value of every series concatenated; used by the
// chi-square uniformity check of Section 4.1.1.
func (d Dataset) AllValues() []float64 {
	var out []float64
	for _, s := range d.Series {
		out = append(out, s.Values...)
	}
	return out
}

// Normalize z-normalizes every series in place and returns the dataset for
// chaining.
func (d Dataset) Normalize() Dataset {
	for i := range d.Series {
		NormalizeInPlace(d.Series[i].Values)
	}
	return d
}

// Truncated returns a copy with at most maxSeries series, each truncated to
// maxLen points (the Figure 4 restricted setting).
func (d Dataset) Truncated(maxSeries, maxLen int) Dataset {
	n := maxSeries
	if n > len(d.Series) {
		n = len(d.Series)
	}
	out := Dataset{Name: d.Name + "-truncated", Series: make([]Series, n)}
	for i := 0; i < n; i++ {
		out.Series[i] = d.Series[i].Truncate(maxLen)
		out.Series[i].ID = i
	}
	return out
}

// Resampled returns a copy with every series resampled to length n.
func (d Dataset) Resampled(n int) (Dataset, error) {
	out := Dataset{Name: d.Name, Series: make([]Series, len(d.Series))}
	for i, s := range d.Series {
		r, err := s.Resample(n)
		if err != nil {
			return Dataset{}, fmt.Errorf("timeseries: resampling series %d of %s: %w", s.ID, d.Name, err)
		}
		out.Series[i] = r
	}
	return out, nil
}
