package timeseries

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Dataset{Name: "roundtrip", Series: []Series{
		{Values: []float64{1.5, -2.25, 3e-7}, Label: 2, ID: 10},
		{Values: []float64{0, math.Pi}, Label: 0, ID: 11}, // ragged
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("length %d, want %d", back.Len(), orig.Len())
	}
	for i, s := range back.Series {
		o := orig.Series[i]
		if s.ID != o.ID || s.Label != o.Label || s.Len() != o.Len() {
			t.Fatalf("series %d metadata mismatch: %+v vs %+v", i, s, o)
		}
		for j := range s.Values {
			if s.Values[j] != o.Values[j] {
				t.Fatalf("series %d value %d: %v vs %v", i, j, s.Values[j], o.Values[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"too few fields", "1,2\n"},
		{"bad id", "x,0,1.5\n"},
		{"bad label", "1,x,1.5\n"},
		{"bad value", "1,0,abc\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), "bad"); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadCSVPreservesName(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("7,3,1,2,3\n"), "mine")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "mine" || ds.Series[0].ID != 7 || ds.Series[0].Label != 3 {
		t.Errorf("parsed %+v", ds)
	}
}
