package timeseries

import (
	"math"
	"testing"
	"testing/quick"

	"uncertts/internal/stats"
)

func TestMovingAverageWindowZeroIsIdentity(t *testing.T) {
	in := []float64{3, 1, 4, 1, 5}
	out := MovingAverage(in, 0)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("w=0 should be identity, got %v", out)
		}
	}
	// Must be a copy, not an alias.
	out[0] = 99
	if in[0] == 99 {
		t.Error("MovingAverage must not alias its input")
	}
}

func TestMovingAverageInterior(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5}
	out := MovingAverage(in, 1)
	want := []float64{1.5, 2, 3, 4, 4.5} // clipped at edges
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Errorf("MA[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestMovingAveragePreservesConstant(t *testing.T) {
	f := func(c float64, wRaw int) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e12 {
			return true
		}
		w := wRaw % 10
		if w < 0 {
			w = -w
		}
		in := make([]float64, 20)
		for i := range in {
			in[i] = c
		}
		for _, v := range MovingAverage(in, w) {
			if !almostEqual(v, c, 1e-9*(1+math.Abs(c))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverageReducesVariance(t *testing.T) {
	rng := stats.NewRand(3)
	in := make([]float64, 500)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	out := MovingAverage(in, 2)
	if stats.Variance(out) >= stats.Variance(in) {
		t.Errorf("smoothing should reduce variance of white noise: %v >= %v",
			stats.Variance(out), stats.Variance(in))
	}
}

func TestMovingAverageNegativeWClamped(t *testing.T) {
	in := []float64{1, 2, 3}
	out := MovingAverage(in, -5)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("negative w should clamp to identity, got %v", out)
		}
	}
}

func TestEMAZeroLambdaEqualsMA(t *testing.T) {
	in := []float64{2, 7, 1, 8, 2, 8, 1, 8}
	ma := MovingAverage(in, 2)
	ema := ExponentialMovingAverage(in, 2, 0)
	for i := range in {
		if !almostEqual(ma[i], ema[i], 1e-12) {
			t.Errorf("lambda=0 EMA[%d] = %v, MA = %v", i, ema[i], ma[i])
		}
	}
}

func TestEMALargeLambdaApproachesIdentity(t *testing.T) {
	in := []float64{2, 7, 1, 8, 2, 8}
	ema := ExponentialMovingAverage(in, 3, 50)
	for i := range in {
		if !almostEqual(ema[i], in[i], 1e-9) {
			t.Errorf("huge lambda EMA[%d] = %v, want %v", i, ema[i], in[i])
		}
	}
}

func TestEMACenterWeightedMoreThanNeighbors(t *testing.T) {
	// A single impulse: the filtered response must peak at the impulse and
	// decay symmetrically.
	in := make([]float64, 11)
	in[5] = 1
	out := ExponentialMovingAverage(in, 3, 0.7)
	if out[5] <= out[4] || out[5] <= out[6] {
		t.Errorf("impulse response should peak at the impulse: %v", out)
	}
	if !almostEqual(out[4], out[6], 1e-12) {
		t.Errorf("impulse response should be symmetric: %v vs %v", out[4], out[6])
	}
	if out[4] <= out[3] {
		t.Errorf("impulse response should decay: %v", out)
	}
}

func TestUMAConstantSigmaEqualsMA(t *testing.T) {
	in := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	sig := make([]float64, len(in))
	for i := range sig {
		sig[i] = 0.7
	}
	uma, err := UncertainMovingAverage(in, sig, 2, WeightModeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	ma := MovingAverage(in, 2)
	for i := range in {
		if !almostEqual(uma[i], ma[i], 1e-12) {
			t.Errorf("constant-sigma UMA[%d] = %v, MA = %v", i, uma[i], ma[i])
		}
	}
}

func TestUMAStrictModeScalesByInverseSigma(t *testing.T) {
	// With constant sigma, strict Eq. 17 divides the plain MA by sigma.
	in := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	sig := make([]float64, len(in))
	for i := range sig {
		sig[i] = 2.0
	}
	strict, err := UncertainMovingAverage(in, sig, 1, WeightModeStrict)
	if err != nil {
		t.Fatal(err)
	}
	ma := MovingAverage(in, 1)
	for i := range in {
		if !almostEqual(strict[i], ma[i]/2, 1e-12) {
			t.Errorf("strict UMA[%d] = %v, want %v", i, strict[i], ma[i]/2)
		}
	}
}

func TestUMADownweightsNoisyPoint(t *testing.T) {
	// Point 2 is an outlier with huge sigma; UMA at index 1 should be closer
	// to the clean average than plain MA is.
	in := []float64{1, 1, 100, 1, 1}
	sig := []float64{0.1, 0.1, 10, 0.1, 0.1}
	uma, err := UncertainMovingAverage(in, sig, 1, WeightModeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	ma := MovingAverage(in, 1)
	if math.Abs(uma[1]-1) >= math.Abs(ma[1]-1) {
		t.Errorf("UMA should trust the noisy point less: uma=%v ma=%v", uma[1], ma[1])
	}
}

func TestUEMAConstantSigmaEqualsEMA(t *testing.T) {
	in := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	sig := make([]float64, len(in))
	for i := range sig {
		sig[i] = 1.3
	}
	uema, err := UncertainExponentialMovingAverage(in, sig, 2, 0.5, WeightModeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	ema := ExponentialMovingAverage(in, 2, 0.5)
	for i := range in {
		if !almostEqual(uema[i], ema[i], 1e-12) {
			t.Errorf("constant-sigma UEMA[%d] = %v, EMA = %v", i, uema[i], ema[i])
		}
	}
}

func TestUEMALambdaZeroEqualsUMA(t *testing.T) {
	in := []float64{3, 1, 4, 1, 5, 9}
	sig := []float64{1, 2, 1, 0.5, 1, 2}
	uema, err := UncertainExponentialMovingAverage(in, sig, 2, 0, WeightModeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	uma, err := UncertainMovingAverage(in, sig, 2, WeightModeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if !almostEqual(uema[i], uma[i], 1e-12) {
			t.Errorf("lambda=0 UEMA[%d] = %v, UMA = %v", i, uema[i], uma[i])
		}
	}
}

func TestUncertainFilterErrors(t *testing.T) {
	in := []float64{1, 2, 3}
	if _, err := UncertainMovingAverage(in, []float64{1, 2}, 1, WeightModeNormalized); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := UncertainMovingAverage(in, []float64{1, 0, 1}, 1, WeightModeNormalized); err == nil {
		t.Error("zero sigma should error")
	}
	if _, err := UncertainExponentialMovingAverage(in, []float64{1, -1, 1}, 1, 1, WeightModeNormalized); err == nil {
		t.Error("negative sigma should error")
	}
	if _, err := UncertainExponentialMovingAverage(in, []float64{1}, 1, 1, WeightModeNormalized); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestWeightModeString(t *testing.T) {
	if WeightModeNormalized.String() != "normalized" || WeightModeStrict.String() != "strict" {
		t.Error("WeightMode.String broken")
	}
	if WeightMode(99).String() == "" {
		t.Error("unknown WeightMode should still stringify")
	}
}

func TestUMAWindowZeroIsIdentityNormalized(t *testing.T) {
	in := []float64{5, 6, 7}
	sig := []float64{1, 2, 3}
	out, err := UncertainMovingAverage(in, sig, 0, WeightModeNormalized)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if !almostEqual(out[i], in[i], 1e-12) {
			t.Errorf("w=0 normalized UMA should be identity, got %v", out)
		}
	}
}

func TestGenerators(t *testing.T) {
	sine := SineWave(100, 4, 0, 2) // period 4 hits the exact peak at i=1
	if !almostEqual(sine[0], 0, 1e-12) {
		t.Errorf("sine phase 0 should start at 0, got %v", sine[0])
	}
	_, max := stats.MinMax(sine)
	if !almostEqual(max, 2, 1e-9) {
		t.Errorf("sine amplitude = %v, want 2", max)
	}

	bump := GaussianBump(100, 50, 5, 3)
	if !almostEqual(bump[50], 3, 1e-12) {
		t.Errorf("bump peak = %v, want 3", bump[50])
	}
	if bump[0] > 1e-10 {
		t.Errorf("bump tail should vanish, got %v", bump[0])
	}

	p := Plateau(10, 3, 7, 2)
	if p[2] != 0 || p[3] != 2 || p[6] != 2 || p[7] != 0 {
		t.Errorf("plateau wrong: %v", p)
	}

	r := Ramp(10, 2, 8, 6, true)
	if r[2] != 0 || !almostEqual(r[5], 3, 1e-12) {
		t.Errorf("rising ramp wrong: %v", r)
	}
	rf := Ramp(10, 2, 8, 6, false)
	if !almostEqual(rf[2], 6, 1e-12) {
		t.Errorf("falling ramp wrong: %v", rf)
	}
	if out := Ramp(10, 5, 5, 1, true); out[5] != 0 {
		t.Errorf("empty ramp should be zeros")
	}

	rng := stats.NewRand(1)
	walk := SmoothedRandomWalk(rng, 200, 1, 3)
	if len(walk) != 200 {
		t.Fatalf("walk length %d", len(walk))
	}
	// Smoothed walk must be strongly autocorrelated at lag 1.
	if lag1Autocorr(walk) < 0.9 {
		t.Errorf("smoothed walk lag-1 autocorrelation = %v, want > 0.9", lag1Autocorr(walk))
	}
}

func lag1Autocorr(xs []float64) float64 {
	mu := stats.Mean(xs)
	var num, den float64
	for i := 0; i < len(xs)-1; i++ {
		num += (xs[i] - mu) * (xs[i+1] - mu)
	}
	for _, x := range xs {
		den += (x - mu) * (x - mu)
	}
	return num / den
}

func TestAddScale(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{10, 20}
	sum := Add(a, b)
	if sum[0] != 11 || sum[1] != 22 {
		t.Errorf("Add = %v", sum)
	}
	sc := Scale(a, 3)
	if sc[0] != 3 || sc[1] != 6 {
		t.Errorf("Scale = %v", sc)
	}
	if a[0] != 1 {
		t.Error("Scale must not mutate")
	}
}

func TestWarpPreservesLengthAndRange(t *testing.T) {
	rng := stats.NewRand(2)
	in := SineWave(128, 32, 0, 1)
	out := Warp(rng, in, 0.3)
	if len(out) != len(in) {
		t.Fatalf("warp changed length: %d", len(out))
	}
	lo, hi := stats.MinMax(out)
	if lo < -1-1e-9 || hi > 1+1e-9 {
		t.Errorf("warp must not exceed the input range: [%v, %v]", lo, hi)
	}
	// Zero warp is identity.
	id := Warp(rng, in, 0)
	for i := range in {
		if id[i] != in[i] {
			t.Fatal("zero-amount warp should be identity")
		}
	}
	// Short inputs pass through.
	short := Warp(rng, []float64{5}, 0.5)
	if len(short) != 1 || short[0] != 5 {
		t.Errorf("short warp = %v", short)
	}
}
