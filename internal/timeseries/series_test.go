package timeseries

import (
	"math"
	"testing"
	"testing/quick"

	"uncertts/internal/stats"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestNewCopiesInput(t *testing.T) {
	raw := []float64{1, 2, 3}
	s := New(raw)
	raw[0] = 99
	if s.Values[0] != 1 {
		t.Error("New must copy its input")
	}
	if s.Len() != 3 || s.At(2) != 3 {
		t.Errorf("Len/At wrong: %v", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New([]float64{1, 2})
	s.Label = 4
	s.ID = 9
	c := s.Clone()
	c.Values[0] = 42
	if s.Values[0] != 1 {
		t.Error("Clone must not share backing storage")
	}
	if c.Label != 4 || c.ID != 9 {
		t.Error("Clone must preserve metadata")
	}
}

func TestNormalize(t *testing.T) {
	s := New([]float64{10, 20, 30, 40, 50})
	n := s.Normalize()
	if !n.IsNormalized(1e-12) {
		t.Errorf("normalized series has mean=%v sd=%v", n.Mean(), n.StdDev())
	}
	// Original untouched.
	if s.Values[0] != 10 {
		t.Error("Normalize must not mutate the receiver")
	}
}

func TestNormalizeConstantSeries(t *testing.T) {
	s := New([]float64{5, 5, 5})
	n := s.Normalize()
	for _, v := range n.Values {
		if v != 0 {
			t.Errorf("constant series should normalize to zeros, got %v", n.Values)
		}
	}
}

func TestNormalizeEmpty(t *testing.T) {
	s := New(nil)
	n := s.Normalize()
	if n.Len() != 0 {
		t.Error("empty normalize should stay empty")
	}
	if !s.IsNormalized(1e-12) {
		t.Error("empty series counts as normalized")
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		if stats.StdDevOf(raw) == 0 {
			return true
		}
		n := New(raw).Normalize()
		return n.IsNormalized(1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResampleIdentity(t *testing.T) {
	s := New([]float64{1, 3, 2, 5})
	r, err := s.Resample(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Values {
		if !almostEqual(r.Values[i], s.Values[i], 1e-12) {
			t.Errorf("identity resample differs at %d: %v vs %v", i, r.Values[i], s.Values[i])
		}
	}
}

func TestResampleEndpointsPreserved(t *testing.T) {
	s := New([]float64{-2, 0, 1, 7})
	for _, n := range []int{2, 3, 7, 50, 1000} {
		r, err := s.Resample(n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != n {
			t.Fatalf("resample to %d gave length %d", n, r.Len())
		}
		if !almostEqual(r.Values[0], -2, 1e-12) || !almostEqual(r.Values[n-1], 7, 1e-12) {
			t.Errorf("endpoints not preserved for n=%d: %v .. %v", n, r.Values[0], r.Values[n-1])
		}
	}
}

func TestResampleUpDownRoundTrip(t *testing.T) {
	// Upsampling then downsampling back to the original grid is exact for
	// piecewise-linear data, and the original sample points lie on the
	// piecewise-linear interpolant.
	s := New([]float64{0, 1, 4, 9, 16, 25})
	up, err := s.Resample(51) // 10x + 1 keeps original points on the grid
	if err != nil {
		t.Fatal(err)
	}
	down, err := up.Resample(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Values {
		if !almostEqual(down.Values[i], s.Values[i], 1e-9) {
			t.Errorf("round trip differs at %d: %v vs %v", i, down.Values[i], s.Values[i])
		}
	}
}

func TestResampleDegenerate(t *testing.T) {
	if _, err := New(nil).Resample(5); err == nil {
		t.Error("resampling an empty series should error")
	}
	if _, err := New([]float64{1, 2}).Resample(0); err == nil {
		t.Error("resampling to zero length should error")
	}
	one, err := New([]float64{3}).Resample(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range one.Values {
		if v != 3 {
			t.Errorf("length-1 series should resample to constant, got %v", one.Values)
		}
	}
	single, err := New([]float64{1, 2, 3}).Resample(1)
	if err != nil || single.Values[0] != 1 {
		t.Errorf("resample to 1 should return first point, got %v, %v", single.Values, err)
	}
}

func TestTruncate(t *testing.T) {
	s := New([]float64{1, 2, 3, 4, 5})
	tr := s.Truncate(3)
	if tr.Len() != 3 || tr.Values[2] != 3 {
		t.Errorf("truncate(3) = %v", tr.Values)
	}
	if got := s.Truncate(10); got.Len() != 5 {
		t.Errorf("over-truncation should keep full series, got %d", got.Len())
	}
	if got := s.Truncate(-1); got.Len() != 0 {
		t.Errorf("negative truncation should give empty, got %d", got.Len())
	}
	// Shared storage check.
	tr.Values[0] = 42
	if s.Values[0] != 1 {
	} else if tr.Values[0] == s.Values[0] {
		t.Error("truncate must copy")
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := Dataset{Name: "toy", Series: []Series{
		New([]float64{1, 2, 3, 4}),
		New([]float64{5, 6}),
	}}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.AvgLength() != 3 {
		t.Errorf("AvgLength = %d, want 3", d.AvgLength())
	}
	all := d.AllValues()
	if len(all) != 6 || all[4] != 5 {
		t.Errorf("AllValues = %v", all)
	}
}

func TestDatasetTruncated(t *testing.T) {
	d := Dataset{Name: "toy"}
	for i := 0; i < 100; i++ {
		s := New([]float64{1, 2, 3, 4, 5, 6, 7, 8})
		s.ID = i + 1000
		d.Series = append(d.Series, s)
	}
	tr := d.Truncated(60, 6)
	if tr.Len() != 60 {
		t.Errorf("Truncated kept %d series, want 60", tr.Len())
	}
	for i, s := range tr.Series {
		if s.Len() != 6 {
			t.Errorf("series %d has length %d, want 6", i, s.Len())
		}
		if s.ID != i {
			t.Errorf("series %d should be re-IDed to %d, got %d", i, i, s.ID)
		}
	}
	// Truncating more than available keeps all.
	tr2 := d.Truncated(500, 4)
	if tr2.Len() != 100 {
		t.Errorf("over-truncation kept %d, want 100", tr2.Len())
	}
}

func TestDatasetResampled(t *testing.T) {
	d := Dataset{Name: "toy", Series: []Series{
		New([]float64{1, 2, 3}),
		New([]float64{4, 5, 6, 7}),
	}}
	r, err := d.Resampled(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Series {
		if s.Len() != 10 {
			t.Errorf("resampled length %d, want 10", s.Len())
		}
	}
	bad := Dataset{Name: "bad", Series: []Series{New(nil)}}
	if _, err := bad.Resampled(10); err == nil {
		t.Error("resampling empty series should propagate an error")
	}
}

func TestDatasetNormalize(t *testing.T) {
	d := Dataset{Name: "toy", Series: []Series{New([]float64{10, 20, 30})}}
	d.Normalize()
	if !d.Series[0].IsNormalized(1e-9) {
		t.Errorf("dataset normalize failed: %v", d.Series[0].Values)
	}
}
