package timeseries

import (
	"fmt"
	"math"
)

// MovingAverage returns the moving average of values with window half-width
// w (window width 2w+1), following Eq. 15 of the paper:
//
//	m_i = sum_{j=i-w}^{i+w} v_j / (2w+1)
//
// At the boundaries the window is clipped to the series and the divisor is
// the number of points actually inside, which keeps the filter unbiased at
// the edges. With w = 0 the input is returned unchanged (copied).
func MovingAverage(values []float64, w int) []float64 {
	out := make([]float64, len(values))
	MovingAverageInto(out, values, w)
	return out
}

// MovingAverageInto computes MovingAverage into dst (len(dst) must equal
// len(values)) — the allocation-free form arena-backed callers use.
func MovingAverageInto(dst, values []float64, w int) {
	if w < 0 {
		w = 0
	}
	out := dst
	if w == 0 {
		copy(out, values)
		return
	}
	// A sliding running sum gives O(n) evaluation independent of w with
	// no scratch array: the window over position i is [i-w, i+w] clipped
	// to the series, so stepping i forward admits values[i+w] and evicts
	// values[i-1-w].
	var sum float64
	hi := w
	if hi >= len(values) {
		hi = len(values) - 1
	}
	for k := 0; k <= hi; k++ {
		sum += values[k]
	}
	lo := 0
	for i := range values {
		out[i] = sum / float64(hi-lo+1)
		if next := i + 1 + w; next < len(values) {
			sum += values[next]
			hi = next
		}
		if evict := i + 1 - w; evict > 0 {
			sum -= values[evict-1]
			lo = evict
		}
	}
}

// ExponentialMovingAverage returns the exponentially weighted moving average
// of Eq. 16:
//
//	e_i = sum_{j=i-w}^{i+w} v_j exp(-lambda |j-i|) / sum exp(-lambda |j-i|)
//
// lambda controls the decay; lambda = 0 reduces to the plain moving average.
func ExponentialMovingAverage(values []float64, w int, lambda float64) []float64 {
	out := make([]float64, len(values))
	ExponentialMovingAverageInto(out, values, w, lambda)
	return out
}

// ExponentialMovingAverageInto computes ExponentialMovingAverage into dst
// (len(dst) must equal len(values)).
func ExponentialMovingAverageInto(dst, values []float64, w int, lambda float64) {
	if w < 0 {
		w = 0
	}
	out := dst
	if w == 0 {
		copy(out, values)
		return
	}
	weights := decayWeights(w, lambda)
	for i := range values {
		var num, den float64
		for j := -w; j <= w; j++ {
			k := i + j
			if k < 0 || k >= len(values) {
				continue
			}
			wt := weights[abs(j)]
			num += values[k] * wt
			den += wt
		}
		out[i] = num / den
	}
}

// decayWeights precomputes exp(-lambda*d) for d = 0..w.
func decayWeights(w int, lambda float64) []float64 {
	weights := make([]float64, w+1)
	for d := 0; d <= w; d++ {
		weights[d] = math.Exp(-lambda * float64(d))
	}
	return weights
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// WeightMode selects between the two readings of the paper's Eq. 17/18 for
// the uncertainty-weighted filters (see DESIGN.md, Interpretation notes).
type WeightMode int

const (
	// WeightModeNormalized divides by the sum of the weights actually used,
	// i.e. a standard weighted moving average. This is the default.
	WeightModeNormalized WeightMode = iota
	// WeightModeStrict follows the paper's formulas verbatim: Eq. 17 divides
	// by 2w+1 and Eq. 18 divides by sum of the decay factors alone, so the
	// per-point 1/sigma weights rescale the output.
	WeightModeStrict
)

func (m WeightMode) String() string {
	switch m {
	case WeightModeNormalized:
		return "normalized"
	case WeightModeStrict:
		return "strict"
	default:
		return fmt.Sprintf("WeightMode(%d)", int(m))
	}
}

// UncertainMovingAverage computes the paper's UMA filter (Eq. 17): a moving
// average in which each observation v_j is weighted by the reciprocal of its
// error standard deviation s_j, so that noisier points contribute less.
//
// sigmas must have the same length as values and contain positive entries.
func UncertainMovingAverage(values, sigmas []float64, w int, mode WeightMode) ([]float64, error) {
	out := make([]float64, len(values))
	if err := UncertainMovingAverageInto(out, values, sigmas, w, mode); err != nil {
		return nil, err
	}
	return out, nil
}

// UncertainMovingAverageInto computes the UMA filter into dst (len(dst)
// must equal len(values)).
func UncertainMovingAverageInto(dst, values, sigmas []float64, w int, mode WeightMode) error {
	if len(values) != len(sigmas) {
		return fmt.Errorf("timeseries: UncertainMovingAverage: %w (%d values, %d sigmas)", ErrLengthMismatch, len(values), len(sigmas))
	}
	if err := checkSigmas(sigmas); err != nil {
		return err
	}
	if w < 0 {
		w = 0
	}
	out := dst
	for i := range values {
		var num, den float64
		count := 0
		for j := -w; j <= w; j++ {
			k := i + j
			if k < 0 || k >= len(values) {
				continue
			}
			num += values[k] / sigmas[k]
			den += 1 / sigmas[k]
			count++
		}
		switch mode {
		case WeightModeStrict:
			out[i] = num / float64(count)
		default:
			out[i] = num / den
		}
	}
	return nil
}

// UncertainExponentialMovingAverage computes the paper's UEMA filter
// (Eq. 18): exponential decay around the current point combined with the
// 1/sigma uncertainty weights.
func UncertainExponentialMovingAverage(values, sigmas []float64, w int, lambda float64, mode WeightMode) ([]float64, error) {
	out := make([]float64, len(values))
	if err := UncertainExponentialMovingAverageInto(out, values, sigmas, w, lambda, mode); err != nil {
		return nil, err
	}
	return out, nil
}

// UncertainExponentialMovingAverageInto computes the UEMA filter into dst
// (len(dst) must equal len(values)).
func UncertainExponentialMovingAverageInto(dst, values, sigmas []float64, w int, lambda float64, mode WeightMode) error {
	if len(values) != len(sigmas) {
		return fmt.Errorf("timeseries: UncertainExponentialMovingAverage: %w (%d values, %d sigmas)", ErrLengthMismatch, len(values), len(sigmas))
	}
	if err := checkSigmas(sigmas); err != nil {
		return err
	}
	if w < 0 {
		w = 0
	}
	weights := decayWeights(w, lambda)
	out := dst
	for i := range values {
		var num, denStrict, denNorm float64
		for j := -w; j <= w; j++ {
			k := i + j
			if k < 0 || k >= len(values) {
				continue
			}
			decay := weights[abs(j)]
			num += values[k] * decay / sigmas[k]
			denStrict += decay
			denNorm += decay / sigmas[k]
		}
		switch mode {
		case WeightModeStrict:
			out[i] = num / denStrict
		default:
			out[i] = num / denNorm
		}
	}
	return nil
}

func checkSigmas(sigmas []float64) error {
	for i, s := range sigmas {
		if s <= 0 || math.IsNaN(s) {
			return fmt.Errorf("timeseries: sigma at index %d is %v, must be positive", i, s)
		}
	}
	return nil
}
