package munich

import (
	"errors"
	"fmt"

	"uncertts/internal/uncertain"
)

// Index is the filter step of the original MUNICH system: every uncertain
// series is summarised by its per-timestamp minimal bounding intervals,
// coarsened into fixed-width segments (a piecewise-constant envelope, the
// flat cousin of an R-tree leaf). A range query first walks the envelopes
// and discards candidates whose envelope-level lower bound already exceeds
// eps; only survivors pay for probability counting. The filter is lossless:
// envelope bounds are looser than the exact per-timestamp bounds, so no
// candidate that could match is dropped (no false dismissals).
type Index struct {
	segments int
	spans    [][2]int // [start, end) timestamp range of each segment
	entries  []Envelope
	series   []uncertain.SampleSeries
	length   int
}

// NewIndex builds an envelope index over equal-length sample series with
// the given number of envelope segments (clamped to the series length).
func NewIndex(collection []uncertain.SampleSeries, segments int) (*Index, error) {
	if len(collection) == 0 {
		return nil, errors.New("munich: NewIndex: empty collection")
	}
	n := collection[0].Len()
	segments = ClampSegments(n, segments)
	idx := &Index{segments: segments, length: n, series: collection}
	idx.spans = SegmentSpans(n, segments)
	for _, s := range collection {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.Len() != n {
			return nil, fmt.Errorf("munich: NewIndex: series %d has length %d, want %d", s.ID, s.Len(), n)
		}
		idx.entries = append(idx.entries, BuildEnvelope(s, segments))
	}
	return idx, nil
}

// lowerBound returns a lower bound on every feasible Euclidean distance
// between materialisations of the query and entry i (see
// EnvelopeLowerBound, which it delegates to with the index's cached spans).
func (x *Index) lowerBound(q Envelope, i int) float64 {
	return EnvelopeLowerBound(q, x.entries[i], x.spans)
}

// Len returns the number of indexed series.
func (x *Index) Len() int { return len(x.series) }

// LowerBoundBetween returns the envelope-level lower bound on every feasible
// Euclidean distance between the indexed series at positions qi and ci. It
// is the filter device exposed for callers (such as the query engine) whose
// queries are themselves members of the indexed collection, so the query
// entry is already built and the bound costs O(segments) with no allocation.
func (x *Index) LowerBoundBetween(qi, ci int) float64 {
	return x.lowerBound(x.entries[qi], ci)
}

// FilterStats reports how much work the filter saved.
type FilterStats struct {
	Candidates int // total candidates inspected
	Pruned     int // discarded by the envelope lower bound
}

// Filter returns the positions (indexes into the indexed collection) of all
// candidates whose envelope lower bound does not exceed eps, excluding
// selfID (the query's own series ID, -1 to keep everything).
func (x *Index) Filter(q uncertain.SampleSeries, eps float64, selfID int) ([]int, FilterStats, error) {
	if err := q.Validate(); err != nil {
		return nil, FilterStats{}, err
	}
	if q.Len() != x.length {
		return nil, FilterStats{}, fmt.Errorf("munich: Filter: query length %d, index length %d", q.Len(), x.length)
	}
	qe := BuildEnvelope(q, x.segments)
	var out []int
	stats := FilterStats{}
	for i := range x.entries {
		if x.series[i].ID == selfID {
			continue
		}
		stats.Candidates++
		if x.lowerBound(qe, i) > eps {
			stats.Pruned++
			continue
		}
		out = append(out, i)
	}
	return out, stats, nil
}

// RangeQuery runs the full filter-and-refine pipeline: envelope filter,
// exact bounding-interval prune, then probability counting on the
// survivors. It returns the IDs of matching series and the filter
// statistics.
func (x *Index) RangeQuery(q uncertain.SampleSeries, eps, tau float64, opts Options) ([]int, FilterStats, error) {
	candidates, stats, err := x.Filter(q, eps, q.ID)
	if err != nil {
		return nil, stats, err
	}
	matcher := Matcher{Eps: eps, Tau: tau, Opts: opts}
	var out []int
	for _, i := range candidates {
		ok, err := matcher.Matches(q, x.series[i])
		if err != nil {
			return nil, stats, fmt.Errorf("munich: refining candidate %d: %w", x.series[i].ID, err)
		}
		if ok {
			out = append(out, x.series[i].ID)
		}
	}
	return out, stats, nil
}
