package munich

import (
	"errors"
	"fmt"
	"math"

	"uncertts/internal/uncertain"
)

// Index is the filter step of the original MUNICH system: every uncertain
// series is summarised by its per-timestamp minimal bounding intervals,
// coarsened into fixed-width segments (a piecewise-constant envelope, the
// flat cousin of an R-tree leaf). A range query first walks the envelopes
// and discards candidates whose envelope-level lower bound already exceeds
// eps; only survivors pay for probability counting. The filter is lossless:
// envelope bounds are looser than the exact per-timestamp bounds, so no
// candidate that could match is dropped (no false dismissals).
type Index struct {
	segments int
	spans    [][2]int // [start, end) timestamp range of each segment
	entries  []indexEntry
	series   []uncertain.SampleSeries
	length   int
}

type indexEntry struct {
	lo []float64 // per-segment envelope minimum
	hi []float64 // per-segment envelope maximum
}

// NewIndex builds an envelope index over equal-length sample series with
// the given number of envelope segments (clamped to the series length).
func NewIndex(collection []uncertain.SampleSeries, segments int) (*Index, error) {
	if len(collection) == 0 {
		return nil, errors.New("munich: NewIndex: empty collection")
	}
	if segments < 1 {
		segments = 1
	}
	n := collection[0].Len()
	if segments > n {
		segments = n
	}
	idx := &Index{segments: segments, length: n, series: collection}
	idx.spans = idx.segmentSpans()
	for _, s := range collection {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.Len() != n {
			return nil, fmt.Errorf("munich: NewIndex: series %d has length %d, want %d", s.ID, s.Len(), n)
		}
		idx.entries = append(idx.entries, buildEntry(s, segments))
	}
	return idx, nil
}

func buildEntry(s uncertain.SampleSeries, segments int) indexEntry {
	e := indexEntry{lo: make([]float64, segments), hi: make([]float64, segments)}
	n := s.Len()
	for seg := 0; seg < segments; seg++ {
		start := seg * n / segments
		end := (seg + 1) * n / segments
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := start; i < end; i++ {
			l, h := s.MinMaxAt(i)
			lo = math.Min(lo, l)
			hi = math.Max(hi, h)
		}
		e.lo[seg] = lo
		e.hi[seg] = hi
	}
	return e
}

// segmentSpans computes the [start, end) timestamp range of each segment
// for a series of the index's length. It is called once by NewIndex; query
// paths read the cached x.spans instead of re-deriving (and re-allocating)
// the spans per candidate.
func (x *Index) segmentSpans() [][2]int {
	spans := make([][2]int, x.segments)
	for seg := 0; seg < x.segments; seg++ {
		spans[seg] = [2]int{seg * x.length / x.segments, (seg + 1) * x.length / x.segments}
	}
	return spans
}

// lowerBound returns a lower bound on every feasible Euclidean distance
// between materialisations of the query and entry i, computed segment-wise:
// within a segment the envelopes bound every per-timestamp interval, so the
// minimal per-timestamp gap between envelopes, squared and summed over the
// segment's width, lower-bounds the true squared distance.
func (x *Index) lowerBound(q indexEntry, i int) float64 {
	c := x.entries[i]
	var acc float64
	for seg := 0; seg < x.segments; seg++ {
		var gap float64
		switch {
		case q.lo[seg] > c.hi[seg]:
			gap = q.lo[seg] - c.hi[seg]
		case c.lo[seg] > q.hi[seg]:
			gap = c.lo[seg] - q.hi[seg]
		default:
			continue
		}
		width := float64(x.spans[seg][1] - x.spans[seg][0])
		acc += gap * gap * width
	}
	return math.Sqrt(acc)
}

// Len returns the number of indexed series.
func (x *Index) Len() int { return len(x.series) }

// LowerBoundBetween returns the envelope-level lower bound on every feasible
// Euclidean distance between the indexed series at positions qi and ci. It
// is the filter device exposed for callers (such as the query engine) whose
// queries are themselves members of the indexed collection, so the query
// entry is already built and the bound costs O(segments) with no allocation.
func (x *Index) LowerBoundBetween(qi, ci int) float64 {
	return x.lowerBound(x.entries[qi], ci)
}

// FilterStats reports how much work the filter saved.
type FilterStats struct {
	Candidates int // total candidates inspected
	Pruned     int // discarded by the envelope lower bound
}

// Filter returns the positions (indexes into the indexed collection) of all
// candidates whose envelope lower bound does not exceed eps, excluding
// selfID (the query's own series ID, -1 to keep everything).
func (x *Index) Filter(q uncertain.SampleSeries, eps float64, selfID int) ([]int, FilterStats, error) {
	if err := q.Validate(); err != nil {
		return nil, FilterStats{}, err
	}
	if q.Len() != x.length {
		return nil, FilterStats{}, fmt.Errorf("munich: Filter: query length %d, index length %d", q.Len(), x.length)
	}
	qe := buildEntry(q, x.segments)
	var out []int
	stats := FilterStats{}
	for i := range x.entries {
		if x.series[i].ID == selfID {
			continue
		}
		stats.Candidates++
		if x.lowerBound(qe, i) > eps {
			stats.Pruned++
			continue
		}
		out = append(out, i)
	}
	return out, stats, nil
}

// RangeQuery runs the full filter-and-refine pipeline: envelope filter,
// exact bounding-interval prune, then probability counting on the
// survivors. It returns the IDs of matching series and the filter
// statistics.
func (x *Index) RangeQuery(q uncertain.SampleSeries, eps, tau float64, opts Options) ([]int, FilterStats, error) {
	candidates, stats, err := x.Filter(q, eps, q.ID)
	if err != nil {
		return nil, stats, err
	}
	matcher := Matcher{Eps: eps, Tau: tau, Opts: opts}
	var out []int
	for _, i := range candidates {
		ok, err := matcher.Matches(q, x.series[i])
		if err != nil {
			return nil, stats, fmt.Errorf("munich: refining candidate %d: %w", x.series[i].ID, err)
		}
		if ok {
			out = append(out, x.series[i].ID)
		}
	}
	return out, stats, nil
}
