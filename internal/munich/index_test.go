package munich

import (
	"testing"

	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
)

// indexCollection builds a collection of noisy sample series around
// distinct base levels.
func indexCollection(t *testing.T, n, length, samples int) []uncertain.SampleSeries {
	t.Helper()
	rng := stats.NewRand(19)
	out := make([]uncertain.SampleSeries, n)
	for id := 0; id < n; id++ {
		base := float64(id) * 0.5
		rows := make([][]float64, length)
		for i := range rows {
			row := make([]float64, samples)
			for j := range row {
				row[j] = base + rng.NormFloat64()*0.1
			}
			rows[i] = row
		}
		out[id] = uncertain.SampleSeries{Samples: rows, ID: id}
	}
	return out
}

func TestIndexNoFalseDismissals(t *testing.T) {
	coll := indexCollection(t, 12, 8, 3)
	idx, err := NewIndex(coll, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := coll[0]
	for _, eps := range []float64{0.5, 1, 2, 5} {
		kept, _, err := idx.Filter(q, eps, q.ID)
		if err != nil {
			t.Fatal(err)
		}
		keptSet := make(map[int]bool)
		for _, i := range kept {
			keptSet[i] = true
		}
		// Every candidate with true lower bound <= eps must survive the
		// envelope filter (the envelope bound is looser).
		for i, c := range coll {
			if c.ID == q.ID {
				continue
			}
			lo, _, err := Bounds(q, c)
			if err != nil {
				t.Fatal(err)
			}
			if lo <= eps && !keptSet[i] {
				t.Errorf("eps=%v: candidate %d (true lower bound %v) was falsely dismissed", eps, c.ID, lo)
			}
		}
	}
}

func TestIndexPrunesDistantCandidates(t *testing.T) {
	coll := indexCollection(t, 12, 8, 3)
	idx, err := NewIndex(coll, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A tight eps from series 0 must prune the far-away series.
	_, stats, err := idx.Filter(coll[0], 0.8, coll[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned == 0 {
		t.Error("expected the envelope filter to prune distant candidates")
	}
	if stats.Candidates != 11 {
		t.Errorf("candidates = %d, want 11", stats.Candidates)
	}
}

func TestIndexRangeQueryMatchesDirectScan(t *testing.T) {
	coll := indexCollection(t, 10, 6, 3)
	idx, err := NewIndex(coll, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Estimator: EstimatorExact}
	m := Matcher{Eps: 1.2, Tau: 0.5, Opts: opts}
	q := coll[2]

	direct, err := m.RangeQuery(q, withoutID(coll, q.ID))
	if err != nil {
		t.Fatal(err)
	}
	indexed, _, err := idx.RangeQuery(q, 1.2, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(indexed) {
		t.Fatalf("direct %v vs indexed %v", direct, indexed)
	}
	for i := range direct {
		if direct[i] != indexed[i] {
			t.Fatalf("direct %v vs indexed %v", direct, indexed)
		}
	}
}

func withoutID(coll []uncertain.SampleSeries, id int) []uncertain.SampleSeries {
	var out []uncertain.SampleSeries
	for _, c := range coll {
		if c.ID != id {
			out = append(out, c)
		}
	}
	return out
}

func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex(nil, 4); err == nil {
		t.Error("empty collection should error")
	}
	coll := indexCollection(t, 3, 6, 2)
	ragged := append([]uncertain.SampleSeries{}, coll...)
	ragged[1] = uncertain.SampleSeries{Samples: [][]float64{{1}}, ID: 1}
	if _, err := NewIndex(ragged, 2); err == nil {
		t.Error("ragged lengths should error")
	}
	idx, err := NewIndex(coll, 100) // clamps to length
	if err != nil {
		t.Fatal(err)
	}
	short := uncertain.SampleSeries{Samples: [][]float64{{1}}, ID: 9}
	if _, _, err := idx.Filter(short, 1, -1); err == nil {
		t.Error("mismatched query length should error")
	}
	if _, _, err := idx.Filter(uncertain.SampleSeries{}, 1, -1); err == nil {
		t.Error("invalid query should error")
	}
}

func TestIndexSegmentClamping(t *testing.T) {
	coll := indexCollection(t, 4, 5, 2)
	idx, err := NewIndex(coll, 0) // clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	if idx.segments != 1 {
		t.Errorf("segments = %d, want 1", idx.segments)
	}
	idx2, err := NewIndex(coll, 99)
	if err != nil {
		t.Fatal(err)
	}
	if idx2.segments != 5 {
		t.Errorf("segments = %d, want 5 (series length)", idx2.segments)
	}
}

// BenchmarkIndexFilter measures the envelope filter walk. The segment
// spans are precomputed in NewIndex, so the per-candidate lower bound must
// not allocate; allocs/op here is the regression guard (it was one
// [][2]int per candidate before the spans were hoisted).
func BenchmarkIndexFilter(b *testing.B) {
	rng := stats.NewRand(19)
	coll := make([]uncertain.SampleSeries, 128)
	for id := range coll {
		base := float64(id) * 0.2
		rows := make([][]float64, 64)
		for i := range rows {
			row := make([]float64, 5)
			for j := range row {
				row[j] = base + rng.NormFloat64()*0.1
			}
			rows[i] = row
		}
		coll[id] = uncertain.SampleSeries{Samples: rows, ID: id}
	}
	idx, err := NewIndex(coll, 8)
	if err != nil {
		b.Fatal(err)
	}
	q := coll[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := idx.Filter(q, 3, q.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLowerBoundBetweenMatchesFilterBound(t *testing.T) {
	coll := indexCollection(t, 10, 8, 3)
	idx, err := NewIndex(coll, 4)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 10 {
		t.Fatalf("Len = %d, want 10", idx.Len())
	}
	// LowerBoundBetween must agree with the bound the Filter walk computes
	// for the same query series (entries are built identically).
	qe := BuildEnvelope(coll[2], idx.segments)
	for ci := range coll {
		want := idx.lowerBound(qe, ci)
		if got := idx.LowerBoundBetween(2, ci); got != want {
			t.Errorf("LowerBoundBetween(2, %d) = %v, want %v", ci, got, want)
		}
	}
	// And it must lower-bound the exact interval bound.
	for ci := range coll {
		lo, _, err := Bounds(coll[2], coll[ci])
		if err != nil {
			t.Fatal(err)
		}
		if got := idx.LowerBoundBetween(2, ci); got > lo+1e-12 {
			t.Errorf("envelope bound %v exceeds exact lower bound %v for candidate %d", got, lo, ci)
		}
	}
}
