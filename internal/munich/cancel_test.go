package munich

import (
	"errors"
	"math/rand"
	"testing"

	"uncertts/internal/qerr"
	"uncertts/internal/uncertain"
)

// cancelSeries builds a deterministic sample series long enough that every
// estimator takes multiple poll strides.
func cancelSeries(id int, n, perTS int) uncertain.SampleSeries {
	rng := rand.New(rand.NewSource(int64(id) + 5))
	samples := make([][]float64, n)
	for i := range samples {
		row := make([]float64, perTS)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		samples[i] = row
	}
	return uncertain.SampleSeries{Samples: samples, ID: id}
}

// TestProbabilityCutoffCancelStopsEveryEstimator asserts each estimator
// honours a closed done channel with a typed cancellation, and that a nil
// done computes exactly the uncancelled value.
func TestProbabilityCutoffCancelStopsEveryEstimator(t *testing.T) {
	closed := make(chan struct{})
	close(closed)
	cases := []struct {
		name string
		n    int // series length; the exact estimator needs one whose
		// enumeration fits its combination cap
		opts Options
	}{
		{"convolution", 24, Options{Estimator: EstimatorConvolution, Bins: 128}},
		{"montecarlo", 24, Options{Estimator: EstimatorMonteCarlo, MonteCarloSamples: 5000}},
		{"exact", 8, Options{Estimator: EstimatorExact, MaxExactCombos: 1 << 20}},
		{"auto", 24, Options{}},
	}
	for _, tc := range cases {
		x, y := cancelSeries(0, tc.n, 3), cancelSeries(1, tc.n, 3)
		_, complete, err := ProbabilityCutoffCancel(x, y, 4, -1, tc.opts, closed)
		if !errors.Is(err, qerr.ErrCancelled) {
			t.Errorf("%s: err = %v, want ErrCancelled", tc.name, err)
		}
		if complete {
			t.Errorf("%s: cancelled computation reported complete", tc.name)
		}

		want, wantComplete, err := ProbabilityCutoff(x, y, 4, -1, tc.opts)
		if err != nil || !wantComplete {
			t.Fatalf("%s: uncancelled reference failed: %v", tc.name, err)
		}
		got, _, err := ProbabilityCutoffCancel(x, y, 4, -1, tc.opts, nil)
		if err != nil || got != want {
			t.Errorf("%s: nil done gave %v (%v), want %v", tc.name, got, err, want)
		}
	}
}
