package munich

import (
	"math"
	"math/rand"
	"testing"

	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

// tinySeries builds a SampleSeries from explicit samples.
func tinySeries(id int, samples ...[]float64) uncertain.SampleSeries {
	return uncertain.SampleSeries{Samples: samples, ID: id}
}

// bruteForceProbability enumerates every combination pair directly; usable
// only for very small inputs, it is the ground truth for the estimators.
func bruteForceProbability(x, y uncertain.SampleSeries, eps float64) float64 {
	n := x.Len()
	var xs, ys [][]float64
	var build func(s uncertain.SampleSeries, prefix []float64, i int, out *[][]float64)
	build = func(s uncertain.SampleSeries, prefix []float64, i int, out *[][]float64) {
		if i == n {
			cp := make([]float64, n)
			copy(cp, prefix)
			*out = append(*out, cp)
			return
		}
		for _, v := range s.Samples[i] {
			prefix[i] = v
			build(s, prefix, i+1, out)
		}
	}
	build(x, make([]float64, n), 0, &xs)
	build(y, make([]float64, n), 0, &ys)
	count, total := 0, 0
	for _, a := range xs {
		for _, b := range ys {
			var d2 float64
			for i := range a {
				d := a[i] - b[i]
				d2 += d * d
			}
			if math.Sqrt(d2) <= eps {
				count++
			}
			total++
		}
	}
	return float64(count) / float64(total)
}

func TestExactMatchesBruteForce(t *testing.T) {
	x := tinySeries(0,
		[]float64{0, 1},
		[]float64{2, 3},
		[]float64{-1, 0.5},
	)
	y := tinySeries(1,
		[]float64{0.5, 1.5},
		[]float64{2.5, 2},
		[]float64{0, -0.5},
	)
	for _, eps := range []float64{0, 0.5, 1, 1.5, 2, 3, 10} {
		want := bruteForceProbability(x, y, eps)
		got, err := Probability(x, y, eps, Options{Estimator: EstimatorExact})
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("eps=%v: exact=%v bruteforce=%v", eps, got, want)
		}
	}
}

func TestConvolutionApproximatesExact(t *testing.T) {
	rng := stats.NewRand(4)
	samples := func() [][]float64 {
		out := make([][]float64, 6)
		for i := range out {
			row := make([]float64, 4)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			out[i] = row
		}
		return out
	}
	x := uncertain.SampleSeries{Samples: samples(), ID: 0}
	y := uncertain.SampleSeries{Samples: samples(), ID: 1}
	for _, eps := range []float64{1, 2, 3, 4} {
		exact, err := Probability(x, y, eps, Options{Estimator: EstimatorExact})
		if err != nil {
			t.Fatal(err)
		}
		conv, err := Probability(x, y, eps, Options{Estimator: EstimatorConvolution, Bins: 8192})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(conv, exact, 0.02) {
			t.Errorf("eps=%v: convolution=%v exact=%v", eps, conv, exact)
		}
	}
}

func TestMonteCarloApproximatesExact(t *testing.T) {
	x := tinySeries(0, []float64{0, 1}, []float64{2, 3})
	y := tinySeries(1, []float64{0.5, 1.5}, []float64{2.5, 2})
	for _, eps := range []float64{0.5, 1, 2} {
		exact, err := Probability(x, y, eps, Options{Estimator: EstimatorExact})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := Probability(x, y, eps, Options{Estimator: EstimatorMonteCarlo, MonteCarloSamples: 50000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(mc, exact, 0.02) {
			t.Errorf("eps=%v: montecarlo=%v exact=%v", eps, mc, exact)
		}
	}
}

func TestAutoFallsBackWhenTooLarge(t *testing.T) {
	// 20 timestamps x 5 samples: 5^10 per half >> cap, must fall back and
	// still produce a sane probability.
	rng := stats.NewRand(5)
	mk := func(id int) uncertain.SampleSeries {
		samples := make([][]float64, 20)
		for i := range samples {
			row := make([]float64, 5)
			for j := range row {
				row[j] = rng.NormFloat64() * 0.1
			}
			samples[i] = row
		}
		return uncertain.SampleSeries{Samples: samples, ID: id}
	}
	x, y := mk(0), mk(1)
	p, err := Probability(x, y, 2.0, Options{Estimator: EstimatorAuto, MaxExactCombos: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 {
		t.Errorf("probability out of range: %v", p)
	}
	// The exact estimator must refuse.
	if _, err := Probability(x, y, 2.0, Options{Estimator: EstimatorExact, MaxExactCombos: 1000}); err == nil {
		t.Error("exact estimator should report the cap excess")
	}
}

func TestProbabilityMonotoneInEps(t *testing.T) {
	x := tinySeries(0, []float64{0, 1}, []float64{1, 2}, []float64{0, 3})
	y := tinySeries(1, []float64{1, 2}, []float64{0, 1}, []float64{2, 2})
	prev := -1.0
	for eps := 0.0; eps <= 6; eps += 0.25 {
		p, err := Probability(x, y, eps, Options{Estimator: EstimatorExact})
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 {
			t.Errorf("probability must be monotone in eps: P(%v)=%v < %v", eps, p, prev)
		}
		prev = p
	}
	if prev != 1 {
		t.Errorf("probability at huge eps should be 1, got %v", prev)
	}
}

func TestProbabilityIdenticalCertainSeries(t *testing.T) {
	// One sample per timestamp makes the series certain.
	x := tinySeries(0, []float64{1}, []float64{2})
	p, err := Probability(x, x, 0, Options{Estimator: EstimatorExact})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("identical certain series at eps=0: p=%v, want 1", p)
	}
	// Convolution path with all-zero distances.
	p, err = Probability(x, x, 0, Options{Estimator: EstimatorConvolution})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("convolution on zero distances: p=%v, want 1", p)
	}
}

func TestProbabilityValidation(t *testing.T) {
	x := tinySeries(0, []float64{1})
	y := tinySeries(1, []float64{1}, []float64{2})
	if _, err := Probability(x, y, 1, Options{}); err == nil {
		t.Error("length mismatch should error")
	}
	empty := uncertain.SampleSeries{}
	if _, err := Probability(empty, empty, 1, Options{}); err == nil {
		t.Error("empty series should error")
	}
	p, err := Probability(x, x, -1, Options{})
	if err != nil || p != 0 {
		t.Errorf("negative eps: p=%v err=%v, want 0, nil", p, err)
	}
}

func TestDTWRequiresMonteCarlo(t *testing.T) {
	x := tinySeries(0, []float64{1}, []float64{2})
	if _, err := Probability(x, x, 1, Options{UseDTW: true, Estimator: EstimatorExact}); err == nil {
		t.Error("DTW with exact estimator should error")
	}
	p, err := Probability(x, x, 0.5, Options{UseDTW: true, Estimator: EstimatorMonteCarlo, MonteCarloSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("DTW probability of identical certain series = %v, want 1", p)
	}
	// Auto with UseDTW routes to Monte Carlo.
	if _, err := Probability(x, x, 0.5, Options{UseDTW: true, MonteCarloSamples: 10}); err != nil {
		t.Errorf("auto+DTW should work via Monte Carlo: %v", err)
	}
}

func TestBounds(t *testing.T) {
	x := tinySeries(0, []float64{0, 1}) // interval [0, 1]
	y := tinySeries(1, []float64{3, 4}) // interval [3, 4]
	lo, hi, err := Bounds(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(lo, 2, 1e-12) { // closest: 1 vs 3
		t.Errorf("lo = %v, want 2", lo)
	}
	if !almostEqual(hi, 4, 1e-12) { // farthest: 0 vs 4
		t.Errorf("hi = %v, want 4", hi)
	}
	// Overlapping intervals give a zero lower bound.
	z := tinySeries(2, []float64{0.5, 2})
	lo, _, err = Bounds(x, z)
	if err != nil || lo != 0 {
		t.Errorf("overlapping intervals: lo=%v err=%v, want 0", lo, err)
	}
	if _, _, err := Bounds(x, tinySeries(3, []float64{1}, []float64{2})); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestBoundsContainAllDistances(t *testing.T) {
	rng := stats.NewRand(8)
	mk := func(id int) uncertain.SampleSeries {
		samples := make([][]float64, 4)
		for i := range samples {
			row := make([]float64, 3)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			samples[i] = row
		}
		return uncertain.SampleSeries{Samples: samples, ID: id}
	}
	x, y := mk(0), mk(1)
	lo, hi, err := Bounds(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Exact probability at the bounds must be 0 just below lo and 1 at hi.
	pLo, _ := Probability(x, y, lo-1e-9, Options{Estimator: EstimatorExact})
	pHi, _ := Probability(x, y, hi, Options{Estimator: EstimatorExact})
	if pLo != 0 {
		t.Errorf("probability below the lower bound = %v, want 0", pLo)
	}
	if pHi != 1 {
		t.Errorf("probability at the upper bound = %v, want 1", pHi)
	}
}

func TestPrune(t *testing.T) {
	x := tinySeries(0, []float64{0, 1})
	y := tinySeries(1, []float64{3, 4})
	dec, err := Prune(x, y, 10)
	if err != nil || dec != PruneAccept {
		t.Errorf("generous eps: dec=%v err=%v, want accept", dec, err)
	}
	dec, err = Prune(x, y, 1)
	if err != nil || dec != PruneReject {
		t.Errorf("tiny eps: dec=%v err=%v, want reject", dec, err)
	}
	dec, err = Prune(x, y, 3)
	if err != nil || dec != PruneUnknown {
		t.Errorf("straddling eps: dec=%v err=%v, want unknown", dec, err)
	}
}

func TestMatcherRangeQuery(t *testing.T) {
	rng := stats.NewRand(13)
	noisy := func(id int, base float64) uncertain.SampleSeries {
		samples := make([][]float64, 5)
		for i := range samples {
			row := make([]float64, 3)
			for j := range row {
				row[j] = base + rng.NormFloat64()*0.05
			}
			samples[i] = row
		}
		return uncertain.SampleSeries{Samples: samples, ID: id}
	}
	q := noisy(0, 0)
	near := noisy(1, 0.1)
	far := noisy(2, 5)
	m := Matcher{Eps: 1, Tau: 0.5, Opts: Options{Estimator: EstimatorExact}}
	got, err := m.RangeQuery(q, []uncertain.SampleSeries{near, far})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("range query = %v, want [1]", got)
	}
}

func TestMatcherPropagatesErrors(t *testing.T) {
	q := tinySeries(0, []float64{1})
	bad := uncertain.SampleSeries{Samples: [][]float64{{}}, ID: 7}
	m := Matcher{Eps: 1, Tau: 0.5}
	if _, err := m.RangeQuery(q, []uncertain.SampleSeries{bad}); err == nil {
		t.Error("invalid candidate should surface an error")
	}
}

func TestEstimatorString(t *testing.T) {
	names := map[Estimator]string{
		EstimatorAuto:        "auto",
		EstimatorExact:       "exact",
		EstimatorConvolution: "convolution",
		EstimatorMonteCarlo:  "montecarlo",
		Estimator(9):         "Estimator(9)",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
}

func TestExactHandlesOddSplit(t *testing.T) {
	// Odd number of timestamps exercises the n/2 split with unequal halves.
	x := tinySeries(0, []float64{0, 1}, []float64{1}, []float64{2, 0}, []float64{1}, []float64{0.5, 1.5})
	y := tinySeries(1, []float64{1}, []float64{0, 2}, []float64{1, 1.5}, []float64{0}, []float64{1})
	for _, eps := range []float64{1, 2, 3} {
		want := bruteForceProbability(x, y, eps)
		got, err := Probability(x, y, eps, Options{Estimator: EstimatorExact})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("eps=%v: got %v, want %v", eps, got, want)
		}
	}
}

// randomSampleSeries draws a sample series around a base walk.
func randomSampleSeries(rng *rand.Rand, id, n, samples int, spread, offset float64) uncertain.SampleSeries {
	rows := make([][]float64, n)
	base := offset
	for i := range rows {
		base += rng.NormFloat64() * 0.3
		row := make([]float64, samples)
		for j := range row {
			row[j] = base + rng.NormFloat64()*spread
		}
		rows[i] = row
	}
	return uncertain.SampleSeries{Samples: rows, ID: id}
}

// TestProbUpperBoundDominatesProbability: the per-timestamp sample-pair
// bound must never fall below the exact probability.
func TestProbUpperBoundDominatesProbability(t *testing.T) {
	rng := stats.NewRand(23)
	for trial := 0; trial < 30; trial++ {
		x := randomSampleSeries(rng, 0, 6, 3, 0.2, 0)
		y := randomSampleSeries(rng, 1, 6, 3, 0.2, rng.Float64()*2)
		for _, eps := range []float64{0.3, 1, 2, 4} {
			up, err := ProbUpperBound(x, y, eps)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := Probability(x, y, eps, Options{Estimator: EstimatorExact})
			if err != nil {
				t.Fatal(err)
			}
			if up < exact-1e-12 {
				t.Fatalf("trial %d eps=%v: upper bound %v below exact probability %v", trial, eps, up, exact)
			}
		}
	}
}

func TestProbUpperBoundEdgeCases(t *testing.T) {
	x := tinySeries(0, []float64{0, 0}, []float64{0, 0})
	y := tinySeries(1, []float64{5, 5}, []float64{5, 5})
	// Distance is exactly sqrt(50); any eps below excludes everything.
	up, err := ProbUpperBound(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if up != 0 {
		t.Errorf("disjoint far series: bound = %v, want 0", up)
	}
	if p, _ := ProbUpperBound(x, y, -1); p != 0 {
		t.Errorf("negative eps: bound = %v, want 0", p)
	}
	if _, err := ProbUpperBound(x, tinySeries(2, []float64{1}), 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ProbUpperBound(uncertain.SampleSeries{}, y, 1); err == nil {
		t.Error("invalid series should error")
	}
	// Identical certain series: every materialisation is at distance 0.
	z := tinySeries(3, []float64{1, 1}, []float64{2, 2})
	if p, _ := ProbUpperBound(z, z, 0); p != 1 {
		t.Errorf("identical series at eps=0: bound = %v, want 1", p)
	}
}

// TestProbabilityCutoffAgreesWithProbability: a completed cutoff run must
// return exactly Probability's value; an abandoned one must imply the full
// estimate is below the cutoff — across every estimator.
func TestProbabilityCutoffAgreesWithProbability(t *testing.T) {
	rng := stats.NewRand(29)
	estimators := []Options{
		{Estimator: EstimatorExact},
		{Estimator: EstimatorConvolution, Bins: 256},
		{Estimator: EstimatorMonteCarlo, MonteCarloSamples: 400},
		{Bins: 256}, // Auto
	}
	for trial := 0; trial < 20; trial++ {
		x := randomSampleSeries(rng, 0, 8, 2, 0.2, 0)
		y := randomSampleSeries(rng, 1, 8, 2, 0.2, rng.Float64()*3)
		for _, opts := range estimators {
			for _, eps := range []float64{0.5, 2, 5} {
				full, err := Probability(x, y, eps, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, cutoff := range []float64{0.05, 0.5, 0.99} {
					p, complete, err := ProbabilityCutoff(x, y, eps, cutoff, opts)
					if err != nil {
						t.Fatal(err)
					}
					if complete {
						if p != full {
							t.Fatalf("estimator %v eps=%v cutoff=%v: completed cutoff run returned %v, Probability %v",
								opts.Estimator, eps, cutoff, p, full)
						}
						continue
					}
					if full >= cutoff {
						t.Fatalf("estimator %v eps=%v: abandoned at cutoff %v but full estimate is %v",
							opts.Estimator, eps, cutoff, full)
					}
				}
			}
		}
	}
}

func TestProbabilityCutoffNeverAbandonsAtMinusInf(t *testing.T) {
	rng := stats.NewRand(31)
	x := randomSampleSeries(rng, 0, 6, 3, 0.3, 0)
	y := randomSampleSeries(rng, 1, 6, 3, 0.3, 4)
	for _, opts := range []Options{{Estimator: EstimatorConvolution, Bins: 128}, {Estimator: EstimatorMonteCarlo, MonteCarloSamples: 200}} {
		p, complete, err := ProbabilityCutoff(x, y, 0.1, math.Inf(-1), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !complete {
			t.Fatalf("estimator %v: abandoned with cutoff -Inf (p=%v)", opts.Estimator, p)
		}
	}
}

func TestExactFeasible(t *testing.T) {
	small := tinySeries(0, []float64{0, 1}, []float64{1, 2}, []float64{3})
	if !(Options{}).ExactFeasible(small, small) {
		t.Error("tiny pair should be exactly countable")
	}
	if (Options{MaxExactCombos: 3}).ExactFeasible(small, small) {
		t.Error("cap of 3 cannot fit a 4-combination half")
	}
	if (Options{UseDTW: true}).ExactFeasible(small, small) {
		t.Error("DTW pairs are never exactly countable")
	}
	if (Options{Estimator: EstimatorConvolution}).ExactFeasible(small, small) {
		t.Error("a forced convolution estimator never refines exactly")
	}
	if (Options{Estimator: EstimatorMonteCarlo}).ExactFeasible(small, small) {
		t.Error("a forced Monte Carlo estimator never refines exactly")
	}
	if (Options{}).ExactFeasible(small, tinySeries(1, []float64{1})) {
		t.Error("length mismatch is not feasible")
	}
	// Feasibility must agree with the estimator actually taking the exact
	// path: a large pair falls back, and ExactFeasible must say so.
	rng := stats.NewRand(37)
	big := randomSampleSeries(rng, 2, 30, 4, 0.2, 0)
	if (Options{}).ExactFeasible(big, big) {
		t.Error("16^15 combinations per half cannot fit the default cap")
	}
}
