// Package munich implements the probabilistic similarity matcher of Aßfalg
// et al. (SSDBM 2009), which the paper calls MUNICH (Section 2.1).
//
// MUNICH models an uncertain series by repeated observations per timestamp.
// Conceptually, the two series are materialised into every possible certain
// series (one observation picked per timestamp), the Lp distance is computed
// for every combination, and
//
//	Pr(distance(X, Y) <= eps) = |{d in dists(X,Y) : d <= eps}| / |dists(X,Y)|
//
// The naive materialisation has |dists| = sx^n * sy^n elements and is
// infeasible; this package computes the count without materialising:
//
//   - exact, via meet-in-the-middle over the per-timestamp squared-difference
//     multisets (the distance is a sum of independent per-timestamp terms, so
//     combinations factor into two halves that are enumerated and merged);
//   - approximate, via histogram convolution of the per-timestamp multisets,
//     with resolution controlled by the bin count;
//   - Monte Carlo, by sampling materialisations, usable with any inner
//     distance including DTW.
//
// Upper/lower distance bounds from the per-timestamp minimal bounding
// intervals provide the pruning step of the original paper: a candidate
// whose upper bound is within eps is accepted without counting, one whose
// lower bound exceeds eps is rejected without counting.
package munich

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"uncertts/internal/distance"
	"uncertts/internal/qerr"
	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
)

// Estimator selects how the distance-count probability is computed.
type Estimator int

const (
	// EstimatorAuto picks Exact when the meet-in-the-middle enumeration
	// stays within MaxExactCombos, Convolution otherwise.
	EstimatorAuto Estimator = iota
	// EstimatorExact forces the exact meet-in-the-middle count.
	EstimatorExact
	// EstimatorConvolution forces the histogram-convolution approximation.
	EstimatorConvolution
	// EstimatorMonteCarlo samples materialisations; required for DTW.
	EstimatorMonteCarlo
)

func (e Estimator) String() string {
	switch e {
	case EstimatorAuto:
		return "auto"
	case EstimatorExact:
		return "exact"
	case EstimatorConvolution:
		return "convolution"
	case EstimatorMonteCarlo:
		return "montecarlo"
	default:
		return fmt.Sprintf("Estimator(%d)", int(e))
	}
}

// Options configures probability estimation.
type Options struct {
	// Estimator selects the counting strategy. Default EstimatorAuto.
	Estimator Estimator
	// MaxExactCombos caps the per-half enumeration size of the exact
	// estimator (default 1<<21). Above the cap, Auto falls back to
	// convolution.
	MaxExactCombos int
	// Bins is the histogram resolution of the convolution estimator
	// (default 4096).
	Bins int
	// MonteCarloSamples is the number of sampled materialisation pairs
	// (default 20000).
	MonteCarloSamples int
	// Seed drives the Monte Carlo estimator.
	Seed int64
	// UseDTW switches the inner distance from Euclidean to DTW. Only the
	// Monte Carlo estimator supports it.
	UseDTW bool
}

func (o Options) withDefaults() Options {
	if o.MaxExactCombos <= 0 {
		o.MaxExactCombos = 1 << 21
	}
	if o.Bins <= 0 {
		o.Bins = 4096
	}
	if o.MonteCarloSamples <= 0 {
		o.MonteCarloSamples = 20000
	}
	return o
}

// ErrNeedMonteCarlo is returned when a DTW probability is requested from a
// counting estimator; the distance no longer decomposes per timestamp, so
// only sampling applies.
var ErrNeedMonteCarlo = errors.New("munich: DTW probabilities require EstimatorMonteCarlo")

// Probability returns Pr(distance(X, Y) <= eps) under the MUNICH semantics.
func Probability(x, y uncertain.SampleSeries, eps float64, opts Options) (float64, error) {
	p, _, err := ProbabilityCutoff(x, y, eps, math.Inf(-1), opts)
	return p, err
}

// ProbabilityCutoff is Probability with an estimator-native early
// rejection: the computation may stop — returning complete = false — as
// soon as the final estimate is provably below cutoff in the estimator's
// own arithmetic (the convolution CDF at eps^2 only decreases as further
// timestamps convolve in; a Monte Carlo tally cannot beat hits-so-far plus
// samples-remaining). A completed call returns exactly Probability's
// value, so a threshold test against cutoff decides identically either
// way; cutoff = -Inf never abandons. The exact estimator has no prefix
// structure (meet-in-the-middle) and always completes.
func ProbabilityCutoff(x, y uncertain.SampleSeries, eps, cutoff float64, opts Options) (float64, bool, error) {
	return ProbabilityCutoffCancel(x, y, eps, cutoff, opts, nil)
}

// ProbabilityCutoffCancel is ProbabilityCutoff with cooperative
// cancellation: the combination counting polls done between convolution
// steps, Monte Carlo sample batches and exact-enumeration blocks and, once
// done is closed, returns an error wrapping qerr.ErrCancelled — so even a
// single slow refine stops within a sliver of its runtime instead of
// holding its executor shard. A nil done never cancels and computes
// exactly ProbabilityCutoff.
func ProbabilityCutoffCancel(x, y uncertain.SampleSeries, eps, cutoff float64, opts Options, done <-chan struct{}) (float64, bool, error) {
	if err := x.Validate(); err != nil {
		return 0, false, err
	}
	if err := y.Validate(); err != nil {
		return 0, false, err
	}
	if x.Len() != y.Len() {
		return 0, false, fmt.Errorf("munich: series lengths differ: %d vs %d", x.Len(), y.Len())
	}
	if eps < 0 {
		return 0, true, nil
	}
	opts = opts.withDefaults()

	if opts.UseDTW {
		if opts.Estimator != EstimatorMonteCarlo && opts.Estimator != EstimatorAuto {
			return 0, false, ErrNeedMonteCarlo
		}
		return monteCarloProbability(x, y, eps, cutoff, opts, done)
	}

	switch opts.Estimator {
	case EstimatorMonteCarlo:
		return monteCarloProbability(x, y, eps, cutoff, opts, done)
	case EstimatorExact:
		p, err := exactProbability(x, y, eps, opts.MaxExactCombos, done)
		return p, err == nil, err
	case EstimatorConvolution:
		return convolutionProbability(x, y, eps, cutoff, opts.Bins, done)
	default: // Auto
		p, err := exactProbability(x, y, eps, opts.MaxExactCombos, done)
		if err == nil {
			return p, true, nil
		}
		if errors.Is(err, qerr.ErrCancelled) {
			return 0, false, err
		}
		return convolutionProbability(x, y, eps, cutoff, opts.Bins, done)
	}
}

// cancelled polls a done channel without blocking; a nil channel never
// reports cancellation.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ExactFeasible reports whether the exact meet-in-the-middle count fits
// the options' combination cap for this pair — i.e. whether Probability
// with EstimatorAuto (or EstimatorExact) resolves it exactly rather than
// approximately. Callers use it to decide whether a bound proven against
// the exact probability also bounds the estimate the refine step returns.
func (o Options) ExactFeasible(x, y uncertain.SampleSeries) bool {
	if o.UseDTW || o.Estimator == EstimatorConvolution || o.Estimator == EstimatorMonteCarlo {
		return false
	}
	o = o.withDefaults()
	n := x.Len()
	if y.Len() != n {
		return false
	}
	half := func(lo, hi int) bool {
		size := 1
		for i := lo; i < hi; i++ {
			size *= len(x.Samples[i]) * len(y.Samples[i])
			if size > o.MaxExactCombos || size <= 0 {
				return false
			}
		}
		return true
	}
	split := n / 2
	return half(0, split) && half(split, n)
}

// Bounds returns lower and upper bounds on every feasible Euclidean distance
// between materialisations of x and y, derived from the per-timestamp
// minimal bounding intervals (the pruning device of the original paper).
func Bounds(x, y uncertain.SampleSeries) (lo, hi float64, err error) {
	if err := x.Validate(); err != nil {
		return 0, 0, err
	}
	if err := y.Validate(); err != nil {
		return 0, 0, err
	}
	if x.Len() != y.Len() {
		return 0, 0, fmt.Errorf("munich: series lengths differ: %d vs %d", x.Len(), y.Len())
	}
	var lo2, hi2 float64
	for i := 0; i < x.Len(); i++ {
		xlo, xhi := x.MinMaxAt(i)
		ylo, yhi := y.MinMaxAt(i)
		// Minimal possible |xi - yi| given the bounding intervals.
		var dmin float64
		switch {
		case xlo > yhi:
			dmin = xlo - yhi
		case ylo > xhi:
			dmin = ylo - xhi
		default:
			dmin = 0 // intervals overlap
		}
		// Maximal possible |xi - yi|.
		dmax := math.Max(math.Abs(xhi-ylo), math.Abs(yhi-xlo))
		lo2 += dmin * dmin
		hi2 += dmax * dmax
	}
	return math.Sqrt(lo2), math.Sqrt(hi2), nil
}

// ProbUpperBound returns a cheap, sound upper bound on Pr(distance(X, Y) <=
// eps) without enumerating combinations. For any timestamp t the total
// squared distance is at least d_t^2 plus the sum of the minimal squared
// gaps of every other timestamp, so
//
//	Pr(dist <= eps) <= Pr(d_t^2 <= eps^2 - sum_{j != t} dmin_j^2)
//
// and the right-hand side is the fraction of sample pairs at timestamp t
// within the residual budget — an O(sx*sy) count per timestamp, versus the
// full estimator's enumeration or convolution. The bound is the minimum
// over all timestamps. A range query can reject a candidate as soon as the
// bound falls below tau — but only when the refine step is exact (see
// Options.ExactFeasible): the bound holds for the exact probability, not
// for a convolution or Monte Carlo estimate of it.
func ProbUpperBound(x, y uncertain.SampleSeries, eps float64) (float64, error) {
	if err := x.Validate(); err != nil {
		return 0, err
	}
	if err := y.Validate(); err != nil {
		return 0, err
	}
	if x.Len() != y.Len() {
		return 0, fmt.Errorf("munich: series lengths differ: %d vs %d", x.Len(), y.Len())
	}
	if eps < 0 {
		return 0, nil
	}
	n := x.Len()
	dmin2 := make([]float64, n)
	var lo2 float64
	for i := 0; i < n; i++ {
		xlo, xhi := x.MinMaxAt(i)
		ylo, yhi := y.MinMaxAt(i)
		var dmin float64
		switch {
		case xlo > yhi:
			dmin = xlo - yhi
		case ylo > xhi:
			dmin = ylo - xhi
		}
		dmin2[i] = dmin * dmin
		lo2 += dmin2[i]
	}
	eps2 := eps * eps
	best := 1.0
	for t := 0; t < n; t++ {
		budget := eps2 - (lo2 - dmin2[t])
		xs, ys := x.Samples[t], y.Samples[t]
		within := 0
		for _, a := range xs {
			for _, b := range ys {
				d := a - b
				if d*d <= budget {
					within++
				}
			}
		}
		if p := float64(within) / float64(len(xs)*len(ys)); p < best {
			best = p
		}
		if best == 0 {
			break
		}
	}
	return best, nil
}

// PruneDecision classifies a candidate against a range predicate using only
// the distance bounds.
type PruneDecision int

const (
	// PruneUnknown: the bounds straddle eps; the probability must be counted.
	PruneUnknown PruneDecision = iota
	// PruneAccept: every materialisation is within eps (probability 1).
	PruneAccept
	// PruneReject: no materialisation is within eps (probability 0).
	PruneReject
)

// Prune applies the bounding-interval test.
func Prune(x, y uncertain.SampleSeries, eps float64) (PruneDecision, error) {
	lo, hi, err := Bounds(x, y)
	if err != nil {
		return PruneUnknown, err
	}
	switch {
	case hi <= eps:
		return PruneAccept, nil
	case lo > eps:
		return PruneReject, nil
	default:
		return PruneUnknown, nil
	}
}

// squaredDiffMultiset returns the multiset of squared differences between
// the observations of x and y at timestamp i.
func squaredDiffMultiset(x, y uncertain.SampleSeries, i int) []float64 {
	xs, ys := x.Samples[i], y.Samples[i]
	out := make([]float64, 0, len(xs)*len(ys))
	for _, a := range xs {
		for _, b := range ys {
			d := a - b
			out = append(out, d*d)
		}
	}
	return out
}

// exactProbability counts combinations with total squared distance <= eps^2
// using meet-in-the-middle. If the enumeration would exceed maxCombos per
// half it returns an error; EstimatorAuto callers fall back to convolution.
func exactProbability(x, y uncertain.SampleSeries, eps float64, maxCombos int, done <-chan struct{}) (float64, error) {
	n := x.Len()
	multisets := make([][]float64, n)
	for i := 0; i < n; i++ {
		multisets[i] = squaredDiffMultiset(x, y, i)
	}
	// Split so the two halves have balanced enumeration sizes.
	split := n / 2
	sizeA, okA := productSize(multisets[:split], maxCombos)
	sizeB, okB := productSize(multisets[split:], maxCombos)
	if !okA || !okB {
		return 0, fmt.Errorf("munich: exact enumeration exceeds cap %d (halves %d x %d)", maxCombos, sizeA, sizeB)
	}
	sumsA := enumerateSums(multisets[:split])
	sumsB := enumerateSums(multisets[split:])
	if cancelled(done) {
		return 0, qerr.Cancelled(nil)
	}
	sort.Float64s(sumsB)
	eps2 := eps * eps
	var count uint64
	for ai, a := range sumsA {
		if ai%4096 == 4095 && cancelled(done) {
			return 0, qerr.Cancelled(nil)
		}
		// Number of b with a + b <= eps^2.
		idx := sort.SearchFloat64s(sumsB, math.Nextafter(eps2-a, math.Inf(1)))
		count += uint64(idx)
	}
	total := uint64(len(sumsA)) * uint64(len(sumsB))
	if total == 0 {
		return 0, errors.New("munich: empty combination space")
	}
	return float64(count) / float64(total), nil
}

// productSize returns the product of multiset sizes, capped.
func productSize(ms [][]float64, cap int) (int, bool) {
	size := 1
	for _, m := range ms {
		size *= len(m)
		if size > cap || size <= 0 {
			return size, false
		}
	}
	return size, true
}

// enumerateSums returns every sum formed by picking one element from each
// multiset. An empty slice of multisets yields the single sum 0.
func enumerateSums(ms [][]float64) []float64 {
	sums := []float64{0}
	for _, m := range ms {
		next := make([]float64, 0, len(sums)*len(m))
		for _, s := range sums {
			for _, v := range m {
				next = append(next, s+v)
			}
		}
		sums = next
	}
	return sums
}

// convCutoffMargin guards the convolution early rejection against the few
// ulps by which the partial CDF readout can drift from the final one: the
// shift-right monotonicity argument is exact-arithmetic, and the margin —
// tiny next to any meaningful probability gap — keeps it sound under
// floating point.
const convCutoffMargin = 1e-9

// binnedCDF reads the probability mass at or below eps2 off a histogram,
// interpolating the boundary bin uniformly — the readout shared by the
// final convolution answer and the early-rejection checks.
func binnedCDF(probs []float64, width, eps2 float64) float64 {
	var acc float64
	for j, p := range probs {
		upper := (float64(j) + 1) * width
		if upper <= eps2 {
			acc += p
			continue
		}
		lower := float64(j) * width
		if lower < eps2 {
			// Partial bin: assume mass uniform within the bin.
			acc += p * (eps2 - lower) / width
		}
		break
	}
	if acc > 1 {
		acc = 1
	}
	return acc
}

// convolutionProbability approximates the distribution of the total squared
// distance by repeated histogram convolution and reads off the CDF at
// eps^2. Because every per-timestamp squared difference is non-negative,
// convolving in another timestamp only moves mass towards higher bins, so
// the CDF at eps^2 is non-increasing across steps: once a partial readout
// falls below the cutoff the final estimate must too, and the scan
// abandons (complete = false).
func convolutionProbability(x, y uncertain.SampleSeries, eps, cutoff float64, bins int, done <-chan struct{}) (float64, bool, error) {
	n := x.Len()
	// Upper bound of the total squared distance fixes the histogram domain.
	var maxSum float64
	multisets := make([][]float64, n)
	for i := 0; i < n; i++ {
		m := squaredDiffMultiset(x, y, i)
		multisets[i] = m
		_, hi := stats.MinMax(m)
		maxSum += hi
	}
	if maxSum == 0 {
		// All materialisations coincide: distance 0 with probability 1.
		if eps >= 0 {
			return 1, true, nil
		}
		return 0, true, nil
	}
	eps2 := eps * eps
	width := maxSum / float64(bins)
	probs := make([]float64, bins)
	probs[0] = 1
	next := make([]float64, bins)
	for step, m := range multisets {
		if cancelled(done) {
			return 0, false, qerr.Cancelled(nil)
		}
		for i := range next {
			next[i] = 0
		}
		w := 1 / float64(len(m))
		for j, p := range probs {
			if p == 0 {
				continue
			}
			base := (float64(j) + 0.5) * width
			for _, v := range m {
				idx := int((base + v) / width)
				if idx >= bins {
					idx = bins - 1
				}
				next[idx] += p * w
			}
		}
		probs, next = next, probs
		if step < n-1 && binnedCDF(probs, width, eps2) < cutoff-convCutoffMargin {
			return 0, false, nil
		}
	}
	return binnedCDF(probs, width, eps2), true, nil
}

// monteCarloProbability samples materialisation pairs uniformly and returns
// the fraction within eps. It supports both Euclidean and DTW inner
// distances. The tally abandons (complete = false) once even an all-hit
// remainder could not lift the estimate to the cutoff — an integer-exact
// test, so the implied threshold decision matches the full run's.
func monteCarloProbability(x, y uncertain.SampleSeries, eps, cutoff float64, opts Options, done <-chan struct{}) (float64, bool, error) {
	rng := stats.SplitRand(opts.Seed, int64(x.ID)<<20|int64(y.ID))
	n := x.Len()
	total := opts.MonteCarloSamples
	bufX := make([]float64, n)
	bufY := make([]float64, n)
	hits := 0
	for s := 0; s < total; s++ {
		if s%256 == 255 && cancelled(done) {
			return 0, false, qerr.Cancelled(nil)
		}
		for i := 0; i < n; i++ {
			bufX[i] = x.Samples[i][rng.Intn(len(x.Samples[i]))]
			bufY[i] = y.Samples[i][rng.Intn(len(y.Samples[i]))]
		}
		var d float64
		var err error
		if opts.UseDTW {
			d, err = distance.DTW(bufX, bufY)
		} else {
			d, err = distance.Euclidean(bufX, bufY)
		}
		if err != nil {
			return 0, false, err
		}
		if d <= eps {
			hits++
		}
		if float64(hits+total-1-s)/float64(total) < cutoff {
			return 0, false, nil
		}
	}
	return float64(hits) / float64(total), true, nil
}

// Matcher answers probabilistic range queries PRQ(Q, C, eps, tau) over
// sample-model uncertain series (Equation 2 of the paper).
type Matcher struct {
	// Eps is the distance threshold.
	Eps float64
	// Tau is the probability threshold.
	Tau float64
	// Opts configures probability estimation.
	Opts Options
}

// Matches reports whether Pr(distance(q, c) <= Eps) >= Tau, applying the
// bounding-interval pruning before any counting.
func (m Matcher) Matches(q, c uncertain.SampleSeries) (bool, error) {
	switch dec, err := Prune(q, c, m.Eps); {
	case err != nil:
		return false, err
	case dec == PruneAccept:
		return true, nil
	case dec == PruneReject:
		return false, nil
	}
	p, err := Probability(q, c, m.Eps, m.Opts)
	if err != nil {
		return false, err
	}
	return p >= m.Tau, nil
}

// RangeQuery returns the IDs of all series in the collection that match the
// probabilistic range predicate against q.
func (m Matcher) RangeQuery(q uncertain.SampleSeries, collection []uncertain.SampleSeries) ([]int, error) {
	var out []int
	for _, c := range collection {
		ok, err := m.Matches(q, c)
		if err != nil {
			return nil, fmt.Errorf("munich: candidate %d: %w", c.ID, err)
		}
		if ok {
			out = append(out, c.ID)
		}
	}
	return out, nil
}
