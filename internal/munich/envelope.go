package munich

import (
	"fmt"
	"math"

	"uncertts/internal/uncertain"
)

// Envelope is the per-series summary of the MUNICH filter step: the
// per-timestamp minimal bounding intervals of a sample series, coarsened
// into fixed-width segments (a piecewise-constant envelope). Envelopes are
// the unit of incremental index maintenance — one can be built for a single
// series in isolation, so a mutable corpus can keep them up to date on
// insert without rebuilding a whole Index.
type Envelope struct {
	// Lo and Hi hold the per-segment envelope minimum and maximum.
	Lo, Hi []float64
}

// Segments returns the number of envelope segments.
func (e Envelope) Segments() int { return len(e.Lo) }

// SegmentSpans returns the [start, end) timestamp range of each of the
// given number of segments for series of the given length. Segments are
// clamped to [1, length]; every envelope comparison must use the spans of
// the same (length, segments) geometry its envelopes were built with.
func SegmentSpans(length, segments int) [][2]int {
	segments = ClampSegments(length, segments)
	spans := make([][2]int, segments)
	for seg := 0; seg < segments; seg++ {
		spans[seg] = [2]int{seg * length / segments, (seg + 1) * length / segments}
	}
	return spans
}

// ClampSegments resolves a requested segment count against a series length:
// at least 1, at most the length.
func ClampSegments(length, segments int) int {
	if segments < 1 {
		segments = 1
	}
	if segments > length {
		segments = length
	}
	return segments
}

// BuildEnvelope summarises one sample series into a segment envelope.
func BuildEnvelope(s uncertain.SampleSeries, segments int) Envelope {
	n := s.Len()
	segments = ClampSegments(n, segments)
	e := Envelope{Lo: make([]float64, segments), Hi: make([]float64, segments)}
	BuildEnvelopeInto(e, s)
	return e
}

// BuildEnvelopeInto fills a pre-shaped envelope (Lo and Hi already sized to
// the clamped segment count) from a sample series — the allocation-free form
// arena-backed corpora use, with Lo and Hi pointing into envelope arenas.
func BuildEnvelopeInto(e Envelope, s uncertain.SampleSeries) {
	n := s.Len()
	segments := len(e.Lo)
	for seg := 0; seg < segments; seg++ {
		start := seg * n / segments
		end := (seg + 1) * n / segments
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := start; i < end; i++ {
			l, h := s.MinMaxAt(i)
			lo = math.Min(lo, l)
			hi = math.Max(hi, h)
		}
		e.Lo[seg] = lo
		e.Hi[seg] = hi
	}
}

// EnvelopeLowerBound returns a lower bound on every feasible Euclidean
// distance between materialisations of the two summarised series, computed
// segment-wise: within a segment the envelopes bound every per-timestamp
// interval, so the minimal per-timestamp gap between envelopes, squared and
// summed over the segment's width, lower-bounds the true squared distance.
// spans must be the SegmentSpans geometry both envelopes were built with.
func EnvelopeLowerBound(a, b Envelope, spans [][2]int) float64 {
	var acc float64
	for seg := range spans {
		var gap float64
		switch {
		case a.Lo[seg] > b.Hi[seg]:
			gap = a.Lo[seg] - b.Hi[seg]
		case b.Lo[seg] > a.Hi[seg]:
			gap = b.Lo[seg] - a.Hi[seg]
		default:
			continue
		}
		width := float64(spans[seg][1] - spans[seg][0])
		acc += gap * gap * width
	}
	return math.Sqrt(acc)
}

// CheckEnvelope validates that an envelope matches a span geometry.
func CheckEnvelope(e Envelope, spans [][2]int) error {
	if len(e.Lo) != len(spans) || len(e.Hi) != len(spans) {
		return fmt.Errorf("munich: envelope has %d/%d segments, spans %d", len(e.Lo), len(e.Hi), len(spans))
	}
	return nil
}
