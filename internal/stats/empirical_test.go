package stats

import (
	"math"
	"testing"
)

func normalSamples(t *testing.T, n int, mu, sigma float64, seed int64) []float64 {
	t.Helper()
	rng := NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.NormFloat64()
	}
	return out
}

func TestEmpiricalRecoversNormal(t *testing.T) {
	samples := normalSamples(t, 2000, 1.5, 0.7, 3)
	e, err := NewEmpirical(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Mean()-1.5) > 0.05 {
		t.Errorf("mean = %v, want about 1.5", e.Mean())
	}
	if math.Abs(math.Sqrt(e.Variance())-0.7) > 0.07 {
		t.Errorf("stddev = %v, want about 0.7", math.Sqrt(e.Variance()))
	}
	// Density close to the true normal at several points.
	truth := NewNormal(1.5, 0.7)
	for _, x := range []float64{0.5, 1.0, 1.5, 2.0, 2.5} {
		got := e.PDF(x)
		want := truth.PDF(x)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("PDF(%v) = %v, want about %v", x, got, want)
		}
	}
	// CDF close too.
	for _, x := range []float64{0.8, 1.5, 2.2} {
		if math.Abs(e.CDF(x)-truth.CDF(x)) > 0.03 {
			t.Errorf("CDF(%v) = %v, want about %v", x, e.CDF(x), truth.CDF(x))
		}
	}
}

func TestEmpiricalDistInterface(t *testing.T) {
	samples := normalSamples(t, 200, 0, 1, 5)
	e, err := NewEmpirical(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	var d Dist = e // must satisfy the Dist interface
	lo, hi := d.Support()
	total := Integrate(d.PDF, lo, hi, 1e-9)
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("KDE density integrates to %v", total)
	}
	// Quantile/CDF round trip.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		x := d.Quantile(p)
		if math.Abs(d.CDF(x)-p) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, d.CDF(x))
		}
	}
	if d.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestEmpiricalSampling(t *testing.T) {
	src := normalSamples(t, 500, -2, 0.5, 7)
	e, err := NewEmpirical(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := e.Sample(rng)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-e.Mean()) > 0.05 {
		t.Errorf("sample mean %v vs KDE mean %v", mean, e.Mean())
	}
	if math.Abs(variance-e.Variance()) > 0.1*e.Variance() {
		t.Errorf("sample variance %v vs KDE variance %v", variance, e.Variance())
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil, 0); err == nil {
		t.Error("empty samples should error")
	}
	if _, err := NewEmpirical([]float64{1}, 0); err == nil {
		t.Error("single sample should error")
	}
	if _, err := NewEmpirical([]float64{3, 3, 3}, 0); err == nil {
		t.Error("zero spread should error")
	}
	// Explicit bandwidth honoured.
	e, err := NewEmpirical([]float64{0, 1}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bandwidth() != 0.25 {
		t.Errorf("bandwidth = %v", e.Bandwidth())
	}
	if e.N() != 2 {
		t.Errorf("N = %d", e.N())
	}
}

func TestEmpiricalStringFingerprint(t *testing.T) {
	a, _ := NewEmpirical([]float64{0, 1, 2}, 0.5)
	b, _ := NewEmpirical([]float64{0, 1, 2}, 0.5)
	c, _ := NewEmpirical([]float64{0, 1, 2.0001}, 0.5)
	if a.String() != b.String() {
		t.Error("identical data must share a fingerprint (DUST table reuse)")
	}
	if a.String() == c.String() {
		t.Error("different data must not collide")
	}
}
