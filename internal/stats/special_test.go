package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestErfInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999} {
		got := math.Erf(ErfInv(x))
		if !almostEqual(got, x, 1e-12) {
			t.Errorf("erf(erfinv(%v)) = %v, want %v", x, got, x)
		}
	}
}

func TestErfInvKnownValues(t *testing.T) {
	// Reference values computed with high-precision tools.
	cases := []struct{ x, want float64 }{
		{0.5, 0.4769362762044699},
		{0.9, 1.1630871536766743},
		{-0.5, -0.4769362762044699},
		{0.99, 1.8213863677184496},
	}
	for _, c := range cases {
		if got := ErfInv(c.x); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("ErfInv(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestErfInvEdgeCases(t *testing.T) {
	if !math.IsInf(ErfInv(1), 1) {
		t.Errorf("ErfInv(1) should be +Inf")
	}
	if !math.IsInf(ErfInv(-1), -1) {
		t.Errorf("ErfInv(-1) should be -Inf")
	}
	if !math.IsNaN(ErfInv(1.5)) {
		t.Errorf("ErfInv(1.5) should be NaN")
	}
	if !math.IsNaN(ErfInv(math.NaN())) {
		t.Errorf("ErfInv(NaN) should be NaN")
	}
	if ErfInv(0) != 0 {
		t.Errorf("ErfInv(0) should be exactly 0")
	}
}

func TestErfInvOddProperty(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 1) // map into [0,1)
		if x == 0 {
			return true
		}
		return almostEqual(ErfInv(-x), -ErfInv(x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileAgainstCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		z, err := NormalQuantile(p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", p, err)
		}
		if got := NormalCDF(z); !almostEqual(got, p, 1e-12) {
			t.Errorf("NormalCDF(NormalQuantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.025, -1.959963984540054},
	}
	for _, c := range cases {
		got, err := NormalQuantile(c.p)
		if err != nil {
			t.Fatalf("NormalQuantile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileDomain(t *testing.T) {
	if _, err := NormalQuantile(-0.1); err == nil {
		t.Error("NormalQuantile(-0.1) should error")
	}
	if _, err := NormalQuantile(1.1); err == nil {
		t.Error("NormalQuantile(1.1) should error")
	}
	z, err := NormalQuantile(0)
	if err != nil || !math.IsInf(z, -1) {
		t.Errorf("NormalQuantile(0) = %v, %v; want -Inf, nil", z, err)
	}
}

func TestRegularizedGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got, err := RegularizedGammaP(1, x)
		if err != nil {
			t.Fatalf("RegularizedGammaP(1, %v): %v", x, err)
		}
		want := 1 - math.Exp(-x)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		got, err := RegularizedGammaP(0.5, x)
		if err != nil {
			t.Fatalf("RegularizedGammaP(0.5, %v): %v", x, err)
		}
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("P(0.5, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestRegularizedGammaDomainErrors(t *testing.T) {
	if _, err := RegularizedGammaP(0, 1); err == nil {
		t.Error("a=0 should be a domain error")
	}
	if _, err := RegularizedGammaP(1, -1); err == nil {
		t.Error("x<0 should be a domain error")
	}
	p, err := RegularizedGammaP(3, 0)
	if err != nil || p != 0 {
		t.Errorf("P(3, 0) = %v, %v; want 0, nil", p, err)
	}
}

func TestRegularizedGammaComplement(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.5 + math.Mod(math.Abs(a), 20)
		x = math.Mod(math.Abs(x), 40)
		p, err1 := RegularizedGammaP(a, x)
		q, err2 := RegularizedGammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p+q, 1, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Critical values: P(chi2_1 <= 3.841459) = 0.95, P(chi2_10 <= 18.307) ~= 0.95.
	cases := []struct {
		x    float64
		k    int
		want float64
		tol  float64
	}{
		{3.841458820694124, 1, 0.95, 1e-9},
		{18.307038053275146, 10, 0.95, 1e-9},
		{6.634896601021213, 1, 0.99, 1e-9},
		{2, 2, 1 - math.Exp(-1), 1e-12}, // chi2_2 is Exp(1/2)
	}
	for _, c := range cases {
		got, err := ChiSquareCDF(c.x, c.k)
		if err != nil {
			t.Fatalf("ChiSquareCDF(%v, %d): %v", c.x, c.k, err)
		}
		if !almostEqual(got, c.want, c.tol) {
			t.Errorf("ChiSquareCDF(%v, %d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquareCDFEdge(t *testing.T) {
	if _, err := ChiSquareCDF(1, 0); err == nil {
		t.Error("k=0 should be a domain error")
	}
	got, err := ChiSquareCDF(-1, 3)
	if err != nil || got != 0 {
		t.Errorf("ChiSquareCDF(-1, 3) = %v, %v; want 0, nil", got, err)
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// Two-sided 95% critical values from standard t tables.
	cases := []struct {
		p, nu, want float64
	}{
		{0.975, 1, 12.7062},
		{0.975, 4, 2.7764},
		{0.975, 10, 2.2281},
		{0.975, 30, 2.0423},
		{0.95, 10, 1.8125},
	}
	for _, c := range cases {
		got, err := StudentTQuantile(c.p, c.nu)
		if err != nil {
			t.Fatalf("StudentTQuantile(%v, %v): %v", c.p, c.nu, err)
		}
		if !almostEqual(got, c.want, 5e-4) {
			t.Errorf("StudentTQuantile(%v, %v) = %v, want %v", c.p, c.nu, got, c.want)
		}
	}
}

func TestStudentTQuantileSymmetry(t *testing.T) {
	f := func(p, nu float64) bool {
		p = 0.01 + 0.48*math.Mod(math.Abs(p), 1) // (0.01, 0.49)
		nu = 1 + math.Mod(math.Abs(nu), 50)
		lo, err1 := StudentTQuantile(p, nu)
		hi, err2 := StudentTQuantile(1-p, nu)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(lo, -hi, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTQuantileMedianIsZero(t *testing.T) {
	got, err := StudentTQuantile(0.5, 7)
	if err != nil || got != 0 {
		t.Errorf("StudentTQuantile(0.5, 7) = %v, %v; want 0, nil", got, err)
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	tv, err := StudentTQuantile(0.975, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := NormalQuantile(0.975)
	if !almostEqual(tv, z, 1e-3) {
		t.Errorf("t quantile with huge df = %v, want close to normal %v", tv, z)
	}
}
