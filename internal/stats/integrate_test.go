package stats

import (
	"math"
	"testing"
)

func TestIntegratePolynomial(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return 3*x*x*x - x + 2 }
	got := Integrate(f, -1, 2, 1e-12)
	want := 3.0/4*(16-1) - (4.0-1)/2 + 2*3 // antiderivative 3x^4/4 - x^2/2 + 2x
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("integral = %v, want %v", got, want)
	}
}

func TestIntegrateGaussian(t *testing.T) {
	n := NewNormal(0, 1)
	got := Integrate(n.PDF, -8, 8, 1e-12)
	if !almostEqual(got, 1, 1e-9) {
		t.Errorf("Gaussian integral = %v, want 1", got)
	}
}

func TestIntegrateOrientation(t *testing.T) {
	f := func(x float64) float64 { return x }
	fwd := Integrate(f, 0, 2, 1e-10)
	rev := Integrate(f, 2, 0, 1e-10)
	if !almostEqual(fwd, 2, 1e-10) || !almostEqual(rev, -2, 1e-10) {
		t.Errorf("fwd=%v rev=%v, want 2 and -2", fwd, rev)
	}
	if Integrate(f, 1, 1, 1e-10) != 0 {
		t.Error("zero-width integral should be 0")
	}
}

func TestIntegrateSharpPeak(t *testing.T) {
	// Narrow Gaussian inside a wide interval stresses adaptivity. The width
	// is chosen above the documented resolution limit of the 64-panel
	// pre-split over [-10, 10].
	n := NewNormal(3, 0.05)
	got := Integrate(n.PDF, -10, 10, 1e-12)
	if !almostEqual(got, 1, 1e-6) {
		t.Errorf("sharp peak integral = %v, want 1", got)
	}
}

func TestIntegratePanels(t *testing.T) {
	got := IntegratePanels(math.Sin, 0, math.Pi, 1000)
	if !almostEqual(got, 2, 1e-9) {
		t.Errorf("integral of sin over [0, pi] = %v, want 2", got)
	}
	rev := IntegratePanels(math.Sin, math.Pi, 0, 1000)
	if !almostEqual(rev, -2, 1e-9) {
		t.Errorf("reversed integral = %v, want -2", rev)
	}
	if IntegratePanels(math.Sin, 1, 1, 10) != 0 {
		t.Error("zero-width integral should be 0")
	}
	// Odd panel counts are rounded up, tiny counts clamped: just check sanity.
	if got := IntegratePanels(func(x float64) float64 { return 1 }, 0, 1, 1); !almostEqual(got, 1, 1e-12) {
		t.Errorf("constant integral with tiny panel count = %v, want 1", got)
	}
}

func TestIntegrateDefaultTolerance(t *testing.T) {
	got := Integrate(func(x float64) float64 { return x * x }, 0, 3, 0)
	if !almostEqual(got, 9, 1e-6) {
		t.Errorf("integral with default tolerance = %v, want 9", got)
	}
}
