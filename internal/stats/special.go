// Package stats provides the statistical substrate for the uncertain
// time-series study: probability distributions with full density/CDF/quantile
// support, special functions, descriptive statistics, confidence intervals,
// histograms, numerical integration, and the chi-square goodness-of-fit test
// used in Section 4.1.1 of the paper.
//
// Everything is implemented from scratch on top of the standard library so the
// module stays dependency-free.
package stats

import (
	"errors"
	"math"
)

// ErrDomain is returned by functions that are handed an argument outside
// their mathematical domain (for example a probability outside (0, 1)).
var ErrDomain = errors.New("stats: argument outside function domain")

// ErfInv returns the inverse error function of x, for x in (-1, 1).
//
// The implementation follows the rational approximation of Blair, Edwards and
// Johnson refined with two Newton steps against math.Erf, which brings the
// result to within a few ULP across the full domain.
func ErfInv(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	switch {
	case x <= -1:
		//lint:allow floatcmp domain boundary: erfinv(-1) is exactly -Inf, anything below is NaN
		if x == -1 {
			return math.Inf(-1)
		}
		return math.NaN()
	case x >= 1:
		//lint:allow floatcmp domain boundary: erfinv(1) is exactly +Inf, anything above is NaN
		if x == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	case x == 0:
		return 0
	}

	// Initial guess: Winitzki's approximation.
	a := 0.147
	ln1x2 := math.Log(1 - x*x)
	t1 := 2/(math.Pi*a) + ln1x2/2
	guess := math.Copysign(math.Sqrt(math.Sqrt(t1*t1-ln1x2/a)-t1), x)

	// Newton–Raphson refinement: f(y) = erf(y) - x,
	// f'(y) = 2/sqrt(pi) * exp(-y^2). A handful of iterations reaches
	// machine precision everywhere, including deep in the tails where the
	// initial guess is weakest.
	y := guess
	for i := 0; i < 8; i++ {
		err := math.Erf(y) - x
		step := err * math.Sqrt(math.Pi) / 2 * math.Exp(y*y)
		y -= step
		if math.Abs(step) <= 1e-16*(1+math.Abs(y)) {
			break
		}
	}
	return y
}

// ErfcInv returns the inverse complementary error function of x,
// for x in (0, 2).
func ErfcInv(x float64) float64 {
	return ErfInv(1 - x)
}

// LogGamma returns the natural logarithm of the absolute value of the Gamma
// function. It is a thin wrapper over math.Lgamma that drops the sign, which
// is always +1 for the positive arguments used in this package.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegularizedGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a), for a > 0 and x >= 0.
//
// It switches between the series expansion (x < a+1) and the continued
// fraction for the complement (x >= a+1), the classic Numerical Recipes
// strategy, which converges quickly everywhere we need it (chi-square CDFs
// with small degrees of freedom).
func RegularizedGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaPSeries(a, x), nil
	}
	return 1 - gammaQContinuedFraction(a, x), nil
}

// RegularizedGammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) (float64, error) {
	p, err := RegularizedGammaP(a, x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - p, nil
}

const (
	gammaMaxIter = 500
	gammaEps     = 1e-14
)

// gammaPSeries evaluates P(a,x) via its power series, valid for x < a+1.
func gammaPSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

// gammaQContinuedFraction evaluates Q(a,x) via Lentz's continued fraction,
// valid for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

// NormalCDF returns the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the inverse standard normal CDF at probability p,
// for p in (0, 1).
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		if p == 0 {
			return math.Inf(-1), nil
		}
		//lint:allow floatcmp p = 1 exactly maps to the +Inf quantile; nearby p must go through the solver
		if p == 1 {
			return math.Inf(1), nil
		}
		return math.NaN(), ErrDomain
	}
	return -math.Sqrt2 * ErfcInv(2*p), nil
}

// ChiSquareCDF returns the CDF of the chi-square distribution with k degrees
// of freedom, evaluated at x.
func ChiSquareCDF(x float64, k int) (float64, error) {
	if k <= 0 {
		return math.NaN(), ErrDomain
	}
	if x <= 0 {
		return 0, nil
	}
	return RegularizedGammaP(float64(k)/2, x/2)
}

// studentTCDF returns the CDF of Student's t distribution with nu degrees of
// freedom via the regularized incomplete beta function.
func studentTCDF(t float64, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	x := nu / (nu + t*t)
	ib := regularizedBeta(x, nu/2, 0.5)
	if t > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// StudentTQuantile returns the inverse CDF of Student's t distribution with
// nu degrees of freedom at probability p in (0,1). It is used to build the
// 95% confidence intervals the paper reports on every plotted average.
func StudentTQuantile(p float64, nu float64) (float64, error) {
	if p <= 0 || p >= 1 || nu <= 0 || math.IsNaN(p) {
		return math.NaN(), ErrDomain
	}
	//lint:allow floatcmp the Student-t CDF is symmetric about the exact median; p = 0.5 is a caller-passed sentinel
	if p == 0.5 {
		return 0, nil
	}
	// Bisection on a bracket, then Newton refinement. The CDF is smooth and
	// strictly increasing so this is robust.
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if studentTCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// regularizedBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued fraction expansion (Numerical Recipes betacf).
func regularizedBeta(x, a, b float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := LogGamma(a+b) - LogGamma(a) - LogGamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(x, a, b) / a
	}
	return 1 - front*betaContinuedFraction(1-x, b, a)/b
}

func betaContinuedFraction(x, a, b float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= gammaMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return h
}
