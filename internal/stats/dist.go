package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a continuous univariate probability distribution. All error
// distributions used by the paper (normal, uniform, shifted exponential, and
// mixtures thereof) implement it.
//
// The techniques in the paper consume different slices of this interface:
// PROUD needs only Mean/StdDev; DUST needs the full PDF; the perturbation
// engine needs Sample.
type Dist interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns the cumulative probability P(X <= x).
	CDF(x float64) float64
	// Quantile returns the inverse CDF at probability p in [0, 1].
	Quantile(p float64) float64
	// Sample draws one value using the supplied random source.
	Sample(rng *rand.Rand) float64
	// Mean returns the expected value.
	Mean() float64
	// Variance returns the second central moment.
	Variance() float64
	// Support returns an interval [lo, hi] outside of which the density is
	// zero or negligible (used to bound numerical integration in DUST).
	Support() (lo, hi float64)
	// String identifies the distribution, with parameters.
	String() string
}

// StdDev returns the standard deviation of d.
func StdDev(d Dist) float64 { return math.Sqrt(d.Variance()) }

// Normal is the Gaussian distribution N(mu, sigma^2).
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns a Normal distribution with the given mean and standard
// deviation. It panics if sigma <= 0, which is always a programming error.
func NewNormal(mu, sigma float64) Normal {
	if sigma <= 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("stats: NewNormal: sigma must be positive, got %v", sigma))
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// PDF returns the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return NormalCDF((x - n.Mu) / n.Sigma)
}

// Quantile returns the inverse CDF at p.
func (n Normal) Quantile(p float64) float64 {
	z, err := NormalQuantile(p)
	if err != nil {
		return math.NaN()
	}
	return n.Mu + n.Sigma*z
}

// Sample draws one Gaussian variate.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// Mean returns mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns sigma^2.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// Support returns mu +/- 10 sigma; the density outside is below 1e-22 and
// irrelevant for any integral in this package.
func (n Normal) Support() (float64, float64) {
	return n.Mu - 10*n.Sigma, n.Mu + 10*n.Sigma
}

func (n Normal) String() string {
	return fmt.Sprintf("normal(mu=%g, sigma=%g)", n.Mu, n.Sigma)
}

// Uniform is the continuous uniform distribution on [A, B].
//
// The paper parameterises the uniform error by its standard deviation sigma
// with zero mean; use NewUniformByStdDev for that construction
// (A = -sigma*sqrt(3), B = +sigma*sqrt(3)).
type Uniform struct {
	A float64
	B float64
}

// NewUniform returns the uniform distribution on [a, b]. It panics if b <= a.
func NewUniform(a, b float64) Uniform {
	if !(b > a) {
		panic(fmt.Sprintf("stats: NewUniform: need a < b, got [%v, %v]", a, b))
	}
	return Uniform{A: a, B: b}
}

// NewUniformByStdDev returns the zero-mean uniform distribution with the
// given standard deviation: U[-sigma*sqrt(3), +sigma*sqrt(3)].
func NewUniformByStdDev(sigma float64) Uniform {
	h := sigma * math.Sqrt(3)
	return NewUniform(-h, h)
}

// PDF returns 1/(B-A) inside the support, 0 outside.
func (u Uniform) PDF(x float64) float64 {
	if x < u.A || x > u.B {
		return 0
	}
	return 1 / (u.B - u.A)
}

// CDF returns P(X <= x).
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.A:
		return 0
	case x >= u.B:
		return 1
	default:
		return (x - u.A) / (u.B - u.A)
	}
}

// Quantile returns A + p*(B-A), clamped to the support.
func (u Uniform) Quantile(p float64) float64 {
	if p <= 0 {
		return u.A
	}
	if p >= 1 {
		return u.B
	}
	return u.A + p*(u.B-u.A)
}

// Sample draws one uniform variate.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.A + rng.Float64()*(u.B-u.A)
}

// Mean returns the midpoint of the support.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

// Variance returns (B-A)^2 / 12.
func (u Uniform) Variance() float64 {
	w := u.B - u.A
	return w * w / 12
}

// Support returns [A, B].
func (u Uniform) Support() (float64, float64) { return u.A, u.B }

func (u Uniform) String() string {
	return fmt.Sprintf("uniform[%g, %g]", u.A, u.B)
}

// Exponential is a shifted exponential distribution: X = E - Shift where
// E ~ Exp(rate 1/Scale). The paper's "exponential error with zero mean and
// standard deviation sigma" is NewExponentialByStdDev(sigma), i.e.
// Scale = sigma and Shift = sigma.
type Exponential struct {
	Scale float64 // mean of the unshifted exponential (1/rate)
	Shift float64 // subtracted from every variate
}

// NewExponentialByStdDev returns a zero-mean exponential error distribution
// with the given standard deviation.
func NewExponentialByStdDev(sigma float64) Exponential {
	if sigma <= 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("stats: NewExponentialByStdDev: sigma must be positive, got %v", sigma))
	}
	return Exponential{Scale: sigma, Shift: sigma}
}

// PDF returns the density at x.
func (e Exponential) PDF(x float64) float64 {
	t := x + e.Shift
	if t < 0 {
		return 0
	}
	return math.Exp(-t/e.Scale) / e.Scale
}

// CDF returns P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	t := x + e.Shift
	if t < 0 {
		return 0
	}
	return 1 - math.Exp(-t/e.Scale)
}

// Quantile returns the inverse CDF at p.
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return -e.Shift
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -e.Scale*math.Log(1-p) - e.Shift
}

// Sample draws one variate.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return e.Scale*rng.ExpFloat64() - e.Shift
}

// Mean returns Scale - Shift (zero for the by-stddev construction).
func (e Exponential) Mean() float64 { return e.Scale - e.Shift }

// Variance returns Scale^2.
func (e Exponential) Variance() float64 { return e.Scale * e.Scale }

// Support returns [-Shift, -Shift + 40*Scale]; the upper tail mass beyond is
// below 1e-17.
func (e Exponential) Support() (float64, float64) {
	return -e.Shift, -e.Shift + 40*e.Scale
}

func (e Exponential) String() string {
	return fmt.Sprintf("exponential(scale=%g, shift=%g)", e.Scale, e.Shift)
}

// Mixture is a finite mixture of component distributions with the given
// weights. It is used for the paper's mixed-error experiments (Figures 8-10
// and 15-17) where 20% of the points carry one error distribution and 80%
// another.
type Mixture struct {
	Components []Dist
	Weights    []float64
}

// NewMixture returns a mixture distribution. Weights are normalised to sum
// to one. It panics on empty input, mismatched lengths, or non-positive
// total weight.
func NewMixture(components []Dist, weights []float64) Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("stats: NewMixture: need equal, non-zero numbers of components and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stats: NewMixture: weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: NewMixture: total weight must be positive")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	comps := make([]Dist, len(components))
	copy(comps, components)
	return Mixture{Components: comps, Weights: norm}
}

// PDF returns the weighted sum of component densities.
func (m Mixture) PDF(x float64) float64 {
	var p float64
	for i, c := range m.Components {
		p += m.Weights[i] * c.PDF(x)
	}
	return p
}

// CDF returns the weighted sum of component CDFs.
func (m Mixture) CDF(x float64) float64 {
	var p float64
	for i, c := range m.Components {
		p += m.Weights[i] * c.CDF(x)
	}
	return p
}

// Quantile inverts the mixture CDF by bisection over the combined support.
func (m Mixture) Quantile(p float64) float64 {
	lo, hi := m.Support()
	if p <= 0 {
		return lo
	}
	if p >= 1 {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Sample picks a component by weight and samples from it.
func (m Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u <= acc {
			return m.Components[i].Sample(rng)
		}
	}
	return m.Components[len(m.Components)-1].Sample(rng)
}

// Mean returns the weighted sum of component means.
func (m Mixture) Mean() float64 {
	var mu float64
	for i, c := range m.Components {
		mu += m.Weights[i] * c.Mean()
	}
	return mu
}

// Variance returns the law-of-total-variance mixture variance.
func (m Mixture) Variance() float64 {
	mu := m.Mean()
	var v float64
	for i, c := range m.Components {
		d := c.Mean() - mu
		v += m.Weights[i] * (c.Variance() + d*d)
	}
	return v
}

// Support returns the union of the component supports.
func (m Mixture) Support() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.Components {
		clo, chi := c.Support()
		lo = math.Min(lo, clo)
		hi = math.Max(hi, chi)
	}
	return lo, hi
}

// String identifies the mixture, including a fingerprint of its components
// and weights: consumers key caches (e.g. the DUST lookup tables) on the
// string form, so distinct mixtures must never collide.
func (m Mixture) String() string {
	var h uint64 = 14695981039346656037
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	for i, c := range m.Components {
		mix(c.String())
		mix(fmt.Sprintf("|%.17g;", m.Weights[i]))
	}
	return fmt.Sprintf("mixture(%d components, fp=%x)", len(m.Components), h)
}

// TabulatedDist wraps a Dist with a pre-computed CDF table for fast repeated
// sampling via inverse transform on a grid; it is used by workload generators
// that draw millions of perturbation errors.
type TabulatedDist struct {
	base Dist
	xs   []float64
	ps   []float64
}

// NewTabulatedDist builds an n-point inverse-CDF table over the support of d.
func NewTabulatedDist(d Dist, n int) *TabulatedDist {
	if n < 2 {
		n = 2
	}
	lo, hi := d.Support()
	t := &TabulatedDist{base: d, xs: make([]float64, n), ps: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		t.xs[i] = x
		t.ps[i] = d.CDF(x)
	}
	return t
}

// Sample draws via linear interpolation of the tabulated inverse CDF.
func (t *TabulatedDist) Sample(rng *rand.Rand) float64 {
	p := rng.Float64()
	// Binary search for the bracketing CDF entries.
	lo, hi := 0, len(t.ps)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if t.ps[mid] < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	p0, p1 := t.ps[lo], t.ps[hi]
	if p1 <= p0 {
		return t.xs[lo]
	}
	f := (p - p0) / (p1 - p0)
	return t.xs[lo] + f*(t.xs[hi]-t.xs[lo])
}

// Base returns the wrapped distribution.
func (t *TabulatedDist) Base() Dist { return t.base }
