package stats

import "math/rand"

// NewRand returns a deterministic pseudo-random source seeded with seed.
// Every experiment in this repository threads an explicit source through so
// that results are reproducible run to run, which the paper emphasises
// ("we make sure that the results of our experiments are completely
// reproducible").
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitRand derives an independent deterministic sub-source from a parent
// seed and a stream identifier. It lets parallel workers draw reproducible,
// non-overlapping streams without sharing a mutex-guarded source.
func SplitRand(seed int64, stream int64) *rand.Rand {
	// SplitMix64-style mixing of the pair into a new seed.
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
