package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Empirical is a kernel density estimate built from observed samples, with
// a Gaussian kernel and Silverman's rule-of-thumb bandwidth. It bridges the
// paper's two uncertainty models: repeated observations (the MUNICH input)
// can be turned into a continuous error distribution, letting DUST operate
// with *estimated* rather than a-priori error knowledge.
type Empirical struct {
	samples   []float64 // sorted
	bandwidth float64
	mean      float64
	variance  float64
}

// NewEmpirical fits a KDE to the samples. At least two distinct samples are
// required (a single point has no spread to estimate). The bandwidth
// parameter overrides Silverman's rule when positive.
func NewEmpirical(samples []float64, bandwidth float64) (*Empirical, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("stats: NewEmpirical: need at least 2 samples, got %d", len(samples))
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)

	mean := Mean(sorted)
	variance := SampleVariance(sorted)
	if variance == 0 || math.IsNaN(variance) {
		return nil, fmt.Errorf("stats: NewEmpirical: samples have zero spread")
	}
	h := bandwidth
	if h <= 0 {
		// Silverman: h = 1.06 * min(sd, IQR/1.34) * n^(-1/5).
		sd := math.Sqrt(variance)
		iqr := Quantile(sorted, 0.75) - Quantile(sorted, 0.25)
		spread := sd
		if iqr > 0 && iqr/1.34 < spread {
			spread = iqr / 1.34
		}
		h = 1.06 * spread * math.Pow(float64(len(sorted)), -0.2)
		if h <= 0 {
			h = sd * 0.5
		}
	}
	return &Empirical{
		samples:   sorted,
		bandwidth: h,
		mean:      mean,
		variance:  variance + h*h, // KDE adds kernel variance
	}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (e *Empirical) Bandwidth() float64 { return e.bandwidth }

// N returns the number of fitted samples.
func (e *Empirical) N() int { return len(e.samples) }

// PDF returns the KDE density at x.
func (e *Empirical) PDF(x float64) float64 {
	var acc float64
	norm := 1 / (e.bandwidth * math.Sqrt(2*math.Pi))
	for _, s := range e.samples {
		z := (x - s) / e.bandwidth
		acc += math.Exp(-z * z / 2)
	}
	return acc * norm / float64(len(e.samples))
}

// CDF returns the KDE cumulative probability at x.
func (e *Empirical) CDF(x float64) float64 {
	var acc float64
	for _, s := range e.samples {
		acc += NormalCDF((x - s) / e.bandwidth)
	}
	return acc / float64(len(e.samples))
}

// Quantile inverts the CDF by bisection over the support.
func (e *Empirical) Quantile(p float64) float64 {
	lo, hi := e.Support()
	if p <= 0 {
		return lo
	}
	if p >= 1 {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if e.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Sample draws one variate: pick a fitted sample, add kernel noise.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	s := e.samples[rng.Intn(len(e.samples))]
	return s + rng.NormFloat64()*e.bandwidth
}

// Mean returns the sample mean (also the KDE mean).
func (e *Empirical) Mean() float64 { return e.mean }

// Variance returns the KDE variance: sample variance plus kernel variance.
func (e *Empirical) Variance() float64 { return e.variance }

// Support extends the sample range by five bandwidths on each side.
func (e *Empirical) Support() (float64, float64) {
	return e.samples[0] - 5*e.bandwidth, e.samples[len(e.samples)-1] + 5*e.bandwidth
}

// String identifies the estimate; it includes the fingerprint of the fitted
// samples so equal-data estimates share DUST lookup tables while different
// data does not.
func (e *Empirical) String() string {
	var h uint64 = 14695981039346656037
	mix := func(f float64) {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			h ^= bits & 0xff
			h *= 1099511628211
			bits >>= 8
		}
	}
	for _, s := range e.samples {
		mix(s)
	}
	mix(e.bandwidth)
	return fmt.Sprintf("empirical(n=%d, h=%.4g, fp=%x)", len(e.samples), e.bandwidth, h)
}
