package stats

import (
	"fmt"
	"math"
)

// ChiSquareResult is the outcome of a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64 // the chi-square statistic
	DF        int     // degrees of freedom
	PValue    float64 // upper-tail probability
}

// Reject reports whether the null hypothesis is rejected at significance
// level alpha (e.g. 0.01, the level used in Section 4.1.1 of the paper).
func (r ChiSquareResult) Reject(alpha float64) bool {
	return r.PValue < alpha
}

func (r ChiSquareResult) String() string {
	return fmt.Sprintf("chi2=%.4g df=%d p=%.4g", r.Statistic, r.DF, r.PValue)
}

// ChiSquareGoF runs a chi-square goodness-of-fit test of the observed counts
// against the expected counts. Expected entries must be positive. Degrees of
// freedom are len(observed)-1-params, where params is the number of
// parameters of the hypothesised distribution that were estimated from the
// data.
func ChiSquareGoF(observed []int, expected []float64, params int) (ChiSquareResult, error) {
	if len(observed) == 0 || len(observed) != len(expected) {
		return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareGoF: mismatched inputs (%d observed, %d expected)", len(observed), len(expected))
	}
	df := len(observed) - 1 - params
	if df < 1 {
		return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareGoF: non-positive degrees of freedom %d", df)
	}
	var stat float64
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareGoF: expected count in bin %d is %v, must be positive", i, e)
		}
		d := float64(o) - e
		stat += d * d / e
	}
	cdf, err := ChiSquareCDF(stat, df)
	if err != nil {
		return ChiSquareResult{}, err
	}
	return ChiSquareResult{Statistic: stat, DF: df, PValue: 1 - cdf}, nil
}

// ChiSquareUniformTest tests whether the observations xs are drawn from the
// uniform distribution over [min(xs), max(xs)], binning the data into the
// given number of equal-width bins. This mirrors the check in Section 4.1.1:
// DUST assumes uniformly distributed series values, and the paper rejects
// that hypothesis on all 17 datasets at alpha = 0.01.
//
// Two parameters (the range endpoints) are treated as estimated from the
// data, so df = bins - 3.
func ChiSquareUniformTest(xs []float64, bins int) (ChiSquareResult, error) {
	if len(xs) < 5*bins {
		return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareUniformTest: need at least %d observations for %d bins, got %d", 5*bins, bins, len(xs))
	}
	lo, hi := MinMax(xs)
	if !(hi > lo) {
		return ChiSquareResult{}, fmt.Errorf("stats: ChiSquareUniformTest: degenerate data range [%v, %v]", lo, hi)
	}
	h := NewHistogram(lo, hi, bins)
	h.AddAll(xs)
	expected := make([]float64, bins)
	per := float64(len(xs)) / float64(bins)
	for i := range expected {
		expected[i] = per
	}
	return ChiSquareGoF(h.Counts, expected, 2)
}

// KolmogorovSmirnov returns the one-sample KS statistic of xs against the
// hypothesised distribution d: the supremum distance between the empirical
// CDF and d's CDF. It complements the chi-square test for continuous data.
func KolmogorovSmirnov(xs []float64, d Dist) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	insertionOrQuickSort(sorted)
	n := float64(len(sorted))
	var sup float64
	for i, x := range sorted {
		c := d.CDF(x)
		above := math.Abs(float64(i+1)/n - c)
		below := math.Abs(c - float64(i)/n)
		if above > sup {
			sup = above
		}
		if below > sup {
			sup = below
		}
	}
	return sup
}

// insertionOrQuickSort sorts in place. Small inputs use insertion sort to
// avoid the sort.Float64s interface overhead in hot loops.
func insertionOrQuickSort(xs []float64) {
	if len(xs) <= 32 {
		for i := 1; i < len(xs); i++ {
			v := xs[i]
			j := i - 1
			for j >= 0 && xs[j] > v {
				xs[j+1] = xs[j]
				j--
			}
			xs[j+1] = v
		}
		return
	}
	quickSortFloats(xs)
}

func quickSortFloats(xs []float64) {
	for len(xs) > 32 {
		// Median-of-three pivot.
		mid := len(xs) / 2
		last := len(xs) - 1
		if xs[mid] < xs[0] {
			xs[mid], xs[0] = xs[0], xs[mid]
		}
		if xs[last] < xs[0] {
			xs[last], xs[0] = xs[0], xs[last]
		}
		if xs[last] < xs[mid] {
			xs[last], xs[mid] = xs[mid], xs[last]
		}
		pivot := xs[mid]
		i, j := 0, last
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(xs)-i {
			quickSortFloats(xs[:j+1])
			xs = xs[i:]
		} else {
			quickSortFloats(xs[i:])
			xs = xs[:j+1]
		}
	}
	insertionOrQuickSort(xs)
}
