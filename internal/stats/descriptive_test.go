package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-15) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almostEqual(got, 4, 1e-15) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDevOf(xs); !almostEqual(got, 2, 1e-15) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := SampleVariance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("Mean/Variance of empty input should be NaN")
	}
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of a single point should be NaN")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty input should be NaN")
	}
	min, max := MinMax(nil)
	if !math.IsInf(min, 1) || !math.IsInf(max, -1) {
		t.Error("MinMax of empty input should be (+Inf, -Inf)")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestMeanCICoversTrueMean(t *testing.T) {
	// Frequentist check: ~95% of intervals from N(3, 2^2) samples contain 3.
	rng := NewRand(11)
	d := NewNormal(3, 2)
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 25)
		for j := range xs {
			xs[j] = d.Sample(rng)
		}
		ci := MeanCI(xs, 0.95)
		if ci.Lower <= 3 && 3 <= ci.Upper {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("95%% CI coverage rate = %v, want about 0.95", rate)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	ci := MeanCI([]float64{7}, 0.95)
	if ci.Mean != 7 || ci.Lower != 7 || ci.Upper != 7 {
		t.Errorf("single-point CI should degenerate to the point, got %+v", ci)
	}
	if ci.HalfWidth() != 0 {
		t.Errorf("HalfWidth = %v, want 0", ci.HalfWidth())
	}
}

func TestMeanCIWidthShrinksWithN(t *testing.T) {
	rng := NewRand(5)
	d := NewNormal(0, 1)
	width := func(n int) float64 {
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = d.Sample(rng)
		}
		return MeanCI(xs, 0.95).HalfWidth()
	}
	small := width(20)
	large := width(2000)
	if large >= small {
		t.Errorf("CI half-width should shrink with n: n=20 gives %v, n=2000 gives %v", small, large)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0.5, 1.5, 2.5, 3.5, 9.5, -1, 11})
	if h.N != 7 {
		t.Errorf("N = %d, want 7", h.N)
	}
	wantCounts := []int{3, 2, 0, 0, 2} // -1 clamps to bin 0; 11 clamps to bin 4
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("bin %d count = %d, want %d", i, h.Counts[i], want)
		}
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-15) {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramCountsSumToN(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-5, 5, 8)
		h.AddAll(raw)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == h.N && h.N == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortHelpersAgreeWithStdlib(t *testing.T) {
	f := func(raw []float64) bool {
		// Drop NaNs, which have no defined sort order.
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		mine := make([]float64, len(xs))
		copy(mine, xs)
		insertionOrQuickSort(mine)
		ref := make([]float64, len(xs))
		copy(ref, xs)
		sort.Float64s(ref)
		for i := range mine {
			if mine[i] != ref[i] && !(math.IsNaN(mine[i]) && math.IsNaN(ref[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSortLargeInput(t *testing.T) {
	rng := NewRand(3)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	insertionOrQuickSort(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}
