package stats

import (
	"math"
	"testing"
)

func TestChiSquareGoFUniformDataAccepted(t *testing.T) {
	rng := NewRand(17)
	u := NewUniform(0, 1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = u.Sample(rng)
	}
	res, err := ChiSquareUniformTest(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("uniform data rejected as non-uniform: %v", res)
	}
}

func TestChiSquareGoFNormalDataRejected(t *testing.T) {
	// Mirrors Section 4.1.1: clearly non-uniform values must be rejected at
	// alpha = 0.01.
	rng := NewRand(23)
	d := NewNormal(0, 1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	res, err := ChiSquareUniformTest(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("normal data not rejected as uniform: %v", res)
	}
}

func TestChiSquareGoFKnownStatistic(t *testing.T) {
	observed := []int{8, 12}
	expected := []float64{10, 10}
	res, err := ChiSquareGoF(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Statistic, 0.8, 1e-12) {
		t.Errorf("statistic = %v, want 0.8", res.Statistic)
	}
	if res.DF != 1 {
		t.Errorf("df = %d, want 1", res.DF)
	}
	// p = P(chi2_1 > 0.8) = erfc(sqrt(0.4)).
	want := math.Erfc(math.Sqrt(0.4))
	if !almostEqual(res.PValue, want, 1e-10) {
		t.Errorf("p = %v, want %v", res.PValue, want)
	}
}

func TestChiSquareGoFErrors(t *testing.T) {
	if _, err := ChiSquareGoF(nil, nil, 0); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ChiSquareGoF([]int{1, 2}, []float64{1}, 0); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := ChiSquareGoF([]int{1, 2}, []float64{1, 0}, 0); err == nil {
		t.Error("zero expected count should error")
	}
	if _, err := ChiSquareGoF([]int{1, 2}, []float64{1, 1}, 5); err == nil {
		t.Error("df <= 0 should error")
	}
}

func TestChiSquareUniformTestErrors(t *testing.T) {
	if _, err := ChiSquareUniformTest([]float64{1, 2, 3}, 10); err == nil {
		t.Error("too few observations should error")
	}
	same := make([]float64, 200)
	if _, err := ChiSquareUniformTest(same, 10); err == nil {
		t.Error("degenerate range should error")
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	rng := NewRand(31)
	d := NewNormal(0, 1)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	// Against the true distribution the statistic should be small
	// (roughly 1.36/sqrt(n) at the 95% point).
	if ks := KolmogorovSmirnov(xs, d); ks > 1.63/math.Sqrt(3000) {
		t.Errorf("KS against true distribution = %v, too large", ks)
	}
	// Against a shifted distribution it should be large.
	if ks := KolmogorovSmirnov(xs, NewNormal(2, 1)); ks < 0.5 {
		t.Errorf("KS against shifted distribution = %v, too small", ks)
	}
	if !math.IsNaN(KolmogorovSmirnov(nil, d)) {
		t.Error("KS of empty sample should be NaN")
	}
}
