package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// distUnderTest enumerates representative instances of every distribution.
func distsUnderTest() []Dist {
	return []Dist{
		NewNormal(0, 1),
		NewNormal(-2.5, 0.4),
		NewUniform(-1, 3),
		NewUniformByStdDev(0.7),
		NewExponentialByStdDev(1.2),
		Exponential{Scale: 0.5, Shift: 0},
		NewMixture(
			[]Dist{NewNormal(0, 0.4), NewNormal(0, 1.0)},
			[]float64{0.8, 0.2},
		),
		NewMixture(
			[]Dist{NewUniformByStdDev(1), NewNormal(0, 1), NewExponentialByStdDev(1)},
			[]float64{1, 1, 1},
		),
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	for _, d := range distsUnderTest() {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			got := d.CDF(x)
			if !almostEqual(got, p, 1e-6) {
				t.Errorf("%v: CDF(Quantile(%v)) = %v", d, p, got)
			}
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	for _, d := range distsUnderTest() {
		lo, hi := d.Support()
		prev := math.Inf(-1)
		for i := 0; i <= 100; i++ {
			x := lo + (hi-lo)*float64(i)/100
			c := d.CDF(x)
			if c < prev-1e-12 {
				t.Errorf("%v: CDF not monotone at x=%v: %v < %v", d, x, c, prev)
			}
			if c < -1e-12 || c > 1+1e-12 {
				t.Errorf("%v: CDF out of [0,1] at x=%v: %v", d, x, c)
			}
			prev = c
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	for _, d := range distsUnderTest() {
		lo, hi := d.Support()
		total := Integrate(d.PDF, lo, hi, 1e-10)
		if !almostEqual(total, 1, 1e-6) {
			t.Errorf("%v: integral of PDF over support = %v, want 1", d, total)
		}
	}
}

func TestPDFConsistentWithCDF(t *testing.T) {
	// d/dx CDF ~= PDF via central differences at interior points.
	for _, d := range distsUnderTest() {
		lo, hi := d.Support()
		for i := 1; i < 20; i++ {
			x := lo + (hi-lo)*float64(i)/20
			h := (hi - lo) * 1e-6
			num := (d.CDF(x+h) - d.CDF(x-h)) / (2 * h)
			pdf := d.PDF(x)
			// Skip density discontinuities (uniform edges, exponential onset).
			if math.Abs(num-pdf) > 1e-3*(1+pdf) {
				if _, isU := d.(Uniform); isU {
					continue
				}
				if _, isE := d.(Exponential); isE {
					continue
				}
				if _, isM := d.(Mixture); isM {
					continue
				}
				t.Errorf("%v: dCDF/dx(%v) = %v but PDF = %v", d, x, num, pdf)
			}
		}
	}
}

func TestMomentsMatchSampling(t *testing.T) {
	rng := NewRand(42)
	const n = 200000
	for _, d := range distsUnderTest() {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := d.Sample(rng)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if !almostEqual(mean, d.Mean(), 0.02*(1+math.Abs(d.Mean()))+0.02) {
			t.Errorf("%v: sample mean %v vs analytic %v", d, mean, d.Mean())
		}
		if !almostEqual(variance, d.Variance(), 0.05*(1+d.Variance())) {
			t.Errorf("%v: sample variance %v vs analytic %v", d, variance, d.Variance())
		}
	}
}

func TestZeroMeanErrorConstructions(t *testing.T) {
	for _, sigma := range []float64{0.2, 0.4, 0.7, 1.0, 2.0} {
		for _, d := range []Dist{
			NewNormal(0, sigma),
			NewUniformByStdDev(sigma),
			NewExponentialByStdDev(sigma),
		} {
			if !almostEqual(d.Mean(), 0, 1e-12) {
				t.Errorf("%v: mean = %v, want 0", d, d.Mean())
			}
			if !almostEqual(math.Sqrt(d.Variance()), sigma, 1e-12) {
				t.Errorf("%v: stddev = %v, want %v", d, math.Sqrt(d.Variance()), sigma)
			}
		}
	}
}

func TestNormalKnownDensities(t *testing.T) {
	n := NewNormal(0, 1)
	if !almostEqual(n.PDF(0), 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Errorf("standard normal PDF(0) = %v", n.PDF(0))
	}
	if !almostEqual(n.CDF(0), 0.5, 1e-15) {
		t.Errorf("standard normal CDF(0) = %v", n.CDF(0))
	}
	if !almostEqual(n.CDF(1.959963984540054), 0.975, 1e-12) {
		t.Errorf("standard normal CDF(1.96) = %v", n.CDF(1.959963984540054))
	}
}

func TestUniformProperties(t *testing.T) {
	u := NewUniform(2, 6)
	if u.PDF(1.99) != 0 || u.PDF(6.01) != 0 {
		t.Error("uniform PDF should vanish outside support")
	}
	if !almostEqual(u.PDF(4), 0.25, 1e-15) {
		t.Errorf("uniform PDF inside = %v, want 0.25", u.PDF(4))
	}
	if !almostEqual(u.Mean(), 4, 1e-15) || !almostEqual(u.Variance(), 16.0/12, 1e-15) {
		t.Errorf("uniform moments wrong: mean=%v var=%v", u.Mean(), u.Variance())
	}
}

func TestExponentialShiftZeroMean(t *testing.T) {
	e := NewExponentialByStdDev(0.8)
	if !almostEqual(e.Mean(), 0, 1e-15) {
		t.Errorf("shifted exponential mean = %v, want 0", e.Mean())
	}
	if e.PDF(-0.81) != 0 {
		t.Error("density below the shift point must be zero")
	}
	if e.PDF(-0.79) <= 0 {
		t.Error("density just above the shift point must be positive")
	}
	// Skewness: exponential errors are right-skewed, so the median is below 0.
	if e.Quantile(0.5) >= 0 {
		t.Errorf("median of zero-mean exponential should be negative, got %v", e.Quantile(0.5))
	}
}

func TestMixtureMoments(t *testing.T) {
	// 20% sigma=1.0, 80% sigma=0.4 (the paper's mixed-error setting).
	m := NewMixture(
		[]Dist{NewNormal(0, 1.0), NewNormal(0, 0.4)},
		[]float64{0.2, 0.8},
	)
	if !almostEqual(m.Mean(), 0, 1e-15) {
		t.Errorf("mixture mean = %v", m.Mean())
	}
	want := 0.2*1.0 + 0.8*0.16
	if !almostEqual(m.Variance(), want, 1e-12) {
		t.Errorf("mixture variance = %v, want %v", m.Variance(), want)
	}
}

func TestMixtureWeightNormalisation(t *testing.T) {
	m := NewMixture([]Dist{NewNormal(0, 1), NewNormal(5, 1)}, []float64{3, 1})
	if !almostEqual(m.Weights[0], 0.75, 1e-15) || !almostEqual(m.Weights[1], 0.25, 1e-15) {
		t.Errorf("weights not normalised: %v", m.Weights)
	}
}

func TestConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("NewNormal sigma=0", func() { NewNormal(0, 0) })
	mustPanic("NewNormal sigma<0", func() { NewNormal(0, -1) })
	mustPanic("NewUniform empty", func() { NewUniform(1, 1) })
	mustPanic("NewExponential sigma<0", func() { NewExponentialByStdDev(-2) })
	mustPanic("NewMixture empty", func() { NewMixture(nil, nil) })
	mustPanic("NewMixture negative weight", func() {
		NewMixture([]Dist{NewNormal(0, 1)}, []float64{-1})
	})
	mustPanic("NewMixture zero weight sum", func() {
		NewMixture([]Dist{NewNormal(0, 1)}, []float64{0})
	})
}

func TestQuantileMonotoneProperty(t *testing.T) {
	for _, d := range distsUnderTest() {
		f := func(p1, p2 float64) bool {
			p1 = math.Mod(math.Abs(p1), 1)
			p2 = math.Mod(math.Abs(p2), 1)
			if p1 > p2 {
				p1, p2 = p2, p1
			}
			return d.Quantile(p1) <= d.Quantile(p2)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%v: %v", d, err)
		}
	}
}

func TestTabulatedDistMatchesBase(t *testing.T) {
	base := NewNormal(0, 1)
	tab := NewTabulatedDist(base, 4096)
	rng := NewRand(7)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := tab.Sample(rng)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("tabulated sample mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("tabulated sample variance %v too far from 1", variance)
	}
	if tab.Base() != Dist(base) {
		t.Error("Base() should return the wrapped distribution")
	}
}

func TestSplitRandStreamsDiffer(t *testing.T) {
	a := SplitRand(1, 0)
	b := SplitRand(1, 1)
	same := true
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct streams produced identical sequences")
	}
	// Determinism: same (seed, stream) reproduces.
	c := SplitRand(9, 3)
	d := SplitRand(9, 3)
	for i := 0; i < 16; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("SplitRand is not deterministic")
		}
	}
}
