package stats

import "math"

// Integrate numerically integrates f over [a, b] using adaptive Simpson
// quadrature with the given absolute tolerance. It is the workhorse behind
// the DUST phi function, whose posterior integrals have no closed form for
// uniform and exponential error distributions.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	//lint:allow floatcmp an exactly empty interval integrates to exactly zero; near-empty ones go through Simpson
	if a == b {
		return 0
	}
	if a > b {
		return -Integrate(f, b, a, tol)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	// Pre-split into a fixed number of panels so that narrow features (e.g.
	// a sharp posterior peak inside a wide support) cannot hide between the
	// three initial sample points of a single adaptive call. Features
	// narrower than (b-a)/panels may still be missed entirely; callers that
	// integrate peaked densities must clip [a, b] to the region where the
	// integrand is non-negligible (the DUST phi integral does exactly that).
	const panels = 64
	h := (b - a) / panels
	var total float64
	for i := 0; i < panels; i++ {
		lo := a + float64(i)*h
		hi := lo + h
		fa, fb := f(lo), f(hi)
		m := (lo + hi) / 2
		fm := f(m)
		whole := simpson(lo, hi, fa, fm, fb)
		total += adaptiveSimpson(f, lo, hi, fa, fm, fb, whole, tol/panels, 50)
	}
	return total
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm := f(lm)
	frm := f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// IntegratePanels integrates f over [a, b] with fixed-width composite Simpson
// using the given number of panels (rounded up to even). It is cheaper and
// fully predictable, used where the integrand is known to be smooth and the
// caller controls resolution (DUST lookup-table construction).
func IntegratePanels(f func(float64) float64, a, b float64, panels int) float64 {
	//lint:allow floatcmp an exactly empty interval integrates to exactly zero; near-empty ones go through Simpson
	if a == b {
		return 0
	}
	if a > b {
		return -IntegratePanels(f, b, a, panels)
	}
	if panels < 2 {
		panels = 2
	}
	if panels%2 == 1 {
		panels++
	}
	h := (b - a) / float64(panels)
	sum := f(a) + f(b)
	for i := 1; i < panels; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
