package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divides by n), or NaN for
// empty input. The paper z-normalises series with the population convention.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mu := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - mu
		acc += d * d
	}
	return acc / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (divides by n-1), or
// NaN for fewer than two observations.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	mu := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - mu
		acc += d * d
	}
	return acc / float64(len(xs)-1)
}

// StdDevOf returns the population standard deviation of xs.
func StdDevOf(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest element of xs. It returns
// (+Inf, -Inf) for empty input so that the result folds correctly.
func MinMax(xs []float64) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	f := pos - float64(lo)
	return sorted[lo]*(1-f) + sorted[hi]*f
}

// CI is a two-sided confidence interval around a mean.
type CI struct {
	Mean  float64
	Lower float64
	Upper float64
	Level float64 // e.g. 0.95
}

// HalfWidth returns half the interval width.
func (c CI) HalfWidth() float64 { return (c.Upper - c.Lower) / 2 }

// MeanCI returns the two-sided confidence interval for the mean of xs at the
// given level (e.g. 0.95), using the Student-t critical value. The paper
// reports 95% confidence intervals on every plotted average.
//
// With fewer than two observations the interval degenerates to the point
// estimate.
func MeanCI(xs []float64, level float64) CI {
	mu := Mean(xs)
	n := len(xs)
	if n < 2 || level <= 0 || level >= 1 {
		return CI{Mean: mu, Lower: mu, Upper: mu, Level: level}
	}
	se := math.Sqrt(SampleVariance(xs) / float64(n))
	t, err := StudentTQuantile(0.5+level/2, float64(n-1))
	if err != nil || math.IsNaN(t) {
		return CI{Mean: mu, Lower: mu, Upper: mu, Level: level}
	}
	return CI{Mean: mu, Lower: mu - t*se, Upper: mu + t*se, Level: level}
}

// Histogram is a fixed-width binning of observations over [Lo, Hi].
// Out-of-range observations are clamped into the edge bins so that counts
// always sum to the number of observations.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi].
// It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || !(hi > lo) {
		panic("stats: NewHistogram: need bins >= 1 and lo < hi")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.N++
}

// AddAll records every element of xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
