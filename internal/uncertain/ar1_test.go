package uncertain

import (
	"math"
	"testing"

	"uncertts/internal/stats"
)

func TestAR1PerturberValidation(t *testing.T) {
	if _, err := NewAR1Perturber(Normal, 1, 1, 10, 1); err == nil {
		t.Error("rho=1 should error")
	}
	if _, err := NewAR1Perturber(Normal, 1, -1, 10, 1); err == nil {
		t.Error("rho=-1 should error")
	}
	if _, err := NewAR1Perturber(Normal, 0, 0.5, 10, 1); err == nil {
		t.Error("invalid sigma should propagate")
	}
	if _, err := NewAR1Perturber(Normal, 1, 0.5, 10, 1); err != nil {
		t.Error("valid parameters should succeed")
	}
}

func TestAR1ErrorsAreCorrelated(t *testing.T) {
	const n = 20000
	const rho = 0.8
	p, err := NewAR1Perturber(Normal, 1, rho, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps := p.PerturbPDF(flatSeries(n, 0))
	errs := ps.Observations // truth is zero, so observations ARE the errors

	// Marginal stddev preserved (Gaussian case: exact).
	sd := stats.StdDevOf(errs)
	if math.Abs(sd-1) > 0.03 {
		t.Errorf("marginal stddev = %v, want 1", sd)
	}
	// Lag-1 autocorrelation near rho.
	var num, den float64
	mu := stats.Mean(errs)
	for i := 0; i < n-1; i++ {
		num += (errs[i] - mu) * (errs[i+1] - mu)
	}
	for _, e := range errs {
		den += (e - mu) * (e - mu)
	}
	if ac := num / den; math.Abs(ac-rho) > 0.03 {
		t.Errorf("lag-1 autocorrelation = %v, want about %v", ac, rho)
	}
}

func TestAR1RhoZeroMatchesIndependent(t *testing.T) {
	s := flatSeries(50, 4)
	indep, _ := NewConstantPerturber(Uniform, 0.5, 50, 9)
	ar, err := NewAR1Perturber(Uniform, 0.5, 0, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	a := indep.PerturbPDF(s)
	b := ar.PerturbPDF(s)
	for i := range a.Observations {
		if a.Observations[i] != b.Observations[i] {
			t.Fatal("rho=0 must reproduce the independent perturber exactly")
		}
	}
}
