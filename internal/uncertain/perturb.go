package uncertain

import (
	"fmt"
	"math"
	"math/rand"

	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
)

// ErrorFamily enumerates the error distribution families used throughout the
// paper's evaluation: uniform, normal and exponential, all zero mean.
type ErrorFamily int

const (
	// Normal is the Gaussian error family.
	Normal ErrorFamily = iota
	// Uniform is the zero-mean uniform error family.
	Uniform
	// Exponential is the zero-mean (shifted) exponential error family.
	Exponential
)

// String returns the family name as used in the paper's figure legends.
func (f ErrorFamily) String() string {
	switch f {
	case Normal:
		return "normal"
	case Uniform:
		return "uniform"
	case Exponential:
		return "exponential"
	default:
		return fmt.Sprintf("ErrorFamily(%d)", int(f))
	}
}

// AllErrorFamilies lists the three families in the paper's presentation
// order for the multi-panel figures.
func AllErrorFamilies() []ErrorFamily { return []ErrorFamily{Normal, Uniform, Exponential} }

// Make returns the zero-mean error distribution of the family with the given
// standard deviation.
func (f ErrorFamily) Make(sigma float64) stats.Dist {
	switch f {
	case Normal:
		return stats.NewNormal(0, sigma)
	case Uniform:
		return stats.NewUniformByStdDev(sigma)
	case Exponential:
		return stats.NewExponentialByStdDev(sigma)
	default:
		panic(fmt.Sprintf("uncertain: unknown error family %d", int(f)))
	}
}

// Perturber turns exact ground-truth series into uncertain series. It fixes
// an assignment of error distributions to timestamps and can then emit both
// the PDF model (for PROUD/DUST/UMA/UEMA) and the sample model (for MUNICH)
// with *consistent* uncertainty, so all techniques face the same corrupted
// data in an experiment.
type Perturber struct {
	// Dists[i] is the error distribution applied at timestamp i. If a series
	// is longer than Dists, the assignment repeats cyclically; experiments
	// always construct Dists at full series length.
	Dists []stats.Dist
	// Seed drives every random draw, making perturbation reproducible.
	Seed int64
	// Rho, when non-zero, makes consecutive errors AR(1)-correlated:
	// e_i = Rho*e_{i-1} + sqrt(1-Rho^2)*xi_i with xi_i drawn from Dists[i].
	// All techniques in the paper assume independent errors; a correlated
	// perturber probes what happens when that assumption breaks (the
	// "temporal correlations" direction of the paper's conclusions).
	// For Gaussian errors the marginal standard deviation is preserved
	// exactly; for other families approximately. Must be in (-1, 1).
	Rho float64
}

// NewConstantPerturber perturbs every timestamp with the same zero-mean
// error distribution of the given family and standard deviation — the
// setting of Figures 4-7.
func NewConstantPerturber(family ErrorFamily, sigma float64, n int, seed int64) (*Perturber, error) {
	if n <= 0 {
		return nil, fmt.Errorf("uncertain: NewConstantPerturber: series length %d must be positive", n)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("uncertain: NewConstantPerturber: sigma %v must be positive", sigma)
	}
	d := family.Make(sigma)
	dists := make([]stats.Dist, n)
	for i := range dists {
		dists[i] = d
	}
	return &Perturber{Dists: dists, Seed: seed}, nil
}

// NewAR1Perturber returns a constant-sigma perturber whose consecutive
// errors are AR(1)-correlated with coefficient rho in (-1, 1). rho = 0
// degenerates to NewConstantPerturber.
func NewAR1Perturber(family ErrorFamily, sigma, rho float64, n int, seed int64) (*Perturber, error) {
	if rho <= -1 || rho >= 1 || math.IsNaN(rho) {
		return nil, fmt.Errorf("uncertain: NewAR1Perturber: rho %v outside (-1, 1)", rho)
	}
	p, err := NewConstantPerturber(family, sigma, n, seed)
	if err != nil {
		return nil, err
	}
	p.Rho = rho
	return p, nil
}

// MixedSigmaSpec describes the paper's mixed-error settings: Fraction of the
// timestamps get error stddev SigmaHigh, the rest SigmaLow (Figures 8-10:
// 20% with sigma 1.0, 80% with sigma 0.4).
type MixedSigmaSpec struct {
	Fraction  float64 // fraction of timestamps with the high sigma
	SigmaHigh float64
	SigmaLow  float64
	// Families lists the candidate families. With one element every
	// timestamp uses that family; with several, each perturbed timestamp
	// draws its family uniformly (the Figure 9 setting).
	Families []ErrorFamily
}

// NewMixedPerturber builds a perturber for the mixed-sigma settings. The
// choice of which timestamps carry the high sigma (and which family each
// timestamp uses) is drawn once from seed and then fixed.
func NewMixedPerturber(spec MixedSigmaSpec, n int, seed int64) (*Perturber, error) {
	if n <= 0 {
		return nil, fmt.Errorf("uncertain: NewMixedPerturber: series length %d must be positive", n)
	}
	if spec.Fraction < 0 || spec.Fraction > 1 {
		return nil, fmt.Errorf("uncertain: NewMixedPerturber: fraction %v outside [0, 1]", spec.Fraction)
	}
	if spec.SigmaHigh <= 0 || spec.SigmaLow <= 0 {
		return nil, fmt.Errorf("uncertain: NewMixedPerturber: sigmas must be positive, got high=%v low=%v", spec.SigmaHigh, spec.SigmaLow)
	}
	if len(spec.Families) == 0 {
		return nil, fmt.Errorf("uncertain: NewMixedPerturber: need at least one error family")
	}
	rng := stats.SplitRand(seed, 0x5eed)
	dists := make([]stats.Dist, n)
	// Choose exactly round(Fraction*n) high-sigma positions, like the paper's
	// "20% of the values".
	high := int(spec.Fraction*float64(n) + 0.5)
	perm := rng.Perm(n)
	isHigh := make([]bool, n)
	for _, idx := range perm[:high] {
		isHigh[idx] = true
	}
	for i := 0; i < n; i++ {
		family := spec.Families[rng.Intn(len(spec.Families))]
		sigma := spec.SigmaLow
		if isHigh[i] {
			sigma = spec.SigmaHigh
		}
		dists[i] = family.Make(sigma)
	}
	return &Perturber{Dists: dists, Seed: seed}, nil
}

// distAt returns the error distribution for timestamp i.
func (p *Perturber) distAt(i int) stats.Dist {
	return p.Dists[i%len(p.Dists)]
}

// rngFor derives the deterministic stream for one series, so perturbing
// series k is reproducible regardless of the order series are processed in.
func (p *Perturber) rngFor(seriesID int, stream int64) *rand.Rand {
	return stats.SplitRand(p.Seed, int64(seriesID)*1000003+stream)
}

// PerturbPDF returns the PDF-model uncertain version of s: one noisy
// observation per timestamp plus the (known) error distribution.
func (p *Perturber) PerturbPDF(s timeseries.Series) PDFSeries {
	rng := p.rngFor(s.ID, 1)
	obs := make([]float64, s.Len())
	errs := make([]stats.Dist, s.Len())
	var prev float64
	scale := math.Sqrt(1 - p.Rho*p.Rho)
	for i, v := range s.Values {
		d := p.distAt(i)
		e := d.Sample(rng)
		if p.Rho != 0 && i > 0 {
			e = p.Rho*prev + scale*e
		}
		prev = e
		obs[i] = v + e
		errs[i] = d
	}
	return PDFSeries{Observations: obs, Errors: errs, Label: s.Label, ID: s.ID}
}

// PerturbSamples returns the sample-model uncertain version of s with
// samplesPerTS repeated observations per timestamp (the MUNICH input).
func (p *Perturber) PerturbSamples(s timeseries.Series, samplesPerTS int) (SampleSeries, error) {
	if samplesPerTS < 1 {
		return SampleSeries{}, fmt.Errorf("uncertain: PerturbSamples: need at least 1 sample per timestamp, got %d", samplesPerTS)
	}
	rng := p.rngFor(s.ID, 2)
	samples := make([][]float64, s.Len())
	for i, v := range s.Values {
		d := p.distAt(i)
		row := make([]float64, samplesPerTS)
		for j := range row {
			row[j] = v + d.Sample(rng)
		}
		samples[i] = row
	}
	return SampleSeries{Samples: samples, Label: s.Label, ID: s.ID}, nil
}

// PerturbDatasetPDF perturbs every series of a dataset into the PDF model.
func (p *Perturber) PerturbDatasetPDF(d timeseries.Dataset) PDFDataset {
	out := PDFDataset{Name: d.Name, Series: make([]PDFSeries, len(d.Series))}
	for i, s := range d.Series {
		out.Series[i] = p.PerturbPDF(s)
	}
	return out
}

// PerturbDatasetSamples perturbs every series of a dataset into the sample
// model.
func (p *Perturber) PerturbDatasetSamples(d timeseries.Dataset, samplesPerTS int) (SampleDataset, error) {
	out := SampleDataset{Name: d.Name, Series: make([]SampleSeries, len(d.Series))}
	for i, s := range d.Series {
		ss, err := p.PerturbSamples(s, samplesPerTS)
		if err != nil {
			return SampleDataset{}, err
		}
		out.Series[i] = ss
	}
	return out, nil
}

// ReportedDists returns the per-timestamp error distributions a technique is
// *told* about. By default this is the truth; WithMisreportedSigma builds the
// Figure 10 scenario where the technique is told a wrong constant sigma.
func (p *Perturber) ReportedDists(n int) []stats.Dist {
	out := make([]stats.Dist, n)
	for i := range out {
		out[i] = p.distAt(i)
	}
	return out
}

// MisreportSigma returns per-timestamp distributions that (wrongly) claim
// the error is `family` with constant stddev sigma, regardless of what the
// perturber actually applied. Figures 8-10 use this to model techniques
// operating with inaccurate a-priori knowledge.
func MisreportSigma(family ErrorFamily, sigma float64, n int) []stats.Dist {
	d := family.Make(sigma)
	out := make([]stats.Dist, n)
	for i := range out {
		out[i] = d
	}
	return out
}
